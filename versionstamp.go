// Package versionstamp implements version stamps, the decentralized
// substitute for version vectors from:
//
//	Paulo Sérgio Almeida, Carlos Baquero, Victor Fonte.
//	"Version Stamps — Decentralized Version Vectors." ICDCS 2002.
//
// # Why version stamps
//
// Version vectors track updates in optimistic replication systems by
// mapping globally unique replica identifiers to counters. Creating a
// replica therefore needs a fresh unique identifier — from a server or a
// naming protocol — which is exactly what a disconnected device cannot
// obtain. Version stamps remove the requirement: a replica is created by
// Fork, locally, with no communication at all, and the stamps still decide,
// for any two coexisting replicas, whether they are Equal, one is obsolete
// (Before/After), or they conflict (Concurrent). The decision provably
// matches causal-history inclusion (paper Prop. 5.1; re-verified
// mechanically by this repository's simulator).
//
// # Model
//
// Replicas form a frontier of coexisting elements, transformed by three
// operations:
//
//	Update — the replica's data changed
//	Fork   — the replica is copied; both copies continue independently
//	Join   — two replicas merge into one (Sync = Join then Fork)
//
// A stamp is a pair [update|id] of names — antichains of binary strings —
// rendered in the paper's notation by String, e.g. "[1|0+1]". Joins
// automatically simplify ids (the paper's Section 6 reduction), so stamp
// size tracks the current number of replicas, not the number ever created.
//
// # Quick start
//
//	a := versionstamp.Seed()       // first replica: [ε|ε]
//	a, b := a.Fork()               // replicate (works offline)
//	a = a.Update()                 // write at a
//	switch versionstamp.Compare(a, b) {
//	case versionstamp.After:       // a dominates: propagate a's data to b
//	case versionstamp.Concurrent:  // conflict: reconcile, then Join
//	}
//	merged, _ := versionstamp.Join(a, b) // back to one replica: [ε|ε]
//
// Stamps serialize with MarshalBinary/MarshalText (and parse back with
// Parse), so they embed directly in storage formats and wire protocols.
//
// # Performance model
//
// Stamps are immutable values over hash-consed (interned) name components:
// each distinct name exists once per process, as a shared record keyed by
// its canonical trie encoding, and a stamp holds two pointers to such
// records. The paper's central property — stamps grow with the width of the
// current frontier, not with history — means a store of millions of keys
// draws its components from a tiny set of distinct names, so the intern
// table stays small while hit rates stay near perfect. Consequences:
//
//   - Compare of stamps with the same interned update component (converged
//     replicas, the steady state of anti-entropy) is a pointer comparison:
//     O(1), zero allocations. Divergent pairs are answered from a bounded
//     process-wide cache of outcomes keyed by handle pair, still O(1) and
//     allocation-free; a cache miss walks both sorted components in place,
//     O(total strings × string length), allocating nothing.
//   - Update is two pointer copies. Fork reuses memoized child records, so
//     forking a previously seen id allocates nothing. Join returns the
//     dominating side's record unchanged when one side contains the other
//     (every idle reconciliation); only a genuine merge of concurrent
//     knowledge builds — and interns — a new name, O(total strings).
//   - Serialization appends the record's cached canonical bytes (no walk),
//     and decoding deduplicates against the intern table by raw encoded
//     bytes before building anything, so wire ingestion of known names is
//     one map probe and yields pointer-comparable stamps.
//
// Equality of interned stamps is therefore cheap enough to use as a guard
// in hot loops, and bulk comparison over converged data (anti-entropy
// digest phases) runs allocation-free end to end.
//
// # Sync model
//
// Anti-entropy (internal/antientropy) converges replicas by shipping only
// what the stamps cannot prove equivalent. Four wire protocols coexist on
// one port, selected by the session's first byte, each a refinement of the
// last: v1 exchanges full snapshots, v2 exchanges per-key digests first,
// v3 fronts the digests with per-stripe summary hashes under one 8-byte
// root, and v4 — the default — replaces each stripe's flat digest list
// with an adaptive k-ary digest tree. The v4 cost model:
//
//   - Tree shape follows the data. Each stripe hashes its keys to 64-bit
//     positions and summarizes them under a fan-out-16 tree whose depth is
//     the shallowest that bounds expected leaf runs to ~32 keys, so the
//     tree deepens (and rebalances, epoch-cached, on the next round that
//     looks) as the stripe grows. Shape is part of the hash domain; a
//     session pins the client's shape, and a peer with a different live
//     shape or stripe count evaluates the client's layout on the fly.
//   - A converged round costs O(1) bytes, not O(stripes). Pooled sessions
//     pipeline the next round's root probe behind the current round's
//     result, so the steady-state round reads the answer that is already
//     in flight, matches the root, and sends the next probe: ~14 bytes,
//     zero blocking round trips, one TCP dial amortized over the session.
//   - A localized edit costs O(log n) frames. One hot key in a converged
//     million-key store descends root → stripe roots → one divergent
//     child per level → one ~32-digest leaf run, a few hundred bytes
//     where v3 re-ships the stripe's whole ~31k-digest list (the CI gate
//     in cmd/benchwire demands ≥20x; measured ~500x). Wide divergence
//     degrades gracefully to v3-like digest exchange, because diverging
//     subtrees are enumerated breadth-first and leaf runs carry the same
//     digests v3 would have sent.
//   - Downgrade is per peer, not per process. A v4 opening answered by
//     anything but the v4 ack marks that session's peer as v3 and redials
//     without a failed round; mixed fleets converge during rolling
//     upgrades, and the scoped (ring), scrub-repair, and tombstone-GC
//     paths ride whichever protocol the session negotiated.
//
// # Durability model
//
// The sharded store (internal/kvstore) optionally persists through a
// pluggable backend (internal/storage): each stripe owns an append-only
// log of CRC-protected records plus an occasional binary checkpoint, the
// log-structured file-per-stripe WAL of internal/storage/wal being the
// durable implementation. The contract:
//
//   - A write is acknowledged only after its record — the key's full new
//     state, version stamp included — is appended to the owning stripe's
//     log, under the same stripe lock that ordered the write. Log order is
//     therefore exactly apply order, and restart is replay: load the
//     stripe's latest checkpoint, apply its log tail. This covers every
//     mutation path, including the stamp forks and joins that Sync and the
//     anti-entropy protocols perform — a restarted replica resumes with
//     the precise stamps it had, so the next sync round moves only what
//     the stamps cannot prove equivalent, never the whole keyspace.
//   - A crash mid-append leaves a torn record at some log tail. Torn tails
//     are detected by length and checksum and truncated on open; the torn
//     record was never acknowledged, so nothing promised is lost. Damage
//     that is provably not a torn tail (a bad frame with intact frames
//     after it) is reported as corruption, never repaired silently.
//   - Checkpoint serializes each stripe under its lock and truncates the
//     stripe's log, bounding restart replay; Close checkpoints everything,
//     so a graceful restart replays nothing. By default appends reach the
//     OS buffer cache (durable across process crashes); an fsync option
//     trades throughput for power-loss durability. Checkpoints always
//     fsync-and-rename regardless.
//
// # Memory model
//
// A durable replica's RAM footprint is bounded by its metadata, not its
// data. Opening the store paged (internal/kvstore's Paged option) splits
// each stripe's state in two:
//
//   - Resident, always: per-key version stamp (two interned pointers),
//     tombstone flag, and checkpoint location. This is what anti-entropy
//     digests, Compare, and conflict detection read, so sync rounds over
//     converged data never touch a value byte.
//   - Pageable: the value bytes themselves. A checkpoint migrates hot
//     entries into an immutable cold index (keys packed into one shared
//     blob, ~4 bytes of boundary per key) and drops their heap values;
//     reads fault values back in through a sized sharded-LRU cache
//     (internal/pagecache) keyed by name, so a cache hit skips even the
//     cold-index search. Cache fills are singleflighted, and hits return
//     the cached buffer zero-copy.
//
// On the write path, group commit (the wal package's GroupCommit option)
// decouples acknowledgment from fsync frequency: appends from concurrent
// writers coalesce into a commit window, one fsync makes the whole window
// durable, and every writer in the window is released only after that
// fsync — nothing is acknowledged before its window's barrier, and a crash
// replays exactly the acknowledged prefix.
//
// Deletion completes the lifecycle. A delete writes a tombstone — a
// stamped entry with no value — that propagates like any write. A
// background GC discards a tombstone only once anti-entropy has gathered
// per-owner evidence that every replica of the stripe has seen it (all
// owners up, un-quarantined, hints drained, conflict-free exchanges at or
// past the tombstone's epoch), so a discarded delete can never resurrect;
// with replication factor 1 the local copy is the whole owner set and
// tombstones discard trivially. cmd/benchmem gates the result: a
// million-key durable replica under 40% of the load-everything heap with
// hot-read p50 within 2x of all-in-RAM.
//
// # Cluster model
//
// The partitioned cluster (internal/antientropy's ring mode, built on
// internal/ring and internal/membership) replaces "every node holds every
// key" with Dynamo-style ownership: keys hash to virtual stripes, stripes
// hash onto a consistent-hash ring of node identities, and the R distinct
// ring successors of a stripe's position own it. The decisions that shape
// the design:
//
//   - Anti-entropy is owner-scoped. A gossip round exchanges each stripe
//     only among its R owners, as stripe-scoped hierarchical (v3) rounds,
//     so a converged round costs a node wire bytes proportional to the
//     stripes it owns — not to the keyspace and not to the cluster size.
//     Divergence bias is tracked per (peer, stripe) and survives churn.
//   - Membership is gossiped heartbeats with alive/suspect/dead states.
//     Ring ownership changes only when the member set grows; a dead node
//     KEEPS its stripes, because handing them elsewhere would make every
//     transient outage a data migration. Writes that miss a dead or
//     unreachable owner queue a durable hint (the write's value and stamp,
//     on the same storage backend as the WAL) at the coordinator, and
//     hints drain when the target is seen alive again.
//   - Reads and writes are quorum operations: a write coordinator applies
//     locally and pushes the key to the other live owners, acknowledging
//     at W of R; a read gathers the live owners' copies and lets the
//     stamps arbitrate — divergent copies trigger read-repair, where the
//     stamps prove exactly which copies are obsolete. Hints are promises,
//     not acks, so a sloppy write reports its true durability.
//   - Exchanges touching the same stripe are serialized. Two concurrent
//     reconciliations consuming the same copy of a key would fork the same
//     id space twice, and the paper's model has no sound way to keep both
//     results — overlapping ids would force a reseed that discards
//     causality. Per-stripe serialization is a stamp-soundness
//     requirement, not a tuning choice.
//
// # Failure model
//
// What the cluster promises under faults, and what it deliberately does
// not — each promise backed by a deterministic chaos scenario (the
// internal/sim scenario runner over the internal/chaosnet fabric, gated in
// CI by cmd/benchconverge):
//
//   - Lossy, duplicating, reordering, delaying links. The anti-entropy
//     protocol runs over a stream transport; chaosnet injects faults at
//     its segment layer, so frames arrive intact or the connection dies —
//     there are no torn frames to mis-parse. A connection reset mid-round
//     loses that round only: the pool redials and retries when the failure
//     provably preceded any state transfer (first-frame rule), and
//     otherwise surfaces the error and lets the next gossip round repair,
//     because a v3 exchange applies deltas per stripe and every applied
//     delta is a sound join even if its round dies halfway.
//   - Crash and restart. A durable node that crashes loses memory, not
//     promises: its replica WAL replays checkpoint plus log tail, its hint
//     queue reopens, and its membership view resumes with a grace refresh
//     while the resumed heartbeat counter re-alives it at the peers. A
//     torn WAL tail (crash mid-append) truncates at the last valid record.
//   - Partitions, including asymmetric ones. Quorum writes that cannot
//     reach a quorum of owners on the coordinator's side fail loudly
//     (ErrQuorum) while still hinting the unreachable owners; after heal,
//     hint drains and owner-scoped anti-entropy reconverge both sides, the
//     stamps proving per key which copies are obsolete and which conflict.
//   - Failing peers back off. A pool that repeatedly fails to reach a peer
//     skips it for exponentially growing (seeded-jittered) round windows —
//     ErrPeerBackoff rounds cost zero traffic — and one success resets the
//     ledger. Round outcomes are reported per exchange (RoundStats.Errors)
//     with the failure's class: retried, backoff-skipped, or known-dead.
//   - Bounded hint queues. Hints are capped per target, dropping oldest
//     first; a dropped hint is a lost promise, not lost data, because the
//     write's value and stamp remain on the coordinator's replica and
//     anti-entropy converges them to the revived owner anyway — the cap
//     trades bounded handoff latency for a bounded queue.
//
// # Self-healing model
//
// Disk faults get the same treatment as network faults: injected
// deterministically, contained narrowly, and repaired from redundancy the
// stamps make safe. internal/storage/faultfs is the disk-side chaosnet —
// every append failure, short write (ENOSPC mid-frame), failed rollback
// truncation, fsync error, checkpoint failure, and at-rest bit flip is a
// pure hash of (seed, stripe, operation, sequence), so a fault schedule
// replays exactly. On top of that injection surface:
//
//   - Damage is scoped to the stripe, never the node. A WAL that finds
//     mid-log corruption or a bad checkpoint checksum at open loads every
//     healthy stripe and quarantines the damaged one, reporting the file
//     and byte offset. A quarantined stripe keeps serving its (possibly
//     incomplete) in-memory copy, refuses durable appends, is excluded
//     from read quorums and write acknowledgments (it gets hints instead
//     — a quarantined stripe cannot promise durability), and surfaces
//     through PersistErr and the cluster's node status.
//   - Rot is found while running, not at the next restart. Each ring
//     round, every durable node re-verifies one stripe's at-rest bytes —
//     frame CRCs and checkpoint checksums — and a failed verification
//     demotes the live stripe to quarantine on the spot. A full sweep
//     costs one stripe per round, so scrubbing is steady background load.
//   - Repair is anti-entropy, because the stamps make it sound. A
//     quarantined stripe is treated as maximally divergent: its holder
//     exchanges with every live co-owner (the fan-out cap does not
//     apply), and the stamp-arbitrated merges rebuild exactly the records
//     the damage lost — dominance proves which copies are news, so
//     rebuilding from R-1 peers cannot resurrect obsolete data or drop
//     concurrent edits. When every exchange for the stripe succeeds, the
//     holder re-checkpoints it (replacing the damaged log wholesale) and
//     lifts the quarantine; the last repair clears PersistErr.
//
// The cycle is gated in CI twice over: cmd/benchscrub measures scrub
// throughput and the round count of a one-stripe rebuild (BENCH_scrub.json)
// and fails on any standing quarantine, and the disk-corrupt chaos scenario
// (kill, flip a byte in a stripe's log, revive, repair from peers) must
// converge deterministically with zero quarantined stripes at the end.
//
// Convergence under all of the above is measured, not hoped for:
// cmd/benchconverge emits BENCH_convergence.json — one sim.ScenarioMetrics
// document per scenario: rounds to convergence against the round budget,
// quorum writes attempted and failed, exchange and backoff counts, wire
// bytes, hint-queue peak/drain/drop counts, compact stamp size max and
// mean, and the fabric's fault ledger (delivered, dropped, duplicated,
// reordered, cut, reset) — and CI fails unless every scenario converges
// within budget and replays to byte-identical metrics, which only holds
// because faults are seeded hash decisions over logical ticks — same seed,
// same chaos, same outcome.
//
// The implementation lives in internal packages (core, name, trie, bitstr);
// this package is the stable public API. Interval tree clocks — the
// successor design by the same authors — are available in the same style via
// the repository's internal/itc package and examples.
package versionstamp

import (
	"versionstamp/internal/bitstr"
	"versionstamp/internal/core"
	"versionstamp/internal/name"
)

// Stamp is a version stamp: the pair (update, id) written [update|id].
// Stamps are immutable values; Update, Fork and Join return new stamps.
// The zero Stamp is invalid — start from Seed or decode one.
type Stamp = core.Stamp

// Name is a stamp component: a finite antichain of binary strings ordered
// by down-set inclusion (the join semilattice N of the paper's Section 4).
type Name = name.Name

// Bits is a finite binary string, the element type of names.
type Bits = bitstr.Bits

// Ordering is the outcome of comparing two coexisting replicas.
type Ordering = core.Ordering

// Comparison outcomes.
const (
	// Equal: both replicas have seen exactly the same updates.
	Equal = core.Equal
	// Before: the first replica is obsolete relative to the second.
	Before = core.Before
	// After: the first replica dominates the second.
	After = core.After
	// Concurrent: the replicas are mutually inconsistent (conflict).
	Concurrent = core.Concurrent
)

// ErrOverlappingIDs is returned by Join for stamps whose ids overlap —
// stamps that cannot belong to one frontier (e.g. a stamp joined with
// itself or with its own ancestor).
var ErrOverlappingIDs = core.ErrOverlappingIDs

// Seed returns the stamp of a brand-new replicated datum: [ε|ε]. Every
// other stamp of that datum descends from it via Fork, Update and Join.
func Seed() Stamp { return core.Seed() }

// Join merges two replicas into one, combining their update knowledge and
// reuniting their identities (with automatic simplification).
func Join(a, b Stamp) (Stamp, error) { return core.Join(a, b) }

// Sync synchronizes two replicas in place: equivalent to Join followed by
// Fork. Both results carry the union of updates seen by either input.
func Sync(a, b Stamp) (Stamp, Stamp, error) { return core.Sync(a, b) }

// Compare relates two coexisting replicas.
func Compare(a, b Stamp) Ordering { return core.Compare(a, b) }

// Parse reads a stamp in the paper's notation, e.g. "[1|0+1]" or "[ε|ε]".
func Parse(text string) (Stamp, error) { return core.Parse(text) }

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(text string) Stamp { return core.MustParse(text) }

// Decode reads one binary-encoded stamp from the front of data, returning
// the bytes consumed. Stamps encode with Stamp.MarshalBinary or
// Stamp.AppendBinary.
func Decode(data []byte) (Stamp, int, error) { return core.DecodeBinary(data) }

// NewStamp assembles a stamp from explicit components, validating the
// stamp invariant (update ⊑ id). Normal use derives stamps only through
// Seed, Update, Fork and Join; NewStamp exists for decoders and tests.
func NewStamp(update, id Name) (Stamp, error) { return core.New(update, id) }

// ParseName reads a name in the paper's notation, e.g. "0+10" or "ε".
func ParseName(text string) (Name, error) { return name.Parse(text) }

// CheckFrontier validates the configuration invariants I1–I3 across a set
// of coexisting stamps; useful as a self-check in tests of systems built on
// version stamps.
func CheckFrontier(frontier []Stamp) error { return core.CheckFrontier(frontier) }

package main

import (
	"strings"
	"testing"
)

func TestSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "e2"}, &sb); err != nil {
		t.Fatalf("e2: %v", err)
	}
	if !strings.Contains(sb.String(), "all stamps match the paper: true") {
		t.Errorf("e2 output:\n%s", sb.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "e99"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

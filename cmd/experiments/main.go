// Command experiments regenerates the paper-reproduction tables recorded in
// EXPERIMENTS.md — one experiment per figure/claim of the paper (see
// DESIGN.md's per-experiment index):
//
//	$ experiments -exp e2     # Figure 2/4 stamps
//	$ experiments -exp all    # everything
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"versionstamp/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	exp := fs.String("exp", "all", "experiment id (e1..e8) or \"all\"")
	if err := fs.Parse(args); err != nil {
		return err
	}
	registry := experiments.Registry()
	if *exp != "all" {
		fn, ok := registry[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %v)", *exp, experiments.IDs())
		}
		report, err := fn()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, report)
		return nil
	}
	for _, id := range experiments.IDs() {
		report, err := registry[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(out, report)
	}
	return nil
}

package main

import (
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestSeed(t *testing.T) {
	out, err := runCmd(t, "seed")
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	if strings.TrimSpace(out) != "[ε|ε]" {
		t.Errorf("seed = %q", out)
	}
}

func TestForkUpdateJoinPipeline(t *testing.T) {
	out, err := runCmd(t, "fork", "[ε|ε]")
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	lines := strings.Fields(out)
	if len(lines) != 2 || lines[0] != "[ε|0]" || lines[1] != "[ε|1]" {
		t.Fatalf("fork = %v", lines)
	}
	out, err = runCmd(t, "update", lines[0])
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	updated := strings.TrimSpace(out)
	if updated != "[0|0]" {
		t.Fatalf("update = %q", updated)
	}
	out, err = runCmd(t, "compare", updated, lines[1])
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if strings.TrimSpace(out) != "after" {
		t.Errorf("compare = %q", out)
	}
	out, err = runCmd(t, "join", updated, lines[1])
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if strings.TrimSpace(out) != "[ε|ε]" {
		t.Errorf("join = %q", out)
	}
}

func TestJoinNoReduce(t *testing.T) {
	out, err := runCmd(t, "join", "-noreduce", "[0|0]", "[ε|1]")
	if err != nil {
		t.Fatalf("join -noreduce: %v", err)
	}
	if strings.TrimSpace(out) != "[0|0+1]" {
		t.Errorf("join -noreduce = %q", out)
	}
	// And reduce brings it to normal form.
	out, err = runCmd(t, "reduce", strings.TrimSpace(out))
	if err != nil {
		t.Fatalf("reduce: %v", err)
	}
	if strings.TrimSpace(out) != "[ε|ε]" {
		t.Errorf("reduce = %q", out)
	}
}

func TestSyncCommand(t *testing.T) {
	out, err := runCmd(t, "sync", "[0|0]", "[ε|1]")
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	lines := strings.Fields(out)
	if len(lines) != 2 {
		t.Fatalf("sync = %v", lines)
	}
	cmp, err := runCmd(t, "compare", lines[0], lines[1])
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if strings.TrimSpace(cmp) != "equal" {
		t.Errorf("synced stamps compare = %q", cmp)
	}
}

func TestEncodeCommand(t *testing.T) {
	out, err := runCmd(t, "encode", "[ε|ε]")
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !strings.Contains(out, "(5 bytes)") {
		t.Errorf("encode = %q", out)
	}
}

func TestHelp(t *testing.T) {
	out, err := runCmd(t, "help")
	if err != nil {
		t.Fatalf("help: %v", err)
	}
	if !strings.Contains(out, "usage: vstamp") {
		t.Errorf("help = %q", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                         // no command
		{"bogus"},                  // unknown command
		{"seed", "extra"},          // extra args
		{"update"},                 // missing stamp
		{"update", "[broken"},      // bad stamp
		{"join", "[ε|ε]"},          // one stamp
		{"join", "[ε|ε]", "[ε|ε]"}, // overlapping ids
		{"compare", "[ε|ε]"},       // one stamp
		{"fork", "[x|y]"},          // invalid stamp
	}
	for _, args := range cases {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// Command vstamp manipulates version stamps in the paper's text notation —
// the PANASYNC-style command-line interface to the library. Stamps pass
// through stdin/argv as "[update|id]" strings, so shell pipelines can drive
// full fork/update/join workflows:
//
//	$ vstamp seed
//	[ε|ε]
//	$ vstamp fork '[ε|ε]'
//	[ε|0]
//	[ε|1]
//	$ vstamp update '[ε|0]'
//	[0|0]
//	$ vstamp compare '[0|0]' '[ε|1]'
//	after
//	$ vstamp join '[0|0]' '[ε|1]'
//	[ε|ε]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"versionstamp"
	"versionstamp/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vstamp:", err)
		os.Exit(1)
	}
}

const usage = `usage: vstamp <command> [arguments]

commands:
  seed                       print the initial stamp [ε|ε]
  update <stamp>             record an update
  fork <stamp>               split into two stamps (one per line)
  join [-noreduce] <a> <b>   merge two stamps
  sync <a> <b>               synchronize: join then fork (one per line)
  compare <a> <b>            print equal | before | after | concurrent
  reduce <stamp>             print the stamp's normal form
  encode <stamp>             print binary encoding (hex) and size
  help                       print this text
`

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		fmt.Fprint(out, usage)
		return errors.New("missing command")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "help", "-h", "--help":
		fmt.Fprint(out, usage)
		return nil
	case "seed":
		if len(rest) != 0 {
			return errors.New("seed takes no arguments")
		}
		fmt.Fprintln(out, versionstamp.Seed())
		return nil
	case "update":
		s, err := oneStamp(rest)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, s.Update())
		return nil
	case "fork":
		s, err := oneStamp(rest)
		if err != nil {
			return err
		}
		a, b := s.Fork()
		fmt.Fprintln(out, a)
		fmt.Fprintln(out, b)
		return nil
	case "join":
		fs := flag.NewFlagSet("join", flag.ContinueOnError)
		noReduce := fs.Bool("noreduce", false, "skip the Section 6 reduction")
		fs.SetOutput(io.Discard)
		if err := fs.Parse(rest); err != nil {
			return err
		}
		a, b, err := twoStamps(fs.Args())
		if err != nil {
			return err
		}
		var joined versionstamp.Stamp
		if *noReduce {
			joined, err = core.JoinNoReduce(a, b)
		} else {
			joined, err = versionstamp.Join(a, b)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(out, joined)
		return nil
	case "sync":
		a, b, err := twoStamps(rest)
		if err != nil {
			return err
		}
		sa, sb, err := versionstamp.Sync(a, b)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, sa)
		fmt.Fprintln(out, sb)
		return nil
	case "compare":
		a, b, err := twoStamps(rest)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, versionstamp.Compare(a, b))
		return nil
	case "reduce":
		s, err := oneStamp(rest)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, s.Reduce())
		return nil
	case "encode":
		s, err := oneStamp(rest)
		if err != nil {
			return err
		}
		data, err := s.MarshalBinary()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%x (%d bytes)\n", data, len(data))
		return nil
	default:
		fmt.Fprint(out, usage)
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func oneStamp(args []string) (versionstamp.Stamp, error) {
	if len(args) != 1 {
		return versionstamp.Stamp{}, errors.New("expected exactly one stamp argument")
	}
	return versionstamp.Parse(args[0])
}

func twoStamps(args []string) (versionstamp.Stamp, versionstamp.Stamp, error) {
	if len(args) != 2 {
		return versionstamp.Stamp{}, versionstamp.Stamp{}, errors.New("expected exactly two stamp arguments")
	}
	a, err := versionstamp.Parse(args[0])
	if err != nil {
		return versionstamp.Stamp{}, versionstamp.Stamp{}, err
	}
	b, err := versionstamp.Parse(args[1])
	if err != nil {
		return versionstamp.Stamp{}, versionstamp.Stamp{}, err
	}
	return a, b, nil
}

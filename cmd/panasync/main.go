// Command panasync is a file-copy dependency tracker in the style of the
// PANASYNC toolset, the system in which the paper's version stamps first
// shipped (paper §7). It tracks copies of single files with version-stamp
// sidecars and answers, with no server and no global configuration, how any
// two copies relate:
//
//	$ panasync -root ~/docs init report.txt
//	$ panasync -root ~/docs copy report.txt backup/report.txt
//	$ ... edit report.txt ...
//	$ panasync -root ~/docs edit report.txt
//	$ panasync -root ~/docs compare report.txt backup/report.txt
//	after
//	$ panasync -root ~/docs sync report.txt backup/report.txt
//	$ panasync -root ~/docs list
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"versionstamp/internal/panasync"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "panasync:", err)
		os.Exit(1)
	}
}

const usage = `usage: panasync -root <dir> <command> [arguments]

commands:
  init <file>            start tracking a file (it becomes the seed copy)
  copy <src> <dst>       duplicate a tracked file; the stamp forks
  edit <file>            record that the file's content was changed
  status <file>          print the stamp and whether edits are unrecorded
  compare <a> <b>        print equal | before | after | concurrent
  sync <a> <b>           reconcile two copies (conflicts need -merge)
  forget <file>          stop tracking a file
  list                   list all tracked copies

flags:
  -root <dir>   workspace root (default ".")
  -merge        on conflicting sync, concatenate both contents with a marker
`

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("panasync", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	root := fs.String("root", ".", "workspace root directory")
	merge := fs.Bool("merge", false, "resolve conflicting syncs by concatenation")
	if err := fs.Parse(args); err != nil {
		fmt.Fprint(out, usage)
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprint(out, usage)
		return errors.New("missing command")
	}
	dirFS, err := panasync.NewDirFS(*root)
	if err != nil {
		return err
	}
	ws := panasync.NewWorkspace(dirFS)

	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "help":
		fmt.Fprint(out, usage)
		return nil
	case "init":
		if len(rest) != 1 {
			return errors.New("init takes one file")
		}
		if err := ws.Init(rest[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "tracking %s\n", rest[0])
		return nil
	case "copy":
		if len(rest) != 2 {
			return errors.New("copy takes source and destination")
		}
		if err := ws.Copy(rest[0], rest[1]); err != nil {
			return err
		}
		fmt.Fprintf(out, "copied %s -> %s (identities forked)\n", rest[0], rest[1])
		return nil
	case "edit":
		if len(rest) != 1 {
			return errors.New("edit takes one file")
		}
		if err := ws.Edit(rest[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded update on %s\n", rest[0])
		return nil
	case "status":
		if len(rest) != 1 {
			return errors.New("status takes one file")
		}
		st, err := ws.Stat(rest[0])
		if err != nil {
			return err
		}
		printStatus(out, st)
		return nil
	case "compare":
		if len(rest) != 2 {
			return errors.New("compare takes two files")
		}
		rel, err := ws.Compare(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rel)
		return nil
	case "sync":
		if len(rest) != 2 {
			return errors.New("sync takes two files")
		}
		var resolver panasync.Resolver
		if *merge {
			resolver = concatResolver
		}
		if err := ws.Sync(rest[0], rest[1], resolver); err != nil {
			return err
		}
		fmt.Fprintf(out, "synchronized %s and %s\n", rest[0], rest[1])
		return nil
	case "forget":
		if len(rest) != 1 {
			return errors.New("forget takes one file")
		}
		if err := ws.Forget(rest[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "forgot %s\n", rest[0])
		return nil
	case "list":
		if len(rest) != 0 {
			return errors.New("list takes no arguments")
		}
		statuses, err := ws.Tracked()
		if err != nil {
			return err
		}
		for _, st := range statuses {
			printStatus(out, st)
		}
		return nil
	default:
		fmt.Fprint(out, usage)
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func printStatus(out io.Writer, st panasync.Status) {
	dirty := ""
	if st.Dirty {
		dirty = "  (edited since last record — run `panasync edit`)"
	}
	fmt.Fprintf(out, "%-30s %s%s\n", st.Path, st.Stamp, dirty)
}

// concatResolver merges conflicting copies by concatenating both contents
// under conflict markers, leaving the real merge to the user's editor.
func concatResolver(pathA, pathB string, a, b []byte) ([]byte, error) {
	var buf []byte
	buf = append(buf, []byte(fmt.Sprintf("<<<<<<< %s\n", pathA))...)
	buf = append(buf, a...)
	buf = append(buf, []byte(fmt.Sprintf("\n======= %s\n", pathB))...)
	buf = append(buf, b...)
	buf = append(buf, []byte("\n>>>>>>>\n")...)
	return buf, nil
}

// Command panasync is a file-copy dependency tracker in the style of the
// PANASYNC toolset, the system in which the paper's version stamps first
// shipped (paper §7). It tracks copies of single files with version-stamp
// sidecars and answers, with no server and no global configuration, how any
// two copies relate:
//
//	$ panasync -root ~/docs init report.txt
//	$ panasync -root ~/docs copy report.txt backup/report.txt
//	$ ... edit report.txt ...
//	$ panasync -root ~/docs edit report.txt
//	$ panasync -root ~/docs compare report.txt backup/report.txt
//	after
//	$ panasync -root ~/docs sync report.txt backup/report.txt
//	$ panasync -root ~/docs list
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"versionstamp/internal/antientropy"
	"versionstamp/internal/kvstore"
	"versionstamp/internal/panasync"
	"versionstamp/internal/ring"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "panasync:", err)
		os.Exit(1)
	}
}

const usage = `usage: panasync -root <dir> <command> [arguments]

commands:
  init <file>            start tracking a file (it becomes the seed copy)
  copy <src> <dst>       duplicate a tracked file; the stamp forks
  edit <file>            record that the file's content was changed
  status <file>          print the stamp and whether edits are unrecorded
  compare <a> <b>        print equal | before | after | concurrent
  sync <a> <b>           reconcile two copies (conflicts need -merge)
  forget <file>          stop tracking a file
  list                   list all tracked copies
  serve                  serve the workspace for network sync (see -listen)
  netsync <addr>         synchronize the whole workspace with a serving peer

flags:
  -root <dir>       workspace root (default ".")
  -merge            on conflicting sync, concatenate both contents with a marker
  -listen <addr>    serve: listen address (default 127.0.0.1:0)
  -linger <dur>     serve: stop after this duration (default 0 = forever)
  -data-dir <dir>   serve: durable WAL-backed store; survives crashes and
                    restarts without whole-state snapshots (default off)
  -node <id>        serve: this node's identity on the ring (default "serve")
  -join <ids>       serve: comma-separated peer identities forming the ring
  -ring <R>         serve: replication factor; with -join, prints a ring-status
                    report of stripe ownership across the members (default 0 = off)
`

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("panasync", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	root := fs.String("root", ".", "workspace root directory")
	merge := fs.Bool("merge", false, "resolve conflicting syncs by concatenation")
	listen := fs.String("listen", "127.0.0.1:0", "serve: listen address")
	linger := fs.Duration("linger", 0, "serve: stop after this duration (0 = forever)")
	dataDir := fs.String("data-dir", "", "serve: durable WAL-backed store directory (empty = in-memory)")
	nodeID := fs.String("node", "serve", "serve: this node's ring identity")
	join := fs.String("join", "", "serve: comma-separated peer identities forming the ring")
	ringR := fs.Int("ring", 0, "serve: replication factor (0 = ring mode off)")
	if err := fs.Parse(args); err != nil {
		fmt.Fprint(out, usage)
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprint(out, usage)
		return errors.New("missing command")
	}
	dirFS, err := panasync.NewDirFS(*root)
	if err != nil {
		return err
	}
	ws := panasync.NewWorkspace(dirFS)

	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "help":
		fmt.Fprint(out, usage)
		return nil
	case "init":
		if len(rest) != 1 {
			return errors.New("init takes one file")
		}
		if err := ws.Init(rest[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "tracking %s\n", rest[0])
		return nil
	case "copy":
		if len(rest) != 2 {
			return errors.New("copy takes source and destination")
		}
		if err := ws.Copy(rest[0], rest[1]); err != nil {
			return err
		}
		fmt.Fprintf(out, "copied %s -> %s (identities forked)\n", rest[0], rest[1])
		return nil
	case "edit":
		if len(rest) != 1 {
			return errors.New("edit takes one file")
		}
		if err := ws.Edit(rest[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded update on %s\n", rest[0])
		return nil
	case "status":
		if len(rest) != 1 {
			return errors.New("status takes one file")
		}
		st, err := ws.Stat(rest[0])
		if err != nil {
			return err
		}
		printStatus(out, st)
		return nil
	case "compare":
		if len(rest) != 2 {
			return errors.New("compare takes two files")
		}
		rel, err := ws.Compare(rest[0], rest[1])
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rel)
		return nil
	case "sync":
		if len(rest) != 2 {
			return errors.New("sync takes two files")
		}
		var resolver panasync.Resolver
		if *merge {
			resolver = concatResolver
		}
		if err := ws.Sync(rest[0], rest[1], resolver); err != nil {
			return err
		}
		fmt.Fprintf(out, "synchronized %s and %s\n", rest[0], rest[1])
		return nil
	case "forget":
		if len(rest) != 1 {
			return errors.New("forget takes one file")
		}
		if err := ws.Forget(rest[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "forgot %s\n", rest[0])
		return nil
	case "serve":
		if len(rest) != 0 {
			return errors.New("serve takes no arguments")
		}
		return serve(ws, out, *listen, *linger, *merge, *dataDir, *nodeID, *join, *ringR)
	case "netsync":
		if len(rest) != 1 {
			return errors.New("netsync takes a peer address")
		}
		return netsync(ws, out, rest[0])
	case "list":
		if len(rest) != 0 {
			return errors.New("list takes no arguments")
		}
		statuses, err := ws.Tracked()
		if err != nil {
			return err
		}
		for _, st := range statuses {
			printStatus(out, st)
		}
		return nil
	default:
		fmt.Fprint(out, usage)
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// serve exports the workspace as a sharded kvstore replica and serves
// per-shard anti-entropy rounds to peers running `panasync netsync`. When
// the server stops — after -linger, or on SIGINT/SIGTERM in the default
// serve-forever mode — the merged state is written back into the
// workspace.
//
// With -data-dir the replica is WAL-backed: every mutation a peer round
// applies lands in the directory's per-stripe log before it is
// acknowledged, the workspace merges into whatever state the directory
// already holds (so a crashed server restarts from its own log, not from a
// snapshot), and a graceful stop checkpoints the store so the next start
// replays nothing.
// With -ring R (and -join listing the peers that serve the same workspace)
// the server also reports its position on the consistent-hash ring: which
// stripes it owns, and which peers own each tracked file — so an operator
// running one `panasync serve` per site can see who is responsible for
// what before pointing `netsync` at the right owners. Ring mode changes
// the report, not the protocol: every stripe is still served, because a
// non-owner may be a peer's only reachable sync partner.
func serve(ws *panasync.Workspace, out io.Writer, listen string, linger time.Duration, merge bool, dataDir, nodeID, join string, ringR int) error {
	var (
		replica *kvstore.Replica
		base    *panasync.Baseline
		err     error
	)
	if dataDir != "" {
		replica, err = kvstore.Open(dataDir, kvstore.Options{Label: "serve"})
		if err != nil {
			return err
		}
		base, err = panasync.MergeIntoReplica(ws, replica)
	} else {
		replica, base, err = panasync.ToReplica(ws, "serve")
	}
	if err != nil {
		return err
	}
	srv := antientropy.NewServer(replica, kvResolver(merge))
	addr, err := srv.Listen(listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving workspace on %s (%d files, %d shards)\n",
		addr, replica.Len(), replica.Shards())
	// Storage health: a damaged -data-dir no longer refuses to serve — the
	// corrupt stripe is quarantined and everything else loads — but the
	// operator must see the degradation and that a peer sync repairs it.
	if dataDir != "" {
		if q := replica.Quarantined(); len(q) > 0 {
			fmt.Fprintf(out, "storage: quarantined stripe(s) %v — serving the intact remainder; peer rounds re-fill their contents\n", q)
		}
		if perr := replica.PersistErr(); perr != nil {
			fmt.Fprintf(out, "storage: durability degraded: %v\n", perr)
		}
	}
	if ringR > 0 {
		if err := ringReport(out, replica, nodeID, join, ringR); err != nil {
			_ = srv.Close()
			return err
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	if linger > 0 {
		select {
		case <-time.After(linger):
		case <-stop:
		}
	} else {
		<-stop // serve until interrupted, then write back
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if dataDir != "" {
		// Graceful-shutdown checkpoint: the directory reopens replaying no
		// log. A crash instead of this path just replays more log.
		if err := replica.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "checkpointed %d files to %s\n", replica.Len(), dataDir)
	}
	skipped, err := panasync.ApplyReplica(ws, replica, base)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "stopped; workspace updated (%d files)\n", replica.Len())
	for _, p := range skipped {
		fmt.Fprintf(out, "kept local edit made during the sync: %s (sync again to reconcile)\n", p)
	}
	return nil
}

// netsync synchronizes the whole workspace with a serving peer: one
// hierarchical (v3) anti-entropy round over a pooled connection — stripe
// summaries travel first, digests only for stripes whose summaries differ,
// stamps prune the unchanged files from the wire — then the merged state is
// written back into the workspace. Conflicts are resolved by the serving
// side's -merge setting; unresolved ones are reported here.
func netsync(ws *panasync.Workspace, out io.Writer, addr string) error {
	replica, base, err := panasync.ToReplica(ws, "netsync")
	if err != nil {
		return err
	}
	pool := antientropy.NewPool()
	defer pool.Close()
	res, err := pool.SyncWith(addr, replica)
	if err != nil {
		return err
	}
	skipped, err := panasync.ApplyReplica(ws, replica, base)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "synchronized with %s: %d transferred, %d reconciled, %d merged, %d unchanged (pruned)\n",
		addr, res.Transferred, res.Reconciled, res.Merged, res.Pruned)
	fmt.Fprintf(out, "summary phase: %d of %d stripes skipped unread; wire: %dB sent, %dB received; %d dial(s)\n",
		res.StripesSkipped, replica.Shards(), res.BytesSent, res.BytesReceived, pool.Dials())
	for _, k := range res.Conflicts {
		fmt.Fprintf(out, "conflict left unresolved: %s (serve with -merge to resolve)\n", k)
	}
	for _, p := range skipped {
		fmt.Fprintf(out, "kept local edit made during the sync: %s (sync again to reconcile)\n", p)
	}
	return nil
}

// ringReport prints this node's view of the consistent-hash ring formed by
// -node plus the -join roster: member count, the stripes owned here, and
// each tracked file's owners. Files map to stripes exactly as the sharded
// replica maps them (ShardIndex over the shard count), so the report shows
// what stripe-scoped anti-entropy would make this node responsible for.
func ringReport(out io.Writer, replica *kvstore.Replica, nodeID, join string, ringR int) error {
	roster := []string{nodeID}
	for _, p := range strings.Split(join, ",") {
		if p = strings.TrimSpace(p); p != "" && p != nodeID {
			roster = append(roster, p)
		}
	}
	// The ring package clamps replication to the member count (membership
	// churn can legitimately shrink a ring below R); at the CLI a factor
	// beyond the roster is a configuration mistake, so reject it up front.
	if ringR > len(roster) {
		return fmt.Errorf("ring: replication %d exceeds the %d-member roster (-join more peers)",
			ringR, len(roster))
	}
	r, err := ring.New(roster, replica.Shards(), ringR)
	if err != nil {
		return fmt.Errorf("ring: %w", err)
	}
	owned := r.StripesOwnedBy(nodeID)
	fmt.Fprintf(out, "ring: %d members, replication %d, %d stripes; %s owns %d stripes\n",
		len(roster), ringR, r.Stripes(), nodeID, len(owned))
	keys := replica.Keys()
	sort.Strings(keys)
	for _, key := range keys {
		s := kvstore.ShardIndex(key, replica.Shards())
		owners, err := r.Owners(s)
		if err != nil {
			return err
		}
		marker := " "
		if r.Owns(nodeID, s) {
			marker = "*" // this node is an owner
		}
		fmt.Fprintf(out, " %s stripe %2d  %-30s owners: %s\n",
			marker, s, key, strings.Join(owners, ", "))
	}
	return nil
}

// kvResolver adapts the -merge flag to the store's resolver: conflicting
// contents are concatenated under conflict markers, leaving the real merge
// to the user's editor. Without -merge conflicts are skipped and reported.
func kvResolver(merge bool) kvstore.Resolver {
	if !merge {
		return nil
	}
	return func(key string, a, b kvstore.Versioned) ([]byte, bool, error) {
		switch {
		case a.Deleted && b.Deleted:
			return nil, true, nil
		case a.Deleted:
			return b.Value, false, nil
		case b.Deleted:
			return a.Value, false, nil
		}
		var buf []byte
		buf = append(buf, []byte(fmt.Sprintf("<<<<<<< %s (server)\n", key))...)
		buf = append(buf, a.Value...)
		buf = append(buf, []byte("\n=======\n")...)
		buf = append(buf, b.Value...)
		buf = append(buf, []byte("\n>>>>>>>\n")...)
		return buf, false, nil
	}
}

func printStatus(out io.Writer, st panasync.Status) {
	dirty := ""
	if st.Dirty {
		dirty = "  (edited since last record — run `panasync edit`)"
	}
	fmt.Fprintf(out, "%-30s %s%s\n", st.Path, st.Stamp, dirty)
}

// concatResolver merges conflicting copies by concatenating both contents
// under conflict markers, leaving the real merge to the user's editor.
func concatResolver(pathA, pathB string, a, b []byte) ([]byte, error) {
	var buf []byte
	buf = append(buf, []byte(fmt.Sprintf("<<<<<<< %s\n", pathA))...)
	buf = append(buf, a...)
	buf = append(buf, []byte(fmt.Sprintf("\n======= %s\n", pathB))...)
	buf = append(buf, b...)
	buf = append(buf, []byte("\n>>>>>>>\n")...)
	return buf, nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runIn(t *testing.T, root string, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(append([]string{"-root", root}, args...), &sb)
	return sb.String(), err
}

func write(t *testing.T, root, rel, content string) {
	t.Helper()
	full := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFullWorkflow(t *testing.T) {
	root := t.TempDir()
	write(t, root, "report.txt", "v1")

	out, err := runIn(t, root, "init", "report.txt")
	if err != nil {
		t.Fatalf("init: %v", err)
	}
	if !strings.Contains(out, "tracking report.txt") {
		t.Errorf("init output: %q", out)
	}

	if _, err := runIn(t, root, "copy", "report.txt", "backup/report.txt"); err != nil {
		t.Fatalf("copy: %v", err)
	}

	// Edit the original and record it.
	write(t, root, "report.txt", "v2")
	out, _ = runIn(t, root, "status", "report.txt")
	if !strings.Contains(out, "edited since last record") {
		t.Errorf("status should flag dirty file: %q", out)
	}
	if _, err := runIn(t, root, "edit", "report.txt"); err != nil {
		t.Fatalf("edit: %v", err)
	}

	out, err = runIn(t, root, "compare", "report.txt", "backup/report.txt")
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if strings.TrimSpace(out) != "after" {
		t.Errorf("compare = %q, want after", out)
	}

	if _, err := runIn(t, root, "sync", "report.txt", "backup/report.txt"); err != nil {
		t.Fatalf("sync: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(root, "backup/report.txt"))
	if err != nil || string(data) != "v2" {
		t.Fatalf("backup content after sync = %q, %v", data, err)
	}

	out, err = runIn(t, root, "list")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(out, "report.txt") || !strings.Contains(out, "backup/report.txt") {
		t.Errorf("list output: %q", out)
	}

	if _, err := runIn(t, root, "forget", "backup/report.txt"); err != nil {
		t.Fatalf("forget: %v", err)
	}
	out, _ = runIn(t, root, "list")
	if strings.Contains(out, "backup/report.txt") {
		t.Errorf("forgot file still listed: %q", out)
	}
}

func TestConflictNeedsMergeFlag(t *testing.T) {
	root := t.TempDir()
	write(t, root, "a.txt", "base")
	if _, err := runIn(t, root, "init", "a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := runIn(t, root, "copy", "a.txt", "b.txt"); err != nil {
		t.Fatal(err)
	}
	write(t, root, "a.txt", "A")
	write(t, root, "b.txt", "B")
	if _, err := runIn(t, root, "edit", "a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := runIn(t, root, "edit", "b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := runIn(t, root, "sync", "a.txt", "b.txt"); err == nil {
		t.Fatal("conflicting sync without -merge must fail")
	}
	if _, err := runIn(t, root, "-merge", "sync", "a.txt", "b.txt"); err != nil {
		t.Fatalf("sync -merge: %v", err)
	}
	data, _ := os.ReadFile(filepath.Join(root, "a.txt"))
	if !strings.Contains(string(data), "<<<<<<<") || !strings.Contains(string(data), "B") {
		t.Errorf("merged content = %q", data)
	}
	out, _ := runIn(t, root, "compare", "a.txt", "b.txt")
	if strings.TrimSpace(out) != "equal" {
		t.Errorf("post-merge compare = %q", out)
	}
}

func TestErrorsPanasyncCLI(t *testing.T) {
	root := t.TempDir()
	write(t, root, "f", "x")
	cases := [][]string{
		{},                      // no command
		{"bogus"},               // unknown command
		{"init"},                // missing file
		{"init", "missing.txt"}, // nonexistent file
		{"copy", "f"},           // missing dst
		{"edit", "f"},           // untracked
		{"status", "f"},         // untracked
		{"compare", "f"},        // one file
		{"sync", "f"},           // one file
		{"forget", "f"},         // untracked
		{"list", "extra"},       // extra args
	}
	for _, args := range cases {
		if _, err := runIn(t, root, args...); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-root", "/definitely/not/a/dir", "list"}, &sb); err == nil {
		t.Error("bad root accepted")
	}
	if err := run([]string{"-notaflag"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestHelpPanasync(t *testing.T) {
	root := t.TempDir()
	out, err := runIn(t, root, "help")
	if err != nil {
		t.Fatalf("help: %v", err)
	}
	if !strings.Contains(out, "usage: panasync") {
		t.Errorf("help = %q", out)
	}
}

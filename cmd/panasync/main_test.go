package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"versionstamp/internal/antientropy"
	"versionstamp/internal/panasync"
)

func runIn(t *testing.T, root string, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(append([]string{"-root", root}, args...), &sb)
	return sb.String(), err
}

func write(t *testing.T, root, rel, content string) {
	t.Helper()
	full := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFullWorkflow(t *testing.T) {
	root := t.TempDir()
	write(t, root, "report.txt", "v1")

	out, err := runIn(t, root, "init", "report.txt")
	if err != nil {
		t.Fatalf("init: %v", err)
	}
	if !strings.Contains(out, "tracking report.txt") {
		t.Errorf("init output: %q", out)
	}

	if _, err := runIn(t, root, "copy", "report.txt", "backup/report.txt"); err != nil {
		t.Fatalf("copy: %v", err)
	}

	// Edit the original and record it.
	write(t, root, "report.txt", "v2")
	out, _ = runIn(t, root, "status", "report.txt")
	if !strings.Contains(out, "edited since last record") {
		t.Errorf("status should flag dirty file: %q", out)
	}
	if _, err := runIn(t, root, "edit", "report.txt"); err != nil {
		t.Fatalf("edit: %v", err)
	}

	out, err = runIn(t, root, "compare", "report.txt", "backup/report.txt")
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if strings.TrimSpace(out) != "after" {
		t.Errorf("compare = %q, want after", out)
	}

	if _, err := runIn(t, root, "sync", "report.txt", "backup/report.txt"); err != nil {
		t.Fatalf("sync: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(root, "backup/report.txt"))
	if err != nil || string(data) != "v2" {
		t.Fatalf("backup content after sync = %q, %v", data, err)
	}

	out, err = runIn(t, root, "list")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(out, "report.txt") || !strings.Contains(out, "backup/report.txt") {
		t.Errorf("list output: %q", out)
	}

	if _, err := runIn(t, root, "forget", "backup/report.txt"); err != nil {
		t.Fatalf("forget: %v", err)
	}
	out, _ = runIn(t, root, "list")
	if strings.Contains(out, "backup/report.txt") {
		t.Errorf("forgot file still listed: %q", out)
	}
}

func TestConflictNeedsMergeFlag(t *testing.T) {
	root := t.TempDir()
	write(t, root, "a.txt", "base")
	if _, err := runIn(t, root, "init", "a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := runIn(t, root, "copy", "a.txt", "b.txt"); err != nil {
		t.Fatal(err)
	}
	write(t, root, "a.txt", "A")
	write(t, root, "b.txt", "B")
	if _, err := runIn(t, root, "edit", "a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := runIn(t, root, "edit", "b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := runIn(t, root, "sync", "a.txt", "b.txt"); err == nil {
		t.Fatal("conflicting sync without -merge must fail")
	}
	if _, err := runIn(t, root, "-merge", "sync", "a.txt", "b.txt"); err != nil {
		t.Fatalf("sync -merge: %v", err)
	}
	data, _ := os.ReadFile(filepath.Join(root, "a.txt"))
	if !strings.Contains(string(data), "<<<<<<<") || !strings.Contains(string(data), "B") {
		t.Errorf("merged content = %q", data)
	}
	out, _ := runIn(t, root, "compare", "a.txt", "b.txt")
	if strings.TrimSpace(out) != "equal" {
		t.Errorf("post-merge compare = %q", out)
	}
}

func TestErrorsPanasyncCLI(t *testing.T) {
	root := t.TempDir()
	write(t, root, "f", "x")
	cases := [][]string{
		{},                      // no command
		{"bogus"},               // unknown command
		{"init"},                // missing file
		{"init", "missing.txt"}, // nonexistent file
		{"copy", "f"},           // missing dst
		{"edit", "f"},           // untracked
		{"status", "f"},         // untracked
		{"compare", "f"},        // one file
		{"sync", "f"},           // one file
		{"forget", "f"},         // untracked
		{"list", "extra"},       // extra args
	}
	for _, args := range cases {
		if _, err := runIn(t, root, args...); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-root", "/definitely/not/a/dir", "list"}, &sb); err == nil {
		t.Error("bad root accepted")
	}
	if err := run([]string{"-notaflag"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestHelpPanasync(t *testing.T) {
	root := t.TempDir()
	out, err := runIn(t, root, "help")
	if err != nil {
		t.Fatalf("help: %v", err)
	}
	if !strings.Contains(out, "usage: panasync") {
		t.Errorf("help = %q", out)
	}
}

// TestNetsync drives the network pair end to end: workspace B is served
// over the antientropy protocol and workspace A runs `netsync` against it.
func TestNetsync(t *testing.T) {
	rootA, rootB := t.TempDir(), t.TempDir()
	write(t, rootA, "doc-a.txt", "from-a")
	write(t, rootB, "doc-b.txt", "from-b")
	if _, err := runIn(t, rootA, "init", "doc-a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := runIn(t, rootB, "init", "doc-b.txt"); err != nil {
		t.Fatal(err)
	}

	// Serve workspace B directly through the library (the `serve` command
	// does exactly this) so the test controls the address.
	fsB, err := panasync.NewDirFS(rootB)
	if err != nil {
		t.Fatal(err)
	}
	wsB := panasync.NewWorkspace(fsB)
	replicaB, baseB, err := panasync.ToReplica(wsB, "b")
	if err != nil {
		t.Fatal(err)
	}
	srv := antientropy.NewServer(replicaB, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	out, err := runIn(t, rootA, "netsync", addr)
	if err != nil {
		t.Fatalf("netsync: %v", err)
	}
	if !strings.Contains(out, "2 transferred") {
		t.Errorf("netsync output: %q", out)
	}
	// A received B's file, tracked and clean.
	out, err = runIn(t, rootA, "status", "doc-b.txt")
	if err != nil {
		t.Fatalf("status after netsync: %v", err)
	}
	if strings.Contains(out, "edited since last record") {
		t.Errorf("synced file dirty: %q", out)
	}
	// The server side replica got A's file too; write it back like `serve`
	// does on shutdown.
	if _, err := panasync.ApplyReplica(wsB, replicaB, baseB); err != nil {
		t.Fatal(err)
	}
	if _, err := runIn(t, rootB, "status", "doc-a.txt"); err != nil {
		t.Fatalf("server workspace missing synced file: %v", err)
	}

	// netsync with no reachable peer fails cleanly.
	if _, err := runIn(t, rootA, "netsync", "127.0.0.1:1"); err == nil {
		t.Error("netsync against a dead peer must fail")
	}
	// netsync argument validation.
	if _, err := runIn(t, rootA, "netsync"); err == nil {
		t.Error("netsync without address must fail")
	}
}

// TestServeLinger exercises the serve command with a bounded lifetime.
func TestServeLinger(t *testing.T) {
	root := t.TempDir()
	write(t, root, "doc.txt", "v1")
	if _, err := runIn(t, root, "init", "doc.txt"); err != nil {
		t.Fatal(err)
	}
	out, err := runIn(t, root, "-linger", "200ms", "-listen", "127.0.0.1:0", "serve")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	if !strings.Contains(out, "serving workspace on 127.0.0.1:") {
		t.Errorf("serve output: %q", out)
	}
	if !strings.Contains(out, "stopped; workspace updated") {
		t.Errorf("serve did not report shutdown: %q", out)
	}
	if _, err := runIn(t, root, "serve", "extra"); err == nil {
		t.Error("serve with arguments must fail")
	}
}

// TestServeRingStatus: serve -ring with a -join roster prints the ring
// ownership report — member count, stripes owned by this node, and each
// tracked file's owners. Every file must list exactly R owners drawn from
// the roster, and an invalid replication factor must be rejected.
func TestServeRingStatus(t *testing.T) {
	root := t.TempDir()
	write(t, root, "doc.txt", "v1")
	write(t, root, "notes.txt", "v1")
	if _, err := runIn(t, root, "init", "doc.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := runIn(t, root, "init", "notes.txt"); err != nil {
		t.Fatal(err)
	}
	out, err := runIn(t, root, "-linger", "200ms", "-listen", "127.0.0.1:0",
		"-node", "site-a", "-join", "site-b, site-c", "-ring", "2", "serve")
	if err != nil {
		t.Fatalf("ring serve: %v", err)
	}
	if !strings.Contains(out, "ring: 3 members, replication 2") {
		t.Errorf("missing ring summary: %q", out)
	}
	if !strings.Contains(out, "site-a owns") {
		t.Errorf("missing ownership count: %q", out)
	}
	for _, f := range []string{"doc.txt", "notes.txt"} {
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, f) && strings.Contains(l, "owners:") {
				line = l
			}
		}
		if line == "" {
			t.Fatalf("no ownership line for %s: %q", f, out)
		}
		owners := strings.TrimSpace(strings.SplitN(line, "owners:", 2)[1])
		if got := len(strings.Split(owners, ", ")); got != 2 {
			t.Errorf("%s lists %d owners (%q), want 2", f, got, owners)
		}
	}
	// Replication beyond the roster is a ring error, reported before serving.
	if _, err := runIn(t, root, "-linger", "100ms", "-node", "solo", "-ring", "5", "serve"); err == nil {
		t.Error("replication 5 on a 1-member ring must fail")
	}
}

// TestServeDataDir exercises the durable serve path: the workspace merges
// into a WAL-backed store, shutdown checkpoints it, and a second serve
// session reopens the same directory without complaint.
func TestServeDataDir(t *testing.T) {
	root, data := t.TempDir(), filepath.Join(t.TempDir(), "store")
	write(t, root, "doc.txt", "v1")
	if _, err := runIn(t, root, "init", "doc.txt"); err != nil {
		t.Fatal(err)
	}
	out, err := runIn(t, root, "-linger", "200ms", "-listen", "127.0.0.1:0",
		"-data-dir", data, "serve")
	if err != nil {
		t.Fatalf("durable serve: %v", err)
	}
	if !strings.Contains(out, "checkpointed 1 files to "+data) {
		t.Errorf("serve did not report the shutdown checkpoint: %q", out)
	}
	if _, err := os.Stat(filepath.Join(data, "meta.json")); err != nil {
		t.Errorf("data dir has no metadata: %v", err)
	}
	ckpts, _ := filepath.Glob(filepath.Join(data, "shard-*.ckpt"))
	if len(ckpts) == 0 {
		t.Error("shutdown wrote no shard checkpoints")
	}
	// Restart against the same directory: state reloads, nothing replays.
	if _, err := runIn(t, root, "-linger", "100ms", "-listen", "127.0.0.1:0",
		"-data-dir", data, "serve"); err != nil {
		t.Fatalf("durable serve restart: %v", err)
	}
}

// Command benchconverge is the convergence CI gate of the chaos lab: it
// runs every predefined fault scenario (internal/sim.Suite) — partition and
// heal, lossy links under quorum writes, crash and WAL restart, membership
// churn, the 1000-node full-monte, at-rest disk corruption with scrub and
// ring repair, and the correlated failure of a stripe's whole owner set —
// over a seeded chaosnet fabric, and emits the per-scenario convergence
// metrics as machine-readable JSON (the BENCH_convergence.json artifact CI
// tracks across PRs).
//
// The command exits non-zero when a gate fails:
//
//   - every scenario must converge within its round budget (and within
//     -rounds, when set tighter);
//
//   - every scenario must be deterministic: run twice with the same seed,
//     it must produce byte-identical metrics — logical time and seeded
//     faults leave no room for luck;
//
//   - stamps must not blow up: no scenario may end with a max compact
//     stamp above -stampcap bytes (the paper's core cost metric);
//
//   - every scenario must end fully self-healed: zero quarantined stripes
//     and zero standing persistence errors at the finish line;
//
//   - deletes must complete their lifecycle: every scenario must end with
//     zero live tombstones (the GC proved propagation and discarded them),
//     zero resurrections (no deleted key reads as present after the healed
//     cluster converged), and — when the scenario issued deletes at all —
//     a nonzero discard count, so the GC demonstrably ran.
//
//     benchconverge -seed 7 -out BENCH_convergence.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"versionstamp/internal/sim"
)

// Report is the whole emitted document.
type Report struct {
	Seed      int64                  `json:"seed"`
	RoundGate int                    `json:"roundGate"` // 0 = per-scenario budget only
	StampCap  int                    `json:"stampCapBytes"`
	Scenarios []*sim.ScenarioMetrics `json:"scenarios"`
}

func main() {
	seed := flag.Int64("seed", 1, "scenario seed (faults, peer selection, write stream)")
	rounds := flag.Int("rounds", 0, "extra round gate on top of each scenario's budget (0 = off)")
	stampcap := flag.Int("stampcap", 4096, "max allowed compact stamp size in bytes")
	short := flag.Bool("short", false, "reserved: trim the suite for smoke runs")
	out := flag.String("out", "BENCH_convergence.json", `output path ("-" = stdout)`)
	flag.Parse()
	if err := run(*seed, *rounds, *stampcap, *short, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchconverge:", err)
		os.Exit(1)
	}
}

func run(seed int64, rounds, stampcap int, short bool, out string, log io.Writer) error {
	dataDir, err := os.MkdirTemp("", "benchconverge-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	report := Report{Seed: seed, RoundGate: rounds, StampCap: stampcap}
	for _, s := range sim.Suite(seed, dataDir, short) {
		fmt.Fprintf(log, "benchconverge: %-16s n=%-5d ...", s.Name, s.Nodes)
		m, err := s.Run()
		if err != nil {
			fmt.Fprintln(log)
			return err
		}
		fmt.Fprintf(log, " rounds=%d writes=%d (err %d) hints drained=%d dropped=%d wire=%dB stamp max=%dB\n",
			m.Rounds, m.Writes, m.WriteErrors, m.HintsDrained, m.HintsDropped, m.WireBytes, m.StampBytesMax)

		// Determinism gate: same scenario, same seed, fresh fabric and
		// (for durable scenarios) fresh directories — byte-identical
		// metrics or the lab has a hidden source of nondeterminism.
		s2 := s
		if s.DataDir != "" {
			if s2.DataDir, err = os.MkdirTemp("", "benchconverge-rerun-*"); err != nil {
				return err
			}
			defer os.RemoveAll(s2.DataDir)
		}
		m2, err := s2.Run()
		if err != nil {
			return fmt.Errorf("%s: rerun: %w", s.Name, err)
		}
		ja, _ := json.Marshal(m)
		jb, _ := json.Marshal(m2)
		if string(ja) != string(jb) {
			return fmt.Errorf("gate: %s is nondeterministic:\n  %s\n  %s", s.Name, ja, jb)
		}

		// Convergence gates.
		if !m.Converged {
			return fmt.Errorf("gate: %s did not converge within %d rounds", m.Name, m.RoundBudget)
		}
		if rounds > 0 && m.Rounds > rounds {
			return fmt.Errorf("gate: %s took %d rounds, gate is %d", m.Name, m.Rounds, rounds)
		}
		if m.StampBytesMax > stampcap {
			return fmt.Errorf("gate: %s grew a %d-byte stamp, cap is %d", m.Name, m.StampBytesMax, stampcap)
		}
		// Self-healing gate: a run may quarantine stripes mid-flight (that
		// is the experiment), but it must end fully repaired — converging
		// around standing disk damage is not convergence.
		if m.QuarantinedEnd != 0 || m.PersistErrsEnd != 0 {
			return fmt.Errorf("gate: %s ended with %d quarantined stripes, %d nodes degraded",
				m.Name, m.QuarantinedEnd, m.PersistErrsEnd)
		}
		// Tombstone lifecycle gate: a converged, healed run must have drained
		// its tombstone ledger (the GC proved every delete replicated and
		// discarded it) without resurrecting a single deleted key — and a
		// scenario that deletes must actually have exercised the GC.
		if m.TombstonesEnd != 0 || m.Resurrections != 0 {
			return fmt.Errorf("gate: %s ended with %d live tombstones, %d resurrections",
				m.Name, m.TombstonesEnd, m.Resurrections)
		}
		if m.Deletes > 0 && m.TombstonesDiscarded == 0 {
			return fmt.Errorf("gate: %s issued %d deletes but the tombstone GC never discarded",
				m.Name, m.Deletes)
		}
		report.Scenarios = append(report.Scenarios, m)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

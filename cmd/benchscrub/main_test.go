package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEmitsValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_scrub.json")
	var progress strings.Builder
	if err := run(2000, 32, 16, 1, out, &progress); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if report.Keys != 2000 || report.Stripes != 16 {
		t.Fatalf("report shape = %d keys over %d stripes", report.Keys, report.Stripes)
	}
	if report.ScrubBytes == 0 || report.ScrubMBPerS <= 0 {
		t.Fatalf("scrub phase measured nothing: %+v", report)
	}
	if report.RepairRounds < 1 || report.RepairedTotal != 1 {
		t.Fatalf("repair phase did not rebuild exactly one stripe: %+v", report)
	}
}

func TestRunRejectsBadShape(t *testing.T) {
	if err := run(10, 32, 16, 1, "-", &strings.Builder{}); err == nil {
		t.Fatal("tiny key count accepted")
	}
}

// Command benchscrub measures the self-healing storage path and emits the
// numbers as machine-readable JSON (the BENCH_scrub.json artifact CI tracks
// across PRs). Two phases:
//
//   - Scrub throughput: a WAL-backed store is filled with -keys keys (half
//     checkpointed, half left in the logs — the scrub verifies both), and a
//     full background-scrub pass (one VerifyShard per stripe: frame CRCs
//     plus checkpoint checksums) is timed against the store's on-disk
//     footprint, yielding MB/s.
//
//   - Repair rounds: a 9-node R=3 ring is loaded with the same keyspace,
//     one node crashes, one byte of its busiest stripe's log is flipped at
//     rest, and the node revives. The phase counts the gossip rounds until
//     the quarantined stripe is rebuilt from its co-owners and cleared.
//
// The run doubles as a correctness gate (exit 1 on failure): the scrub of a
// healthy store must find nothing, the revival must quarantine exactly one
// stripe, the repair must complete within the round budget, and the cluster
// must converge with no standing quarantine or persistence error.
//
//	benchscrub -keys 100000 -out BENCH_scrub.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"versionstamp/internal/antientropy"
	"versionstamp/internal/kvstore"
	"versionstamp/internal/storage/faultfs"
)

// Report is the whole emitted document.
type Report struct {
	Keys       int `json:"keys"`
	ValueBytes int `json:"valueBytes"`
	Stripes    int `json:"stripes"`

	// Scrub throughput over a healthy store.
	ScrubBytes  int64   `json:"scrubBytes"`  // on-disk footprint verified
	ScrubMs     float64 `json:"scrubMs"`     // full pass, all stripes
	ScrubMBPerS float64 `json:"scrubMBPerS"` // ScrubBytes / ScrubMs

	// One-stripe rebuild from ring peers after at-rest corruption.
	RepairStripe  int `json:"repairStripe"`  // the corrupted stripe
	RepairRounds  int `json:"repairRounds"`  // gossip rounds until cleared
	RepairedTotal int `json:"repairedTotal"` // stripes repaired (gate: 1)
}

func main() {
	keys := flag.Int("keys", 100000, "keys to load before scrubbing and repairing")
	valueBytes := flag.Int("value-bytes", 64, "payload size per key")
	stripes := flag.Int("stripes", 32, "stripe count of every store")
	seed := flag.Int64("seed", 1, "corruption target seed")
	out := flag.String("out", "BENCH_scrub.json", `output path ("-" = stdout)`)
	flag.Parse()
	if err := run(*keys, *valueBytes, *stripes, *seed, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchscrub:", err)
		os.Exit(1)
	}
}

func run(keys, valueBytes, stripes int, seed int64, out string, log io.Writer) error {
	if keys < 100 || valueBytes < 1 || stripes < 1 {
		return fmt.Errorf("need keys >= 100 (%d), value-bytes >= 1 (%d), stripes >= 1 (%d)",
			keys, valueBytes, stripes)
	}
	report := Report{Keys: keys, ValueBytes: valueBytes, Stripes: stripes}
	value := make([]byte, valueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	if err := scrubPhase(keys, stripes, value, &report, log); err != nil {
		return err
	}
	if err := repairPhase(keys, stripes, seed, value, &report, log); err != nil {
		return err
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// scrubPhase times a full verification pass over a loaded healthy store.
func scrubPhase(keys, stripes int, value []byte, report *Report, log io.Writer) error {
	dir, err := os.MkdirTemp("", "benchscrub-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	r, err := kvstore.Open(dir, kvstore.Options{Label: "scrub", Shards: stripes})
	if err != nil {
		return err
	}
	defer r.Abandon()
	// Half the keys end up in checkpoints, half stay as log frames, so the
	// timed pass exercises both verification paths.
	for i := 0; i < keys/2; i++ {
		r.Put(fmt.Sprintf("key-%07d", i), value)
	}
	if err := r.Checkpoint(); err != nil {
		return err
	}
	for i := keys / 2; i < keys; i++ {
		r.Put(fmt.Sprintf("key-%07d", i), value)
	}
	if err := r.PersistErr(); err != nil {
		return err
	}
	report.ScrubBytes = diskBytes(dir)

	start := time.Now()
	for i := 0; i < stripes; i++ {
		s, err := r.ScrubNext()
		if err != nil {
			return fmt.Errorf("gate: scrub of a healthy store found damage at stripe %d: %w", s, err)
		}
	}
	elapsed := time.Since(start)
	report.ScrubMs = float64(elapsed.Nanoseconds()) / 1e6
	if sec := elapsed.Seconds(); sec > 0 {
		report.ScrubMBPerS = float64(report.ScrubBytes) / 1e6 / sec
	}
	fmt.Fprintf(log, "benchscrub: scrub  %d keys, %d bytes in %.1fms = %.0f MB/s\n",
		keys, report.ScrubBytes, report.ScrubMs, report.ScrubMBPerS)
	return nil
}

// repairPhase counts gossip rounds to rebuild one corrupted stripe from its
// ring co-owners.
func repairPhase(keys, stripes int, seed int64, value []byte, report *Report, log io.Writer) error {
	dataDir, err := os.MkdirTemp("", "benchscrub-ring-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	c, err := antientropy.NewRingCluster(antientropy.RingConfig{
		Nodes: 9, Replication: 3, Stripes: stripes, Seed: seed,
		DataDir:  dataDir,
		Resolver: kvstore.KeepBoth([]byte("|")),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	for i := 0; i < keys; i++ {
		if _, err := c.Write(fmt.Sprintf("key-%07d", i), value); err != nil {
			return err
		}
	}
	if _, err := c.GossipUntilConverged(64); err != nil {
		return fmt.Errorf("pre-corruption convergence: %w", err)
	}

	const victim = 2
	if err := c.Kill(victim); err != nil {
		return err
	}
	ndir := filepath.Join(dataDir, fmt.Sprintf("node-%d", victim))
	stripe, ok := faultfs.BusiestShard(ndir, stripes)
	if !ok {
		return fmt.Errorf("victim has no WAL logs under %s", ndir)
	}
	if _, err := faultfs.FlipLogByte(ndir, stripe, seed); err != nil {
		return err
	}
	if err := c.Revive(victim); err != nil {
		return err
	}
	report.RepairStripe = stripe
	r, err := c.Replica(victim)
	if err != nil {
		return err
	}
	if !r.StripeQuarantined(stripe) {
		return fmt.Errorf("gate: revival did not quarantine corrupted stripe %d", stripe)
	}

	const budget = 16
	for round := 1; round <= budget; round++ {
		stats, err := c.GossipRoundStats(2)
		if err != nil {
			return err
		}
		report.RepairedTotal += stats.StripesRepaired
		if len(r.Quarantined()) == 0 {
			report.RepairRounds = round
			break
		}
	}
	if report.RepairRounds == 0 {
		return fmt.Errorf("gate: stripe %d not repaired within %d rounds", stripe, budget)
	}
	if report.RepairedTotal != 1 {
		return fmt.Errorf("gate: %d stripes repaired, want exactly 1", report.RepairedTotal)
	}
	if err := r.PersistErr(); err != nil {
		return fmt.Errorf("gate: PersistErr standing after repair: %w", err)
	}
	if _, err := c.GossipUntilConverged(64); err != nil {
		return fmt.Errorf("post-repair convergence: %w", err)
	}
	fmt.Fprintf(log, "benchscrub: repair stripe %d rebuilt from peers in %d round(s)\n",
		stripe, report.RepairRounds)
	return nil
}

// diskBytes sums the regular files under dir.
func diskBytes(dir string) int64 {
	var total int64
	_ = filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if fi, err := d.Info(); err == nil {
			total += fi.Size()
		}
		return nil
	})
	return total
}

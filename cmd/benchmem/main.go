// Command benchmem measures the memory footprint of a million-key durable
// replica with value paging against a load-everything baseline in the SAME
// process run, and emits the numbers as machine-readable JSON
// (BENCH_mem.json) — the artifact CI tracks so memory regressions show up
// as a diff rather than an OOM three PRs later.
//
// Two stores are built back to back from identical data: first a paged one
// (per-key metadata resident, value bytes faulted through a sized cache),
// then a conventional one holding every value on the heap. After each
// store's closing checkpoint the live heap is sampled (GC'd HeapAlloc — an
// RSS proxy that ignores the other store's freed garbage), and a Zipf hot
// read loop measures the paging toll on read latency.
//
// The run doubles as a gate: it exits non-zero unless the paged heap stays
// under 40% of the resident baseline and the hot-read p50 stays within 2x
// of all-in-RAM reads.
//
//	benchmem -keys 1000000 -out BENCH_mem.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"versionstamp/internal/kvstore"
)

// Report is the whole emitted document.
type Report struct {
	Keys       int   `json:"keys"`
	ValueBytes int   `json:"valueBytes"`
	CacheBytes int64 `json:"cacheBytes"`
	Reads      int   `json:"reads"`

	// Heap samples: GC'd HeapAlloc deltas over the process baseline.
	PagedHeapBytes      uint64  `json:"pagedHeapBytes"`      // paged store, post-checkpoint
	PagedHeapAfterReads uint64  `json:"pagedHeapAfterReads"` // same, after the hot-read loop warmed the cache
	ResidentHeapBytes   uint64  `json:"residentHeapBytes"`   // load-everything baseline
	HeapRatio           float64 `json:"heapRatio"`           // paged-after-reads / resident

	// Hot Zipf read latency medians.
	PagedReadP50Ns    int64   `json:"pagedReadP50Ns"`
	ResidentReadP50Ns int64   `json:"residentReadP50Ns"`
	ReadP50Ratio      float64 `json:"readP50Ratio"`

	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`

	GatesPassed bool `json:"gatesPassed"`
}

func main() {
	keys := flag.Int("keys", 1_000_000, "distinct keys to load")
	valueBytes := flag.Int("value-bytes", 64, "payload size per key")
	cacheBytes := flag.Int64("cache-bytes", kvstore.DefaultCacheBytes, "paged read cache budget")
	reads := flag.Int("reads", 200_000, "timed Zipf reads per store")
	gate := flag.Bool("gate", true, "exit non-zero when a bound is missed")
	out := flag.String("out", "BENCH_mem.json", `output path ("-" = stdout)`)
	flag.Parse()
	if err := run(*keys, *valueBytes, *cacheBytes, *reads, *gate, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchmem:", err)
		os.Exit(1)
	}
}

func run(keys, valueBytes int, cacheBytes int64, reads int, gate bool, out string, progress io.Writer) error {
	if keys < 1 || valueBytes < 1 || reads < 1 {
		return fmt.Errorf("need positive -keys, -value-bytes, -reads")
	}
	report := Report{Keys: keys, ValueBytes: valueBytes, CacheBytes: cacheBytes, Reads: reads}

	// One Zipf read schedule, replayed against both stores so they serve
	// byte-identical request streams.
	schedule := make([]int, reads)
	z := rand.NewZipf(rand.New(rand.NewSource(1)), 1.3, 4, uint64(keys-1))
	for i := range schedule {
		schedule[i] = int(z.Uint64())
	}

	base := heapBytes()

	// Phase 1: the paged store. Load, checkpoint (hot values migrate to the
	// cold index and leave the heap), sample, then read hot.
	pagedDir, err := os.MkdirTemp("", "benchmem-paged-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(pagedDir)
	paged, err := kvstore.Open(pagedDir, kvstore.Options{
		Label: "paged", GroupCommit: true, Paged: true, CacheBytes: cacheBytes,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(progress, "loading %d keys into the paged store...\n", keys)
	if err := load(paged, keys, valueBytes); err != nil {
		return err
	}
	if err := paged.Checkpoint(); err != nil {
		return err
	}
	report.PagedHeapBytes = delta(heapBytes(), base)
	if err := spotCheck(paged, keys, valueBytes); err != nil {
		return fmt.Errorf("paged store diverges: %w", err)
	}
	report.PagedReadP50Ns = readP50(paged, schedule)
	report.PagedHeapAfterReads = delta(heapBytes(), base)
	st := paged.CacheStats()
	report.CacheHits, report.CacheMisses = st.Hits, st.Misses
	if err := paged.Close(); err != nil {
		return err
	}
	paged = nil

	// Phase 2: the load-everything baseline, same data, values resident.
	base = heapBytes()
	resDir, err := os.MkdirTemp("", "benchmem-resident-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(resDir)
	resident, err := kvstore.Open(resDir, kvstore.Options{Label: "resident", GroupCommit: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(progress, "loading %d keys into the resident baseline...\n", keys)
	if err := load(resident, keys, valueBytes); err != nil {
		return err
	}
	if err := resident.Checkpoint(); err != nil {
		return err
	}
	report.ResidentHeapBytes = delta(heapBytes(), base)
	report.ResidentReadP50Ns = readP50(resident, schedule)
	if err := resident.Close(); err != nil {
		return err
	}

	if report.ResidentHeapBytes > 0 {
		report.HeapRatio = float64(report.PagedHeapAfterReads) / float64(report.ResidentHeapBytes)
	}
	if report.ResidentReadP50Ns > 0 {
		report.ReadP50Ratio = float64(report.PagedReadP50Ns) / float64(report.ResidentReadP50Ns)
	}
	report.GatesPassed = report.HeapRatio < 0.40 && report.ReadP50Ratio <= 2.0

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "-" {
		if _, err := progress.Write(doc); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(out, doc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s (heap ratio %.2f, read p50 ratio %.2f)\n",
			out, report.HeapRatio, report.ReadP50Ratio)
	}
	if gate && !report.GatesPassed {
		return fmt.Errorf("gate: heap ratio %.2f (want < 0.40), read p50 ratio %.2f (want <= 2.0)",
			report.HeapRatio, report.ReadP50Ratio)
	}
	return nil
}

func keyOf(i int) string { return fmt.Sprintf("key-%08d", i) }

func valueOf(i, valueBytes int) []byte {
	v := make([]byte, valueBytes)
	for j := range v {
		v[j] = byte('a' + (i+j)%26)
	}
	return v
}

// load writes the keyspace with 32 concurrent writers so group-commit
// windows amortize over many appends — a single sequential writer would pay
// one full commit window per Put.
func load(r *kvstore.Replica, keys, valueBytes int) error {
	const writers = 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < keys; i += writers {
				r.Put(keyOf(i), valueOf(i, valueBytes))
			}
		}(w)
	}
	wg.Wait()
	return r.PersistErr()
}

// spotCheck faults a pseudo-random sample back in and compares payloads —
// a paged store that pages in the wrong bytes must never produce a
// benchmark number.
func spotCheck(r *kvstore.Replica, keys, valueBytes int) error {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n < 1000; n++ {
		i := rng.Intn(keys)
		got, ok := r.Get(keyOf(i))
		if !ok || !bytes.Equal(got, valueOf(i, valueBytes)) {
			return fmt.Errorf("key %s: got %d bytes, ok=%v", keyOf(i), len(got), ok)
		}
	}
	return nil
}

// readP50 replays the Zipf schedule twice — once to warm, once timed — and
// returns the median per-read latency of the timed pass.
func readP50(r *kvstore.Replica, schedule []int) int64 {
	for _, i := range schedule {
		r.Get(keyOf(i))
	}
	lat := make([]int64, len(schedule))
	for n, i := range schedule {
		start := time.Now()
		r.Get(keyOf(i))
		lat[n] = time.Since(start).Nanoseconds()
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	return lat[len(lat)/2]
}

// heapBytes returns the live heap after a settling GC pass.
func heapBytes() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func delta(now, base uint64) uint64 {
	if now <= base {
		return 0
	}
	return now - base
}

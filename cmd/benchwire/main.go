// Command benchwire measures the wire cost and latency of one anti-entropy
// round under the v2 (delta) and v3 (hierarchical) protocols at several
// divergence levels, and emits the comparison as machine-readable JSON —
// the artifact CI tracks across PRs so protocol regressions show up as a
// diff in BENCH_antientropy.json rather than a buried log line.
//
//	benchwire -keys 1000 -out BENCH_antientropy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"versionstamp/internal/antientropy"
	"versionstamp/internal/kvstore"
)

// Measurement is one protocol × divergence data point.
type Measurement struct {
	Protocol       string `json:"protocol"`       // "v2-delta" or "v3-hier"
	DivergencePct  int    `json:"divergencePct"`  // diverged keys / keys × 100
	DivergedKeys   int    `json:"divergedKeys"`   // keys rewritten before the round
	WireBytes      int64  `json:"wireBytes"`      // sent + received, client view
	NsPerOp        int64  `json:"nsPerOp"`        // wall time of the measured round
	Dials          int64  `json:"dials"`          // TCP dials the measured round paid
	StripesSkipped int    `json:"stripesSkipped"` // v3 only: summary-matched stripes
}

// Report is the whole emitted document.
type Report struct {
	Keys    int           `json:"keys"`
	Shards  int           `json:"shards"`
	Results []Measurement `json:"results"`
}

func main() {
	keys := flag.Int("keys", 1000, "keyspace size")
	out := flag.String("out", "BENCH_antientropy.json", `output path ("-" = stdout)`)
	flag.Parse()
	if err := run(*keys, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchwire:", err)
		os.Exit(1)
	}
}

// pair builds a converged server/client pair of n keys with a listening
// server, returning a cleanup func.
func pair(n int) (*kvstore.Replica, *kvstore.Replica, string, func(), error) {
	server := kvstore.NewReplica("server")
	for i := 0; i < n; i++ {
		server.Put(fmt.Sprintf("key-%05d", i), []byte(fmt.Sprintf("value-%d-with-some-padding", i)))
	}
	client := server.Clone("client")
	srv := antientropy.NewServer(server, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, "", nil, err
	}
	return server, client, addr, func() { _ = srv.Close() }, nil
}

// measure runs one warm-up round and one measured round of sync over a
// freshly diverged client.
func measure(keys, diverged int, protocol string,
	sync func(string, *kvstore.Replica) (kvstore.SyncResult, error),
	dials func() int64) (Measurement, error) {
	_, client, addr, done, err := pair(keys)
	if err != nil {
		return Measurement{}, err
	}
	defer done()
	if _, err := sync(addr, client); err != nil {
		return Measurement{}, fmt.Errorf("%s warm-up: %w", protocol, err)
	}
	for i := 0; i < diverged; i++ {
		client.Put(fmt.Sprintf("key-%05d", i), []byte(fmt.Sprintf("edit-%d", i)))
	}
	dialsBefore := dials()
	start := time.Now()
	res, err := sync(addr, client)
	elapsed := time.Since(start)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s round: %w", protocol, err)
	}
	return Measurement{
		Protocol:       protocol,
		DivergencePct:  100 * diverged / keys,
		DivergedKeys:   diverged,
		WireBytes:      res.BytesSent + res.BytesReceived,
		NsPerOp:        elapsed.Nanoseconds(),
		Dials:          dials() - dialsBefore,
		StripesSkipped: res.StripesSkipped,
	}, nil
}

func run(keys int, out string, progress io.Writer) error {
	if keys < 100 {
		return fmt.Errorf("need at least 100 keys, got %d", keys)
	}
	report := Report{Keys: keys, Shards: kvstore.DefaultShards}
	for _, diverged := range []int{0, keys / 100, keys / 2} {
		var v2dials int64 // v2 dials once per round, by construction
		m, err := measure(keys, diverged, "v2-delta",
			func(addr string, r *kvstore.Replica) (kvstore.SyncResult, error) {
				v2dials++
				return antientropy.SyncWithDelta(addr, r)
			},
			func() int64 { return v2dials })
		if err != nil {
			return err
		}
		report.Results = append(report.Results, m)

		pool := antientropy.NewPool()
		m, err = measure(keys, diverged, "v3-hier",
			func(addr string, r *kvstore.Replica) (kvstore.SyncResult, error) {
				return pool.SyncWith(addr, r)
			}, pool.Dials)
		_ = pool.Close()
		if err != nil {
			return err
		}
		report.Results = append(report.Results, m)
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "-" {
		_, err = progress.Write(doc)
		return err
	}
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(progress, "wrote %s (%d keys, %d measurements)\n", out, keys, len(report.Results))
	return nil
}

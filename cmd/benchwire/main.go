// Command benchwire measures the wire cost and latency of one anti-entropy
// round under the v2 (delta), v3 (hierarchical) and v4 (digest tree)
// protocols at several divergence levels, and emits the comparison as
// machine-readable JSON — the artifact CI tracks across PRs so protocol
// regressions show up as a diff in BENCH_antientropy.json rather than a
// buried log line.
//
// The optional hot-key case is the v4 acceptance gate: a large converged
// keyspace with exactly one edited key, where the v3 round must ship a
// whole stripe's digest list but the v4 round descends the digest tree in
// O(log n) frames. With -hotkey-gate set, the run exits non-zero unless
// the v4 round is at least that factor cheaper than v3.
//
//	benchwire -keys 1000 -hotkey-keys 1000000 -hotkey-gate 20 -out BENCH_antientropy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"versionstamp/internal/antientropy"
	"versionstamp/internal/kvstore"
)

// Measurement is one protocol × divergence data point.
type Measurement struct {
	Protocol       string `json:"protocol"`             // "v2-delta", "v3-hier" or "v4-tree"
	DivergencePct  int    `json:"divergencePct"`        // diverged keys / keys × 100
	DivergedKeys   int    `json:"divergedKeys"`         // keys rewritten before the round
	WireBytes      int64  `json:"wireBytes"`            // sent + received, client view
	NsPerOp        int64  `json:"nsPerOp"`              // wall time of the measured round
	Dials          int64  `json:"dials"`                // TCP dials the measured round paid
	StripesSkipped int    `json:"stripesSkipped"`       // v3/v4: summary-matched stripes
	TreeFanout     int    `json:"treeFanout,omitempty"` // v4 only: digest tree fan-out
	TreeDepth      int    `json:"treeDepth,omitempty"`  // v4 only: digest tree depth
}

// HotKey is the single-hot-key wire-cost comparison at large scale.
type HotKey struct {
	Keys        int     `json:"keys"`        // keyspace size (1M in CI)
	V3WireBytes int64   `json:"v3WireBytes"` // v3 round cost for the 1-key edit
	V4WireBytes int64   `json:"v4WireBytes"` // v4 round cost for the same edit
	V3NsPerOp   int64   `json:"v3NsPerOp"`
	V4NsPerOp   int64   `json:"v4NsPerOp"`
	Ratio       float64 `json:"ratio"`      // v3 bytes / v4 bytes
	MinRatio    float64 `json:"minRatio"`   // gate: run fails when Ratio < MinRatio
	TreeFanout  int     `json:"treeFanout"` // shape the v4 round descended
	TreeDepth   int     `json:"treeDepth"`
}

// Report is the whole emitted document.
type Report struct {
	Keys    int           `json:"keys"`
	Shards  int           `json:"shards"`
	Results []Measurement `json:"results"`
	HotKey  *HotKey       `json:"hotKey,omitempty"`
}

func main() {
	keys := flag.Int("keys", 1000, "keyspace size")
	hotKeys := flag.Int("hotkey-keys", 0, "keyspace size for the single-hot-key case (0 = skip)")
	hotGate := flag.Float64("hotkey-gate", 0, "fail unless the hot-key v4 round is this factor cheaper than v3 (0 = no gate)")
	out := flag.String("out", "BENCH_antientropy.json", `output path ("-" = stdout)`)
	flag.Parse()
	if err := run(*keys, *hotKeys, *hotGate, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchwire:", err)
		os.Exit(1)
	}
}

// pair builds a converged server/client pair of n keys with a listening
// server, returning a cleanup func.
func pair(n int) (*kvstore.Replica, *kvstore.Replica, string, func(), error) {
	server := kvstore.NewReplica("server")
	for i := 0; i < n; i++ {
		server.Put(fmt.Sprintf("key-%05d", i), []byte(fmt.Sprintf("value-%d-with-some-padding", i)))
	}
	client := server.Clone("client")
	srv := antientropy.NewServer(server, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, "", nil, err
	}
	return server, client, addr, func() { _ = srv.Close() }, nil
}

// measure runs one warm-up round and one measured round of sync over a
// freshly diverged client.
func measure(keys, diverged int, protocol string,
	sync func(string, *kvstore.Replica) (kvstore.SyncResult, error),
	dials func() int64) (Measurement, error) {
	_, client, addr, done, err := pair(keys)
	if err != nil {
		return Measurement{}, err
	}
	defer done()
	if _, err := sync(addr, client); err != nil {
		return Measurement{}, fmt.Errorf("%s warm-up: %w", protocol, err)
	}
	for i := 0; i < diverged; i++ {
		client.Put(fmt.Sprintf("key-%05d", i), []byte(fmt.Sprintf("edit-%d", i)))
	}
	dialsBefore := dials()
	start := time.Now()
	res, err := sync(addr, client)
	elapsed := time.Since(start)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s round: %w", protocol, err)
	}
	return Measurement{
		Protocol:       protocol,
		DivergencePct:  100 * diverged / keys,
		DivergedKeys:   diverged,
		WireBytes:      res.BytesSent + res.BytesReceived,
		NsPerOp:        elapsed.Nanoseconds(),
		Dials:          dials() - dialsBefore,
		StripesSkipped: res.StripesSkipped,
	}, nil
}

// hotKeyCase builds a converged pair of n keys, edits exactly one key, and
// measures the round that reconciles it — once over v3, once over v4. The
// v3 round must ship the hot stripe's entire digest list; the v4 round
// descends the digest tree, so its cost is logarithmic in the stripe size.
func hotKeyCase(n int, gate float64) (*HotKey, error) {
	_, client, addr, done, err := pair(n)
	if err != nil {
		return nil, err
	}
	defer done()
	hk := &HotKey{Keys: n, MinRatio: gate}

	oneKeyRound := func(protocol int, edit string) (int64, int64, error) {
		pool := antientropy.NewPoolOptions(antientropy.PoolOptions{Protocol: protocol})
		defer pool.Close()
		if _, err := pool.SyncWith(addr, client); err != nil {
			return 0, 0, fmt.Errorf("hot-key warm-up: %w", err)
		}
		client.Put("key-00000", []byte(edit))
		start := time.Now()
		res, err := pool.SyncWith(addr, client)
		if err != nil {
			return 0, 0, fmt.Errorf("hot-key round: %w", err)
		}
		if res.Transferred+res.Reconciled != 1 {
			return 0, 0, fmt.Errorf("hot-key round moved %d keys, want 1",
				res.Transferred+res.Reconciled)
		}
		return res.BytesSent + res.BytesReceived, time.Since(start).Nanoseconds(), nil
	}

	if hk.V3WireBytes, hk.V3NsPerOp, err = oneKeyRound(antientropy.ProtocolHier, "hot-edit-v3"); err != nil {
		return nil, fmt.Errorf("v3: %w", err)
	}
	// The v3 round converged the pair again, so the v4 lane starts equal.
	if hk.V4WireBytes, hk.V4NsPerOp, err = oneKeyRound(antientropy.ProtocolTree, "hot-edit-v4"); err != nil {
		return nil, fmt.Errorf("v4: %w", err)
	}
	hk.Ratio = float64(hk.V3WireBytes) / float64(hk.V4WireBytes)
	hk.TreeFanout, hk.TreeDepth = kvstore.TreeShape((n + kvstore.DefaultShards - 1) / kvstore.DefaultShards)
	if gate > 0 && hk.Ratio < gate {
		return hk, fmt.Errorf("hot-key gate: v4 round %dB is only %.1fx below v3 %dB, want >= %.0fx",
			hk.V4WireBytes, hk.Ratio, hk.V3WireBytes, gate)
	}
	return hk, nil
}

func run(keys, hotKeys int, hotGate float64, out string, progress io.Writer) error {
	if keys < 100 {
		return fmt.Errorf("need at least 100 keys, got %d", keys)
	}
	report := Report{Keys: keys, Shards: kvstore.DefaultShards}
	treeFanout, treeDepth := kvstore.TreeShape((keys + kvstore.DefaultShards - 1) / kvstore.DefaultShards)
	for _, diverged := range []int{0, keys / 100, keys / 2} {
		var v2dials int64 // v2 dials once per round, by construction
		m, err := measure(keys, diverged, "v2-delta",
			func(addr string, r *kvstore.Replica) (kvstore.SyncResult, error) {
				v2dials++
				return antientropy.SyncWithDelta(addr, r)
			},
			func() int64 { return v2dials })
		if err != nil {
			return err
		}
		report.Results = append(report.Results, m)

		hier := antientropy.NewPoolOptions(antientropy.PoolOptions{Protocol: antientropy.ProtocolHier})
		m, err = measure(keys, diverged, "v3-hier",
			func(addr string, r *kvstore.Replica) (kvstore.SyncResult, error) {
				return hier.SyncWith(addr, r)
			}, hier.Dials)
		_ = hier.Close()
		if err != nil {
			return err
		}
		report.Results = append(report.Results, m)

		tree := antientropy.NewPoolOptions(antientropy.PoolOptions{Protocol: antientropy.ProtocolTree})
		m, err = measure(keys, diverged, "v4-tree",
			func(addr string, r *kvstore.Replica) (kvstore.SyncResult, error) {
				return tree.SyncWith(addr, r)
			}, tree.Dials)
		_ = tree.Close()
		if err != nil {
			return err
		}
		m.TreeFanout, m.TreeDepth = treeFanout, treeDepth
		report.Results = append(report.Results, m)
	}

	if hotKeys > 0 {
		hk, err := hotKeyCase(hotKeys, hotGate)
		report.HotKey = hk
		if err != nil {
			// Emit the report before failing so the artifact shows the
			// numbers the gate rejected.
			if hk != nil {
				if doc, jerr := json.MarshalIndent(report, "", "  "); jerr == nil && out != "-" {
					_ = os.WriteFile(out, append(doc, '\n'), 0o644)
				}
			}
			return err
		}
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "-" {
		_, err = progress.Write(doc)
		return err
	}
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(progress, "wrote %s (%d keys, %d measurements)\n", out, keys, len(report.Results))
	return nil
}

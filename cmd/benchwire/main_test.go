package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEmitsValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_antientropy.json")
	var progress strings.Builder
	if err := run(200, 0, 0, out, &progress); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if report.Keys != 200 || len(report.Results) != 9 {
		t.Fatalf("report = keys %d, %d results; want 200 keys, 9 results",
			report.Keys, len(report.Results))
	}
	for _, m := range report.Results {
		if m.WireBytes <= 0 || m.NsPerOp <= 0 {
			t.Errorf("%s@%d%%: empty measurement %+v", m.Protocol, m.DivergencePct, m)
		}
		if m.Protocol == "v4-tree" && (m.TreeFanout == 0 || m.TreeDepth == 0) {
			t.Errorf("v4-tree@%d%%: missing tree shape %+v", m.DivergencePct, m)
		}
	}
	// The converged v3 and v4 rounds must beat the converged v2 round on the
	// wire — the whole point of the summary/tree phases — and the pipelined
	// v4 probe must keep the converged round near the v3 root-match cost.
	conv := map[string]*Measurement{}
	for i := range report.Results {
		m := &report.Results[i]
		if m.DivergedKeys == 0 {
			conv[m.Protocol] = m
		}
	}
	v2conv, v3conv, v4conv := conv["v2-delta"], conv["v3-hier"], conv["v4-tree"]
	if v2conv == nil || v3conv == nil || v4conv == nil {
		t.Fatal("missing converged measurements")
	}
	if v3conv.WireBytes >= v2conv.WireBytes {
		t.Errorf("converged v3 %dB >= v2 %dB", v3conv.WireBytes, v2conv.WireBytes)
	}
	if v3conv.StripesSkipped == 0 {
		t.Error("converged v3 round skipped no stripes")
	}
	if v4conv.WireBytes >= v2conv.WireBytes {
		t.Errorf("converged v4 %dB >= v2 %dB", v4conv.WireBytes, v2conv.WireBytes)
	}
	if v4conv.WireBytes >= 32 {
		t.Errorf("converged v4 round cost %dB, want the ~14B probe-pipelined round", v4conv.WireBytes)
	}
	if v4conv.StripesSkipped == 0 {
		t.Error("converged v4 round skipped no stripes")
	}
}

func TestHotKeyCase(t *testing.T) {
	// The CI gate runs at 1M keys and demands 20x; this keeps the same path
	// honest at a scale a unit test can afford, where the tree advantage is
	// smaller but must still exist.
	keys, gate := 20000, 4.0
	if testing.Short() {
		keys, gate = 4000, 1.5
	}
	hk, err := hotKeyCase(keys, gate)
	if err != nil {
		t.Fatalf("hotKeyCase: %v", err)
	}
	if hk.Ratio < gate {
		t.Fatalf("ratio %.1f below gate %.1f", hk.Ratio, gate)
	}
	if hk.TreeDepth == 0 || hk.TreeFanout == 0 {
		t.Fatalf("missing tree shape: %+v", hk)
	}
	t.Logf("hot key at %d keys: v3 %dB, v4 %dB (%.1fx), tree %d^%d",
		keys, hk.V3WireBytes, hk.V4WireBytes, hk.Ratio, hk.TreeFanout, hk.TreeDepth)
}

func TestRunRejectsTinyKeyspace(t *testing.T) {
	if err := run(10, 0, 0, "-", &strings.Builder{}); err == nil {
		t.Error("run(10) succeeded")
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEmitsValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_antientropy.json")
	var progress strings.Builder
	if err := run(200, out, &progress); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if report.Keys != 200 || len(report.Results) != 6 {
		t.Fatalf("report = keys %d, %d results; want 200 keys, 6 results",
			report.Keys, len(report.Results))
	}
	byKey := map[string]Measurement{}
	for _, m := range report.Results {
		if m.WireBytes <= 0 || m.NsPerOp <= 0 {
			t.Errorf("%s@%d%%: empty measurement %+v", m.Protocol, m.DivergencePct, m)
		}
		byKey[m.Protocol+"@"+string(rune('0'+m.DivergencePct/25))] = m
	}
	// The converged v3 round must beat the converged v2 round on the wire —
	// the whole point of the summary phase.
	var v2conv, v3conv *Measurement
	for i := range report.Results {
		m := &report.Results[i]
		if m.DivergedKeys == 0 {
			switch m.Protocol {
			case "v2-delta":
				v2conv = m
			case "v3-hier":
				v3conv = m
			}
		}
	}
	if v2conv == nil || v3conv == nil {
		t.Fatal("missing converged measurements")
	}
	if v3conv.WireBytes >= v2conv.WireBytes {
		t.Errorf("converged v3 %dB >= v2 %dB", v3conv.WireBytes, v2conv.WireBytes)
	}
	if v3conv.StripesSkipped == 0 {
		t.Error("converged v3 round skipped no stripes")
	}
}

func TestRunRejectsTinyKeyspace(t *testing.T) {
	if err := run(10, "-", &strings.Builder{}); err == nil {
		t.Error("run(10) succeeded")
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRunWorkloads(t *testing.T) {
	// Sync-pattern workloads (fixedN, star, partitioned) run fewer ops:
	// rotating pairwise syncs grow stamps multiplicatively (see E5).
	ops := map[string]string{
		"balanced": "120", "forkheavy": "120", "syncheavy": "120",
		"updateheavy": "120", "fixedN": "30", "star": "30", "partitioned": "40",
	}
	for _, wl := range []string{"balanced", "forkheavy", "syncheavy", "updateheavy", "fixedN", "star", "partitioned"} {
		var sb strings.Builder
		err := run([]string{"-workload", wl, "-ops", ops[wl], "-seed", "3", "-sizes"}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if !strings.Contains(sb.String(), "0 disagreements") {
			t.Errorf("%s output:\n%s", wl, sb.String())
		}
		if !strings.Contains(sb.String(), "stamps") {
			t.Errorf("%s missing size table:\n%s", wl, sb.String())
		}
	}
}

func TestRunSubsets(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-ops", "80", "-subsets"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(sb.String(), " 0 subset queries") {
		t.Errorf("subset queries not performed:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "bogus"}, &sb); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-notaflag"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

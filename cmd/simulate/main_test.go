package main

import (
	"strings"
	"testing"
)

func TestRunWorkloads(t *testing.T) {
	// Sync-pattern workloads (fixedN, star, partitioned) run fewer ops:
	// rotating pairwise syncs grow stamps multiplicatively (see E5).
	ops := map[string]string{
		"balanced": "120", "forkheavy": "120", "syncheavy": "120",
		"updateheavy": "120", "fixedN": "30", "star": "30", "partitioned": "40",
	}
	if testing.Short() {
		// Full-size workloads take ~35s; shrunk ones still run every
		// workload through the same code paths in about a second.
		ops = map[string]string{
			"balanced": "40", "forkheavy": "40", "syncheavy": "40",
			"updateheavy": "40", "fixedN": "12", "star": "12", "partitioned": "16",
		}
	}
	for _, wl := range []string{"balanced", "forkheavy", "syncheavy", "updateheavy", "fixedN", "star", "partitioned"} {
		var sb strings.Builder
		err := run([]string{"-workload", wl, "-ops", ops[wl], "-seed", "3", "-sizes"}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if !strings.Contains(sb.String(), "0 disagreements") {
			t.Errorf("%s output:\n%s", wl, sb.String())
		}
		if !strings.Contains(sb.String(), "stamps") {
			t.Errorf("%s missing size table:\n%s", wl, sb.String())
		}
	}
}

func TestRunSubsets(t *testing.T) {
	ops := "80"
	if testing.Short() {
		ops = "40" // subset checking is quadratic in frontier size
	}
	var sb strings.Builder
	if err := run([]string{"-ops", ops, "-subsets"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(sb.String(), " 0 subset queries") {
		t.Errorf("subset queries not performed:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "bogus"}, &sb); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-notaflag"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

// Command simulate replays fork/join/update workloads through the lockstep
// simulator, verifying every mechanism against the causal-history oracle
// and reporting size statistics:
//
//	$ simulate -workload syncheavy -ops 1000 -seed 7 -subsets
//	$ simulate -workload forkheavy -ops 500 -sizes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"versionstamp/internal/sim"
	"versionstamp/internal/vv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		workload = fs.String("workload", "balanced",
			"workload: balanced | forkheavy | syncheavy | updateheavy | fixedN | star | partitioned")
		ops      = fs.Int("ops", 500, "operations per trace")
		seed     = fs.Int64("seed", 1, "workload random seed")
		maxWidth = fs.Int("maxwidth", 12, "maximum frontier width")
		subsets  = fs.Bool("subsets", false, "also check Prop 5.1 subset queries (slower)")
		sizes    = fs.Bool("sizes", false, "collect and print size statistics")
		every    = fs.Int("checkevery", 1, "verify every k-th step")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	trace, err := makeTrace(*workload, *seed, *ops, *maxWidth)
	if err != nil {
		return err
	}

	dvv, err := sim.NewDynamicVVTracker(vv.NewCentralServer(), "dynamic-vv")
	if err != nil {
		return err
	}
	check := sim.CheckPairs
	if *subsets {
		check = sim.CheckSubsets
	}
	runner := sim.NewRunner(
		sim.NewCausalTracker(),
		[]sim.Tracker{sim.NewStampTracker(true), sim.NewStampTracker(false), dvv, sim.NewITCTracker()},
		sim.Config{Check: check, CheckEvery: *every, Seed: *seed, CollectSizes: *sizes},
	)
	report, err := runner.Run(trace)
	if err != nil {
		return err
	}

	u, f, j := trace.Counts()
	fmt.Fprintf(out, "workload %s: %d ops (%d updates, %d forks, %d joins), final width %d\n",
		*workload, report.Ops, u, f, j, report.FinalWidth)
	fmt.Fprintf(out, "verified: %d pairwise comparisons, %d subset queries, 0 disagreements\n",
		report.Comparisons, report.SubsetChecks)

	if *sizes {
		fmt.Fprintln(out, "\nper-element encoded size at end of run (bytes):")
		fmt.Fprintf(out, "%-18s %8s %8s\n", "mechanism", "mean", "max")
		for _, name := range []string{"stamps", "stamps-noreduce", "dynamic-vv", "itc", "causal-histories"} {
			series := report.Sizes[name]
			if len(series) == 0 {
				continue
			}
			last := series[len(series)-1]
			fmt.Fprintf(out, "%-18s %8.1f %8d\n", name, last.MeanBytes(), last.MaxBytes)
		}
	}
	return nil
}

func makeTrace(workload string, seed int64, ops, maxWidth int) (sim.Trace, error) {
	switch workload {
	case "balanced":
		return sim.Random(seed, ops, sim.Balanced, maxWidth), nil
	case "forkheavy":
		return sim.Random(seed, ops, sim.ForkHeavy, maxWidth), nil
	case "syncheavy":
		return sim.Random(seed, ops, sim.SyncHeavy, maxWidth), nil
	case "updateheavy":
		return sim.Random(seed, ops, sim.UpdateHeavy, maxWidth), nil
	case "fixedN":
		n := maxWidth / 2
		if n < 2 {
			n = 2
		}
		return sim.FixedN(seed, n, ops/3+1), nil
	case "star":
		spokes := maxWidth - 1
		if spokes < 1 {
			spokes = 1
		}
		return sim.StarSync(seed, spokes, ops/3+1), nil
	case "partitioned":
		return sim.PartitionedEpochs(seed, ops/50+1, 50, maxWidth), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
}

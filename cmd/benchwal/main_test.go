package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEmitsValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_wal.json")
	var progress strings.Builder
	if err := run(2000, 500, 32, false, out, &progress); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if report.Ops != 2000 || report.Keys != 500 {
		t.Fatalf("report = %d ops over %d keys", report.Ops, report.Keys)
	}
	want := map[string]bool{
		"append": false, "replay": false, "checkpoint": false, "restore": false,
		"append-fsync-32w": false, "append-group-32w": false,
	}
	for _, m := range report.Results {
		if _, known := want[m.Op]; !known {
			t.Errorf("unexpected measurement %q", m.Op)
			continue
		}
		want[m.Op] = true
		if m.TotalMs < 0 {
			t.Errorf("%s: negative duration %v", m.Op, m.TotalMs)
		}
	}
	for op, seen := range want {
		if !seen {
			t.Errorf("missing measurement %q", op)
		}
	}
	var appendM Measurement
	for _, m := range report.Results {
		if m.Op == "append" {
			appendM = m
		}
	}
	if appendM.Bytes <= 0 || appendM.NsPerOp <= 0 {
		t.Errorf("append measurement empty: %+v", appendM)
	}
}

func TestRunRejectsBadShape(t *testing.T) {
	if err := run(10, 100, 8, false, "-", &strings.Builder{}); err == nil {
		t.Error("keys > ops must fail")
	}
}

// Command benchwal measures the durable storage path — WAL append
// throughput, crash-restart replay, checkpointing and checkpoint restart —
// and emits the numbers as machine-readable JSON, the artifact CI tracks
// across PRs (BENCH_wal.json) so storage regressions show up as a diff
// rather than a buried log line.
//
// The run doubles as a correctness gate: after every restart the reopened
// store is compared key by key (stamps included) against the writer's
// state, and any divergence fails the run (exit 1) — replay that loses or
// mangles an acknowledged write must never count as a benchmark result.
//
//	benchwal -ops 10000 -out BENCH_wal.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/kvstore"
	"versionstamp/internal/storage"
	"versionstamp/internal/storage/wal"
)

// Measurement is one phase's data point.
type Measurement struct {
	Op      string  `json:"op"`                // append, replay, checkpoint, restore
	Ops     int     `json:"ops,omitempty"`     // operations covered by the phase
	NsPerOp float64 `json:"nsPerOp,omitempty"` // wall time per operation
	TotalMs float64 `json:"totalMs"`           // wall time of the whole phase
	Bytes   int64   `json:"bytes,omitempty"`   // on-disk footprint after the phase
}

// Report is the whole emitted document.
type Report struct {
	Ops        int           `json:"ops"`
	Keys       int           `json:"keys"`
	ValueBytes int           `json:"valueBytes"`
	Fsync      bool          `json:"fsync"`
	Shards     int           `json:"shards"`
	Results    []Measurement `json:"results"`

	// GroupCommitSpeedup is acked appends/sec under group commit divided by
	// appends/sec with a per-append fsync, both at 32 concurrent writers.
	GroupCommitSpeedup float64 `json:"groupCommitSpeedup"`
}

func main() {
	ops := flag.Int("ops", 10000, "write operations to log and replay")
	keys := flag.Int("keys", 2500, "distinct keys the ops rotate over")
	valueBytes := flag.Int("value-bytes", 64, "payload size per write")
	fsync := flag.Bool("fsync", false, "fsync every append")
	out := flag.String("out", "BENCH_wal.json", `output path ("-" = stdout)`)
	flag.Parse()
	if err := run(*ops, *keys, *valueBytes, *fsync, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchwal:", err)
		os.Exit(1)
	}
}

func run(ops, keys, valueBytes int, fsync bool, out string, progress io.Writer) error {
	if ops < 1 || keys < 1 || keys > ops {
		return fmt.Errorf("need 1 <= keys (%d) <= ops (%d)", keys, ops)
	}
	dir, err := os.MkdirTemp("", "benchwal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	report := Report{Ops: ops, Keys: keys, ValueBytes: valueBytes, Fsync: fsync,
		Shards: kvstore.DefaultShards}
	value := make([]byte, valueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	// Phase 1: append ops writes to a fresh WAL-backed store.
	w, err := kvstore.Open(dir, kvstore.Options{Label: "bench", Fsync: fsync})
	if err != nil {
		return err
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		w.Put(fmt.Sprintf("key-%07d", i%keys), value)
	}
	elapsed := time.Since(start)
	if err := w.PersistErr(); err != nil {
		return err
	}
	report.Results = append(report.Results, Measurement{
		Op: "append", Ops: ops,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops),
		TotalMs: float64(elapsed.Microseconds()) / 1000,
		Bytes:   diskBytes(dir, "*.wal"),
	})

	// Phase 2: crash restart — abandon (no checkpoint) and reopen, replaying
	// the full log.
	if err := w.Abandon(); err != nil {
		return err
	}
	start = time.Now()
	replayed, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		return err
	}
	elapsed = time.Since(start)
	if err := verify(w, replayed); err != nil {
		return fmt.Errorf("replayed store diverges: %w", err)
	}
	report.Results = append(report.Results, Measurement{
		Op: "replay", Ops: ops,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops),
		TotalMs: float64(elapsed.Microseconds()) / 1000,
	})

	// Phase 3: checkpoint the replayed store, truncating every log.
	start = time.Now()
	if err := replayed.Checkpoint(); err != nil {
		return err
	}
	elapsed = time.Since(start)
	report.Results = append(report.Results, Measurement{
		Op:      "checkpoint",
		TotalMs: float64(elapsed.Microseconds()) / 1000,
		Bytes:   diskBytes(dir, "*.ckpt"),
	})

	// Phase 4: restart from checkpoints alone.
	if err := replayed.Abandon(); err != nil {
		return err
	}
	start = time.Now()
	restored, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		return err
	}
	elapsed = time.Since(start)
	if err := verify(w, restored); err != nil {
		return fmt.Errorf("restored store diverges: %w", err)
	}
	report.Results = append(report.Results, Measurement{
		Op: "restore", Ops: keys,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(keys),
		TotalMs: float64(elapsed.Microseconds()) / 1000,
	})

	// Phase 5: group commit vs per-append fsync, 32 concurrent writers each
	// blocking until their append is durable. Group commit's one-fsync-per-
	// window must amortize to at least 5x the per-append-fsync rate; the
	// "nothing acked before its window's fsync" half of the contract is
	// enforced by the wal package's group-commit crash tests.
	const writers = 32
	perWriter := ops / writers
	if perWriter < 1 {
		perWriter = 1
	}
	if perWriter > 64 {
		perWriter = 64 // per-append fsync at full -ops would take minutes
	}
	fsyncNs, err := concurrentAppends(wal.Options{Fsync: true}, writers, perWriter)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, Measurement{
		Op: "append-fsync-32w", Ops: writers * perWriter,
		NsPerOp: fsyncNs,
		TotalMs: fsyncNs * float64(writers*perWriter) / 1e6,
	})
	groupNs, err := concurrentAppends(wal.Options{GroupCommit: true}, writers, perWriter)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, Measurement{
		Op: "append-group-32w", Ops: writers * perWriter,
		NsPerOp: groupNs,
		TotalMs: groupNs * float64(writers*perWriter) / 1e6,
	})
	if groupNs > 0 {
		report.GroupCommitSpeedup = fsyncNs / groupNs
	}
	if report.GroupCommitSpeedup < 5 {
		return fmt.Errorf("gate: group commit speedup %.2fx at %d writers, want >= 5x",
			report.GroupCommitSpeedup, writers)
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "-" {
		_, err = progress.Write(doc)
		return err
	}
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(progress, "wrote %s (%d measurements, group-commit speedup %.1fx)\n",
		out, len(report.Results), report.GroupCommitSpeedup)
	return nil
}

// concurrentAppends times `writers` goroutines each making `perWriter`
// durable appends to a fresh WAL under opts, returning wall nanoseconds per
// acked append. The reopened WAL is checked record for record: an append
// that was acked but not recovered fails the measurement.
func concurrentAppends(opts wal.Options, writers, perWriter int) (float64, error) {
	dir, err := os.MkdirTemp("", "benchwal-gc-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	w, err := wal.Open(dir, opts)
	if err != nil {
		return 0, err
	}
	stamp := core.Seed().Update()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	start := time.Now()
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shard := i % kvstore.DefaultShards
			for j := 0; j < perWriter; j++ {
				rec := storage.Record{Entry: encoding.Entry{
					Key: fmt.Sprintf("w%02d-%04d", i, j), Value: []byte("x"), Stamp: stamp,
				}}
				if err := w.Append(shard, rec); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			_ = w.Close()
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	reopened, err := wal.Open(dir, opts)
	if err != nil {
		return 0, err
	}
	defer reopened.Close()
	got := 0
	for shard := 0; shard < kvstore.DefaultShards; shard++ {
		err := reopened.ReplayShard(shard, func([]byte) error { return nil },
			func(storage.Record) error { got++; return nil })
		if err != nil {
			return 0, err
		}
	}
	if want := writers * perWriter; got != want {
		return 0, fmt.Errorf("acked appends lost: recovered %d of %d", got, want)
	}
	return float64(elapsed.Nanoseconds()) / float64(writers*perWriter), nil
}

// verify compares two replicas key by key, stamps included — the gate that
// keeps a lossy replay from ever producing a benchmark number.
func verify(want, got *kvstore.Replica) error {
	wk, gk := want.Keys(), got.Keys()
	if len(wk) != len(gk) {
		return fmt.Errorf("key count %d, want %d", len(gk), len(wk))
	}
	for _, k := range wk {
		wv, _ := want.Version(k)
		gv, ok := got.Version(k)
		if !ok {
			return fmt.Errorf("key %q lost", k)
		}
		if gv.Deleted != wv.Deleted || string(gv.Value) != string(wv.Value) ||
			!gv.Stamp.Equal(wv.Stamp) {
			return fmt.Errorf("key %q diverged", k)
		}
	}
	return nil
}

// diskBytes sums the sizes of dir entries matching pattern.
func diskBytes(dir, pattern string) int64 {
	paths, _ := filepath.Glob(filepath.Join(dir, pattern))
	var total int64
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil {
			total += fi.Size()
		}
	}
	return total
}

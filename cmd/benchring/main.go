// Command benchring measures the partitioned cluster's scaling claim: once
// a ring cluster has converged, a gossip round costs each node wire bytes
// proportional to the stripes it owns — not to the total keyspace, and not
// to the cluster size. It runs ring clusters at several node counts over a
// fixed keyspace, measures the converged ("idle") round, compares against a
// v1 whole-snapshot exchange of the same keyspace (what a full-replica
// gossip round costs a node regardless of convergence), and emits the
// comparison as machine-readable JSON — the artifact CI tracks across PRs.
//
// The command exits non-zero when a gate fails:
//
//   - the v1 baseline must be at least -gate times the worst idle per-node
//     cost at every cluster size (converged rounds scale with owned
//     stripes, not keyspace);
//   - the worst idle per-node cost must shrink as nodes are added (each
//     node owns fewer stripes in a bigger cluster);
//   - the idle cost must stay flat when the keyspace grows (summaries, not
//     contents, travel in a converged round).
//
//	benchring -keys 1000 -out BENCH_ring.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"versionstamp/internal/antientropy"
	"versionstamp/internal/kvstore"
)

// Measurement is one cluster-size data point.
type Measurement struct {
	Nodes          int   `json:"nodes"`
	Replication    int   `json:"replication"`
	Stripes        int   `json:"stripes"`
	Keys           int   `json:"keys"`
	RoundsToSettle int   `json:"roundsToSettle"` // gossip rounds until converged
	IdleMaxBytes   int64 `json:"idleMaxBytes"`   // worst per-node bytes, converged round
	IdleMeanBytes  int64 `json:"idleMeanBytes"`  // mean per-node bytes, converged round
	NsPerIdleRound int64 `json:"nsPerIdleRound"` // wall time of the idle round
}

// Report is the whole emitted document.
type Report struct {
	Keys          int           `json:"keys"`
	Stripes       int           `json:"stripes"`
	Replication   int           `json:"replication"`
	BaselineBytes int64         `json:"baselineBytes"` // one v1 snapshot exchange
	GateRatio     float64       `json:"gateRatio"`     // required baseline/idle margin
	Results       []Measurement `json:"results"`
	BigKeyspace   *Measurement  `json:"bigKeyspace,omitempty"` // keyspace-independence probe
}

func main() {
	keys := flag.Int("keys", 1000, "keyspace size")
	stripes := flag.Int("stripes", 64, "virtual stripes")
	gate := flag.Float64("gate", 3, "required baseline/idle wire ratio")
	out := flag.String("out", "BENCH_ring.json", `output path ("-" = stdout)`)
	flag.Parse()
	if err := run(*keys, *stripes, *gate, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchring:", err)
		os.Exit(1)
	}
}

func value(i int) []byte {
	return []byte(fmt.Sprintf("value-%d-with-some-padding", i))
}

// measure converges a ring cluster of n nodes over the keyspace and returns
// the idle-round cost.
func measure(n, replication, stripes, keys int) (Measurement, error) {
	c, err := antientropy.NewRingCluster(antientropy.RingConfig{
		Nodes: n, Replication: replication, Stripes: stripes, Seed: 1,
	})
	if err != nil {
		return Measurement{}, err
	}
	defer c.Close()
	for i := 0; i < keys; i++ {
		if _, err := c.Write(fmt.Sprintf("key-%05d", i), value(i)); err != nil {
			return Measurement{}, fmt.Errorf("write: %w", err)
		}
	}
	rounds, err := c.GossipUntilConverged(40 + 4*n)
	if err != nil {
		return Measurement{}, fmt.Errorf("convergence at n=%d: %w", n, err)
	}
	start := time.Now()
	idle, err := c.GossipRoundStats(2)
	if err != nil {
		return Measurement{}, fmt.Errorf("idle round: %w", err)
	}
	elapsed := time.Since(start)
	var max, sum int64
	for _, b := range idle.BytesPerNode {
		if b > max {
			max = b
		}
		sum += b
	}
	return Measurement{
		Nodes:          n,
		Replication:    replication,
		Stripes:        stripes,
		Keys:           keys,
		RoundsToSettle: rounds,
		IdleMaxBytes:   max,
		IdleMeanBytes:  sum / int64(len(idle.BytesPerNode)),
		NsPerIdleRound: elapsed.Nanoseconds(),
	}, nil
}

// baseline measures one v1 whole-snapshot exchange over the keyspace: the
// O(keyspace) per-round cost a full-replica gossip node pays whether or not
// anything diverged.
func baseline(stripes, keys int) (int64, error) {
	server := kvstore.NewReplicaShards("full-a", stripes)
	client := kvstore.NewReplicaShards("full-b", stripes)
	for i := 0; i < keys; i++ {
		server.Put(fmt.Sprintf("key-%05d", i), value(i))
	}
	srv := antientropy.NewServer(server, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	res, err := antientropy.SyncWith(addr, client)
	if err != nil {
		return 0, fmt.Errorf("v1 exchange: %w", err)
	}
	return res.BytesSent + res.BytesReceived, nil
}

func run(keys, stripes int, gate float64, out string, log io.Writer) error {
	const replication = 3
	base, err := baseline(stripes, keys)
	if err != nil {
		return err
	}
	report := Report{
		Keys: keys, Stripes: stripes, Replication: replication,
		BaselineBytes: base, GateRatio: gate,
	}
	for _, n := range []int{16, 64} {
		m, err := measure(n, replication, stripes, keys)
		if err != nil {
			return err
		}
		fmt.Fprintf(log, "benchring: n=%-3d settle=%d rounds  idle max=%d B  mean=%d B  baseline=%d B (%.1fx)\n",
			n, m.RoundsToSettle, m.IdleMaxBytes, m.IdleMeanBytes, base,
			float64(base)/float64(m.IdleMaxBytes))
		report.Results = append(report.Results, m)
	}
	// Keyspace-independence probe: same cluster size, 4x the keys — the
	// idle round must not grow with it.
	big, err := measure(16, replication, stripes, 4*keys)
	if err != nil {
		return err
	}
	report.BigKeyspace = &big
	fmt.Fprintf(log, "benchring: n=16 keys=%d idle max=%d B (keyspace-independence probe)\n",
		big.Keys, big.IdleMaxBytes)

	// Gates.
	for _, m := range report.Results {
		if float64(m.IdleMaxBytes)*gate > float64(base) {
			return fmt.Errorf("gate: n=%d idle %d B not %.1fx below v1 baseline %d B",
				m.Nodes, m.IdleMaxBytes, gate, base)
		}
	}
	small, large := report.Results[0], report.Results[len(report.Results)-1]
	if large.IdleMaxBytes >= small.IdleMaxBytes {
		return fmt.Errorf("gate: idle cost did not shrink with cluster growth (n=%d: %d B, n=%d: %d B)",
			small.Nodes, small.IdleMaxBytes, large.Nodes, large.IdleMaxBytes)
	}
	// Allow slack for stamp-size jitter in summaries; the v1 baseline grows
	// ~4x here, the idle round must not grow materially at all.
	if float64(big.IdleMaxBytes) > 1.5*float64(report.Results[0].IdleMaxBytes) {
		return fmt.Errorf("gate: idle cost grew with keyspace (%d B at %d keys vs %d B at %d keys)",
			big.IdleMaxBytes, big.Keys, report.Results[0].IdleMaxBytes, keys)
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(out, doc, 0o644)
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestRunEmitsReport runs the benchmark at a reduced size and checks the
// emitted document: every expected op × scenario point present, and the
// compare points allocation-free (the condition the CI gate enforces through
// this command's exit status).
func TestRunEmitsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke is not a -short test")
	}
	out := filepath.Join(t.TempDir(), "BENCH_stamp.json")
	var progress strings.Builder
	if err := run(200, 400, out, &progress); err != nil {
		t.Fatalf("run: %v", err)
	}
	doc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(doc, &report); err != nil {
		t.Fatalf("emitted document is not valid JSON: %v", err)
	}
	want := map[string]bool{
		"compare/converged/0":       false,
		"compare/divergent/0":       false,
		"join/converged/0":          false,
		"join/divergent/0":          false,
		"fork/converged/0":          false,
		"update/converged/0":        false,
		"diffAgainst/converged/200": false,
		"diffAgainst/divergent/200": false,
		"diffAgainst/converged/400": false,
		"diffAgainst/divergent/400": false,
	}
	for _, m := range report.Results {
		key := m.Op + "/" + m.Scenario + "/" + strconv.Itoa(m.Keys)
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected measurement %q", key)
			continue
		}
		want[key] = true
		if m.NsPerOp <= 0 {
			t.Errorf("%s: NsPerOp = %v", key, m.NsPerOp)
		}
		if m.Op == "compare" && m.AllocsPerOp != 0 {
			t.Errorf("%s: %v allocs/op, want 0", key, m.AllocsPerOp)
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("missing measurement %q", key)
		}
	}
}

func TestRunRejectsTinyKeyspace(t *testing.T) {
	if err := run(10, 0, "-", &strings.Builder{}); err == nil {
		t.Error("run accepted a sub-100-key keyspace")
	}
}

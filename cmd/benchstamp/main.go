// Command benchstamp measures the interned stamp kernel — Compare, Join,
// Fork, Update and the kvstore's batched DiffAgainst — and emits ns/op and
// allocs/op as machine-readable JSON, the artifact CI tracks across PRs so
// kernel regressions show up as a diff in BENCH_stamp.json rather than a
// buried log line.
//
// The run fails (exit 1) if Compare on interned stamps reports any
// allocations: zero allocs on the comparison fast path is the kernel's
// contract, and CI enforces it through this command's exit status.
//
//	benchstamp -keys 1000 -large-keys 100000 -out BENCH_stamp.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/kvstore"
)

// Measurement is one operation × scenario data point.
type Measurement struct {
	Op          string  `json:"op"`          // compare, join, fork, update, diffAgainst
	Scenario    string  `json:"scenario"`    // converged or divergent
	Keys        int     `json:"keys"`        // keyspace size (diffAgainst only)
	NsPerOp     float64 `json:"nsPerOp"`     // wall time per operation
	AllocsPerOp float64 `json:"allocsPerOp"` // heap allocations per operation
}

// Report is the whole emitted document.
type Report struct {
	Shards  int           `json:"shards"`
	Results []Measurement `json:"results"`
}

func main() {
	keys := flag.Int("keys", 1000, "small keyspace size for DiffAgainst")
	largeKeys := flag.Int("large-keys", 100000, "large keyspace size for DiffAgainst (0 = skip)")
	out := flag.String("out", "BENCH_stamp.json", `output path ("-" = stdout)`)
	flag.Parse()
	if err := run(*keys, *largeKeys, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchstamp:", err)
		os.Exit(1)
	}
}

// measure times fn and counts its allocations.
func measure(op, scenario string, keys int, fn func()) Measurement {
	fn() // warm caches, intern tables and scratch pools
	allocs := testing.AllocsPerRun(10, fn)
	// Calibrate iterations to ~50ms of wall time.
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= 50*time.Millisecond || iters >= 1<<22 {
			return Measurement{
				Op: op, Scenario: scenario, Keys: keys,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
				AllocsPerOp: allocs,
			}
		}
		iters *= 4
	}
}

// kernelStamps builds the stamp shapes the kernel benchmarks compare: an
// equal-handle pair, a concurrent pair, and a dominated pair.
func kernelStamps() (conv core.Stamp, ca, cb core.Stamp, lo, hi core.Stamp) {
	s := core.Seed().Update()
	a, b := s.Fork()
	a = a.Update()
	ca, cb = a.Fork()
	ca, cb = ca.Update(), cb.Update() // concurrent: each saw its own update
	lo, hi = b, a                     // a dominates b
	return b, ca, cb, lo, hi
}

// diffPair builds a server replica of n keys plus the digest of a clone,
// optionally diverging divergedEvery-th key on the server afterwards.
func diffPair(n, divergedEvery int) (*kvstore.Replica, []encoding.Digest) {
	server := kvstore.NewReplica("server")
	for i := 0; i < n; i++ {
		server.Put(fmt.Sprintf("key-%07d", i), []byte("value-with-some-padding"))
	}
	client := server.Clone("client")
	digest := client.Digest()
	if divergedEvery > 0 {
		for i := 0; i < n; i += divergedEvery {
			server.Put(fmt.Sprintf("key-%07d", i), []byte("edited"))
		}
	}
	return server, digest
}

func run(keys, largeKeys int, out string, progress io.Writer) error {
	if keys < 100 {
		return fmt.Errorf("need at least 100 keys, got %d", keys)
	}
	report := Report{Shards: kvstore.DefaultShards}
	add := func(m Measurement) { report.Results = append(report.Results, m) }

	conv, ca, cb, lo, hi := kernelStamps()
	add(measure("compare", "converged", 0, func() { _ = core.Compare(conv, conv) }))
	add(measure("compare", "divergent", 0, func() { _ = core.Compare(ca, cb) }))
	add(measure("join", "converged", 0, func() { // one side dominates: handle reuse
		if _, err := core.Join(lo, hi); err != nil {
			panic(err)
		}
	}))
	add(measure("join", "divergent", 0, func() { // genuine merge of concurrent knowledge
		if _, err := core.Join(ca, cb); err != nil {
			panic(err)
		}
	}))
	add(measure("fork", "converged", 0, func() { _, _ = conv.Fork() }))
	add(measure("update", "converged", 0, func() { _ = conv.Update() }))

	sizes := []int{keys}
	if largeKeys > 0 {
		sizes = append(sizes, largeKeys)
	}
	for _, n := range sizes {
		server, digest := diffPair(n, 0)
		add(measure("diffAgainst", "converged", n, func() {
			if _, err := server.DiffAgainst(digest, 0, 0); err != nil {
				panic(err)
			}
		}))
		server, digest = diffPair(n, 100) // 1% of keys diverged
		add(measure("diffAgainst", "divergent", n, func() {
			if _, err := server.DiffAgainst(digest, 0, 0); err != nil {
				panic(err)
			}
		}))
	}

	for _, m := range report.Results {
		if m.Op == "compare" && m.AllocsPerOp > 0 {
			return fmt.Errorf("compare/%s allocates %.1f/op; the interned kernel contract is 0",
				m.Scenario, m.AllocsPerOp)
		}
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "-" {
		_, err = progress.Write(doc)
		return err
	}
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(progress, "wrote %s (%d measurements)\n", out, len(report.Results))
	return nil
}

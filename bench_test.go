// Benchmarks backing the experiment tables of EXPERIMENTS.md. One bench
// series per experiment (E3, E5, E6, E7) plus micro-benchmarks for every
// core operation, codec, and the representation ablations (naive vs
// binary-search domination, sorted-slice vs trie).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package versionstamp_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"versionstamp"
	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/itc"
	"versionstamp/internal/kvstore"
	"versionstamp/internal/name"
	"versionstamp/internal/sim"
	"versionstamp/internal/trie"
	"versionstamp/internal/vv"
)

// ---------------------------------------------------------------------------
// Micro-benchmarks: the three operations and comparison (E6's latency side).

// benchFrontier replays a deterministic balanced trace and returns its
// frontier, giving realistic stamp shapes for the micro-benchmarks.
func benchFrontier(b *testing.B, ops int) []core.Stamp {
	b.Helper()
	tracker := sim.NewStampTracker(true)
	if _, err := sim.Replay(tracker, sim.Random(42, ops, sim.Balanced, 10)); err != nil {
		b.Fatal(err)
	}
	out := make([]core.Stamp, tracker.Width())
	for i := range out {
		s, err := tracker.Stamp(i)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = s
	}
	return out
}

func BenchmarkUpdate(b *testing.B) {
	frontier := benchFrontier(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := frontier[i%len(frontier)]
		_ = s.Update()
	}
}

func BenchmarkFork(b *testing.B) {
	frontier := benchFrontier(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := frontier[i%len(frontier)]
		_, _ = s.Fork()
	}
}

func BenchmarkJoin(b *testing.B) {
	frontier := benchFrontier(b, 300)
	if len(frontier) < 2 {
		b.Skip("frontier too narrow")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := frontier[i%len(frontier)]
		c := frontier[(i+1)%len(frontier)]
		if _, err := core.Join(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinNoReduce(b *testing.B) {
	frontier := benchFrontier(b, 300)
	if len(frontier) < 2 {
		b.Skip("frontier too narrow")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := frontier[i%len(frontier)]
		c := frontier[(i+1)%len(frontier)]
		if _, err := core.JoinNoReduce(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	frontier := benchFrontier(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := frontier[i%len(frontier)]
		c := frontier[(i+3)%len(frontier)]
		_ = core.Compare(a, c)
	}
}

func BenchmarkReduce(b *testing.B) {
	// A join-product with collapsible structure.
	s := core.MustParse("[ε|000+001+01+10+110+111]")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Reduce()
	}
}

// ---------------------------------------------------------------------------
// Codec benchmarks (E5's format comparison).

func BenchmarkMarshalBinary(b *testing.B) {
	frontier := benchFrontier(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := frontier[i%len(frontier)].MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalBinary(b *testing.B) {
	frontier := benchFrontier(b, 300)
	blobs := make([][]byte, len(frontier))
	for i, s := range frontier {
		blobs[i], _ = s.MarshalBinary()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s core.Stamp
		if err := s.UnmarshalBinary(blobs[i%len(blobs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalCompact(b *testing.B) {
	frontier := benchFrontier(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = encoding.MarshalCompact(frontier[i%len(frontier)])
	}
}

func BenchmarkMarshalJSON(b *testing.B) {
	frontier := benchFrontier(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encoding.MarshalJSON(frontier[i%len(frontier)]); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Representation ablations.

func randomName(rng *rand.Rand, strings, maxLen int) name.Name {
	bits := make([]versionstamp.Bits, 0, strings)
	for i := 0; i < strings; i++ {
		b := versionstamp.Bits("")
		for j := rng.Intn(maxLen + 1); j > 0; j-- {
			if rng.Intn(2) == 0 {
				b = b.Append0()
			} else {
				b = b.Append1()
			}
		}
		bits = append(bits, b)
	}
	return name.MaxOf(bits...)
}

func BenchmarkNameLeqSlice(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	names := make([]name.Name, 64)
	for i := range names {
		names[i] = randomName(rng, 24, 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = names[i%64].Leq(names[(i+1)%64])
	}
}

func BenchmarkNameLeqTrie(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tries := make([]*trie.Node, 64)
	for i := range tries {
		tries[i] = trie.FromName(randomName(rng, 24, 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tries[i%64].Leq(tries[(i+1)%64])
	}
}

func BenchmarkNameJoinSlice(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	names := make([]name.Name, 64)
	for i := range names {
		names[i] = randomName(rng, 24, 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = name.Join(names[i%64], names[(i+1)%64])
	}
}

func BenchmarkNameJoinTrie(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	tries := make([]*trie.Node, 64)
	for i := range tries {
		tries[i] = trie.FromName(randomName(rng, 24, 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = trie.Join(tries[i%64], tries[(i+1)%64])
	}
}

// ---------------------------------------------------------------------------
// E3: Figure 3 round (update + sync) at several system sizes.

func BenchmarkE3Figure3Round(b *testing.B) {
	for _, n := range []int{3, 4, 6} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Rebuild periodically: rotating syncs grow stamps, so a
				// fixed number of rounds per system keeps work bounded.
				sys, err := sim.NewFigure3System(n)
				if err != nil {
					b.Fatal(err)
				}
				for r := 0; r < 2*n; r++ {
					k := r % n
					if err := sys.Update(k); err != nil {
						b.Fatal(err)
					}
					if r%2 == 0 {
						if err := sys.Sync(k, (k+1)%n); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ReportMetric(float64(sys.MaxStampSize()), "stamp-bytes")
				b.ReportMetric(float64(sys.VectorSize()), "vv-bytes")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E5: end-to-end trace replay, reducing vs non-reducing (space + time).

func BenchmarkE5ReplayReducing(b *testing.B) {
	for _, wl := range []struct {
		label string
		w     sim.Weights
	}{{"forkheavy", sim.ForkHeavy}, {"syncheavy", sim.SyncHeavy}} {
		b.Run(wl.label, func(b *testing.B) {
			trace := sim.Random(11, 200, wl.w, 10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tracker := sim.NewStampTracker(true)
				if _, err := sim.Replay(tracker, trace); err != nil {
					b.Fatal(err)
				}
				total := 0
				for a := 0; a < tracker.Width(); a++ {
					total += tracker.SizeOf(a)
				}
				b.ReportMetric(float64(total)/float64(tracker.Width()), "bytes/elem")
			}
		})
	}
}

func BenchmarkE5ReplayNoReduce(b *testing.B) {
	for _, wl := range []struct {
		label string
		w     sim.Weights
	}{{"forkheavy", sim.ForkHeavy}, {"syncheavy", sim.SyncHeavy}} {
		b.Run(wl.label, func(b *testing.B) {
			trace := sim.Random(11, 100, wl.w, 10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tracker := sim.NewStampTracker(false)
				if _, err := sim.Replay(tracker, trace); err != nil {
					b.Fatal(err)
				}
				total := 0
				for a := 0; a < tracker.Width(); a++ {
					total += tracker.SizeOf(a)
				}
				b.ReportMetric(float64(total)/float64(tracker.Width()), "bytes/elem")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E6: stamps vs dynamic version vectors on identical traces.

func BenchmarkE6StampsVsDVV(b *testing.B) {
	trace := sim.Random(21, 300, sim.SyncHeavy, 10)
	b.Run("stamps", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tracker := sim.NewStampTracker(true)
			if _, err := sim.Replay(tracker, trace); err != nil {
				b.Fatal(err)
			}
			total := 0
			for a := 0; a < tracker.Width(); a++ {
				total += tracker.SizeOf(a)
			}
			b.ReportMetric(float64(total)/float64(tracker.Width()), "bytes/elem")
		}
	})
	b.Run("dynamic-vv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dvv, err := sim.NewDynamicVVTracker(vv.NewCentralServer(), "dvv")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Replay(dvv, trace); err != nil {
				b.Fatal(err)
			}
			total := 0
			for a := 0; a < dvv.Width(); a++ {
				total += dvv.SizeOf(a)
			}
			b.ReportMetric(float64(total)/float64(dvv.Width()), "bytes/elem")
		}
	})
}

// ---------------------------------------------------------------------------
// E7: interval tree clocks on the same traces.

func BenchmarkE7ITC(b *testing.B) {
	trace := sim.Random(21, 300, sim.SyncHeavy, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tracker := sim.NewITCTracker()
		if _, err := sim.Replay(tracker, trace); err != nil {
			b.Fatal(err)
		}
		total := 0
		for a := 0; a < tracker.Width(); a++ {
			total += tracker.SizeOf(a)
		}
		b.ReportMetric(float64(total)/float64(tracker.Width()), "bytes/elem")
	}
}

func BenchmarkITCEvent(b *testing.B) {
	s, err := itc.Seed().Event()
	if err != nil {
		b.Fatal(err)
	}
	l, r := s.Fork()
	l2, _ := l.Event()
	_ = r
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l2.Event(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E4: verification throughput (how fast the lockstep checker itself runs).

func BenchmarkE4LockstepVerification(b *testing.B) {
	trace := sim.Random(3, 120, sim.Balanced, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runner := sim.NewRunner(
			sim.NewCausalTracker(),
			[]sim.Tracker{sim.NewStampTracker(true)},
			sim.Config{Check: sim.CheckSubsets, Seed: int64(i)},
		)
		if _, err := runner.Run(trace); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Sharded kvstore: parallel put throughput and pairwise sync versus the
// seed's single-lock design (shards=1 reproduces it exactly).

func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
	}
	return keys
}

// BenchmarkShardedPut measures concurrent put throughput at several stripe
// counts. shards=1 is the single-lock baseline; run with -cpu to see the
// striped layouts pull ahead as cores are added.
func BenchmarkShardedPut(b *testing.B) {
	keys := benchKeys(4096)
	val := []byte("value-payload-0123456789")
	for _, shards := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r := kvstore.NewReplicaShards("bench", shards)
			var ctr atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(ctr.Add(1)) * 7919 // offset goroutines across stripes
				for pb.Next() {
					r.Put(keys[i%len(keys)], val)
					i++
				}
			})
		})
	}
}

// BenchmarkShardedGet measures concurrent read throughput under the same
// layouts.
func BenchmarkShardedGet(b *testing.B) {
	keys := benchKeys(4096)
	val := []byte("value-payload-0123456789")
	for _, shards := range []int{1, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r := kvstore.NewReplicaShards("bench", shards)
			for _, k := range keys {
				r.Put(k, val)
			}
			var ctr atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(ctr.Add(1)) * 7919
				for pb.Next() {
					r.Get(keys[i%len(keys)])
					i++
				}
			})
		})
	}
}

// BenchmarkParallelSync measures one pairwise anti-entropy pass over a
// populated keyspace with one fresh divergent write per iteration. With
// equal stripe counts the pass reconciles shard pairs concurrently;
// shards=1 serializes the keyspace under a single lock pair, which is the
// seed's behavior.
func BenchmarkParallelSync(b *testing.B) {
	keys := benchKeys(2048)
	val := []byte("value-payload-0123456789")
	for _, shards := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			a := kvstore.NewReplicaShards("a", shards)
			entries := make(map[string][]byte, len(keys))
			for _, k := range keys {
				entries[k] = val
			}
			a.PutBatch(entries)
			c := kvstore.NewReplicaShards("c", shards)
			if _, err := kvstore.Sync(a, c, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Put(keys[i%len(keys)], val)
				if _, err := kvstore.Sync(a, c, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchPut compares n point puts against one PutBatch of the same
// keys (one lock acquisition per involved stripe).
func BenchmarkBatchPut(b *testing.B) {
	keys := benchKeys(256)
	val := []byte("value-payload-0123456789")
	entries := make(map[string][]byte, len(keys))
	for _, k := range keys {
		entries[k] = val
	}
	b.Run("point", func(b *testing.B) {
		r := kvstore.NewReplica("bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				r.Put(k, val)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		r := kvstore.NewReplica("bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.PutBatch(entries)
		}
	})
}

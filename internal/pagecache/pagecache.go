// Package pagecache is the admission cache between the replica's read path
// and the WAL's point reads. A paged replica keeps only key → (stamp,
// location) resident; the value bytes live in the shard's log or checkpoint
// file and are faulted in on demand. This cache bounds how many of those
// faulted values stay in RAM: a sharded LRU with a byte budget, singleflight
// fills so a hot key being faulted by many readers costs one disk read, and
// hit/miss/byte counters the memory benchmark reports.
//
// Buffers handed out by Get are immutable by contract: the cache retains
// them and returns the same slice to every hit, so callers must not write
// into them. That is what makes a cache hit a zero-copy read — the replica
// returns the cached buffer directly instead of copying per call.
package pagecache

import (
	"sync"
	"sync/atomic"
)

// Key identifies one cached value by (store shard, generation, region,
// user-visible key). Keying by name rather than file offset lets the read
// path probe the cache BEFORE resolving the key to a location — a hit skips
// the cold index's binary search entirely. Generations advance when a
// checkpoint or compaction rewrites a file, so entries cached against a
// superseded layout can never be returned — they simply stop being looked
// up and age out of the LRU.
type Key struct {
	Shard int
	Gen   uint32
	Ckpt  bool
	Name  string
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Hits      int64 // Get calls served from cache
	Misses    int64 // Get calls that ran the fill
	Evictions int64 // entries dropped to stay under the byte budget
	Bytes     int64 // value bytes currently cached
	Entries   int64 // entries currently cached
}

const numShards = 16

// Cache is a sized, sharded LRU over faulted value buffers. The byte budget
// is global; each cache shard enforces an equal slice of it so eviction
// needs no cross-shard coordination. Safe for concurrent use.
type Cache struct {
	shardBudget int64
	shards      [numShards]cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64
	entries   atomic.Int64
}

type cacheShard struct {
	mu       sync.Mutex
	entries  map[Key]*node
	head     *node // most recently used
	tail     *node // least recently used
	bytes    int64
	inflight map[Key]*call
}

type node struct {
	key        Key
	buf        []byte
	prev, next *node
}

// call is one in-progress fill other readers of the same key wait on.
type call struct {
	done chan struct{}
	buf  []byte
	err  error
}

// New returns a cache holding at most budgetBytes of value bytes. A budget
// of zero or less still works — every fill is admitted and immediately
// evicted on the next, so the cache degrades to singleflight-only.
func New(budgetBytes int64) *Cache {
	c := &Cache{shardBudget: budgetBytes / numShards}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*node)
		c.shards[i].inflight = make(map[Key]*call)
	}
	return c
}

// Get returns the buffer cached under key, running fill to produce it on a
// miss. Concurrent misses on the same key share one fill. The returned
// buffer is owned by the cache and MUST NOT be modified.
func (c *Cache) Get(key Key, fill func() ([]byte, error)) ([]byte, error) {
	sh := &c.shards[shardOf(key)]

	sh.mu.Lock()
	if n, ok := sh.entries[key]; ok {
		sh.moveToFront(n)
		sh.mu.Unlock()
		c.hits.Add(1)
		return n.buf, nil
	}
	if cl, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		<-cl.done
		if cl.err != nil {
			return nil, cl.err
		}
		c.hits.Add(1)
		return cl.buf, nil
	}
	cl := &call{done: make(chan struct{})}
	sh.inflight[key] = cl
	sh.mu.Unlock()

	c.misses.Add(1)
	buf, err := fill()
	cl.buf, cl.err = buf, err
	close(cl.done)

	sh.mu.Lock()
	delete(sh.inflight, key)
	if err == nil {
		c.admit(sh, key, buf)
	}
	sh.mu.Unlock()
	return buf, err
}

// Lookup returns the buffer cached under key without filling on a miss —
// the read path's fast probe. A hit counts and refreshes recency; a miss
// counts nothing (the caller falls through to Get, which records it).
func (c *Cache) Lookup(key Key) ([]byte, bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	n, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	sh.moveToFront(n)
	sh.mu.Unlock()
	c.hits.Add(1)
	return n.buf, true
}

// Peek returns the cached buffer without filling on a miss. The hit/miss
// counters are untouched: Peek is for tests and introspection.
func (c *Cache) Peek(key Key) ([]byte, bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	return n.buf, true
}

// InvalidateShard drops every cached entry for the given store shard. Called
// after a checkpoint or compaction rewrites the shard's files: the
// generation in the key already prevents stale hits, so this only releases
// budget the rewritten locations can no longer earn back.
func (c *Cache) InvalidateShard(shard int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, n := range sh.entries {
			if k.Shard == shard {
				sh.unlink(n)
				delete(sh.entries, k)
				sh.bytes -= int64(len(n.buf))
				c.bytes.Add(-int64(len(n.buf)))
				c.entries.Add(-1)
			}
		}
		sh.mu.Unlock()
	}
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
		Entries:   c.entries.Load(),
	}
}

// admit inserts buf under key, evicting from the cold end until the shard
// fits its budget slice. Buffers larger than the whole slice are not
// admitted at all — caching one would evict everything else for a buffer
// unlikely to be re-read before its own eviction. Caller holds sh.mu.
func (c *Cache) admit(sh *cacheShard, key Key, buf []byte) {
	if n, ok := sh.entries[key]; ok {
		// A racing fill already admitted this key; refresh recency only.
		sh.moveToFront(n)
		return
	}
	if int64(len(buf)) > c.shardBudget {
		return
	}
	for sh.bytes+int64(len(buf)) > c.shardBudget && sh.tail != nil {
		old := sh.tail
		sh.unlink(old)
		delete(sh.entries, old.key)
		sh.bytes -= int64(len(old.buf))
		c.bytes.Add(-int64(len(old.buf)))
		c.entries.Add(-1)
		c.evictions.Add(1)
	}
	n := &node{key: key, buf: buf}
	sh.entries[key] = n
	sh.pushFront(n)
	sh.bytes += int64(len(buf))
	c.bytes.Add(int64(len(buf)))
	c.entries.Add(1)
}

func (sh *cacheShard) pushFront(n *node) {
	n.prev = nil
	n.next = sh.head
	if sh.head != nil {
		sh.head.prev = n
	}
	sh.head = n
	if sh.tail == nil {
		sh.tail = n
	}
}

func (sh *cacheShard) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		sh.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		sh.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (sh *cacheShard) moveToFront(n *node) {
	if sh.head == n {
		return
	}
	sh.unlink(n)
	sh.pushFront(n)
}

// shardOf hashes a key to its cache shard (FNV-1a over the name, mixed
// with the location fields through a splitmix64 finalizer).
func shardOf(k Key) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.Name); i++ {
		h ^= uint64(k.Name[i])
		h *= 1099511628211
	}
	x := h ^ uint64(k.Shard)<<40 ^ uint64(k.Gen)<<32
	if k.Ckpt {
		x ^= 1 << 63
	}
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % numShards)
}

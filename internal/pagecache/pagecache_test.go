package pagecache

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

func key(shard int, off int64) Key { return Key{Shard: shard, Name: strconv.FormatInt(off, 10)} }

func TestGetFillsOnceThenHits(t *testing.T) {
	c := New(1 << 20)
	fills := 0
	fill := func() ([]byte, error) { fills++; return []byte("value"), nil }
	for i := 0; i < 3; i++ {
		buf, err := c.Get(key(0, 42), fill)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if string(buf) != "value" {
			t.Fatalf("got %q", buf)
		}
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
	if st.Bytes != 5 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 5 bytes / 1 entry", st)
	}
}

func TestLookupProbesWithoutFill(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Lookup(key(0, 1)); ok {
		t.Fatal("hit on an empty cache")
	}
	if st := c.Stats(); st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("lookup miss touched the counters: %+v", st)
	}
	c.Get(key(0, 1), func() ([]byte, error) { return []byte("v"), nil })
	buf, ok := c.Lookup(key(0, 1))
	if !ok || string(buf) != "v" {
		t.Fatalf("lookup = %q, %v", buf, ok)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestFillErrorNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	if _, err := c.Get(key(0, 1), func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed fill must not poison the key: the next Get refills.
	buf, err := c.Get(key(0, 1), func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(buf) != "ok" {
		t.Fatalf("refill = %q, %v", buf, err)
	}
}

func TestEvictionUnderBudget(t *testing.T) {
	// Budget of numShards*8 gives each cache shard 8 bytes: two 4-byte
	// entries fit, the third evicts the coldest.
	c := New(numShards * 8)
	// All keys with the same hash shard: find three that collide.
	var ks []Key
	for off := int64(0); len(ks) < 3; off++ {
		k := key(0, off)
		if shardOf(k) == shardOf(key(0, 0)) {
			ks = append(ks, k)
		}
	}
	for _, k := range ks {
		c.Get(k, func() ([]byte, error) { return []byte("abcd"), nil })
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// Coldest (first) key is gone; the two recent ones remain.
	if _, ok := c.Peek(ks[0]); ok {
		t.Fatal("coldest entry survived eviction")
	}
	if _, ok := c.Peek(ks[2]); !ok {
		t.Fatal("hottest entry evicted")
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := New(numShards * 8)
	var ks []Key
	for off := int64(0); len(ks) < 3; off++ {
		k := key(0, off)
		if shardOf(k) == shardOf(key(0, 0)) {
			ks = append(ks, k)
		}
	}
	fill := func(s string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(s), nil }
	}
	c.Get(ks[0], fill("aaaa"))
	c.Get(ks[1], fill("bbbb"))
	c.Get(ks[0], fill("aaaa")) // touch ks[0]: ks[1] is now coldest
	c.Get(ks[2], fill("cccc")) // evicts ks[1]
	if _, ok := c.Peek(ks[1]); ok {
		t.Fatal("expected ks[1] evicted (coldest after touch)")
	}
	if _, ok := c.Peek(ks[0]); !ok {
		t.Fatal("touched entry was evicted")
	}
}

func TestOversizeBufferNotAdmitted(t *testing.T) {
	c := New(numShards * 8)
	big := make([]byte, 64)
	buf, err := c.Get(key(0, 9), func() ([]byte, error) { return big, nil })
	if err != nil || len(buf) != 64 {
		t.Fatalf("get = %d bytes, %v", len(buf), err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize buffer admitted: %+v", st)
	}
}

func TestSingleflightConcurrentFills(t *testing.T) {
	c := New(1 << 20)
	var fills atomic.Int64
	release := make(chan struct{})
	const readers = 16
	var wg sync.WaitGroup
	bufs := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf, err := c.Get(key(3, 7), func() ([]byte, error) {
				fills.Add(1)
				<-release
				return []byte("shared"), nil
			})
			if err != nil {
				t.Errorf("get: %v", err)
			}
			bufs[i] = buf
		}(i)
	}
	close(release)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		// Readers that arrive after the fill completes may still miss the
		// inflight entry and hit the cache instead; more than one actual
		// fill means singleflight failed.
		t.Fatalf("fill ran %d times, want 1", n)
	}
	for i, buf := range bufs {
		if string(buf) != "shared" {
			t.Fatalf("reader %d got %q", i, buf)
		}
	}
}

func TestInvalidateShard(t *testing.T) {
	c := New(1 << 20)
	for off := int64(0); off < 10; off++ {
		for shard := 0; shard < 2; shard++ {
			k := key(shard, off)
			c.Get(k, func() ([]byte, error) { return []byte(fmt.Sprintf("%d/%d", shard, off)), nil })
		}
	}
	before := c.Stats()
	if before.Entries != 20 {
		t.Fatalf("entries = %d, want 20", before.Entries)
	}
	c.InvalidateShard(0)
	after := c.Stats()
	if after.Entries != 10 {
		t.Fatalf("entries after invalidate = %d, want 10", after.Entries)
	}
	for off := int64(0); off < 10; off++ {
		if _, ok := c.Peek(key(0, off)); ok {
			t.Fatalf("shard 0 off %d survived invalidation", off)
		}
		if _, ok := c.Peek(key(1, off)); !ok {
			t.Fatalf("shard 1 off %d dropped by invalidation", off)
		}
	}
	if after.Bytes <= 0 || after.Bytes >= before.Bytes {
		t.Fatalf("bytes accounting off: before %d after %d", before.Bytes, after.Bytes)
	}
}

func TestGenDistinguishesKeys(t *testing.T) {
	c := New(1 << 20)
	old := Key{Shard: 0, Gen: 1, Name: "5"}
	neu := Key{Shard: 0, Gen: 2, Name: "5"}
	c.Get(old, func() ([]byte, error) { return []byte("old"), nil })
	buf, err := c.Get(neu, func() ([]byte, error) { return []byte("new"), nil })
	if err != nil || string(buf) != "new" {
		t.Fatalf("new gen read = %q, %v", buf, err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	c := New(4 << 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(w%4, int64(i%50))
				buf, err := c.Get(k, func() ([]byte, error) {
					return []byte(fmt.Sprintf("%d:%s", k.Shard, k.Name)), nil
				})
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				want := fmt.Sprintf("%d:%s", k.Shard, k.Name)
				if string(buf) != want {
					t.Errorf("got %q want %q", buf, want)
					return
				}
				if i%100 == 0 {
					c.InvalidateShard(w % 4)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 || st.Entries < 0 {
		t.Fatalf("negative accounting: %+v", st)
	}
}

package itc

import (
	"fmt"
	"strings"
)

// Event is an event tree: a piecewise-constant non-negative integer function
// over the interval [0,1), counting the events known in each part.
//
//	leaf n:          the constant n over this subinterval
//	branch(n, l, r): n plus the functions described by l and r over the
//	                 two halves
//
// Event trees are kept normalized: children share no common positive base
// (the minimum of each branch's children is zero after lifting into the
// parent) and a branch of two equal leaves collapses.
type Event struct {
	n           uint64
	left, right *Event // both nil for a leaf, both non-nil for a branch
}

// LeafEvent returns the constant event tree n.
func LeafEvent(n uint64) *Event { return &Event{n: n} }

// zeroEvent is the all-zero event function, the seed stamp's event tree.
var zeroEvent = &Event{}

// IsLeaf reports whether e is a constant function.
func (e *Event) IsLeaf() bool { return e.left == nil }

// Value returns the constant of a leaf; for a branch it returns the base n.
func (e *Event) Value() uint64 { return e.n }

// lift returns e with m added to its base.
func (e *Event) lift(m uint64) *Event {
	if m == 0 {
		return e
	}
	return &Event{n: e.n + m, left: e.left, right: e.right}
}

// sink returns e with m subtracted from its base; callers guarantee m <= n.
func (e *Event) sink(m uint64) *Event {
	if m == 0 {
		return e
	}
	return &Event{n: e.n - m, left: e.left, right: e.right}
}

// minVal returns the minimum of the function.
func (e *Event) minVal() uint64 {
	if e.IsLeaf() {
		return e.n
	}
	return e.n + min(e.left.minVal(), e.right.minVal())
}

// maxVal returns the maximum of the function.
func (e *Event) maxVal() uint64 {
	if e.IsLeaf() {
		return e.n
	}
	return e.n + max(e.left.maxVal(), e.right.maxVal())
}

// branchEvent builds the normalized branch (n, l, r).
func branchEvent(n uint64, l, r *Event) *Event {
	if l.IsLeaf() && r.IsLeaf() && l.n == r.n {
		return &Event{n: n + l.n}
	}
	m := min(l.minVal(), r.minVal())
	return &Event{n: n + m, left: l.sink(m), right: r.sink(m)}
}

// norm returns the normal form of e.
func (e *Event) norm() *Event {
	if e.IsLeaf() {
		return e
	}
	return branchEvent(e.n, e.left.norm(), e.right.norm())
}

// Leq reports e ≤ f pointwise: every subinterval of e counts no more events
// than f does.
func Leq(e, f *Event) bool {
	return leqAt(e, 0, f, 0)
}

// leqAt compares with accumulated bases be and bf.
func leqAt(e *Event, be uint64, f *Event, bf uint64) bool {
	ve, vf := be+e.n, bf+f.n
	if e.IsLeaf() {
		if f.IsLeaf() {
			return ve <= vf
		}
		// Constant ve vs f: compare against f's minimum.
		return ve <= vf+min(f.left.minVal(), f.right.minVal())
	}
	if f.IsLeaf() {
		return ve+max(e.left.maxVal(), e.right.maxVal()) <= vf
	}
	return leqAt(e.left, ve, f.left, vf) && leqAt(e.right, ve, f.right, vf)
}

// JoinEvents returns the pointwise maximum of e and f, normalized.
func JoinEvents(e, f *Event) *Event {
	return joinAt(e, 0, f, 0).norm()
}

func joinAt(e *Event, be uint64, f *Event, bf uint64) *Event {
	ve, vf := be+e.n, bf+f.n
	if e.IsLeaf() && f.IsLeaf() {
		return &Event{n: max(ve, vf)}
	}
	if e.IsLeaf() {
		e = &Event{n: e.n, left: zeroEvent, right: zeroEvent}
	}
	if f.IsLeaf() {
		f = &Event{n: f.n, left: zeroEvent, right: zeroEvent}
	}
	l := joinAt(e.left, ve, f.left, vf)
	r := joinAt(e.right, ve, f.right, vf)
	// Children computed with absolute bases; rebase under 0.
	return &Event{n: 0, left: l, right: r}
}

// Equal reports pointwise equality of the functions.
func (e *Event) Equal(f *Event) bool {
	return Leq(e, f) && Leq(f, e)
}

// Nodes returns the number of tree nodes, a size measure.
func (e *Event) Nodes() int {
	if e.IsLeaf() {
		return 1
	}
	return 1 + e.left.Nodes() + e.right.Nodes()
}

// String renders the event tree: "n" or "(n,l,r)".
func (e *Event) String() string {
	if e.IsLeaf() {
		return fmt.Sprintf("%d", e.n)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "(%d,", e.n)
	sb.WriteString(e.left.String())
	sb.WriteByte(',')
	sb.WriteString(e.right.String())
	sb.WriteByte(')')
	return sb.String()
}

// Validate checks structural sanity and normalization.
func (e *Event) Validate() error {
	if e.IsLeaf() {
		if e.right != nil {
			return fmt.Errorf("itc: half-branch event node")
		}
		return nil
	}
	if e.right == nil {
		return fmt.Errorf("itc: half-branch event node")
	}
	if e.left.IsLeaf() && e.right.IsLeaf() && e.left.n == e.right.n {
		return fmt.Errorf("itc: unnormalized event branch")
	}
	if min(e.left.minVal(), e.right.minVal()) != 0 {
		return fmt.Errorf("itc: unnormalized event base")
	}
	if err := e.left.Validate(); err != nil {
		return err
	}
	return e.right.Validate()
}

// fill inflates the event tree to max out the subintervals owned by id i,
// without growing the tree (the cheap half of an event; see Stamp.Event).
func fill(i *ID, e *Event) *Event {
	switch {
	case i.IsZero():
		return e
	case i.IsOne():
		return &Event{n: e.maxVal()}
	case e.IsLeaf():
		return e
	case i.left.IsOne():
		er := fill(i.right, e.right)
		l := &Event{n: max(e.left.maxVal(), er.minVal())}
		return branchEvent(e.n, l, er)
	case i.right.IsOne():
		el := fill(i.left, e.left)
		r := &Event{n: max(e.right.maxVal(), el.minVal())}
		return branchEvent(e.n, el, r)
	default:
		return branchEvent(e.n, fill(i.left, e.left), fill(i.right, e.right))
	}
}

// growCostRoot is the per-level cost bias making grow prefer shallow
// expansion over deepening the tree.
const growCostRoot = 1 << 20

// grow inflates the event tree by one event inside the interval owned by i,
// choosing the cheapest spot (the expensive half of an event).
func grow(i *ID, e *Event) (*Event, uint64) {
	if e.IsLeaf() {
		if i.IsOne() {
			return &Event{n: e.n + 1}, 0
		}
		ne, cost := grow(i, &Event{n: e.n, left: zeroEvent, right: zeroEvent})
		return ne, cost + growCostRoot
	}
	switch {
	case i.IsZero():
		// Cannot grow anywhere in an unowned interval; callers prevent this.
		return e, 1 << 62
	case i.IsOne():
		// Owns everything below: bump the base.
		return &Event{n: e.n + 1, left: e.left, right: e.right}, 0
	case i.left.IsZero():
		r, cost := grow(i.right, e.right)
		return branchEvent(e.n, e.left, r), cost + 1
	case i.right.IsZero():
		l, cost := grow(i.left, e.left)
		return branchEvent(e.n, l, e.right), cost + 1
	default:
		l, cl := grow(i.left, e.left)
		r, cr := grow(i.right, e.right)
		if cl <= cr {
			return branchEvent(e.n, l, e.right), cl + 1
		}
		return branchEvent(e.n, e.left, r), cr + 1
	}
}

package itc

import (
	"errors"
	"fmt"
)

// Stamp is an interval tree clock: an identity tree paired with an event
// tree. The zero value is not valid; histories start from Seed().
type Stamp struct {
	id *ID
	ev *Event
}

// ErrAnonymous is returned when recording an event on a stamp whose id owns
// nothing (id = 0): anonymous stamps can compare but not update.
var ErrAnonymous = errors.New("itc: event on an anonymous stamp")

// Seed returns the initial stamp (1, 0): full ownership, no events.
func Seed() Stamp {
	return Stamp{id: One(), ev: zeroEvent}
}

// ID returns the identity tree.
func (s Stamp) ID() *ID { return s.id }

// EventTree returns the event tree.
func (s Stamp) EventTree() *Event { return s.ev }

// IsZero reports an uninitialized stamp.
func (s Stamp) IsZero() bool { return s.id == nil || s.ev == nil }

// Fork splits the stamp in two: the id divides, the event tree is shared.
func (s Stamp) Fork() (Stamp, Stamp) {
	l, r := s.id.Split()
	return Stamp{id: l, ev: s.ev}, Stamp{id: r, ev: s.ev}
}

// Peek returns an anonymous stamp carrying s's causal knowledge (id 0),
// usable as a message timestamp, plus the original stamp unchanged.
func (s Stamp) Peek() Stamp {
	return Stamp{id: Zero(), ev: s.ev}
}

// Event records a new event: the event tree inflates inside the stamp's own
// interval, preferring inflations that do not grow the tree (fill) and
// otherwise growing at the cheapest spot (grow).
func (s Stamp) Event() (Stamp, error) {
	if s.id.IsZero() {
		return Stamp{}, ErrAnonymous
	}
	filled := fill(s.id, s.ev)
	if !filled.Equal(s.ev) {
		return Stamp{id: s.id, ev: filled.norm()}, nil
	}
	grown, _ := grow(s.id, s.ev)
	return Stamp{id: s.id, ev: grown.norm()}, nil
}

// Join merges two stamps: ids reunite (they must be disjoint), event trees
// take their pointwise maximum.
func Join(a, b Stamp) (Stamp, error) {
	id, err := Sum(a.id, b.id)
	if err != nil {
		return Stamp{}, err
	}
	return Stamp{id: id, ev: JoinEvents(a.ev, b.ev)}, nil
}

// Sync is join followed by fork: both replicas survive with merged
// knowledge.
func Sync(a, b Stamp) (Stamp, Stamp, error) {
	j, err := Join(a, b)
	if err != nil {
		return Stamp{}, Stamp{}, err
	}
	l, r := j.Fork()
	return l, r, nil
}

// Ordering mirrors core.Ordering for the four-way comparison outcome.
type Ordering int

// Ordering values; see package core for the replication-level meaning.
const (
	Equal Ordering = iota + 1
	Before
	After
	Concurrent
)

// String returns a human-readable rendering of the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return "invalid"
	}
}

// Compare relates two stamps by their event trees.
func Compare(a, b Stamp) Ordering {
	ab, ba := Leq(a.ev, b.ev), Leq(b.ev, a.ev)
	switch {
	case ab && ba:
		return Equal
	case ab:
		return Before
	case ba:
		return After
	default:
		return Concurrent
	}
}

// LeqStamp reports a ≤ b: b's event tree dominates a's pointwise.
func LeqStamp(a, b Stamp) bool { return Leq(a.ev, b.ev) }

// Nodes returns the total tree nodes of the stamp, the E7 size measure.
func (s Stamp) Nodes() int {
	if s.IsZero() {
		return 0
	}
	return s.id.Nodes() + s.ev.Nodes()
}

// String renders the stamp as "(id; ev)".
func (s Stamp) String() string {
	if s.IsZero() {
		return "(invalid)"
	}
	return fmt.Sprintf("(%v; %v)", s.id, s.ev)
}

// Validate checks both trees' structural invariants.
func (s Stamp) Validate() error {
	if s.IsZero() {
		return errors.New("itc: zero stamp")
	}
	if err := s.id.Validate(); err != nil {
		return err
	}
	return s.ev.Validate()
}

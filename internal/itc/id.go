// Package itc implements Interval Tree Clocks (Almeida, Baquero, Fonte,
// OPODIS 2008), the successor design that the version-stamps paper's
// conclusion anticipates ("the design of decentralized vector clocks, by
// exploring autonomous identifiers").
//
// Like version stamps, ITC works in the fork-event-join model with no
// global identifiers: a stamp is a pair (id, event) of binary trees. The id
// tree describes which interval of [0,1) the replica owns (forking splits
// the interval, joining reunites it); the event tree is a piecewise-constant
// integer function over [0,1) counting known events.
//
// The package exists as experiment E7: the simulator verifies that ITC
// induces the same frontier ordering as causal histories and version
// stamps, and the benchmarks compare stamp sizes. Unlike version stamps,
// ITC events inflate counters, so repeated updates keep growing the event
// tree where version stamps stay constant; conversely ITC ids can be leaner
// after heavy churn.
package itc

import (
	"fmt"
	"strings"
)

// ID is an identity tree: ownership of a subinterval of [0,1).
//
//	leaf 0:      owns nothing (anonymous)
//	leaf 1:      owns the whole subinterval
//	branch(l,r): left half described by l, right half by r
//
// IDs are kept normalized: (0,0) is represented as leaf 0 and (1,1) as
// leaf 1. The zero value of ID is not valid; use Zero, One or the
// operations.
type ID struct {
	// For a leaf, left and right are nil and full records ownership.
	// For a branch, left and right are both non-nil.
	full        bool
	left, right *ID
}

var (
	idZero = &ID{full: false}
	idOne  = &ID{full: true}
)

// Zero returns the anonymous id (owns nothing).
func Zero() *ID { return idZero }

// One returns the full id (owns everything) — the seed replica's identity.
func One() *ID { return idOne }

// branchID builds a normalized branch.
func branchID(l, r *ID) *ID {
	if l.IsLeaf() && r.IsLeaf() {
		if !l.full && !r.full {
			return idZero
		}
		if l.full && r.full {
			return idOne
		}
	}
	return &ID{left: l, right: r}
}

// IsLeaf reports whether i is a leaf (0 or 1).
func (i *ID) IsLeaf() bool { return i.left == nil }

// IsZero reports whether i is the anonymous id.
func (i *ID) IsZero() bool { return i.IsLeaf() && !i.full }

// IsOne reports whether i owns the whole interval.
func (i *ID) IsOne() bool { return i.IsLeaf() && i.full }

// Split divides the id into two disjoint non-empty halves (when i is
// non-zero); forking a stamp gives one half to each descendant.
func (i *ID) Split() (*ID, *ID) {
	switch {
	case i.IsZero():
		return idZero, idZero
	case i.IsOne():
		return branchID(idOne, idZero), branchID(idZero, idOne)
	case i.left.IsZero():
		r1, r2 := i.right.Split()
		return branchID(idZero, r1), branchID(idZero, r2)
	case i.right.IsZero():
		l1, l2 := i.left.Split()
		return branchID(l1, idZero), branchID(l2, idZero)
	default:
		return branchID(i.left, idZero), branchID(idZero, i.right)
	}
}

// Sum reunites two disjoint ids (the join of identities). It returns an
// error when the ids overlap, which cannot happen for stamps of one
// frontier.
func Sum(a, b *ID) (*ID, error) {
	switch {
	case a.IsZero():
		return b, nil
	case b.IsZero():
		return a, nil
	case a.IsLeaf() || b.IsLeaf():
		// One side owns this whole subinterval and the other is non-zero.
		return nil, fmt.Errorf("itc: overlapping ids %v and %v", a, b)
	default:
		l, err := Sum(a.left, b.left)
		if err != nil {
			return nil, err
		}
		r, err := Sum(a.right, b.right)
		if err != nil {
			return nil, err
		}
		return branchID(l, r), nil
	}
}

// Disjoint reports whether a and b own non-overlapping intervals.
func Disjoint(a, b *ID) bool {
	switch {
	case a.IsZero() || b.IsZero():
		return true
	case a.IsLeaf() || b.IsLeaf():
		return false
	default:
		return Disjoint(a.left, b.left) && Disjoint(a.right, b.right)
	}
}

// Equal reports structural equality (normal forms make this semantic).
func (i *ID) Equal(j *ID) bool {
	if i.IsLeaf() || j.IsLeaf() {
		return i.IsLeaf() && j.IsLeaf() && i.full == j.full
	}
	return i.left.Equal(j.left) && i.right.Equal(j.right)
}

// Nodes returns the number of tree nodes, a size measure.
func (i *ID) Nodes() int {
	if i.IsLeaf() {
		return 1
	}
	return 1 + i.left.Nodes() + i.right.Nodes()
}

// String renders the id: "0", "1" or "(l,r)".
func (i *ID) String() string {
	if i.IsLeaf() {
		if i.full {
			return "1"
		}
		return "0"
	}
	var sb strings.Builder
	sb.WriteByte('(')
	sb.WriteString(i.left.String())
	sb.WriteByte(',')
	sb.WriteString(i.right.String())
	sb.WriteByte(')')
	return sb.String()
}

// Validate checks the normalization invariant: no branch of two equal
// leaves.
func (i *ID) Validate() error {
	if i.IsLeaf() {
		return nil
	}
	if i.left == nil || i.right == nil {
		return fmt.Errorf("itc: half-branch id node")
	}
	if i.left.IsLeaf() && i.right.IsLeaf() && i.left.full == i.right.full {
		return fmt.Errorf("itc: unnormalized id branch (%v,%v)", i.left, i.right)
	}
	if err := i.left.Validate(); err != nil {
		return err
	}
	return i.right.Validate()
}

package itc

import (
	"bytes"
	"encoding"
	"math/rand"
	"testing"
)

var (
	_ encoding.BinaryMarshaler   = Stamp{}
	_ encoding.BinaryUnmarshaler = (*Stamp)(nil)
)

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 40; iter++ {
		frontier := randomStampTrace(t, rng, 60)
		for _, s := range frontier {
			data, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary(%v): %v", s, err)
			}
			if len(data) != s.EncodedSize() {
				t.Fatalf("EncodedSize(%v) = %d, actual %d", s, s.EncodedSize(), len(data))
			}
			var back Stamp
			if err := back.UnmarshalBinary(data); err != nil {
				t.Fatalf("UnmarshalBinary(%v): %v", s, err)
			}
			if !back.ID().Equal(s.ID()) || !back.EventTree().Equal(s.EventTree()) {
				t.Fatalf("round trip %v -> %v", s, back)
			}
		}
	}
}

func TestCodecKnownSizes(t *testing.T) {
	// Seed (1; 0): id leaf-one = 2 bits, event leaf 0 = 1+4 bits = 7 bits
	// total -> 1 frame byte + 1 payload byte.
	if got := Seed().EncodedSize(); got != 2 {
		t.Errorf("Seed().EncodedSize() = %d, want 2", got)
	}
	data, _ := Seed().MarshalBinary()
	if len(data) != 2 {
		t.Errorf("len = %d", len(data))
	}
}

func TestCodecLargeCounters(t *testing.T) {
	// Event counters beyond one chunk round-trip.
	s := Seed()
	var err error
	for i := 0; i < 100; i++ {
		s, err = s.Event()
		if err != nil {
			t.Fatal(err)
		}
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Stamp
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.EventTree().maxVal() != 100 {
		t.Errorf("counter = %d, want 100", back.EventTree().maxVal())
	}
}

func TestCodecStream(t *testing.T) {
	a, b := Seed().Fork()
	a1, _ := a.Event()
	var buf []byte
	for _, s := range []Stamp{a1, b} {
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, data...)
	}
	first, used, err := DecodeBinary(buf)
	if err != nil {
		t.Fatalf("decode 1: %v", err)
	}
	if Compare(first, a1) != Equal || !first.ID().Equal(a1.ID()) {
		t.Errorf("decode 1 = %v", first)
	}
	second, used2, err := DecodeBinary(buf[used:])
	if err != nil {
		t.Fatalf("decode 2: %v", err)
	}
	if !second.ID().Equal(b.ID()) {
		t.Errorf("decode 2 = %v", second)
	}
	if used+used2 != len(buf) {
		t.Error("stream not fully consumed")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x07},       // 7 bits claimed, no payload
		{0x01, 0x80}, // id branch then nothing
		{0x02, 0x00}, // id leaf zero then missing event
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // huge
	}
	for _, data := range cases {
		if _, _, err := DecodeBinary(data); err == nil {
			t.Errorf("DecodeBinary(%x) accepted garbage", data)
		}
	}
	// Trailing bytes rejected by UnmarshalBinary.
	good, _ := Seed().MarshalBinary()
	var s Stamp
	if err := s.UnmarshalBinary(append(good, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Marshal of the zero stamp fails cleanly.
	if _, err := (Stamp{}).MarshalBinary(); err == nil {
		t.Error("zero stamp marshal accepted")
	}
	if (Stamp{}).EncodedSize() != 0 {
		t.Error("zero stamp size must be 0")
	}
}

func TestCodecCanonical(t *testing.T) {
	// Equal stamps from the same derivation encode identically.
	a1, b1 := Seed().Fork()
	a2, b2 := Seed().Fork()
	_ = b1
	_ = b2
	d1, _ := a1.MarshalBinary()
	d2, _ := a2.MarshalBinary()
	if !bytes.Equal(d1, d2) {
		t.Error("identical stamps encoded differently")
	}
}

func TestCodecRejectsUnnormalized(t *testing.T) {
	// Hand-craft an encoding of the unnormalized id (0,0): bits
	// "1" (branch) "00" (leaf0) "00" (leaf0) + event leaf 0 "1 0000".
	// Bits: 1 00 00 1 0000 -> 10 bits: 1000 0100 00...
	data := []byte{0x0A, 0b10000100, 0b00000000}
	if _, _, err := DecodeBinary(data); err == nil {
		t.Error("unnormalized id accepted")
	}
}

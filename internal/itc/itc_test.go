package itc

import (
	"math/rand"
	"testing"
)

func TestSeed(t *testing.T) {
	s := Seed()
	if s.String() != "(1; 0)" {
		t.Errorf("Seed = %v", s)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Seed invalid: %v", err)
	}
	if s.IsZero() {
		t.Error("Seed must not be zero")
	}
	if !(Stamp{}).IsZero() {
		t.Error("zero Stamp must report IsZero")
	}
}

func TestSeedEventAndFork(t *testing.T) {
	// (1,0) -event-> (1,1)
	s, err := Seed().Event()
	if err != nil {
		t.Fatalf("Event: %v", err)
	}
	if s.String() != "(1; 1)" {
		t.Errorf("after event: %v, want (1; 1)", s)
	}
	// fork: ids (1,0) and (0,1)
	a, b := s.Fork()
	if a.String() != "((1,0); 1)" || b.String() != "((0,1); 1)" {
		t.Errorf("fork = %v, %v", a, b)
	}
	// event on the left: classic ITC growth (1 -> (1,1,0)).
	a2, err := a.Event()
	if err != nil {
		t.Fatalf("Event: %v", err)
	}
	if a2.String() != "((1,0); (1,1,0))" {
		t.Errorf("a after event = %v, want ((1,0); (1,1,0))", a2)
	}
	if err := a2.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestForkJoinRestoresSeedShape(t *testing.T) {
	a, b := Seed().Fork()
	j, err := Join(a, b)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !j.ID().IsOne() {
		t.Errorf("rejoined id = %v, want 1", j.ID())
	}
	if j.EventTree().maxVal() != 0 {
		t.Errorf("rejoined events = %v, want 0", j.EventTree())
	}
}

func TestIDSplitProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := []*ID{One()}
	for iter := 0; iter < 400; iter++ {
		i := ids[rng.Intn(len(ids))]
		if i.IsZero() {
			continue
		}
		l, r := i.Split()
		if l.IsZero() || r.IsZero() {
			t.Fatalf("Split(%v) produced an empty half: %v, %v", i, l, r)
		}
		if !Disjoint(l, r) {
			t.Fatalf("Split(%v) halves overlap: %v, %v", i, l, r)
		}
		back, err := Sum(l, r)
		if err != nil {
			t.Fatalf("Sum(Split(%v)): %v", i, err)
		}
		if !back.Equal(i) {
			t.Fatalf("Sum(Split(%v)) = %v", i, back)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("invalid split half: %v", err)
		}
		if rng.Intn(2) == 0 {
			ids = append(ids, l, r)
		}
	}
}

func TestSumRejectsOverlap(t *testing.T) {
	if _, err := Sum(One(), One()); err == nil {
		t.Error("Sum(1,1) must fail")
	}
	l, _ := One().Split()
	if _, err := Sum(l, l); err == nil {
		t.Error("Sum of a half with itself must fail")
	}
	if _, err := Join(Seed(), Seed()); err == nil {
		t.Error("Join of two seeds must fail")
	}
}

func TestEventOnAnonymous(t *testing.T) {
	anon := Seed().Peek()
	if !anon.ID().IsZero() {
		t.Fatal("Peek must be anonymous")
	}
	if _, err := anon.Event(); err == nil {
		t.Error("Event on an anonymous stamp must fail")
	}
}

func TestPeekCarriesKnowledge(t *testing.T) {
	s, _ := Seed().Event()
	msg := s.Peek()
	if Compare(msg, s) != Equal {
		t.Errorf("peeked stamp must compare equal to its source")
	}
}

// evalAt samples the event function at the dyadic point addressed by path
// (each byte 0 or 1 selects a half), descending depth levels.
func evalAt(e *Event, path []byte) uint64 {
	total := uint64(0)
	for _, p := range path {
		total += e.n
		if e.IsLeaf() {
			return total
		}
		if p == 0 {
			e = e.left
		} else {
			e = e.right
		}
	}
	// Remaining subtree: the value at this point is base plus wherever the
	// deeper structure goes; for sampling purposes descend left.
	for !e.IsLeaf() {
		total += e.n
		e = e.left
	}
	return total + e.n
}

// depth returns the height of the event tree.
func depth(e *Event) int {
	if e.IsLeaf() {
		return 0
	}
	return 1 + max(depth(e.left), depth(e.right))
}

// allPaths enumerates the 2^d paths of depth d.
func allPaths(d int) [][]byte {
	if d == 0 {
		return [][]byte{{}}
	}
	sub := allPaths(d - 1)
	out := make([][]byte, 0, 2*len(sub))
	for _, s := range sub {
		out = append(out, append([]byte{0}, s...), append([]byte{1}, s...))
	}
	return out
}

// randomStampTrace runs random fork/event/join ops and returns the frontier.
func randomStampTrace(t *testing.T, rng *rand.Rand, ops int) []Stamp {
	t.Helper()
	frontier := []Stamp{Seed()}
	for k := 0; k < ops; k++ {
		switch op := rng.Intn(3); {
		case op == 0:
			i := rng.Intn(len(frontier))
			s, err := frontier[i].Event()
			if err != nil {
				t.Fatalf("event: %v", err)
			}
			frontier[i] = s
		case op == 1 || len(frontier) == 1:
			i := rng.Intn(len(frontier))
			a, b := frontier[i].Fork()
			frontier[i] = a
			frontier = append(frontier, b)
		default:
			i, j := rng.Intn(len(frontier)), rng.Intn(len(frontier))
			if i == j {
				continue
			}
			joined, err := Join(frontier[i], frontier[j])
			if err != nil {
				t.Fatalf("join: %v", err)
			}
			frontier[i] = joined
			frontier = append(frontier[:j], frontier[j+1:]...)
		}
		for _, s := range frontier {
			if err := s.Validate(); err != nil {
				t.Fatalf("invalid stamp after %d ops: %v (%v)", k+1, err, s)
			}
		}
	}
	return frontier
}

func TestLeqMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 40; iter++ {
		frontier := randomStampTrace(t, rng, 40)
		for i := range frontier {
			for j := range frontier {
				e, f := frontier[i].EventTree(), frontier[j].EventTree()
				paths := allPaths(max(depth(e), depth(f)))
				want := true
				for _, p := range paths {
					if evalAt(e, p) > evalAt(f, p) {
						want = false
						break
					}
				}
				if got := Leq(e, f); got != want {
					t.Fatalf("Leq(%v, %v) = %v, want %v", e, f, got, want)
				}
			}
		}
	}
}

func TestJoinEventsIsPointwiseMax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 40; iter++ {
		frontier := randomStampTrace(t, rng, 30)
		if len(frontier) < 2 {
			continue
		}
		e, f := frontier[0].EventTree(), frontier[1].EventTree()
		j := JoinEvents(e, f)
		if err := j.Validate(); err != nil {
			t.Fatalf("JoinEvents produced unnormalized tree: %v", err)
		}
		for _, p := range allPaths(max(depth(e), max(depth(f), depth(j)))) {
			want := max(evalAt(e, p), evalAt(f, p))
			if got := evalAt(j, p); got != want {
				t.Fatalf("join(%v,%v) at %v = %d, want %d", e, f, p, got, want)
			}
		}
	}
}

func TestNormPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Random denormalized trees.
	var build func(depth int) *Event
	build = func(depth int) *Event {
		if depth == 0 || rng.Intn(3) == 0 {
			return &Event{n: uint64(rng.Intn(5))}
		}
		return &Event{n: uint64(rng.Intn(5)), left: build(depth - 1), right: build(depth - 1)}
	}
	for iter := 0; iter < 300; iter++ {
		e := build(4)
		n := e.norm()
		if err := n.Validate(); err != nil {
			t.Fatalf("norm produced invalid tree: %v (%v)", err, n)
		}
		for _, p := range allPaths(5) {
			if evalAt(e, p) != evalAt(n, p) {
				t.Fatalf("norm changed the function of %v at %v: %v", e, p, n)
			}
		}
	}
}

func TestEventStrictlyInflates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 30; iter++ {
		frontier := randomStampTrace(t, rng, 30)
		i := rng.Intn(len(frontier))
		before := frontier[i]
		after, err := before.Event()
		if err != nil {
			t.Fatalf("event: %v", err)
		}
		if !Leq(before.EventTree(), after.EventTree()) {
			t.Fatalf("event not inflationary: %v -> %v", before, after)
		}
		if Leq(after.EventTree(), before.EventTree()) {
			t.Fatalf("event not strict: %v -> %v", before, after)
		}
	}
}

func TestCompareScenarios(t *testing.T) {
	a, b := Seed().Fork()
	if Compare(a, b) != Equal {
		t.Error("fresh siblings must be equal")
	}
	a1, _ := a.Event()
	if Compare(b, a1) != Before || Compare(a1, b) != After {
		t.Error("dominance after one-sided event")
	}
	b1, _ := b.Event()
	if Compare(a1, b1) != Concurrent {
		t.Error("independent events must be concurrent")
	}
	if !LeqStamp(b, a1) || LeqStamp(a1, b) {
		t.Error("LeqStamp inconsistent")
	}
}

// TestAgreementWithSetOracle runs random traces in lockstep with an explicit
// event-set model (the causal-history ground truth) and checks ITC induces
// the identical frontier ordering — the E7 claim inside this package.
func TestAgreementWithSetOracle(t *testing.T) {
	type elem struct {
		st   Stamp
		hist map[int]bool
	}
	copySet := func(m map[int]bool) map[int]bool {
		out := make(map[int]bool, len(m))
		for k := range m {
			out[k] = true
		}
		return out
	}
	subset := func(a, b map[int]bool) bool {
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nextEvent := 0
		frontier := []elem{{st: Seed(), hist: map[int]bool{}}}
		for k := 0; k < 120; k++ {
			switch op := rng.Intn(3); {
			case op == 0:
				i := rng.Intn(len(frontier))
				st, err := frontier[i].st.Event()
				if err != nil {
					t.Fatalf("event: %v", err)
				}
				h := copySet(frontier[i].hist)
				h[nextEvent] = true
				nextEvent++
				frontier[i] = elem{st: st, hist: h}
			case op == 1 || len(frontier) == 1:
				i := rng.Intn(len(frontier))
				a, b := frontier[i].st.Fork()
				frontier = append(frontier, elem{st: b, hist: copySet(frontier[i].hist)})
				frontier[i] = elem{st: a, hist: frontier[i].hist}
			default:
				i, j := rng.Intn(len(frontier)), rng.Intn(len(frontier))
				if i == j {
					continue
				}
				st, err := Join(frontier[i].st, frontier[j].st)
				if err != nil {
					t.Fatalf("join: %v", err)
				}
				h := copySet(frontier[i].hist)
				for e := range frontier[j].hist {
					h[e] = true
				}
				frontier[i] = elem{st: st, hist: h}
				frontier = append(frontier[:j], frontier[j+1:]...)
			}
			// Pairwise agreement.
			for x := range frontier {
				for y := range frontier {
					if x == y {
						continue
					}
					wantLeq := subset(frontier[x].hist, frontier[y].hist)
					gotLeq := LeqStamp(frontier[x].st, frontier[y].st)
					if wantLeq != gotLeq {
						t.Fatalf("seed %d step %d: ITC leq(%d,%d)=%v, oracle %v\n%v\n%v",
							seed, k, x, y, gotLeq, wantLeq, frontier[x].st, frontier[y].st)
					}
				}
			}
		}
	}
}

func TestSync(t *testing.T) {
	a, b := Seed().Fork()
	a1, _ := a.Event()
	sa, sb, err := Sync(a1, b)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if Compare(sa, sb) != Equal {
		t.Error("after sync both replicas must be equal")
	}
}

func TestNodesAndStrings(t *testing.T) {
	s := Seed()
	if s.Nodes() != 2 {
		t.Errorf("Seed nodes = %d, want 2", s.Nodes())
	}
	if (Stamp{}).Nodes() != 0 {
		t.Error("zero stamp nodes must be 0")
	}
	if (Stamp{}).String() != "(invalid)" {
		t.Error("zero stamp String incorrect")
	}
	if (Stamp{}).Validate() == nil {
		t.Error("zero stamp must not validate")
	}
	if Equal.String() != "equal" || Before.String() != "before" ||
		After.String() != "after" || Concurrent.String() != "concurrent" ||
		Ordering(0).String() != "invalid" {
		t.Error("Ordering.String incorrect")
	}
}

package itc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Bit-level wire format for ITC stamps, in the spirit of the encoding
// sketched in the ITC paper. The stream is framed by a uvarint bit count
// and padded to a byte boundary.
//
//	id:     "00" leaf 0 | "01" leaf 1 | "1" enc(left) enc(right)
//	event:  "1" num(n)                        leaf n
//	        "00" enc(left) enc(right)         branch, base 0
//	        "01" num(n) enc(left) enc(right)  branch, base n
//	num:    chunks of 3 bits, most significant first, each preceded by a
//	        continuation bit (1 = more chunks follow)
//
// The decoder re-validates normalization, so corrupt input cannot produce
// an ill-formed stamp.

// errCorruptITC is returned for syntactically invalid encodings.
var errCorruptITC = errors.New("itc: corrupt encoding")

// maxEncodedBits bounds decoder work on adversarial input.
const maxEncodedBits = 1 << 26

type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) writeBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[len(w.buf)-1] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

func (w *bitWriter) writeNum(v uint64) {
	// Split into 3-bit chunks, most significant first.
	var chunks []byte
	for {
		chunks = append(chunks, byte(v&7))
		v >>= 3
		if v == 0 {
			break
		}
	}
	for i := len(chunks) - 1; i >= 0; i-- {
		w.writeBit(i != 0) // continuation
		w.writeBit(chunks[i]&4 != 0)
		w.writeBit(chunks[i]&2 != 0)
		w.writeBit(chunks[i]&1 != 0)
	}
}

type bitReader struct {
	buf  []byte
	pos  int
	nbit int
}

func (r *bitReader) readBit() (bool, error) {
	if r.pos >= r.nbit || r.pos/8 >= len(r.buf) {
		return false, errCorruptITC
	}
	bit := r.buf[r.pos/8]&(1<<(7-uint(r.pos%8))) != 0
	r.pos++
	return bit, nil
}

func (r *bitReader) readNum() (uint64, error) {
	var v uint64
	for chunk := 0; ; chunk++ {
		if chunk > 21 { // 22 chunks of 3 bits exceed 64 bits: corrupt
			return 0, errCorruptITC
		}
		more, err := r.readBit()
		if err != nil {
			return 0, err
		}
		var c uint64
		for i := 0; i < 3; i++ {
			b, err := r.readBit()
			if err != nil {
				return 0, err
			}
			c = c<<1 | boolBit(b)
		}
		v = v<<3 | c
		if !more {
			return v, nil
		}
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func encodeID(w *bitWriter, i *ID) {
	if i.IsLeaf() {
		w.writeBit(false)
		w.writeBit(i.full)
		return
	}
	w.writeBit(true)
	encodeID(w, i.left)
	encodeID(w, i.right)
}

func decodeID(r *bitReader) (*ID, error) {
	isBranch, err := r.readBit()
	if err != nil {
		return nil, err
	}
	if !isBranch {
		full, err := r.readBit()
		if err != nil {
			return nil, err
		}
		if full {
			return idOne, nil
		}
		return idZero, nil
	}
	l, err := decodeID(r)
	if err != nil {
		return nil, err
	}
	rt, err := decodeID(r)
	if err != nil {
		return nil, err
	}
	// Construct without normalizing: Validate rejects unnormalized input,
	// keeping the format canonical (matching decodeEvent's strictness).
	return &ID{left: l, right: rt}, nil
}

func encodeEvent(w *bitWriter, e *Event) {
	if e.IsLeaf() {
		w.writeBit(true)
		w.writeNum(e.n)
		return
	}
	w.writeBit(false)
	w.writeBit(e.n != 0)
	if e.n != 0 {
		w.writeNum(e.n)
	}
	encodeEvent(w, e.left)
	encodeEvent(w, e.right)
}

func decodeEvent(r *bitReader) (*Event, error) {
	isLeaf, err := r.readBit()
	if err != nil {
		return nil, err
	}
	if isLeaf {
		n, err := r.readNum()
		if err != nil {
			return nil, err
		}
		return &Event{n: n}, nil
	}
	hasBase, err := r.readBit()
	if err != nil {
		return nil, err
	}
	var n uint64
	if hasBase {
		n, err = r.readNum()
		if err != nil {
			return nil, err
		}
	}
	l, err := decodeEvent(r)
	if err != nil {
		return nil, err
	}
	rt, err := decodeEvent(r)
	if err != nil {
		return nil, err
	}
	return &Event{n: n, left: l, right: rt}, nil
}

// MarshalBinary implements encoding.BinaryMarshaler: uvarint bit count
// followed by the padded bit stream of id then event tree.
func (s Stamp) MarshalBinary() ([]byte, error) {
	if s.IsZero() {
		return nil, errors.New("itc: marshal of zero stamp")
	}
	var w bitWriter
	encodeID(&w, s.id)
	encodeEvent(&w, s.ev)
	out := binary.AppendUvarint(nil, uint64(w.nbit))
	return append(out, w.buf...), nil
}

// EncodedSize returns the exact byte length of MarshalBinary's output.
func (s Stamp) EncodedSize() int {
	if s.IsZero() {
		return 0
	}
	var w bitWriter
	encodeID(&w, s.id)
	encodeEvent(&w, s.ev)
	frame := 1
	for v := uint64(w.nbit); v >= 0x80; v >>= 7 {
		frame++
	}
	return frame + (w.nbit+7)/8
}

// DecodeBinary reads one stamp from the front of src, returning the bytes
// consumed. The result is validated against the normalization invariants.
func DecodeBinary(src []byte) (Stamp, int, error) {
	nbit, off := binary.Uvarint(src)
	if off <= 0 {
		return Stamp{}, 0, errCorruptITC
	}
	if nbit > maxEncodedBits {
		return Stamp{}, 0, fmt.Errorf("itc: implausible encoding of %d bits", nbit)
	}
	nbytes := (int(nbit) + 7) / 8
	if off+nbytes > len(src) {
		return Stamp{}, 0, errCorruptITC
	}
	r := &bitReader{buf: src[off : off+nbytes], nbit: int(nbit)}
	id, err := decodeID(r)
	if err != nil {
		return Stamp{}, 0, err
	}
	ev, err := decodeEvent(r)
	if err != nil {
		return Stamp{}, 0, err
	}
	if r.pos != r.nbit {
		return Stamp{}, 0, fmt.Errorf("itc: %d unread bits", r.nbit-r.pos)
	}
	s := Stamp{id: id, ev: ev}
	if err := s.Validate(); err != nil {
		return Stamp{}, 0, err
	}
	return s, off + nbytes, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the input must
// contain exactly one encoded stamp.
func (s *Stamp) UnmarshalBinary(data []byte) error {
	decoded, used, err := DecodeBinary(data)
	if err != nil {
		return err
	}
	if used != len(data) {
		return fmt.Errorf("itc: %d trailing bytes after encoded stamp", len(data)-used)
	}
	*s = decoded
	return nil
}

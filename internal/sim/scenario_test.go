package sim

import (
	"encoding/json"
	"testing"
)

func runScenario(t *testing.T, s Scenario) *ScenarioMetrics {
	t.Helper()
	m, err := s.Run()
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	if !m.Converged {
		t.Fatalf("%s: did not converge within %d rounds: %+v", s.Name, m.RoundBudget, m)
	}
	if m.Writes == 0 || m.Exchanges == 0 {
		t.Fatalf("%s: scenario did no work: %+v", s.Name, m)
	}
	if m.StampBytesMax == 0 || m.KeysTotal == 0 {
		t.Fatalf("%s: stamp measurement empty: %+v", s.Name, m)
	}
	return m
}

func TestPartitionHealScenario(t *testing.T) {
	m := runScenario(t, PartitionHeal(1))
	if m.WriteErrors == 0 {
		t.Fatalf("no quorum shortfalls during the partition: %+v", m)
	}
	if m.HintsDrained == 0 {
		t.Fatalf("cross-partition writes queued no hints: %+v", m)
	}
	if m.Net.Resets == 0 {
		t.Fatalf("the fabric partition cut no pooled sessions: %+v", m.Net)
	}
}

func TestLossyQuorumScenario(t *testing.T) {
	m := runScenario(t, LossyQuorum(2))
	if m.Net.Drops == 0 || m.Net.Dups == 0 || m.Net.Reorders == 0 {
		t.Fatalf("fault injection did not fire: %+v", m.Net)
	}
}

func TestCrashRestartScenario(t *testing.T) {
	m := runScenario(t, CrashRestart(3, t.TempDir()))
	if m.HintsDrained == 0 {
		t.Fatalf("no hinted handoff happened: %+v", m)
	}
	if m.HintsPeak == 0 {
		t.Fatalf("hint queues never filled: %+v", m)
	}
}

func TestChurnScenario(t *testing.T) {
	m := runScenario(t, Churn(4))
	if m.Nodes != 10 {
		t.Fatalf("churn ended with %d nodes, want 10", m.Nodes)
	}
}

// TestThousandNodeScenario is the headline acceptance run: a seeded
// 1000-node ring through partition, crashes (one WAL-backed), churn and
// Zipf writes must converge within the round budget — twice, with
// byte-identical metrics, because logical time leaves nothing to luck.
func TestThousandNodeScenario(t *testing.T) {
	s := ThousandNode(5, t.TempDir())
	m := runScenario(t, s)
	if m.Nodes != 1001 {
		t.Fatalf("ended with %d nodes, want 1001", m.Nodes)
	}
	if m.WriteErrors == 0 {
		t.Fatalf("partition+kill produced no quorum shortfalls: %+v", m)
	}
	// Rerun in a fresh directory — reusing the first run's WALs would be a
	// different (resumed) experiment, not a replay.
	m2, err := ThousandNode(5, t.TempDir()).Run()
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	ja, _ := json.Marshal(m)
	jb, _ := json.Marshal(m2)
	if string(ja) != string(jb) {
		t.Fatalf("two 1k-node runs with one seed diverged:\n%s\n%s", ja, jb)
	}
}

// TestScenarioDeterminism is the property the CI gate stands on: the same
// scenario with the same seed yields byte-identical metrics — every
// counter, down to the fabric's fault ledger.
func TestScenarioDeterminism(t *testing.T) {
	scenarios := []Scenario{
		PartitionHeal(42),
		LossyQuorum(42),
		Churn(42),
	}
	for _, s := range scenarios {
		a, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		b, err := s.Run()
		if err != nil {
			t.Fatalf("%s rerun: %v", s.Name, err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Fatalf("%s: two runs with one seed diverged:\n%s\n%s", s.Name, ja, jb)
		}
	}
}

func TestDiskCorruptScenario(t *testing.T) {
	m := runScenario(t, DiskCorrupt(6, t.TempDir()))
	if m.Repaired == 0 {
		t.Fatalf("the corrupted stripe was never repaired from peers: %+v", m)
	}
	if m.QuarantinedPeak == 0 {
		t.Fatalf("the at-rest corruption never quarantined a stripe: %+v", m)
	}
	if m.QuarantinedEnd != 0 || m.PersistErrsEnd != 0 {
		t.Fatalf("run ended damaged: %d quarantined, %d degraded", m.QuarantinedEnd, m.PersistErrsEnd)
	}
	if m.Scrubbed == 0 {
		t.Fatalf("the scrub phase never ran on a durable cluster: %+v", m)
	}
}

func TestOwnerSetFailureScenario(t *testing.T) {
	m := runScenario(t, OwnerSetFailure(8, t.TempDir()))
	if m.WriteErrors == 0 {
		t.Fatalf("killing a stripe's whole owner set caused no quorum failures: %+v", m)
	}
	if m.QuarantinedEnd != 0 || m.PersistErrsEnd != 0 {
		t.Fatalf("run ended damaged: %d quarantined, %d degraded", m.QuarantinedEnd, m.PersistErrsEnd)
	}
}

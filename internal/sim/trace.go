package sim

import (
	"fmt"
	"math/rand"
)

// OpKind enumerates the three operations of the fork-join model.
type OpKind int

// Operation kinds.
const (
	OpUpdate OpKind = iota + 1
	OpFork
	OpJoin
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case OpUpdate:
		return "update"
	case OpFork:
		return "fork"
	case OpJoin:
		return "join"
	default:
		return "invalid"
	}
}

// Op is one operation of a trace. A and B are slot indices interpreted
// against the frontier as it exists when the op executes (see Tracker for
// the slot discipline). B is meaningful only for OpJoin.
type Op struct {
	Kind OpKind
	A, B int
}

// String renders the op, e.g. "update(3)" or "join(1,4)".
func (o Op) String() string {
	if o.Kind == OpJoin {
		return fmt.Sprintf("%v(%d,%d)", o.Kind, o.A, o.B)
	}
	return fmt.Sprintf("%v(%d)", o.Kind, o.A)
}

// Trace is a deterministic sequence of operations, replayable on any
// Tracker.
type Trace []Op

// Validate simulates the width evolution of the trace and reports the first
// structurally invalid op (bad slot, self-join, join at width 1).
func (tr Trace) Validate() error {
	width := 1
	for i, op := range tr {
		switch op.Kind {
		case OpUpdate:
			if op.A < 0 || op.A >= width {
				return fmt.Errorf("sim: op %d %v: slot out of range at width %d", i, op, width)
			}
		case OpFork:
			if op.A < 0 || op.A >= width {
				return fmt.Errorf("sim: op %d %v: slot out of range at width %d", i, op, width)
			}
			width++
		case OpJoin:
			if op.A < 0 || op.A >= width || op.B < 0 || op.B >= width {
				return fmt.Errorf("sim: op %d %v: slot out of range at width %d", i, op, width)
			}
			if op.A == op.B {
				return fmt.Errorf("sim: op %d %v: self-join", i, op)
			}
			width--
		default:
			return fmt.Errorf("sim: op %d: invalid kind %d", i, op.Kind)
		}
	}
	return nil
}

// FinalWidth returns the frontier width after replaying the trace (assuming
// it validates).
func (tr Trace) FinalWidth() int {
	width := 1
	for _, op := range tr {
		switch op.Kind {
		case OpFork:
			width++
		case OpJoin:
			width--
		}
	}
	return width
}

// Counts returns the number of updates, forks and joins in the trace.
func (tr Trace) Counts() (updates, forks, joins int) {
	for _, op := range tr {
		switch op.Kind {
		case OpUpdate:
			updates++
		case OpFork:
			forks++
		case OpJoin:
			joins++
		}
	}
	return updates, forks, joins
}

// Weights biases the random workload generators. The three fields need not
// sum to anything particular; only ratios matter.
type Weights struct {
	Update, Fork, Join int
}

// Preset workloads for the experiments.
var (
	// Balanced exercises all operations evenly (E4 default).
	Balanced = Weights{Update: 2, Fork: 1, Join: 1}
	// ForkHeavy grows wide frontiers (E5 worst case for id depth).
	ForkHeavy = Weights{Update: 2, Fork: 3, Join: 1}
	// SyncHeavy churns forks and joins in near-equal measure with frequent
	// updates — the mobile synchronization pattern the paper targets.
	SyncHeavy = Weights{Update: 4, Fork: 2, Join: 2}
	// UpdateHeavy rarely changes the frontier shape.
	UpdateHeavy = Weights{Update: 8, Fork: 1, Join: 1}
)

// Random generates a structurally valid trace of n operations using the
// given weights, keeping the frontier width within [1, maxWidth].
// Determinism: the same seed yields the same trace.
func Random(seed int64, n int, w Weights, maxWidth int) Trace {
	if maxWidth < 2 {
		maxWidth = 2
	}
	rng := rand.New(rand.NewSource(seed))
	total := w.Update + w.Fork + w.Join
	if total <= 0 {
		total = 1
		w = Weights{Update: 1}
	}
	tr := make(Trace, 0, n)
	width := 1
	for len(tr) < n {
		roll := rng.Intn(total)
		switch {
		case roll < w.Update:
			tr = append(tr, Op{Kind: OpUpdate, A: rng.Intn(width)})
		case roll < w.Update+w.Fork:
			if width >= maxWidth {
				continue
			}
			tr = append(tr, Op{Kind: OpFork, A: rng.Intn(width)})
			width++
		default:
			if width < 2 {
				continue
			}
			a := rng.Intn(width)
			b := rng.Intn(width - 1)
			if b >= a {
				b++
			}
			tr = append(tr, Op{Kind: OpJoin, A: a, B: b})
			width--
		}
	}
	return tr
}

// SyncRound appends to tr the join+fork pair that synchronizes slots a and b
// (the paper represents synchronization as joining two replicas and forking
// the result). Removing slot b shifts higher slots down, so the follow-up
// fork targets a-1 when b < a. After the round the frontier has the same
// width; the synced replicas occupy the adjusted slot and the last slot.
func SyncRound(tr Trace, a, b int) Trace {
	tr = append(tr, Op{Kind: OpJoin, A: a, B: b})
	forkAt := a
	if b < a {
		forkAt = a - 1
	}
	return append(tr, Op{Kind: OpFork, A: forkAt})
}

// FixedN generates the Figure 3 pattern: a system operating like a classic
// fixed set of n replicas, encoded under fork-and-join dynamics. The trace
// first forks the seed into n replicas, then performs rounds of one update
// at a random replica followed by a synchronization (join+fork) of a random
// pair. Deterministic in seed.
func FixedN(seed int64, n, rounds int) Trace {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	// Breadth-first fork into n replicas: forking slot k of the current
	// width-k+1 frontier... forking the same earliest-created slots keeps
	// ids shallow, mirroring Figure 3's balanced encoding.
	for width := 1; width < n; width++ {
		tr = append(tr, Op{Kind: OpFork, A: rng.Intn(width)})
	}
	for r := 0; r < rounds; r++ {
		tr = append(tr, Op{Kind: OpUpdate, A: rng.Intn(n)})
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		// Sync: join(a,b) shrinks the frontier to n-1, the fork restores
		// width n.
		tr = SyncRound(tr, a, b)
	}
	return tr
}

// StarSync generates the hub-and-spoke pattern: replica 0 is a server that
// spokes synchronize with in round-robin; spokes update between syncs. This
// is the "well connected" baseline shape.
func StarSync(seed int64, spokes, rounds int) Trace {
	if spokes < 1 {
		spokes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	for width := 1; width < spokes+1; width++ {
		tr = append(tr, Op{Kind: OpFork, A: 0})
	}
	for r := 0; r < rounds; r++ {
		spoke := 1 + rng.Intn(spokes)
		tr = append(tr, Op{Kind: OpUpdate, A: spoke})
		// After the sync the re-forked spoke sits at the last slot; the
		// pattern only needs "some spoke", so slots stay anonymous.
		tr = SyncRound(tr, 0, spoke)
	}
	return tr
}

// RingGossip generates the partitioned-cluster scenario: n replicas where
// data movement is owner-scoped — every synchronization happens inside a
// window of r adjacent slots (one stripe's owner group on a consistent-hash
// ring, where the R owners are ring successors and hence neighbours), never
// across the whole replica set. Each round picks a window, updates a random
// member (a quorum write landing at a coordinator) and syncs a random pair
// of members (one stripe-scoped anti-entropy exchange). Slot tracking is
// approximate, as in PartitionedEpochs: SyncRound re-forks to the last
// slot, so group membership drifts — the scenario only needs locality, a
// bounded sync neighbourhood instead of FixedN's all-pairs mixing.
// Deterministic in seed; width stays n throughout.
func RingGossip(seed int64, n, r, rounds int) Trace {
	if n < 2 {
		n = 2
	}
	if r < 2 {
		r = 2
	}
	if r > n {
		r = n
	}
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	for width := 1; width < n; width++ {
		tr = append(tr, Op{Kind: OpFork, A: rng.Intn(width)})
	}
	for round := 0; round < rounds; round++ {
		// A stripe's owner window, wrapping like ring successors do.
		start := rng.Intn(n)
		slot := func() int { return (start + rng.Intn(r)) % n }
		tr = append(tr, Op{Kind: OpUpdate, A: slot()})
		a := slot()
		b := a
		for b == a {
			b = slot()
		}
		tr = SyncRound(tr, a, b)
	}
	return tr
}

// PartitionedEpochs generates the paper's motivating mobile scenario: the
// replica set splits into isolated groups; within an epoch only members of
// the same group exchange data (sync) or spawn new replicas (fork); at epoch
// boundaries groups re-partition. Width stays within [2, maxWidth].
func PartitionedEpochs(seed int64, epochs, opsPerEpoch, maxWidth int) Trace {
	if maxWidth < 4 {
		maxWidth = 4
	}
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	width := 1
	// Start with two groups of one.
	tr = append(tr, Op{Kind: OpFork, A: 0})
	width++
	for e := 0; e < epochs; e++ {
		// Partition the current slots into two groups by parity of a random
		// cut; group membership is re-drawn each epoch.
		cut := 1 + rng.Intn(width-1)
		for k := 0; k < opsPerEpoch; k++ {
			// Choose a group; operate entirely within it.
			var lo, hi int
			if rng.Intn(2) == 0 {
				lo, hi = 0, cut
			} else {
				lo, hi = cut, width
			}
			size := hi - lo
			switch roll := rng.Intn(4); {
			case roll == 0 && width < maxWidth:
				// The new slot appends at the end, implicitly joining the
				// right group; group tracking is approximate, which is fine —
				// the scenario only needs locality of syncs within an epoch.
				tr = append(tr, Op{Kind: OpFork, A: lo + rng.Intn(size)})
				width++
			case roll == 1 && size >= 2:
				a := lo + rng.Intn(size)
				b := lo + rng.Intn(size-1)
				if b >= a {
					b++
				}
				tr = SyncRound(tr, a, b)
				// Width unchanged; the re-forked replica lands at the end
				// (right group).
			default:
				tr = append(tr, Op{Kind: OpUpdate, A: lo + rng.Intn(size)})
			}
		}
	}
	return tr
}

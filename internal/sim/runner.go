package sim

import (
	"fmt"
	"math/rand"
)

// CheckLevel selects how much cross-checking the runner performs per step.
type CheckLevel int

const (
	// CheckNone replays the trace without verification (benchmarks).
	CheckNone CheckLevel = iota + 1
	// CheckPairs verifies all pairwise comparisons against the oracle
	// (Corollary 5.2) and the subjects' internal invariants.
	CheckPairs
	// CheckSubsets additionally verifies random (x, S) subset queries
	// against the oracle (the stronger Proposition 5.1).
	CheckSubsets
)

// Config parameterizes a lockstep run.
type Config struct {
	// Check selects the verification level (default CheckPairs).
	Check CheckLevel
	// CheckEvery verifies every k-th step (default 1: every step).
	CheckEvery int
	// SubsetQueries is the number of random (x, S) queries per checked step
	// at CheckSubsets level (default 8).
	SubsetQueries int
	// Seed drives the random subset choices (not the trace).
	Seed int64
	// CollectSizes records per-step size statistics for every tracker that
	// implements SizeReporter.
	CollectSizes bool
}

func (c Config) withDefaults() Config {
	if c.Check == 0 {
		c.Check = CheckPairs
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 1
	}
	if c.SubsetQueries <= 0 {
		c.SubsetQueries = 8
	}
	return c
}

// SizeSample is one per-step size observation of a tracker's frontier.
type SizeSample struct {
	Step       int
	Width      int
	TotalBytes int
	MaxBytes   int
}

// MeanBytes returns the mean per-element size of the sample.
func (s SizeSample) MeanBytes() float64 {
	if s.Width == 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.Width)
}

// Report summarizes a lockstep run.
type Report struct {
	// Ops is the number of operations replayed.
	Ops int
	// Comparisons counts pairwise agreement checks performed.
	Comparisons int
	// SubsetChecks counts (x, S) agreement checks performed.
	SubsetChecks int
	// Sizes maps tracker name to its per-step size series (when
	// CollectSizes is set).
	Sizes map[string][]SizeSample
	// FinalWidth is the frontier width at the end of the run.
	FinalWidth int
}

// DisagreementError reports a subject mechanism disagreeing with the oracle;
// it is the failure the whole simulator exists to detect.
type DisagreementError struct {
	Step    int
	Op      Op
	Subject string
	Detail  string
}

// Error implements error.
func (e *DisagreementError) Error() string {
	return fmt.Sprintf("sim: step %d (%v): %s disagrees with oracle: %s",
		e.Step, e.Op, e.Subject, e.Detail)
}

// Runner replays traces on an oracle and a set of subject trackers in
// lockstep, verifying agreement.
type Runner struct {
	oracle   Tracker
	subjects []Tracker
	cfg      Config
	rng      *rand.Rand
}

// NewRunner builds a runner. The oracle provides ground truth (normally
// NewCausalTracker()); subjects are verified against it.
func NewRunner(oracle Tracker, subjects []Tracker, cfg Config) *Runner {
	cfg = cfg.withDefaults()
	return &Runner{
		oracle:   oracle,
		subjects: subjects,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Run replays the trace, verifying per Config and collecting statistics.
// It stops at the first error or disagreement.
func (r *Runner) Run(trace Trace) (*Report, error) {
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	report := &Report{Sizes: make(map[string][]SizeSample)}
	all := append([]Tracker{r.oracle}, r.subjects...)
	for step, op := range trace {
		for _, t := range all {
			if err := applyOp(t, op); err != nil {
				return report, fmt.Errorf("sim: step %d (%v) on %s: %w", step, op, t.Name(), err)
			}
		}
		report.Ops++
		if r.cfg.Check != CheckNone && step%r.cfg.CheckEvery == 0 {
			if err := r.verify(step, op, report); err != nil {
				return report, err
			}
		}
		if r.cfg.CollectSizes {
			r.collectSizes(step, report)
		}
	}
	report.FinalWidth = r.oracle.Width()
	return report, nil
}

func applyOp(t Tracker, op Op) error {
	switch op.Kind {
	case OpUpdate:
		return t.Update(op.A)
	case OpFork:
		return t.Fork(op.A)
	case OpJoin:
		return t.Join(op.A, op.B)
	default:
		return fmt.Errorf("invalid op kind %d", op.Kind)
	}
}

func (r *Runner) verify(step int, op Op, report *Report) error {
	width := r.oracle.Width()
	for _, subj := range r.subjects {
		if subj.Width() != width {
			return &DisagreementError{Step: step, Op: op, Subject: subj.Name(),
				Detail: fmt.Sprintf("width %d, oracle %d", subj.Width(), width)}
		}
		if ic, ok := subj.(InvariantChecker); ok {
			if err := ic.CheckInvariants(); err != nil {
				return &DisagreementError{Step: step, Op: op, Subject: subj.Name(),
					Detail: err.Error()}
			}
		}
		// Pairwise agreement (Corollary 5.2).
		for a := 0; a < width; a++ {
			for b := a + 1; b < width; b++ {
				want, err := r.oracle.Compare(a, b)
				if err != nil {
					return fmt.Errorf("sim: oracle compare: %w", err)
				}
				got, err := subj.Compare(a, b)
				if err != nil {
					return fmt.Errorf("sim: %s compare: %w", subj.Name(), err)
				}
				report.Comparisons++
				if got != want {
					return &DisagreementError{Step: step, Op: op, Subject: subj.Name(),
						Detail: fmt.Sprintf("compare(%d,%d) = %v, oracle %v", a, b, got, want)}
				}
			}
		}
		// Subset agreement (Proposition 5.1).
		if r.cfg.Check == CheckSubsets {
			oracleSC, ok1 := r.oracle.(SubsetComparer)
			subjSC, ok2 := subj.(SubsetComparer)
			if !ok1 || !ok2 {
				continue
			}
			for q := 0; q < r.cfg.SubsetQueries; q++ {
				x := r.rng.Intn(width)
				set := randomSubset(r.rng, width)
				want, err := oracleSC.LeqUnion(x, set)
				if err != nil {
					return fmt.Errorf("sim: oracle subset query: %w", err)
				}
				got, err := subjSC.LeqUnion(x, set)
				if err != nil {
					return fmt.Errorf("sim: %s subset query: %w", subj.Name(), err)
				}
				report.SubsetChecks++
				if got != want {
					return &DisagreementError{Step: step, Op: op, Subject: subj.Name(),
						Detail: fmt.Sprintf("leqUnion(%d,%v) = %v, oracle %v", x, set, got, want)}
				}
			}
		}
	}
	return nil
}

// randomSubset draws a non-empty subset of [0,width) as required by
// Proposition 5.1 (∅ ⊂ S ⊆ dom).
func randomSubset(rng *rand.Rand, width int) []int {
	var set []int
	for i := 0; i < width; i++ {
		if rng.Intn(2) == 0 {
			set = append(set, i)
		}
	}
	if len(set) == 0 {
		set = append(set, rng.Intn(width))
	}
	return set
}

func (r *Runner) collectSizes(step int, report *Report) {
	all := append([]Tracker{r.oracle}, r.subjects...)
	for _, t := range all {
		sr, ok := t.(SizeReporter)
		if !ok {
			continue
		}
		sample := SizeSample{Step: step, Width: t.Width()}
		for a := 0; a < t.Width(); a++ {
			sz := sr.SizeOf(a)
			sample.TotalBytes += sz
			if sz > sample.MaxBytes {
				sample.MaxBytes = sz
			}
		}
		report.Sizes[t.Name()] = append(report.Sizes[t.Name()], sample)
	}
}

// Replay runs a trace on a single tracker without verification; it returns
// the final width. Useful for benchmarks and for preparing a tracker state.
func Replay(t Tracker, trace Trace) (int, error) {
	if err := trace.Validate(); err != nil {
		return 0, err
	}
	for step, op := range trace {
		if err := applyOp(t, op); err != nil {
			return 0, fmt.Errorf("sim: step %d (%v) on %s: %w", step, op, t.Name(), err)
		}
	}
	return t.Width(), nil
}

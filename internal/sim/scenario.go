package sim

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"

	"versionstamp/internal/antientropy"
	"versionstamp/internal/chaosnet"
	"versionstamp/internal/encoding"
	"versionstamp/internal/kvstore"
	"versionstamp/internal/storage/faultfs"
)

// deleteWins resolves concurrent copies in favor of deletion, making a
// delete that raced a write stick. The merged value for two concurrent live
// copies is their deterministic concatenation.
func deleteWins(_ string, a, b kvstore.Versioned) ([]byte, bool, error) {
	if a.Deleted || b.Deleted {
		return nil, true, nil
	}
	if string(a.Value) < string(b.Value) {
		return append(append([]byte(nil), a.Value...), b.Value...), false, nil
	}
	return append(append([]byte(nil), b.Value...), a.Value...), false, nil
}

// This file is the cluster half of the simulator: where runner.go replays
// fork/join traces on individual stamp trackers, a Scenario replays a
// scripted fault schedule on a full ring cluster wired over a chaosnet
// fabric — partitions, crashes, churn, lossy links, skewed write traffic —
// and measures how the anti-entropy protocol converges under it.
//
// Everything is deterministic: the fabric's faults are seeded hash
// decisions, the cluster runs with one gossip worker so exchanges follow
// schedule order, the write workload is a seeded Zipf stream, and time is
// logical (rounds and fabric ticks, no wall clock). The same Scenario with
// the same Seed therefore produces byte-identical ScenarioMetrics, which
// cmd/benchconverge turns into a CI gate.

// ActionKind enumerates the fault-schedule verbs.
type ActionKind int

// Scenario script verbs.
const (
	// ActWrite issues Count Zipf-distributed quorum writes. Writes reaching
	// unreachable owners hint or lose acks — errors are counted, not fatal.
	ActWrite ActionKind = iota + 1
	// ActKill crashes node Node (durable nodes drop memory; WAL survives).
	ActKill
	// ActRevive restarts node Node (durable nodes replay their WAL).
	ActRevive
	// ActPartition splits cluster and fabric into Groups (one group index
	// per node, length = current cluster size).
	ActPartition
	// ActHeal removes all partitions, in the cluster and the fabric.
	ActHeal
	// ActAddNode joins a fresh node, triggering membership growth and a
	// deterministic ring rebuild everywhere.
	ActAddNode
	// ActFaults replaces the fabric's default link faults with Faults.
	ActFaults
	// ActCorrupt flips one byte of a WAL frame in node Node's stripe Stripe
	// at rest (Stripe < 0 targets the node's busiest stripe). The node must
	// be durable; script it between a kill and a revive — the revival then
	// quarantines exactly that stripe and ring repair rebuilds it.
	ActCorrupt
	// ActDelete issues Count Zipf-distributed quorum deletes over the same
	// keyspace as ActWrite. Tombstones propagate by anti-entropy and are
	// eventually discarded by the tombstone GC once proven replicated.
	ActDelete
)

// Action is one scripted event, applied before the round it names runs.
type Action struct {
	Round  int
	Kind   ActionKind
	Node   int             // ActKill / ActRevive / ActCorrupt target index
	Count  int             // ActWrite: number of writes
	Stripe int             // ActCorrupt: stripe to damage (< 0 = busiest)
	Groups []int           // ActPartition: group per node index
	Faults chaosnet.Faults // ActFaults: new default link faults
}

// Scenario is one deterministic chaos experiment over a ring cluster.
type Scenario struct {
	Name string
	// Seed drives the fabric's fault schedule, the cluster's peer
	// selection, and the Zipf write stream.
	Seed int64

	// Cluster shape (see antientropy.RingConfig).
	Nodes        int
	Replication  int
	Stripes      int
	Fanout       int // gossip fan-out per round (default 1)
	HintCap      int
	DataDir      string // non-empty enables WAL-backed nodes
	DurableCount int    // limits durability to the first N nodes
	SuspectAfter int
	DeadAfter    int
	Backoff      antientropy.BackoffPolicy

	// Faults are the fabric's initial default link faults.
	Faults chaosnet.Faults

	// Write workload: keys are drawn Zipf(s=ZipfS) from a KeySpace-sized
	// keyspace, so a few hot keys are written many times (stamp reuse) and
	// a long tail once (stamp churn).
	KeySpace int     // default 256
	ZipfS    float64 // default 1.2 (must be > 1)

	// DeleteWins resolves conflicting copies in favor of deletion instead
	// of the default keep-both merge. It is what makes "a deleted key stays
	// deleted until rewritten" a sound invariant, so the resurrection gate
	// (ScenarioMetrics.Resurrections) only runs for DeleteWins scenarios.
	DeleteWins bool

	// Script is the fault schedule. Rounds past the last scripted action
	// are quiescence: the run ends once the cluster reports convergence
	// (and empty hint queues) for QuiesceRounds consecutive rounds.
	Script        []Action
	RoundBudget   int // hard round cap (default 64)
	QuiesceRounds int // consecutive converged rounds required (default 2)
}

func (s Scenario) withDefaults() Scenario {
	if s.Fanout <= 0 {
		s.Fanout = 1
	}
	if s.KeySpace <= 0 {
		s.KeySpace = 256
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.2
	}
	if s.RoundBudget <= 0 {
		s.RoundBudget = 64
	}
	if s.QuiesceRounds <= 0 {
		s.QuiesceRounds = 2
	}
	return s
}

// ScenarioMetrics is a run's complete, deterministic result — every field
// is a pure function of (Scenario, Seed), which is what the determinism
// gate in cmd/benchconverge checks by running each scenario twice.
type ScenarioMetrics struct {
	Name        string `json:"name"`
	Seed        int64  `json:"seed"`
	Nodes       int    `json:"nodes"` // final cluster size
	RoundBudget int    `json:"round_budget"`

	// Converged reports that the cluster reached (and held) convergence
	// with drained hint queues inside the budget; Rounds is how many
	// rounds that took (or the budget, when it never did).
	Converged bool `json:"converged"`
	Rounds    int  `json:"rounds"`

	Writes      int `json:"writes"`
	WriteErrors int `json:"write_errors"` // quorum shortfalls during faults

	// Tombstone ledger: deletes issued, tombstones the GC discarded after
	// proving propagation, tombstones still live at the end (a healed,
	// quiesced cluster must drain to zero), and deleted-last keys that
	// read as present after convergence (must be zero — a nonzero count
	// means the GC discarded a tombstone its owners had not all seen).
	Deletes             int `json:"deletes,omitempty"`
	DeleteErrors        int `json:"delete_errors,omitempty"`
	TombstonesDiscarded int `json:"tombstones_discarded,omitempty"`
	TombstonesEnd       int `json:"tombstones_end"`
	Resurrections       int `json:"resurrections"`

	Exchanges      int   `json:"exchanges"`
	ExchangeErrors int   `json:"exchange_errors"` // failed or skipped exchanges
	BackoffSkips   int   `json:"backoff_skips"`
	KeysMoved      int   `json:"keys_moved"`
	WireBytes      int64 `json:"wire_bytes"`

	HintsDrained int   `json:"hints_drained"`
	HintsDropped int64 `json:"hints_dropped"` // evicted by the per-target cap
	HintsPeak    int   `json:"hints_peak"`    // max queued cluster-wide

	// Self-healing ledger: scrub verifications run, quarantined stripes
	// rebuilt from peers, the worst per-round quarantine level, and what
	// remained damaged (or degraded) when the run ended. A healthy gate
	// demands the End fields be zero — convergence with standing damage is
	// not convergence.
	Scrubbed        int `json:"scrubbed"`
	Repaired        int `json:"repaired"`
	QuarantinedPeak int `json:"quarantined_peak"`
	QuarantinedEnd  int `json:"quarantined_end"`
	PersistErrsEnd  int `json:"persist_errs_end"`

	// Stamp growth over every up replica at the end of the run, measured
	// on the compact wire encoding.
	KeysTotal      int     `json:"keys_total"`
	StampBytesMax  int     `json:"stamp_bytes_max"`
	StampBytesMean float64 `json:"stamp_bytes_mean"`

	// Net is the fabric's fault ledger: what the chaos actually did.
	Net chaosnet.Stats `json:"net"`
}

// Run executes the scenario and returns its metrics. Fault-induced write
// and exchange failures are counted, not returned; an error means the
// harness itself broke (bad script, cluster construction failure).
func (s Scenario) Run() (*ScenarioMetrics, error) {
	s = s.withDefaults()
	fab := chaosnet.New(s.Seed)
	defer fab.Close()
	var zero chaosnet.Faults
	if s.Faults != zero {
		fab.SetDefaultFaults(s.Faults)
	}

	var resolver kvstore.Resolver
	if s.DeleteWins {
		resolver = deleteWins
	}
	c, err := antientropy.NewRingCluster(antientropy.RingConfig{
		Resolver:      resolver,
		Nodes:         s.Nodes,
		Replication:   s.Replication,
		Stripes:       s.Stripes,
		Seed:          s.Seed,
		HintCap:       s.HintCap,
		DataDir:       s.DataDir,
		DurableCount:  s.DurableCount,
		SuspectAfter:  s.SuspectAfter,
		DeadAfter:     s.DeadAfter,
		Backoff:       s.Backoff,
		Transport:     func(id string) antientropy.Transport { return fab.Node(id) },
		PoolIdle:      -1, // logical time: pooled sessions never expire
		GossipWorkers: 1,  // serial exchanges — schedule order is run order
	})
	if err != nil {
		return nil, fmt.Errorf("sim: scenario %q: %w", s.Name, err)
	}
	defer c.Close()
	if err := c.SetFanout(s.Fanout); err != nil {
		return nil, err
	}

	// The write stream: seeded Zipf over a fixed keyspace. Derived from
	// Seed but decoupled from the cluster's own rng.
	wrng := rand.New(rand.NewSource(s.Seed ^ 0x5eed5eed))
	zipf := rand.NewZipf(wrng, s.ZipfS, 1, uint64(s.KeySpace-1))
	writeSeq := 0

	byRound := make(map[int][]Action)
	lastScripted := -1
	for _, a := range s.Script {
		byRound[a.Round] = append(byRound[a.Round], a)
		if a.Round > lastScripted {
			lastScripted = a.Round
		}
	}

	m := &ScenarioMetrics{Name: s.Name, Seed: s.Seed, RoundBudget: s.RoundBudget}
	deleted := make(map[string]bool) // keys whose last applied op was a delete
	quiet := 0
	for round := 0; round < s.RoundBudget; round++ {
		for _, a := range byRound[round] {
			if err := s.apply(a, c, fab, zipf, &writeSeq, deleted, m); err != nil {
				return nil, fmt.Errorf("sim: scenario %q round %d: %w", s.Name, round, err)
			}
		}
		// Fault-induced round errors (resets on links, unreachable peers)
		// are the experiment, not a failure: they land in stats.Errors and
		// the error return is ignored.
		stats, _ := c.GossipRoundStats(s.Fanout)
		m.Rounds = round + 1
		m.Exchanges += stats.Exchanges
		m.KeysMoved += stats.Moved
		m.HintsDrained += stats.HintsDrained
		m.TombstonesDiscarded += stats.TombstonesDiscarded
		m.Scrubbed += stats.StripesScrubbed
		m.Repaired += stats.StripesRepaired
		// Peak damage observed this round: what is still quarantined plus
		// what was repaired within the round (a same-round repair would
		// otherwise hide the damage entirely).
		if q := stats.StripesQuarantined + stats.StripesRepaired; q > m.QuarantinedPeak {
			m.QuarantinedPeak = q
		}
		for _, re := range stats.Errors {
			m.ExchangeErrors++
			if re.Backoff {
				m.BackoffSkips++
			}
		}
		if p := c.HintsPending(); p > m.HintsPeak {
			m.HintsPeak = p
		}
		// Quiescence also demands a drained tombstone ledger: converging
		// while deletes still await their GC evidence is not done yet.
		// Vacuously true for scenarios that never delete.
		if round > lastScripted && c.Converged() && c.HintsPending() == 0 &&
			stats.TombstonesLive == 0 {
			quiet++
			if quiet >= s.QuiesceRounds {
				m.Converged = true
				break
			}
		} else {
			quiet = 0
		}
	}

	m.Nodes = c.Size()
	m.HintsDropped = c.HintsDropped()
	for i := 0; i < c.Size(); i++ {
		st, err := c.Status(i)
		if err != nil || st.Down {
			continue
		}
		m.QuarantinedEnd += len(st.Quarantined)
		m.TombstonesEnd += st.TombstonesLive
		if st.PersistErr != "" {
			m.PersistErrsEnd++
		}
	}
	// Resurrection sweep: with delete-wins resolution, a converged healthy
	// cluster must read every deleted-last key as absent — if one comes
	// back, a tombstone was discarded before every owner had seen it.
	if s.DeleteWins && m.Converged {
		keys := make([]string, 0, len(deleted))
		for key := range deleted {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if _, ok, err := c.Read(key); err == nil && ok {
				m.Resurrections++
			}
		}
	}
	for _, b := range c.WireBytes() {
		m.WireBytes += b
	}
	s.measureStamps(c, m)
	m.Net = fab.Stats()
	return m, nil
}

// apply executes one scripted action. An operation counts as applied for
// the resurrection model once it reached any coordinator (acks >= 1): a
// quorum-failed op is still installed where it landed and propagates from
// there.
func (s Scenario) apply(a Action, c *antientropy.Cluster, fab *chaosnet.Fabric,
	zipf *rand.Zipf, writeSeq *int, deleted map[string]bool, m *ScenarioMetrics) error {
	switch a.Kind {
	case ActWrite:
		for n := 0; n < a.Count; n++ {
			key := fmt.Sprintf("key-%05d", zipf.Uint64())
			val := fmt.Sprintf("v-%d", *writeSeq)
			*writeSeq++
			m.Writes++
			acks, err := c.Write(key, []byte(val))
			if err != nil {
				m.WriteErrors++
			}
			if acks >= 1 {
				delete(deleted, key)
			}
		}
		return nil
	case ActDelete:
		for n := 0; n < a.Count; n++ {
			key := fmt.Sprintf("key-%05d", zipf.Uint64())
			m.Deletes++
			acks, err := c.Delete(key)
			if err != nil {
				m.DeleteErrors++
			}
			if acks >= 1 {
				deleted[key] = true
			}
		}
		return nil
	case ActKill:
		return c.Kill(a.Node)
	case ActRevive:
		return c.Revive(a.Node)
	case ActPartition:
		if len(a.Groups) != c.Size() {
			return fmt.Errorf("partition groups %d != cluster size %d", len(a.Groups), c.Size())
		}
		groups := make(map[string]int, len(a.Groups))
		for i, g := range a.Groups {
			groups[fmt.Sprintf("node-%d", i)] = g
		}
		fab.Partition(groups)
		return c.Partition(a.Groups)
	case ActHeal:
		fab.Heal()
		c.Heal()
		return nil
	case ActAddNode:
		_, err := c.AddNode()
		return err
	case ActFaults:
		fab.SetDefaultFaults(a.Faults)
		return nil
	case ActCorrupt:
		if s.DataDir == "" {
			return fmt.Errorf("ActCorrupt needs a durable scenario (DataDir)")
		}
		dir := filepath.Join(s.DataDir, fmt.Sprintf("node-%d", a.Node))
		stripe := a.Stripe
		if stripe < 0 {
			var ok bool
			if stripe, ok = faultfs.BusiestShard(dir, s.Stripes); !ok {
				return fmt.Errorf("ActCorrupt: node %d has no WAL logs under %s", a.Node, dir)
			}
		}
		if _, err := faultfs.FlipLogByte(dir, stripe, s.Seed); err != nil {
			return fmt.Errorf("ActCorrupt node %d stripe %d: %w", a.Node, stripe, err)
		}
		return nil
	default:
		return fmt.Errorf("unknown action kind %d", a.Kind)
	}
}

// measureStamps sizes every stamp on every up replica with the compact
// wire encoding — the paper's core cost metric: version stamps must stay
// small even after fault-heavy histories.
func (s Scenario) measureStamps(c *antientropy.Cluster, m *ScenarioMetrics) {
	var total int64
	for i := 0; i < c.Size(); i++ {
		st, err := c.Status(i)
		if err != nil || st.Down {
			continue
		}
		rep, err := c.Replica(i)
		if err != nil {
			continue
		}
		for _, key := range rep.Keys() {
			v, ok := rep.Version(key)
			if !ok {
				continue
			}
			n := len(encoding.MarshalCompact(v.Stamp))
			m.KeysTotal++
			total += int64(n)
			if n > m.StampBytesMax {
				m.StampBytesMax = n
			}
		}
	}
	if m.KeysTotal > 0 {
		m.StampBytesMean = float64(total) / float64(m.KeysTotal)
	}
}

// Package sim drives identical fork/join/update traces through several
// causality-tracking mechanisms in lockstep and cross-checks them:
//
//   - the causal-history oracle (internal/causal) — ground truth;
//   - version stamps, reducing and non-reducing (internal/core);
//   - dynamic version vectors (internal/vv) under a choice of id allocator;
//   - any other mechanism implementing Tracker (e.g. internal/itc).
//
// The lockstep checker re-verifies, after every operation of every trace,
// that each subject mechanism induces exactly the causal-history pre-order
// on the frontier — for all pairs (paper Corollary 5.2) and for random
// (x, S) subset queries (the stronger Proposition 5.1) — and that the stamp
// invariants I1–I3 hold. The same machinery collects the size statistics
// behind experiments E5 and E6.
package sim

import (
	"fmt"

	"versionstamp/internal/causal"
	"versionstamp/internal/core"
	"versionstamp/internal/name"
	"versionstamp/internal/vv"
)

// Relation is the mechanism-independent comparison outcome used by the
// lockstep checker.
type Relation int

// Relation values mirror core.Ordering.
const (
	Equal Relation = iota + 1
	Before
	After
	Concurrent
)

// String returns a human-readable rendering of the relation.
func (r Relation) String() string {
	switch r {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return "invalid"
	}
}

// Tracker is a causality-tracking mechanism under test. Implementations
// maintain an ordered list of live frontier elements ("slots"); operations
// address slots by index with a common discipline so that identical traces
// replay identically on every mechanism:
//
//	Update(a):  replaces slot a in place
//	Fork(a):    replaces slot a with one descendant, appends the other
//	Join(a,b):  replaces slot a with the join, deletes slot b
type Tracker interface {
	// Name identifies the mechanism in reports.
	Name() string
	// Width returns the number of live frontier elements.
	Width() int
	// Update records an update on slot a.
	Update(a int) error
	// Fork splits slot a.
	Fork(a int) error
	// Join merges slot b into slot a.
	Join(a, b int) error
	// Compare relates slots a and b.
	Compare(a, b int) (Relation, error)
}

// SubsetComparer is implemented by mechanisms that can answer the stronger
// Proposition 5.1 query: does element x precede the combined knowledge of
// the subset S of the frontier?
type SubsetComparer interface {
	// LeqUnion reports x ≤ ⊔S in the mechanism's order.
	LeqUnion(x int, set []int) (bool, error)
}

// SizeReporter is implemented by mechanisms whose per-element state has a
// meaningful serialized size (experiments E5/E6).
type SizeReporter interface {
	// SizeOf returns the encoded size in bytes of slot a's state.
	SizeOf(a int) int
}

// InvariantChecker is implemented by mechanisms with internal invariants to
// re-verify during traces (version stamps re-check I1–I3).
type InvariantChecker interface {
	// CheckInvariants verifies all internal invariants of the current
	// frontier.
	CheckInvariants() error
}

func checkSlot(width, a int) error {
	if a < 0 || a >= width {
		return fmt.Errorf("sim: slot %d out of range [0,%d)", a, width)
	}
	return nil
}

func checkSlots(width, a, b int) error {
	if err := checkSlot(width, a); err != nil {
		return err
	}
	if err := checkSlot(width, b); err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("sim: join of slot %d with itself", a)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Version stamps

// StampTracker runs version stamps. Reduce selects between the Section 6
// reducing model (true) and the Definition 4.3 non-reducing model (false).
type StampTracker struct {
	reduce  bool
	stamps  []core.Stamp
	nameStr string
}

var (
	_ Tracker          = (*StampTracker)(nil)
	_ SubsetComparer   = (*StampTracker)(nil)
	_ SizeReporter     = (*StampTracker)(nil)
	_ InvariantChecker = (*StampTracker)(nil)
)

// NewStampTracker returns a stamp tracker seeded with a single element.
func NewStampTracker(reduce bool) *StampTracker {
	n := "stamps"
	if !reduce {
		n = "stamps-noreduce"
	}
	return &StampTracker{reduce: reduce, stamps: []core.Stamp{core.Seed()}, nameStr: n}
}

// Name implements Tracker.
func (t *StampTracker) Name() string { return t.nameStr }

// Width implements Tracker.
func (t *StampTracker) Width() int { return len(t.stamps) }

// Stamp returns the stamp at slot a (for reports and golden tests).
func (t *StampTracker) Stamp(a int) (core.Stamp, error) {
	if err := checkSlot(len(t.stamps), a); err != nil {
		return core.Stamp{}, err
	}
	return t.stamps[a], nil
}

// Update implements Tracker.
func (t *StampTracker) Update(a int) error {
	if err := checkSlot(len(t.stamps), a); err != nil {
		return err
	}
	t.stamps[a] = t.stamps[a].Update()
	return nil
}

// Fork implements Tracker.
func (t *StampTracker) Fork(a int) error {
	if err := checkSlot(len(t.stamps), a); err != nil {
		return err
	}
	l, r := t.stamps[a].Fork()
	t.stamps[a] = l
	t.stamps = append(t.stamps, r)
	return nil
}

// Join implements Tracker.
func (t *StampTracker) Join(a, b int) error {
	if err := checkSlots(len(t.stamps), a, b); err != nil {
		return err
	}
	var (
		joined core.Stamp
		err    error
	)
	if t.reduce {
		joined, err = core.Join(t.stamps[a], t.stamps[b])
	} else {
		joined, err = core.JoinNoReduce(t.stamps[a], t.stamps[b])
	}
	if err != nil {
		return err
	}
	t.stamps[a] = joined
	t.stamps = append(t.stamps[:b], t.stamps[b+1:]...)
	return nil
}

// Compare implements Tracker.
func (t *StampTracker) Compare(a, b int) (Relation, error) {
	if err := checkSlot(len(t.stamps), a); err != nil {
		return 0, err
	}
	if err := checkSlot(len(t.stamps), b); err != nil {
		return 0, err
	}
	return Relation(core.Compare(t.stamps[a], t.stamps[b])), nil
}

// LeqUnion implements SubsetComparer: fst(V(x)) ⊑ ⊔ fst[V[S]].
func (t *StampTracker) LeqUnion(x int, set []int) (bool, error) {
	if err := checkSlot(len(t.stamps), x); err != nil {
		return false, err
	}
	joined := name.Empty()
	for _, y := range set {
		if err := checkSlot(len(t.stamps), y); err != nil {
			return false, err
		}
		joined = name.Join(joined, t.stamps[y].UpdateName())
	}
	return t.stamps[x].UpdateName().Leq(joined), nil
}

// SizeOf implements SizeReporter.
func (t *StampTracker) SizeOf(a int) int {
	if a < 0 || a >= len(t.stamps) {
		return 0
	}
	return t.stamps[a].EncodedSize()
}

// CheckInvariants implements InvariantChecker: I1–I3 over the frontier.
func (t *StampTracker) CheckInvariants() error {
	return core.CheckFrontier(t.stamps)
}

// ---------------------------------------------------------------------------
// Causal histories (the oracle)

// CausalTracker runs the global-view causal-history model.
type CausalTracker struct {
	sys   *causal.System
	elems []causal.Elem
}

var (
	_ Tracker        = (*CausalTracker)(nil)
	_ SubsetComparer = (*CausalTracker)(nil)
	_ SizeReporter   = (*CausalTracker)(nil)
)

// NewCausalTracker returns a causal-history tracker seeded with one element.
func NewCausalTracker() *CausalTracker {
	sys, a := causal.NewSystem()
	return &CausalTracker{sys: sys, elems: []causal.Elem{a}}
}

// Name implements Tracker.
func (t *CausalTracker) Name() string { return "causal-histories" }

// Width implements Tracker.
func (t *CausalTracker) Width() int { return len(t.elems) }

// Update implements Tracker.
func (t *CausalTracker) Update(a int) error {
	if err := checkSlot(len(t.elems), a); err != nil {
		return err
	}
	e, err := t.sys.Update(t.elems[a])
	if err != nil {
		return err
	}
	t.elems[a] = e
	return nil
}

// Fork implements Tracker.
func (t *CausalTracker) Fork(a int) error {
	if err := checkSlot(len(t.elems), a); err != nil {
		return err
	}
	l, r, err := t.sys.Fork(t.elems[a])
	if err != nil {
		return err
	}
	t.elems[a] = l
	t.elems = append(t.elems, r)
	return nil
}

// Join implements Tracker.
func (t *CausalTracker) Join(a, b int) error {
	if err := checkSlots(len(t.elems), a, b); err != nil {
		return err
	}
	e, err := t.sys.Join(t.elems[a], t.elems[b])
	if err != nil {
		return err
	}
	t.elems[a] = e
	t.elems = append(t.elems[:b], t.elems[b+1:]...)
	return nil
}

// Compare implements Tracker.
func (t *CausalTracker) Compare(a, b int) (Relation, error) {
	if err := checkSlot(len(t.elems), a); err != nil {
		return 0, err
	}
	if err := checkSlot(len(t.elems), b); err != nil {
		return 0, err
	}
	o, err := t.sys.Compare(t.elems[a], t.elems[b])
	if err != nil {
		return 0, err
	}
	return Relation(o), nil
}

// LeqUnion implements SubsetComparer: C(x) ⊆ ∪ C[S].
func (t *CausalTracker) LeqUnion(x int, set []int) (bool, error) {
	if err := checkSlot(len(t.elems), x); err != nil {
		return false, err
	}
	elems := make([]causal.Elem, len(set))
	for i, y := range set {
		if err := checkSlot(len(t.elems), y); err != nil {
			return false, err
		}
		elems[i] = t.elems[y]
	}
	return t.sys.SubsetOfUnion(t.elems[x], elems)
}

// SizeOf implements SizeReporter: 8 bytes per recorded event. This measures
// the inherent cost of the global-view model: histories only grow.
func (t *CausalTracker) SizeOf(a int) int {
	if a < 0 || a >= len(t.elems) {
		return 0
	}
	h, err := t.sys.History(t.elems[a])
	if err != nil {
		return 0
	}
	return 8 * h.Len()
}

// TotalEvents exposes the oracle's global event count.
func (t *CausalTracker) TotalEvents() uint64 { return t.sys.TotalEvents() }

// ---------------------------------------------------------------------------
// Dynamic version vectors

// DynamicVVTracker runs dynamic version vectors over an id allocator. When
// the allocator fails (e.g. a partitioned CentralServer), Fork fails — the
// identification problem in action.
type DynamicVVTracker struct {
	alloc   vv.Allocator
	vecs    []vv.Dynamic
	nameStr string
}

var (
	_ Tracker      = (*DynamicVVTracker)(nil)
	_ SizeReporter = (*DynamicVVTracker)(nil)
)

// NewDynamicVVTracker returns a dynamic-version-vector tracker seeded with
// one replica whose id comes from alloc.
func NewDynamicVVTracker(alloc vv.Allocator, label string) (*DynamicVVTracker, error) {
	id, err := alloc.NewID()
	if err != nil {
		return nil, fmt.Errorf("sim: seed replica id: %w", err)
	}
	return &DynamicVVTracker{
		alloc:   alloc,
		vecs:    []vv.Dynamic{vv.NewDynamic(id)},
		nameStr: label,
	}, nil
}

// Name implements Tracker.
func (t *DynamicVVTracker) Name() string { return t.nameStr }

// Width implements Tracker.
func (t *DynamicVVTracker) Width() int { return len(t.vecs) }

// Update implements Tracker.
func (t *DynamicVVTracker) Update(a int) error {
	if err := checkSlot(len(t.vecs), a); err != nil {
		return err
	}
	t.vecs[a] = t.vecs[a].Update()
	return nil
}

// Fork implements Tracker. It requires a fresh identifier from the
// allocator and propagates allocation failures.
func (t *DynamicVVTracker) Fork(a int) error {
	if err := checkSlot(len(t.vecs), a); err != nil {
		return err
	}
	id, err := t.alloc.NewID()
	if err != nil {
		return fmt.Errorf("sim: fork needs a fresh replica id: %w", err)
	}
	l, r, err := t.vecs[a].Fork(id)
	if err != nil {
		return err
	}
	t.vecs[a] = l
	t.vecs = append(t.vecs, r)
	return nil
}

// Join implements Tracker.
func (t *DynamicVVTracker) Join(a, b int) error {
	if err := checkSlots(len(t.vecs), a, b); err != nil {
		return err
	}
	t.vecs[a] = t.vecs[a].JoinInto(t.vecs[b])
	t.vecs = append(t.vecs[:b], t.vecs[b+1:]...)
	return nil
}

// Compare implements Tracker.
func (t *DynamicVVTracker) Compare(a, b int) (Relation, error) {
	if err := checkSlot(len(t.vecs), a); err != nil {
		return 0, err
	}
	if err := checkSlot(len(t.vecs), b); err != nil {
		return 0, err
	}
	return Relation(vv.CompareDynamic(t.vecs[a], t.vecs[b])), nil
}

// SizeOf implements SizeReporter.
func (t *DynamicVVTracker) SizeOf(a int) int {
	if a < 0 || a >= len(t.vecs) {
		return 0
	}
	return t.vecs[a].EncodedSize()
}

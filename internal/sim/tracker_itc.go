package sim

import (
	"versionstamp/internal/itc"
)

// ITCTracker runs interval tree clocks (internal/itc) through the lockstep
// checker — experiment E7: the successor design induces the same frontier
// ordering as causal histories and version stamps.
type ITCTracker struct {
	stamps []itc.Stamp
}

var (
	_ Tracker      = (*ITCTracker)(nil)
	_ SizeReporter = (*ITCTracker)(nil)
)

// NewITCTracker returns an ITC tracker seeded with a single element.
func NewITCTracker() *ITCTracker {
	return &ITCTracker{stamps: []itc.Stamp{itc.Seed()}}
}

// Name implements Tracker.
func (t *ITCTracker) Name() string { return "itc" }

// Width implements Tracker.
func (t *ITCTracker) Width() int { return len(t.stamps) }

// Stamp returns the ITC stamp at slot a.
func (t *ITCTracker) Stamp(a int) (itc.Stamp, error) {
	if err := checkSlot(len(t.stamps), a); err != nil {
		return itc.Stamp{}, err
	}
	return t.stamps[a], nil
}

// Update implements Tracker by recording an ITC event.
func (t *ITCTracker) Update(a int) error {
	if err := checkSlot(len(t.stamps), a); err != nil {
		return err
	}
	s, err := t.stamps[a].Event()
	if err != nil {
		return err
	}
	t.stamps[a] = s
	return nil
}

// Fork implements Tracker.
func (t *ITCTracker) Fork(a int) error {
	if err := checkSlot(len(t.stamps), a); err != nil {
		return err
	}
	l, r := t.stamps[a].Fork()
	t.stamps[a] = l
	t.stamps = append(t.stamps, r)
	return nil
}

// Join implements Tracker.
func (t *ITCTracker) Join(a, b int) error {
	if err := checkSlots(len(t.stamps), a, b); err != nil {
		return err
	}
	joined, err := itc.Join(t.stamps[a], t.stamps[b])
	if err != nil {
		return err
	}
	t.stamps[a] = joined
	t.stamps = append(t.stamps[:b], t.stamps[b+1:]...)
	return nil
}

// Compare implements Tracker.
func (t *ITCTracker) Compare(a, b int) (Relation, error) {
	if err := checkSlot(len(t.stamps), a); err != nil {
		return 0, err
	}
	if err := checkSlot(len(t.stamps), b); err != nil {
		return 0, err
	}
	return Relation(itc.Compare(t.stamps[a], t.stamps[b])), nil
}

// SizeOf implements SizeReporter using the exact wire size of the stamp's
// bit-level binary encoding.
func (t *ITCTracker) SizeOf(a int) int {
	if a < 0 || a >= len(t.stamps) {
		return 0
	}
	return t.stamps[a].EncodedSize()
}

package sim

import (
	"errors"
	"strings"
	"testing"

	"versionstamp/internal/vv"
)

func TestTraceValidate(t *testing.T) {
	good := Trace{
		{Kind: OpUpdate, A: 0},
		{Kind: OpFork, A: 0},
		{Kind: OpJoin, A: 0, B: 1},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := []Trace{
		{{Kind: OpUpdate, A: 1}},                           // slot out of range at width 1
		{{Kind: OpJoin, A: 0, B: 0}},                       // self join
		{{Kind: OpJoin, A: 0, B: 1}},                       // join at width 1
		{{Kind: OpFork, A: -1}},                            // negative slot
		{{Kind: OpKind(9), A: 0}},                          // invalid kind
		{{Kind: OpFork, A: 0}, {Kind: OpJoin, A: 0, B: 2}}, // B out of range
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestTraceCountsAndWidth(t *testing.T) {
	tr := Figure2Trace()
	u, f, j := tr.Counts()
	if u != 3 || f != 2 || j != 2 {
		t.Errorf("Counts = %d,%d,%d want 3,2,2", u, f, j)
	}
	if tr.FinalWidth() != 1 {
		t.Errorf("FinalWidth = %d, want 1", tr.FinalWidth())
	}
}

func TestGeneratorsProduceValidTraces(t *testing.T) {
	gens := map[string]func(seed int64) Trace{
		"random-balanced":    func(s int64) Trace { return Random(s, 300, Balanced, 12) },
		"random-forkheavy":   func(s int64) Trace { return Random(s, 300, ForkHeavy, 12) },
		"random-syncheavy":   func(s int64) Trace { return Random(s, 300, SyncHeavy, 12) },
		"random-updateheavy": func(s int64) Trace { return Random(s, 300, UpdateHeavy, 12) },
		"fixedN":             func(s int64) Trace { return FixedN(s, 5, 40) },
		"star":               func(s int64) Trace { return StarSync(s, 4, 40) },
		"partitioned":        func(s int64) Trace { return PartitionedEpochs(s, 6, 30, 16) },
		"ring-gossip":        func(s int64) Trace { return RingGossip(s, 9, 3, 40) },
	}
	for label, gen := range gens {
		for seed := int64(0); seed < 10; seed++ {
			tr := gen(seed)
			if err := tr.Validate(); err != nil {
				t.Errorf("%s seed %d: invalid trace: %v", label, seed, err)
			}
			if len(tr) == 0 {
				t.Errorf("%s seed %d: empty trace", label, seed)
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Random(42, 200, Balanced, 10)
	b := Random(42, 200, Balanced, 10)
	if len(a) != len(b) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRandomRespectsMaxWidth(t *testing.T) {
	tr := Random(7, 500, ForkHeavy, 5)
	width := 1
	for _, op := range tr {
		switch op.Kind {
		case OpFork:
			width++
		case OpJoin:
			width--
		}
		if width > 5 {
			t.Fatalf("width %d exceeded maxWidth 5", width)
		}
		if width < 1 {
			t.Fatalf("width dropped below 1")
		}
	}
}

// TestEquivalenceAllMechanisms is experiment E4: on random traces of every
// workload, version stamps (reducing and non-reducing) and dynamic version
// vectors all induce exactly the causal-history ordering, pairwise
// (Corollary 5.2) and for random subset queries (Proposition 5.1), with
// stamp invariants I1–I3 checked at every step.
func TestEquivalenceAllMechanisms(t *testing.T) {
	workloads := map[string]Weights{
		"balanced":  Balanced,
		"forkheavy": ForkHeavy,
		"syncheavy": SyncHeavy,
	}
	seeds, traceOps := int64(4), 180
	if testing.Short() {
		// Stamp growth is superlinear in ops; shrunk traces keep every
		// mechanism pair covered at a fraction of the runtime.
		seeds, traceOps = 2, 120
	}
	for label, w := range workloads {
		for seed := int64(0); seed < seeds; seed++ {
			trace := Random(seed*17+3, traceOps, w, 8)
			dvv, err := NewDynamicVVTracker(vv.NewCentralServer(), "dynamic-vv")
			if err != nil {
				t.Fatalf("dvv: %v", err)
			}
			runner := NewRunner(
				NewCausalTracker(),
				[]Tracker{NewStampTracker(true), dvv, NewITCTracker()},
				Config{Check: CheckSubsets, Seed: seed},
			)
			report, err := runner.Run(trace)
			if err != nil {
				t.Fatalf("%s seed %d: %v", label, seed, err)
			}
			if report.Ops != len(trace) {
				t.Errorf("%s seed %d: replayed %d of %d ops", label, seed, report.Ops, len(trace))
			}
			if report.Comparisons == 0 || report.SubsetChecks == 0 {
				t.Errorf("%s seed %d: no checks performed (%d pair, %d subset)",
					label, seed, report.Comparisons, report.SubsetChecks)
			}
		}
	}
}

// TestEquivalenceNonReducing verifies the Definition 4.3 model separately on
// shorter traces: the non-reducing model's state grows exponentially with
// joins (string counts add at joins and duplicate at forks), so long random
// traces are reserved for the reducing model above.
func TestEquivalenceNonReducing(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		trace := Random(seed*17+3, 80, Balanced, 8)
		runner := NewRunner(
			NewCausalTracker(),
			[]Tracker{NewStampTracker(false)},
			Config{Check: CheckSubsets, Seed: seed},
		)
		if _, err := runner.Run(trace); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestEquivalenceScriptedFigure2(t *testing.T) {
	runner := NewRunner(
		NewCausalTracker(),
		[]Tracker{NewStampTracker(true), NewStampTracker(false)},
		Config{Check: CheckSubsets},
	)
	if _, err := runner.Run(Figure2Trace()); err != nil {
		t.Fatalf("figure-2 trace: %v", err)
	}
}

// TestFigure2TraceStamps replays Figure 2 on the non-reducing stamp tracker
// and checks the exact stamps of Figure 4 at the relevant intermediate
// frontiers.
func TestFigure2TraceStamps(t *testing.T) {
	tr := Figure2Trace()
	st := NewStampTracker(false)
	wantAfter := map[int][]string{
		0: {"[ε|ε]"},                     // a2
		1: {"[ε|0]", "[ε|1]"},            // b1, c1
		2: {"[ε|00]", "[ε|1]", "[ε|01]"}, // d1, c1, e1
		4: {"[ε|00]", "[1|1]", "[ε|01]"}, // d1, c3, e1
		5: {"[ε|00]", "[1|01+1]"},        // d1, f1
		6: {"[1|00+01+1]"},               // g1 (unreduced, as in the figure)
	}
	for step, op := range tr {
		if err := applyOp(st, op); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, ok := wantAfter[step]
		if !ok {
			continue
		}
		if st.Width() != len(want) {
			t.Fatalf("step %d: width %d, want %d", step, st.Width(), len(want))
		}
		for i, w := range want {
			s, err := st.Stamp(i)
			if err != nil {
				t.Fatalf("step %d slot %d: %v", step, i, err)
			}
			if s.String() != w {
				t.Errorf("step %d slot %d = %v, want %v", step, i, s, w)
			}
		}
	}
}

// TestFigure3 runs the fixed-replica encoding of Figure 3: the orderings
// induced by fixed version vectors and by version stamps agree at every
// step, for systems of 3 (the figure's size) and larger.
func TestFigure3(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		sys, err := NewFigure3System(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := sys.CheckAgreement(); err != nil {
			t.Fatalf("n=%d initial: %v", n, err)
		}
		// Deterministic schedule: replica k updates, then syncs with
		// (k+1) mod n, sweeping k. Round counts stay modest because
		// rotating pairwise syncs grow stamp ids multiplicatively (the
		// known limitation measured in experiment E5).
		for round := 0; round < 6*n; round++ {
			k := round % n
			if err := sys.Update(k); err != nil {
				t.Fatalf("n=%d update: %v", n, err)
			}
			if err := sys.CheckAgreement(); err != nil {
				t.Fatalf("n=%d round %d after update: %v", n, round, err)
			}
			if round%2 == 0 {
				if err := sys.Sync(k, (k+1)%n); err != nil {
					t.Fatalf("n=%d sync: %v", n, err)
				}
				if err := sys.CheckAgreement(); err != nil {
					t.Fatalf("n=%d round %d after sync: %v", n, round, err)
				}
			}
		}
	}
}

func TestFigure3Errors(t *testing.T) {
	if _, err := NewFigure3System(1); err == nil {
		t.Error("n=1 must be rejected")
	}
	sys, _ := NewFigure3System(3)
	if err := sys.Update(3); err == nil {
		t.Error("out-of-range update must fail")
	}
	if err := sys.Sync(0, 0); err == nil {
		t.Error("self-sync must fail")
	}
	if _, err := sys.Vector(9); err == nil {
		t.Error("out-of-range Vector must fail")
	}
	if _, err := sys.Stamp(-1); err == nil {
		t.Error("out-of-range Stamp must fail")
	}
	if sys.Size() != 3 {
		t.Errorf("Size = %d", sys.Size())
	}
	if sys.VectorSize() != 24 {
		t.Errorf("VectorSize = %d, want 24", sys.VectorSize())
	}
	if sys.MaxStampSize() <= 0 {
		t.Error("MaxStampSize must be positive")
	}
}

// lyingTracker wraps a correct tracker but reports Equal for every
// comparison — failure injection proving the checker actually detects
// disagreement.
type lyingTracker struct {
	*StampTracker
}

func (l *lyingTracker) Name() string { return "liar" }

func (l *lyingTracker) Compare(a, b int) (Relation, error) {
	return Equal, nil
}

func TestCheckerDetectsDisagreement(t *testing.T) {
	trace := Random(3, 100, Balanced, 8)
	runner := NewRunner(
		NewCausalTracker(),
		[]Tracker{&lyingTracker{NewStampTracker(true)}},
		Config{Check: CheckPairs},
	)
	_, err := runner.Run(trace)
	if err == nil {
		t.Fatal("lying tracker passed verification")
	}
	var d *DisagreementError
	if !errors.As(err, &d) {
		t.Fatalf("want DisagreementError, got %T: %v", err, err)
	}
	if d.Subject != "liar" {
		t.Errorf("Subject = %q", d.Subject)
	}
	if !strings.Contains(d.Error(), "disagrees with oracle") {
		t.Errorf("Error() = %q", d.Error())
	}
}

func TestSizeCollection(t *testing.T) {
	trace := Random(5, 150, SyncHeavy, 8)
	dvv, err := NewDynamicVVTracker(vv.NewCentralServer(), "dynamic-vv")
	if err != nil {
		t.Fatalf("dvv: %v", err)
	}
	runner := NewRunner(
		NewCausalTracker(),
		[]Tracker{NewStampTracker(true), NewStampTracker(false), dvv},
		Config{Check: CheckNone, CollectSizes: true},
	)
	report, err := runner.Run(trace)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, nameKey := range []string{"stamps", "stamps-noreduce", "dynamic-vv", "causal-histories"} {
		series := report.Sizes[nameKey]
		if len(series) != len(trace) {
			t.Fatalf("%s: %d samples, want %d", nameKey, len(series), len(trace))
		}
		for _, s := range series {
			if s.TotalBytes < 0 || s.MaxBytes > s.TotalBytes || s.Width <= 0 {
				t.Fatalf("%s: implausible sample %+v", nameKey, s)
			}
			if s.MeanBytes() < 0 {
				t.Fatalf("%s: negative mean", nameKey)
			}
		}
	}
	// The headline E5/E6 shape: after a long sync-heavy run, reducing
	// stamps stay no larger than non-reducing stamps.
	last := len(trace) - 1
	red := report.Sizes["stamps"][last]
	nored := report.Sizes["stamps-noreduce"][last]
	if red.TotalBytes > nored.TotalBytes {
		t.Errorf("reducing stamps (%d B) larger than non-reducing (%d B)",
			red.TotalBytes, nored.TotalBytes)
	}
}

func TestPartitionedForkFailsForDynamicVV(t *testing.T) {
	// Experiment E8's core assertion: with a partitioned central id server,
	// dynamic version vectors cannot create replicas, while version stamps
	// fork locally without any allocator.
	server := vv.NewCentralServer()
	dvv, err := NewDynamicVVTracker(server, "dynamic-vv")
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	st := NewStampTracker(true)
	server.SetPartitioned(true)

	if err := dvv.Fork(0); err == nil {
		t.Fatal("dynamic VV fork must fail while partitioned")
	} else if !errors.Is(err, vv.ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	if err := st.Fork(0); err != nil {
		t.Fatalf("stamp fork must succeed under partition: %v", err)
	}
	// Healing the partition unblocks the allocator.
	server.SetPartitioned(false)
	if err := dvv.Fork(0); err != nil {
		t.Fatalf("fork after heal: %v", err)
	}
}

func TestReplay(t *testing.T) {
	ops := 200
	if testing.Short() {
		ops = 120 // growth is superlinear; 120 ops replay in well under 1s
	}
	tr := Random(11, ops, Balanced, 8)
	st := NewStampTracker(true)
	width, err := Replay(st, tr)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if width != tr.FinalWidth() {
		t.Errorf("width %d, want %d", width, tr.FinalWidth())
	}
	if err := st.CheckInvariants(); err != nil {
		t.Errorf("invariants after replay: %v", err)
	}
}

func TestReplayInvalidTrace(t *testing.T) {
	if _, err := Replay(NewStampTracker(true), Trace{{Kind: OpJoin, A: 0, B: 1}}); err == nil {
		t.Error("invalid trace must be rejected")
	}
}

func TestTrackerSlotErrors(t *testing.T) {
	trackers := []Tracker{NewStampTracker(true), NewCausalTracker()}
	dvv, err := NewDynamicVVTracker(vv.NewCentralServer(), "dvv")
	if err != nil {
		t.Fatal(err)
	}
	trackers = append(trackers, dvv)
	for _, tk := range trackers {
		if err := tk.Update(5); err == nil {
			t.Errorf("%s: out-of-range update accepted", tk.Name())
		}
		if err := tk.Fork(-1); err == nil {
			t.Errorf("%s: out-of-range fork accepted", tk.Name())
		}
		if err := tk.Join(0, 0); err == nil {
			t.Errorf("%s: self-join accepted", tk.Name())
		}
		if _, err := tk.Compare(0, 3); err == nil {
			t.Errorf("%s: out-of-range compare accepted", tk.Name())
		}
	}
}

func TestOpAndRelationStrings(t *testing.T) {
	if OpUpdate.String() != "update" || OpFork.String() != "fork" ||
		OpJoin.String() != "join" || OpKind(0).String() != "invalid" {
		t.Error("OpKind.String incorrect")
	}
	op := Op{Kind: OpJoin, A: 1, B: 4}
	if op.String() != "join(1,4)" {
		t.Errorf("Op.String = %q", op.String())
	}
	up := Op{Kind: OpUpdate, A: 3}
	if up.String() != "update(3)" {
		t.Errorf("Op.String = %q", up.String())
	}
	if Equal.String() != "equal" || Concurrent.String() != "concurrent" ||
		Relation(0).String() != "invalid" {
		t.Error("Relation.String incorrect")
	}
}

package sim

import (
	"fmt"

	"versionstamp/internal/antientropy"
	"versionstamp/internal/chaosnet"
	"versionstamp/internal/ring"
)

// The predefined scenario catalog: the fault schedules cmd/benchconverge
// gates in CI. Each is a small, fully scripted story — inject a fault
// class, keep writing through it, repair, and demand convergence within a
// bounded number of gossip rounds.

// PartitionHeal splits a 12-node ring in half, writes on both sides of the
// split, then heals and requires the halves to reconcile.
func PartitionHeal(seed int64) Scenario {
	return Scenario{
		Name: "partition-heal", Seed: seed,
		Nodes: 12, Replication: 3, Stripes: 32,
		Backoff: antientropy.BackoffPolicy{Base: 1, Max: 4, Seed: seed},
		Script: []Action{
			{Round: 0, Kind: ActWrite, Count: 120},
			{Round: 3, Kind: ActPartition, Groups: []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}},
			{Round: 4, Kind: ActWrite, Count: 80},
			{Round: 8, Kind: ActHeal},
			{Round: 9, Kind: ActWrite, Count: 40},
		},
		RoundBudget: 48,
	}
}

// LossyQuorum runs quorum writes over links that drop, duplicate, reorder
// and delay — the protocol's framing and the pool's retry discipline must
// still converge every stripe.
func LossyQuorum(seed int64) Scenario {
	return Scenario{
		Name: "lossy-quorum", Seed: seed,
		Nodes: 9, Replication: 3, Stripes: 32,
		Faults: chaosnet.Faults{
			DelayTicks: 1, JitterTicks: 2,
			DropProb: 0.05, DupProb: 0.05, ReorderProb: 0.1,
		},
		Backoff: antientropy.BackoffPolicy{Base: 1, Max: 4, Seed: seed},
		Script: []Action{
			{Round: 0, Kind: ActWrite, Count: 100},
			{Round: 3, Kind: ActWrite, Count: 100},
			{Round: 6, Kind: ActWrite, Count: 60},
			// The tail of the run is clean so retransmission storms die out
			// and the quiescence check measures protocol rounds, not luck.
			{Round: 10, Kind: ActFaults, Faults: chaosnet.Faults{}},
		},
		RoundBudget: 64,
	}
}

// CrashRestart kills WAL-backed nodes mid-traffic and revives them: the
// crash-restart replay path plus hinted handoff must restore everything.
// dataDir must be a fresh writable directory (the caller's temp dir).
func CrashRestart(seed int64, dataDir string) Scenario {
	return Scenario{
		Name: "crash-restart", Seed: seed,
		Nodes: 8, Replication: 3, Stripes: 32,
		DataDir: dataDir, HintCap: 32,
		Backoff: antientropy.BackoffPolicy{Base: 1, Max: 4, Seed: seed},
		Script: []Action{
			{Round: 0, Kind: ActWrite, Count: 100},
			{Round: 3, Kind: ActKill, Node: 2},
			{Round: 4, Kind: ActKill, Node: 5},
			// Writes while two owners are dead: quorums shrink, hints queue.
			{Round: 5, Kind: ActWrite, Count: 120},
			{Round: 12, Kind: ActRevive, Node: 2},
			{Round: 13, Kind: ActRevive, Node: 5},
			{Round: 14, Kind: ActWrite, Count: 40},
		},
		RoundBudget: 64,
	}
}

// Churn grows the ring mid-traffic: joins trigger membership growth and
// deterministic ring rebuilds, re-homing stripes while writes continue.
func Churn(seed int64) Scenario {
	return Scenario{
		Name: "churn", Seed: seed,
		Nodes: 8, Replication: 3, Stripes: 32,
		Backoff: antientropy.BackoffPolicy{Base: 1, Max: 4, Seed: seed},
		Script: []Action{
			{Round: 0, Kind: ActWrite, Count: 120},
			{Round: 3, Kind: ActAddNode},
			{Round: 4, Kind: ActWrite, Count: 60},
			{Round: 6, Kind: ActAddNode},
			{Round: 7, Kind: ActWrite, Count: 60},
			{Round: 9, Kind: ActKill, Node: 1},
			{Round: 10, Kind: ActWrite, Count: 40},
			{Round: 14, Kind: ActRevive, Node: 1},
		},
		RoundBudget: 64,
	}
}

// ThousandNode is the full monte at scale: a 1000-node ring takes a
// partition, node crashes (including a WAL-backed one), churn and skewed
// Zipf writes, then must converge within the budget. dataDir may be empty
// (all in-memory) — when set, only the first DurableCount nodes open WALs
// so the scenario does not hold a thousand directories.
func ThousandNode(seed int64, dataDir string) Scenario {
	groups := make([]int, 1000)
	for i := 500; i < 1000; i++ {
		groups[i] = 1
	}
	return Scenario{
		Name: "thousand-node", Seed: seed,
		Nodes: 1000, Replication: 3, Stripes: 128,
		DataDir: dataDir, DurableCount: 8,
		HintCap: 64, KeySpace: 512,
		Backoff: antientropy.BackoffPolicy{Base: 1, Max: 4, Seed: seed},
		Script: []Action{
			{Round: 0, Kind: ActWrite, Count: 300},
			{Round: 2, Kind: ActPartition, Groups: groups},
			{Round: 3, Kind: ActWrite, Count: 150},
			{Round: 4, Kind: ActKill, Node: 7},   // durable: WAL crash path
			{Round: 4, Kind: ActKill, Node: 613}, // in-memory pause
			{Round: 5, Kind: ActWrite, Count: 150},
			{Round: 6, Kind: ActHeal},
			{Round: 7, Kind: ActWrite, Count: 100},
			{Round: 9, Kind: ActRevive, Node: 7},
			{Round: 9, Kind: ActRevive, Node: 613},
			{Round: 11, Kind: ActAddNode},
			{Round: 12, Kind: ActWrite, Count: 100},
		},
		RoundBudget:   48,
		QuiesceRounds: 2,
	}
}

// DiskCorrupt is the self-healing story: a durable node crashes, one of its
// WAL stripes rots while it is down (a flipped byte in the busiest stripe's
// log), and the revival must scope the damage to that stripe — quarantine
// it, keep serving everything else, rebuild it from the other owners by
// anti-entropy, re-checkpoint, and clear the quarantine. The gate demands
// QuarantinedEnd and PersistErrsEnd of zero: converging while still damaged
// does not count. dataDir must be a fresh writable directory.
func DiskCorrupt(seed int64, dataDir string) Scenario {
	return Scenario{
		Name: "disk-corrupt", Seed: seed,
		Nodes: 9, Replication: 3, Stripes: 32,
		DataDir: dataDir, HintCap: 32,
		Backoff: antientropy.BackoffPolicy{Base: 1, Max: 4, Seed: seed},
		Script: []Action{
			{Round: 0, Kind: ActWrite, Count: 150},
			{Round: 3, Kind: ActKill, Node: 2},
			{Round: 4, Kind: ActCorrupt, Node: 2, Stripe: -1},
			// Writes while the node is down and its disk is rotting: the
			// usual hinted-handoff story layered on top of the damage.
			{Round: 4, Kind: ActWrite, Count: 60},
			{Round: 8, Kind: ActRevive, Node: 2},
			{Round: 9, Kind: ActWrite, Count: 40},
		},
		RoundBudget: 64,
	}
}

// OwnerSetFailure is the correlated-failure story the roadmap asked for:
// every owner of one stripe crashes at once (same rack, same batch of bad
// disks), writes to that stripe fail their quorums outright while writes
// elsewhere continue, and when the owner set revives, their WALs plus
// anti-entropy must restore the stripe with no lost acknowledged write.
// dataDir must be a fresh writable directory — the scenario is only
// meaningful with durable nodes.
func OwnerSetFailure(seed int64, dataDir string) Scenario {
	// The owner set of stripe 0 is deterministic for the initial roster:
	// precompute it so the script kills exactly the correlated group.
	members := make([]string, 9)
	for i := range members {
		members[i] = fmt.Sprintf("node-%d", i)
	}
	victims := []int{0, 1, 2} // fallback; overwritten below
	if rg, err := ring.New(members, 32, 3); err == nil {
		if owners, err := rg.Owners(0); err == nil {
			victims = victims[:0]
			for _, id := range owners {
				var i int
				fmt.Sscanf(id, "node-%d", &i)
				victims = append(victims, i)
			}
		}
	}
	script := []Action{{Round: 0, Kind: ActWrite, Count: 120}}
	for _, v := range victims {
		script = append(script, Action{Round: 3, Kind: ActKill, Node: v})
	}
	script = append(script,
		// Writes through the outage: stripe 0's quorums fail (counted, not
		// fatal), every other stripe keeps its quorum.
		Action{Round: 4, Kind: ActWrite, Count: 80},
		Action{Round: 10, Kind: ActRevive, Node: victims[0]},
		Action{Round: 11, Kind: ActRevive, Node: victims[1]},
		Action{Round: 12, Kind: ActRevive, Node: victims[2]},
		Action{Round: 13, Kind: ActWrite, Count: 40},
	)
	return Scenario{
		Name: "owner-set-failure", Seed: seed,
		Nodes: 9, Replication: 3, Stripes: 32,
		DataDir: dataDir, HintCap: 32,
		Backoff: antientropy.BackoffPolicy{Base: 1, Max: 4, Seed: seed},
		Script:  script, RoundBudget: 64,
	}
}

// TombstoneGC is the deletion lifecycle story: quorum deletes land while a
// replica owner is down and a partition splits the ring, so their
// tombstones must survive as tombstones until the anti-entropy layer has
// proven every owner saw them — only then may the GC discard. The scenario
// runs delete-wins resolution, which makes resurrection checkable: after
// the healed cluster converges and drains its tombstone ledger to zero,
// every key whose last applied operation was a delete must still read as
// absent. One discarded-too-early tombstone shows up as a resurrection.
func TombstoneGC(seed int64) Scenario {
	return Scenario{
		Name: "tombstone-gc", Seed: seed,
		Nodes: 9, Replication: 3, Stripes: 16,
		KeySpace: 64, DeleteWins: true,
		Backoff: antientropy.BackoffPolicy{Base: 1, Max: 4, Seed: seed},
		Script: []Action{
			{Round: 0, Kind: ActWrite, Count: 150},
			// Deletes while an owner is down: those tombstones cannot be
			// discarded until node 3 revives and proves it has them.
			{Round: 3, Kind: ActKill, Node: 3},
			{Round: 4, Kind: ActDelete, Count: 40},
			{Round: 6, Kind: ActPartition, Groups: []int{0, 0, 0, 0, 0, 1, 1, 1, 1}},
			{Round: 7, Kind: ActDelete, Count: 20},
			{Round: 7, Kind: ActWrite, Count: 30},
			{Round: 10, Kind: ActHeal},
			{Round: 11, Kind: ActRevive, Node: 3},
			{Round: 12, Kind: ActWrite, Count: 20},
			{Round: 12, Kind: ActDelete, Count: 10},
		},
		RoundBudget: 96,
	}
}

// Suite returns the scenario set benchconverge runs. short drops nothing —
// the whole point of logical time is that even the 1000-node story fits a
// -short CI budget — but it is kept as a hook for heavier future entries.
// The durable scenarios each get their own subdirectory of dataDir so their
// WAL trees never collide.
func Suite(seed int64, dataDir string, short bool) []Scenario {
	_ = short
	return []Scenario{
		PartitionHeal(seed),
		LossyQuorum(seed),
		CrashRestart(seed, dataDir),
		Churn(seed),
		ThousandNode(seed, ""),
		DiskCorrupt(seed, dataDir+"-corrupt"),
		OwnerSetFailure(seed, dataDir+"-ownerset"),
		TombstoneGC(seed),
	}
}

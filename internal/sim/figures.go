package sim

import (
	"fmt"

	"versionstamp/internal/core"
	"versionstamp/internal/vv"
)

// This file reproduces the paper's worked figures as executable artifacts:
// Figure 2's execution as a Trace (its stamps are Figure 4, checked in the
// tests and in cmd/experiments), and Figure 3's encoding of a fixed
// replica set under fork-and-join dynamics.

// Figure2Trace returns the execution of Figure 2 in slot form:
//
//	slot evolution        elements
//	update(0)             a1 -> a2
//	fork(0)               a2 -> b1 (slot 0), c1 (slot 1)
//	fork(0)               b1 -> d1 (slot 0), e1 (slot 2)
//	update(1), update(1)  c1 -> c2 -> c3
//	join(2,1)             f1 = e1 ⊔ c3 (slot 1 after shift)
//	join(0,1)             g1 = d1 ⊔ f1
//
// Replaying it on a StampTracker yields exactly the version stamps of
// Figure 4 (see TestFigure2TraceStamps).
func Figure2Trace() Trace {
	return Trace{
		{Kind: OpUpdate, A: 0},
		{Kind: OpFork, A: 0},
		{Kind: OpFork, A: 0},
		{Kind: OpUpdate, A: 1},
		{Kind: OpUpdate, A: 1},
		{Kind: OpJoin, A: 2, B: 1},
		{Kind: OpJoin, A: 0, B: 1},
	}
}

// Figure3System runs the paper's Figure 3 comparison: a classic system of n
// replicas tracked by fixed version vectors (left side of the figure),
// operated in lockstep with the fork-and-join encoding tracked by version
// stamps (right side). Each replica keeps a stable index in both systems;
// synchronization of two replicas is a vector join on the left and a
// join-then-fork on the right.
type Figure3System struct {
	vectors []vv.Vector
	stamps  []core.Stamp
}

// NewFigure3System builds the n-replica lockstep system.
func NewFigure3System(n int) (*Figure3System, error) {
	if n < 2 {
		return nil, fmt.Errorf("sim: figure-3 system needs >= 2 replicas, got %d", n)
	}
	vectors := make([]vv.Vector, n)
	for i := range vectors {
		vectors[i] = vv.NewVector(n)
	}
	return &Figure3System{
		vectors: vectors,
		stamps:  core.Seed().ForkN(n),
	}, nil
}

// Size returns the number of replicas.
func (f *Figure3System) Size() int { return len(f.vectors) }

// Vector returns replica i's fixed version vector.
func (f *Figure3System) Vector(i int) (vv.Vector, error) {
	if i < 0 || i >= len(f.vectors) {
		return nil, fmt.Errorf("sim: replica %d out of range", i)
	}
	return f.vectors[i].Clone(), nil
}

// Stamp returns replica i's version stamp.
func (f *Figure3System) Stamp(i int) (core.Stamp, error) {
	if i < 0 || i >= len(f.stamps) {
		return core.Stamp{}, fmt.Errorf("sim: replica %d out of range", i)
	}
	return f.stamps[i], nil
}

// Update records an update at replica i in both systems.
func (f *Figure3System) Update(i int) error {
	if i < 0 || i >= len(f.vectors) {
		return fmt.Errorf("sim: replica %d out of range", i)
	}
	updated, err := f.vectors[i].Update(i)
	if err != nil {
		return err
	}
	f.vectors[i] = updated
	f.stamps[i] = f.stamps[i].Update()
	return nil
}

// Sync synchronizes replicas i and j in both systems: vector join on the
// left, join-then-fork (Figure 3's encoding) on the right.
func (f *Figure3System) Sync(i, j int) error {
	if i < 0 || i >= len(f.vectors) || j < 0 || j >= len(f.vectors) || i == j {
		return fmt.Errorf("sim: invalid sync pair (%d,%d)", i, j)
	}
	merged, err := vv.Join(f.vectors[i], f.vectors[j])
	if err != nil {
		return err
	}
	f.vectors[i], f.vectors[j] = merged.Clone(), merged.Clone()

	si, sj, err := core.Sync(f.stamps[i], f.stamps[j])
	if err != nil {
		return err
	}
	f.stamps[i], f.stamps[j] = si, sj
	return nil
}

// CheckAgreement verifies that the two systems induce the same ordering on
// every pair of replicas, and that the stamp frontier satisfies I1–I3. A
// non-nil error means the Figure 3 equivalence failed.
func (f *Figure3System) CheckAgreement() error {
	if err := core.CheckFrontier(f.stamps); err != nil {
		return err
	}
	for i := 0; i < len(f.vectors); i++ {
		for j := i + 1; j < len(f.vectors); j++ {
			vo, err := vv.Compare(f.vectors[i], f.vectors[j])
			if err != nil {
				return err
			}
			so := core.Compare(f.stamps[i], f.stamps[j])
			if Relation(vo) != Relation(so) {
				return fmt.Errorf(
					"sim: figure-3 disagreement on (%d,%d): vectors %v (%v vs %v), stamps %v (%v vs %v)",
					i, j, vo, f.vectors[i], f.vectors[j], so, f.stamps[i], f.stamps[j])
			}
		}
	}
	return nil
}

// MaxStampSize returns the largest encoded stamp in bytes, for the E3/E5
// observation that fixed-frontier operation keeps stamps bounded.
func (f *Figure3System) MaxStampSize() int {
	maxSize := 0
	for _, s := range f.stamps {
		if sz := s.EncodedSize(); sz > maxSize {
			maxSize = sz
		}
	}
	return maxSize
}

// VectorSize returns the constant encoded size of each fixed vector
// (8 bytes per counter).
func (f *Figure3System) VectorSize() int { return 8 * len(f.vectors) }

package antientropy

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"versionstamp/internal/kvstore"
)

// countingListener wraps a net.Listener and counts accepted connections —
// the server-side witness that pooled rounds reuse sessions instead of
// dialing per round.
type countingListener struct {
	net.Listener
	accepts atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err == nil {
		l.accepts.Add(1)
	}
	return conn, err
}

// startCountedServer serves r on a counting listener, optionally binding a
// fixed address (for restart tests).
func startCountedServer(t *testing.T, r *kvstore.Replica, addr string) (*Server, *countingListener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	cl := &countingListener{Listener: ln}
	srv := NewServer(r, nil)
	bound, err := srv.Serve(cl)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	return srv, cl, bound
}

// TestPoolReusesConnections is the acceptance check for the pool: a
// 50-round gossip session between two nodes must perform at most 2 TCP
// dials to the peer — and with a healthy server it is exactly 1, asserted
// on both the client-side dial counter and the server-side accept counter.
func TestPoolReusesConnections(t *testing.T) {
	server, client := clonedPair(64)
	srv, cl, addr := startCountedServer(t, server, "127.0.0.1:0")
	t.Cleanup(func() { _ = srv.Close() })

	p := NewPool()
	defer p.Close()
	for round := 0; round < 50; round++ {
		if round%10 == 1 {
			client.Put(fmt.Sprintf("key-%04d", round), []byte(fmt.Sprintf("edit-%d", round)))
		}
		if _, err := p.SyncWith(addr, client); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	requireConverged(t, server, client)
	if got := p.Dials(); got > 2 {
		t.Errorf("50 rounds performed %d dials, want <= 2", got)
	}
	if got := cl.accepts.Load(); got != 1 {
		t.Errorf("server accepted %d connections over 50 rounds, want 1", got)
	}
}

// TestPoolRedialsAfterServerRestart kills the server mid-session and
// restarts it on the same port: the next pooled round must succeed through
// exactly one transparent redial.
func TestPoolRedialsAfterServerRestart(t *testing.T) {
	server, client := clonedPair(32)
	srv1, cl1, addr := startCountedServer(t, server, "127.0.0.1:0")

	p := NewPool()
	defer p.Close()
	for i := 0; i < 5; i++ {
		if _, err := p.SyncWith(addr, client); err != nil {
			t.Fatalf("pre-restart round %d: %v", i, err)
		}
	}
	if err := srv1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Same replica, same port, new server process (as far as TCP can tell).
	srv2, cl2, _ := startCountedServer(t, server, addr)
	t.Cleanup(func() { _ = srv2.Close() })

	client.Put("post-restart", []byte("x"))
	for i := 0; i < 5; i++ {
		if _, err := p.SyncWith(addr, client); err != nil {
			t.Fatalf("post-restart round %d: %v", i, err)
		}
	}
	requireConverged(t, server, client)
	if got := p.Dials(); got != 2 {
		t.Errorf("Dials = %d across a restart, want 2 (one per server generation)", got)
	}
	if a1, a2 := cl1.accepts.Load(), cl2.accepts.Load(); a1 != 1 || a2 != 1 {
		t.Errorf("accepts = %d + %d, want 1 + 1", a1, a2)
	}
}

// TestPoolIdleTimeoutRedials ages the pooled session past the idle
// threshold: the pool must retire it and dial fresh instead of trusting a
// connection the server may have dropped.
func TestPoolIdleTimeoutRedials(t *testing.T) {
	server, client := clonedPair(8)
	_, addr := startServer(t, server, nil)

	p := NewPool()
	p.idle = 50 * time.Millisecond
	defer p.Close()
	if _, err := p.SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if _, err := p.SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	if got := p.Dials(); got != 2 {
		t.Errorf("Dials = %d, want 2 (idle session retired)", got)
	}
}

// TestPoolConcurrentRounds hammers one pool from many goroutines across two
// peers: rounds to one peer serialize over its session, rounds to different
// peers proceed independently, and nothing races (run with -race).
func TestPoolConcurrentRounds(t *testing.T) {
	serverA, client := clonedPair(32)
	serverB := serverA.Clone("server-b")
	_, addrA := startServer(t, serverA, nil)
	_, addrB := startServer(t, serverB, nil)

	p := NewPool()
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addr := addrA
			if g%2 == 1 {
				addr = addrB
			}
			for i := 0; i < 5; i++ {
				if _, err := p.SyncWith(addr, client); err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := p.Dials(); got != 2 {
		t.Errorf("Dials = %d for 2 peers, want 2", got)
	}
}

// cutProxy relays TCP between a pooled client and a real server, parsing
// the client's v3 frame stream. When armed it blackholes the server's reply
// and drops both connections right after forwarding the client's entries
// frame — the fault where the request was fully written, the server (may
// have) applied it, and the session died mid-reply.
type cutProxy struct {
	target string
	armed  atomic.Bool
	cuts   atomic.Int64
}

func startCutProxy(t *testing.T, target string) (*cutProxy, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	p := &cutProxy{target: target}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go p.handle(conn)
		}
	}()
	return p, ln.Addr().String()
}

func (p *cutProxy) handle(client net.Conn) {
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		_ = client.Close()
		return
	}
	defer client.Close()
	defer server.Close()
	var blackhole atomic.Bool
	go func() { // server -> client, discarded once the cut is in progress
		buf := make([]byte, 4096)
		for {
			n, err := server.Read(buf)
			if n > 0 && !blackhole.Load() {
				if _, werr := client.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	br := bufio.NewReader(client)
	version, err := br.ReadByte()
	if err != nil {
		return
	}
	if _, err := server.Write([]byte{version}); err != nil {
		return
	}
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		cut := p.armed.Load() && len(body) > 0 && body[0] == kindEntries
		if cut {
			blackhole.Store(true) // the reply must never reach the client
		}
		frame := binary.AppendUvarint(make([]byte, 0, 10+len(body)), n)
		frame = append(frame, body...)
		if _, err := server.Write(frame); err != nil {
			return
		}
		if cut {
			p.cuts.Add(1)
			time.Sleep(100 * time.Millisecond) // let the server consume and apply
			return                             // deferred closes kill the session mid-reply
		}
	}
}

// TestPoolNoRetryAfterEntriesFrame is the regression test for the
// double-apply retry bug: a round whose entries frame was written on a
// previously working session, and which then died before the reply, must
// surface ErrRetryUnsafe instead of being transparently re-run on a fresh
// dial — the server may have applied the entries, and re-sending them
// would reconcile forked copies as causally unrelated.
func TestPoolNoRetryAfterEntriesFrame(t *testing.T) {
	server, client := clonedPair(32)
	srv, _, addr := startCountedServer(t, server, "127.0.0.1:0")
	t.Cleanup(func() { _ = srv.Close() })
	proxy, proxyAddr := startCutProxy(t, addr)

	p := NewPool()
	defer p.Close()
	// A healthy round first: the retry path only opens for proven sessions.
	if _, err := p.SyncWith(proxyAddr, client); err != nil {
		t.Fatalf("healthy round: %v", err)
	}

	client.Put("fresh-key", []byte("payload"))
	proxy.armed.Store(true)
	_, err := p.SyncWith(proxyAddr, client)
	if err == nil {
		t.Fatal("round died after its entries frame but reported success")
	}
	if !errors.Is(err, ErrRetryUnsafe) {
		t.Fatalf("err = %v, want ErrRetryUnsafe", err)
	}
	if got := p.Dials(); got != 1 {
		t.Fatalf("pool redialed a non-retriable round: %d dials", got)
	}
	if got := proxy.cuts.Load(); got != 1 {
		t.Fatalf("proxy cut %d rounds, want 1", got)
	}

	// Recovery is the next round's job: it reconciles from whatever state
	// the server actually reached, then the pair is fully converged.
	proxy.armed.Store(false)
	if _, err := p.SyncWith(proxyAddr, client); err != nil {
		t.Fatalf("recovery round: %v", err)
	}
	requireConverged(t, server, client)
	res, err := p.SyncWith(proxyAddr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.StripesSkipped != client.Shards() {
		t.Errorf("post-recovery round not converged: %+v", res)
	}
}

// TestPoolSyncWithRevivedDurableServer is the acceptance scenario for the
// durable backend: a WAL-backed server killed mid-write (no Close, no
// checkpoint) reopens from its log and a v3 round against an untouched
// peer converges — the revived stamps slot straight back into the
// protocol, so the follow-up round is summary-only.
func TestPoolSyncWithRevivedDurableServer(t *testing.T) {
	dir := t.TempDir()
	server, err := kvstore.Open(dir, kvstore.Options{Label: "durable", Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		server.Put(fmt.Sprintf("key-%04d", i), []byte("seed"))
	}
	client := server.Clone("client")
	server.Put("key-0001", []byte("server-edit")) // diverge both sides
	client.Put("client-only", []byte("fresh"))
	if err := server.PersistErr(); err != nil {
		t.Fatal(err)
	}
	if err := server.Abandon(); err != nil { // kill: no checkpoint, log only
		t.Fatal(err)
	}

	// Restart: reopen the directory with no Close behind it.
	revived, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { _ = revived.Close() })
	_, addr := startServer(t, revived, nil)

	p := NewPool()
	defer p.Close()
	if _, err := p.SyncWith(addr, client); err != nil {
		t.Fatalf("round against revived server: %v", err)
	}
	requireConverged(t, revived, client)
	res, err := p.SyncWith(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.StripesSkipped != client.Shards() {
		t.Errorf("revived pair not summary-converged: %+v", res)
	}
}

// TestPoolCloseRacesRounds stresses Close against in-flight rounds: no data
// race (run with -race), and no connection may survive the sweep — a round
// that slipped past Close must not leave a freshly dialed session leaked.
func TestPoolCloseRacesRounds(t *testing.T) {
	server, client := clonedPair(16)
	_, addr := startServer(t, server, nil)
	for i := 0; i < 20; i++ {
		p := NewPool()
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < 3; r++ {
					if _, err := p.SyncWith(addr, client); err != nil {
						return // closed mid-round: expected
					}
				}
			}()
		}
		_ = p.Close()
		wg.Wait()
		// After Close returned and every round unwound, the pool must hold
		// nothing (conns map nilled, sessions swept).
		p.mu.Lock()
		if p.conns != nil {
			t.Fatal("conns map survived Close")
		}
		p.mu.Unlock()
	}
}

// TestPoolClosedRejectsRounds: a closed pool fails fast instead of dialing.
func TestPoolClosedRejectsRounds(t *testing.T) {
	server, client := clonedPair(4)
	_, addr := startServer(t, server, nil)
	p := NewPool()
	if _, err := p.SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	_ = p.Close()
	if _, err := p.SyncWith(addr, client); err == nil {
		t.Error("round on a closed pool succeeded")
	}
}

package antientropy

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/kvstore"
)

// Protocol v2: two-phase delta rounds over length-prefixed binary frames.
// See the package comment for the frame grammar. All multi-byte integers
// are uvarints; stamps use the compact trie-structural format
// (encoding.MarshalCompact), keys and entries the length-prefixed codec of
// internal/encoding.

// deltaProtocolVersion is the first byte of a v2 connection. It can never
// collide with '{', the first byte of a v1 JSON request.
const deltaProtocolVersion = 0x02

// Frame kinds.
const (
	kindDigest  = 0x01 // client: scope + digest of its in-scope keys
	kindNeed    = 0x02 // server: keys whose full copies it needs
	kindEntries = 0x03 // client: the requested full entries
	kindResult  = 0x04 // server: sync counters + entries the client adopts
	kindError   = 0x7F // server: error text; terminates the round
)

// maxFrame bounds a single frame body. Entries frames carry full values, so
// the cap is generous; a corrupt length prefix still cannot force an
// unbounded allocation.
const maxFrame = 1 << 30

// writeFrame sends one [uvarint length][body] frame as a single write, so a
// frame never splits into a header-only TCP segment.
func writeFrame(w io.Writer, body []byte) error {
	buf := binary.AppendUvarint(make([]byte, 0, len(body)+binary.MaxVarintLen64), uint64(len(body)))
	buf = append(buf, body...)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame body. The body buffer grows with the bytes that
// actually arrive, so a length prefix near maxFrame cannot pin memory the
// peer never sends.
func readFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, errors.New("empty frame")
	}
	if n > maxFrame {
		return nil, fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, br, int64(n)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// capCount bounds a wire-supplied element count by the bytes actually
// present (every encoded element consumes at least one byte), so a corrupt
// or hostile count prefix cannot force a huge preallocation.
func capCount(count uint64, body []byte) int {
	if count > uint64(len(body)) {
		return len(body)
	}
	return int(count)
}

// appendString appends a uvarint-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readString consumes a uvarint-prefixed string from data.
func readString(data []byte) (string, int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data)-used) < n {
		return "", 0, errors.New("bad string")
	}
	return string(data[used : used+int(n)]), used + int(n), nil
}

// encodeDigestFrame builds the kindDigest body: kind, of, idx, count,
// digests.
func encodeDigestFrame(idx, of int, digest []encoding.Digest) []byte {
	body := []byte{kindDigest}
	body = binary.AppendUvarint(body, uint64(of))
	body = binary.AppendUvarint(body, uint64(idx))
	body = binary.AppendUvarint(body, uint64(len(digest)))
	for _, d := range digest {
		body = encoding.AppendDigest(body, d)
	}
	return body
}

// encodeResultFrame builds the kindResult body: kind, four counters,
// conflicts, reply entries.
func encodeResultFrame(res kvstore.SyncResult, reply []encoding.Entry) []byte {
	body := []byte{kindResult}
	body = binary.AppendUvarint(body, uint64(res.Transferred))
	body = binary.AppendUvarint(body, uint64(res.Reconciled))
	body = binary.AppendUvarint(body, uint64(res.Merged))
	body = binary.AppendUvarint(body, uint64(res.Pruned))
	body = binary.AppendUvarint(body, uint64(len(res.Conflicts)))
	for _, k := range res.Conflicts {
		body = appendString(body, k)
	}
	body = binary.AppendUvarint(body, uint64(len(reply)))
	for _, e := range reply {
		body = encoding.AppendEntry(body, e)
	}
	return body
}

// expectKind strips and checks the kind byte of a frame body.
func expectKind(body []byte, kind byte) ([]byte, error) {
	if body[0] == kindError {
		msg, _, err := readString(body[1:])
		if err != nil {
			return nil, fmt.Errorf("%w: unreadable error frame", ErrProtocol)
		}
		return nil, fmt.Errorf("%w: %s", ErrProtocol, msg)
	}
	if body[0] != kind {
		return nil, fmt.Errorf("%w: frame kind 0x%02x, want 0x%02x", ErrProtocol, body[0], kind)
	}
	return body[1:], nil
}

// handleDelta serves one v2 connection: digest in, need out, entries in,
// result out. A scoped round locks only the matching stripe of the server's
// store during the apply; the digest comparison takes read locks only.
func (s *Server) handleDelta(conn net.Conn, br *bufio.Reader) {
	fail := func(err error) {
		body := appendString([]byte{kindError}, err.Error())
		_ = writeFrame(conn, body)
	}
	if _, err := br.Discard(1); err != nil { // the version byte, already peeked
		return
	}

	body, err := readFrame(br)
	if err != nil {
		fail(fmt.Errorf("bad digest frame: %v", err))
		return
	}
	body, err = expectKind(body, kindDigest)
	if err != nil {
		fail(err)
		return
	}
	of64, used := binary.Uvarint(body)
	if used <= 0 {
		fail(errors.New("bad scope"))
		return
	}
	body = body[used:]
	idx64, used := binary.Uvarint(body)
	if used <= 0 {
		fail(errors.New("bad scope"))
		return
	}
	body = body[used:]
	of, idx := int(of64), int(idx64)
	count, used := binary.Uvarint(body)
	if used <= 0 {
		fail(errors.New("bad digest count"))
		return
	}
	body = body[used:]
	digest := make([]encoding.Digest, 0, capCount(count, body))
	for i := uint64(0); i < count; i++ {
		d, n, err := encoding.DecodeDigest(body)
		if err != nil {
			fail(err)
			return
		}
		body = body[n:]
		digest = append(digest, d)
	}

	diff, err := s.replica.DiffAgainst(digest, idx, of)
	if err != nil {
		fail(err)
		return
	}
	need := []byte{kindNeed}
	need = binary.AppendUvarint(need, uint64(len(diff.Need)))
	for _, k := range diff.Need {
		need = appendString(need, k)
	}
	if err := writeFrame(conn, need); err != nil {
		return
	}

	body, err = readFrame(br)
	if err != nil {
		fail(fmt.Errorf("bad entries frame: %v", err))
		return
	}
	body, err = expectKind(body, kindEntries)
	if err != nil {
		fail(err)
		return
	}
	count, used = binary.Uvarint(body)
	if used <= 0 {
		fail(errors.New("bad entry count"))
		return
	}
	body = body[used:]
	entries := make([]encoding.Entry, 0, capCount(count, body))
	for i := uint64(0); i < count; i++ {
		e, n, err := encoding.DecodeEntry(body)
		if err != nil {
			fail(err)
			return
		}
		body = body[n:]
		entries = append(entries, e)
	}

	reply, res, err := s.replica.ApplyDelta(digest, entries, s.resolve, idx, of)
	if err != nil {
		fail(err)
		return
	}
	_ = writeFrame(conn, encodeResultFrame(res, reply))
}

// SyncWithDelta performs one two-phase delta anti-entropy round between the
// local replica and the server at addr, covering the whole keyspace: the
// local digest travels first, stamp comparison prunes every equivalent key
// on the server, and only non-equivalent copies move — in either direction.
// Two converged replicas exchange digests and nothing else. The returned
// SyncResult carries the server's reconciliation counters plus the wire
// bytes this client saw.
func SyncWithDelta(addr string, local *kvstore.Replica) (kvstore.SyncResult, error) {
	digest := local.Digest()
	return syncDelta(addr, local, digest, 0, 0, defaultTimeout)
}

// SyncWithDeltaSharded performs one delta round per local stripe, all rounds
// in flight concurrently — the delta analogue of SyncWithSharded: per-stripe
// digests, per-stripe pruning, and the server locks only the matching stripe
// of its store during each apply.
func SyncWithDeltaSharded(addr string, local *kvstore.Replica) (kvstore.SyncResult, error) {
	n := local.Shards()
	return syncAllShards(n, "delta shard", func(i int) (kvstore.SyncResult, error) {
		digest, err := local.DigestShard(i)
		if err != nil {
			return kvstore.SyncResult{}, err
		}
		return syncDelta(addr, local, digest, i, n, defaultTimeout)
	})
}

// syncDelta runs one scoped delta round: digest out, need in, entries out,
// result in, reply applied.
func syncDelta(addr string, local *kvstore.Replica, digest []encoding.Digest,
	idx, of int, timeout time.Duration) (kvstore.SyncResult, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: dial %s: %w", addr, err)
	}
	conn := &countingConn{Conn: raw}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	br := bufio.NewReader(conn)

	// sent records the exact stamp shipped per key, so the reply is applied
	// only over copies that did not move while the round was in flight.
	sent := make(map[string]core.Stamp, len(digest))
	for _, d := range digest {
		sent[d.Key] = d.Stamp
	}

	// The version byte and the digest frame travel in one write: one
	// segment opens the round.
	frame := encodeDigestFrame(idx, of, digest)
	opening := binary.AppendUvarint([]byte{deltaProtocolVersion}, uint64(len(frame)))
	opening = append(opening, frame...)
	if _, err := conn.Write(opening); err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: send digest: %w", err)
	}

	body, err := readFrame(br)
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: receive: %w", err)
	}
	body, err = expectKind(body, kindNeed)
	if err != nil {
		return kvstore.SyncResult{}, err
	}
	count, used := binary.Uvarint(body)
	if used <= 0 {
		return kvstore.SyncResult{}, fmt.Errorf("%w: bad need count", ErrProtocol)
	}
	body = body[used:]
	entries := []byte{kindEntries}
	entryBodies := make([]byte, 0, 64)
	sentEntries := uint64(0)
	for i := uint64(0); i < count; i++ {
		k, n, err := readString(body)
		if err != nil {
			return kvstore.SyncResult{}, fmt.Errorf("%w: bad need key", ErrProtocol)
		}
		body = body[n:]
		v, ok := local.Version(k)
		if !ok {
			// The key vanished from the map since the digest (cannot happen
			// through normal writes — tombstones persist — but Adopt can
			// drop keys). Skip it; the next round reconciles.
			delete(sent, k)
			continue
		}
		sent[k] = v.Stamp
		entryBodies = encoding.AppendEntry(entryBodies, encoding.Entry{
			Key: k, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp,
		})
		sentEntries++
	}
	entries = binary.AppendUvarint(entries, sentEntries)
	entries = append(entries, entryBodies...)
	if err := writeFrame(conn, entries); err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: send entries: %w", err)
	}

	body, err = readFrame(br)
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: receive: %w", err)
	}
	body, err = expectKind(body, kindResult)
	if err != nil {
		return kvstore.SyncResult{}, err
	}
	res, reply, err := decodeResultFrame(body)
	if err != nil {
		return kvstore.SyncResult{}, err
	}
	if _, err := local.ApplyDeltaReply(reply, sent, idx, of); err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: apply delta reply: %w", err)
	}
	res.BytesSent = conn.sent.Load()
	res.BytesReceived = conn.recv.Load()
	return res, nil
}

// decodeResultFrame parses a kindResult body (kind byte already stripped).
func decodeResultFrame(body []byte) (kvstore.SyncResult, []encoding.Entry, error) {
	var res kvstore.SyncResult
	counters := []*int{&res.Transferred, &res.Reconciled, &res.Merged, &res.Pruned}
	for _, c := range counters {
		v, used := binary.Uvarint(body)
		if used <= 0 {
			return res, nil, fmt.Errorf("%w: bad result counters", ErrProtocol)
		}
		*c = int(v)
		body = body[used:]
	}
	nConf, used := binary.Uvarint(body)
	if used <= 0 {
		return res, nil, fmt.Errorf("%w: bad conflict count", ErrProtocol)
	}
	body = body[used:]
	for i := uint64(0); i < nConf; i++ {
		k, n, err := readString(body)
		if err != nil {
			return res, nil, fmt.Errorf("%w: bad conflict key", ErrProtocol)
		}
		body = body[n:]
		res.Conflicts = append(res.Conflicts, k)
	}
	nEntries, used := binary.Uvarint(body)
	if used <= 0 {
		return res, nil, fmt.Errorf("%w: bad reply entry count", ErrProtocol)
	}
	body = body[used:]
	reply := make([]encoding.Entry, 0, capCount(nEntries, body))
	for i := uint64(0); i < nEntries; i++ {
		e, n, err := encoding.DecodeEntry(body)
		if err != nil {
			return res, nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		body = body[n:]
		reply = append(reply, e)
	}
	return res, reply, nil
}

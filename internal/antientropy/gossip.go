package antientropy

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"versionstamp/internal/kvstore"
)

// DefaultFanout is how many peers each node contacts per gossip round.
const DefaultFanout = 2

// Cluster manages a set of replicas that gossip over TCP: each node runs a
// Server, and every gossip round each node pushes/pulls with a handful of
// random peers — the opportunistic, coordinator-free communication pattern
// of weakly connected systems, at epidemic fan-out instead of one pair at a
// time. Pairwise exchanges are two-phase delta rounds: digests travel first
// and stamp comparison prunes every equivalent key from the wire, so a
// converged cluster gossips for the price of its digests. Partitions can be
// injected to model the paper's operating environment: gossip simply never
// selects pairs that cannot reach each other, and convergence resumes when
// the partition heals.
type Cluster struct {
	replicas []*kvstore.Replica
	servers  []*Server
	addrs    []string
	// pools holds one connection pool per node: node i's exchanges reuse
	// its persistent v3 sessions, so a long gossip run dials each (i, j)
	// pair once instead of once per round.
	pools []*Pool
	// group assigns each node to a partition group; nodes in different
	// groups cannot gossip. All zero = fully connected.
	group []int
	// fanout is the per-node peer count of GossipUntilConverged rounds.
	fanout int
	rng    *rand.Rand
	// peerScratch and taskScratch are reused across GossipRound calls so a
	// steady gossip loop does not allocate fresh selection slices per node
	// per round. GossipRound is single-threaded in its selection phase
	// (documented there), so plain fields suffice.
	peerScratch []int
	taskScratch []gossipTask
	// hot[i][j] records whether node i's last exchange with node j found
	// divergence (data moved or conflicted). Peer selection prefers hot
	// peers — convergence-aware choice: keep pulling from whoever last had
	// news instead of re-verifying converged pairs. Written by the exchange
	// workers under the round's result lock, read only by the
	// single-threaded selection phase of the next round.
	hot [][]bool
}

// NewCluster starts n replicas with servers on loopback ports. The resolver
// is shared by all servers. Close the cluster to release the listeners.
func NewCluster(n int, resolve kvstore.Resolver, seed int64) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("antientropy: cluster needs >= 2 nodes, got %d", n)
	}
	c := &Cluster{
		group:  make([]int, n),
		fanout: DefaultFanout,
		rng:    rand.New(rand.NewSource(seed)),
		hot:    make([][]bool, n),
	}
	for i := range c.hot {
		c.hot[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		r := kvstore.NewReplica(fmt.Sprintf("node-%d", i))
		srv := NewServer(r, resolve)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.replicas = append(c.replicas, r)
		c.servers = append(c.servers, srv)
		c.addrs = append(c.addrs, addr)
		c.pools = append(c.pools, NewPool())
	}
	return c, nil
}

// Close drops every node's pooled sessions and shuts down every server.
func (c *Cluster) Close() error {
	for _, p := range c.pools {
		_ = p.Close()
	}
	var firstErr error
	for _, s := range c.servers {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Dials reports how many TCP connections the cluster's nodes have opened in
// total — with pooled sessions this stays O(pairs) however many rounds run.
func (c *Cluster) Dials() int64 {
	var n int64
	for _, p := range c.pools {
		n += p.Dials()
	}
	return n
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.replicas) }

// Replica returns node i's store for reads and writes.
func (c *Cluster) Replica(i int) (*kvstore.Replica, error) {
	if i < 0 || i >= len(c.replicas) {
		return nil, fmt.Errorf("antientropy: node %d out of range", i)
	}
	return c.replicas[i], nil
}

// Partition assigns nodes to connectivity groups; nodes gossip only within
// their group. Pass all zeros (or call Heal) to reconnect everyone.
func (c *Cluster) Partition(groups []int) error {
	if len(groups) != len(c.replicas) {
		return fmt.Errorf("antientropy: %d group assignments for %d nodes",
			len(groups), len(c.replicas))
	}
	copy(c.group, groups)
	return nil
}

// Heal removes all partitions.
func (c *Cluster) Heal() {
	for i := range c.group {
		c.group[i] = 0
	}
}

// SetFanout changes how many peers each node contacts per
// GossipUntilConverged round (minimum 1).
func (c *Cluster) SetFanout(k int) {
	if k < 1 {
		k = 1
	}
	c.fanout = k
}

// gossipTask is one scheduled push/pull exchange: node i initiates a delta
// round against node j's server.
type gossipTask struct{ i, j int }

// GossipRound performs one fan-out round: every node initiates two-phase
// delta exchanges with up to k distinct random peers in its partition group,
// and all exchanges run concurrently through a bounded worker pool. It
// returns how many exchanges ran. Nodes with no reachable peer are skipped —
// gossip does not fail, it just cannot happen, exactly like mobile nodes
// out of range.
//
// Concurrent exchanges touching the same replica are safe: the responder
// reconciles under its stripe locks, and an initiator installs a round's
// outcome only over copies that did not move while the round was in flight.
func (c *Cluster) GossipRound(k int) (int, error) {
	// Peer selection stays single-threaded (one shared rng, deterministic
	// under a fixed seed); only the network exchanges fan out. Both
	// selection slices are cluster-owned scratch reused across rounds.
	tasks := c.taskScratch[:0]
	for i := range c.replicas {
		peers := c.selectPeers(i, k)
		for _, j := range peers {
			tasks = append(tasks, gossipTask{i: i, j: j})
		}
		c.peerScratch = peers
	}
	c.taskScratch = tasks
	return c.runGossip(tasks)
}

// hotBias is the per-round probability of applying the hot-first partition
// in selectPeers; the complementary rounds select uniformly. Biased-but-not-
// deterministic choice (ε-greedy) keeps convergence fast where divergence
// was last seen while guaranteeing every reachable pair is still selected
// with positive probability each round — a deterministic hot preference
// could starve cold-but-divergent pairs under sustained churn.
const hotBias = 3.0 / 4

// selectPeers picks up to k gossip partners for node i: a uniform shuffle of
// the reachable peers and, on hotBias of the rounds, a partition that moves
// peers whose previous exchange with i reported divergence to the front — a
// node chasing known divergence converges in fewer rounds than one
// re-verifying converged pairs. The shuffle keeps choice within (and beyond)
// the hot set random, and the uniform rounds keep cold pairs live. The
// returned slice is the cluster's scratch.
func (c *Cluster) selectPeers(i, k int) []int {
	peers := c.peerScratch[:0]
	for j := range c.replicas {
		if j != i && c.group[i] == c.group[j] {
			peers = append(peers, j)
		}
	}
	c.rng.Shuffle(len(peers), func(a, b int) { peers[a], peers[b] = peers[b], peers[a] })
	if len(peers) > k {
		if c.rng.Float64() < hotBias {
			front := 0
			for x := 0; x < len(peers); x++ {
				if c.hot[i][peers[x]] {
					peers[front], peers[x] = peers[x], peers[front]
					front++
				}
			}
		}
		peers = peers[:k]
	}
	return peers
}

// runGossip executes exchanges through a worker pool bounded by GOMAXPROCS.
func (c *Cluster) runGossip(tasks []gossipTask) (int, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var (
		mu       sync.Mutex
		ran      int
		firstErr error
		wg       sync.WaitGroup
	)
	ch := make(chan gossipTask)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				// Every exchange is a hierarchical (v3) round over the
				// initiator's pooled session to the peer: per-stripe
				// summaries prune converged stripes before any digest
				// travels, and the pool means round N reuses round 1's
				// connection instead of dialing again.
				res, err := c.pools[t.i].SyncWith(c.addrs[t.j], c.replicas[t.i])
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("antientropy: gossip %d->%d: %w", t.i, t.j, err)
					}
				} else {
					ran++
					// Record whether the exchange found divergence, feeding
					// the next round's convergence-aware peer choice. The
					// relation is symmetric: a round reconciles both sides.
					diverged := res.Transferred+res.Reconciled+res.Merged+len(res.Conflicts) > 0
					c.hot[t.i][t.j] = diverged
					c.hot[t.j][t.i] = diverged
				}
				mu.Unlock()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return ran, firstErr
}

// ErrNotConverged is returned by GossipUntilConverged when the budget runs
// out before all reachable nodes agree.
var ErrNotConverged = errors.New("antientropy: cluster did not converge")

// GossipUntilConverged runs fan-out gossip rounds until every pair of nodes
// in the same partition group stores identical live contents, or maxRounds
// is exhausted. It returns the number of rounds used.
func (c *Cluster) GossipUntilConverged(maxRounds int) (int, error) {
	for round := 1; round <= maxRounds; round++ {
		if _, err := c.GossipRound(c.fanout); err != nil {
			return round, err
		}
		if c.converged() {
			return round, nil
		}
	}
	return maxRounds, ErrNotConverged
}

// converged reports whether all same-group pairs agree on live contents.
func (c *Cluster) converged() bool {
	for i := 0; i < len(c.replicas); i++ {
		for j := i + 1; j < len(c.replicas); j++ {
			if c.group[i] != c.group[j] {
				continue
			}
			if !sameContents(c.replicas[i], c.replicas[j]) {
				return false
			}
		}
	}
	return true
}

func sameContents(a, b *kvstore.Replica) bool {
	keys := map[string]bool{}
	for _, k := range a.Keys() {
		keys[k] = true
	}
	for _, k := range b.Keys() {
		keys[k] = true
	}
	for k := range keys {
		va, okA := a.Get(k)
		vb, okB := b.Get(k)
		if okA != okB || string(va) != string(vb) {
			return false
		}
	}
	return true
}

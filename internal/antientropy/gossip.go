package antientropy

import (
	"errors"
	"fmt"
	"math/rand"

	"versionstamp/internal/kvstore"
)

// Cluster manages a set of replicas that gossip over TCP: each node runs a
// Server, and gossip rounds pick random pairs to synchronize — the
// opportunistic, coordinator-free communication pattern of weakly connected
// systems. Partitions can be injected to model the paper's operating
// environment: gossip simply never selects pairs that cannot reach each
// other, and convergence resumes when the partition heals.
type Cluster struct {
	replicas []*kvstore.Replica
	servers  []*Server
	addrs    []string
	// group assigns each node to a partition group; nodes in different
	// groups cannot gossip. All zero = fully connected.
	group []int
	rng   *rand.Rand
}

// NewCluster starts n replicas with servers on loopback ports. The resolver
// is shared by all servers. Close the cluster to release the listeners.
func NewCluster(n int, resolve kvstore.Resolver, seed int64) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("antientropy: cluster needs >= 2 nodes, got %d", n)
	}
	c := &Cluster{
		group: make([]int, n),
		rng:   rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < n; i++ {
		r := kvstore.NewReplica(fmt.Sprintf("node-%d", i))
		srv := NewServer(r, resolve)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.replicas = append(c.replicas, r)
		c.servers = append(c.servers, srv)
		c.addrs = append(c.addrs, addr)
	}
	return c, nil
}

// Close shuts down every server.
func (c *Cluster) Close() error {
	var firstErr error
	for _, s := range c.servers {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.replicas) }

// Replica returns node i's store for reads and writes.
func (c *Cluster) Replica(i int) (*kvstore.Replica, error) {
	if i < 0 || i >= len(c.replicas) {
		return nil, fmt.Errorf("antientropy: node %d out of range", i)
	}
	return c.replicas[i], nil
}

// Partition assigns nodes to connectivity groups; nodes gossip only within
// their group. Pass all zeros (or call Heal) to reconnect everyone.
func (c *Cluster) Partition(groups []int) error {
	if len(groups) != len(c.replicas) {
		return fmt.Errorf("antientropy: %d group assignments for %d nodes",
			len(groups), len(c.replicas))
	}
	copy(c.group, groups)
	return nil
}

// Heal removes all partitions.
func (c *Cluster) Heal() {
	for i := range c.group {
		c.group[i] = 0
	}
}

// GossipRound performs up to `pairs` random pairwise syncs among currently
// reachable pairs, returning how many syncs ran. Unreachable pairs (across
// partition groups) are skipped — gossip does not fail, it just cannot
// happen, exactly like mobile nodes out of range.
func (c *Cluster) GossipRound(pairs int) (int, error) {
	ran := 0
	for p := 0; p < pairs; p++ {
		i := c.rng.Intn(len(c.replicas))
		j := c.rng.Intn(len(c.replicas) - 1)
		if j >= i {
			j++
		}
		if c.group[i] != c.group[j] {
			continue // partitioned pair: no contact
		}
		// Heavy keyspaces gossip per shard: the pair exchanges and merges
		// stripe deltas concurrently instead of serializing everything in
		// one request. Small keyspaces stick to one round trip — Shards()
		// connections per pair would cost more than they parallelize.
		r := c.replicas[i]
		sync := SyncWith
		if r.Len() >= 8*r.Shards() {
			sync = SyncWithSharded
		}
		if _, err := sync(c.addrs[j], r); err != nil {
			return ran, fmt.Errorf("antientropy: gossip %d->%d: %w", i, j, err)
		}
		ran++
	}
	return ran, nil
}

// ErrNotConverged is returned by GossipUntilConverged when the budget runs
// out before all reachable nodes agree.
var ErrNotConverged = errors.New("antientropy: cluster did not converge")

// GossipUntilConverged runs gossip rounds until every pair of nodes in the
// same partition group stores identical live contents, or maxRounds is
// exhausted. It returns the number of rounds used.
func (c *Cluster) GossipUntilConverged(maxRounds int) (int, error) {
	for round := 1; round <= maxRounds; round++ {
		if _, err := c.GossipRound(len(c.replicas)); err != nil {
			return round, err
		}
		if c.converged() {
			return round, nil
		}
	}
	return maxRounds, ErrNotConverged
}

// converged reports whether all same-group pairs agree on live contents.
func (c *Cluster) converged() bool {
	for i := 0; i < len(c.replicas); i++ {
		for j := i + 1; j < len(c.replicas); j++ {
			if c.group[i] != c.group[j] {
				continue
			}
			if !sameContents(c.replicas[i], c.replicas[j]) {
				return false
			}
		}
	}
	return true
}

func sameContents(a, b *kvstore.Replica) bool {
	keys := map[string]bool{}
	for _, k := range a.Keys() {
		keys[k] = true
	}
	for _, k := range b.Keys() {
		keys[k] = true
	}
	for k := range keys {
		va, okA := a.Get(k)
		vb, okB := b.Get(k)
		if okA != okB || string(va) != string(vb) {
			return false
		}
	}
	return true
}

package antientropy

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"versionstamp/internal/hints"
	"versionstamp/internal/kvstore"
	"versionstamp/internal/membership"
	"versionstamp/internal/ring"
)

// DefaultFanout is how many peers each node contacts per gossip round.
const DefaultFanout = 2

// node is one cluster member: its replica, its server endpoint, its pooled
// client sessions, and — in ring mode — its membership view, its ring, and
// its durable hint queue. The cosmetic IDs ("node-0", "node-1", …) double
// as the stable addresses of the placement and membership layers; replica
// indexes are only a convenience of the embedding API.
type node struct {
	id      string
	replica *kvstore.Replica
	server  *Server
	addr    string
	pool    *Pool

	// Ring mode only (nil/zero in full-replication clusters).
	view    *membership.View
	ring    *ring.Ring
	ringVer uint64 // MemberVersion the ring was built from
	hints   *hints.Queue
	dataDir string
	down    bool
	// frozenHints is the node's queued-hint count sampled at Kill: a down
	// node's queue is closed (durable) or unreadable-by-contract, but the
	// hints it holds are still promised deliveries, so the tombstone GC must
	// keep counting them. Reset on Revive (the reopened queue counts again).
	frozenHints int
}

// divKey identifies one unit of divergence-bias state: an unordered node
// pair plus the stripe their last exchange covered (stripe -1 for the
// whole-replica exchanges of full-replication mode). Keying by node ID
// rather than index keeps the state meaningful across membership churn —
// nodes joining or dying never shift another pair's entry.
type divKey struct {
	a, b   string // node IDs, a < b
	stripe int
}

func pairKey(x, y string, stripe int) divKey {
	if x > y {
		x, y = y, x
	}
	return divKey{a: x, b: y, stripe: stripe}
}

// Cluster manages a set of replicas that gossip over TCP: each node runs a
// Server, and every gossip round each node pushes/pulls with a handful of
// peers through its pooled v3 sessions. Two replication topologies share
// the machinery:
//
//   - Full replication (NewCluster): every node holds the whole keyspace
//     and gossips whole-replica rounds with random peers — the original
//     fixed-n epidemic group.
//   - Ring partitioning (NewRingCluster): every stripe of the keyspace has
//     R owners on a consistent-hash ring, gossip rounds are stripe-scoped
//     and run only between a stripe's owners, and reads/writes go through
//     quorums with hinted handoff for dead owners. See ringcluster.go.
//
// Partitions can be injected to model the paper's operating environment:
// gossip simply never selects pairs that cannot reach each other, and
// convergence resumes when the partition heals.
type Cluster struct {
	// mu guards all topology and scheduling state below: group, fanout,
	// node liveness and endpoints, the divergence map, wire accounting and
	// the scratch slices. Exchange workers take it only for brief result
	// recording; the network rounds themselves run outside it.
	mu      sync.Mutex
	resolve kvstore.Resolver
	nodes   []*node
	index   map[string]int // node ID -> index
	// group assigns each node to a partition group; nodes in different
	// groups cannot gossip. All zero = fully connected.
	group []int
	// fanout is the per-node peer count of GossipUntilConverged rounds.
	fanout int
	rng    *rand.Rand
	// div records whether the last exchange of a (pair, stripe) found
	// divergence (data moved or conflicted). Peer selection prefers hot
	// entries — convergence-aware choice: keep pulling from whoever last
	// had news instead of re-verifying converged pairs. Entries for dead
	// peers are cleared when a view reports the death, so a departed
	// node's last-known heat cannot keep attracting picks.
	div map[divKey]bool
	// wire accumulates per-node wire bytes (sent+received, both ends of
	// every exchange) since the cluster started; WireBytes snapshots it.
	wire []int64
	// conf is the tombstone GC's propagation evidence: conf[{j, s, p}] = e
	// records that owner j's stripe-s state as of j's stripe epoch e has
	// been converged with co-owner p (a completed, conflict-free exchange
	// between them, with e sampled before the exchange started). A tombstone
	// whose ledger epoch is <= min over co-owners of this evidence is proven
	// propagated ring-wide. Entries involving a node are cleared on its Kill
	// and Revive (its epochs restart / its state may predate the evidence),
	// and the whole map clears when any ring rebuilds (ownership moved).
	conf map[confKey]uint64
	// peerScratch and taskScratch are reused across GossipRound calls so a
	// steady gossip loop does not allocate fresh selection slices per node
	// per round.
	peerScratch []int
	taskScratch []gossipTask
	// workers caps the gossip worker pool; 0 means GOMAXPROCS. Scenario
	// runs set 1 so a round's exchange order is deterministic.
	workers int

	// Ring mode configuration (replication 0 = full-replication mode).
	replication int
	writeQuorum int
	readQuorum  int
	stripes     int
	memberCfg   membership.Config
	dataDir     string
	ringCache   map[string]*ring.Ring // member-set key -> shared immutable ring

	// Transport and pool configuration, shared by both topologies.
	transport    TransportProvider
	roundTimeout time.Duration
	poolIdle     time.Duration
	backoff      BackoffPolicy
	hintCap      int
	durableCount int
}

// transportFor resolves the transport node id dials and listens through.
func (c *Cluster) transportFor(id string) Transport {
	if c.transport != nil {
		if tr := c.transport(id); tr != nil {
			return tr
		}
	}
	return TCP
}

// NewCluster starts n full-replication nodes with servers on loopback
// ports: every node holds the whole keyspace and whole-replica gossip
// rounds converge the group. The resolver is shared by all servers. Close
// the cluster to release the listeners.
func NewCluster(n int, resolve kvstore.Resolver, seed int64) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("antientropy: cluster size %d is not positive", n)
	}
	if n < 2 {
		return nil, fmt.Errorf("antientropy: cluster needs >= 2 nodes, got %d", n)
	}
	c := &Cluster{
		resolve: resolve,
		index:   make(map[string]int, n),
		group:   make([]int, n),
		fanout:  DefaultFanout,
		rng:     rand.New(rand.NewSource(seed)),
		div:     make(map[divKey]bool),
		wire:    make([]int64, n),
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node-%d", i)
		nd := &node{id: id, replica: kvstore.NewReplica(id)}
		nd.server = NewServer(nd.replica, resolve)
		addr, err := nd.server.Listen("127.0.0.1:0")
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		nd.addr = addr
		nd.pool = NewPool()
		c.nodes = append(c.nodes, nd)
		c.index[id] = i
	}
	return c, nil
}

// Close drops every node's pooled sessions, shuts down every server, and
// releases durable resources (replica WALs, hint queues) of ring nodes.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, n := range c.nodes {
		if n.down {
			continue
		}
		_ = n.pool.Close()
		if err := n.server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if n.dataDir != "" {
			if err := n.replica.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if n.hints != nil {
			if err := n.hints.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Dials reports how many TCP connections the cluster's nodes have opened in
// total — with pooled sessions this stays O(pairs) however many rounds run.
func (c *Cluster) Dials() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, nd := range c.nodes {
		n += nd.pool.Dials()
	}
	return n
}

// Size returns the number of nodes.
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Replica returns node i's store for reads and writes. In ring mode the
// pointer changes when a killed durable node revives (it reopens its WAL),
// so re-fetch after Revive.
func (c *Cluster) Replica(i int) (*kvstore.Replica, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		return nil, fmt.Errorf("antientropy: node %d out of range", i)
	}
	return c.nodes[i].replica, nil
}

// Partition assigns nodes to connectivity groups; nodes gossip only within
// their group. Pass all zeros (or call Heal) to reconnect everyone. Safe to
// call concurrently with GossipRound: the new topology applies from the
// next selection.
func (c *Cluster) Partition(groups []int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(groups) != len(c.nodes) {
		return fmt.Errorf("antientropy: %d group assignments for %d nodes",
			len(groups), len(c.nodes))
	}
	copy(c.group, groups)
	return nil
}

// Heal removes all partitions. Safe concurrently with GossipRound.
func (c *Cluster) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.group {
		c.group[i] = 0
	}
}

// SetFanout changes how many peers each node contacts per
// GossipUntilConverged round. k must be positive.
func (c *Cluster) SetFanout(k int) error {
	if k <= 0 {
		return fmt.Errorf("antientropy: fanout %d is not positive", k)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fanout = k
	return nil
}

// WireBytes returns cumulative per-node wire bytes (payload sent plus
// received, attributed to both endpoints of every exchange).
func (c *Cluster) WireBytes() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64(nil), c.wire...)
}

// confKey identifies one unit of tombstone-GC evidence: what owner `node`
// has proven propagated to co-owner `peer` for one stripe.
type confKey struct {
	node   int
	stripe int
	peer   int
}

// gossipTask is one scheduled exchange: node i initiates a round against
// node j's server, whole-replica (stripe -1) or scoped to one stripe. The
// endpoint fields are captured at scheduling time under the cluster lock,
// so a concurrent Kill/Revive cannot race the worker's reads. epochI/epochJ
// are the two stripes' mutation epochs at scheduling time: if the exchange
// completes without conflicts, each side's state as of its sampled epoch is
// proven propagated to the other (sampling before the exchange makes the
// claim conservative — later writes have later epochs).
type gossipTask struct {
	i, j           int
	stripe         int
	rep            *kvstore.Replica
	pool           *Pool
	addr           string
	epochI, epochJ uint64
}

// task builds a gossipTask from current node state. Caller holds mu (or is
// a single-threaded test).
func (c *Cluster) task(i, j, stripe int) gossipTask {
	t := gossipTask{
		i: i, j: j, stripe: stripe,
		rep:  c.nodes[i].replica,
		pool: c.nodes[i].pool,
		addr: c.nodes[j].addr,
	}
	if stripe >= 0 {
		t.epochI = c.nodes[i].replica.StripeEpoch(stripe)
		t.epochJ = c.nodes[j].replica.StripeEpoch(stripe)
	}
	return t
}

// confRecord folds a completed conflict-free stripe exchange into the
// tombstone GC's evidence map. Caller holds mu.
func (c *Cluster) confRecord(i, j, stripe int, epochI, epochJ uint64) {
	if c.conf == nil {
		c.conf = make(map[confKey]uint64)
	}
	if k := (confKey{i, stripe, j}); c.conf[k] < epochI {
		c.conf[k] = epochI
	}
	if k := (confKey{j, stripe, i}); c.conf[k] < epochJ {
		c.conf[k] = epochJ
	}
}

// confClearFor drops every evidence entry involving node index n — called
// on Kill and Revive: a restarted replica's epochs restart, and a revived
// node may hold state older than any recorded evidence about it. Caller
// holds mu.
func (c *Cluster) confClearFor(n int) {
	for k := range c.conf {
		if k.node == n || k.peer == n {
			delete(c.conf, k)
		}
	}
}

// RoundError is one failed (or skipped) exchange of a gossip round: which
// peer, which stripe, what happened. Operators and the chaos lab both need
// the breakdown — a round that "mostly worked" is the normal case under
// faults, and a bare success count hides who is struggling.
type RoundError struct {
	From   string // initiating node ID
	To     string // peer node ID
	Stripe int    // stripe the exchange was scoped to; -1 = whole replica
	Err    string // error text
	// Retried reports that the pool transparently retried the exchange on
	// a fresh dial before giving up.
	Retried bool
	// Backoff marks an exchange skipped by the peer's backoff window — no
	// traffic happened, the peer was temporarily excused.
	Backoff bool
	// PeerDown marks a failure against a peer the cluster already knows is
	// down — expected churn, not an anomaly.
	PeerDown bool
}

// RoundStats reports one gossip round's work.
type RoundStats struct {
	// Exchanges counts sync rounds that completed.
	Exchanges int
	// Moved counts keys that changed on some replica (transferred,
	// reconciled or merged). A converged round moves nothing.
	Moved int
	// Conflicts counts conflicting keys left unresolved.
	Conflicts int
	// HintsDrained counts hinted writes delivered to revived owners this
	// round (ring mode).
	HintsDrained int
	// StripesSkipped counts stripe-scoped exchanges that completed
	// summary-only — the converged fast path, where one summary frame
	// proved nothing needed to move. A healthy idle ring round is all
	// skips; a freshly repaired stripe shows up here the round after its
	// rebuild.
	StripesSkipped int
	// StripesScrubbed counts background scrub verifications run this round
	// (ring mode: one stripe per durable up node per round).
	StripesScrubbed int
	// StripesQuarantined is the total quarantined stripes across up nodes
	// at the end of the round (ring mode) — the cluster's damage level,
	// not a per-round delta.
	StripesQuarantined int
	// StripesRepaired counts quarantined stripes rebuilt from their
	// co-owners and re-checkpointed this round (ring mode).
	StripesRepaired int
	// TombstonesDiscarded counts tombstones the GC phase dropped this round
	// across all owners — each one a delete whose propagation to every
	// owner of its stripe was proven before its memory was reclaimed.
	TombstonesDiscarded int
	// TombstonesLive is the total tombstones still held across up nodes at
	// the end of the round (ring mode) — a gauge, not a delta; it should
	// fall to zero once deletes have propagated and the GC has caught up.
	TombstonesLive int
	// BytesPerNode is this round's wire bytes per node (both endpoints of
	// an exchange are charged its full sent+received payload).
	BytesPerNode []int64
	// Errors lists every exchange that failed or was skipped this round,
	// one entry per (peer, stripe) attempt. The round itself still returns
	// a nil error unless a failure is unexpected (peer not known dead, not
	// a backoff skip).
	Errors []RoundError
}

// GossipRound performs one fan-out round and returns how many exchanges
// ran. k must be positive.
//
// In full-replication mode every node initiates whole-replica delta
// exchanges with up to k distinct random peers in its partition group. In
// ring mode the round is owner-scoped: membership heartbeats gossip first,
// rings rebuild if the member set changed, pending hints drain to revived
// owners, and then every node runs stripe-scoped exchanges with up to k
// co-owners of each stripe it owns — wire cost O(stripes it owns), not
// O(cluster keyspace). Nodes with no reachable peer are skipped — gossip
// does not fail, it just cannot happen, exactly like mobile nodes out of
// range.
//
// Concurrent exchanges touching the same replica are safe: the responder
// reconciles under its stripe locks, and an initiator installs a round's
// outcome only over copies that did not move while the round was in flight.
func (c *Cluster) GossipRound(k int) (int, error) {
	stats, err := c.GossipRoundStats(k)
	return stats.Exchanges, err
}

// GossipRoundStats is GossipRound with the round's statistics.
func (c *Cluster) GossipRoundStats(k int) (RoundStats, error) {
	if k <= 0 {
		return RoundStats{}, fmt.Errorf("antientropy: fanout %d is not positive", k)
	}
	if c.ringMode() {
		return c.ringRound(k)
	}
	// Peer selection is serialized under mu (one shared rng, deterministic
	// under a fixed seed); only the network exchanges fan out.
	c.mu.Lock()
	tasks := c.taskScratch[:0]
	for i := range c.nodes {
		peers := c.selectPeers(i, k)
		for _, j := range peers {
			tasks = append(tasks, c.task(i, j, -1))
		}
		c.peerScratch = peers
	}
	c.taskScratch = tasks
	c.mu.Unlock()
	stats := RoundStats{BytesPerNode: make([]int64, len(c.nodes))}
	err := c.runGossip(tasks, &stats, nil)
	return stats, err
}

func (c *Cluster) ringMode() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replication > 0
}

// hotBias is the per-round probability of applying the hot-first partition
// in selectPeers; the complementary rounds select uniformly. Biased-but-not-
// deterministic choice (ε-greedy) keeps convergence fast where divergence
// was last seen while guaranteeing every reachable pair is still selected
// with positive probability each round — a deterministic hot preference
// could starve cold-but-divergent pairs under sustained churn.
const hotBias = 3.0 / 4

// selectPeers picks up to k gossip partners for node i: a uniform shuffle of
// the reachable peers and, on hotBias of the rounds, a partition that moves
// peers whose previous exchange with i reported divergence to the front — a
// node chasing known divergence converges in fewer rounds than one
// re-verifying converged pairs. The shuffle keeps choice within (and beyond)
// the hot set random, and the uniform rounds keep cold pairs live. The
// returned slice is the cluster's scratch. Caller holds mu.
func (c *Cluster) selectPeers(i, k int) []int {
	peers := c.peerScratch[:0]
	for j := range c.nodes {
		if j != i && c.group[i] == c.group[j] && !c.nodes[j].down {
			peers = append(peers, j)
		}
	}
	c.rng.Shuffle(len(peers), func(a, b int) { peers[a], peers[b] = peers[b], peers[a] })
	if len(peers) > k {
		if c.rng.Float64() < hotBias {
			front := 0
			for x := 0; x < len(peers); x++ {
				if c.div[pairKey(c.nodes[i].id, c.nodes[peers[x]].id, -1)] {
					peers[front], peers[x] = peers[x], peers[front]
					front++
				}
			}
		}
		peers = peers[:k]
	}
	return peers
}

// markDiv records divergence state for a (pair, stripe). Caller holds mu.
func (c *Cluster) markDiv(i, j, stripe int, hot bool) {
	key := pairKey(c.nodes[i].id, c.nodes[j].id, stripe)
	if hot {
		c.div[key] = true
	} else {
		delete(c.div, key)
	}
}

// divergent reports the recorded divergence state. Caller holds mu (tests
// call it single-threaded).
func (c *Cluster) divergent(i, j, stripe int) bool {
	return c.div[pairKey(c.nodes[i].id, c.nodes[j].id, stripe)]
}

// clearDivFor drops every divergence entry involving the given node ID —
// the bugfix for departed peers: a dead node's last-known heat must not
// keep attracting gossip picks (and would otherwise survive forever, since
// no future exchange with it can cool the entry). Caller holds mu.
func (c *Cluster) clearDivFor(id string) {
	for k := range c.div {
		if k.a == id || k.b == id {
			delete(c.div, k)
		}
	}
}

// exKey identifies one node's exchanges for one stripe within a round —
// the unit the ring repair pass judges: a quarantined stripe clears only
// when every exchange its holder scheduled for it succeeded.
type exKey struct {
	node   int
	stripe int
}

// exTally accumulates one (node, stripe)'s exchange outcomes for a round.
type exTally struct {
	ok, failed int
}

// runGossip executes exchanges through a worker pool bounded by GOMAXPROCS,
// accumulating into stats (which must have BytesPerNode sized). When track
// is non-nil, outcomes of initiator exchanges whose (node, stripe) has an
// entry are tallied into it under the stats mutex — the ring repair pass
// seeds entries for quarantined stripes before the round.
//
// Exchanges scoped to the same stripe are chained onto one worker and run
// sequentially; only distinct stripes proceed in parallel. This is a
// soundness requirement of the stamp discipline, not a tuning choice: two
// concurrent reconciliations that consume the same copy of a key both fork
// its stamp's id space, the initiator can keep only one reply (the other is
// discarded by the moved-copy guard), and the two responders are left
// holding overlapping ids — which a later exchange must treat as
// causally-unrelated copies and reseed, silently discarding causality. With
// R owners per stripe every pair of same-stripe exchanges shares a node, so
// per-stripe serialization is exactly the needed exclusion, while different
// stripes touch disjoint keys and parallelize freely.
func (c *Cluster) runGossip(tasks []gossipTask, stats *RoundStats, track map[exKey]*exTally) error {
	// Whole-replica tasks (stripe -1) each form their own chain, preserving
	// full-replication mode's round concurrency.
	chains := make([][]gossipTask, 0, len(tasks))
	byStripe := make(map[int]int)
	for _, t := range tasks {
		if t.stripe < 0 {
			chains = append(chains, []gossipTask{t})
			continue
		}
		ci, ok := byStripe[t.stripe]
		if !ok {
			ci = len(chains)
			byStripe[t.stripe] = ci
			chains = append(chains, nil)
		}
		chains[ci] = append(chains[ci], t)
	}
	c.mu.Lock()
	workers := c.workers
	c.mu.Unlock()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(chains) {
		workers = len(chains)
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	ch := make(chan []gossipTask)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chain := range ch {
				c.runChain(chain, stats, &mu, &firstErr, track)
			}
		}()
	}
	for _, chain := range chains {
		ch <- chain
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// runChain executes one chain's tasks in order, recording results.
func (c *Cluster) runChain(chain []gossipTask, stats *RoundStats, mu *sync.Mutex, firstErr *error, track map[exKey]*exTally) {
	for _, t := range chain {
		// Every exchange is a hierarchical (v3) round over the initiator's
		// pooled session to the peer — whole-replica with a root-hash fast
		// path, or scoped to one stripe so only that stripe's summary
		// travels.
		var res kvstore.SyncResult
		var info RoundInfo
		var err error
		if t.stripe >= 0 {
			res, info, err = t.pool.SyncStripesInfo(t.addr, t.rep, []int{t.stripe})
		} else {
			res, info, err = t.pool.SyncWithInfo(t.addr, t.rep)
		}
		mu.Lock()
		if err != nil {
			down := c.nodeDown(t.j)
			stats.Errors = append(stats.Errors, RoundError{
				From: c.nodeID(t.i), To: c.nodeID(t.j), Stripe: t.stripe,
				Err: err.Error(), Retried: info.Retried,
				Backoff: info.Backoff, PeerDown: down,
			})
			// A peer that died mid-round is expected churn, and a backoff
			// skip is the pool doing its job — neither fails the round:
			// membership notices the death, and the backoff window expires.
			if *firstErr == nil && !down && !info.Backoff {
				*firstErr = fmt.Errorf("antientropy: gossip %d->%d: %w", t.i, t.j, err)
			}
			if tl := track[exKey{t.i, t.stripe}]; tl != nil {
				tl.failed++
			}
		} else {
			moved := res.Transferred + res.Reconciled + res.Merged
			stats.Exchanges++
			stats.Moved += moved
			stats.Conflicts += len(res.Conflicts)
			if t.stripe >= 0 && moved == 0 && len(res.Conflicts) == 0 {
				stats.StripesSkipped++
			}
			if tl := track[exKey{t.i, t.stripe}]; tl != nil {
				tl.ok++
			}
			bytes := res.BytesSent + res.BytesReceived
			stats.BytesPerNode[t.i] += bytes
			stats.BytesPerNode[t.j] += bytes
			// Record whether the exchange found divergence, feeding the next
			// round's convergence-aware peer choice. The relation is
			// symmetric: a round reconciles both sides.
			c.mu.Lock()
			c.markDiv(t.i, t.j, t.stripe, moved+len(res.Conflicts) > 0)
			if t.stripe >= 0 && len(res.Conflicts) == 0 {
				// The two owners now agree on the stripe (no conflict was
				// left standing), so each side's pre-exchange state is
				// proven propagated to the other — tombstone GC evidence.
				c.confRecord(t.i, t.j, t.stripe, t.epochI, t.epochJ)
			}
			c.wire[t.i] += bytes
			c.wire[t.j] += bytes
			c.mu.Unlock()
		}
		mu.Unlock()
	}
}

// nodeDown reports node j's liveness flag.
func (c *Cluster) nodeDown(j int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return j >= 0 && j < len(c.nodes) && c.nodes[j].down
}

// nodeID returns node j's stable ID.
func (c *Cluster) nodeID(j int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j >= 0 && j < len(c.nodes) {
		return c.nodes[j].id
	}
	return fmt.Sprintf("node-%d?", j)
}

// ErrNotConverged is returned by GossipUntilConverged when the budget runs
// out before all reachable nodes agree.
var ErrNotConverged = errors.New("antientropy: cluster did not converge")

// GossipUntilConverged runs fan-out gossip rounds until convergence, or
// maxRounds is exhausted. It returns the number of rounds used.
//
// Full-replication mode converges when every pair of up nodes in the same
// partition group stores identical live contents. Ring mode converges when
// every stripe's up owners agree on the stripe's live contents, all up
// nodes have the same ring, and no hints remain queued for up targets.
func (c *Cluster) GossipUntilConverged(maxRounds int) (int, error) {
	for round := 1; round <= maxRounds; round++ {
		if _, err := c.GossipRound(c.Fanout()); err != nil {
			return round, err
		}
		if c.converged() {
			return round, nil
		}
	}
	return maxRounds, ErrNotConverged
}

// Fanout returns the per-round fan-out used by GossipUntilConverged.
func (c *Cluster) Fanout() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fanout
}

// Converged reports whether the cluster currently satisfies its
// convergence condition without running a round — the check
// GossipUntilConverged applies after each round, exported for scenario
// drivers that manage their own round loop (and must keep looping through
// rounds that partially fail, which GossipUntilConverged treats as fatal).
func (c *Cluster) Converged() bool { return c.converged() }

// converged dispatches on topology.
func (c *Cluster) converged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replication > 0 {
		return c.ringConvergedLocked()
	}
	for i := 0; i < len(c.nodes); i++ {
		for j := i + 1; j < len(c.nodes); j++ {
			if c.group[i] != c.group[j] || c.nodes[i].down || c.nodes[j].down {
				continue
			}
			if !sameContents(c.nodes[i].replica, c.nodes[j].replica) {
				return false
			}
		}
	}
	return true
}

func sameContents(a, b *kvstore.Replica) bool {
	keys := map[string]bool{}
	for _, k := range a.Keys() {
		keys[k] = true
	}
	for _, k := range b.Keys() {
		keys[k] = true
	}
	for k := range keys {
		va, okA := a.Get(k)
		vb, okB := b.Get(k)
		if okA != okB || string(va) != string(vb) {
			return false
		}
	}
	return true
}

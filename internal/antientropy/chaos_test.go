package antientropy

import (
	"errors"
	"fmt"
	"testing"

	"versionstamp/internal/chaosnet"
	"versionstamp/internal/kvstore"
)

// These tests run the real protocol stack — version negotiation, v3
// sessions, the pool's retry discipline, ring clusters — over an injected
// chaosnet transport instead of TCP. The production code paths are
// identical; only the Transport differs.

// chaosProvider adapts a fabric to the cluster's per-node transport hook.
func chaosProvider(fab *chaosnet.Fabric) TransportProvider {
	return func(nodeID string) Transport { return fab.Node(nodeID) }
}

func TestPoolSyncOverChaosnet(t *testing.T) {
	fab := chaosnet.New(1)
	defer fab.Close()

	server := kvstore.NewReplicaShards("srv", 8)
	client := kvstore.NewReplicaShards("cli", 8)
	for i := 0; i < 50; i++ {
		server.Put(fmt.Sprintf("s-%d", i), []byte("from-server"))
		client.Put(fmt.Sprintf("c-%d", i), []byte("from-client"))
	}

	srv := NewServer(server, nil)
	addr, err := srv.ListenTransport(fab.Node("srv"), ":0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if addr != "srv" {
		t.Fatalf("chaosnet listen addr = %q, want host id", addr)
	}

	pool := NewPoolOptions(PoolOptions{Transport: fab.Node("cli"), Idle: -1})
	defer pool.Close()
	res, err := pool.SyncWith(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred == 0 {
		t.Fatalf("nothing transferred: %+v", res)
	}
	// Second round over the same pooled session: converged, root-hash only.
	res2, err := pool.SyncWith(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Transferred != 0 {
		t.Fatalf("second round transferred %d", res2.Transferred)
	}
	if pool.Dials() != 1 {
		t.Fatalf("dials = %d, want 1 (pooled session)", pool.Dials())
	}
	if got, _ := server.Get("c-0"); string(got) != "from-client" {
		t.Fatalf("server missed client key: %q", got)
	}
	if got, _ := client.Get("s-0"); string(got) != "from-server" {
		t.Fatalf("client missed server key: %q", got)
	}
}

func TestPoolSyncSurvivesLossyLink(t *testing.T) {
	fab := chaosnet.New(2)
	defer fab.Close()
	// Lossy but not hostile: drops are retransmitted, dups discarded,
	// reorder reassembled. The v3 frames must come through intact.
	fab.SetDefaultFaults(chaosnet.Faults{
		DelayTicks: 1, JitterTicks: 3,
		DropProb: 0.1, DupProb: 0.1, ReorderProb: 0.2,
	})

	server := kvstore.NewReplicaShards("srv", 8)
	client := kvstore.NewReplicaShards("cli", 8)
	for i := 0; i < 200; i++ {
		server.Put(fmt.Sprintf("s-%d", i), []byte("payload-with-some-length-to-it"))
	}
	srv := NewServer(server, nil)
	addr, err := srv.ListenTransport(fab.Node("srv"), ":0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := NewPoolOptions(PoolOptions{Transport: fab.Node("cli"), Idle: -1})
	defer pool.Close()
	// Under loss a round can die on a connection reset (retransmission
	// exhaustion); the pool's retry rules apply exactly as over TCP. A few
	// attempts must converge the pair.
	converged := false
	for attempt := 0; attempt < 20 && !converged; attempt++ {
		if _, err := pool.SyncWith(addr, client); err != nil {
			continue
		}
		v, ok := client.Get("s-199")
		converged = ok && string(v) == "payload-with-some-length-to-it"
	}
	if !converged {
		t.Fatal("client never converged over lossy link")
	}
	if fab.Stats().Drops == 0 {
		t.Fatal("fault injection did not fire")
	}
}

func TestPoolBackoffSkipsDeadPeer(t *testing.T) {
	fab := chaosnet.New(3)
	defer fab.Close()
	client := kvstore.NewReplicaShards("cli", 8)
	pool := NewPoolOptions(PoolOptions{
		Transport: fab.Node("cli"),
		Idle:      -1,
		Backoff:   BackoffPolicy{Base: 2, Max: 8, Seed: 7},
	})
	defer pool.Close()

	// No listener for "ghost": every real attempt fails at dial.
	_, info, err := pool.SyncWithInfo("ghost", client)
	if err == nil {
		t.Fatal("dial to missing host succeeded")
	}
	if info.Backoff {
		t.Fatal("first failure cannot be a backoff skip")
	}
	// The next rounds are inside the backoff window: ErrPeerBackoff, no
	// traffic, no new dial attempts.
	dialsFailed := fab.Stats().DialsFailed
	skips := 0
	for i := 0; i < 3; i++ {
		_, info, err = pool.SyncWithInfo("ghost", client)
		if errors.Is(err, ErrPeerBackoff) {
			if !info.Backoff || info.Attempts != 0 {
				t.Fatalf("backoff round did work: %+v", info)
			}
			skips++
		}
	}
	if skips == 0 {
		t.Fatal("no rounds were skipped by backoff")
	}
	if fab.Stats().DialsFailed != dialsFailed {
		t.Fatal("backoff rounds still dialed")
	}

	// Once the host exists and the window expires, rounds succeed and the
	// failure counter resets.
	server := kvstore.NewReplicaShards("srv", 8)
	srv := NewServer(server, nil)
	if _, err := srv.ListenTransport(fab.Node("ghost"), ":0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ok := false
	for i := 0; i < 30 && !ok; i++ {
		_, _, err := pool.SyncWithInfo("ghost", client)
		ok = err == nil
	}
	if !ok {
		t.Fatal("peer never recovered after backoff")
	}
}

func TestRingClusterOverChaosnet(t *testing.T) {
	fab := chaosnet.New(4)
	defer fab.Close()
	c, err := NewRingCluster(RingConfig{
		Nodes: 5, Replication: 3, Stripes: 16, Seed: 1,
		Transport:     chaosProvider(fab),
		PoolIdle:      -1,
		GossipWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 60; i++ {
		if _, err := c.Write(fmt.Sprintf("key-%03d", i), []byte("v")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	rounds, err := c.GossipUntilConverged(40)
	if err != nil {
		t.Fatalf("convergence over chaosnet: %v", err)
	}
	if rounds == 0 {
		t.Fatal("no rounds ran")
	}
	v, ok, err := c.Read("key-000")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("read after convergence: %q %v %v", v, ok, err)
	}
}

func TestRingClusterPartitionHealOverChaosnet(t *testing.T) {
	fab := chaosnet.New(5)
	defer fab.Close()
	c, err := NewRingCluster(RingConfig{
		Nodes: 6, Replication: 3, Stripes: 16, Seed: 2,
		Transport:     chaosProvider(fab),
		PoolIdle:      -1,
		GossipWorkers: 1,
		Backoff:       BackoffPolicy{Base: 1, Max: 4, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 40; i++ {
		if _, err := c.Write(fmt.Sprintf("key-%03d", i), []byte("before")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GossipUntilConverged(40); err != nil {
		t.Fatal(err)
	}

	// Partition the fabric AND the cluster's own topology view: nodes 0-2
	// vs 3-5. The cluster's group check stops it scheduling cross-group
	// exchanges; the fabric partition enforces it at the network.
	fab.Partition(map[string]int{"node-0": 0, "node-1": 0, "node-2": 0, "node-3": 1, "node-4": 1, "node-5": 1})
	if err := c.Partition([]int{0, 0, 0, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	// Writes during the partition land on whatever owners are reachable.
	for i := 0; i < 20; i++ {
		c.Write(fmt.Sprintf("part-%03d", i), []byte("during")) // quorum may fail; that's the point
	}
	for r := 0; r < 6; r++ {
		c.GossipRound(2) // rounds during the partition must not wedge
	}

	fab.Heal()
	c.Heal()
	if _, err := c.GossipUntilConverged(60); err != nil {
		t.Fatalf("no convergence after heal: %v", err)
	}
}

func TestHintOverflowConvergesViaAntiEntropy(t *testing.T) {
	// A receiver that stays dead while many writes target it must not grow
	// the coordinators' hint queues unboundedly: the cap drops the oldest
	// hints, and after revival anti-entropy — not the handoff — converges
	// the keys whose hints were lost.
	c, err := NewRingCluster(RingConfig{
		Nodes: 4, Replication: 3, Stripes: 8, Seed: 3,
		HintCap:       5,
		GossipWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.GossipUntilConverged(20); err != nil {
		t.Fatal(err)
	}

	victim := 1
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// Let membership declare the victim dead so writes hint instead of
	// failing their push.
	for r := 0; r < 8; r++ {
		c.GossipRound(2)
	}
	// Far more writes than the cap can hold as hints.
	for i := 0; i < 200; i++ {
		if _, err := c.Write(fmt.Sprintf("flood-%03d", i), []byte("v")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if c.HintsDropped() == 0 {
		t.Fatal("cap never dropped a hint — test is not exercising overflow")
	}
	if got := c.HintsPending(); got > 3*5*8 { // coords x cap x stripes is a loose ceiling
		t.Fatalf("hint queues grew past the cap: %d pending", got)
	}

	if err := c.Revive(victim); err != nil {
		t.Fatal(err)
	}
	// Convergence must still be reached: surviving hints drain, and the
	// stripe-scoped anti-entropy rounds cover everything the dropped hints
	// promised.
	if _, err := c.GossipUntilConverged(60); err != nil {
		t.Fatalf("cluster did not converge after hint overflow: %v", err)
	}
	rep, err := c.Replica(victim)
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("flood-%03d", i)
		if owned(c, victim, key) {
			if _, ok := rep.Get(key); !ok {
				missing++
			}
		}
	}
	if missing > 0 {
		t.Fatalf("revived node still missing %d owned flood keys", missing)
	}
}

// owned reports whether node i owns key's stripe per its own ring.
func owned(c *Cluster, i int, key string) bool {
	st, err := c.Status(i)
	if err != nil {
		return false
	}
	stripe := kvstore.ShardIndex(key, c.stripes)
	for _, s := range st.OwnedStripes {
		if s == stripe {
			return true
		}
	}
	return false
}

package antientropy

import (
	"bytes"
	"fmt"
	"testing"

	"versionstamp/internal/kvstore"
)

// clonedPair seeds n keys and clones, so both replicas share causal origins.
func clonedPair(n int) (*kvstore.Replica, *kvstore.Replica) {
	a := kvstore.NewReplica("server")
	for i := 0; i < n; i++ {
		a.Put(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf("value-%d-with-some-padding", i)))
	}
	return a, a.Clone("client")
}

func requireConverged(t *testing.T, a, b *kvstore.Replica) {
	t.Helper()
	keys := map[string]bool{}
	for _, k := range a.Keys() {
		keys[k] = true
	}
	for _, k := range b.Keys() {
		keys[k] = true
	}
	for k := range keys {
		va, okA := a.Get(k)
		vb, okB := b.Get(k)
		if okA != okB || !bytes.Equal(va, vb) {
			t.Errorf("key %q: %q/%v vs %q/%v", k, va, okA, vb, okB)
		}
	}
}

func TestSyncWithDeltaConverges(t *testing.T) {
	server, client := clonedPair(32)
	server.Put("key-0000", []byte("newer-on-server"))
	client.Put("key-0001", []byte("newer-on-client"))
	server.Put("key-0002", []byte("conc-server"))
	client.Put("key-0002", []byte("conc-client"))
	client.Put("client-only", []byte("x"))
	server.Put("server-only", []byte("y"))
	client.Delete("key-0003")

	_, addr := startServer(t, server, kvstore.KeepBoth([]byte("|")))
	res, err := SyncWithDelta(addr, client)
	if err != nil {
		t.Fatalf("SyncWithDelta: %v", err)
	}
	if res.Transferred != 2 || res.Reconciled != 3 || res.Merged != 1 {
		t.Errorf("result = %+v", res)
	}
	if res.Pruned != 28 {
		t.Errorf("Pruned = %d, want 28", res.Pruned)
	}
	if res.BytesSent == 0 || res.BytesReceived == 0 {
		t.Errorf("wire counters empty: %+v", res)
	}
	requireConverged(t, server, client)
	if _, ok := server.Get("key-0003"); ok {
		t.Error("tombstone did not reach the server")
	}
	if v, _ := server.Get("key-0002"); string(v) != "conc-server|conc-client" {
		t.Errorf("merged value = %q", v)
	}
}

func TestSyncWithDeltaShardedConverges(t *testing.T) {
	server, client := clonedPair(64)
	client.Put("key-0000", []byte("newer"))
	client.Put("extra-key", []byte("x"))
	server.Delete("key-0001")

	_, addr := startServer(t, server, kvstore.KeepBoth([]byte("|")))
	res, err := SyncWithDeltaSharded(addr, client)
	if err != nil {
		t.Fatalf("SyncWithDeltaSharded: %v", err)
	}
	if res.Transferred != 1 || res.Reconciled != 2 {
		t.Errorf("result = %+v", res)
	}
	if res.Pruned != 62 {
		t.Errorf("Pruned = %d, want 62", res.Pruned)
	}
	requireConverged(t, server, client)
}

// TestDeltaSyncWireSavings is the acceptance check for the protocol: two
// converged replicas must sync for ≥5x fewer bytes over the delta protocol
// than over the full-snapshot protocol, measured by the SyncResult byte
// counters of both. (The bar was 10x when v1 shipped JSON snapshots; v1 now
// ships binary snapshots base64-embedded in its JSON envelope, so the
// baseline itself shrank ~1.5x and the ratio bar moved accordingly.)
func TestDeltaSyncWireSavings(t *testing.T) {
	server, client := clonedPair(500)
	_, addr := startServer(t, server, nil)

	full, err := SyncWith(addr, client)
	if err != nil {
		t.Fatalf("SyncWith: %v", err)
	}
	delta, err := SyncWithDelta(addr, client)
	if err != nil {
		t.Fatalf("SyncWithDelta: %v", err)
	}
	if delta.Pruned != 500 || delta.Transferred+delta.Reconciled+delta.Merged != 0 {
		t.Fatalf("converged delta round moved data: %+v", delta)
	}
	fullBytes := full.BytesSent + full.BytesReceived
	deltaBytes := delta.BytesSent + delta.BytesReceived
	if fullBytes == 0 || deltaBytes == 0 {
		t.Fatalf("byte counters empty: full=%d delta=%d", fullBytes, deltaBytes)
	}
	if deltaBytes*5 > fullBytes {
		t.Errorf("converged delta sync %dB vs full %dB: less than 5x savings",
			deltaBytes, fullBytes)
	}
	t.Logf("converged sync: full %dB, delta %dB (%.1fx)",
		fullBytes, deltaBytes, float64(fullBytes)/float64(deltaBytes))
}

// TestDeltaMatchesFullSyncProperty is the randomized equivalence property:
// across divergence patterns, a delta round over TCP leaves both replicas
// with the same contents as the in-process full Sync on an identical pair.
func TestDeltaMatchesFullSyncProperty(t *testing.T) {
	for seed := 0; seed < 6; seed++ {
		build := func() (*kvstore.Replica, *kvstore.Replica) {
			server, client := clonedPair(30)
			rng := seed + 1
			next := func(n int) int { rng = (rng*1103515245 + 12345) & 0x7fffffff; return rng % n }
			for i := 0; i < 30; i++ {
				k := fmt.Sprintf("key-%04d", i)
				switch next(7) {
				case 0:
					server.Put(k, []byte(fmt.Sprintf("s%d", next(100))))
				case 1:
					client.Put(k, []byte(fmt.Sprintf("c%d", next(100))))
				case 2:
					server.Put(k, []byte(fmt.Sprintf("s%d", next(100))))
					client.Put(k, []byte(fmt.Sprintf("c%d", next(100))))
				case 3:
					server.Delete(k)
				case 4:
					client.Delete(k)
				}
			}
			client.Put(fmt.Sprintf("fresh-%d", seed), []byte("new"))
			return server, client
		}
		fullServer, fullClient := build()
		deltaServer, deltaClient := build()

		if _, err := kvstore.Sync(fullServer, fullClient, kvstore.KeepBoth([]byte("|"))); err != nil {
			t.Fatalf("seed %d: full sync: %v", seed, err)
		}
		_, addr := startServer(t, deltaServer, kvstore.KeepBoth([]byte("|")))
		if _, err := SyncWithDelta(addr, deltaClient); err != nil {
			t.Fatalf("seed %d: delta sync: %v", seed, err)
		}
		requireConverged(t, deltaServer, deltaClient)
		requireConverged(t, fullServer, deltaServer)
		requireConverged(t, fullClient, deltaClient)

		// And the now-converged pair prunes everything on the next round.
		res, err := SyncWithDelta(addr, deltaClient)
		if err != nil {
			t.Fatalf("seed %d: second delta sync: %v", seed, err)
		}
		if res.Transferred+res.Reconciled+res.Merged != 0 {
			t.Errorf("seed %d: converged round moved data: %+v", seed, res)
		}
	}
}

// TestDeltaAndJSONProtocolsCoexist drives both protocol versions at the same
// server: the leading byte selects the handler.
func TestDeltaAndJSONProtocolsCoexist(t *testing.T) {
	server, client := clonedPair(8)
	client.Put("via-json", []byte("1"))
	_, addr := startServer(t, server, nil)
	if _, err := SyncWith(addr, client); err != nil {
		t.Fatalf("v1 round: %v", err)
	}
	client.Put("via-delta", []byte("2"))
	if _, err := SyncWithDelta(addr, client); err != nil {
		t.Fatalf("v2 round: %v", err)
	}
	requireConverged(t, server, client)
}

func TestDeltaConflictReportedOverWire(t *testing.T) {
	server, client := clonedPair(4)
	server.Put("key-0000", []byte("conc-s"))
	client.Put("key-0000", []byte("conc-c"))
	_, addr := startServer(t, server, nil)
	res, err := SyncWithDelta(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0] != "key-0000" {
		t.Errorf("Conflicts = %v", res.Conflicts)
	}
	if v, _ := client.Get("key-0000"); string(v) != "conc-c" {
		t.Errorf("conflicting copy changed: %q", v)
	}
}

package antientropy

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/kvstore"
)

// Protocol v4: adaptive digest-tree rounds over a persistent session. Where
// v3 jumps from a divergent stripe summary straight to the stripe's full
// digest list, a v4 round descends the stripe's k-ary digest tree
// (kvstore.DigestTree): root hash, then the stripe tree roots, then only the
// *differing* children level by level, then digest runs for just the leaf
// ranges that still differ — O(log n) fixed-size frames to isolate one hot
// key in a millions-of-keys stripe. From the leaf runs on, the round is the
// familiar tail: kindNeed, kindEntries, kindResult, with v3's exact
// retry-safety semantics.
//
// The tree shape (fanout, depth) is the *client's* choice, declared on the
// wire per stripe; the server evaluates its own data under that shape
// (kvstore.TreeScoped), cached whenever the shape matches its own policy —
// which it does between converged replicas, whose per-stripe key counts
// (and therefore TreeShape results) agree. A stripe whose count crosses a
// shape threshold simply descends at the new depth next round.
//
// A v4 session opens with the 0x04 version byte and the server answers with
// a single 0x04 ack byte. The client pipelines its first round behind the
// version byte and reads the ack before the first reply frame, so
// negotiation costs zero extra round trips against a v4 server — and
// against an older server the first byte back is '{' (a JSON error), which
// the pool recognizes and transparently redials as v3 for that session:
// v1/v2/v3/v4 coexist on one port.
//
// Pooled whole-replica rounds additionally pipeline the *next* round's root
// check behind the current round's result (kindRootProbe): the server
// answers a probe with kindRootMatch without opening round state, the
// client reads the answer at the start of its next round, and a
// steady-state converged round therefore completes without waiting on a
// single round trip.

// treeProtocolVersion is the first byte of a v4 connection, and the ack
// byte a v4 server answers the session opening with.
const treeProtocolVersion = 0x04

// v4 frame kinds. kindRoot/kindRootMatch are reused from v3 (same shapes:
// the v4 root is the fold of the stripe *tree* roots instead of the stripe
// summaries), and the kindNeed/kindEntries/kindResult/kindError tail is
// shared with v2/v3.
const (
	kindStripeRoots    = 0x0A // client: of, fanout, count×(stripe, depth, root)
	kindStripeRootDiff = 0x0B // server: stripes whose tree roots differ
	kindTreeNodes      = 0x0C // client: fanout, count×tree-node (child bitmap + hashes)
	kindTreeDiff       = 0x0D // server: per queried node: differ bitmap + server bitmap
	kindLeafDigests    = 0x0E // client: count×leaf digest run
	kindRootProbe      = 0x0F // client: of, root; answered kindRootMatch, no round state
)

// errV4Unsupported marks a session whose peer did not ack the v4 version
// byte — an older server that answered the opening with something else. The
// pool falls back to a v3 session for that peer and retries transparently.
var errV4Unsupported = errors.New("antientropy: peer does not speak v4")

// decodeRootBody parses the shared body of kindRoot/kindRootProbe:
// of (uvarint) + 8-byte root.
func decodeRootBody(body []byte) (of int, root uint64, err error) {
	of64, used := binary.Uvarint(body)
	if used <= 0 || of64 < 1 || of64 > maxWireStripes || len(body[used:]) != 8 {
		return 0, 0, errors.New("bad root frame")
	}
	return int(of64), binary.BigEndian.Uint64(body[used:]), nil
}

// handleTree serves one v4 session: ack the version byte, then a loop of
// rounds with the same idle/active deadline dance as v3 sessions.
func (s *Server) handleTree(conn net.Conn, br *bufio.Reader) {
	if _, err := br.Discard(1); err != nil { // the version byte, already peeked
		return
	}
	if _, err := conn.Write([]byte{treeProtocolVersion}); err != nil {
		return
	}
	for {
		_ = conn.SetDeadline(time.Now().Add(serverSessionIdle))
		body, err := readFrame(br)
		if err != nil {
			return // session over: peer closed, or idled out
		}
		_ = conn.SetDeadline(time.Now().Add(defaultTimeout))
		if !s.treeRound(conn, br, body) {
			return
		}
	}
}

// treeFoldRoots folds per-stripe tree roots into the v4 replica root.
func treeFoldRoots(roots []uint64) uint64 {
	h := encoding.RootSummarySeed
	for _, r := range roots {
		h = encoding.FoldSummary(h, r)
	}
	return h
}

// treeRootMatch answers a root or probe body: 1 when the peer's root equals
// the fold of this replica's stripe tree roots under the peer's layout.
func (s *Server) treeRootMatch(of int, peerRoot uint64) (byte, error) {
	roots, err := s.replica.TreeRootsScoped(of)
	if err != nil {
		return 0, err
	}
	if treeFoldRoots(roots) == peerRoot {
		return 1, nil
	}
	return 0, nil
}

// treeStripeState is the server's per-round state for one divergent stripe:
// the tree snapshot evaluated at the client's declared shape (consistent
// across the whole round), and — once leaf runs arrive — the client's
// digests and the position ranges they cover.
type treeStripeState struct {
	tree    *kvstore.DigestTree
	depth   int
	digests []encoding.Digest
	ranges  []kvstore.TreeRange
}

// treeRound serves one v4 round, the opening frame already read. It reports
// whether the session should continue.
func (s *Server) treeRound(conn net.Conn, br *bufio.Reader, opening []byte) bool {
	fail := func(err error) bool {
		_ = writeFrame(conn, appendString([]byte{kindError}, err.Error()))
		return false
	}

	// A probe is answered without opening any round state: the session stays
	// at the round boundary, and the next frame opens a real round (or
	// another probe).
	if len(opening) > 0 && opening[0] == kindRootProbe {
		of, root, err := decodeRootBody(opening[1:])
		if err != nil {
			return fail(err)
		}
		match, err := s.treeRootMatch(of, root)
		if err != nil {
			return fail(err)
		}
		return writeFrame(conn, []byte{kindRootMatch, match}) == nil
	}

	// Whole-replica rounds open with the root fold; matching roots end the
	// round right there. Scoped rounds open with kindStripeRoots directly.
	if len(opening) > 0 && opening[0] == kindRoot {
		of, root, err := decodeRootBody(opening[1:])
		if err != nil {
			return fail(err)
		}
		match, err := s.treeRootMatch(of, root)
		if err != nil {
			return fail(err)
		}
		if writeFrame(conn, []byte{kindRootMatch, match}) != nil {
			return false
		}
		if match == 1 {
			return true // converged: round over, session stays open
		}
		if opening, err = readFrame(br); err != nil {
			return fail(fmt.Errorf("bad stripe roots frame: %v", err))
		}
	}

	// Stripe-root phase: compare each declared stripe's tree root at the
	// client's declared shape, reply with the divergent stripes.
	body, err := expectKind(opening, kindStripeRoots)
	if err != nil {
		return fail(err)
	}
	of64, used := binary.Uvarint(body)
	if used <= 0 || of64 < 1 || of64 > maxWireStripes {
		return fail(errors.New("bad stripe roots layout"))
	}
	body = body[used:]
	of := int(of64)
	fan64, used := binary.Uvarint(body)
	if used <= 0 || !encoding.ValidTreeShape(int(fan64), 1) {
		return fail(errors.New("bad tree fanout"))
	}
	body = body[used:]
	fanout := int(fan64)
	count, used := binary.Uvarint(body)
	if used <= 0 || count > of64 {
		return fail(errors.New("bad stripe roots count"))
	}
	body = body[used:]
	stripes := make(map[int]*treeStripeState, 8)
	var divergent []int
	for i := uint64(0); i < count; i++ {
		idx64, used := binary.Uvarint(body)
		if used <= 0 || idx64 >= of64 {
			return fail(errors.New("bad stripe roots stripe"))
		}
		body = body[used:]
		depth64, used := binary.Uvarint(body)
		if used <= 0 || !encoding.ValidTreeShape(fanout, int(depth64)) {
			return fail(errors.New("bad stripe tree depth"))
		}
		body = body[used:]
		if len(body) < 8 {
			return fail(errors.New("truncated stripe root"))
		}
		root := binary.BigEndian.Uint64(body)
		body = body[8:]
		idx := int(idx64)
		if _, dup := stripes[idx]; dup {
			return fail(errors.New("duplicate stripe"))
		}
		tree, err := s.replica.TreeScoped(idx, of, fanout, int(depth64))
		if err != nil {
			return fail(err)
		}
		if tree.Root() != root {
			stripes[idx] = &treeStripeState{tree: tree, depth: int(depth64)}
			divergent = append(divergent, idx)
		}
	}
	diff := []byte{kindStripeRootDiff}
	diff = binary.AppendUvarint(diff, uint64(len(divergent)))
	for _, idx := range divergent {
		diff = binary.AppendUvarint(diff, uint64(idx))
	}
	if err := writeFrame(conn, diff); err != nil {
		return false
	}
	if len(divergent) == 0 {
		return true // round over; the session stays open for the next one
	}

	// Descent: any number of kindTreeNodes queries, answered from the
	// per-round tree snapshots, until the leaf runs arrive.
	var order []int // stripes with leaf runs, first-seen order
	seenRun := make(map[uint64]bool)
descend:
	for {
		if body, err = readFrame(br); err != nil {
			return fail(fmt.Errorf("bad descent frame: %v", err))
		}
		switch {
		case len(body) > 0 && body[0] == kindTreeNodes:
			body = body[1:]
		case len(body) > 0 && body[0] == kindLeafDigests:
			body = body[1:]
			break descend
		default:
			if _, err := expectKind(body, kindTreeNodes); err != nil {
				return fail(err)
			}
		}
		fan64, used := binary.Uvarint(body)
		if used <= 0 || int(fan64) != fanout {
			return fail(errors.New("bad tree nodes fanout"))
		}
		body = body[used:]
		n, used := binary.Uvarint(body)
		if used <= 0 {
			return fail(errors.New("bad tree nodes count"))
		}
		body = body[used:]
		nb := encoding.TreeBitmapLen(fanout)
		reply := []byte{kindTreeDiff}
		reply = binary.AppendUvarint(reply, n)
		for i := uint64(0); i < n; i++ {
			node, used, err := encoding.DecodeTreeNode(body, fanout, of)
			if err != nil {
				return fail(err)
			}
			body = body[used:]
			st := stripes[node.Stripe]
			if st == nil {
				return fail(fmt.Errorf("tree node for undeclared stripe %d", node.Stripe))
			}
			if node.Depth != st.depth {
				return fail(fmt.Errorf("tree node depth %d, stripe declared %d", node.Depth, st.depth))
			}
			srvBm, srvHashes := st.tree.Children(node.Level, node.Path)
			// differ bit c: exactly one side has child c, or both do with
			// different hashes.
			differ := make([]byte, nb)
			ci, si := 0, 0
			for c := 0; c < fanout; c++ {
				cliHas, srvHas := encoding.BitmapGet(node.Bitmap, c), encoding.BitmapGet(srvBm, c)
				var ch, sh uint64
				if cliHas {
					ch = node.Hashes[ci]
					ci++
				}
				if srvHas {
					sh = srvHashes[si]
					si++
				}
				if cliHas != srvHas || (cliHas && ch != sh) {
					encoding.BitmapSet(differ, c)
				}
			}
			reply = append(reply, differ...)
			reply = append(reply, srvBm...)
		}
		if len(body) != 0 {
			return fail(errors.New("trailing bytes in tree nodes frame"))
		}
		if err := writeFrame(conn, reply); err != nil {
			return false
		}
	}

	// Leaf phase: the client's digest runs for the still-divergent leaf
	// ranges. Every digest must belong to its run's stripe and fall inside
	// the run's position range — the range-scoped analogue of v3's
	// wantStripe check.
	n, used := binary.Uvarint(body)
	if used <= 0 {
		return fail(errors.New("bad leaf run count"))
	}
	body = body[used:]
	for i := uint64(0); i < n; i++ {
		run, usedRun, err := encoding.DecodeLeafRun(body, fanout, of)
		if err != nil {
			return fail(err)
		}
		body = body[usedRun:]
		st := stripes[run.Stripe]
		if st == nil {
			return fail(fmt.Errorf("leaf run for undeclared stripe %d", run.Stripe))
		}
		if run.Depth != st.depth {
			return fail(fmt.Errorf("leaf run depth %d, stripe declared %d", run.Depth, st.depth))
		}
		key := uint64(run.Stripe)<<40 | uint64(run.Level)<<32 | run.Path
		if seenRun[key] {
			return fail(errors.New("duplicate leaf run"))
		}
		seenRun[key] = true
		rg := kvstore.NodeRange(fanout, run.Level, run.Path)
		for _, d := range run.Digests {
			if kvstore.ShardIndex(d.Key, of) != run.Stripe {
				return fail(fmt.Errorf("leaf digest %q outside stripe %d", d.Key, run.Stripe))
			}
			if !rg.Contains(encoding.TreePos(d.Key)) {
				return fail(fmt.Errorf("leaf digest %q outside its run range", d.Key))
			}
		}
		if len(st.ranges) == 0 {
			order = append(order, run.Stripe)
		}
		st.ranges = append(st.ranges, rg)
		st.digests = append(st.digests, run.Digests...)
	}
	if len(body) != 0 {
		return fail(errors.New("trailing bytes in leaf digests frame"))
	}

	need := []byte{kindNeed}
	needCount := 0
	var needBody []byte
	for _, idx := range order {
		st := stripes[idx]
		diff, err := s.replica.DiffRanges(st.digests, idx, of, st.ranges)
		if err != nil {
			return fail(err)
		}
		for _, k := range diff.Need {
			needBody = appendString(needBody, k)
			needCount++
		}
	}
	need = binary.AppendUvarint(need, uint64(needCount))
	need = append(need, needBody...)
	if err := writeFrame(conn, need); err != nil {
		return false
	}

	// Tail: full entries in, range-scoped applies per stripe, one result.
	if body, err = readFrame(br); err != nil {
		return fail(fmt.Errorf("bad entries frame: %v", err))
	}
	if body, err = expectKind(body, kindEntries); err != nil {
		return fail(err)
	}
	count, used = binary.Uvarint(body)
	if used <= 0 {
		return fail(errors.New("bad entry count"))
	}
	body = body[used:]
	entries := make(map[int][]encoding.Entry, len(order))
	for i := uint64(0); i < count; i++ {
		e, n, err := encoding.DecodeEntry(body)
		if err != nil {
			return fail(err)
		}
		body = body[n:]
		idx := kvstore.ShardIndex(e.Key, of)
		st := stripes[idx]
		if st == nil || len(st.ranges) == 0 ||
			!kvstore.RangesContain(st.ranges, encoding.TreePos(e.Key)) {
			return fail(fmt.Errorf("entry %q outside the divergent leaf ranges", e.Key))
		}
		entries[idx] = append(entries[idx], e)
	}

	var res kvstore.SyncResult
	var reply []encoding.Entry
	for _, idx := range order {
		st := stripes[idx]
		stripeReply, part, err := s.replica.ApplyDeltaRanges(
			st.digests, entries[idx], s.resolve, idx, of, st.ranges)
		if err != nil {
			return fail(err)
		}
		res.Add(part)
		reply = append(reply, stripeReply...)
	}
	return writeFrame(conn, encodeResultFrame(res, reply)) == nil
}

// treeClientRound runs one v4 round over an established session. stripes
// selects the scoped stripe set; nil means every local stripe (a
// whole-replica round, with the root fast path and probe pipelining). pc
// carries the session's ack/probe state; it may be nil for sessions without
// pooling state (no probes are sent then).
func treeClientRound(pc *poolConn, conn net.Conn, br *bufio.Reader,
	local *kvstore.Replica, stripes []int) (kvstore.SyncResult, error) {
	of := local.Shards()
	wholeReplica := stripes == nil
	if stripes == nil {
		stripes = make([]int, of)
		for i := range stripes {
			stripes[i] = i
		}
	}
	trees := make(map[int]*kvstore.DigestTree, len(stripes))
	for _, idx := range stripes {
		t, err := local.StripeTree(idx)
		if err != nil {
			return kvstore.SyncResult{}, fmt.Errorf("antientropy: %w", err)
		}
		trees[idx] = t
	}
	fanout := treeFanoutOf(trees, stripes)

	// readAck consumes the server's one-byte session ack the first time a
	// frame reply is awaited on a fresh session. Called after the opening
	// frame is written, so negotiation rides the same round trip.
	readAck := func() error {
		if pc == nil || !pc.ackPending {
			return nil
		}
		pc.ackPending = false
		b, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("antientropy: session ack: %w", err)
		}
		if b != treeProtocolVersion {
			return fmt.Errorf("%w (opening byte 0x%02x)", errV4Unsupported, b)
		}
		return nil
	}
	// sendProbe pipelines the next round's root check behind this round.
	// A write failure is deliberately swallowed: the round itself already
	// succeeded on both sides, and the dead connection is discovered (and
	// redialed) by the next round's opening instead.
	sendProbe := func(root uint64) {
		if pc == nil || !wholeReplica {
			return
		}
		frame := []byte{kindRootProbe}
		frame = binary.AppendUvarint(frame, uint64(of))
		frame = binary.BigEndian.AppendUint64(frame, root)
		if writeFrame(conn, frame) == nil {
			pc.probePending, pc.probedRoot = true, root
		}
	}
	currentRoot := func() uint64 {
		roots := make([]uint64, 0, len(stripes))
		for _, idx := range stripes {
			t, err := local.StripeTree(idx)
			if err != nil {
				return 0
			}
			roots = append(roots, t.Root())
		}
		return treeFoldRoots(roots)
	}

	skipRoot := false
	var root uint64
	if wholeReplica {
		roots := make([]uint64, 0, len(stripes))
		for _, idx := range stripes {
			roots = append(roots, trees[idx].Root())
		}
		root = treeFoldRoots(roots)
	}
	if pc != nil && pc.probePending {
		// The previous round left a probe in flight; its answer is the next
		// frame on the wire and must be consumed before anything else.
		pc.probePending = false
		body, err := readFrame(br)
		if err != nil {
			return kvstore.SyncResult{}, fmt.Errorf("antientropy: receive probe answer: %w", err)
		}
		body, err = expectKind(body, kindRootMatch)
		if err != nil {
			return kvstore.SyncResult{}, err
		}
		if len(body) != 1 || body[0] > 1 {
			return kvstore.SyncResult{}, fmt.Errorf("%w: bad root match frame", ErrProtocol)
		}
		if wholeReplica && root == pc.probedRoot {
			if body[0] == 1 {
				// The probe *was* this round's root exchange: converged, and
				// nothing moved locally since. Re-arm and finish without a
				// single unanswered frame on the wire.
				sendProbe(root)
				return kvstore.SyncResult{StripesSkipped: of}, nil
			}
			skipRoot = true // known mismatch: go straight to the stripe roots
		}
		// Otherwise local state moved since the probe; run the full round.
	}

	if wholeReplica && !skipRoot {
		frame := []byte{kindRoot}
		frame = binary.AppendUvarint(frame, uint64(of))
		frame = binary.BigEndian.AppendUint64(frame, root)
		if err := writeFrame(conn, frame); err != nil {
			return kvstore.SyncResult{}, fmt.Errorf("antientropy: send root: %w", err)
		}
		if err := readAck(); err != nil {
			return kvstore.SyncResult{}, err
		}
		body, err := readFrame(br)
		if err != nil {
			return kvstore.SyncResult{}, fmt.Errorf("antientropy: receive: %w", err)
		}
		body, err = expectKind(body, kindRootMatch)
		if err != nil {
			return kvstore.SyncResult{}, err
		}
		if len(body) != 1 || body[0] > 1 {
			return kvstore.SyncResult{}, fmt.Errorf("%w: bad root match frame", ErrProtocol)
		}
		if body[0] == 1 {
			sendProbe(root)
			return kvstore.SyncResult{StripesSkipped: of}, nil
		}
	}

	// Stripe-root phase: one (stripe, depth, root) triple per scoped stripe.
	frame := []byte{kindStripeRoots}
	frame = binary.AppendUvarint(frame, uint64(of))
	frame = binary.AppendUvarint(frame, uint64(fanout))
	frame = binary.AppendUvarint(frame, uint64(len(stripes)))
	for _, idx := range stripes {
		t := trees[idx]
		frame = binary.AppendUvarint(frame, uint64(idx))
		frame = binary.AppendUvarint(frame, uint64(t.Depth()))
		frame = binary.BigEndian.AppendUint64(frame, t.Root())
	}
	if err := writeFrame(conn, frame); err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: send stripe roots: %w", err)
	}
	if err := readAck(); err != nil {
		return kvstore.SyncResult{}, err
	}
	body, err := readFrame(br)
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: receive: %w", err)
	}
	body, err = expectKind(body, kindStripeRootDiff)
	if err != nil {
		return kvstore.SyncResult{}, err
	}
	sent := make(map[int]bool, len(stripes))
	for _, idx := range stripes {
		sent[idx] = true
	}
	count, used := binary.Uvarint(body)
	if used <= 0 || count > uint64(len(stripes)) {
		return kvstore.SyncResult{}, fmt.Errorf("%w: bad stripe root diff count", ErrProtocol)
	}
	body = body[used:]
	divergent := make([]int, 0, count)
	for i := uint64(0); i < count; i++ {
		idx64, used := binary.Uvarint(body)
		if used <= 0 || !sent[int(idx64)] {
			return kvstore.SyncResult{}, fmt.Errorf("%w: bad stripe root diff stripe", ErrProtocol)
		}
		body = body[used:]
		divergent = append(divergent, int(idx64))
	}
	var res kvstore.SyncResult
	res.StripesSkipped = len(stripes) - len(divergent)
	if len(divergent) == 0 {
		sendProbe(root)
		return res, nil
	}

	// Descent: walk the divergent stripes' trees level by level, querying
	// only the children the server flagged as differing. A child that
	// differs becomes a leaf request when it sits at the bottom, or when
	// either side's subtree is empty (nothing left to narrow).
	type nodeCoord struct {
		stripe, level int
		path          uint64
	}
	fbits := encoding.TreeFanoutBits(fanout)
	nb := encoding.TreeBitmapLen(fanout)
	frontier := make([]nodeCoord, 0, len(divergent))
	for _, idx := range divergent {
		frontier = append(frontier, nodeCoord{stripe: idx})
	}
	var leafReqs []nodeCoord
	for len(frontier) > 0 {
		frame := []byte{kindTreeNodes}
		frame = binary.AppendUvarint(frame, uint64(fanout))
		frame = binary.AppendUvarint(frame, uint64(len(frontier)))
		for _, nc := range frontier {
			t := trees[nc.stripe]
			bm, hashes := t.Children(nc.level, nc.path)
			frame = encoding.AppendTreeNode(frame, encoding.TreeNode{
				Stripe: nc.stripe, Depth: t.Depth(), Level: nc.level, Path: nc.path,
				Bitmap: bm, Hashes: hashes,
			})
		}
		if err := writeFrame(conn, frame); err != nil {
			return res, fmt.Errorf("antientropy: send tree nodes: %w", err)
		}
		if body, err = readFrame(br); err != nil {
			return res, fmt.Errorf("antientropy: receive: %w", err)
		}
		if body, err = expectKind(body, kindTreeDiff); err != nil {
			return res, err
		}
		n, used := binary.Uvarint(body)
		if used <= 0 || n != uint64(len(frontier)) {
			return res, fmt.Errorf("%w: tree diff count %d, want %d", ErrProtocol, n, len(frontier))
		}
		body = body[used:]
		if len(body) != len(frontier)*2*nb {
			return res, fmt.Errorf("%w: bad tree diff frame length", ErrProtocol)
		}
		var next []nodeCoord
		for _, nc := range frontier {
			differ, srvBm := body[:nb], body[nb:2*nb]
			body = body[2*nb:]
			t := trees[nc.stripe]
			cliBm, _ := t.Children(nc.level, nc.path)
			for c := 0; c < fanout; c++ {
				if !encoding.BitmapGet(differ, c) {
					continue
				}
				child := nodeCoord{
					stripe: nc.stripe, level: nc.level + 1,
					path: nc.path<<uint(fbits) | uint64(c),
				}
				if child.level == t.Depth() || !encoding.BitmapGet(cliBm, c) ||
					!encoding.BitmapGet(srvBm, c) {
					leafReqs = append(leafReqs, child)
				} else {
					next = append(next, child)
				}
			}
		}
		frontier = next
	}

	// Leaf phase: ship the digest runs under the divergent leaf ranges, and
	// remember the ranges per stripe — the reply may only touch them.
	sentStamps := make(map[string]core.Stamp)
	rangesOf := make(map[int][]kvstore.TreeRange, len(divergent))
	frame = []byte{kindLeafDigests}
	frame = binary.AppendUvarint(frame, uint64(len(leafReqs)))
	for _, nc := range leafReqs {
		t := trees[nc.stripe]
		ds := t.Run(nc.level, nc.path)
		frame = encoding.AppendLeafRun(frame, encoding.LeafRun{
			Stripe: nc.stripe, Depth: t.Depth(), Level: nc.level, Path: nc.path,
			Digests: ds,
		})
		for _, d := range ds {
			sentStamps[d.Key] = d.Stamp
		}
		rangesOf[nc.stripe] = append(rangesOf[nc.stripe], kvstore.NodeRange(fanout, nc.level, nc.path))
	}
	if err := writeFrame(conn, frame); err != nil {
		return res, fmt.Errorf("antientropy: send leaf digests: %w", err)
	}

	// Tail: needs in, entries out, result in — v2/v3's exact retry-safety
	// semantics, including the point of no return at the entries frame.
	if body, err = readFrame(br); err != nil {
		return res, fmt.Errorf("antientropy: receive: %w", err)
	}
	if body, err = expectKind(body, kindNeed); err != nil {
		return res, err
	}
	count, used = binary.Uvarint(body)
	if used <= 0 {
		return res, fmt.Errorf("%w: bad need count", ErrProtocol)
	}
	body = body[used:]
	entriesFrame := []byte{kindEntries}
	entryBodies := make([]byte, 0, 64)
	sentEntries := uint64(0)
	for i := uint64(0); i < count; i++ {
		k, n, err := readString(body)
		if err != nil {
			return res, fmt.Errorf("%w: bad need key", ErrProtocol)
		}
		body = body[n:]
		v, ok := local.Version(k)
		if !ok {
			// Vanished since the digest (Adopt can drop keys); the next
			// round reconciles it.
			delete(sentStamps, k)
			continue
		}
		sentStamps[k] = v.Stamp
		entryBodies = encoding.AppendEntry(entryBodies, encoding.Entry{
			Key: k, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp,
		})
		sentEntries++
	}
	entriesFrame = binary.AppendUvarint(entriesFrame, sentEntries)
	entriesFrame = append(entriesFrame, entryBodies...)
	// Point of no return: identical to the v3 round — once any entries byte
	// is on the wire the server may apply them, so every failure from here
	// on is ErrRetryUnsafe and the pool surfaces it instead of redialing.
	if err := writeFrame(conn, entriesFrame); err != nil {
		return res, fmt.Errorf("%w: send entries: %w", ErrRetryUnsafe, err)
	}

	if body, err = readFrame(br); err != nil {
		return res, fmt.Errorf("%w: receive result: %w", ErrRetryUnsafe, err)
	}
	if body, err = expectKind(body, kindResult); err != nil {
		return res, err
	}
	part, reply, err := decodeResultFrame(body)
	if err != nil {
		return res, err
	}
	res.Add(part)
	// The server may only reply about the leaf ranges this round shipped —
	// reject anything else before applying, mirroring the server's own
	// check, so a faulty peer cannot slip keys into subtrees this round
	// declared converged.
	for _, e := range reply {
		rngs, ok := rangesOf[kvstore.ShardIndex(e.Key, of)]
		if !ok || !kvstore.RangesContain(rngs, encoding.TreePos(e.Key)) {
			return res, fmt.Errorf("%w: reply entry %q outside the divergent leaf ranges",
				ErrProtocol, e.Key)
		}
	}
	// The reply spans several stripes, so it is applied under the
	// whole-keyspace scope; the sentStamps guard still pins every entry to
	// the exact copy this round shipped.
	if _, err := local.ApplyDeltaReply(reply, sentStamps, 0, 0); err != nil {
		return res, fmt.Errorf("%w: apply delta reply: %w", ErrRetryUnsafe, err)
	}
	sendProbe(currentRoot())
	return res, nil
}

// treeFanoutOf returns the fan-out shared by the round's stripe trees.
// TreeShape always picks the same fan-out, so any tree answers; an empty
// stripe set (impossible: of >= 1) falls back to the local policy.
func treeFanoutOf(trees map[int]*kvstore.DigestTree, stripes []int) int {
	for _, idx := range stripes {
		return trees[idx].Fanout()
	}
	return treeFanout
}

// treeFanout mirrors kvstore's local fan-out policy for the degenerate
// empty-round fallback above.
const treeFanout = 16

package antientropy

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"time"

	"versionstamp/internal/core"
	"versionstamp/internal/hints"
	"versionstamp/internal/kvstore"
	"versionstamp/internal/membership"
	"versionstamp/internal/ring"
	"versionstamp/internal/storage"
	"versionstamp/internal/storage/wal"
)

// This file is the partitioned topology of Cluster: keys hash to stripes,
// stripes live on a consistent-hash ring with R owners each, gossip is
// owner-scoped, and reads/writes run through quorums with hinted handoff.
//
// The division of labor per GossipRound:
//
//  1. Membership: every up node ticks its view and swaps heartbeat tables
//     with a few up peers. Death is detected here, never declared — a
//     revived node's resumed counter re-alives it with no extra protocol.
//  2. Placement: a node whose view learned new member IDs rebuilds its
//     ring (deterministically — same members, same ring everywhere), and
//     divergence-bias entries involving dead peers are dropped.
//  3. Handoff: hints queued for targets whose heartbeats resumed drain by
//     MergeVersioned — the stamps decide on delivery whether each hinted
//     write is news, already obsolete, or a conflict.
//  4. Scrub: each durable up node re-verifies one stripe's at-rest bytes
//     (frame CRCs, checkpoint checksum) per round, quarantining a live
//     stripe the moment rot is found instead of at the next restart.
//  5. Anti-entropy: each node runs stripe-scoped v3 rounds with co-owners
//     of the stripes it owns. A converged stripe costs one summary frame,
//     so a node's idle wire cost is O(stripes it owns), independent of the
//     keyspace and of cluster size. A quarantined stripe is treated as
//     maximally divergent: its holder exchanges with every live co-owner
//     (the fan-out cap does not apply) so the rebuild finishes in as few
//     rounds as possible.
//  6. Repair: a quarantined stripe whose holder completed every exchange
//     it scheduled for it this round has been rebuilt in memory from the
//     other owners — the stamps arbitrated every key on the way in, so
//     the merge is exact, not a guess. The holder re-checkpoints the
//     stripe (replacing the damaged log wholesale) and lifts the
//     quarantine; when the last one clears, PersistErr clears with it.
//
// Dead owners keep their ring ownership (membership drives rebuilds only
// when the member set grows, e.g. AddNode): a transient failure is bridged
// by hints addressed to the same owner, Dynamo-style, not by re-homing the
// stripe. Ownership moves only when the member set changes, and then
// deterministically. Disk damage is likewise bridged in place: the stripe
// stays owned while quarantined, and repair restores it on the same node.

// RingConfig parameterizes NewRingCluster.
type RingConfig struct {
	// Nodes is the initial member count (>= 1).
	Nodes int
	// Replication is the owner count per stripe (1 <= R <= Nodes).
	Replication int
	// WriteQuorum is the ack count a Write needs (default: majority of R).
	WriteQuorum int
	// ReadQuorum is the live-owner count a Read needs (default: majority).
	ReadQuorum int
	// Stripes is the virtual stripe count (default kvstore.DefaultShards).
	// Every node's replica is striped identically so scoped rounds align.
	Stripes int
	// Seed drives peer selection; fixed seed, reproducible schedule.
	Seed int64
	// Resolver merges conflicting copies cluster-wide.
	Resolver kvstore.Resolver
	// DataDir, when set, makes nodes durable: node i's replica WAL lives
	// in DataDir/node-i and its hint queue in DataDir/node-i/hints. Empty
	// means in-memory (hint queues still run the storage.Backend code
	// path, over memory).
	DataDir string
	// DurableCount limits durability to the first N nodes when DataDir is
	// set (0 = all nodes durable). Large simulated clusters use it to keep
	// crash-restart coverage without opening thousands of WAL directories.
	DurableCount int
	// SuspectAfter/DeadAfter are the membership staleness thresholds in
	// rounds (defaults 3 and 6).
	SuspectAfter, DeadAfter int
	// Transport supplies each node's network; nil means TCP on loopback.
	// The chaos lab passes a chaosnet fabric here, so the identical
	// server/pool/protocol code paths run under injected faults.
	Transport TransportProvider
	// RoundTimeout bounds each node's network rounds and dials (0 = the
	// 10s default).
	RoundTimeout time.Duration
	// PoolIdle is the pooled-session idle expiry (0 = the 90s default,
	// negative = never expire — for logical-time transports).
	PoolIdle time.Duration
	// Backoff makes every node's pool skip rounds to repeatedly-failing
	// peers; the zero policy disables it.
	Backoff BackoffPolicy
	// GossipWorkers caps the per-round exchange worker pool (0 =
	// GOMAXPROCS). Deterministic scenarios set 1: exchange order then
	// follows schedule order exactly.
	GossipWorkers int
	// HintCap bounds each node's hint queue per dead target, dropping the
	// oldest hints on overflow (anti-entropy later converges what the
	// dropped hints promised). 0 = unbounded.
	HintCap int
}

// ErrQuorum is returned by Write and Read when too few owners acknowledged.
var ErrQuorum = errors.New("antientropy: quorum not reached")

// NewRingCluster starts a partitioned cluster. Close releases listeners,
// WALs and hint queues.
func NewRingCluster(cfg RingConfig) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("antientropy: cluster size %d is not positive", cfg.Nodes)
	}
	if cfg.Replication <= 0 || cfg.Replication > cfg.Nodes {
		return nil, fmt.Errorf("antientropy: replication %d outside [1, %d]", cfg.Replication, cfg.Nodes)
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = kvstore.DefaultShards
	}
	if cfg.Stripes < 1 {
		return nil, fmt.Errorf("antientropy: stripe count %d is not positive", cfg.Stripes)
	}
	if cfg.WriteQuorum == 0 {
		cfg.WriteQuorum = cfg.Replication/2 + 1
	}
	if cfg.ReadQuorum == 0 {
		cfg.ReadQuorum = cfg.Replication/2 + 1
	}
	if cfg.WriteQuorum < 1 || cfg.WriteQuorum > cfg.Replication {
		return nil, fmt.Errorf("antientropy: write quorum %d outside [1, %d]", cfg.WriteQuorum, cfg.Replication)
	}
	if cfg.ReadQuorum < 1 || cfg.ReadQuorum > cfg.Replication {
		return nil, fmt.Errorf("antientropy: read quorum %d outside [1, %d]", cfg.ReadQuorum, cfg.Replication)
	}
	c := &Cluster{
		resolve:      cfg.Resolver,
		index:        make(map[string]int, cfg.Nodes),
		group:        make([]int, cfg.Nodes),
		fanout:       DefaultFanout,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		div:          make(map[divKey]bool),
		wire:         make([]int64, cfg.Nodes),
		workers:      cfg.GossipWorkers,
		replication:  cfg.Replication,
		writeQuorum:  cfg.WriteQuorum,
		readQuorum:   cfg.ReadQuorum,
		stripes:      cfg.Stripes,
		memberCfg:    membership.Config{SuspectAfter: cfg.SuspectAfter, DeadAfter: cfg.DeadAfter},
		dataDir:      cfg.DataDir,
		ringCache:    make(map[string]*ring.Ring),
		transport:    cfg.Transport,
		roundTimeout: cfg.RoundTimeout,
		poolIdle:     cfg.PoolIdle,
		backoff:      cfg.Backoff,
		hintCap:      cfg.HintCap,
		durableCount: cfg.DurableCount,
	}
	roster := make([]string, cfg.Nodes)
	for i := range roster {
		roster[i] = fmt.Sprintf("node-%d", i)
	}
	for i := 0; i < cfg.Nodes; i++ {
		nd, err := c.newRingNode(roster[i], roster, c.durableLocked(i))
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
		c.index[nd.id] = i
	}
	return c, nil
}

// durableLocked reports whether node index i gets a WAL-backed replica.
func (c *Cluster) durableLocked(i int) bool {
	if c.dataDir == "" {
		return false
	}
	return c.durableCount == 0 || i < c.durableCount
}

// newRingNode builds one ring-mode node: replica (WAL-backed when durable),
// server, pool, hint queue, membership view seeded with roster, and the
// ring over that roster.
func (c *Cluster) newRingNode(id string, roster []string, durable bool) (*node, error) {
	nd := &node{id: id}
	if durable {
		nd.dataDir = filepath.Join(c.dataDir, id)
		r, err := kvstore.Open(nd.dataDir, kvstore.Options{Label: id, Shards: c.stripes})
		if err != nil {
			return nil, err
		}
		nd.replica = r
	} else {
		nd.replica = kvstore.NewReplicaShards(id, c.stripes)
	}
	q, err := c.openHints(nd)
	if err != nil {
		_ = c.releaseNode(nd)
		return nil, err
	}
	nd.hints = q
	view, err := membership.NewView(id, c.memberCfg, roster...)
	if err != nil {
		_ = c.releaseNode(nd)
		return nil, err
	}
	nd.view = view
	rg, err := c.ringFor(view.Members())
	if err != nil {
		_ = c.releaseNode(nd)
		return nil, err
	}
	nd.ring = rg
	nd.ringVer = view.MemberVersion()
	if err := c.startNode(nd); err != nil {
		_ = c.releaseNode(nd)
		return nil, err
	}
	return nd, nil
}

// ringFor returns the shared immutable ring over the given member set,
// building it once per distinct set. Ring construction sorts
// members × virtual-points hash points, which at 1k nodes is 64k points —
// paying that once per member set instead of once per node is what makes
// 1k-node scenarios tractable. Rings are immutable and concurrency-safe,
// so sharing one across nodes is sound.
func (c *Cluster) ringFor(members []string) (*ring.Ring, error) {
	key := strings.Join(members, "\x00")
	if rg, ok := c.ringCache[key]; ok {
		return rg, nil
	}
	rg, err := ring.New(members, c.stripes, c.replication)
	if err != nil {
		return nil, err
	}
	if c.ringCache == nil {
		c.ringCache = make(map[string]*ring.Ring)
	}
	c.ringCache[key] = rg
	return rg, nil
}

// openHints opens the node's hint queue over its durable directory, or over
// a fresh in-process backend, applying the cluster's per-target cap.
func (c *Cluster) openHints(nd *node) (*hints.Queue, error) {
	var be storage.Backend
	if nd.dataDir != "" {
		w, err := wal.Open(filepath.Join(nd.dataDir, "hints"), wal.Options{})
		if err != nil {
			return nil, err
		}
		be = w
	} else {
		be = storage.NewMemory()
	}
	return hints.OpenOptions(be, hints.Options{CapPerTarget: c.hintCap})
}

// startNode gives the node a fresh server, listener and pool, over the
// node's transport.
func (c *Cluster) startNode(nd *node) error {
	tr := c.transportFor(nd.id)
	nd.server = NewServer(nd.replica, c.resolve)
	addr, err := nd.server.ListenTransport(tr, "127.0.0.1:0")
	if err != nil {
		return err
	}
	nd.addr = addr
	nd.pool = NewPoolOptions(PoolOptions{
		Transport: tr,
		Timeout:   c.roundTimeout,
		Idle:      c.poolIdle,
		Backoff:   c.backoff,
	})
	return nil
}

// releaseNode closes whatever resources a partially built or dying node
// holds. Durable replicas are abandoned (crash semantics: the WAL stays).
func (c *Cluster) releaseNode(nd *node) error {
	var firstErr error
	if nd.pool != nil {
		_ = nd.pool.Close()
		nd.pool = nil
	}
	if nd.server != nil {
		if err := nd.server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		nd.server = nil
	}
	if nd.dataDir != "" && nd.replica != nil {
		if err := nd.replica.Abandon(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if nd.hints != nil {
		if err := nd.hints.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		nd.hints = nil
	}
	return firstErr
}

// ringRound is one owner-scoped gossip round; see the file comment for the
// phases.
func (c *Cluster) ringRound(k int) (RoundStats, error) {
	c.mu.Lock()
	stats := RoundStats{BytesPerNode: make([]int64, len(c.nodes))}

	// Phase 1: membership. Tick every up node, then swap heartbeat tables
	// between up to k random up peers per node (same partition group —
	// partitioned nodes cannot exchange liveness either). The tables ride
	// the same logical round as the data exchanges; in this in-process
	// harness they transfer directly.
	for _, nd := range c.nodes {
		if !nd.down {
			nd.view.Tick()
		}
	}
	for i, nd := range c.nodes {
		if nd.down {
			continue
		}
		peers := c.peerScratch[:0]
		for j, p := range c.nodes {
			if j != i && !p.down && c.group[i] == c.group[j] {
				peers = append(peers, j)
			}
		}
		c.rng.Shuffle(len(peers), func(a, b int) { peers[a], peers[b] = peers[b], peers[a] })
		if len(peers) > k {
			peers = peers[:k]
		}
		for _, j := range peers {
			// Both directions of the heartbeat swap, as direct view-to-view
			// merges (counters only move forward, so the asymmetry of the
			// second merge seeing the first's result is harmless).
			peer := c.nodes[j]
			nd.view.MergeFrom(peer.view)
			peer.view.MergeFrom(nd.view)
		}
		c.peerScratch = peers
	}

	// Phase 2: placement. Rebuild rings whose member set grew; drop
	// divergence bias involving peers this node now believes dead (the
	// stale-heat bugfix — no future exchange could ever cool those
	// entries).
	var firstErr error
	for _, nd := range c.nodes {
		if nd.down {
			continue
		}
		if v := nd.view.MemberVersion(); v != nd.ringVer {
			rg, err := c.ringFor(nd.view.Members())
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if rg != nd.ring {
				// Ownership moved: every piece of tombstone-GC evidence was
				// gathered under the old placement, so none of it proves
				// propagation to the stripes' new owner sets.
				c.conf = nil
			}
			nd.ring = rg
			nd.ringVer = v
		}
		for _, id := range nd.view.Members() {
			if nd.view.State(id) == membership.Dead {
				c.clearDivFor(id)
			}
		}
	}

	// Phase 3: hinted handoff to targets whose heartbeats resumed.
	if err := c.drainHintsLocked(&stats); err != nil && firstErr == nil {
		firstErr = err
	}

	// Phase 4: scrub. Every durable up node re-verifies one stripe's
	// at-rest bytes; damage quarantines the stripe (inside ScrubNext) and
	// the repair pass below takes it from there. A corruption finding is
	// the scrub working, not a round failure; any other verify error is.
	for _, nd := range c.nodes {
		if nd.down || nd.dataDir == "" {
			continue
		}
		s, err := nd.replica.ScrubNext()
		if s >= 0 {
			stats.StripesScrubbed++
		}
		if err != nil {
			var ce *storage.CorruptError
			if !errors.As(err, &ce) && firstErr == nil {
				firstErr = fmt.Errorf("antientropy: scrub %s stripe %d: %w", nd.id, s, err)
			}
		}
	}

	// Phase 5: schedule stripe-scoped exchanges. For each stripe a node
	// owns, it contacts up to k co-owners, divergence-hot ones first on
	// hotBias of the draws (same ε-greedy contract as full-replication
	// selection, per (pair, stripe) instead of per pair). A quarantined
	// stripe bypasses the cap: its holder contacts every live co-owner,
	// marks each pairing divergence-hot, and the repair pass watches the
	// outcomes.
	tasks := c.taskScratch[:0]
	track := make(map[exKey]*exTally)
	for i, nd := range c.nodes {
		if nd.down {
			continue
		}
		for _, s := range nd.ring.StripesOwnedBy(nd.id) {
			owners, err := nd.ring.Owners(s)
			if err != nil {
				continue
			}
			quar := nd.replica.StripeQuarantined(s)
			cand := c.peerScratch[:0]
			for _, oid := range owners {
				j, ok := c.index[oid]
				if !ok || j == i {
					continue
				}
				peer := c.nodes[j]
				if peer.down || c.group[i] != c.group[j] || nd.view.State(oid) == membership.Dead {
					continue
				}
				cand = append(cand, j)
			}
			c.rng.Shuffle(len(cand), func(a, b int) { cand[a], cand[b] = cand[b], cand[a] })
			if len(cand) > k && !quar {
				if c.rng.Float64() < hotBias {
					front := 0
					for x := 0; x < len(cand); x++ {
						if c.div[pairKey(nd.id, c.nodes[cand[x]].id, s)] {
							cand[front], cand[x] = cand[x], cand[front]
							front++
						}
					}
				}
				cand = cand[:k]
			}
			if quar {
				track[exKey{i, s}] = &exTally{}
				for _, j := range cand {
					c.markDiv(i, j, s, true)
				}
			}
			for _, j := range cand {
				tasks = append(tasks, c.task(i, j, s))
			}
			c.peerScratch = cand
		}
	}
	c.taskScratch = tasks
	c.mu.Unlock()

	if err := c.runGossip(tasks, &stats, track); err != nil && firstErr == nil {
		firstErr = err
	}

	// Phase 6: repair. A quarantined stripe whose holder reached every live
	// co-owner it scheduled (at least one, none failed) has been rebuilt in
	// memory by the stamp-arbitrated exchanges; re-checkpoint it and lift
	// the quarantine. Anything still quarantined is reported in the stats.
	c.mu.Lock()
	for i, nd := range c.nodes {
		if nd.down {
			continue
		}
		for _, s := range nd.replica.Quarantined() {
			tl := track[exKey{i, s}]
			if tl == nil || tl.ok == 0 || tl.failed > 0 {
				continue
			}
			if err := nd.replica.RepairStripe(s); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("antientropy: repair %s stripe %d: %w", nd.id, s, err)
				}
				continue
			}
			stats.StripesRepaired++
		}
		stats.StripesQuarantined += len(nd.replica.Quarantined())
	}

	// Phase 7: tombstone GC. Discard tombstones whose propagation to every
	// owner of their stripe the confirmation ledger has proven, so a
	// discarded delete can never resurrect its key.
	c.gcTombstonesLocked(&stats)
	for _, nd := range c.nodes {
		if !nd.down {
			stats.TombstonesLive += nd.replica.TombstonesLive()
		}
	}
	c.mu.Unlock()
	return stats, firstErr
}

// gcTombstonesLocked is the ring round's tombstone GC phase. A tombstone
// is memory that exists only to stop a slower copy of the key from
// resurrecting it, so it may be reclaimed exactly when no slower copy can
// exist — this phase discards a tombstone only once that is proven:
//
//   - No hints are queued anywhere (including the frozen counts of down
//     nodes): a hint is a detached pre-delete copy that would reinstall the
//     key at an owner whose tombstone is gone.
//   - All up nodes agree on the ring (pointer equality — rings are shared
//     via ringFor), so "the owners of stripe s" is well-defined.
//   - Every owner of the stripe is up, un-quarantined, and in one partition
//     group: a down or unreachable owner may hold a pre-delete copy of the
//     key (in-memory nodes keep state across Kill), and a quarantined
//     stripe's contents are incomplete mid-rebuild.
//   - The key is currently a tombstone at every owner, and each owner's
//     tombstone epoch is covered by that owner's confirmed-propagation
//     evidence against every co-owner (see confRecord). Single-owner
//     stripes (R == 1) need no evidence — there is no other copy to wait
//     for, which is also what finally reclaims tombstones of keys deleted
//     before ever replicating.
//
// Qualifying tombstones are discarded at every owner in the same locked
// phase; DiscardTombstones re-checks each key's epoch so a racing re-delete
// or revive is left alone. Known limitation: evidence resets wholesale on
// ring growth (c.conf = nil above), so GC pauses until exchanges under the
// new placement re-prove propagation — correct, just conservative.
func (c *Cluster) gcTombstonesLocked(stats *RoundStats) {
	if c.replication < 1 {
		return
	}
	var base *node
	for _, nd := range c.nodes {
		if nd.down {
			if nd.frozenHints > 0 {
				return
			}
			continue
		}
		if nd.hints != nil && nd.hints.Len() > 0 {
			return
		}
		if base == nil {
			base = nd
		} else if nd.ring != base.ring {
			return
		}
	}
	if base == nil {
		return
	}
	for s := 0; s < c.stripes; s++ {
		owners, err := base.ring.Owners(s)
		if err != nil {
			continue
		}
		idxs := make([]int, 0, len(owners))
		ok := true
		for _, oid := range owners {
			j, known := c.index[oid]
			if !known || c.nodes[j].down || c.nodes[j].replica.StripeQuarantined(s) ||
				c.group[j] != c.group[c.index[owners[0]]] {
				ok = false
				break
			}
			idxs = append(idxs, j)
		}
		if !ok {
			continue
		}
		// Each owner's tombstone ledger and the epoch up to which its state
		// is proven propagated to every co-owner (~uint64(0) = no co-owners).
		tombs := make([]map[string]uint64, len(idxs))
		minConf := make([]uint64, len(idxs))
		for x, j := range idxs {
			tombs[x] = c.nodes[j].replica.Tombstones(s)
			minConf[x] = ^uint64(0)
			for _, p := range idxs {
				if p == j {
					continue
				}
				e, have := c.conf[confKey{j, s, p}]
				if !have {
					minConf[x] = 0
					ok = false // no evidence at all: nothing here can qualify
					break
				}
				if e < minConf[x] {
					minConf[x] = e
				}
			}
			if len(tombs[x]) == 0 {
				ok = false // intersection is empty; skip the stripe cheaply
			}
		}
		if !ok {
			continue
		}
		// Candidates: tombstoned at every owner, each owner's tombstone
		// epoch within that owner's proven-propagation horizon.
		expect := make([]map[string]uint64, len(idxs))
		any := false
		for k, e0 := range tombs[0] {
			if e0 > minConf[0] {
				continue
			}
			qualifies := true
			for x := 1; x < len(idxs); x++ {
				e, held := tombs[x][k]
				if !held || e > minConf[x] {
					qualifies = false
					break
				}
			}
			if !qualifies {
				continue
			}
			for x := range idxs {
				if expect[x] == nil {
					expect[x] = make(map[string]uint64)
				}
				expect[x][k] = tombs[x][k]
			}
			any = true
		}
		if !any {
			continue
		}
		for x, j := range idxs {
			stats.TombstonesDiscarded += c.nodes[j].replica.DiscardTombstones(s, expect[x])
		}
	}
}

// drainHintsLocked delivers queued hints whose target is up and judged
// alive by the holder's view. Conflicted deliveries (nil resolver) requeue.
// Caller holds mu.
func (c *Cluster) drainHintsLocked(stats *RoundStats) error {
	var firstErr error
	for _, nd := range c.nodes {
		if nd.down {
			continue
		}
		for _, target := range nd.hints.Targets() {
			j, ok := c.index[target]
			if !ok {
				continue
			}
			tn := c.nodes[j]
			if tn.down || nd.view.State(target) != membership.Alive {
				continue
			}
			hs, err := nd.hints.Take(target)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			var requeue []hints.Hint
			for _, h := range hs {
				// A hint for a quarantined stripe waits: the target's copy of
				// the stripe is incomplete and mid-rebuild, and the hint's
				// promise is durability the stripe cannot offer yet.
				if tn.replica.StripeQuarantined(kvstore.ShardIndex(h.Key, c.stripes)) {
					requeue = append(requeue, h)
					continue
				}
				res, err := tn.replica.MergeVersioned(h.Key, kvstore.Versioned{
					Value: h.Value, Deleted: h.Deleted, Stamp: h.Stamp,
				}, c.resolve)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					requeue = append(requeue, h)
					continue
				}
				if len(res.Conflicts) > 0 {
					requeue = append(requeue, h)
					continue
				}
				stats.HintsDrained++
			}
			if len(requeue) > 0 {
				if err := nd.hints.Requeue(requeue); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

// ownersLocked returns the stripe's owner IDs per the first up node's ring
// (all up nodes agree once membership has settled). Caller holds mu.
func (c *Cluster) ownersLocked(stripe int) []string {
	for _, nd := range c.nodes {
		if !nd.down {
			owners, err := nd.ring.Owners(stripe)
			if err != nil {
				return nil
			}
			return owners
		}
	}
	return nil
}

// Write performs a quorum write: the first up owner of the key's stripe
// coordinates, applying locally and pushing the key (SyncKey) to each
// other live owner; owners that are down or judged dead get a durable hint
// instead (a hint is a promise, not an ack). It returns the ack count,
// with ErrQuorum when that is below the write quorum — the write is still
// applied wherever it reached, and anti-entropy plus hint drains finish
// the job, but the caller knows durability is degraded.
func (c *Cluster) Write(key string, value []byte) (int, error) {
	return c.write(key, value, false)
}

// Delete performs a quorum delete (a tombstone write).
func (c *Cluster) Delete(key string) (int, error) {
	return c.write(key, nil, true)
}

func (c *Cluster) write(key string, value []byte, del bool) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replication == 0 {
		return 0, fmt.Errorf("antientropy: quorum writes need a ring cluster")
	}
	stripe := kvstore.ShardIndex(key, c.stripes)
	owners := c.ownersLocked(stripe)
	var coord *node
	coordGroup := 0
	for _, oid := range owners {
		// An owner whose copy of this stripe is quarantined cannot
		// coordinate: its stripe contents are incomplete until repair.
		if j, ok := c.index[oid]; ok && !c.nodes[j].down &&
			!c.nodes[j].replica.StripeQuarantined(stripe) {
			coord = c.nodes[j]
			coordGroup = c.group[j]
			break
		}
	}
	if coord == nil {
		return 0, fmt.Errorf("%w: no owner of stripe %d is up", ErrQuorum, stripe)
	}
	if del {
		coord.replica.Delete(key)
	} else {
		coord.replica.Put(key, value)
	}
	acks := 1
	for _, oid := range owners {
		if oid == coord.id {
			continue
		}
		j, ok := c.index[oid]
		if !ok {
			continue
		}
		target := c.nodes[j]
		// An owner the coordinator cannot reach — crashed, judged dead, or
		// across a network partition — gets a durable hint instead of a
		// push. So does an owner whose copy of the stripe is quarantined:
		// it would take the write in memory but cannot persist it, and an
		// ack is a durability promise. A hint is a promise, not an ack, so
		// a partition that cuts the coordinator off from a quorum of owners
		// fails the write.
		if target.down || c.group[j] != coordGroup || coord.view.State(oid) == membership.Dead ||
			target.replica.StripeQuarantined(stripe) {
			cp, ok := coord.replica.ForkCopy(key)
			if !ok {
				continue
			}
			if err := coord.hints.Add(hints.Hint{
				Target: oid, Key: key, Value: cp.Value, Deleted: cp.Deleted, Stamp: cp.Stamp,
			}); err != nil {
				return acks, err
			}
			continue
		}
		if _, err := kvstore.SyncKey(coord.replica, target.replica, key, c.resolve); err == nil {
			acks++
		}
	}
	if acks < c.writeQuorum {
		return acks, fmt.Errorf("%w: %d of %d acks", ErrQuorum, acks, c.writeQuorum)
	}
	return acks, nil
}

// Read performs a quorum read: it gathers the key's copies from the live
// owners of its stripe, and when the stamps show divergence (or some owner
// lacks the key) it read-repairs by converging the owners pairwise before
// answering — the stamps prove which copies are obsolete, so repair moves
// only stale ones. ok=false means the key is absent (or tombstoned) at the
// quorum. ErrQuorum means fewer than ReadQuorum owners are up.
func (c *Cluster) Read(key string) (value []byte, ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replication == 0 {
		return nil, false, fmt.Errorf("antientropy: quorum reads need a ring cluster")
	}
	stripe := kvstore.ShardIndex(key, c.stripes)
	owners := c.ownersLocked(stripe)
	// The first up owner coordinates; owners across a partition are
	// unreachable from it and cannot serve the quorum.
	var live []*node
	coordGroup, haveCoord := 0, false
	for _, oid := range owners {
		j, ok := c.index[oid]
		if !ok || c.nodes[j].down {
			continue
		}
		// A quarantined owner's stripe contents are incomplete — it cannot
		// vouch for the key's presence or absence until repair.
		if c.nodes[j].replica.StripeQuarantined(stripe) {
			continue
		}
		if !haveCoord {
			coordGroup, haveCoord = c.group[j], true
		}
		if c.group[j] == coordGroup {
			live = append(live, c.nodes[j])
		}
	}
	if len(live) < c.readQuorum {
		return nil, false, fmt.Errorf("%w: %d of %d owners up", ErrQuorum, len(live), c.readQuorum)
	}

	copies := make([]kvstore.Versioned, len(live))
	present := make([]bool, len(live))
	anyPresent, divergent := false, false
	for i, nd := range live {
		copies[i], present[i] = nd.replica.Version(key)
		anyPresent = anyPresent || present[i]
	}
	if !anyPresent {
		return nil, false, nil
	}
	for i := 1; i < len(live); i++ {
		if present[i] != present[0] {
			divergent = true
			break
		}
		if present[i] && core.Compare(copies[0].Stamp, copies[i].Stamp) != core.Equal {
			divergent = true
			break
		}
	}
	if divergent {
		for _, other := range live[1:] {
			if _, err := kvstore.SyncKey(live[0].replica, other.replica, key, c.resolve); err != nil {
				return nil, false, err
			}
		}
	}
	v, ok := live[0].replica.Get(key)
	return v, ok, nil
}

// Kill takes node i down: its server and pooled sessions close, and a
// durable node's replica abandons its WAL without checkpointing — crash
// semantics, so Revive replays the log exactly as a process restart would.
// In-memory nodes keep their state (pause semantics; only durable nodes
// can lose and recover memory). The node's heartbeat counter freezes, so
// peers will suspect and then declare it dead.
func (c *Cluster) Kill(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("antientropy: node %d out of range", i)
	}
	nd := c.nodes[i]
	if nd.down {
		return nil
	}
	if c.replication == 0 {
		return fmt.Errorf("antientropy: kill/revive needs a ring cluster")
	}
	nd.down = true
	// Freeze the queued-hint count (the GC gate keeps counting a down
	// node's undelivered hints) and drop propagation evidence involving
	// the node — its post-revive state must be re-proven.
	if nd.hints != nil {
		nd.frozenHints = nd.hints.Len()
	}
	c.confClearFor(i)
	_ = nd.pool.Close()
	err := nd.server.Close()
	if nd.dataDir != "" {
		if aerr := nd.replica.Abandon(); aerr != nil && err == nil {
			err = aerr
		}
		if herr := nd.hints.Close(); herr != nil && err == nil {
			err = herr
		}
		nd.hints = nil
	}
	return err
}

// Revive brings a killed node back: a durable node reopens its WAL
// (checkpoint plus log tail — the crash-restart path) and its hint queue,
// and every revived node gets a fresh listener and pool. Its membership
// view resumes with a grace refresh, and its resumed heartbeat counter
// re-alives it at the peers within a few rounds — at which point their
// queued hints drain to it.
func (c *Cluster) Revive(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("antientropy: node %d out of range", i)
	}
	nd := c.nodes[i]
	if !nd.down {
		return nil
	}
	if nd.dataDir != "" {
		r, err := kvstore.Open(nd.dataDir, kvstore.Options{Label: nd.id, Shards: c.stripes})
		if err != nil {
			return err
		}
		nd.replica = r
		q, err := c.openHints(nd)
		if err != nil {
			_ = r.Abandon()
			return err
		}
		nd.hints = q
	}
	if err := c.startNode(nd); err != nil {
		return err
	}
	nd.view.Refresh()
	nd.down = false
	nd.frozenHints = 0
	c.confClearFor(i)
	return nil
}

// AddNode grows the ring: a new node joins with the current member roster
// as its bootstrap view, and its ID spreads to the existing members by
// membership gossip, after which every view's member set has grown and
// every ring deterministically rebuilds to give the newcomer its stripes.
// Anti-entropy then populates them from the surviving co-owners (a single
// addition shifts at most one owner per stripe, so every stripe keeps R-1
// owners holding its data). Returns the new node's index.
func (c *Cluster) AddNode() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replication == 0 {
		return 0, fmt.Errorf("antientropy: AddNode needs a ring cluster")
	}
	id := fmt.Sprintf("node-%d", len(c.nodes))
	if _, taken := c.index[id]; taken {
		return 0, fmt.Errorf("antientropy: node ID %s already exists", id)
	}
	// Bootstrap roster: the joining node contacts the current membership.
	roster := []string{id}
	for _, nd := range c.nodes {
		roster = append(roster, nd.id)
	}
	nd, err := c.newRingNode(id, roster, c.durableLocked(len(c.nodes)))
	if err != nil {
		return 0, err
	}
	i := len(c.nodes)
	c.nodes = append(c.nodes, nd)
	c.index[id] = i
	c.group = append(c.group, 0)
	c.wire = append(c.wire, 0)
	return i, nil
}

// HintsPending returns the total hinted writes queued across all up nodes.
func (c *Cluster) HintsPending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, nd := range c.nodes {
		if !nd.down && nd.hints != nil {
			total += nd.hints.Len()
		}
	}
	return total
}

// HintsDropped returns the total hints discarded by per-target caps across
// all nodes since the cluster started (0 without a HintCap).
func (c *Cluster) HintsDropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, nd := range c.nodes {
		if nd.hints != nil {
			total += nd.hints.Dropped()
		}
	}
	return total
}

// MemberStatus is one row of a node's membership opinion.
type MemberStatus struct {
	ID    string
	State string
}

// NodeStatus is a point-in-time report of one node — the ring-status
// surface behind `panasync serve -join` and examples/cluster.
type NodeStatus struct {
	ID           string
	Addr         string
	Down         bool
	OwnedStripes []int
	HintsPending int
	// Quarantined lists the node's stripes whose durable bytes are damaged
	// and awaiting repair from ring peers; empty on a healthy node.
	Quarantined []int
	// PersistErr is the node's standing durability degradation report
	// (quarantine, ENOSPC, fsync failure...), empty when durability holds.
	PersistErr string
	// TombstonesLive is the number of delete tombstones the node still
	// holds — retained until the gossip rounds' GC phase proves each one
	// propagated to every owner of its stripe.
	TombstonesLive int
	Members        []MemberStatus
}

// Status reports node i's identity, liveness, owned stripes, queued hints,
// storage health and membership opinion.
func (c *Cluster) Status(i int) (NodeStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		return NodeStatus{}, fmt.Errorf("antientropy: node %d out of range", i)
	}
	nd := c.nodes[i]
	st := NodeStatus{ID: nd.id, Addr: nd.addr, Down: nd.down}
	if nd.ring != nil {
		st.OwnedStripes = nd.ring.StripesOwnedBy(nd.id)
	}
	if nd.hints != nil {
		st.HintsPending = nd.hints.Len()
	}
	if nd.replica != nil {
		st.Quarantined = nd.replica.Quarantined()
		if pe := nd.replica.PersistErr(); pe != nil {
			st.PersistErr = pe.Error()
		}
		st.TombstonesLive = nd.replica.TombstonesLive()
	}
	if nd.view != nil {
		for _, id := range nd.view.Members() {
			st.Members = append(st.Members, MemberStatus{ID: id, State: nd.view.State(id).String()})
		}
	}
	return st, nil
}

// ringConvergedLocked reports ring-mode convergence: all up nodes agree on
// the ring, every stripe's up owners (same partition group) agree on the
// stripe's live contents, and no hints remain addressed to up targets.
// Caller holds mu.
func (c *Cluster) ringConvergedLocked() bool {
	var base *node
	for _, nd := range c.nodes {
		if !nd.down {
			base = nd
			break
		}
	}
	if base == nil {
		return true
	}
	baseNodes := base.ring.Nodes()
	for _, nd := range c.nodes {
		if nd.down {
			continue
		}
		// A quarantined stripe is unfinished business: its in-memory copy
		// is incomplete and its durable copy is damaged. The cluster is not
		// converged until repair clears it.
		if len(nd.replica.Quarantined()) > 0 {
			return false
		}
		nodes := nd.ring.Nodes()
		if len(nodes) != len(baseNodes) {
			return false
		}
		for i := range nodes {
			if nodes[i] != baseNodes[i] {
				return false
			}
		}
		for _, target := range nd.hints.Targets() {
			if j, ok := c.index[target]; ok && !c.nodes[j].down {
				return false
			}
		}
	}
	// Per-stripe owner agreement on live contents.
	byStripe := make(map[*node]map[int]map[string]string)
	snapshot := func(nd *node) map[int]map[string]string {
		if m, ok := byStripe[nd]; ok {
			return m
		}
		m := make(map[int]map[string]string)
		for _, k := range nd.replica.Keys() {
			s := kvstore.ShardIndex(k, c.stripes)
			if m[s] == nil {
				m[s] = make(map[string]string)
			}
			v, _ := nd.replica.Get(k)
			m[s][k] = string(v)
		}
		byStripe[nd] = m
		return m
	}
	for s := 0; s < c.stripes; s++ {
		owners, err := base.ring.Owners(s)
		if err != nil {
			return false
		}
		var live []*node
		for _, oid := range owners {
			if j, ok := c.index[oid]; ok && !c.nodes[j].down {
				live = append(live, c.nodes[j])
			}
		}
		for x := 0; x < len(live); x++ {
			for y := x + 1; y < len(live); y++ {
				if c.group[c.index[live[x].id]] != c.group[c.index[live[y].id]] {
					continue
				}
				if !stripeEqual(snapshot(live[x])[s], snapshot(live[y])[s]) {
					return false
				}
			}
		}
	}
	return true
}

func stripeEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

package antientropy

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"versionstamp/internal/kvstore"
	"versionstamp/internal/membership"
	"versionstamp/internal/storage/faultfs"
)

func newRingCluster(t *testing.T, cfg RingConfig) *Cluster {
	t.Helper()
	if cfg.Resolver == nil {
		cfg.Resolver = kvstore.KeepBoth([]byte("|"))
	}
	c, err := NewRingCluster(cfg)
	if err != nil {
		t.Fatalf("NewRingCluster: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestRingConfigValidation(t *testing.T) {
	bad := []RingConfig{
		{Nodes: 0, Replication: 1},
		{Nodes: -3, Replication: 1},
		{Nodes: 3, Replication: 0},
		{Nodes: 3, Replication: 4},
		{Nodes: 3, Replication: 3, Stripes: -1},
		{Nodes: 3, Replication: 3, WriteQuorum: 4},
		{Nodes: 3, Replication: 3, ReadQuorum: -1},
	}
	for i, cfg := range bad {
		if _, err := NewRingCluster(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// Legacy constructor and fanout validation (the satellite bugfix).
func TestClusterArgValidation(t *testing.T) {
	if _, err := NewCluster(0, nil, 1); err == nil {
		t.Error("NewCluster(0) accepted")
	}
	if _, err := NewCluster(-2, nil, 1); err == nil {
		t.Error("NewCluster(-2) accepted")
	}
	c := newCluster(t, 2)
	if err := c.SetFanout(0); err == nil {
		t.Error("SetFanout(0) accepted")
	}
	if err := c.SetFanout(-1); err == nil {
		t.Error("SetFanout(-1) accepted")
	}
	if err := c.SetFanout(3); err != nil {
		t.Errorf("SetFanout(3): %v", err)
	}
	if _, err := c.GossipRound(0); err == nil {
		t.Error("GossipRound(0) accepted")
	}
	if _, err := c.GossipRound(-1); err == nil {
		t.Error("GossipRound(-1) accepted")
	}
}

// Partition/Heal racing GossipRound must be safe (run with -race).
func TestPartitionHealConcurrentWithGossip(t *testing.T) {
	c := newCluster(t, 4)
	for i := 0; i < 4; i++ {
		r, _ := c.Replica(i)
		r.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < 20; n++ {
			_ = c.Partition([]int{0, 0, 1, 1})
			c.Heal()
		}
	}()
	for n := 0; n < 10; n++ {
		if _, err := c.GossipRound(2); err != nil {
			t.Errorf("round %d: %v", n, err)
		}
	}
	<-done
	c.Heal()
	if _, err := c.GossipUntilConverged(60); err != nil {
		t.Fatalf("convergence after churn: %v", err)
	}
}

func TestRingQuorumWriteRead(t *testing.T) {
	c := newRingCluster(t, RingConfig{Nodes: 5, Replication: 3, Stripes: 16, Seed: 1})
	acks, err := c.Write("alpha", []byte("1"))
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if acks != 3 {
		t.Errorf("acks = %d, want 3 (all owners up)", acks)
	}
	v, ok, err := c.Read("alpha")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Read = %q, %v, %v", v, ok, err)
	}
	// Absent key.
	if _, ok, err := c.Read("ghost"); err != nil || ok {
		t.Fatalf("Read(ghost) = %v, %v", ok, err)
	}
	// Quorum delete leaves the key quorum-absent.
	if _, err := c.Delete("alpha"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, _ := c.Read("alpha"); ok {
		t.Error("deleted key still quorum-readable")
	}
	// Writes land only on the stripe's owners: count copies across nodes.
	holders := 0
	for i := 0; i < 5; i++ {
		r, _ := c.Replica(i)
		if _, ok := r.Version("alpha"); ok {
			holders++
		}
	}
	if holders != 3 {
		t.Errorf("key held by %d nodes, want exactly the 3 owners", holders)
	}
}

// Read must repair divergence among owners before answering: after a write
// reaches only part of the quorum, a read still returns the newest value
// and leaves the owners stamp-converged on that key.
func TestRingReadRepair(t *testing.T) {
	c := newRingCluster(t, RingConfig{Nodes: 5, Replication: 3, Stripes: 8, Seed: 3})
	if _, err := c.Write("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Behind the quorum's back, advance the key at exactly one owner.
	stripe := kvstore.ShardIndex("k", 8)
	c.mu.Lock()
	owners := c.ownersLocked(stripe)
	first := c.nodes[c.index[owners[0]]]
	first.replica.Put("k", []byte("v2"))
	c.mu.Unlock()

	v, ok, err := c.Read("k")
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("Read = %q, %v, %v", v, ok, err)
	}
	// The read repaired: every owner now returns v2 directly.
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, oid := range owners {
		r := c.nodes[c.index[oid]].replica
		if got, _ := r.Get("k"); string(got) != "v2" {
			t.Errorf("owner %s has %q after read-repair", oid, got)
		}
	}
}

// Randomized property: a ring cluster driven by quorum writes (with random
// key churn) converges under owner-scoped gossip to exactly the state the
// writes describe — every key quorum-reads its last written value, the
// owners of each stripe agree, and non-owners hold none of its keys.
func TestRingQuorumConvergesLikeFullSync(t *testing.T) {
	const (
		nodes   = 7
		stripes = 32
		keys    = 60
	)
	c := newRingCluster(t, RingConfig{Nodes: nodes, Replication: 3, Stripes: stripes, Seed: 11})
	rng := rand.New(rand.NewSource(23))
	model := make(map[string]string)
	for op := 0; op < 300; op++ {
		k := fmt.Sprintf("key-%d", rng.Intn(keys))
		if rng.Float64() < 0.15 {
			if _, err := c.Delete(k); err != nil {
				t.Fatalf("op %d Delete(%s): %v", op, k, err)
			}
			delete(model, k)
			continue
		}
		v := fmt.Sprintf("v%d", op)
		if _, err := c.Write(k, []byte(v)); err != nil {
			t.Fatalf("op %d Write(%s): %v", op, k, err)
		}
		model[k] = v
	}
	if _, err := c.GossipUntilConverged(80); err != nil {
		t.Fatalf("convergence: %v", err)
	}
	for k, want := range model {
		v, ok, err := c.Read(k)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Read(%s) = %q, %v, %v; want %q", k, v, ok, err, want)
		}
	}
	// Placement invariant: each key lives at its stripe's owners and
	// nowhere else.
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, nd := range c.nodes {
		for _, k := range nd.replica.Keys() {
			s := kvstore.ShardIndex(k, stripes)
			if !nd.ring.Owns(nd.id, s) {
				t.Errorf("node %d holds %q of stripe %d it does not own", i, k, s)
			}
		}
	}
}

// ringChurnConfig is shared by the churn test and the acceptance test.
func tickUntilDead(t *testing.T, c *Cluster, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		if _, err := c.GossipRound(2); err != nil {
			t.Fatalf("churn round %d: %v", i, err)
		}
	}
}

// Membership churn with durable nodes: an owner dies, writes to its
// stripes hint to it; on revival it replays its WAL, hints drain, and the
// cluster converges with the revived node holding the missed writes.
func TestRingChurnHintedHandoff(t *testing.T) {
	c := newRingCluster(t, RingConfig{
		Nodes: 9, Replication: 3, Stripes: 64, Seed: 42,
		DataDir:      t.TempDir(),
		SuspectAfter: 1, DeadAfter: 2,
	})
	// Seed data and converge.
	for i := 0; i < 40; i++ {
		if _, err := c.Write(fmt.Sprintf("seed-%d", i), []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GossipUntilConverged(80); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	// Kill a node and write keys it owns: quorum must still be reached
	// (the two surviving owners ack) and a hint queued for the dead one.
	const victim = 4
	if err := c.Kill(victim); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	victimID := fmt.Sprintf("node-%d", victim)
	st, err := c.Status(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Down {
		t.Fatal("victim not reported down")
	}
	var hinted []string
	for i := 0; i < 400 && len(hinted) < 6; i++ {
		k := fmt.Sprintf("churn-%d", i)
		s := kvstore.ShardIndex(k, 64)
		c.mu.Lock()
		owned := false
		for _, oid := range c.ownersLocked(s) {
			if oid == victimID {
				owned = true
			}
		}
		c.mu.Unlock()
		if !owned {
			continue
		}
		acks, err := c.Write(k, []byte("missed"))
		if err != nil {
			t.Fatalf("Write(%s) with dead owner: %v", k, err)
		}
		if acks != 2 {
			t.Errorf("Write(%s) acks = %d, want 2 (dead owner hinted, not acked)", k, acks)
		}
		hinted = append(hinted, k)
	}
	if len(hinted) < 6 {
		t.Fatalf("only %d keys landed on the victim's stripes", len(hinted))
	}
	if got := c.HintsPending(); got < len(hinted) {
		t.Errorf("HintsPending = %d, want >= %d", got, len(hinted))
	}
	// Reads of hinted keys succeed from the surviving owners.
	for _, k := range hinted {
		if v, ok, err := c.Read(k); err != nil || !ok || string(v) != "missed" {
			t.Fatalf("Read(%s) with dead owner = %q, %v, %v", k, v, ok, err)
		}
	}
	// Let the peers declare the victim dead (hints must not drain early).
	tickUntilDead(t, c, 4)
	if got := c.HintsPending(); got < len(hinted) {
		t.Errorf("hints drained to a dead node: pending = %d", got)
	}

	// Revive: WAL replay restores the pre-kill state, membership re-alives
	// it, hints drain, and convergence completes.
	if err := c.Revive(victim); err != nil {
		t.Fatalf("Revive: %v", err)
	}
	r, err := c.Replica(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("seed-0"); len(r.Keys()) == 0 && !ok {
		t.Error("revived replica lost its durable state")
	}
	if _, err := c.GossipUntilConverged(120); err != nil {
		t.Fatalf("post-revival convergence: %v", err)
	}
	if got := c.HintsPending(); got != 0 {
		t.Errorf("HintsPending = %d after convergence", got)
	}
	r, _ = c.Replica(victim)
	for _, k := range hinted {
		if v, ok := r.Get(k); !ok || string(v) != "missed" {
			t.Errorf("revived node missing hinted key %s (= %q, %v)", k, v, ok)
		}
	}
}

// The stale-heat bugfix: divergence entries involving a peer survive only
// while some view still counts it alive; once declared dead they are
// dropped, so a departed node's last-known heat cannot attract picks.
func TestDeadPeerDivergenceCleared(t *testing.T) {
	c := newRingCluster(t, RingConfig{
		Nodes: 4, Replication: 2, Stripes: 8, Seed: 5,
		SuspectAfter: 1, DeadAfter: 2,
	})
	c.mu.Lock()
	c.markDiv(0, 1, 3, true)
	c.markDiv(1, 2, 5, true)
	c.mu.Unlock()
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	tickUntilDead(t, c, 4)
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.div {
		if k.a == "node-1" || k.b == "node-1" {
			t.Errorf("divergence entry %+v survived the peer's death", k)
		}
	}
}

// AddNode: the newcomer spreads through membership gossip, every ring
// rebuilds deterministically to include it, and anti-entropy populates its
// stripes from the surviving co-owners.
func TestAddNodeJoinsRing(t *testing.T) {
	c := newRingCluster(t, RingConfig{Nodes: 4, Replication: 2, Stripes: 32, Seed: 9})
	for i := 0; i < 30; i++ {
		if _, err := c.Write(fmt.Sprintf("k-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GossipUntilConverged(60); err != nil {
		t.Fatalf("pre-join convergence: %v", err)
	}
	idx, err := c.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if c.Size() != 5 {
		t.Fatalf("Size = %d", c.Size())
	}
	if _, err := c.GossipUntilConverged(120); err != nil {
		t.Fatalf("post-join convergence: %v", err)
	}
	st, err := c.Status(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.OwnedStripes) == 0 {
		t.Fatal("newcomer owns no stripes")
	}
	// Everyone agrees on a 5-node ring.
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, nd := range c.nodes {
		if got := len(nd.ring.Nodes()); got != 5 {
			t.Errorf("node %d ring has %d members", i, got)
		}
	}
	// The newcomer's replica holds every key of every stripe it owns.
	newbie := c.nodes[idx]
	owned := make(map[int]bool)
	for _, s := range st.OwnedStripes {
		owned[s] = true
	}
	for i, nd := range c.nodes {
		if i == idx {
			continue
		}
		for _, k := range nd.replica.Keys() {
			if owned[kvstore.ShardIndex(k, 32)] {
				if _, ok := newbie.replica.Get(k); !ok {
					t.Errorf("newcomer missing %q of an owned stripe", k)
				}
			}
		}
	}
}

// The quorum surface rejects calls on a full-replication cluster, and
// ErrQuorum surfaces when too few owners are up.
func TestQuorumErrors(t *testing.T) {
	legacy := newCluster(t, 2)
	if _, err := legacy.Write("k", nil); err == nil {
		t.Error("Write on full-replication cluster accepted")
	}
	if _, _, err := legacy.Read("k"); err == nil {
		t.Error("Read on full-replication cluster accepted")
	}
	if _, err := legacy.AddNode(); err == nil {
		t.Error("AddNode on full-replication cluster accepted")
	}
	if err := legacy.Kill(0); err == nil {
		t.Error("Kill on full-replication cluster accepted")
	}

	c := newRingCluster(t, RingConfig{Nodes: 3, Replication: 3, Stripes: 4, Seed: 2})
	if err := c.Kill(99); err == nil {
		t.Error("Kill out of range accepted")
	}
	if err := c.Revive(99); err == nil {
		t.Error("Revive out of range accepted")
	}
	// Kill two of three owners: writes and reads lose quorum (W=R=2 default).
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("k", []byte("v")); !errors.Is(err, ErrQuorum) {
		t.Errorf("Write with 1/3 owners up: %v", err)
	}
	if _, _, err := c.Read("k"); !errors.Is(err, ErrQuorum) {
		t.Errorf("Read with 1/3 owners up: %v", err)
	}
	// Revive one: quorum of 2 is reachable again.
	if err := c.Revive(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("k", []byte("v")); err != nil {
		t.Errorf("Write with 2/3 owners up: %v", err)
	}
}

func TestStatusReportsMembership(t *testing.T) {
	c := newRingCluster(t, RingConfig{Nodes: 3, Replication: 2, Stripes: 8, Seed: 4,
		SuspectAfter: 1, DeadAfter: 2})
	if _, err := c.Status(99); err == nil {
		t.Error("Status out of range accepted")
	}
	st, err := c.Status(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "node-0" || st.Addr == "" || st.Down {
		t.Errorf("Status(0) = %+v", st)
	}
	if len(st.Members) != 3 {
		t.Fatalf("Members = %v", st.Members)
	}
	for _, m := range st.Members {
		if m.State != membership.Alive.String() {
			t.Errorf("member %s state %s at start", m.ID, m.State)
		}
	}
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	tickUntilDead(t, c, 4)
	st, _ = c.Status(0)
	for _, m := range st.Members {
		if m.ID == "node-2" && m.State != membership.Dead.String() {
			t.Errorf("dead peer reported %s", m.State)
		}
	}
}

// Acceptance: a deterministic 9-node R=3 ring over 64 stripes survives an
// owner being killed and revived — quorum-readable throughout for keys with
// 2 live owners, hinted handoff drains on revival — and a converged round's
// per-node wire cost is O(owned stripes): at least 3x below what one v1
// full-snapshot exchange of the same keyspace costs a node.
func TestRingAcceptance9Nodes(t *testing.T) {
	const (
		nodes   = 9
		stripes = 64
		keyN    = 500
	)
	c := newRingCluster(t, RingConfig{
		Nodes: nodes, Replication: 3, Stripes: stripes, Seed: 1,
		DataDir:      t.TempDir(),
		SuspectAfter: 1, DeadAfter: 2,
	})
	val := func(i int) []byte {
		return []byte(fmt.Sprintf("value-%d-%032d", i, i))
	}
	for i := 0; i < keyN; i++ {
		if _, err := c.Write(fmt.Sprintf("key-%d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GossipUntilConverged(100); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	// Kill an owner, keep writing, revive, reconverge.
	const victim = 2
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("down-%d", i)
		if _, err := c.Write(k, []byte("while-down")); err != nil {
			t.Fatalf("Write(%s) during outage: %v", k, err)
		}
		if v, ok, err := c.Read(k); err != nil || !ok || string(v) != "while-down" {
			t.Fatalf("Read(%s) during outage = %q %v %v", k, v, ok, err)
		}
	}
	tickUntilDead(t, c, 4)
	if err := c.Revive(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GossipUntilConverged(150); err != nil {
		t.Fatalf("post-revival convergence: %v", err)
	}
	if n := c.HintsPending(); n != 0 {
		t.Fatalf("%d hints still pending after convergence", n)
	}
	for i := 0; i < keyN; i++ {
		k := fmt.Sprintf("key-%d", i)
		if v, ok, err := c.Read(k); err != nil || !ok || string(v) != string(val(i)) {
			t.Fatalf("Read(%s) after churn = %q %v %v", k, v, ok, err)
		}
	}

	// Converged idle round: per-node bytes must be O(owned stripes).
	idle, err := c.GossipRoundStats(2)
	if err != nil {
		t.Fatal(err)
	}
	var idleMax int64
	for _, b := range idle.BytesPerNode {
		if b > idleMax {
			idleMax = b
		}
	}
	if idleMax == 0 {
		t.Fatal("idle round recorded no wire bytes")
	}

	// Baseline: one v1 whole-snapshot exchange of the same keyspace — what
	// full-replica gossip costs a node per round regardless of convergence.
	full := kvstore.NewReplicaShards("full-a", stripes)
	peer := kvstore.NewReplicaShards("full-b", stripes)
	for i := 0; i < keyN; i++ {
		full.Put(fmt.Sprintf("key-%d", i), val(i))
	}
	srv := NewServer(full, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base, err := SyncWith(addr, peer)
	if err != nil {
		t.Fatal(err)
	}
	baseline := base.BytesSent + base.BytesReceived
	t.Logf("idle ring round max per-node bytes = %d; v1 snapshot exchange = %d (%.1fx)",
		idleMax, baseline, float64(baseline)/float64(idleMax))
	if idleMax*3 > baseline {
		t.Fatalf("converged-round bytes %d not 3x below full-replica baseline %d", idleMax, baseline)
	}
}

// The self-healing acceptance path: a node crashes, one of its WAL stripes
// rots while it is down, and on revival the damage is scoped to that stripe
// — quarantined, excluded from quorums, rebuilt from the other owners by
// anti-entropy, re-checkpointed, and cleared. The round after repair is
// summary-only for the rebuilt stripe.
func TestQuarantineRepairFromPeers(t *testing.T) {
	dir := t.TempDir()
	c := newRingCluster(t, RingConfig{
		Nodes: 9, Replication: 3, Stripes: 32, Seed: 42,
		DataDir: dir, SuspectAfter: 2, DeadAfter: 4,
	})
	for i := 0; i < 150; i++ {
		if _, err := c.Write(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GossipUntilConverged(80); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	// Crash a node and corrupt its busiest stripe's log at rest.
	const victim = 2
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	ndir := filepath.Join(dir, "node-2")
	stripe, ok := faultfs.BusiestShard(ndir, 32)
	if !ok {
		t.Fatal("victim has no WAL logs")
	}
	if _, err := faultfs.FlipLogByte(ndir, stripe, 7); err != nil {
		t.Fatalf("FlipLogByte: %v", err)
	}
	if err := c.Revive(victim); err != nil {
		t.Fatalf("Revive: %v", err)
	}

	// The revival scoped the damage: exactly that stripe quarantined, the
	// rest of the replica loaded, PersistErr reporting.
	r, err := c.Replica(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !r.StripeQuarantined(stripe) {
		t.Fatalf("stripe %d not quarantined after corrupt revival", stripe)
	}
	if q := r.Quarantined(); len(q) != 1 {
		t.Fatalf("Quarantined = %v, want just stripe %d", q, stripe)
	}
	st, err := c.Status(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0] != stripe {
		t.Fatalf("Status.Quarantined = %v, want [%d]", st.Quarantined, stripe)
	}
	if st.PersistErr == "" {
		t.Fatal("Status.PersistErr empty on a quarantined node")
	}
	if c.Converged() {
		t.Fatal("cluster reports converged with a quarantined stripe")
	}

	// Writes to the quarantined stripe still reach quorum — the victim is
	// hinted, not acked — and reads answer from the healthy owners.
	wrote := ""
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("during-%d", i)
		if kvstore.ShardIndex(k, 32) != stripe {
			continue
		}
		acks, err := c.Write(k, []byte("quarantined-write"))
		if err != nil {
			t.Fatalf("Write(%s) during quarantine: %v", k, err)
		}
		if acks > 2 {
			t.Errorf("Write(%s) acks = %d; the quarantined owner must not ack", k, acks)
		}
		if v, ok, err := c.Read(k); err != nil || !ok || string(v) != "quarantined-write" {
			t.Fatalf("Read(%s) during quarantine = %q, %v, %v", k, v, ok, err)
		}
		wrote = k
		break
	}
	if wrote == "" {
		t.Fatal("no probe key landed on the quarantined stripe")
	}

	// Gossip until the repair pass rebuilds and clears the stripe.
	repaired := false
	for round := 0; round < 120 && !c.Converged(); round++ {
		stats, err := c.GossipRoundStats(2)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if stats.StripesRepaired > 0 {
			repaired = true
		}
	}
	if !repaired {
		t.Fatal("no round reported a stripe repair")
	}
	if !c.Converged() {
		t.Fatal("cluster did not converge after repair")
	}
	if q := r.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined = %v after repair", q)
	}
	if err := r.PersistErr(); err != nil {
		t.Fatalf("PersistErr = %v after repair", err)
	}
	if v, ok := r.Get(wrote); !ok || string(v) != "quarantined-write" {
		t.Fatalf("repaired node's copy of %s = %q, %v", wrote, v, ok)
	}

	// The round after repair is summary-only: stripes verify by one summary
	// frame each, nothing moves, nothing is quarantined.
	stats, err := c.GossipRoundStats(2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moved != 0 {
		t.Errorf("post-repair round moved %d keys, want 0", stats.Moved)
	}
	if stats.StripesSkipped == 0 {
		t.Error("post-repair round reported no summary-only stripes")
	}
	if stats.StripesQuarantined != 0 || stats.StripesRepaired != 0 {
		t.Errorf("post-repair round stats = %+v, want no quarantine activity", stats)
	}
	if stats.StripesScrubbed == 0 {
		t.Error("scrub phase idle: no stripes verified this round")
	}

	// A clean restart of the repaired node finds healthy durable state.
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Revive(victim); err != nil {
		t.Fatal(err)
	}
	r2, _ := c.Replica(victim)
	if q := r2.Quarantined(); len(q) != 0 {
		t.Fatalf("restart after repair re-quarantined %v", q)
	}
	if v, ok := r2.Get(wrote); !ok || string(v) != "quarantined-write" {
		t.Fatalf("restarted node's copy of %s = %q, %v", wrote, v, ok)
	}
}

// The scrub phase demotes a live stripe: corruption planted under a running
// node is caught by the per-round verification sweep, not only at restart.
func TestScrubQuarantinesLiveStripe(t *testing.T) {
	dir := t.TempDir()
	c := newRingCluster(t, RingConfig{
		Nodes: 3, Replication: 3, Stripes: 4, Seed: 7,
		DataDir: dir, SuspectAfter: 2, DeadAfter: 4,
	})
	for i := 0; i < 60; i++ {
		if _, err := c.Write(fmt.Sprintf("key-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GossipUntilConverged(60); err != nil {
		t.Fatal(err)
	}
	ndir := filepath.Join(dir, "node-1")
	stripe, ok := faultfs.BusiestShard(ndir, 4)
	if !ok {
		t.Fatal("node-1 has no WAL logs")
	}
	if _, err := faultfs.FlipLogByte(ndir, stripe, 3); err != nil {
		t.Fatal(err)
	}
	r, _ := c.Replica(1)
	// One scrub pass over the 4 stripes runs in 4 rounds. The repair pass
	// can rebuild the stripe in the same round the scrub demotes it (the
	// node never went down, so its co-owners are right there), so the
	// proof of the live demotion is the round's repair count — the node
	// never restarted, and nothing else quarantines.
	caught := false
	for round := 0; round < 8 && !caught; round++ {
		stats, err := c.GossipRoundStats(2)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		caught = stats.StripesRepaired > 0 || len(r.Quarantined()) > 0
	}
	if !caught {
		t.Fatal("scrub never quarantined the corrupted live stripe")
	}
	if _, err := c.GossipUntilConverged(40); err != nil {
		t.Fatalf("convergence after live demotion: %v", err)
	}
	if q := r.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined = %v after repair", q)
	}
}

package antientropy

import (
	"errors"
	"fmt"
	"testing"

	"versionstamp/internal/kvstore"
)

func newCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(n, kvstore.KeepBoth([]byte("|")), 7)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestClusterBasics(t *testing.T) {
	c := newCluster(t, 3)
	if c.Size() != 3 {
		t.Errorf("Size = %d", c.Size())
	}
	if _, err := c.Replica(3); err == nil {
		t.Error("out-of-range replica accepted")
	}
	if _, err := NewCluster(1, nil, 1); err == nil {
		t.Error("1-node cluster accepted")
	}
	if err := c.Partition([]int{0}); err == nil {
		t.Error("wrong-length partition accepted")
	}
}

func TestGossipConvergence(t *testing.T) {
	c := newCluster(t, 4)
	// Each node writes its own key.
	for i := 0; i < c.Size(); i++ {
		r, err := c.Replica(i)
		if err != nil {
			t.Fatal(err)
		}
		r.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("from-%d", i)))
	}
	rounds, err := c.GossipUntilConverged(40)
	if err != nil {
		t.Fatalf("convergence: %v", err)
	}
	t.Logf("converged in %d rounds", rounds)
	// Every node has every key.
	for i := 0; i < c.Size(); i++ {
		r, _ := c.Replica(i)
		for j := 0; j < c.Size(); j++ {
			if _, ok := r.Get(fmt.Sprintf("key-%d", j)); !ok {
				t.Errorf("node %d missing key-%d", i, j)
			}
		}
	}
}

func TestGossipUnderPartition(t *testing.T) {
	c := newCluster(t, 4)
	r0, _ := c.Replica(0)
	r0.Put("shared", []byte("v1"))
	if _, err := c.GossipUntilConverged(40); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	// Split {0,1} | {2,3}; each side writes independently.
	if err := c.Partition([]int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	r0.Put("shared", []byte("left"))
	r2, _ := c.Replica(2)
	r2.Put("shared", []byte("right"))
	if _, err := c.GossipUntilConverged(40); err != nil {
		t.Fatalf("within-partition convergence: %v", err)
	}
	// Sides converged internally but to different values.
	r1, _ := c.Replica(1)
	r3, _ := c.Replica(3)
	v1, _ := r1.Get("shared")
	v3, _ := r3.Get("shared")
	if string(v1) != "left" || string(v3) != "right" {
		t.Fatalf("partition values: %q / %q", v1, v3)
	}

	// Heal: the concurrent writes are detected and merged by the resolver.
	c.Heal()
	if _, err := c.GossipUntilConverged(60); err != nil {
		t.Fatalf("post-heal convergence: %v", err)
	}
	va, _ := r1.Get("shared")
	vb, _ := r3.Get("shared")
	if string(va) != string(vb) {
		t.Fatalf("post-heal divergence: %q vs %q", va, vb)
	}
	if string(va) != "left|right" && string(va) != "right|left" {
		t.Errorf("merged value = %q", va)
	}
}

func TestGossipRoundSkipsPartitionedPairs(t *testing.T) {
	c := newCluster(t, 2)
	if err := c.Partition([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	ran, err := c.GossipRound(10)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Errorf("%d syncs ran across a full partition", ran)
	}
	// Convergence across the partition is impossible; within groups of one
	// it is trivially true.
	if _, err := c.GossipUntilConverged(3); err != nil {
		t.Fatalf("per-group convergence: %v", err)
	}
}

func TestGossipNonConvergenceBudget(t *testing.T) {
	c := newCluster(t, 3)
	r0, _ := c.Replica(0)
	r0.Put("k", []byte("v"))
	// Zero rounds cannot converge a dirty cluster.
	if _, err := c.GossipUntilConverged(0); !errors.Is(err, ErrNotConverged) {
		t.Errorf("want ErrNotConverged, got %v", err)
	}
}

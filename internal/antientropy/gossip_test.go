package antientropy

import (
	"errors"
	"fmt"
	"testing"

	"versionstamp/internal/kvstore"
)

func newCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(n, kvstore.KeepBoth([]byte("|")), 7)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestClusterBasics(t *testing.T) {
	c := newCluster(t, 3)
	if c.Size() != 3 {
		t.Errorf("Size = %d", c.Size())
	}
	if _, err := c.Replica(3); err == nil {
		t.Error("out-of-range replica accepted")
	}
	if _, err := NewCluster(1, nil, 1); err == nil {
		t.Error("1-node cluster accepted")
	}
	if err := c.Partition([]int{0}); err == nil {
		t.Error("wrong-length partition accepted")
	}
}

func TestGossipConvergence(t *testing.T) {
	c := newCluster(t, 4)
	// Each node writes its own key.
	for i := 0; i < c.Size(); i++ {
		r, err := c.Replica(i)
		if err != nil {
			t.Fatal(err)
		}
		r.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("from-%d", i)))
	}
	rounds, err := c.GossipUntilConverged(40)
	if err != nil {
		t.Fatalf("convergence: %v", err)
	}
	t.Logf("converged in %d rounds", rounds)
	// Every node has every key.
	for i := 0; i < c.Size(); i++ {
		r, _ := c.Replica(i)
		for j := 0; j < c.Size(); j++ {
			if _, ok := r.Get(fmt.Sprintf("key-%d", j)); !ok {
				t.Errorf("node %d missing key-%d", i, j)
			}
		}
	}
}

func TestGossipUnderPartition(t *testing.T) {
	c := newCluster(t, 4)
	r0, _ := c.Replica(0)
	r0.Put("shared", []byte("v1"))
	if _, err := c.GossipUntilConverged(40); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}

	// Split {0,1} | {2,3}; each side writes independently.
	if err := c.Partition([]int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	r0.Put("shared", []byte("left"))
	r2, _ := c.Replica(2)
	r2.Put("shared", []byte("right"))
	if _, err := c.GossipUntilConverged(40); err != nil {
		t.Fatalf("within-partition convergence: %v", err)
	}
	// Sides converged internally but to different values.
	r1, _ := c.Replica(1)
	r3, _ := c.Replica(3)
	v1, _ := r1.Get("shared")
	v3, _ := r3.Get("shared")
	if string(v1) != "left" || string(v3) != "right" {
		t.Fatalf("partition values: %q / %q", v1, v3)
	}

	// Heal: the concurrent writes are detected and merged by the resolver.
	c.Heal()
	if _, err := c.GossipUntilConverged(60); err != nil {
		t.Fatalf("post-heal convergence: %v", err)
	}
	va, _ := r1.Get("shared")
	vb, _ := r3.Get("shared")
	if string(va) != string(vb) {
		t.Fatalf("post-heal divergence: %q vs %q", va, vb)
	}
	if string(va) != "left|right" && string(va) != "right|left" {
		t.Errorf("merged value = %q", va)
	}
}

func TestGossipRoundSkipsPartitionedPairs(t *testing.T) {
	c := newCluster(t, 2)
	if err := c.Partition([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	ran, err := c.GossipRound(10)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Errorf("%d syncs ran across a full partition", ran)
	}
	// Convergence across the partition is impossible; within groups of one
	// it is trivially true.
	if _, err := c.GossipUntilConverged(3); err != nil {
		t.Fatalf("per-group convergence: %v", err)
	}
}

func TestGossipNonConvergenceBudget(t *testing.T) {
	c := newCluster(t, 3)
	r0, _ := c.Replica(0)
	r0.Put("k", []byte("v"))
	// Zero rounds cannot converge a dirty cluster.
	if _, err := c.GossipUntilConverged(0); !errors.Is(err, ErrNotConverged) {
		t.Errorf("want ErrNotConverged, got %v", err)
	}
}

// TestSelectPeersBiasesTowardDivergence: a hot peer (last exchange reported
// divergence) must be selected far more often than uniform choice would
// select it, yet cold peers must keep positive selection probability — the
// ε-greedy contract that makes biased gossip still live under churn.
func TestSelectPeersBiasesTowardDivergence(t *testing.T) {
	c, err := NewCluster(5, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.markDiv(0, 3, -1, true)
	const trials = 400
	hotHits := 0
	coldSeen := map[int]bool{}
	for trial := 0; trial < trials; trial++ {
		peers := c.selectPeers(0, 2)
		if len(peers) != 2 {
			t.Fatalf("selectPeers returned %d peers, want 2", len(peers))
		}
		for _, j := range peers {
			if j == 3 {
				hotHits++
			} else {
				coldSeen[j] = true
			}
		}
	}
	// Uniform choice picks peer 3 in 2 of 4 slots = 50% of trials; the
	// hot-first rounds (hotBias = 3/4) always include it, so expect
	// ~3/4 + 1/4×1/2 = 87.5%. Assert comfortably above uniform.
	if hotHits < trials*7/10 {
		t.Errorf("hot peer selected %d/%d trials; bias not in effect", hotHits, trials)
	}
	for j := 1; j < 5; j++ {
		if j != 3 && !coldSeen[j] {
			t.Errorf("cold peer %d starved across %d trials; selection must stay live", j, trials)
		}
	}
	// All cold: selection is the plain shuffle, every peer reachable.
	c.markDiv(0, 3, -1, false)
	seen := map[int]bool{}
	for trial := 0; trial < 60; trial++ {
		for _, j := range c.selectPeers(0, 2) {
			seen[j] = true
		}
	}
	for j := 1; j < 5; j++ {
		if !seen[j] {
			t.Errorf("cold peer %d never selected across 60 shuffled trials", j)
		}
	}
}

// TestGossipRecordsDivergence: an exchange that moved data marks the pair
// hot; a following converged exchange cools it back down.
func TestGossipRecordsDivergence(t *testing.T) {
	c, err := NewCluster(2, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r0, _ := c.Replica(0)
	r0.Put("k", []byte("v"))
	// Drive a single directed exchange (a full GossipRound runs both
	// directions, and the second, already-converged exchange would cool the
	// pair again within the same round — correctly, but uselessly here).
	round := func() {
		t.Helper()
		stats := RoundStats{BytesPerNode: make([]int64, 2)}
		if err := c.runGossip([]gossipTask{c.task(0, 1, -1)}, &stats, nil); err != nil {
			t.Fatal(err)
		}
	}
	round()
	if !c.divergent(0, 1, -1) || !c.divergent(1, 0, -1) {
		t.Errorf("divergent exchange did not mark the pair hot: %v", c.div)
	}
	round()
	if c.divergent(0, 1, -1) || c.divergent(1, 0, -1) {
		t.Errorf("converged exchange did not cool the pair: %v", c.div)
	}
}

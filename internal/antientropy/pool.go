package antientropy

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"versionstamp/internal/kvstore"
)

// defaultPoolIdle is how long a pooled connection may sit unused before the
// next round redials instead of reusing it. It stays under the server's
// serverSessionIdle so the pool normally retires a session before the
// server does.
const defaultPoolIdle = 90 * time.Second

// Pool maintains persistent v3 sessions keyed by peer address, so a gossip
// loop dials each peer once instead of once per round. Rounds to the same
// peer are serialized over that peer's single connection (they are
// multiplexed in time, framed back to back); rounds to different peers run
// concurrently. A round that fails on a previously working connection is
// transparently retried once on a fresh dial, which covers server restarts
// and idle-timeout closes without surfacing an error to the caller.
//
// Pool is safe for concurrent use. Close it to release the connections.
type Pool struct {
	idle    time.Duration
	timeout time.Duration

	mu     sync.Mutex
	conns  map[string]*poolConn
	closed bool

	dials atomic.Int64
}

// poolConn is the pool's state for one peer: at most one live session.
type poolConn struct {
	mu       sync.Mutex // serializes rounds on this session
	conn     *countingConn
	br       *bufio.Reader
	lastUsed time.Time
	rounds   int // rounds completed on the current connection
}

// NewPool creates an empty pool with the default idle and per-round
// timeouts.
func NewPool() *Pool {
	return &Pool{
		idle:    defaultPoolIdle,
		timeout: defaultTimeout,
		conns:   make(map[string]*poolConn),
	}
}

// Dials reports how many TCP connections the pool has opened since creation
// — the number a gossip session keeps at O(peers) where per-round dialing
// would pay O(rounds).
func (p *Pool) Dials() int64 { return p.dials.Load() }

// Close drops every pooled session, waiting for in-flight rounds to release
// their connections first (a round holds its session for at most the round
// timeout). New rounds fail immediately; the pool must not be used
// afterwards.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	// Taking each session lock serializes against in-flight rounds: either
	// the round finished and we close its connection, or the round is still
	// running and we close right after it releases. Rounds re-check closed
	// before dialing, so no connection can appear after this sweep.
	for _, pc := range conns {
		pc.mu.Lock()
		p.drop(pc)
		pc.mu.Unlock()
	}
	return nil
}

// entry returns (creating if needed) the pool slot for addr.
func (p *Pool) entry(addr string) (*poolConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errors.New("antientropy: pool closed")
	}
	pc, ok := p.conns[addr]
	if !ok {
		pc = &poolConn{}
		p.conns[addr] = pc
	}
	return pc, nil
}

// ensure makes pc hold a live session, dialing (and sending the v3 version
// byte) when there is none or the current one idled out. It reports whether
// the session is freshly dialed. pc.mu must be held.
func (p *Pool) ensure(pc *poolConn, addr string) (fresh bool, err error) {
	if pc.conn != nil && time.Since(pc.lastUsed) > p.idle {
		p.drop(pc)
	}
	if pc.conn != nil {
		return false, nil
	}
	raw, err := net.DialTimeout("tcp", addr, p.timeout)
	if err != nil {
		return false, fmt.Errorf("antientropy: dial %s: %w", addr, err)
	}
	p.dials.Add(1)
	conn := &countingConn{Conn: raw}
	_ = conn.SetDeadline(time.Now().Add(p.timeout))
	if _, err := conn.Write([]byte{hierProtocolVersion}); err != nil {
		_ = conn.Close()
		return false, fmt.Errorf("antientropy: open session %s: %w", addr, err)
	}
	pc.conn = conn
	pc.br = bufio.NewReader(conn)
	pc.rounds = 0
	return true, nil
}

// drop closes and forgets pc's session. pc.mu must be held.
func (p *Pool) drop(pc *poolConn) {
	if pc.conn != nil {
		_ = pc.conn.Close()
		pc.conn = nil
		pc.br = nil
	}
}

// ErrRetryUnsafe marks a round failure that happened after the round's
// entries frame may have reached the peer. The peer may have applied those
// entries and forked its stamps even though no reply arrived; re-running
// the round would present the same entries against the forked copies,
// which compare as causally unrelated and reconcile by reseeding — a
// double apply. Such failures surface to the caller instead of being
// retried; the next round reconciles from whatever state the peer reached.
var ErrRetryUnsafe = errors.New("antientropy: round not retriable: entries may have been applied")

// retriable reports whether a failed round may be transparently re-run on a
// fresh dial. The conditions are deliberately explicit:
//
//   - !fresh: the session existed before this attempt. A failure on a
//     connection dialed moments ago means the peer is down or rejecting,
//     not that a previously good session went stale.
//   - rounds > 0: the session had proven itself; its death is the known
//     server-restart/idle-drop pattern the retry exists for.
//   - not ErrProtocol: the server answered. Asking again would not change
//     its mind.
//   - not ErrRetryUnsafe: the round's entries frame was (possibly
//     partially) written before the failure. The server may have applied
//     it; re-sending would double-apply (see ErrRetryUnsafe).
func retriable(err error, fresh bool, rounds int) bool {
	return !fresh && rounds > 0 &&
		!errors.Is(err, ErrProtocol) &&
		!errors.Is(err, ErrRetryUnsafe)
}

// round runs fn over addr's pooled session, redialing transparently: a
// round that fails on a session that had already served rounds (the server
// restarted, or idled the session out under our idle threshold) is retried
// exactly once on a fresh dial, unless retrying could double-apply the
// round's entries (see retriable).
func (p *Pool) round(addr string,
	fn func(conn net.Conn, br *bufio.Reader) (kvstore.SyncResult, error)) (kvstore.SyncResult, error) {
	pc, err := p.entry(addr)
	if err != nil {
		return kvstore.SyncResult{}, err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for {
		// Re-checked under pc.mu on every attempt: once Close has set
		// closed it only remains to sweep the sessions, and it cannot pass
		// our pc.mu until we return — so a dial below can never outlive the
		// sweep unclosed.
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return kvstore.SyncResult{}, errors.New("antientropy: pool closed")
		}
		fresh, err := p.ensure(pc, addr)
		if err != nil {
			return kvstore.SyncResult{}, err
		}
		_ = pc.conn.SetDeadline(time.Now().Add(p.timeout))
		startSent, startRecv := pc.conn.sent.Load(), pc.conn.recv.Load()
		res, err := fn(pc.conn, pc.br)
		if err == nil {
			res.BytesSent = pc.conn.sent.Load() - startSent
			res.BytesReceived = pc.conn.recv.Load() - startRecv
			pc.rounds++
			pc.lastUsed = time.Now()
			return res, nil
		}
		retry := retriable(err, fresh, pc.rounds)
		p.drop(pc)
		if !retry {
			return kvstore.SyncResult{}, err
		}
	}
}

// SyncWith performs one hierarchical (v3) round between the local replica
// and the server at addr over the pooled session: summaries first, digests
// only for divergent stripes, copies only where stamps require them. The
// byte counters in the result cover exactly this round's frames.
func (p *Pool) SyncWith(addr string, local *kvstore.Replica) (kvstore.SyncResult, error) {
	return p.round(addr, func(conn net.Conn, br *bufio.Reader) (kvstore.SyncResult, error) {
		return hierClientRound(conn, br, local, nil)
	})
}

// SyncStripes performs one v3 round scoped to the given local stripes —
// the pooled, multiplexed replacement for dialing one connection per
// stripe: all scoped exchanges ride the same session.
func (p *Pool) SyncStripes(addr string, local *kvstore.Replica, stripes []int) (kvstore.SyncResult, error) {
	seen := make(map[int]bool, len(stripes))
	for _, idx := range stripes {
		if idx < 0 || idx >= local.Shards() {
			return kvstore.SyncResult{}, fmt.Errorf("antientropy: stripe %d out of range of %d",
				idx, local.Shards())
		}
		if seen[idx] {
			return kvstore.SyncResult{}, fmt.Errorf("antientropy: duplicate stripe %d", idx)
		}
		seen[idx] = true
	}
	scoped := append([]int(nil), stripes...)
	return p.round(addr, func(conn net.Conn, br *bufio.Reader) (kvstore.SyncResult, error) {
		return hierClientRound(conn, br, local, scoped)
	})
}

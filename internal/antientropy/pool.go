package antientropy

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"versionstamp/internal/kvstore"
)

// defaultPoolIdle is how long a pooled connection may sit unused before the
// next round redials instead of reusing it. It stays under the server's
// serverSessionIdle so the pool normally retires a session before the
// server does.
const defaultPoolIdle = 90 * time.Second

// Protocol selections for PoolOptions.Protocol.
const (
	// ProtocolAuto opens v4 tree sessions and transparently falls back to a
	// v3 session per peer whose server does not ack the v4 version byte.
	ProtocolAuto = 0
	// ProtocolHier forces v3 hierarchical sessions.
	ProtocolHier = 3
	// ProtocolTree forces v4 tree sessions; a peer that cannot speak v4
	// fails the round instead of falling back.
	ProtocolTree = 4
)

// Pool maintains persistent sessions (v4 tree rounds, falling back to v3
// per peer that cannot speak v4) keyed by peer address, so a gossip loop
// dials each peer once instead of once per round. Rounds to the same peer
// are serialized over that peer's single connection (they are multiplexed
// in time, framed back to back); rounds to different peers run
// concurrently. A round that fails on a previously working connection is
// transparently retried once on a fresh dial, which covers server restarts
// and idle-timeout closes without surfacing an error to the caller.
//
// Pool is safe for concurrent use. Close it to release the connections.
type Pool struct {
	idle      time.Duration
	timeout   time.Duration
	transport Transport
	backoff   BackoffPolicy
	protocol  int

	mu     sync.Mutex
	conns  map[string]*poolConn
	closed bool

	dials atomic.Int64
}

// poolConn is the pool's state for one peer: at most one live session.
type poolConn struct {
	mu       sync.Mutex // serializes rounds on this session
	conn     *countingConn
	br       *bufio.Reader
	lastUsed time.Time
	rounds   int // rounds completed on the current connection
	fails    int // consecutive failed rounds (armed backoff)
	skip     int // rounds left to skip before trying this peer again

	// v4 session state. proto is the live session's protocol version;
	// nextProto forces the next dial's version (how the v4→v3 fallback
	// sticks for a peer) and is consumed by ensure. ackPending means the
	// server's one-byte session ack has not been read yet; probePending
	// means a kindRootProbe for probedRoot is in flight and its answer is
	// the next frame on the wire.
	proto        int
	nextProto    int
	ackPending   bool
	probePending bool
	probedRoot   uint64
}

// BackoffPolicy skips rounds to a repeatedly-failing peer, so one dead or
// partitioned address does not stall every gossip round on a full dial
// timeout. It counts round attempts, not wall-clock time — deterministic
// under logical-time transports and exactly as effective over TCP, where
// each gossip round is one attempt.
//
// After the n-th consecutive failure the pool skips min(Base<<(n-1), Max)
// subsequent rounds to that peer, plus a jitter in [0, Base] seeded by
// (Seed, peer address, n) so a cohort of nodes that lost the same peer at
// the same time does not retry in lockstep. Skipped rounds fail fast with
// ErrPeerBackoff. A successful round resets the counter. The zero policy
// (Base == 0) disables backoff.
type BackoffPolicy struct {
	Base int   // rounds skipped after the first failure; 0 disables
	Max  int   // cap on skipped rounds; 0 means Base<<6
	Seed int64 // jitter seed
}

// skipAfter returns how many rounds to skip after the fails-th consecutive
// failure of addr.
func (b BackoffPolicy) skipAfter(addr string, fails int) int {
	if b.Base <= 0 || fails <= 0 {
		return 0
	}
	max := b.Max
	if max <= 0 {
		max = b.Base << 6
	}
	n := b.Base
	for i := 1; i < fails && n < max; i++ {
		n <<= 1
	}
	if n > max {
		n = max
	}
	// Seeded jitter: fold the seed, peer and failure count through a
	// splitmix64 finalizer.
	h := uint64(b.Seed) ^ uint64(fails)*0x9e3779b97f4a7c15
	for i := 0; i < len(addr); i++ {
		h = (h ^ uint64(addr[i])) * 0x100000001b3
	}
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return n + int(h%uint64(b.Base+1))
}

// ErrPeerBackoff marks a round skipped because the peer's backoff window is
// open: the peer failed recently and the pool is not ready to retry it yet.
// No network traffic happened; callers treat it as "peer temporarily
// excused", not as a new failure.
var ErrPeerBackoff = errors.New("antientropy: peer in backoff")

// PoolOptions configures a Pool. The zero value of every field selects the
// default, so callers set only what they need.
type PoolOptions struct {
	// Transport carries the pool's connections; nil means TCP.
	Transport Transport
	// Timeout bounds each round and each dial; 0 means the 10s default.
	Timeout time.Duration
	// Idle retires sessions unused for this long; 0 means the 90s default,
	// negative disables idle expiry (for logical-time transports, whose
	// sessions should never age by wall clock).
	Idle time.Duration
	// Backoff skips rounds to repeatedly-failing peers; the zero policy
	// disables it.
	Backoff BackoffPolicy
	// Protocol selects the session protocol: ProtocolAuto (v4 with
	// per-peer v3 fallback, the default), ProtocolHier, or ProtocolTree.
	Protocol int
}

// NewPool creates an empty pool with the default transport (TCP), idle and
// per-round timeouts, and no backoff.
func NewPool() *Pool {
	return NewPoolOptions(PoolOptions{})
}

// NewPoolOptions creates an empty pool with explicit options.
func NewPoolOptions(opts PoolOptions) *Pool {
	p := &Pool{
		idle:      opts.Idle,
		timeout:   opts.Timeout,
		transport: opts.Transport,
		backoff:   opts.Backoff,
		protocol:  opts.Protocol,
		conns:     make(map[string]*poolConn),
	}
	if p.idle == 0 {
		p.idle = defaultPoolIdle
	}
	if p.timeout == 0 {
		p.timeout = defaultTimeout
	}
	if p.transport == nil {
		p.transport = TCP
	}
	return p
}

// Dials reports how many TCP connections the pool has opened since creation
// — the number a gossip session keeps at O(peers) where per-round dialing
// would pay O(rounds).
func (p *Pool) Dials() int64 { return p.dials.Load() }

// Close drops every pooled session, waiting for in-flight rounds to release
// their connections first (a round holds its session for at most the round
// timeout). New rounds fail immediately; the pool must not be used
// afterwards.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	// Taking each session lock serializes against in-flight rounds: either
	// the round finished and we close its connection, or the round is still
	// running and we close right after it releases. Rounds re-check closed
	// before dialing, so no connection can appear after this sweep.
	for _, pc := range conns {
		pc.mu.Lock()
		p.drop(pc)
		pc.mu.Unlock()
	}
	return nil
}

// entry returns (creating if needed) the pool slot for addr.
func (p *Pool) entry(addr string) (*poolConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errors.New("antientropy: pool closed")
	}
	pc, ok := p.conns[addr]
	if !ok {
		pc = &poolConn{}
		p.conns[addr] = pc
	}
	return pc, nil
}

// ensure makes pc hold a live session, dialing (and sending the session's
// version byte) when there is none or the current one idled out. It reports
// whether the session is freshly dialed. pc.mu must be held.
func (p *Pool) ensure(pc *poolConn, addr string) (fresh bool, err error) {
	if pc.conn != nil && p.idle >= 0 && time.Since(pc.lastUsed) > p.idle {
		p.drop(pc)
	}
	if pc.conn != nil {
		return false, nil
	}
	// Pick the session protocol: the pool's forced option wins, then a
	// one-shot per-peer override (the v4→v3 fallback for this dial), else
	// v4. The override is consumed here so a later redial re-probes v4 —
	// the address may be served by an upgraded server by then.
	proto := p.protocol
	if proto == ProtocolAuto {
		proto = ProtocolTree
		if pc.nextProto != 0 {
			proto = pc.nextProto
			pc.nextProto = 0
		}
	}
	ver := byte(hierProtocolVersion)
	if proto == ProtocolTree {
		ver = treeProtocolVersion
	}
	raw, err := p.transport.Dial(addr, p.timeout)
	if err != nil {
		return false, fmt.Errorf("antientropy: dial %s: %w", addr, err)
	}
	p.dials.Add(1)
	conn := &countingConn{Conn: raw}
	_ = conn.SetDeadline(time.Now().Add(p.timeout))
	if _, err := conn.Write([]byte{ver}); err != nil {
		_ = conn.Close()
		return false, fmt.Errorf("antientropy: open session %s: %w", addr, err)
	}
	pc.conn = conn
	pc.br = bufio.NewReader(conn)
	pc.rounds = 0
	pc.proto = proto
	pc.ackPending = proto == ProtocolTree
	pc.probePending = false
	return true, nil
}

// drop closes and forgets pc's session. pc.mu must be held.
func (p *Pool) drop(pc *poolConn) {
	if pc.conn != nil {
		_ = pc.conn.Close()
		pc.conn = nil
		pc.br = nil
	}
	pc.ackPending = false
	pc.probePending = false
}

// ErrRetryUnsafe marks a round failure that happened after the round's
// entries frame may have reached the peer. The peer may have applied those
// entries and forked its stamps even though no reply arrived; re-running
// the round would present the same entries against the forked copies,
// which compare as causally unrelated and reconcile by reseeding — a
// double apply. Such failures surface to the caller instead of being
// retried; the next round reconciles from whatever state the peer reached.
var ErrRetryUnsafe = errors.New("antientropy: round not retriable: entries may have been applied")

// retriable reports whether a failed round may be transparently re-run on a
// fresh dial. The conditions are deliberately explicit:
//
//   - !fresh: the session existed before this attempt. A failure on a
//     connection dialed moments ago means the peer is down or rejecting,
//     not that a previously good session went stale.
//   - rounds > 0: the session had proven itself; its death is the known
//     server-restart/idle-drop pattern the retry exists for.
//   - not ErrProtocol: the server answered. Asking again would not change
//     its mind.
//   - not ErrRetryUnsafe: the round's entries frame was (possibly
//     partially) written before the failure. The server may have applied
//     it; re-sending would double-apply (see ErrRetryUnsafe).
func retriable(err error, fresh bool, rounds int) bool {
	return !fresh && rounds > 0 &&
		!errors.Is(err, ErrProtocol) &&
		!errors.Is(err, ErrRetryUnsafe)
}

// RoundInfo describes how a pooled round went, beyond its SyncResult — the
// raw material of structured round reports.
type RoundInfo struct {
	Attempts   int  // protocol attempts made (0 when skipped by backoff)
	FreshDials int  // attempts that required a fresh dial
	Retried    bool // a failed attempt was transparently retried
	Backoff    bool // the round was skipped by the peer's backoff window
}

// round runs fn over addr's pooled session, redialing transparently: a
// round that fails on a session that had already served rounds (the server
// restarted, or idled the session out under our idle threshold) is retried
// exactly once on a fresh dial, unless retrying could double-apply the
// round's entries (see retriable). With a backoff policy configured,
// repeated failures make subsequent rounds to the same peer fail fast with
// ErrPeerBackoff instead of re-paying the dial timeout.
func (p *Pool) round(addr string,
	fn func(pc *poolConn, conn net.Conn, br *bufio.Reader) (kvstore.SyncResult, error)) (kvstore.SyncResult, RoundInfo, error) {
	var info RoundInfo
	pc, err := p.entry(addr)
	if err != nil {
		return kvstore.SyncResult{}, info, err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.skip > 0 {
		pc.skip--
		info.Backoff = true
		return kvstore.SyncResult{}, info, fmt.Errorf("%w: %s (%d rounds left)", ErrPeerBackoff, addr, pc.skip)
	}
	for {
		// Re-checked under pc.mu on every attempt: once Close has set
		// closed it only remains to sweep the sessions, and it cannot pass
		// our pc.mu until we return — so a dial below can never outlive the
		// sweep unclosed.
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return kvstore.SyncResult{}, info, errors.New("antientropy: pool closed")
		}
		fresh, err := p.ensure(pc, addr)
		if err != nil {
			p.armBackoff(pc, addr)
			return kvstore.SyncResult{}, info, err
		}
		info.Attempts++
		if fresh {
			info.FreshDials++
		}
		_ = pc.conn.SetDeadline(time.Now().Add(p.timeout))
		startSent, startRecv := pc.conn.sent.Load(), pc.conn.recv.Load()
		res, err := fn(pc, pc.conn, pc.br)
		if err == nil {
			res.BytesSent = pc.conn.sent.Load() - startSent
			res.BytesReceived = pc.conn.recv.Load() - startRecv
			pc.rounds++
			pc.lastUsed = time.Now()
			pc.fails, pc.skip = 0, 0
			return res, info, nil
		}
		if errors.Is(err, errV4Unsupported) && p.protocol == ProtocolAuto {
			// The peer answered the v4 opening with something else: an
			// older server. Redial the session as v3 — not a failure, so no
			// backoff and no retriable() involvement.
			p.drop(pc)
			pc.nextProto = ProtocolHier
			continue
		}
		retry := retriable(err, fresh, pc.rounds)
		p.drop(pc)
		if !retry {
			p.armBackoff(pc, addr)
			return kvstore.SyncResult{}, info, err
		}
		info.Retried = true
	}
}

// armBackoff records a failed round against addr and opens its skip window
// per the pool's backoff policy. pc.mu must be held.
func (p *Pool) armBackoff(pc *poolConn, addr string) {
	pc.fails++
	pc.skip = p.backoff.skipAfter(addr, pc.fails)
}

// SyncWith performs one anti-entropy round between the local replica and
// the server at addr over the pooled session — a v4 tree round (roots, then
// diverging tree nodes, then leaf digest runs, copies only where stamps
// require them), or a v3 hierarchical round on sessions that fell back. The
// byte counters in the result cover exactly this round's frames.
func (p *Pool) SyncWith(addr string, local *kvstore.Replica) (kvstore.SyncResult, error) {
	res, _, err := p.SyncWithInfo(addr, local)
	return res, err
}

// SyncWithInfo is SyncWith plus the round's RoundInfo (attempts, fresh
// dials, retry and backoff verdicts).
func (p *Pool) SyncWithInfo(addr string, local *kvstore.Replica) (kvstore.SyncResult, RoundInfo, error) {
	return p.round(addr, func(pc *poolConn, conn net.Conn, br *bufio.Reader) (kvstore.SyncResult, error) {
		if pc.proto == ProtocolTree {
			return treeClientRound(pc, conn, br, local, nil)
		}
		return hierClientRound(conn, br, local, nil)
	})
}

// SyncStripes performs one round scoped to the given local stripes —
// the pooled, multiplexed replacement for dialing one connection per
// stripe: all scoped exchanges ride the same session.
func (p *Pool) SyncStripes(addr string, local *kvstore.Replica, stripes []int) (kvstore.SyncResult, error) {
	res, _, err := p.SyncStripesInfo(addr, local, stripes)
	return res, err
}

// SyncStripesInfo is SyncStripes plus the round's RoundInfo.
func (p *Pool) SyncStripesInfo(addr string, local *kvstore.Replica, stripes []int) (kvstore.SyncResult, RoundInfo, error) {
	seen := make(map[int]bool, len(stripes))
	for _, idx := range stripes {
		if idx < 0 || idx >= local.Shards() {
			return kvstore.SyncResult{}, RoundInfo{}, fmt.Errorf("antientropy: stripe %d out of range of %d",
				idx, local.Shards())
		}
		if seen[idx] {
			return kvstore.SyncResult{}, RoundInfo{}, fmt.Errorf("antientropy: duplicate stripe %d", idx)
		}
		seen[idx] = true
	}
	scoped := append([]int(nil), stripes...)
	return p.round(addr, func(pc *poolConn, conn net.Conn, br *bufio.Reader) (kvstore.SyncResult, error) {
		if pc.proto == ProtocolTree {
			return treeClientRound(pc, conn, br, local, scoped)
		}
		return hierClientRound(conn, br, local, scoped)
	})
}

package antientropy

import (
	"fmt"
	"sync"
	"testing"

	"versionstamp/internal/kvstore"
)

func TestSyncWithHierConverges(t *testing.T) {
	server, client := clonedPair(32)
	server.Put("key-0000", []byte("newer-on-server"))
	client.Put("key-0001", []byte("newer-on-client"))
	server.Put("key-0002", []byte("conc-server"))
	client.Put("key-0002", []byte("conc-client"))
	client.Put("client-only", []byte("x"))
	server.Put("server-only", []byte("y"))
	client.Delete("key-0003")

	_, addr := startServer(t, server, kvstore.KeepBoth([]byte("|")))
	res, err := SyncWithHier(addr, client)
	if err != nil {
		t.Fatalf("SyncWithHier: %v", err)
	}
	if res.Transferred != 2 || res.Reconciled != 3 || res.Merged != 1 {
		t.Errorf("result = %+v", res)
	}
	if res.StripesSkipped == 0 {
		t.Errorf("no stripes skipped by summaries: %+v", res)
	}
	if res.BytesSent == 0 || res.BytesReceived == 0 {
		t.Errorf("wire counters empty: %+v", res)
	}
	requireConverged(t, server, client)
	if _, ok := server.Get("key-0003"); ok {
		t.Error("tombstone did not reach the server")
	}
	if v, _ := server.Get("key-0002"); string(v) != "conc-server|conc-client" {
		t.Errorf("merged value = %q", v)
	}

	// The now-converged pair summarizes identically: a second round skips
	// every stripe and moves nothing.
	res, err = SyncWithHier(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred+res.Reconciled+res.Merged+res.Pruned != 0 {
		t.Errorf("converged round moved data: %+v", res)
	}
	if res.StripesSkipped != client.Shards() {
		t.Errorf("StripesSkipped = %d, want %d", res.StripesSkipped, client.Shards())
	}
}

// TestHierSyncWireSavings is the acceptance check for protocol v3: a
// converged 1000-key, 32-stripe round must move at least 20x fewer wire
// bytes over v3 than over v2, measured by the SyncResult byte counters of
// both protocols against the same server.
func TestHierSyncWireSavings(t *testing.T) {
	server, client := clonedPair(1000)
	if client.Shards() != 32 {
		t.Fatalf("expected 32-stripe default layout, got %d", client.Shards())
	}
	_, addr := startServer(t, server, nil)

	delta, err := SyncWithDelta(addr, client)
	if err != nil {
		t.Fatalf("SyncWithDelta: %v", err)
	}
	if delta.Pruned != 1000 {
		t.Fatalf("v2 baseline not converged: %+v", delta)
	}
	hier, err := SyncWithHier(addr, client)
	if err != nil {
		t.Fatalf("SyncWithHier: %v", err)
	}
	if hier.StripesSkipped != 32 || hier.Transferred+hier.Reconciled+hier.Merged != 0 {
		t.Fatalf("converged v3 round did not skip all stripes: %+v", hier)
	}
	deltaBytes := delta.BytesSent + delta.BytesReceived
	hierBytes := hier.BytesSent + hier.BytesReceived
	if deltaBytes == 0 || hierBytes == 0 {
		t.Fatalf("byte counters empty: v2=%d v3=%d", deltaBytes, hierBytes)
	}
	if hierBytes*20 > deltaBytes {
		t.Errorf("converged v3 sync %dB vs v2 %dB: less than 20x savings",
			hierBytes, deltaBytes)
	}
	// The second summary level: equal root hashes complete a converged round
	// with no per-stripe summary exchange, so the whole round fits well
	// under 64 bytes regardless of stripe count.
	if hierBytes >= 64 {
		t.Errorf("converged v3 round moved %dB; root-hash phase should keep it under 64B",
			hierBytes)
	}
	t.Logf("converged 1000-key round: v2 %dB, v3 %dB (%.1fx)",
		deltaBytes, hierBytes, float64(deltaBytes)/float64(hierBytes))
}

// TestHierMatchesDeltaProperty: across randomized divergence patterns, a v3
// round leaves both replicas exactly where a v2 round leaves an identically
// diverged pair.
func TestHierMatchesDeltaProperty(t *testing.T) {
	for seed := 0; seed < 6; seed++ {
		build := func() (*kvstore.Replica, *kvstore.Replica) {
			server, client := clonedPair(30)
			rng := seed + 1
			next := func(n int) int { rng = (rng*1103515245 + 12345) & 0x7fffffff; return rng % n }
			for i := 0; i < 30; i++ {
				k := fmt.Sprintf("key-%04d", i)
				switch next(7) {
				case 0:
					server.Put(k, []byte(fmt.Sprintf("s%d", next(100))))
				case 1:
					client.Put(k, []byte(fmt.Sprintf("c%d", next(100))))
				case 2:
					server.Put(k, []byte(fmt.Sprintf("s%d", next(100))))
					client.Put(k, []byte(fmt.Sprintf("c%d", next(100))))
				case 3:
					server.Delete(k)
				case 4:
					client.Delete(k)
				}
			}
			client.Put(fmt.Sprintf("fresh-%d", seed), []byte("new"))
			return server, client
		}
		deltaServer, deltaClient := build()
		hierServer, hierClient := build()

		_, deltaAddr := startServer(t, deltaServer, kvstore.KeepBoth([]byte("|")))
		if _, err := SyncWithDelta(deltaAddr, deltaClient); err != nil {
			t.Fatalf("seed %d: delta sync: %v", seed, err)
		}
		_, hierAddr := startServer(t, hierServer, kvstore.KeepBoth([]byte("|")))
		if _, err := SyncWithHier(hierAddr, hierClient); err != nil {
			t.Fatalf("seed %d: hier sync: %v", seed, err)
		}
		requireConverged(t, hierServer, hierClient)
		requireConverged(t, deltaServer, hierServer)
		requireConverged(t, deltaClient, hierClient)

		// And the converged pair's next v3 round skips every stripe.
		res, err := SyncWithHier(hierAddr, hierClient)
		if err != nil {
			t.Fatalf("seed %d: second hier sync: %v", seed, err)
		}
		if res.Transferred+res.Reconciled+res.Merged != 0 {
			t.Errorf("seed %d: converged round moved data: %+v", seed, res)
		}
		if res.StripesSkipped != hierClient.Shards() {
			t.Errorf("seed %d: StripesSkipped = %d, want %d",
				seed, res.StripesSkipped, hierClient.Shards())
		}
	}
}

// TestAllProtocolsCoexist drives v1, v2 and v3 rounds at the same server
// port: the leading byte selects the handler, so clients of every vintage
// interoperate with one upgraded server.
func TestAllProtocolsCoexist(t *testing.T) {
	server, client := clonedPair(8)
	_, addr := startServer(t, server, nil)

	client.Put("via-json", []byte("1"))
	if _, err := SyncWith(addr, client); err != nil {
		t.Fatalf("v1 round: %v", err)
	}
	client.Put("via-delta", []byte("2"))
	if _, err := SyncWithDelta(addr, client); err != nil {
		t.Fatalf("v2 round: %v", err)
	}
	client.Put("via-hier", []byte("3"))
	if _, err := SyncWithHier(addr, client); err != nil {
		t.Fatalf("v3 round: %v", err)
	}
	requireConverged(t, server, client)
	for _, k := range []string{"via-json", "via-delta", "via-hier"} {
		if _, ok := server.Get(k); !ok {
			t.Errorf("server missing %q", k)
		}
	}
}

func TestHierScopedStripes(t *testing.T) {
	server, client := clonedPair(64)
	client.Put("key-0000", []byte("edit-0"))
	client.Put("key-0001", []byte("edit-1"))
	in := kvstore.ShardIndex("key-0000", client.Shards())
	out := kvstore.ShardIndex("key-0001", client.Shards())
	if in == out {
		t.Fatalf("test keys landed in one stripe; pick different keys")
	}

	_, addr := startServer(t, server, nil)
	p := NewPool()
	defer p.Close()
	res, err := p.SyncStripes(addr, client, []int{in})
	if err != nil {
		t.Fatalf("SyncStripes: %v", err)
	}
	if res.Reconciled != 1 {
		t.Errorf("result = %+v", res)
	}
	if v, _ := server.Get("key-0000"); string(v) != "edit-0" {
		t.Errorf("scoped stripe did not sync: %q", v)
	}
	if v, _ := server.Get("key-0001"); string(v) == "edit-1" {
		t.Error("out-of-scope stripe synced")
	}

	// The rest of the keyspace follows on a whole-replica round over the
	// same pooled session — still one dial.
	if _, err := p.SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	requireConverged(t, server, client)
	if p.Dials() != 1 {
		t.Errorf("Dials = %d, want 1 (scoped + full rounds share the session)", p.Dials())
	}
}

// TestHierLayoutMismatch syncs replicas with different stripe counts: the
// server regroups its keys under the client's layout for the summary and
// digest phases.
func TestHierLayoutMismatch(t *testing.T) {
	server, client8 := clonedPair(100)
	// Rebuild the client at 8 stripes from a snapshot of the 32-stripe one.
	snap, err := client8.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	client := kvstore.NewReplicaShards("client8", 8)
	if err := client.Adopt(snap); err != nil {
		t.Fatal(err)
	}
	client.Put("key-0000", []byte("edited"))
	server.Put("extra", []byte("server-side"))

	_, addr := startServer(t, server, nil)
	res, err := SyncWithHier(addr, client)
	if err != nil {
		t.Fatalf("SyncWithHier across layouts: %v", err)
	}
	if res.Transferred != 1 || res.Reconciled != 1 {
		t.Errorf("result = %+v", res)
	}
	requireConverged(t, server, client)

	// Converged: every one of the client's 8 summary stripes matches.
	res, err = SyncWithHier(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.StripesSkipped != 8 || res.Transferred+res.Reconciled+res.Merged != 0 {
		t.Errorf("converged cross-layout round: %+v", res)
	}
}

// TestHierConflictReportedOverWire mirrors the v2 conflict test on v3.
func TestHierConflictReportedOverWire(t *testing.T) {
	server, client := clonedPair(4)
	server.Put("key-0000", []byte("conc-s"))
	client.Put("key-0000", []byte("conc-c"))
	_, addr := startServer(t, server, nil)
	res, err := SyncWithHier(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0] != "key-0000" {
		t.Errorf("Conflicts = %v", res.Conflicts)
	}
	if v, _ := client.Get("key-0000"); string(v) != "conc-c" {
		t.Errorf("conflicting copy changed: %q", v)
	}
}

// TestHierConcurrentWritersNeverMaskDivergence is the satellite race test:
// writers keep mutating the client while v3 rounds run; no divergent key
// may ever be hidden behind a stale stripe summary. After the writers stop,
// a final round (or two, for copies that moved mid-round) must reach full
// convergence — if a stale summary masked a key, convergence would fail.
// Run with -race.
func TestHierConcurrentWritersNeverMaskDivergence(t *testing.T) {
	server, client := clonedPair(64)
	_, addr := startServer(t, server, kvstore.KeepBoth([]byte("|")))
	p := NewPool()
	defer p.Close()

	const writers = 4
	var writerWg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("key-%04d", (w*16+i)%64)
				client.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i)))
				i++
			}
		}(w)
	}
	rounds := 20
	if testing.Short() {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		if _, err := p.SyncWith(addr, client); err != nil {
			close(stop)
			writerWg.Wait()
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	writerWg.Wait()

	// Quiescent now: at most two more rounds must fully converge the pair
	// (one for copies that moved mid-flight during the last racy round).
	for i := 0; i < 2; i++ {
		if _, err := p.SyncWith(addr, client); err != nil {
			t.Fatal(err)
		}
	}
	requireConverged(t, server, client)
}

package antientropy

import (
	"net"
	"time"
)

// Transport abstracts how this package reaches peers: production code runs
// over TCP, tests and the chaos lab inject an in-memory fabric
// (internal/chaosnet) so the identical protocol code paths — negotiation,
// framing, pooling, retry — execute under injected faults. Implementations
// must be safe for concurrent use.
type Transport interface {
	// Dial opens a connection to addr, giving up after timeout (transports
	// without wall-clock time may ignore it).
	Dial(addr string, timeout time.Duration) (net.Conn, error)
	// Listen opens a listener on addr and returns it; the listener's
	// Addr().String() is what peers pass to Dial.
	Listen(addr string) (net.Listener, error)
}

// TCP is the production transport: net.DialTimeout / net.Listen on "tcp".
// It is the default everywhere a Transport is optional.
var TCP Transport = tcpTransport{}

type tcpTransport struct{}

func (tcpTransport) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

func (tcpTransport) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// TransportProvider returns the transport a given node dials and listens
// through. Cluster code uses it instead of a single Transport because
// fault-injecting fabrics are directional: the fabric must know which host
// is dialing to apply per-link faults, so each node needs its own endpoint
// of the shared fabric. A nil provider (or nil result) means TCP.
type TransportProvider func(nodeID string) Transport

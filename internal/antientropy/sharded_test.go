package antientropy

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"versionstamp/internal/kvstore"
)

func TestShardedSyncConverges(t *testing.T) {
	server := kvstore.NewReplica("server")
	for i := 0; i < 40; i++ {
		server.Put(fmt.Sprintf("s-key-%02d", i), []byte("from-server"))
	}
	_, addr := startServer(t, server, nil)

	client := kvstore.NewReplica("client")
	for i := 0; i < 40; i++ {
		client.Put(fmt.Sprintf("c-key-%02d", i), []byte("from-client"))
	}
	res, err := SyncWithSharded(addr, client)
	if err != nil {
		t.Fatalf("SyncWithSharded: %v", err)
	}
	if res.Transferred != 80 {
		t.Errorf("result = %+v", res)
	}
	for i := 0; i < 40; i++ {
		for _, k := range []string{fmt.Sprintf("s-key-%02d", i), fmt.Sprintf("c-key-%02d", i)} {
			vs, okS := server.Get(k)
			vc, okC := client.Get(k)
			if !okS || !okC || !bytes.Equal(vs, vc) {
				t.Fatalf("diverged on %q: %q/%v vs %q/%v", k, vs, okS, vc, okC)
			}
		}
	}
	// A repeated sharded round is a no-op.
	res, err = SyncWithSharded(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred != 0 || res.Reconciled != 0 || res.Merged != 0 {
		t.Errorf("second sharded round not a no-op: %+v", res)
	}
}

func TestShardedSyncMatchesWholeSync(t *testing.T) {
	// Two identical divergence scenarios, one synced per shard, one whole.
	build := func() (*kvstore.Replica, *kvstore.Replica) {
		s := kvstore.NewReplica("s")
		for i := 0; i < 30; i++ {
			s.Put(fmt.Sprintf("key-%02d", i), []byte("base"))
		}
		c := s.Clone("c")
		for i := 0; i < 30; i += 3 {
			c.Put(fmt.Sprintf("key-%02d", i), []byte("edited"))
		}
		s.Put("key-01", []byte("server-side"))
		return s, c
	}

	s1, c1 := build()
	_, addr1 := startServer(t, s1, nil)
	resSharded, err := SyncWithSharded(addr1, c1)
	if err != nil {
		t.Fatal(err)
	}
	s2, c2 := build()
	_, addr2 := startServer(t, s2, nil)
	resWhole, err := SyncWith(addr2, c2)
	if err != nil {
		t.Fatal(err)
	}
	if resSharded.Transferred != resWhole.Transferred ||
		resSharded.Reconciled != resWhole.Reconciled ||
		resSharded.Merged != resWhole.Merged {
		t.Errorf("sharded %+v vs whole %+v", resSharded, resWhole)
	}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v1, ok1 := c1.Get(k)
		v2, ok2 := c2.Get(k)
		if ok1 != ok2 || !bytes.Equal(v1, v2) {
			t.Fatalf("per-shard and whole sync disagree on %q: %q/%v vs %q/%v",
				k, v1, ok1, v2, ok2)
		}
	}
}

func TestShardedSyncConflictsReported(t *testing.T) {
	server := kvstore.NewReplica("server")
	server.Put("k", []byte("base"))
	_, addr := startServer(t, server, nil)
	client := kvstore.NewReplica("client")
	if _, err := SyncWithSharded(addr, client); err != nil {
		t.Fatal(err)
	}
	server.Put("k", []byte("S"))
	client.Put("k", []byte("C"))
	res, err := SyncWithSharded(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0] != "k" {
		t.Errorf("result = %+v", res)
	}
	if got, _ := client.Get("k"); string(got) != "C" {
		t.Errorf("client value clobbered: %q", got)
	}
}

func TestShardedSyncServerDown(t *testing.T) {
	client := kvstore.NewReplica("client")
	client.Put("k", []byte("v"))
	if _, err := SyncWithSharded("127.0.0.1:1", client); err == nil {
		t.Error("sharded sync with a dead server must fail")
	}
	if got, ok := client.Get("k"); !ok || string(got) != "v" {
		t.Errorf("client state damaged by failed sync: %q, %v", got, ok)
	}
}

func TestShardScopedRequestValidation(t *testing.T) {
	server := kvstore.NewReplica("server")
	_, addr := startServer(t, server, nil)
	client := kvstore.NewReplica("client")
	// A scoped round with an out-of-range shard index is rejected
	// server-side and surfaces as a protocol error.
	snap, err := client.SnapshotShard(0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = roundTrip(addr, request{
		V: protocolVersion, Snapshot: snap, Shard: 99, Of: 4,
	}, defaultTimeout)
	if err == nil {
		t.Error("server accepted an out-of-range shard index")
	}
}

// TestShardedConcurrentClients: several clients run full per-shard rounds
// against one server at once; all stripes stay coherent.
func TestShardedConcurrentClients(t *testing.T) {
	server := kvstore.NewReplica("server")
	server.Put("base", []byte("v"))
	_, addr := startServer(t, server, kvstore.KeepBoth([]byte("|")))
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := kvstore.NewReplica(fmt.Sprintf("c%d", i))
			for j := 0; j < 10; j++ {
				c.Put(fmt.Sprintf("k%d-%d", i, j), []byte("x"))
			}
			if _, err := SyncWithSharded(addr, c); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent sharded sync: %v", err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			if _, ok := server.Get(fmt.Sprintf("k%d-%d", i, j)); !ok {
				t.Errorf("server missing k%d-%d", i, j)
			}
		}
	}
}

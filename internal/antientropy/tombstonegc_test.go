package antientropy

import (
	"fmt"
	"math/rand"
	"testing"

	"versionstamp/internal/kvstore"
)

// gcRounds runs up to n gossip rounds, returning the accumulated discard
// count and the final live-tombstone gauge, stopping early once the gauge
// reaches zero.
func gcRounds(t *testing.T, c *Cluster, n int) (discarded, live int) {
	t.Helper()
	for i := 0; i < n; i++ {
		stats, err := c.GossipRoundStats(c.Fanout())
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		discarded += stats.TombstonesDiscarded
		live = stats.TombstonesLive
		if live == 0 {
			return discarded, live
		}
	}
	return discarded, live
}

// Tombstones are discarded once anti-entropy has proven their propagation
// to every owner, and the discarded deletes stay deleted.
func TestTombstoneGCDiscardsAfterPropagation(t *testing.T) {
	c := newRingCluster(t, RingConfig{Nodes: 5, Replication: 3, Stripes: 16, Seed: 7})
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
		if _, err := c.Write(keys[i], []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys[:20] {
		if _, err := c.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	discarded, live := gcRounds(t, c, 40)
	if live != 0 {
		t.Fatalf("TombstonesLive = %d after GC rounds (discarded %d)", live, discarded)
	}
	// Every owner's tombstone for each deleted key is one discard; the
	// exact count depends on quorum pushes vs gossip, but at least one
	// discard per deleted key must have happened.
	if discarded < 20 {
		t.Fatalf("TombstonesDiscarded = %d, want >= 20", discarded)
	}
	for _, k := range keys[:20] {
		if _, ok, err := c.Read(k); err != nil || ok {
			t.Fatalf("deleted key %q resurrected: ok=%v err=%v", k, ok, err)
		}
	}
	for _, k := range keys[20:] {
		if v, ok, err := c.Read(k); err != nil || !ok || string(v) != "v" {
			t.Fatalf("live key %q lost: %q %v %v", k, v, ok, err)
		}
	}
	// The discard removed the stored tombstone state entirely.
	for i := 0; i < c.Size(); i++ {
		r, _ := c.Replica(i)
		if n := r.TombstonesLive(); n != 0 {
			t.Fatalf("node %d still holds %d tombstones", i, n)
		}
		for _, k := range keys[:20] {
			if _, ok := r.Version(k); ok {
				t.Fatalf("node %d still stores state for discarded %q", i, k)
			}
		}
	}
}

// Single-owner stripes (R == 1) have no co-owner to wait for: their
// tombstones discard without any propagation evidence — the fix for
// never-replicated deletes pinning memory forever.
func TestTombstoneGCSingleOwner(t *testing.T) {
	c := newRingCluster(t, RingConfig{Nodes: 3, Replication: 1, Stripes: 8, Seed: 5})
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("solo-%d", i)
		if _, err := c.Write(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	discarded, live := gcRounds(t, c, 10)
	if live != 0 || discarded != 10 {
		t.Fatalf("discarded=%d live=%d, want 10 and 0", discarded, live)
	}
}

// A down owner blocks GC for its stripes: an in-memory node keeps its
// pre-delete state across Kill, so discarding while it is down would let
// its old copy resurrect the key on revival.
func TestTombstoneGCWaitsForDownOwner(t *testing.T) {
	c := newRingCluster(t, RingConfig{
		Nodes: 5, Replication: 3, Stripes: 8, Seed: 11,
		SuspectAfter: 1, DeadAfter: 2,
	})
	if _, err := c.Write("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GossipUntilConverged(40); err != nil {
		t.Fatal(err)
	}
	// Kill one owner of k's stripe, then delete k at the survivors.
	stripe := kvstore.ShardIndex("k", 8)
	c.mu.Lock()
	owners := c.ownersLocked(stripe)
	victim := c.index[owners[len(owners)-1]]
	c.mu.Unlock()
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		stats, err := c.GossipRoundStats(c.Fanout())
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if stats.TombstonesDiscarded != 0 {
			t.Fatalf("round %d discarded %d tombstones with an owner down",
				i, stats.TombstonesDiscarded)
		}
	}
	// Revive: the dead owner still holds the old live value; the surviving
	// tombstone must kill it, propagate, and only then discard.
	if err := c.Revive(victim); err != nil {
		t.Fatal(err)
	}
	r, _ := c.Replica(victim)
	if v, ok := r.Get("k"); !ok || string(v) != "old" {
		t.Fatalf("revived owner lost its paused state: %q %v", v, ok)
	}
	if _, live := gcRounds(t, c, 60); live != 0 {
		t.Fatalf("TombstonesLive = %d after revival rounds", live)
	}
	if _, ok, err := c.Read("k"); err != nil || ok {
		t.Fatalf("deleted key resurrected after owner revival: ok=%v err=%v", ok, err)
	}
	for i := 0; i < c.Size(); i++ {
		r, _ := c.Replica(i)
		if _, ok := r.Version("k"); ok {
			t.Fatalf("node %d still stores state for %q", i, "k")
		}
	}
}

// Queued hints gate the GC: a hint is a detached pre-delete copy, so no
// tombstone may be reclaimed anywhere while hints remain undelivered.
func TestTombstoneGCWaitsForHints(t *testing.T) {
	c := newRingCluster(t, RingConfig{
		Nodes: 5, Replication: 3, Stripes: 8, Seed: 13,
		SuspectAfter: 1, DeadAfter: 2,
	})
	// Make node 0's death known so writes hint instead of timing out.
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.GossipRound(c.Fanout()); err != nil {
			t.Fatal(err)
		}
	}
	// Write keys until some land on stripes the dead node owns (queueing
	// hints), then delete an unrelated key on a fully-live stripe.
	var unrelated string
	for i := 0; i < 200 && (c.HintsPending() == 0 || unrelated == ""); i++ {
		k := fmt.Sprintf("k-%d", i)
		s := kvstore.ShardIndex(k, 8)
		c.mu.Lock()
		dead := false
		for _, oid := range c.ownersLocked(s) {
			if c.nodes[c.index[oid]].down {
				dead = true
			}
		}
		c.mu.Unlock()
		if _, err := c.Write(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if !dead && unrelated == "" {
			unrelated = k
			if _, err := c.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.HintsPending() == 0 || unrelated == "" {
		t.Skip("layout gave no hinted stripe or no fully-live stripe")
	}
	for i := 0; i < 10; i++ {
		stats, err := c.GossipRoundStats(c.Fanout())
		if err != nil {
			t.Fatal(err)
		}
		if stats.TombstonesDiscarded != 0 {
			t.Fatalf("GC discarded %d tombstones with %d hints pending",
				stats.TombstonesDiscarded, c.HintsPending())
		}
	}
	// Revive the target; hints drain, then the gate opens.
	if err := c.Revive(0); err != nil {
		t.Fatal(err)
	}
	if _, live := gcRounds(t, c, 60); live != 0 {
		t.Fatalf("TombstonesLive = %d after hint drain", live)
	}
}

// deleteWins resolves concurrent copies in favor of deletion — the policy
// under which "a deleted key stays deleted until rewritten" is a sound
// invariant even across partitions (the default KeepBoth policy instead
// deliberately lets a concurrent write beat a delete).
func deleteWins(_ string, a, b kvstore.Versioned) ([]byte, bool, error) {
	if a.Deleted || b.Deleted {
		return nil, true, nil
	}
	if string(a.Value) < string(b.Value) {
		return append(append([]byte(nil), a.Value...), b.Value...), false, nil
	}
	return append(append([]byte(nil), b.Value...), a.Value...), false, nil
}

// Randomized resurrection property: under random writes, deletes, crashes,
// revivals and partitions (with a delete-wins resolver), a key whose last
// applied operation is a delete never reads as present again — the GC's
// evidence rules must make every discard safe. Cheap enough to run several
// seeds. An operation counts as applied when it reached a coordinator
// (acks >= 1): a quorum-failed write is still installed wherever it landed
// and propagates from there, so it must update the model too.
func TestTombstoneGCNoResurrection(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newRingCluster(t, RingConfig{
				Nodes: 7, Replication: 3, Stripes: 16, Seed: seed,
				SuspectAfter: 1, DeadAfter: 2,
				Resolver: deleteWins,
			})
			rng := rand.New(rand.NewSource(seed * 977))
			down := map[int]bool{}
			deleted := map[string]bool{} // key -> last op was Delete
			keys := make([]string, 24)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%02d", i)
			}
			// The invariant is checked at quiesced points only: mid-chaos, a
			// read routed to a stale minority quorum can legitimately serve a
			// pre-delete value with no GC involvement. At a quiesced point no
			// stale copy can exist — unless the GC discarded a tombstone an
			// owner had not seen, in which case the old value wins convergence
			// and the check catches it.
			quiesceAndCheck := func(epoch int) {
				c.Heal()
				for i := range down {
					if err := c.Revive(i); err != nil {
						t.Fatal(err)
					}
					delete(down, i)
				}
				live := -1
				for i := 0; i < 200; i++ {
					stats, err := c.GossipRoundStats(c.Fanout())
					if err != nil {
						t.Fatalf("epoch %d quiesce round %d: %v", epoch, i, err)
					}
					live = stats.TombstonesLive
					if live == 0 && c.Converged() && c.HintsPending() == 0 {
						break
					}
				}
				if live != 0 {
					t.Fatalf("epoch %d: TombstonesLive = %d after quiesce", epoch, live)
				}
				for k, isDel := range deleted {
					if !isDel {
						continue
					}
					if _, ok, err := c.Read(k); err != nil {
						t.Fatalf("epoch %d: Read(%q) after quiesce: %v", epoch, k, err)
					} else if ok {
						t.Fatalf("epoch %d: deleted key %q resurrected", epoch, k)
					}
				}
			}
			for step := 0; step < 220; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // write
					k := keys[rng.Intn(len(keys))]
					if acks, _ := c.Write(k, []byte(fmt.Sprintf("v%d", step))); acks >= 1 {
						deleted[k] = false
					}
				case op < 6: // delete
					k := keys[rng.Intn(len(keys))]
					if acks, _ := c.Delete(k); acks >= 1 {
						deleted[k] = true
					}
				case op == 6: // crash a node (at most 2 down at once)
					if len(down) < 2 {
						i := rng.Intn(c.Size())
						if !down[i] {
							if err := c.Kill(i); err != nil {
								t.Fatal(err)
							}
							down[i] = true
						}
					}
				case op == 7: // revive a node
					for i := range down {
						if err := c.Revive(i); err != nil {
							t.Fatal(err)
						}
						delete(down, i)
						break
					}
				case op == 8 && c.Size() == 7: // partition or heal
					if rng.Intn(2) == 0 {
						groups := make([]int, 7)
						for i := range groups {
							groups[i] = rng.Intn(2)
						}
						if err := c.Partition(groups); err != nil {
							t.Fatal(err)
						}
					} else {
						c.Heal()
					}
				default: // gossip
					if _, err := c.GossipRoundStats(c.Fanout()); err != nil {
						t.Fatal(err)
					}
				}
				if step > 0 && step%55 == 0 {
					quiesceAndCheck(step / 55)
				}
			}
			quiesceAndCheck(4)
		})
	}
}

package antientropy

import (
	"fmt"
	"testing"

	"versionstamp/internal/kvstore"
)

// The delta-vs-full benchmark pair: one network sync round between two
// replicas of benchKeys keys at a given divergence. The interesting numbers
// are the wireB/op metrics — the delta protocol's wire cost tracks the
// number of diverged keys, the full protocol's tracks the keyspace size.

const benchKeys = 1000

// benchPair builds a converged server/client pair with benchKeys keys and a
// listening server.
func benchPair(b *testing.B, resolve kvstore.Resolver) (*kvstore.Replica, *kvstore.Replica, string) {
	b.Helper()
	server := kvstore.NewReplica("server")
	for i := 0; i < benchKeys; i++ {
		server.Put(fmt.Sprintf("key-%05d", i), []byte(fmt.Sprintf("value-%d-with-some-padding", i)))
	}
	client := server.Clone("client")
	srv := NewServer(server, resolve)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatalf("Listen: %v", err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return server, client, addr
}

// diverge rewrites n keys on the client so the next round must ship them.
func diverge(client *kvstore.Replica, n, round int) {
	for i := 0; i < n; i++ {
		client.Put(fmt.Sprintf("key-%05d", i), []byte(fmt.Sprintf("edit-%d-%d", round, i)))
	}
}

// syncBench runs one sync flavor at a fixed divergence, reporting average
// wire bytes per round.
func syncBench(b *testing.B, diverged int, sync func(string, *kvstore.Replica) (kvstore.SyncResult, error)) {
	_, client, addr := benchPair(b, nil)
	if _, err := sync(addr, client); err != nil {
		b.Fatalf("warm-up sync: %v", err)
	}
	var wire int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diverged > 0 {
			b.StopTimer()
			diverge(client, diverged, i)
			b.StartTimer()
		}
		res, err := sync(addr, client)
		if err != nil {
			b.Fatalf("sync: %v", err)
		}
		wire += res.BytesSent + res.BytesReceived
	}
	b.ReportMetric(float64(wire)/float64(b.N), "wireB/op")
}

// divergences maps sub-benchmark names to diverged key counts out of
// benchKeys: converged, 1%, 50%.
var divergences = []struct {
	name string
	keys int
}{
	{"conv0pct", 0},
	{"div1pct", benchKeys / 100},
	{"div50pct", benchKeys / 2},
}

// BenchmarkDeltaSync measures two-phase delta rounds. At 0% divergence the
// wire carries digests only, so wireB/op stays near-constant in value size
// and scales with key count alone.
func BenchmarkDeltaSync(b *testing.B) {
	for _, d := range divergences {
		b.Run(d.name, func(b *testing.B) { syncBench(b, d.keys, SyncWithDelta) })
	}
}

// BenchmarkFullSnapshotSync is the baseline: the v1 protocol ships the whole
// keyspace as a JSON snapshot both ways regardless of divergence.
func BenchmarkFullSnapshotSync(b *testing.B) {
	for _, d := range divergences {
		b.Run(d.name, func(b *testing.B) { syncBench(b, d.keys, SyncWith) })
	}
}

// BenchmarkHierSync measures pooled v3 rounds — the steady state of a
// gossip loop: one persistent session, summary-pruned rounds. At 0%
// divergence wireB/op scales with stripe count alone, independent of how
// many keys the replicas hold.
func BenchmarkHierSync(b *testing.B) {
	for _, d := range divergences {
		b.Run(d.name, func(b *testing.B) {
			p := NewPool()
			b.Cleanup(func() { _ = p.Close() })
			syncBench(b, d.keys, func(addr string, r *kvstore.Replica) (kvstore.SyncResult, error) {
				return p.SyncWith(addr, r)
			})
		})
	}
}

package antientropy

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"versionstamp/internal/kvstore"
)

func TestSyncWithTreeConverges(t *testing.T) {
	server, client := clonedPair(32)
	server.Put("key-0000", []byte("newer-on-server"))
	client.Put("key-0001", []byte("newer-on-client"))
	server.Put("key-0002", []byte("conc-server"))
	client.Put("key-0002", []byte("conc-client"))
	client.Put("client-only", []byte("x"))
	server.Put("server-only", []byte("y"))
	client.Delete("key-0003")

	_, addr := startServer(t, server, kvstore.KeepBoth([]byte("|")))
	res, err := SyncWithTree(addr, client)
	if err != nil {
		t.Fatalf("SyncWithTree: %v", err)
	}
	if res.Transferred != 2 || res.Reconciled != 3 || res.Merged != 1 {
		t.Errorf("result = %+v", res)
	}
	if res.StripesSkipped == 0 {
		t.Errorf("no stripes skipped by tree roots: %+v", res)
	}
	if res.BytesSent == 0 || res.BytesReceived == 0 {
		t.Errorf("wire counters empty: %+v", res)
	}
	requireConverged(t, server, client)
	if _, ok := server.Get("key-0003"); ok {
		t.Error("tombstone did not reach the server")
	}
	if v, _ := server.Get("key-0002"); string(v) != "conc-server|conc-client" {
		t.Errorf("merged value = %q", v)
	}

	// The now-converged pair's next round matches at the root.
	res, err = SyncWithTree(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred+res.Reconciled+res.Merged+res.Pruned != 0 {
		t.Errorf("converged round moved data: %+v", res)
	}
	if res.StripesSkipped != client.Shards() {
		t.Errorf("StripesSkipped = %d, want %d", res.StripesSkipped, client.Shards())
	}
}

// TestTreeHotKeyWireSavings is the tentpole's acceptance property at test
// scale: with one divergent key in an otherwise converged keyspace, a v4
// round must move far fewer bytes than a v3 round, because the tree descent
// ships O(log n) fixed-size frames where v3 ships the stripe's whole digest
// list. (cmd/benchwire gates the 1M-key version of this at ≥20x.)
func TestTreeHotKeyWireSavings(t *testing.T) {
	keys, minRatio := 20000, int64(4)
	if testing.Short() {
		keys, minRatio = 4000, 2
	}
	server, client := clonedPair(keys)
	_, addr := startServer(t, server, nil)

	hierPool := NewPoolOptions(PoolOptions{Protocol: ProtocolHier})
	defer hierPool.Close()
	treePool := NewPoolOptions(PoolOptions{Protocol: ProtocolTree})
	defer treePool.Close()

	measure := func(p *Pool, key string) int64 {
		t.Helper()
		client.Put(key, []byte("hot"))
		res, err := p.SyncWith(addr, client)
		if err != nil {
			t.Fatal(err)
		}
		if res.Transferred+res.Reconciled != 1 {
			t.Fatalf("hot-key round: %+v", res)
		}
		return res.BytesSent + res.BytesReceived
	}
	// Warm both sessions (and converge) before measuring.
	if _, err := hierPool.SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	if _, err := treePool.SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	hierBytes := measure(hierPool, "hot-key-hier")
	treeBytes := measure(treePool, "hot-key-tree")
	if treeBytes*minRatio > hierBytes {
		t.Errorf("hot key at %d keys: v4 %dB vs v3 %dB — less than %dx savings",
			keys, treeBytes, hierBytes, minRatio)
	}
	t.Logf("hot key at %d keys: v3 %dB, v4 %dB (%.1fx)",
		keys, hierBytes, treeBytes, float64(hierBytes)/float64(treeBytes))
}

// TestTreeProbePipelining: on a pooled session, converged round N+1 rides
// the probe sent at the end of round N — steady-state converged rounds stay
// within a handful of bytes and never redial.
func TestTreeProbePipelining(t *testing.T) {
	server, client := clonedPair(1000)
	_, addr := startServer(t, server, nil)
	p := NewPoolOptions(PoolOptions{Protocol: ProtocolTree})
	defer p.Close()

	if _, err := p.SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := p.SyncWith(addr, client)
		if err != nil {
			t.Fatalf("steady round %d: %v", i, err)
		}
		if res.StripesSkipped != client.Shards() {
			t.Fatalf("steady round %d: %+v", i, res)
		}
		bytes := res.BytesSent + res.BytesReceived
		if bytes >= 20 {
			t.Errorf("steady converged round %d moved %dB, want < 20", i, bytes)
		}
	}
	if p.Dials() != 1 {
		t.Errorf("Dials = %d, want 1", p.Dials())
	}

	// Divergence after an armed probe must still be found: the probe answer
	// reports the stale root, and the round proceeds normally.
	client.Put("late-edit", []byte("x"))
	res, err := p.SyncWith(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred+res.Reconciled != 1 {
		t.Fatalf("post-probe divergent round: %+v", res)
	}
	requireConverged(t, server, client)
}

// v3OnlyProxy fronts a real server but answers any v4 session opening the
// way a pre-v4 server would: the 0x04 byte JSON-decodes as garbage, so the
// "server" replies with a JSON error object and closes. Everything else is
// piped through to the real server untouched.
func v3OnlyProxy(t *testing.T, backend string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				first := make([]byte, 1)
				if _, err := io.ReadFull(conn, first); err != nil {
					return
				}
				if first[0] == treeProtocolVersion {
					_, _ = conn.Write([]byte(`{"v":1,"error":"bad request: invalid character"}` + "\n"))
					return
				}
				up, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer up.Close()
				if _, err := up.Write(first); err != nil {
					return
				}
				done := make(chan struct{})
				go func() { _, _ = io.Copy(up, conn); _ = up.(*net.TCPConn).CloseWrite(); close(done) }()
				_, _ = io.Copy(conn, up)
				<-done
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestTreeFallsBackToHier: an auto-protocol pool meeting a v3-only server
// redials the session as v3 transparently — same round, no error, and the
// fallback sticks for the session.
func TestTreeFallsBackToHier(t *testing.T) {
	server, client := clonedPair(64)
	client.Put("key-0000", []byte("edit"))
	_, addr := startServer(t, server, nil)
	proxy := v3OnlyProxy(t, addr)

	p := NewPool() // ProtocolAuto
	defer p.Close()
	res, err := p.SyncWith(proxy, client)
	if err != nil {
		t.Fatalf("fallback round: %v", err)
	}
	if res.Reconciled != 1 {
		t.Errorf("fallback round result: %+v", res)
	}
	requireConverged(t, server, client)
	if p.Dials() != 2 {
		t.Errorf("Dials = %d, want 2 (v4 attempt + v3 fallback)", p.Dials())
	}
	// The v3 session persists: further rounds reuse it without redialing.
	if _, err := p.SyncWith(proxy, client); err != nil {
		t.Fatal(err)
	}
	if p.Dials() != 2 {
		t.Errorf("Dials = %d after reuse, want 2", p.Dials())
	}

	// A forced-v4 pool must surface the incompatibility instead.
	forced := NewPoolOptions(PoolOptions{Protocol: ProtocolTree})
	defer forced.Close()
	if _, err := forced.SyncWith(proxy, client); err == nil {
		t.Error("forced v4 against a v3-only server did not fail")
	}
}

// TestTreeScopedStripes mirrors the v3 scoped-round test on v4, and checks
// that scoped rounds drain a pending whole-replica probe correctly.
func TestTreeScopedStripes(t *testing.T) {
	server, client := clonedPair(64)
	_, addr := startServer(t, server, nil)
	p := NewPoolOptions(PoolOptions{Protocol: ProtocolTree})
	defer p.Close()

	// Arm a probe with a whole-replica round first.
	if _, err := p.SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}

	client.Put("key-0000", []byte("edit-0"))
	client.Put("key-0001", []byte("edit-1"))
	in := kvstore.ShardIndex("key-0000", client.Shards())
	out := kvstore.ShardIndex("key-0001", client.Shards())
	if in == out {
		t.Fatalf("test keys landed in one stripe; pick different keys")
	}
	res, err := p.SyncStripes(addr, client, []int{in})
	if err != nil {
		t.Fatalf("SyncStripes: %v", err)
	}
	if res.Reconciled != 1 {
		t.Errorf("result = %+v", res)
	}
	if v, _ := server.Get("key-0000"); string(v) != "edit-0" {
		t.Errorf("scoped stripe did not sync: %q", v)
	}
	if v, _ := server.Get("key-0001"); string(v) == "edit-1" {
		t.Error("out-of-scope stripe synced")
	}

	if _, err := p.SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	requireConverged(t, server, client)
	if p.Dials() != 1 {
		t.Errorf("Dials = %d, want 1 (probe, scoped and full rounds share the session)", p.Dials())
	}
}

// TestTreeLayoutMismatch syncs replicas with different stripe counts over
// v4: the server regroups its keys and evaluates trees under the client's
// layout and shape.
func TestTreeLayoutMismatch(t *testing.T) {
	server, client8 := clonedPair(100)
	snap, err := client8.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	client := kvstore.NewReplicaShards("client8", 8)
	if err := client.Adopt(snap); err != nil {
		t.Fatal(err)
	}
	client.Put("key-0000", []byte("edited"))
	server.Put("extra", []byte("server-side"))

	_, addr := startServer(t, server, nil)
	res, err := SyncWithTree(addr, client)
	if err != nil {
		t.Fatalf("SyncWithTree across layouts: %v", err)
	}
	if res.Transferred != 1 || res.Reconciled != 1 {
		t.Errorf("result = %+v", res)
	}
	requireConverged(t, server, client)

	res, err = SyncWithTree(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.StripesSkipped != 8 || res.Transferred+res.Reconciled+res.Merged != 0 {
		t.Errorf("converged cross-layout round: %+v", res)
	}
}

// TestTreeConflictReportedOverWire mirrors the v2/v3 conflict test on v4.
func TestTreeConflictReportedOverWire(t *testing.T) {
	server, client := clonedPair(4)
	server.Put("key-0000", []byte("conc-s"))
	client.Put("key-0000", []byte("conc-c"))
	_, addr := startServer(t, server, nil)
	res, err := SyncWithTree(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0] != "key-0000" {
		t.Errorf("Conflicts = %v", res.Conflicts)
	}
	if v, _ := client.Get("key-0000"); string(v) != "conc-c" {
		t.Errorf("conflicting copy changed: %q", v)
	}
}

// TestTreeDifferentialProperty: across randomized divergence patterns, a v4
// round leaves both replicas exactly where v3 and v1 (full snapshot) rounds
// leave identically diverged pairs — including across a mid-test rebalance,
// where the key count crossing a TreeShape threshold changes the tree depth
// between rounds.
func TestTreeDifferentialProperty(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		// Few stripes so the per-stripe key count crosses the depth-1→2
		// threshold (512 keys) within an affordable test.
		build := func(label string) (*kvstore.Replica, *kvstore.Replica) {
			server := kvstore.NewReplicaShards(label, 2)
			for i := 0; i < 400; i++ {
				server.Put(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf("value-%d", i)))
			}
			client := server.Clone(label + "-client")
			rng := seed + 1
			next := func(n int) int { rng = (rng*1103515245 + 12345) & 0x7fffffff; return rng % n }
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("key-%04d", i)
				switch next(7) {
				case 0:
					server.Put(k, []byte(fmt.Sprintf("s%d", next(100))))
				case 1:
					client.Put(k, []byte(fmt.Sprintf("c%d", next(100))))
				case 2:
					server.Put(k, []byte(fmt.Sprintf("s%d", next(100))))
					client.Put(k, []byte(fmt.Sprintf("c%d", next(100))))
				case 3:
					server.Delete(k)
				case 4:
					client.Delete(k)
				}
			}
			client.Put(fmt.Sprintf("fresh-%d", seed), []byte("new"))
			return server, client
		}
		grow := func(r *kvstore.Replica, from, to int) {
			for i := from; i < to; i++ {
				r.Put(fmt.Sprintf("grown-%05d", i), []byte("g"))
			}
		}

		type lane struct {
			name           string
			server, client *kvstore.Replica
			round          func(addr string, client *kvstore.Replica) error
		}
		treePool := NewPoolOptions(PoolOptions{Protocol: ProtocolTree})
		defer treePool.Close()
		hierPool := NewPoolOptions(PoolOptions{Protocol: ProtocolHier})
		defer hierPool.Close()
		lanes := []*lane{
			{name: "tree", round: func(addr string, c *kvstore.Replica) error {
				_, err := treePool.SyncWith(addr, c)
				return err
			}},
			{name: "hier", round: func(addr string, c *kvstore.Replica) error {
				_, err := hierPool.SyncWith(addr, c)
				return err
			}},
			{name: "full", round: func(addr string, c *kvstore.Replica) error {
				_, err := SyncWith(addr, c)
				return err
			}},
		}
		for _, l := range lanes {
			l.server, l.client = build(l.name)
			_, addr := startServer(t, l.server, kvstore.KeepBoth([]byte("|")))
			if err := l.round(addr, l.client); err != nil {
				t.Fatalf("seed %d %s: first round: %v", seed, l.name, err)
			}
			// Grow both sides identically across the depth threshold, then
			// sync again: the rebalanced trees must still converge the pair.
			grow(l.server, 0, 700)
			grow(l.client, 700, 1400)
			if err := l.round(addr, l.client); err != nil {
				t.Fatalf("seed %d %s: post-rebalance round: %v", seed, l.name, err)
			}
			requireConverged(t, l.server, l.client)
		}
		// All three protocols land every pair in the same state.
		requireConverged(t, lanes[0].server, lanes[1].server)
		requireConverged(t, lanes[0].server, lanes[2].server)
		requireConverged(t, lanes[0].client, lanes[1].client)
	}
}

// TestTreeConcurrentWritersNeverMaskDivergence mirrors the v3 race test on
// v4: writers keep mutating the client while tree rounds run; no divergent
// key may ever hide behind a stale cached tree or a pipelined probe. Run
// with -race.
func TestTreeConcurrentWritersNeverMaskDivergence(t *testing.T) {
	server, client := clonedPair(64)
	_, addr := startServer(t, server, kvstore.KeepBoth([]byte("|")))
	p := NewPoolOptions(PoolOptions{Protocol: ProtocolTree})
	defer p.Close()

	const writers = 4
	var writerWg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("key-%04d", (w*16+i)%64)
				client.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i)))
				i++
			}
		}(w)
	}
	rounds := 20
	if testing.Short() {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		if _, err := p.SyncWith(addr, client); err != nil {
			close(stop)
			writerWg.Wait()
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	writerWg.Wait()

	for i := 0; i < 2; i++ {
		if _, err := p.SyncWith(addr, client); err != nil {
			t.Fatal(err)
		}
	}
	requireConverged(t, server, client)
}

// TestAllProtocolsCoexistWithTree drives v1–v4 rounds at one server port.
func TestAllProtocolsCoexistWithTree(t *testing.T) {
	server, client := clonedPair(8)
	_, addr := startServer(t, server, nil)

	client.Put("via-json", []byte("1"))
	if _, err := SyncWith(addr, client); err != nil {
		t.Fatalf("v1 round: %v", err)
	}
	client.Put("via-delta", []byte("2"))
	if _, err := SyncWithDelta(addr, client); err != nil {
		t.Fatalf("v2 round: %v", err)
	}
	client.Put("via-hier", []byte("3"))
	if _, err := SyncWithHier(addr, client); err != nil {
		t.Fatalf("v3 round: %v", err)
	}
	client.Put("via-tree", []byte("4"))
	if _, err := SyncWithTree(addr, client); err != nil {
		t.Fatalf("v4 round: %v", err)
	}
	requireConverged(t, server, client)
	for _, k := range []string{"via-json", "via-delta", "via-hier", "via-tree"} {
		if _, ok := server.Get(k); !ok {
			t.Errorf("server missing %q", k)
		}
	}
}

// Package antientropy synchronizes kvstore replicas pairwise over TCP — the
// communication pattern of the weakly connected systems the paper targets:
// any two replicas that happen to find connectivity exchange state; no
// membership, no coordinator, no identifier service.
//
// The protocol is a single round trip of newline-delimited JSON:
//
//	client -> server: {"v":1,"snapshot":<client snapshot>}
//	server -> client: {"v":1,"snapshot":<merged snapshot>,"result":{...}}
//
// The snapshot field carries either a legacy JSON snapshot (embedded raw, a
// JSON object) or a binary snapshot (kvstore.SnapshotBinary, riding as a
// base64 JSON string) — the value's first character distinguishes them, and
// kvstore.Restore sniffs the decoded bytes' version byte, so old JSON
// clients interoperate forever. This package's own clients send binary
// snapshots, and the server mirrors the client's format in its reply. Like
// every protocol change in this package, compatibility is one-directional:
// upgrade servers before clients (a pre-binary server rejects the base64
// form with "bad snapshot"; see Protocol negotiation below).
//
// The server restores the client's snapshot into a shadow replica, runs one
// kvstore.Sync between its own replica and the shadow (exactly the
// in-process semantics: transfers fork stamps, dominance reconciles,
// conflicts use the server's resolver or are skipped), and returns the
// shadow's merged state, which the client adopts. Stamps do all causality
// work; the transport carries only opaque snapshots.
//
// A request may instead be scoped to one stripe of the client's sharded
// store by adding {"shard":i,"of":n}: the snapshot then carries only the
// keys of client shard i, and the server reconciles exactly the keys that
// hash to shard i of n (kvstore.SyncShard), locking only the matching
// stripe of its own store when its layout agrees. SyncWithSharded issues
// one such scoped round per local stripe concurrently, so two heavily
// loaded replicas exchange and merge shard deltas in parallel instead of
// serializing the whole keyspace under one request.
//
// # Protocol negotiation
//
// All protocol versions share one port; the first byte of a connection
// selects the handler:
//
//	'{'  v1: one JSON whole-snapshot round, newline-delimited
//	0x02 v2: one binary two-phase delta round (digests, then entries)
//	0x03 v3: a persistent session of hierarchical summary-first rounds
//	0x04 v4: a persistent session of adaptive digest-tree rounds
//
// v1–v3 clients therefore interoperate with newer servers unchanged; newer
// clients need a server of at least their vintage (an older server
// JSON-decodes the version byte and fails the round with an error; SyncWith
// is the portable fallback against old peers). v4 is special: its server
// acks the version byte, so a pooled v4 client detects a v3-era server from
// the first reply byte and transparently redials that peer as v3 —
// ProtocolAuto pools interoperate in both directions.
//
// # Delta protocol (v2)
//
// SyncWithDelta and SyncWithDeltaSharded speak a binary two-phase protocol
// that moves only what the stamps cannot prove equivalent — the paper's
// central property (stamp comparison classifies two copies without looking
// at the data) applied to the wire.
//
// After the version byte, a v2 connection is a fixed sequence of
// length-prefixed frames, each [uvarint length][kind byte][body], integers
// uvarint-encoded and stamps in the compact trie-structural format of
// internal/encoding:
//
//	client -> server  kindDigest (0x01): of, shard, count, count×digest
//	server -> client  kindNeed   (0x02): count, count×key
//	client -> server  kindEntries(0x03): count, count×entry
//	server -> client  kindResult (0x04): transferred, reconciled, merged,
//	                  pruned, conflicts, reply entries
//	server -> client  kindError  (0x7F): error text, terminating the round
//
// where digest = key + stamp (encoding.AppendDigest) and entry = key +
// tombstone flag + value + stamp (encoding.AppendEntry). Phase 1 is the
// digest exchange: the server compares each digest stamp with its own copy
// (kvstore.DiffAgainst) and requests only the copies it cannot prove
// equivalent or obsolete. Phase 2 ships those entries, the server
// reconciles under its stripe locks (kvstore.ApplyDelta — dominance, merge
// and transfer semantics identical to Sync), and replies with exactly the
// entries the client must adopt. Converged replicas therefore exchange
// digests and nothing else, making idle sync cost independent of value
// sizes and proportional only to key count — and per-stripe rounds
// (of > 0) scope all of it to one stripe, locking nothing else.
//
// The client installs a reply entry only while its own copy still carries
// the stamp it shipped; copies that moved mid-round are left alone for the
// next round, which makes concurrent rounds against one replica safe.
//
// # Hierarchical protocol (v3) and connection pooling
//
// The v2 digest exchange still costs O(keys) per round even between
// converged replicas. Protocol v3 prepends a summary phase: each stripe of
// the keyspace is condensed to a fixed-size hash over its sorted digest set
// (encoding.SummarizeDigests, served from the store's epoch-keyed cache —
// kvstore.Summaries — so a quiet store answers without touching a single
// key). Only stripes whose summaries differ proceed to the digest phase,
// and from there the round is exactly v2: needs, entries, result. A
// converged 1000-key round therefore moves 32 summaries instead of 1000
// digests — O(stripes), independent of key count.
//
// The v3 version byte opens a session, not a round: any number of rounds
// (whole-replica or scoped to chosen stripes) ride the same connection as
// back-to-back frame sequences. A whole-replica round opens with a second
// summary level — a single 8-byte FNV-64a root hash over all stripe
// summaries — so two converged replicas complete the round in ~14 bytes,
// before even the per-stripe summaries travel:
//
//	client -> server  kindRoot         (0x08): of, 8-byte root hash
//	server -> client  kindRootMatch    (0x09): 1 = converged, round over
//	— on a root mismatch (or a stripe-scoped round, which skips the root
//	  phase) the round proceeds —
//	client -> server  kindSummary      (0x05): of, count, count×(stripe, hash)
//	server -> client  kindSummaryDiff  (0x06): count, count×stripe
//	— round ends here when no summaries differ; otherwise —
//	client -> server  kindStripeDigests(0x07): nStripes, each: stripe,
//	                  count, count×digest
//	server -> client  kindNeed, then kindEntries / kindResult as in v2
//
// Between rounds the server waits with a generous idle deadline and drops
// silent sessions; during a round the usual tight deadline applies.
//
// A Pool keeps one such session per peer address: rounds to the same peer
// are framed back to back over the pooled connection (a 100-round gossip
// session dials each peer once, not 100 times), concurrent rounds to one
// peer serialize, and a round that fails on a previously working session
// is retried once on a fresh dial — transparent recovery from server
// restarts and idle drops. Cluster gossip holds one pool per node.
//
// # Tree protocol (v4)
//
// v3's weak spot is a *barely* divergent stripe: one hot key forces the
// stripe's entire digest list onto the wire. Protocol v4 replaces the
// two-level summary hierarchy with an adaptive k-ary digest tree per stripe
// (kvstore.DigestTree): keys hash to 64-bit positions, leaves cover equal
// position ranges, internal nodes hash their children, and the tree's
// (fanout, depth) adapts to the stripe's live key count
// (kvstore.TreeShape). A round descends from the root toward the handful of
// leaves that actually differ:
//
//	client -> server  kindRoot          (0x08): of, 8-byte root (fold of
//	                  the stripe tree roots; whole-replica rounds only)
//	server -> client  kindRootMatch     (0x09): 1 = converged, round over
//	client -> server  kindStripeRoots   (0x0A): of, fanout, count,
//	                  count×(stripe, depth, 8-byte tree root)
//	server -> client  kindStripeRootDiff(0x0B): count, count×stripe
//	— repeated, one level at a time, for the divergent stripes —
//	client -> server  kindTreeNodes     (0x0C): fanout, count, count×(stripe,
//	                  depth, level, path, child bitmap, child hashes)
//	server -> client  kindTreeDiff      (0x0D): per node: differ bitmap +
//	                  server child bitmap
//	— at the bottom (or where either side's subtree is empty) —
//	client -> server  kindLeafDigests   (0x0E): count, count×(stripe, depth,
//	                  level, path, digest run)
//	server -> client  kindNeed, then kindEntries / kindResult as in v2/v3
//
// The tree shape on the wire is the client's choice; the server evaluates
// its own stripes under that shape (cached when it matches its own policy,
// which converged replicas' shapes do). Isolating one divergent key among
// n therefore costs O(log n) fixed-size frames instead of one O(n) digest
// list.
//
// A v4 server acks the session's version byte with one 0x04 byte; the
// client pipelines its first round behind the opening and reads the ack
// before the first reply frame, so negotiation is free against a v4 server
// and detects an older one from its first reply byte (see Protocol
// negotiation). On pooled whole-replica sessions each completed round also
// pipelines a root probe for the *next* round (kindRootProbe 0x0F: of,
// 8-byte root — answered with kindRootMatch, outside any round), so a
// steady-state converged round writes its probe and reads the previous
// answer without ever waiting on the wire: ~14 bytes and zero blocking
// round trips per converged exchange.
package antientropy

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"versionstamp/internal/kvstore"
)

// protocolVersion guards against skew between endpoints.
const protocolVersion = 1

// defaultTimeout bounds each network round trip.
const defaultTimeout = 10 * time.Second

// ErrProtocol is returned for malformed or version-skewed messages.
var ErrProtocol = errors.New("antientropy: protocol error")

// request is the client's opening message. Of > 0 scopes the round to the
// keys of client shard Shard under a layout of Of stripes; Of == 0 is a
// whole-replica round.
type request struct {
	V        int             `json:"v"`
	Snapshot json.RawMessage `json:"snapshot"`
	Shard    int             `json:"shard,omitempty"`
	Of       int             `json:"of,omitempty"`
}

// response is the server's reply.
type response struct {
	V        int                `json:"v"`
	Snapshot json.RawMessage    `json:"snapshot"`
	Result   kvstore.SyncResult `json:"result"`
	Error    string             `json:"error,omitempty"`
}

// wrapSnapshot embeds a snapshot in the JSON envelope: a JSON snapshot
// (starting with '{') embeds raw, a binary snapshot rides as a base64 JSON
// string.
func wrapSnapshot(snap []byte) (json.RawMessage, error) {
	if len(snap) > 0 && snap[0] == '{' {
		return json.RawMessage(snap), nil
	}
	quoted, err := json.Marshal(snap) // []byte marshals to a base64 string
	if err != nil {
		return nil, err
	}
	return quoted, nil
}

// unwrapSnapshot recovers snapshot bytes from the envelope; Restore sniffs
// the result's own version byte.
func unwrapSnapshot(raw json.RawMessage) ([]byte, error) {
	if len(raw) > 0 && raw[0] == '"' {
		var b []byte
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, fmt.Errorf("bad base64 snapshot: %w", err)
		}
		return b, nil
	}
	return raw, nil
}

// Server exposes a replica for anti-entropy over TCP.
type Server struct {
	replica *kvstore.Replica
	resolve kvstore.Resolver

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer wraps a replica. The resolver handles conflicting keys during
// syncs initiated by peers; nil skips conflicts (they stay reported on the
// client side).
func NewServer(replica *kvstore.Replica, resolve kvstore.Resolver) *Server {
	return &Server{replica: replica, resolve: resolve}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops run in background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	return s.ListenTransport(TCP, addr)
}

// ListenTransport is Listen over an explicit transport — TCP in production,
// a fault-injecting fabric in the chaos lab. A nil transport means TCP.
func (s *Server) ListenTransport(tr Transport, addr string) (string, error) {
	if tr == nil {
		tr = TCP
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		return "", fmt.Errorf("antientropy: %w", err)
	}
	return s.Serve(ln)
}

// Serve starts accepting connections on an existing listener and returns
// its address — the entry point for callers that need control over the
// listener (custom sockets, accept counting in tests). The server takes
// ownership: Close closes the listener.
func (s *Server) Serve(ln net.Listener) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("antientropy: server closed")
	}
	if s.listener != nil {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("antientropy: server already serving")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// track registers an open connection so Close can interrupt long-lived v3
// sessions (which otherwise sit in a read with a generous idle deadline).
// It reports false when the server is already closed.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(defaultTimeout))
	br := bufio.NewReader(conn)
	// The first byte selects the protocol: '{' opens a v1 JSON round,
	// deltaProtocolVersion a v2 binary delta round, hierProtocolVersion a
	// v3 summary-first session. v1 clients keep working against this
	// server; newer clients need a server of at least their vintage (an
	// older server JSON-decodes the version byte and fails the round with
	// an error).
	if b, err := br.Peek(1); err == nil {
		switch b[0] {
		case deltaProtocolVersion:
			s.handleDelta(conn, br)
			return
		case hierProtocolVersion:
			s.handleHier(conn, br)
			return
		case treeProtocolVersion:
			s.handleTree(conn, br)
			return
		}
	}
	dec := json.NewDecoder(br)
	enc := json.NewEncoder(conn)

	var req request
	if err := dec.Decode(&req); err != nil {
		_ = enc.Encode(response{V: protocolVersion, Error: "bad request: " + err.Error()})
		return
	}
	if req.V != protocolVersion {
		_ = enc.Encode(response{V: protocolVersion,
			Error: fmt.Sprintf("version skew: got %d, want %d", req.V, protocolVersion)})
		return
	}
	snapBytes, err := unwrapSnapshot(req.Snapshot)
	if err != nil {
		_ = enc.Encode(response{V: protocolVersion, Error: "bad snapshot: " + err.Error()})
		return
	}
	shadow, err := kvstore.Restore(snapBytes)
	if err != nil {
		_ = enc.Encode(response{V: protocolVersion, Error: "bad snapshot: " + err.Error()})
		return
	}
	var result kvstore.SyncResult
	if req.Of > 0 {
		result, err = kvstore.SyncShard(s.replica, shadow, s.resolve, req.Shard, req.Of)
	} else {
		result, err = kvstore.Sync(s.replica, shadow, s.resolve)
	}
	if err != nil {
		_ = enc.Encode(response{V: protocolVersion, Error: "sync: " + err.Error()})
		return
	}
	// Mirror the client's snapshot format: binary for this package's own
	// clients, JSON for legacy peers, so either vintage round-trips.
	var merged []byte
	if len(req.Snapshot) > 0 && req.Snapshot[0] == '"' {
		merged, err = shadow.SnapshotBinary()
	} else {
		merged, err = shadow.Snapshot()
	}
	if err != nil {
		_ = enc.Encode(response{V: protocolVersion, Error: "snapshot: " + err.Error()})
		return
	}
	wrapped, err := wrapSnapshot(merged)
	if err != nil {
		_ = enc.Encode(response{V: protocolVersion, Error: "snapshot: " + err.Error()})
		return
	}
	_ = enc.Encode(response{V: protocolVersion, Snapshot: wrapped, Result: result})
}

// Close stops the listener, interrupts open sessions and waits for their
// handlers to finish. Pooled v3 clients see the drop and transparently
// redial on their next round (against whatever serves the address then).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.listener = nil
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.conns = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// SyncWith performs one anti-entropy round between the local replica and
// the server at addr: the local replica adopts the merged state. The
// returned SyncResult is from the server's perspective of the pair
// (transfers count both directions).
func SyncWith(addr string, local *kvstore.Replica) (kvstore.SyncResult, error) {
	return syncWith(addr, local, defaultTimeout)
}

func syncWith(addr string, local *kvstore.Replica, timeout time.Duration) (kvstore.SyncResult, error) {
	snap, err := local.SnapshotBinary()
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: %w", err)
	}
	wrapped, err := wrapSnapshot(snap)
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: %w", err)
	}
	resp, err := roundTrip(addr, request{V: protocolVersion, Snapshot: wrapped}, timeout)
	if err != nil {
		return kvstore.SyncResult{}, err
	}
	merged, err := unwrapSnapshot(resp.Snapshot)
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: %w", err)
	}
	if err := local.Adopt(merged); err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: adopt merged state: %w", err)
	}
	return resp.Result, nil
}

// SyncWithSharded performs one anti-entropy round per local stripe, all
// rounds in flight concurrently: each carries only that stripe's keys, and
// the server reconciles each scoped request under the matching stripe lock
// of its own store. The aggregated SyncResult covers the whole keyspace.
// On error the successfully completed stripes keep their merged state (the
// next round converges the rest) and the first error is returned.
func SyncWithSharded(addr string, local *kvstore.Replica) (kvstore.SyncResult, error) {
	return syncAllShards(local.Shards(), "shard", func(i int) (kvstore.SyncResult, error) {
		return syncShardWith(addr, local, i, defaultTimeout)
	})
}

// syncAllShards runs one scoped round per stripe, all concurrently, and
// aggregates the results. On error the successfully completed stripes keep
// their merged state and the first error is returned, tagged with its
// stripe and the given label.
func syncAllShards(n int, label string, round func(i int) (kvstore.SyncResult, error)) (kvstore.SyncResult, error) {
	var (
		mu       sync.Mutex
		total    kvstore.SyncResult
		firstErr error
		wg       sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := round(i)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("antientropy: %s %d/%d: %w", label, i, n, err)
				}
				return
			}
			total.Add(res)
		}(i)
	}
	wg.Wait()
	sort.Strings(total.Conflicts)
	return total, firstErr
}

// syncShardWith runs one scoped round for local stripe idx.
func syncShardWith(addr string, local *kvstore.Replica, idx int, timeout time.Duration) (kvstore.SyncResult, error) {
	snap, err := local.SnapshotShardBinary(idx)
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: %w", err)
	}
	wrapped, err := wrapSnapshot(snap)
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: %w", err)
	}
	resp, err := roundTrip(addr, request{
		V: protocolVersion, Snapshot: wrapped, Shard: idx, Of: local.Shards(),
	}, timeout)
	if err != nil {
		return kvstore.SyncResult{}, err
	}
	merged, err := unwrapSnapshot(resp.Snapshot)
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: %w", err)
	}
	if err := local.AdoptShard(idx, merged); err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: adopt merged state: %w", err)
	}
	return resp.Result, nil
}

// countingConn wraps a net.Conn, counting payload bytes in each direction so
// SyncResult can report wire cost.
type countingConn struct {
	net.Conn
	sent, recv atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// roundTrip sends one request and decodes the reply, recording the wire
// bytes of both directions in the returned result.
func roundTrip(addr string, req request, timeout time.Duration) (response, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return response{}, fmt.Errorf("antientropy: dial %s: %w", addr, err)
	}
	conn := &countingConn{Conn: raw}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))

	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	if err := enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("antientropy: send: %w", err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("antientropy: receive: %w", err)
	}
	if resp.Error != "" {
		return response{}, fmt.Errorf("%w: %s", ErrProtocol, resp.Error)
	}
	if resp.V != protocolVersion {
		return response{}, fmt.Errorf("%w: version skew %d", ErrProtocol, resp.V)
	}
	resp.Result.BytesSent = conn.sent.Load()
	resp.Result.BytesReceived = conn.recv.Load()
	return resp, nil
}

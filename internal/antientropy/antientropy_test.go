package antientropy

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"versionstamp/internal/kvstore"
)

func startServer(t *testing.T, r *kvstore.Replica, resolve kvstore.Resolver) (*Server, string) {
	t.Helper()
	srv := NewServer(r, resolve)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr
}

func TestBasicSync(t *testing.T) {
	server := kvstore.NewReplica("server")
	server.Put("greeting", []byte("hello"))
	_, addr := startServer(t, server, nil)

	client := kvstore.NewReplica("client")
	client.Put("name", []byte("world"))
	res, err := SyncWith(addr, client)
	if err != nil {
		t.Fatalf("SyncWith: %v", err)
	}
	if res.Transferred != 2 {
		t.Errorf("result = %+v", res)
	}
	if got, ok := client.Get("greeting"); !ok || string(got) != "hello" {
		t.Errorf("client greeting = %q, %v", got, ok)
	}
	if got, ok := server.Get("name"); !ok || string(got) != "world" {
		t.Errorf("server name = %q, %v", got, ok)
	}
}

func TestSyncIdempotent(t *testing.T) {
	server := kvstore.NewReplica("server")
	server.Put("k", []byte("v"))
	_, addr := startServer(t, server, nil)
	client := kvstore.NewReplica("client")
	if _, err := SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	// A duplicated sync (message replay at the session level) changes
	// nothing: same contents, equivalent stamps.
	res, err := SyncWith(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred != 0 || res.Reconciled != 0 || res.Merged != 0 {
		t.Errorf("second sync not a no-op: %+v", res)
	}
}

func TestDominancePropagation(t *testing.T) {
	server := kvstore.NewReplica("server")
	server.Put("k", []byte("v1"))
	_, addr := startServer(t, server, nil)
	client := kvstore.NewReplica("client")
	if _, err := SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	client.Put("k", []byte("v2"))
	res, err := SyncWith(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconciled != 1 {
		t.Errorf("result = %+v", res)
	}
	if got, _ := server.Get("k"); string(got) != "v2" {
		t.Errorf("server = %q", got)
	}
}

func TestConflictResolutionOnServer(t *testing.T) {
	server := kvstore.NewReplica("server")
	server.Put("k", []byte("base"))
	_, addr := startServer(t, server, kvstore.KeepBoth([]byte("|")))
	client := kvstore.NewReplica("client")
	if _, err := SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	server.Put("k", []byte("S"))
	client.Put("k", []byte("C"))
	res, err := SyncWith(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 1 {
		t.Errorf("result = %+v", res)
	}
	gs, _ := server.Get("k")
	gc, _ := client.Get("k")
	if !bytes.Equal(gs, gc) {
		t.Errorf("divergence after merge: %q vs %q", gs, gc)
	}
}

func TestConflictSkippedWithoutResolver(t *testing.T) {
	server := kvstore.NewReplica("server")
	server.Put("k", []byte("base"))
	_, addr := startServer(t, server, nil)
	client := kvstore.NewReplica("client")
	if _, err := SyncWith(addr, client); err != nil {
		t.Fatal(err)
	}
	server.Put("k", []byte("S"))
	client.Put("k", []byte("C"))
	res, err := SyncWith(addr, client)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0] != "k" {
		t.Errorf("result = %+v", res)
	}
	if got, _ := client.Get("k"); string(got) != "C" {
		t.Errorf("client value clobbered: %q", got)
	}
}

// TestThreeNodeConvergence wires three TCP replicas, partitions them into
// pairs that sync opportunistically, and verifies full convergence.
func TestThreeNodeConvergence(t *testing.T) {
	ra := kvstore.NewReplica("a")
	rb := kvstore.NewReplica("b")
	rc := kvstore.NewReplica("c")
	_, addrA := startServer(t, ra, kvstore.KeepBoth([]byte("|")))
	_, addrB := startServer(t, rb, kvstore.KeepBoth([]byte("|")))

	ra.Put("x", []byte("from-a"))
	rb.Put("y", []byte("from-b"))
	rc.Put("z", []byte("from-c"))

	// c meets a, then c meets b, then b meets a: gossip closes the loop.
	if _, err := SyncWith(addrA, rc); err != nil {
		t.Fatal(err)
	}
	if _, err := SyncWith(addrB, rc); err != nil {
		t.Fatal(err)
	}
	if _, err := SyncWith(addrA, rb); err != nil {
		t.Fatal(err)
	}
	// One more round so a's view of z reaches b... a already has z via c.
	for _, k := range []string{"x", "y", "z"} {
		va, okA := ra.Get(k)
		vb, okB := rb.Get(k)
		if !okA || !okB || !bytes.Equal(va, vb) {
			t.Errorf("a/b diverge on %q: %q/%v vs %q/%v", k, va, okA, vb, okB)
		}
	}
}

func TestServerDown(t *testing.T) {
	client := kvstore.NewReplica("client")
	client.Put("k", []byte("v"))
	if _, err := syncWith("127.0.0.1:1", client, 500*time.Millisecond); err == nil {
		t.Error("sync with a dead server must fail")
	}
	// Client state untouched by the failure.
	if got, ok := client.Get("k"); !ok || string(got) != "v" {
		t.Errorf("client state damaged by failed sync: %q, %v", got, ok)
	}
}

func TestGarbageRequestRejected(t *testing.T) {
	server := kvstore.NewReplica("server")
	_, addr := startServer(t, server, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("decode error reply: %v", err)
	}
	if resp.Error == "" {
		t.Error("server accepted garbage")
	}
}

func TestVersionSkewRejected(t *testing.T) {
	server := kvstore.NewReplica("server")
	_, addr := startServer(t, server, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	snap, _ := kvstore.NewReplica("x").Snapshot()
	if err := json.NewEncoder(conn).Encode(request{V: 99, Snapshot: snap}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Error("server accepted version skew")
	}
	// And the client side rejects skewed responses.
	clientSide := kvstore.NewReplica("c")
	_ = clientSide
}

func TestBadSnapshotRejected(t *testing.T) {
	server := kvstore.NewReplica("server")
	_, addr := startServer(t, server, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(request{V: protocolVersion,
		Snapshot: json.RawMessage(`{"label":"x","entries":[{"key":"k","stamp":"[1|0]"}]}`)}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Error("server accepted an invalid stamp")
	}
}

func TestProtocolErrorSurfacedToClient(t *testing.T) {
	// A fake "server" that replies with a protocol error.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var req request
		_ = json.NewDecoder(conn).Decode(&req)
		_ = json.NewEncoder(conn).Encode(response{V: protocolVersion, Error: "nope"})
	}()
	client := kvstore.NewReplica("client")
	_, err = SyncWith(ln.Addr().String(), client)
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("want ErrProtocol, got %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	server := kvstore.NewReplica("server")
	server.Put("base", []byte("v"))
	_, addr := startServer(t, server, kvstore.KeepBoth([]byte("|")))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := kvstore.NewReplica(fmt.Sprintf("c%d", i))
			c.Put(fmt.Sprintf("k%d", i), []byte("x"))
			if _, err := SyncWith(addr, c); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent sync: %v", err)
	}
	// The server saw every client's key.
	for i := 0; i < 8; i++ {
		if _, ok := server.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("server missing k%d", i)
		}
	}
}

func TestCloseStopsServer(t *testing.T) {
	server := kvstore.NewReplica("server")
	srv, addr := startServer(t, server, nil)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	client := kvstore.NewReplica("client")
	if _, err := syncWith(addr, client, 500*time.Millisecond); err == nil {
		t.Error("sync with a closed server must fail")
	}
	// Listen after Close is rejected.
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen after Close must fail")
	}
}

// TestLegacyJSONClientInterop simulates a pre-binary-snapshot client: the
// request embeds a raw JSON snapshot, and the server must both accept it and
// mirror the legacy format in its reply so the old client can decode it.
func TestLegacyJSONClientInterop(t *testing.T) {
	server := kvstore.NewReplica("server")
	server.Put("greeting", []byte("hello"))
	_, addr := startServer(t, server, nil)

	legacy := kvstore.NewReplica("legacy")
	legacy.Put("name", []byte("world"))
	snap, err := legacy.Snapshot() // the old JSON format
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(request{V: protocolVersion, Snapshot: snap}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("server rejected legacy JSON snapshot: %s", resp.Error)
	}
	if len(resp.Snapshot) == 0 || resp.Snapshot[0] != '{' {
		t.Fatalf("reply to a JSON client is not a raw JSON snapshot: %.16q", string(resp.Snapshot))
	}
	if err := legacy.Adopt(resp.Snapshot); err != nil {
		t.Fatalf("legacy client cannot adopt the reply: %v", err)
	}
	if v, ok := legacy.Get("greeting"); !ok || string(v) != "hello" {
		t.Errorf("legacy client did not converge: %q %v", v, ok)
	}
	if res := resp.Result; res.Transferred != 2 {
		t.Errorf("result = %+v", res)
	}
}

// TestBinarySnapshotOnV1Wire asserts the package's own v1 clients ship
// binary snapshots (base64 strings in the JSON envelope), not JSON ones.
func TestBinarySnapshotOnV1Wire(t *testing.T) {
	server := kvstore.NewReplica("server")
	for i := 0; i < 50; i++ {
		server.Put(fmt.Sprintf("key-%03d", i), []byte("some-padding-value"))
	}
	client := server.Clone("client")
	_, addr := startServer(t, server, nil)
	res, err := SyncWith(addr, client)
	if err != nil {
		t.Fatalf("SyncWith: %v", err)
	}
	requireConverged(t, server, client)
	// A JSON snapshot of 50 padded keys with text stamps runs several hundred
	// bytes per key; the binary round must come in well under that.
	jsonSnap, _ := server.Snapshot()
	wire := res.BytesSent + res.BytesReceived
	if wire >= 2*int64(len(jsonSnap)) {
		t.Errorf("v1 round moved %dB; JSON snapshot alone is %dB — binary format not in effect?",
			wire, len(jsonSnap))
	}
}

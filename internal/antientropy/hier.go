package antientropy

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/kvstore"
)

// Protocol v3: hierarchical rounds over a persistent connection. A
// whole-replica round opens with an 8-byte root hash over all stripe
// summaries (the second summary level); matching roots end the round in
// ~14 bytes. Otherwise phase 0 exchanges fixed-size per-stripe summary
// hashes; only stripes whose summaries differ proceed to the v2-style
// digest phase, and only stamp-divergent copies move, as in v2. A converged
// pair therefore syncs for O(1) bytes instead of O(keys) — and because the
// version byte opens a *session*, not a round, any number of rounds
// (including scoped stripe rounds) ride one TCP connection. See the package
// comment for the frame grammar.

// hierProtocolVersion is the first byte of a v3 connection. Like the v2
// byte, it can never collide with '{'.
const hierProtocolVersion = 0x03

// v3 frame kinds (the v2 kinds kindNeed/kindEntries/kindResult/kindError are
// reused for the phases both protocols share).
const (
	kindSummary       = 0x05 // client: layout + (stripe, summary) pairs
	kindSummaryDiff   = 0x06 // server: stripes whose summaries differ
	kindStripeDigests = 0x07 // client: per-divergent-stripe digest lists
	kindRoot          = 0x08 // client: layout + root hash over all summaries
	kindRootMatch     = 0x09 // server: 1 = roots agree (round over), 0 = diverged
)

// serverSessionIdle bounds how long a v3 session may sit idle between
// rounds before the server drops it. Pooled clients transparently redial,
// so an expired session costs one reconnect, never a failed round.
const serverSessionIdle = 2 * time.Minute

// maxWireStripes bounds a wire-supplied stripe layout so a corrupt frame
// cannot force a huge allocation.
const maxWireStripes = 1 << 16

// stripeSummary is one (stripe index, summary hash) pair of the phase-0
// exchange.
type stripeSummary struct {
	idx uint64
	sum uint64
}

// encodeSummaryFrame builds the kindSummary body: kind, of, count, then
// count×(uvarint stripe, 8-byte big-endian summary).
func encodeSummaryFrame(of int, sums []stripeSummary) []byte {
	body := make([]byte, 0, 2+10*len(sums))
	body = append(body, kindSummary)
	body = binary.AppendUvarint(body, uint64(of))
	body = binary.AppendUvarint(body, uint64(len(sums)))
	for _, s := range sums {
		body = binary.AppendUvarint(body, s.idx)
		body = binary.BigEndian.AppendUint64(body, s.sum)
	}
	return body
}

// decodeSummaryFrame parses a kindSummary body (kind byte already stripped).
func decodeSummaryFrame(body []byte) (of int, sums []stripeSummary, err error) {
	of64, used := binary.Uvarint(body)
	if used <= 0 || of64 < 1 || of64 > maxWireStripes {
		return 0, nil, errors.New("bad summary layout")
	}
	body = body[used:]
	count, used := binary.Uvarint(body)
	if used <= 0 || count > of64 {
		return 0, nil, errors.New("bad summary count")
	}
	body = body[used:]
	sums = make([]stripeSummary, 0, capCount(count, body))
	for i := uint64(0); i < count; i++ {
		idx, used := binary.Uvarint(body)
		if used <= 0 || idx >= of64 {
			return 0, nil, errors.New("bad summary stripe")
		}
		body = body[used:]
		if len(body) < 8 {
			return 0, nil, errors.New("truncated summary")
		}
		sums = append(sums, stripeSummary{idx: idx, sum: binary.BigEndian.Uint64(body)})
		body = body[8:]
	}
	return int(of64), sums, nil
}

// handleHier serves one v3 session: a loop of rounds on one connection. The
// deadline is relaxed to serverSessionIdle while waiting for a round to
// open and tightened to defaultTimeout while one is in flight.
func (s *Server) handleHier(conn net.Conn, br *bufio.Reader) {
	if _, err := br.Discard(1); err != nil { // the version byte, already peeked
		return
	}
	for {
		_ = conn.SetDeadline(time.Now().Add(serverSessionIdle))
		body, err := readFrame(br)
		if err != nil {
			return // session over: peer closed, or idled out
		}
		_ = conn.SetDeadline(time.Now().Add(defaultTimeout))
		if !s.hierRound(conn, br, body) {
			return
		}
	}
}

// hierRound serves one v3 round, the opening frame already read. A
// whole-replica round opens with a kindRoot frame — the second summary
// level: one 8-byte hash over all stripe summaries. Matching roots end the
// round right there (~14 wire bytes); a mismatch falls through to the
// per-stripe summary phase. Scoped rounds open with kindSummary directly.
// It reports whether the session should continue.
func (s *Server) hierRound(conn net.Conn, br *bufio.Reader, opening []byte) bool {
	fail := func(err error) bool {
		_ = writeFrame(conn, appendString([]byte{kindError}, err.Error()))
		return false
	}

	// rootSums carries the root phase's summary computation into the summary
	// phase of the same round, so a root mismatch does not recompute the
	// per-stripe summaries (SummariesScoped regroups every digest when the
	// layouts differ).
	var rootSums []uint64
	rootOf := 0
	if len(opening) > 0 && opening[0] == kindRoot {
		of64, used := binary.Uvarint(opening[1:])
		if used <= 0 || of64 < 1 || of64 > maxWireStripes || len(opening[1+used:]) != 8 {
			return fail(errors.New("bad root frame"))
		}
		peerRoot := binary.BigEndian.Uint64(opening[1+used:])
		local, err := s.replica.SummariesScoped(int(of64))
		if err != nil {
			return fail(err)
		}
		match := byte(0)
		if encoding.SummarizeSummaries(local) == peerRoot {
			match = 1
		}
		if writeFrame(conn, []byte{kindRootMatch, match}) != nil {
			return false
		}
		if match == 1 {
			return true // converged: round over, session stays open
		}
		rootSums, rootOf = local, int(of64)
		if opening, err = readFrame(br); err != nil {
			return fail(fmt.Errorf("bad summary frame: %v", err))
		}
	}

	opening, err := expectKind(opening, kindSummary)
	if err != nil {
		return fail(err)
	}
	of, sums, err := decodeSummaryFrame(opening)
	if err != nil {
		return fail(err)
	}
	local := rootSums
	if local == nil || rootOf != of {
		if local, err = s.replica.SummariesScoped(of); err != nil {
			return fail(err)
		}
	}
	var divergent []uint64
	for _, p := range sums {
		if local[p.idx] != p.sum {
			divergent = append(divergent, p.idx)
		}
	}
	diff := []byte{kindSummaryDiff}
	diff = binary.AppendUvarint(diff, uint64(len(divergent)))
	for _, idx := range divergent {
		diff = binary.AppendUvarint(diff, idx)
	}
	if err := writeFrame(conn, diff); err != nil {
		return false
	}
	if len(divergent) == 0 {
		return true // round over; the session stays open for the next one
	}

	// Phase 1: per-stripe digest lists for exactly the divergent stripes.
	body, err := readFrame(br)
	if err != nil {
		return fail(fmt.Errorf("bad stripe digest frame: %v", err))
	}
	body, err = expectKind(body, kindStripeDigests)
	if err != nil {
		return fail(err)
	}
	wantStripe := make(map[int]bool, len(divergent))
	for _, idx := range divergent {
		wantStripe[int(idx)] = true
	}
	nStripes, used := binary.Uvarint(body)
	if used <= 0 || nStripes > uint64(len(divergent)) {
		return fail(errors.New("bad stripe count"))
	}
	body = body[used:]
	digests := make(map[int][]encoding.Digest, nStripes)
	order := make([]int, 0, nStripes)
	for i := uint64(0); i < nStripes; i++ {
		idx64, used := binary.Uvarint(body)
		if used <= 0 || !wantStripe[int(idx64)] {
			return fail(errors.New("bad or unrequested stripe index"))
		}
		body = body[used:]
		count, used := binary.Uvarint(body)
		if used <= 0 {
			return fail(errors.New("bad digest count"))
		}
		body = body[used:]
		ds := make([]encoding.Digest, 0, capCount(count, body))
		for j := uint64(0); j < count; j++ {
			d, n, err := encoding.DecodeDigest(body)
			if err != nil {
				return fail(err)
			}
			body = body[n:]
			ds = append(ds, d)
		}
		idx := int(idx64)
		if _, dup := digests[idx]; dup {
			return fail(errors.New("duplicate stripe"))
		}
		digests[idx] = ds
		order = append(order, idx)
	}

	need := []byte{kindNeed}
	needCount := 0
	var needBody []byte
	for _, idx := range order {
		diff, err := s.replica.DiffAgainst(digests[idx], idx, of)
		if err != nil {
			return fail(err)
		}
		for _, k := range diff.Need {
			needBody = appendString(needBody, k)
			needCount++
		}
	}
	need = binary.AppendUvarint(need, uint64(needCount))
	need = append(need, needBody...)
	if err := writeFrame(conn, need); err != nil {
		return false
	}

	// Phase 2: full entries in, per-stripe applies, one aggregated result.
	body, err = readFrame(br)
	if err != nil {
		return fail(fmt.Errorf("bad entries frame: %v", err))
	}
	body, err = expectKind(body, kindEntries)
	if err != nil {
		return fail(err)
	}
	count, used := binary.Uvarint(body)
	if used <= 0 {
		return fail(errors.New("bad entry count"))
	}
	body = body[used:]
	entries := make(map[int][]encoding.Entry, len(order))
	for i := uint64(0); i < count; i++ {
		e, n, err := encoding.DecodeEntry(body)
		if err != nil {
			return fail(err)
		}
		body = body[n:]
		idx := kvstore.ShardIndex(e.Key, of)
		if !wantStripe[idx] {
			return fail(fmt.Errorf("entry %q outside the divergent stripes", e.Key))
		}
		entries[idx] = append(entries[idx], e)
	}

	var res kvstore.SyncResult
	var reply []encoding.Entry
	for _, idx := range order {
		stripeReply, part, err := s.replica.ApplyDelta(digests[idx], entries[idx], s.resolve, idx, of)
		if err != nil {
			return fail(err)
		}
		res.Add(part)
		reply = append(reply, stripeReply...)
	}
	return writeFrame(conn, encodeResultFrame(res, reply)) == nil
}

// hierClientRound runs one v3 round over an established session: summaries
// out, divergent stripes in, then the v2-style digest/entries/result phases
// for just those stripes. stripes selects the scoped stripe set; nil means
// every local stripe. The returned result covers only what traveled — keys
// in summary-matched stripes appear solely in StripesSkipped.
func hierClientRound(conn net.Conn, br *bufio.Reader, local *kvstore.Replica,
	stripes []int) (kvstore.SyncResult, error) {
	of := local.Shards()
	wholeReplica := stripes == nil
	if stripes == nil {
		stripes = make([]int, of)
		for i := range stripes {
			stripes[i] = i
		}
	}
	sums := make([]stripeSummary, 0, len(stripes))
	for _, idx := range stripes {
		sum, err := local.StripeSummary(idx)
		if err != nil {
			return kvstore.SyncResult{}, fmt.Errorf("antientropy: %w", err)
		}
		sums = append(sums, stripeSummary{idx: uint64(idx), sum: sum})
	}
	if wholeReplica {
		// Second summary level: open with one 8-byte root hash over all
		// stripe summaries. A converged pair completes the round here, with
		// neither per-stripe summaries nor digests on the wire.
		root := encoding.RootSummarySeed
		for _, s := range sums {
			root = encoding.FoldSummary(root, s.sum)
		}
		frame := []byte{kindRoot}
		frame = binary.AppendUvarint(frame, uint64(of))
		frame = binary.BigEndian.AppendUint64(frame, root)
		if err := writeFrame(conn, frame); err != nil {
			return kvstore.SyncResult{}, fmt.Errorf("antientropy: send root: %w", err)
		}
		body, err := readFrame(br)
		if err != nil {
			return kvstore.SyncResult{}, fmt.Errorf("antientropy: receive: %w", err)
		}
		body, err = expectKind(body, kindRootMatch)
		if err != nil {
			return kvstore.SyncResult{}, err
		}
		if len(body) != 1 || body[0] > 1 {
			return kvstore.SyncResult{}, fmt.Errorf("%w: bad root match frame", ErrProtocol)
		}
		if body[0] == 1 {
			return kvstore.SyncResult{StripesSkipped: of}, nil
		}
	}
	if err := writeFrame(conn, encodeSummaryFrame(of, sums)); err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: send summaries: %w", err)
	}

	body, err := readFrame(br)
	if err != nil {
		return kvstore.SyncResult{}, fmt.Errorf("antientropy: receive: %w", err)
	}
	body, err = expectKind(body, kindSummaryDiff)
	if err != nil {
		return kvstore.SyncResult{}, err
	}
	sent := make(map[int]bool, len(stripes))
	for _, idx := range stripes {
		sent[idx] = true
	}
	count, used := binary.Uvarint(body)
	if used <= 0 || count > uint64(len(stripes)) {
		return kvstore.SyncResult{}, fmt.Errorf("%w: bad summary diff count", ErrProtocol)
	}
	body = body[used:]
	divergent := make([]int, 0, count)
	for i := uint64(0); i < count; i++ {
		idx64, used := binary.Uvarint(body)
		if used <= 0 || !sent[int(idx64)] {
			return kvstore.SyncResult{}, fmt.Errorf("%w: bad summary diff stripe", ErrProtocol)
		}
		body = body[used:]
		divergent = append(divergent, int(idx64))
	}
	var res kvstore.SyncResult
	res.StripesSkipped = len(stripes) - len(divergent)
	if len(divergent) == 0 {
		return res, nil
	}

	// Phase 1: ship digest lists for the divergent stripes, collect needs.
	sentStamps := make(map[string]core.Stamp)
	frame := []byte{kindStripeDigests}
	frame = binary.AppendUvarint(frame, uint64(len(divergent)))
	for _, idx := range divergent {
		ds, err := local.DigestShard(idx)
		if err != nil {
			return res, fmt.Errorf("antientropy: %w", err)
		}
		frame = binary.AppendUvarint(frame, uint64(idx))
		frame = binary.AppendUvarint(frame, uint64(len(ds)))
		for _, d := range ds {
			frame = encoding.AppendDigest(frame, d)
			sentStamps[d.Key] = d.Stamp
		}
	}
	if err := writeFrame(conn, frame); err != nil {
		return res, fmt.Errorf("antientropy: send digests: %w", err)
	}

	body, err = readFrame(br)
	if err != nil {
		return res, fmt.Errorf("antientropy: receive: %w", err)
	}
	body, err = expectKind(body, kindNeed)
	if err != nil {
		return res, err
	}
	count, used = binary.Uvarint(body)
	if used <= 0 {
		return res, fmt.Errorf("%w: bad need count", ErrProtocol)
	}
	body = body[used:]
	entries := []byte{kindEntries}
	entryBodies := make([]byte, 0, 64)
	sentEntries := uint64(0)
	for i := uint64(0); i < count; i++ {
		k, n, err := readString(body)
		if err != nil {
			return res, fmt.Errorf("%w: bad need key", ErrProtocol)
		}
		body = body[n:]
		v, ok := local.Version(k)
		if !ok {
			// Vanished since the digest (Adopt can drop keys); the next
			// round reconciles it.
			delete(sentStamps, k)
			continue
		}
		sentStamps[k] = v.Stamp
		entryBodies = encoding.AppendEntry(entryBodies, encoding.Entry{
			Key: k, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp,
		})
		sentEntries++
	}
	entries = binary.AppendUvarint(entries, sentEntries)
	entries = append(entries, entryBodies...)
	// Point of no return: once any byte of the entries frame is on the wire,
	// the server may receive the complete frame and apply it even if this
	// side only sees a dead connection. Retrying such a round on a fresh
	// dial would ship the same entries against already-forked server stamps
	// — the copies would compare as causally unrelated and reconcile by
	// reseeding (double-apply). Every failure from here on is therefore
	// marked ErrRetryUnsafe; the pool surfaces it instead of redialing, and
	// the next round's digest exchange reconciles whatever state the server
	// actually reached.
	if err := writeFrame(conn, entries); err != nil {
		return res, fmt.Errorf("%w: send entries: %w", ErrRetryUnsafe, err)
	}

	body, err = readFrame(br)
	if err != nil {
		return res, fmt.Errorf("%w: receive result: %w", ErrRetryUnsafe, err)
	}
	body, err = expectKind(body, kindResult)
	if err != nil {
		return res, err
	}
	part, reply, err := decodeResultFrame(body)
	if err != nil {
		return res, err
	}
	res.Add(part)
	// The server may only reply about the divergent stripes — reject
	// anything else before applying, mirroring the server's own check, so
	// a faulty peer cannot slip keys into stripes this round declared
	// converged (or outside a scoped round's stripe set).
	divSet := make(map[int]bool, len(divergent))
	for _, idx := range divergent {
		divSet[idx] = true
	}
	for _, e := range reply {
		if !divSet[kvstore.ShardIndex(e.Key, of)] {
			return res, fmt.Errorf("%w: reply entry %q outside the divergent stripes",
				ErrProtocol, e.Key)
		}
	}
	// The reply spans several stripes, so it is applied under the
	// whole-keyspace scope; the sentStamps guard still pins every entry to
	// the exact copy this round shipped.
	if _, err := local.ApplyDeltaReply(reply, sentStamps, 0, 0); err != nil {
		// The server already applied this round; re-running it would not be a
		// clean retry either.
		return res, fmt.Errorf("%w: apply delta reply: %w", ErrRetryUnsafe, err)
	}
	return res, nil
}

// SyncWithHier performs one hierarchical (v3) anti-entropy round between the
// local replica and the server at addr over a throwaway connection: stripe
// summaries travel first, digest lists only for stripes whose summaries
// differ, full copies only where the stamps cannot prove equivalence. For
// session reuse across rounds — the intended steady state — use a Pool.
func SyncWithHier(addr string, local *kvstore.Replica) (kvstore.SyncResult, error) {
	p := NewPoolOptions(PoolOptions{Protocol: ProtocolHier})
	defer p.Close()
	return p.SyncWith(addr, local)
}

// SyncWithTree performs one v4 tree anti-entropy round between the local
// replica and the server at addr over a throwaway connection: the replica
// root travels first, then the per-stripe tree roots, then only the
// diverging tree nodes level by level, digest runs only for leaf ranges
// that still differ, full copies only where the stamps cannot prove
// equivalence. For session reuse across rounds — the intended steady state
// — use a Pool.
func SyncWithTree(addr string, local *kvstore.Replica) (kvstore.SyncResult, error) {
	p := NewPoolOptions(PoolOptions{Protocol: ProtocolTree})
	defer p.Close()
	return p.SyncWith(addr, local)
}

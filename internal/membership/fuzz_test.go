package membership

import (
	"testing"
)

// FuzzViewAgainstModel drives a View through an arbitrary interleaving of
// ticks, merges of (possibly stale) heartbeat tables from two simulated
// gossip partners, and crash-refreshes — checking it against a naive
// reference model after every operation, plus the invariants the cluster
// layers rely on:
//
//   - counters never regress;
//   - StateVersion and MemberVersion never regress;
//   - a Dead member is never resurrected by a stale counter (one not
//     strictly fresher than what the view already held);
//   - the view's judgment of every member equals the model's.
//
// The two partners advance independently, so one can gossip tables that
// lag the other — the replayed-stale-heartbeat case that must never
// re-alive a dead node.
func FuzzViewAgainstModel(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 9, 1, 1})       // long silence then stale merge
	f.Add([]byte{1, 255, 0, 1, 0, 2, 1, 3})              // merge-heavy
	f.Add([]byte{0, 1, 128, 0, 0, 0, 0, 0, 2, 1, 64, 0}) // death then refresh
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 0, 1, 255, 0, 0, 2})

	roster := []string{"n0", "n1", "n2", "n3"}
	cfg := Config{SuspectAfter: 2, DeadAfter: 4}

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := NewView("n0", cfg, roster...)
		if err != nil {
			t.Fatal(err)
		}
		m := newModel("n0", cfg.withDefaults(), roster)

		// Two gossip partners with independently advancing counters; a
		// merge delivers a snapshot of one partner's counters, which may
		// be arbitrarily stale relative to what the view already merged
		// from the other.
		partners := [2]map[string]uint64{
			{"n0": 0, "n1": 1, "n2": 1, "n3": 1},
			{"n0": 0, "n1": 1, "n2": 1, "n3": 1},
		}

		var lastState, lastMember uint64
		check := func(op string) {
			t.Helper()
			if sv := v.StateVersion(); sv < lastState {
				t.Fatalf("%s: StateVersion regressed %d -> %d", op, lastState, sv)
			} else {
				lastState = sv
			}
			if mv := v.MemberVersion(); mv < lastMember {
				t.Fatalf("%s: MemberVersion regressed %d -> %d", op, lastMember, mv)
			} else {
				lastMember = mv
			}
			for _, id := range roster {
				if got, want := v.State(id), m.state(id); got != want {
					t.Fatalf("%s: State(%s) = %v, model says %v", op, id, got, want)
				}
			}
		}

		for i := 0; i < len(data); {
			switch data[i] % 3 {
			case 0: // tick
				i++
				v.Tick()
				m.tick()
				check("tick")
			case 1: // merge a partner's table, optionally advancing it first
				if i+2 >= len(data) {
					return
				}
				p := partners[data[i+1]%2]
				adv := data[i+2]
				i += 3
				// Advance a subset of the partner's counters: bit k of adv
				// bumps roster[k] by (adv>>4)%4. Partner counters only
				// grow, but the partner NOT advanced stays stale.
				for k, id := range roster {
					if adv&(1<<k) != 0 {
						p[id] += uint64(adv>>4)%4 + 1
					}
				}
				table := make([]Heartbeat, 0, len(roster))
				for _, id := range roster {
					table = append(table, Heartbeat{ID: id, Counter: p[id]})
				}
				// Dead-resurrection guard: record who is dead with what
				// counter before the merge.
				deadBefore := map[string]uint64{}
				for _, id := range roster {
					if v.State(id) == Dead {
						deadBefore[id] = m.counter(id)
					}
				}
				v.Merge(table)
				m.merge(table)
				check("merge")
				for _, hb := range table {
					if old, wasDead := deadBefore[hb.ID]; wasDead && hb.Counter <= old {
						if v.State(hb.ID) != Dead {
							t.Fatalf("merge: stale counter %d (<= %d) resurrected dead member %s",
								hb.Counter, old, hb.ID)
						}
					}
				}
			case 2: // crash-refresh
				i++
				v.Refresh()
				m.refresh()
				check("refresh")
			}
		}
	})
}

// model is an independent, deliberately naive re-statement of the membership
// rules: plain maps, no versions, states recomputed from scratch on demand.
type model struct {
	self     string
	cfg      Config
	now      int
	counters map[string]uint64
	seenAt   map[string]int
	dead     map[string]bool // sticky until a strictly fresher counter or refresh
}

func newModel(self string, cfg Config, roster []string) *model {
	m := &model{
		self: self, cfg: cfg,
		counters: map[string]uint64{},
		seenAt:   map[string]int{},
		dead:     map[string]bool{},
	}
	m.counters[self] = 1
	for _, id := range roster {
		if _, ok := m.counters[id]; !ok {
			m.counters[id] = 0
		}
	}
	return m
}

func (m *model) tick() {
	m.now++
	m.counters[m.self]++
	m.seenAt[m.self] = m.now
	for id := range m.counters {
		if id != m.self && m.now-m.seenAt[id] >= m.cfg.DeadAfter {
			m.dead[id] = true
		}
	}
}

func (m *model) merge(table []Heartbeat) {
	for _, hb := range table {
		if hb.Counter > m.counters[hb.ID] {
			m.counters[hb.ID] = hb.Counter
			m.seenAt[hb.ID] = m.now
			if hb.ID != m.self {
				delete(m.dead, hb.ID)
			}
		}
	}
}

func (m *model) refresh() {
	for id := range m.counters {
		m.seenAt[id] = m.now
		delete(m.dead, id)
	}
}

func (m *model) counter(id string) uint64 { return m.counters[id] }

// state recomputes id's liveness from first principles: age since last
// fresh counter, thresholds, and the sticky-death rule (dead stays dead
// until a strictly fresher counter arrives).
func (m *model) state(id string) State {
	if id == m.self {
		return Alive
	}
	age := m.now - m.seenAt[id]
	switch {
	case age >= m.cfg.DeadAfter:
		return Dead
	case m.dead[id]:
		return Dead
	case age >= m.cfg.SuspectAfter:
		return Suspect
	default:
		return Alive
	}
}

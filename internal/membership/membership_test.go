package membership

import (
	"reflect"
	"testing"
)

func TestNewViewValidation(t *testing.T) {
	if _, err := NewView("", Config{}); err == nil {
		t.Fatal("empty self should error")
	}
	if _, err := NewView("a", Config{}, "b", ""); err == nil {
		t.Fatal("empty roster ID should error")
	}
}

func TestBootstrapRosterAlive(t *testing.T) {
	v, err := NewView("a", Config{}, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Members(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Members = %v", got)
	}
	for _, id := range []string{"a", "b", "c"} {
		if v.State(id) != Alive {
			t.Fatalf("%s = %v, want alive", id, v.State(id))
		}
	}
	if v.State("nope") != Unknown {
		t.Fatal("unseen ID should be Unknown")
	}
}

// A silent peer degrades alive → suspect → dead at the configured ticks,
// and a fresher counter revives it.
func TestSuspectDeadRevive(t *testing.T) {
	cfg := Config{SuspectAfter: 2, DeadAfter: 4}
	v, err := NewView("a", cfg, "b")
	if err != nil {
		t.Fatal(err)
	}
	states := []State{Alive, Suspect, Suspect, Dead, Dead}
	for i, want := range states {
		v.Tick()
		if got := v.State("b"); got != want {
			t.Fatalf("after tick %d: b = %v, want %v", i+1, got, want)
		}
	}
	sv := v.StateVersion()
	// b revives: its own counter advanced past what we knew.
	v.Merge([]Heartbeat{{ID: "b", Counter: 10}})
	if v.State("b") != Alive {
		t.Fatal("fresher counter should revive b")
	}
	if v.StateVersion() == sv {
		t.Fatal("revival should bump StateVersion")
	}
	// Stale counters do nothing.
	v.Tick()
	v.Tick()
	v.Tick() // suspect again (SuspectAfter=2)
	if v.State("b") != Suspect {
		t.Fatalf("b = %v, want suspect", v.State("b"))
	}
	v.Merge([]Heartbeat{{ID: "b", Counter: 10}})
	if v.State("b") != Suspect {
		t.Fatal("replayed stale counter must not revive")
	}
}

func TestHeartbeatsKeepPeersAlive(t *testing.T) {
	cfg := Config{SuspectAfter: 2, DeadAfter: 4}
	a, _ := NewView("a", cfg, "b")
	b, _ := NewView("b", cfg, "a")
	for i := 0; i < 20; i++ {
		a.Tick()
		b.Tick()
		a.Merge(b.Gossip())
		b.Merge(a.Gossip())
		if a.State("b") != Alive || b.State("a") != Alive {
			t.Fatalf("tick %d: gossiping peers should stay alive", i)
		}
	}
}

func TestMergeDiscoversMembers(t *testing.T) {
	a, _ := NewView("a", Config{})
	if a.MemberVersion() != 0 {
		t.Fatal("fresh view should have MemberVersion 0")
	}
	a.Merge([]Heartbeat{{ID: "b", Counter: 1}, {ID: "c", Counter: 1}})
	if got := a.Members(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Members = %v", got)
	}
	if a.MemberVersion() != 2 {
		t.Fatalf("MemberVersion = %d, want 2", a.MemberVersion())
	}
	// Re-merging known IDs must not bump the member version.
	a.Merge([]Heartbeat{{ID: "b", Counter: 5}})
	if a.MemberVersion() != 2 {
		t.Fatal("known ID merge must not bump MemberVersion")
	}
}

// Counter propagation is transitive: c learns that a is alive purely via b.
func TestTransitivePropagation(t *testing.T) {
	cfg := Config{SuspectAfter: 3, DeadAfter: 6}
	a, _ := NewView("a", cfg, "b", "c")
	b, _ := NewView("b", cfg, "a", "c")
	c, _ := NewView("c", cfg, "a", "b")
	for i := 0; i < 10; i++ {
		a.Tick()
		b.Tick()
		c.Tick()
		// a only talks to b; c only talks to b.
		a.Merge(b.Gossip())
		b.Merge(a.Gossip())
		c.Merge(b.Gossip())
		b.Merge(c.Gossip())
	}
	if c.State("a") != Alive {
		t.Fatalf("c sees a as %v via relay, want alive", c.State("a"))
	}
	if a.State("c") != Alive {
		t.Fatalf("a sees c as %v via relay, want alive", a.State("c"))
	}
}

func TestRefreshGrantsGrace(t *testing.T) {
	cfg := Config{SuspectAfter: 2, DeadAfter: 4}
	v, _ := NewView("a", cfg, "b")
	for i := 0; i < 6; i++ {
		v.Tick()
	}
	if v.State("b") != Dead {
		t.Fatal("setup: b should be dead")
	}
	v.Refresh()
	if v.State("b") != Alive {
		t.Fatal("Refresh should reset b to alive")
	}
	v.Tick()
	if v.State("b") != Alive {
		t.Fatal("one tick after Refresh, b should still be within grace")
	}
}

func TestAlive(t *testing.T) {
	cfg := Config{SuspectAfter: 1, DeadAfter: 2}
	v, _ := NewView("a", cfg, "b", "c")
	v.Merge([]Heartbeat{{ID: "b", Counter: 2}})
	v.Tick() // c ages to suspect (age 1 >= 1); b was refreshed at tick 0... both age
	// After one tick: b seenAt=0 age 1 → suspect; keep simple: both non-self suspect.
	if got := v.Alive(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Alive = %v, want [a]", got)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []string {
		cfg := Config{SuspectAfter: 2, DeadAfter: 4}
		a, _ := NewView("a", cfg, "b", "c")
		b, _ := NewView("b", cfg, "a", "c")
		var log []string
		for i := 0; i < 8; i++ {
			a.Tick()
			b.Tick()
			if i%2 == 0 {
				a.Merge(b.Gossip())
				b.Merge(a.Gossip())
			}
			log = append(log, a.State("b").String(), a.State("c").String(), b.State("c").String())
		}
		return log
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical runs diverged")
	}
}

// Package membership is the failure-detection layer under the partitioned
// cluster: each node keeps a View of its peers, learned and refreshed by
// exchanging heartbeat tables over the same gossip rounds that carry
// anti-entropy traffic.
//
// Time is logical: a node calls Tick once per gossip round, which advances
// its own heartbeat counter and ages everyone else's. A peer whose counter
// has not advanced for SuspectAfter ticks becomes Suspect; after DeadAfter
// ticks, Dead. Counters only ever grow, so merging tables is idempotent and
// order-independent, and a revived node — which resumes incrementing the
// same counter — is recognized as alive again the moment its fresher
// counter propagates. There is no wall clock and no randomness: runs are
// exactly reproducible, which the cluster tests rely on.
//
// The view separates two kinds of change. StateVersion bumps on any state
// transition (alive→suspect→dead→alive) — the cluster uses it to invalidate
// per-peer scheduling state such as divergence bias. MemberVersion bumps
// only when the set of known node IDs grows — the event that triggers a
// deterministic consistent-hash ring rebuild. Death deliberately does NOT
// rebuild the ring: a dead node keeps its stripe ownership so that writes
// which miss it are hint-queued for its revival, Dynamo-style, rather than
// silently re-homed.
package membership

import (
	"fmt"
	"sort"
	"sync"
)

// State is a peer's liveness as judged by one view.
type State int

// Liveness states.
const (
	// Alive: heartbeats are fresh.
	Alive State = iota
	// Suspect: heartbeats are stale; the peer keeps its ring ownership and
	// still receives gossip, but writes may start hinting.
	Suspect
	// Dead: heartbeats stopped long ago; peers stop gossiping with it and
	// queue hints until a fresher counter revives it.
	Dead
	// Unknown: the ID has never been seen by this view.
	Unknown
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// Heartbeat is one row of a gossiped membership table.
type Heartbeat struct {
	ID      string
	Counter uint64
}

// Config sets the staleness thresholds, in ticks.
type Config struct {
	// SuspectAfter is the number of ticks without a fresher counter before
	// a peer turns Suspect (default 3).
	SuspectAfter int
	// DeadAfter is the number of ticks before Suspect turns Dead
	// (default 6). Must exceed SuspectAfter.
	DeadAfter int
}

func (c Config) withDefaults() Config {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = 2 * c.SuspectAfter
	}
	return c
}

type member struct {
	counter uint64
	seenAt  int // tick when counter last advanced
	state   State
}

// View is one node's opinion of the cluster. Safe for concurrent use.
type View struct {
	mu            sync.Mutex
	self          string
	cfg           Config
	tick          int
	stateVersion  uint64
	memberVersion uint64
	peers         map[string]*member
}

// NewView creates a view for node self, optionally pre-seeded with a
// bootstrap roster (all initially Alive). Self is always a member.
func NewView(self string, cfg Config, roster ...string) (*View, error) {
	if self == "" {
		return nil, fmt.Errorf("membership: empty self ID")
	}
	v := &View{
		self:  self,
		cfg:   cfg.withDefaults(),
		peers: map[string]*member{self: {counter: 1, state: Alive}},
	}
	for _, id := range roster {
		if id == "" {
			return nil, fmt.Errorf("membership: empty roster ID")
		}
		if _, ok := v.peers[id]; !ok {
			v.peers[id] = &member{counter: 0, state: Alive}
		}
	}
	return v, nil
}

// Self returns the owning node's ID.
func (v *View) Self() string { return v.self }

// Tick advances logical time one gossip round: the node's own counter
// increments, and every peer's staleness is re-judged against the
// thresholds.
func (v *View) Tick() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.tick++
	self := v.peers[v.self]
	self.counter++
	self.seenAt = v.tick
	for id, m := range v.peers {
		if id == v.self {
			continue
		}
		age := v.tick - m.seenAt
		next := m.state
		switch {
		case age >= v.cfg.DeadAfter:
			next = Dead
		case age >= v.cfg.SuspectAfter:
			if m.state != Dead {
				next = Suspect
			}
		default:
			next = Alive
		}
		if next != m.state {
			m.state = next
			v.stateVersion++
		}
	}
}

// Gossip returns the view's heartbeat table, sorted by ID — the payload a
// node sends to a gossip partner. Dead members are included so that their
// last counters (and eventual revival) propagate.
func (v *View) Gossip() []Heartbeat {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Heartbeat, 0, len(v.peers))
	for id, m := range v.peers {
		out = append(out, Heartbeat{ID: id, Counter: m.counter})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Merge folds a gossip partner's table into the view. Counters only move
// forward; a fresher counter refreshes the peer and revives it if it was
// suspect or dead. Unknown IDs join the member set (bumping MemberVersion).
func (v *View) Merge(table []Heartbeat) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, hb := range table {
		if hb.ID == "" {
			continue
		}
		m, ok := v.peers[hb.ID]
		if !ok {
			v.peers[hb.ID] = &member{counter: hb.Counter, seenAt: v.tick, state: Alive}
			v.memberVersion++
			v.stateVersion++
			continue
		}
		if hb.Counter > m.counter {
			m.counter = hb.Counter
			m.seenAt = v.tick
			if m.state != Alive && hb.ID != v.self {
				m.state = Alive
				v.stateVersion++
			}
		}
	}
}

// MergeFrom folds another in-process view's table directly into v — the
// allocation-light equivalent of v.Merge(o.Gossip()) for harnesses where
// both views live in one process. At 1k simulated nodes the sorted-table
// round trip (two 1000-row copies per exchange) dominates membership cost;
// the direct map walk removes it. Locks are taken in self-ID order so two
// concurrent MergeFrom calls on crossing pairs cannot deadlock.
func (v *View) MergeFrom(o *View) {
	if v == o {
		return
	}
	if v.self < o.self {
		v.mu.Lock()
		o.mu.Lock()
	} else {
		o.mu.Lock()
		v.mu.Lock()
	}
	defer v.mu.Unlock()
	defer o.mu.Unlock()
	for id, om := range o.peers {
		m, ok := v.peers[id]
		if !ok {
			v.peers[id] = &member{counter: om.counter, seenAt: v.tick, state: Alive}
			v.memberVersion++
			v.stateVersion++
			continue
		}
		if om.counter > m.counter {
			m.counter = om.counter
			m.seenAt = v.tick
			if m.state != Alive && id != v.self {
				m.state = Alive
				v.stateVersion++
			}
		}
	}
}

// Refresh marks every member as freshly seen, granting a full staleness
// window before anyone can be suspected. A node calls it when resuming
// after a crash: its frozen view would otherwise instantly suspect peers
// that were fine all along.
func (v *View) Refresh() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, m := range v.peers {
		m.seenAt = v.tick
		if m.state != Alive {
			m.state = Alive
			v.stateVersion++
		}
	}
}

// State returns the view's judgment of id (Unknown if never seen).
func (v *View) State(id string) State {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.peers[id]
	if !ok {
		return Unknown
	}
	return m.state
}

// Members returns all known IDs, sorted — the input to a ring rebuild.
func (v *View) Members() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.peers))
	for id := range v.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Alive returns the IDs currently judged Alive, sorted.
func (v *View) Alive() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []string
	for id, m := range v.peers {
		if m.state == Alive {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// StateVersion counts state transitions; any change of any member's
// liveness bumps it.
func (v *View) StateVersion() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stateVersion
}

// MemberVersion counts growth of the known-ID set; a change means rings
// built from Members() must be rebuilt.
func (v *View) MemberVersion() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.memberVersion
}

// Package ring places the keyspace's virtual stripes on a consistent-hash
// ring of node IDs with R-way replicated ownership. A Ring answers, for any
// stripe, the ordered list of R distinct nodes responsible for it — the
// placement layer under the partitioned cluster: keys hash to stripes
// (kvstore.ShardIndex on both endpoints), stripes hash onto the ring, and
// anti-entropy rounds run only between a stripe's owners.
//
// Placement is a pure function of the member list and the parameters: every
// node that knows the same member set computes the same ring with no
// coordination, which is the property the paper's stamps demand of every
// layer — replicas appear and retire without a naming service, and the ring
// rebuilds deterministically when the membership layer reports the change.
// Each node projects onto many virtual points so load spreads evenly, and a
// single membership change only touches the stripes whose owner walk passes
// the changed node: every other stripe keeps its exact owner list, so a
// rebuild invalidates the minimum of placement state.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualPoints is how many points each node projects onto the ring.
// 64 points keep per-node stripe counts within a few percent of even for
// cluster sizes up to several hundred nodes.
const DefaultVirtualPoints = 64

// Ring is an immutable placement of stripes onto nodes. Build a new Ring on
// membership change (WithNodes); lookups are precomputed and read-only, so
// a Ring is safe for concurrent use.
type Ring struct {
	stripes     int
	replication int
	vpoints     int
	nodes       []string   // sorted, distinct
	owners      [][]string // stripe -> ordered owner IDs (walk order)
	ownedBy     map[string][]int
}

// point is one virtual position of a node on the hash circle.
type point struct {
	hash uint64
	node string
}

// New builds a ring of the given nodes with DefaultVirtualPoints per node.
// Each stripe is owned by min(replication, len(nodes)) distinct nodes, in
// clockwise walk order from the stripe's position.
func New(nodes []string, stripes, replication int) (*Ring, error) {
	return NewVirtual(nodes, stripes, replication, DefaultVirtualPoints)
}

// NewVirtual is New with an explicit virtual-point count per node.
func NewVirtual(nodes []string, stripes, replication, vpoints int) (*Ring, error) {
	if stripes < 1 {
		return nil, fmt.Errorf("ring: need >= 1 stripe, got %d", stripes)
	}
	if replication < 1 {
		return nil, fmt.Errorf("ring: need replication >= 1, got %d", replication)
	}
	if vpoints < 1 {
		return nil, fmt.Errorf("ring: need >= 1 virtual point, got %d", vpoints)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ring: need at least one node")
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, id := range sorted {
		if id == "" {
			return nil, fmt.Errorf("ring: empty node ID")
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("ring: duplicate node ID %q", id)
		}
	}
	if replication > len(sorted) {
		replication = len(sorted)
	}

	points := make([]point, 0, len(sorted)*vpoints)
	for _, id := range sorted {
		for v := 0; v < vpoints; v++ {
			points = append(points, point{hash: hash64(fmt.Sprintf("%s#%d", id, v)), node: id})
		}
	}
	// Ties broken by node ID so the walk order is deterministic even under
	// (astronomically unlikely) hash collisions.
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		return points[a].node < points[b].node
	})

	r := &Ring{
		stripes:     stripes,
		replication: replication,
		vpoints:     vpoints,
		nodes:       sorted,
		owners:      make([][]string, stripes),
		ownedBy:     make(map[string][]int, len(sorted)),
	}
	for s := 0; s < stripes; s++ {
		r.owners[s] = walk(points, hash64(fmt.Sprintf("stripe/%d", s)), replication)
		for _, id := range r.owners[s] {
			r.ownedBy[id] = append(r.ownedBy[id], s)
		}
	}
	return r, nil
}

// walk collects the first `want` distinct nodes clockwise from position h.
func walk(points []point, h uint64, want int) []string {
	start := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
	owners := make([]string, 0, want)
	for off := 0; off < len(points) && len(owners) < want; off++ {
		cand := points[(start+off)%len(points)].node
		dup := false
		for _, id := range owners {
			if id == cand {
				dup = true
				break
			}
		}
		if !dup {
			owners = append(owners, cand)
		}
	}
	return owners
}

// WithNodes rebuilds the ring for a changed member set, keeping stripes,
// replication and virtual-point count — the deterministic rebuild the
// membership layer triggers. Stripes whose owner walk does not pass the
// changed nodes keep their exact owner lists.
func (r *Ring) WithNodes(nodes []string) (*Ring, error) {
	return NewVirtual(nodes, r.stripes, r.replication, r.vpoints)
}

// Stripes returns the virtual stripe count.
func (r *Ring) Stripes() int { return r.stripes }

// Replication returns the effective owners-per-stripe count (the requested
// factor clamped to the member count).
func (r *Ring) Replication() int { return r.replication }

// Nodes returns the sorted member IDs.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owners returns stripe s's ordered owner IDs. The first owner is the
// stripe's primary (the preferred write coordinator); order is the
// clockwise walk, so it is stable across rebuilds that do not touch these
// nodes.
func (r *Ring) Owners(s int) ([]string, error) {
	if s < 0 || s >= r.stripes {
		return nil, fmt.Errorf("ring: stripe %d out of range of %d", s, r.stripes)
	}
	return append([]string(nil), r.owners[s]...), nil
}

// Owns reports whether node id owns stripe s.
func (r *Ring) Owns(id string, s int) bool {
	if s < 0 || s >= r.stripes {
		return false
	}
	for _, o := range r.owners[s] {
		if o == id {
			return true
		}
	}
	return false
}

// StripesOwnedBy returns the ascending stripe indices owned by node id
// (empty for unknown nodes).
func (r *Ring) StripesOwnedBy(id string) []int {
	return append([]int(nil), r.ownedBy[id]...)
}

// hash64 positions s on the circle: FNV-64a finished with a 64-bit
// avalanche mix. Raw FNV of short, similar labels ("node-3#17") leaves the
// high bits — which decide ring order — strongly correlated, clustering
// whole nodes together; the finalizer spreads every input bit across the
// word.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 fmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

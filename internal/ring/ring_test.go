package ring

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func ids(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name                          string
		nodes                         []string
		stripes, replication, vpoints int
	}{
		{"no nodes", nil, 8, 2, 4},
		{"zero stripes", ids(3), 0, 2, 4},
		{"zero replication", ids(3), 8, 0, 4},
		{"zero vpoints", ids(3), 8, 2, 0},
		{"duplicate id", []string{"a", "b", "a"}, 8, 2, 4},
		{"empty id", []string{"a", ""}, 8, 2, 4},
	}
	for _, tc := range cases {
		if _, err := NewVirtual(tc.nodes, tc.stripes, tc.replication, tc.vpoints); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestOwnersDistinctAndComplete(t *testing.T) {
	r, err := New(ids(9), 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replication() != 3 {
		t.Fatalf("replication = %d", r.Replication())
	}
	for s := 0; s < 64; s++ {
		owners, err := r.Owners(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(owners) != 3 {
			t.Fatalf("stripe %d has %d owners", s, len(owners))
		}
		seen := map[string]bool{}
		for _, id := range owners {
			if seen[id] {
				t.Fatalf("stripe %d repeats owner %s", s, id)
			}
			seen[id] = true
			if !r.Owns(id, s) {
				t.Fatalf("Owns(%s,%d) = false for listed owner", id, s)
			}
		}
	}
	// StripesOwnedBy inverts Owners exactly.
	total := 0
	for _, id := range ids(9) {
		owned := r.StripesOwnedBy(id)
		if !sort.IntsAreSorted(owned) {
			t.Fatalf("StripesOwnedBy(%s) not sorted", id)
		}
		for _, s := range owned {
			if !r.Owns(id, s) {
				t.Fatalf("inverse mapping wrong for %s stripe %d", id, s)
			}
		}
		total += len(owned)
	}
	if total != 64*3 {
		t.Fatalf("ownership entries = %d, want %d", total, 64*3)
	}
}

func TestReplicationClampedToNodes(t *testing.T) {
	r, err := New(ids(2), 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replication() != 2 {
		t.Fatalf("effective replication = %d, want 2", r.Replication())
	}
	for s := 0; s < 16; s++ {
		owners, _ := r.Owners(s)
		if len(owners) != 2 {
			t.Fatalf("stripe %d has %d owners", s, len(owners))
		}
	}
}

func TestDeterministicAcrossInputOrder(t *testing.T) {
	nodes := ids(12)
	shuffled := append([]string(nil), nodes...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, err := New(nodes, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(shuffled, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 32; s++ {
		oa, _ := a.Owners(s)
		ob, _ := b.Owners(s)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("stripe %d: owners differ by input order: %v vs %v", s, oa, ob)
		}
	}
}

// Removing one node must leave the owner list of every stripe that node did
// not own exactly unchanged: the departed node's virtual points are the only
// points removed, so walks that never passed them are untouched.
func TestRemovalOnlyRemapsOwnedStripes(t *testing.T) {
	nodes := ids(10)
	before, err := New(nodes, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	gone := "node-4"
	var rest []string
	for _, id := range nodes {
		if id != gone {
			rest = append(rest, id)
		}
	}
	after, err := before.WithNodes(rest)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for s := 0; s < 128; s++ {
		oa, _ := before.Owners(s)
		ob, _ := after.Owners(s)
		if before.Owns(gone, s) {
			changed++
			// The surviving owners keep their positions; one new owner joins.
			var kept []string
			for _, id := range oa {
				if id != gone {
					kept = append(kept, id)
				}
			}
			for _, id := range kept {
				if !after.Owns(id, s) {
					t.Fatalf("stripe %d: surviving owner %s lost ownership", s, id)
				}
			}
			if len(ob) != 3 {
				t.Fatalf("stripe %d: %d owners after removal", s, len(ob))
			}
		} else if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("stripe %d not owned by %s changed owners: %v vs %v", s, gone, oa, ob)
		}
	}
	if changed == 0 {
		t.Fatal("expected the departed node to have owned some stripes")
	}
}

// Adding one node changes at most one owner per stripe (the walk either
// skips the new node's points or inserts it, pushing the last owner out).
func TestAdditionShiftsAtMostOneOwnerPerStripe(t *testing.T) {
	before, err := New(ids(9), 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	after, err := before.WithNodes(append(ids(9), "node-9"))
	if err != nil {
		t.Fatal(err)
	}
	gained := 0
	for s := 0; s < 64; s++ {
		oa, _ := before.Owners(s)
		ob, _ := after.Owners(s)
		lost := 0
		for _, id := range oa {
			if !after.Owns(id, s) {
				lost++
			}
		}
		if lost > 1 {
			t.Fatalf("stripe %d lost %d owners on a single addition", s, lost)
		}
		if after.Owns("node-9", s) {
			gained++
		}
		if len(ob) != 3 {
			t.Fatalf("stripe %d: %d owners", s, len(ob))
		}
	}
	if gained == 0 {
		t.Fatal("new node owns nothing; expected it to take over some stripes")
	}
}

func TestLoadSpread(t *testing.T) {
	r, err := New(ids(16), 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect balance would be 256*3/16 = 48 stripes per node; virtual
	// points should keep every node within a factor of 2 of that.
	for _, id := range ids(16) {
		owned := len(r.StripesOwnedBy(id))
		if owned < 48/2 || owned > 48*2 {
			t.Fatalf("%s owns %d stripes; want within [24, 96]", id, owned)
		}
	}
}

func TestOwnersRangeErrors(t *testing.T) {
	r, err := New(ids(3), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Owners(-1); err == nil {
		t.Fatal("Owners(-1) should error")
	}
	if _, err := r.Owners(8); err == nil {
		t.Fatal("Owners(8) should error")
	}
	if r.Owns("node-0", -1) || r.Owns("node-0", 8) {
		t.Fatal("Owns out of range should be false")
	}
}

// Package bitstr implements finite binary strings over the alphabet {0,1}
// together with the prefix partial order used throughout the version-stamp
// construction (Almeida, Baquero, Fonte: "Version Stamps — Decentralized
// Version Vectors", ICDCS 2002, Section 4).
//
// A binary string r is below another string s, written r ⊑ s, exactly when r
// is a prefix of s. The empty string ε is the bottom of this order. Two
// strings with no prefix relation in either direction are incomparable,
// written r ∥ s.
//
// Strings are represented as Go strings containing only the bytes '0' and
// '1'. The representation is immutable and can be compared, hashed and
// sorted with the built-in string operations; lexicographic order groups
// every string's extensions into a contiguous run, which package name
// exploits for binary-search domination checks.
package bitstr

import (
	"fmt"
	"strings"
)

// Bits is a finite binary string: a sequence of the bytes '0' and '1'.
// The zero value is the empty string ε, the bottom of the prefix order.
//
// Not every Go string is a valid Bits; use Parse to validate external
// input, or construct values with Append0, Append1 and Concat which
// preserve validity.
type Bits string

// Epsilon is the empty binary string ε, the bottom of the prefix order.
const Epsilon Bits = ""

// Bit values accepted by AppendBit.
const (
	Zero byte = '0'
	One  byte = '1'
)

// Valid reports whether b contains only the bytes '0' and '1'.
func (b Bits) Valid() bool {
	for i := 0; i < len(b); i++ {
		if b[i] != Zero && b[i] != One {
			return false
		}
	}
	return true
}

// Parse validates s as a binary string. It accepts the conventional
// spellings of the empty string: "", "ε" and "e".
func Parse(s string) (Bits, error) {
	switch s {
	case "", "ε", "e":
		return Epsilon, nil
	}
	b := Bits(s)
	if !b.Valid() {
		return Epsilon, fmt.Errorf("bitstr: parse %q: not a binary string", s)
	}
	return b, nil
}

// String renders b, spelling the empty string as "ε".
func (b Bits) String() string {
	if len(b) == 0 {
		return "ε"
	}
	return string(b)
}

// Len returns the length (depth) of b in bits.
func (b Bits) Len() int { return len(b) }

// IsEpsilon reports whether b is the empty string.
func (b Bits) IsEpsilon() bool { return len(b) == 0 }

// PrefixOf reports b ⊑ c: b is a (not necessarily proper) prefix of c.
func (b Bits) PrefixOf(c Bits) bool {
	return strings.HasPrefix(string(c), string(b))
}

// StrictPrefixOf reports b ⊏ c: b is a proper prefix of c.
func (b Bits) StrictPrefixOf(c Bits) bool {
	return len(b) < len(c) && b.PrefixOf(c)
}

// ComparableTo reports whether b and c are related by the prefix order in
// either direction (b ⊑ c or c ⊑ b).
func (b Bits) ComparableTo(c Bits) bool {
	if len(b) <= len(c) {
		return b.PrefixOf(c)
	}
	return c.PrefixOf(b)
}

// IncomparableTo reports b ∥ c: neither string is a prefix of the other.
// Invariant I2 of the paper states that all id strings across a frontier
// are pairwise incomparable.
func (b Bits) IncomparableTo(c Bits) bool { return !b.ComparableTo(c) }

// Append0 returns b·0, the left fork of b.
func (b Bits) Append0() Bits { return b + Bits([]byte{Zero}) }

// Append1 returns b·1, the right fork of b.
func (b Bits) Append1() Bits { return b + Bits([]byte{One}) }

// AppendBit returns b·bit. The bit must be Zero or One; any other byte
// returns b unchanged and ok=false.
func (b Bits) AppendBit(bit byte) (Bits, bool) {
	if bit != Zero && bit != One {
		return b, false
	}
	return b + Bits([]byte{bit}), true
}

// Concat returns b·c, the concatenation of the two strings.
func (b Bits) Concat(c Bits) Bits { return b + c }

// Parent returns b without its final bit, together with that bit.
// ok is false when b is the empty string, which has no parent.
func (b Bits) Parent() (parent Bits, lastBit byte, ok bool) {
	if len(b) == 0 {
		return Epsilon, 0, false
	}
	return b[:len(b)-1], b[len(b)-1], true
}

// Sibling returns the string that differs from b only in the final bit
// (the other child of b's parent). ok is false for the empty string.
//
// The reduction rule of Section 6 collapses a sibling pair {s·0, s·1}
// present in an id back into s.
func (b Bits) Sibling() (Bits, bool) {
	parent, last, ok := b.Parent()
	if !ok {
		return Epsilon, false
	}
	if last == Zero {
		return parent.Append1(), true
	}
	return parent.Append0(), true
}

// Bit returns the i-th bit of b as Zero or One. It reports ok=false when i
// is out of range.
func (b Bits) Bit(i int) (byte, bool) {
	if i < 0 || i >= len(b) {
		return 0, false
	}
	return b[i], true
}

// CommonPrefix returns the longest common prefix of b and c.
func (b Bits) CommonPrefix(c Bits) Bits {
	n := min(len(b), len(c))
	i := 0
	for i < n && b[i] == c[i] {
		i++
	}
	return b[:i]
}

// Compare orders b and c lexicographically (NOT the prefix order): it
// returns -1, 0 or +1. Lexicographic order is a linear extension used for
// canonical sorted storage of antichains; a string always sorts immediately
// before all of its proper extensions.
func (b Bits) Compare(c Bits) int {
	return strings.Compare(string(b), string(c))
}

// UpperBoundForPrefix returns the smallest string (in lexicographic order)
// that is greater than every extension of b, and ok=false if no such string
// exists within the binary alphabet (this happens only for b consisting
// entirely of '1' bits, including ε, whose extensions are unbounded above).
//
// The half-open lexicographic interval [b, UpperBoundForPrefix(b)) contains
// exactly the strings that have b as a prefix, which lets sorted containers
// answer domination queries with binary search.
func (b Bits) UpperBoundForPrefix() (Bits, bool) {
	// Increment the last '0' bit to '1' and truncate: e.g. 0110 -> 0111,
	// but 011 -> 1 (drop trailing ones, bump).
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == Zero {
			return b[:i] + Bits([]byte{One}), true
		}
	}
	return Epsilon, false
}

package bitstr

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// randBits produces an arbitrary valid binary string of length <= maxLen.
func randBits(rng *rand.Rand, maxLen int) Bits {
	n := rng.Intn(maxLen + 1)
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			sb.WriteByte(Zero)
		} else {
			sb.WriteByte(One)
		}
	}
	return Bits(sb.String())
}

func TestValid(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"", true},
		{"0", true},
		{"1", true},
		{"0101101", true},
		{"2", false},
		{"01a", false},
		{"ε", false}, // the epsilon glyph itself is not a raw bit string
		{" 01", false},
	}
	for _, tt := range tests {
		if got := Bits(tt.in).Valid(); got != tt.want {
			t.Errorf("Bits(%q).Valid() = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		in      string
		want    Bits
		wantErr bool
	}{
		{"", Epsilon, false},
		{"ε", Epsilon, false},
		{"e", Epsilon, false},
		{"0", Bits("0"), false},
		{"0110", Bits("0110"), false},
		{"01x0", Epsilon, true},
		{"eps", Epsilon, true},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("Parse(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("Parse(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		b := randBits(rng, 12)
		got, err := Parse(b.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", b.String(), err)
		}
		if got != b {
			t.Fatalf("round trip %q -> %q", b, got)
		}
	}
}

func TestPrefixOf(t *testing.T) {
	tests := []struct {
		b, c string
		want bool
	}{
		{"", "", true},
		{"", "0", true},
		{"", "11010", true},
		{"0", "", false},
		{"0", "0", true},
		{"01", "011", true}, // example from the paper: 01 ⊑ 011
		{"01", "00", false}, // example from the paper: 01 ∥ 00
		{"00", "01", false},
		{"011", "01", false},
		{"1", "01", false},
	}
	for _, tt := range tests {
		if got := Bits(tt.b).PrefixOf(Bits(tt.c)); got != tt.want {
			t.Errorf("(%q).PrefixOf(%q) = %v, want %v", tt.b, tt.c, got, tt.want)
		}
	}
}

func TestStrictPrefixOf(t *testing.T) {
	if Bits("01").StrictPrefixOf(Bits("01")) {
		t.Error("a string must not be a strict prefix of itself")
	}
	if !Bits("01").StrictPrefixOf(Bits("010")) {
		t.Error("01 should be a strict prefix of 010")
	}
	if Bits("010").StrictPrefixOf(Bits("01")) {
		t.Error("010 is not a prefix of 01")
	}
}

func TestOrderIsPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b, c := randBits(rng, 8), randBits(rng, 8), randBits(rng, 8)
		// Reflexivity.
		if !a.PrefixOf(a) {
			t.Fatalf("reflexivity violated for %q", a)
		}
		// Antisymmetry.
		if a.PrefixOf(b) && b.PrefixOf(a) && a != b {
			t.Fatalf("antisymmetry violated for %q, %q", a, b)
		}
		// Transitivity.
		if a.PrefixOf(b) && b.PrefixOf(c) && !a.PrefixOf(c) {
			t.Fatalf("transitivity violated for %q ⊑ %q ⊑ %q", a, b, c)
		}
	}
}

func TestEpsilonIsBottom(t *testing.T) {
	err := quick.Check(func(raw []bool) bool {
		b := Epsilon
		for _, bit := range raw {
			if bit {
				b = b.Append1()
			} else {
				b = b.Append0()
			}
		}
		return Epsilon.PrefixOf(b)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestComparableIncomparable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b := randBits(rng, 8), randBits(rng, 8)
		comp := a.PrefixOf(b) || b.PrefixOf(a)
		if got := a.ComparableTo(b); got != comp {
			t.Fatalf("ComparableTo(%q, %q) = %v, want %v", a, b, got, comp)
		}
		if got := a.IncomparableTo(b); got == comp {
			t.Fatalf("IncomparableTo(%q, %q) = %v, want %v", a, b, got, !comp)
		}
	}
}

func TestAppendAndParent(t *testing.T) {
	b := Epsilon
	b = b.Append0() // 0
	b = b.Append1() // 01
	if b != Bits("01") {
		t.Fatalf("appends produced %q, want 01", b)
	}
	parent, last, ok := b.Parent()
	if !ok || parent != Bits("0") || last != One {
		t.Fatalf("Parent(01) = %q,%c,%v", parent, last, ok)
	}
	if _, _, ok := Epsilon.Parent(); ok {
		t.Fatal("ε must not have a parent")
	}
}

func TestAppendBit(t *testing.T) {
	if got, ok := Bits("1").AppendBit(Zero); !ok || got != Bits("10") {
		t.Errorf("AppendBit('0') = %q,%v", got, ok)
	}
	if got, ok := Bits("1").AppendBit(One); !ok || got != Bits("11") {
		t.Errorf("AppendBit('1') = %q,%v", got, ok)
	}
	if _, ok := Bits("1").AppendBit('x'); ok {
		t.Error("AppendBit('x') must fail")
	}
}

func TestSibling(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"0", "1"},
		{"1", "0"},
		{"010", "011"},
		{"011", "010"},
	}
	for _, tt := range tests {
		got, ok := Bits(tt.in).Sibling()
		if !ok || got != Bits(tt.want) {
			t.Errorf("Sibling(%q) = %q,%v want %q", tt.in, got, ok, tt.want)
		}
	}
	if _, ok := Epsilon.Sibling(); ok {
		t.Error("ε must not have a sibling")
	}
}

func TestSiblingInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		b := randBits(rng, 10)
		if b.IsEpsilon() {
			continue
		}
		sib, ok := b.Sibling()
		if !ok {
			t.Fatalf("Sibling(%q) failed", b)
		}
		back, ok := sib.Sibling()
		if !ok || back != b {
			t.Fatalf("Sibling is not an involution on %q: got %q", b, back)
		}
		if !sib.IncomparableTo(b) {
			t.Fatalf("siblings must be incomparable: %q vs %q", b, sib)
		}
	}
}

func TestBit(t *testing.T) {
	b := Bits("010")
	wantBits := []byte{Zero, One, Zero}
	for i, want := range wantBits {
		got, ok := b.Bit(i)
		if !ok || got != want {
			t.Errorf("Bit(%d) = %c,%v want %c", i, got, ok, want)
		}
	}
	if _, ok := b.Bit(3); ok {
		t.Error("Bit(3) out of range must fail")
	}
	if _, ok := b.Bit(-1); ok {
		t.Error("Bit(-1) out of range must fail")
	}
}

func TestCommonPrefix(t *testing.T) {
	tests := []struct {
		a, b, want string
	}{
		{"", "", ""},
		{"0", "1", ""},
		{"01", "00", "0"},
		{"0110", "0111", "011"},
		{"01", "0110", "01"},
	}
	for _, tt := range tests {
		if got := Bits(tt.a).CommonPrefix(Bits(tt.b)); got != Bits(tt.want) {
			t.Errorf("CommonPrefix(%q,%q) = %q, want %q", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCommonPrefixLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a, b := randBits(rng, 10), randBits(rng, 10)
		p := a.CommonPrefix(b)
		if !p.PrefixOf(a) || !p.PrefixOf(b) {
			t.Fatalf("CommonPrefix(%q,%q)=%q is not a common prefix", a, b, p)
		}
		if p != b.CommonPrefix(a) {
			t.Fatalf("CommonPrefix not symmetric on %q,%q", a, b)
		}
		// Maximality: extending p by the next bit of a must not prefix b
		// (unless p equals a or b entirely).
		if len(p) < len(a) && len(p) < len(b) && a[len(p)] == b[len(p)] {
			t.Fatalf("CommonPrefix(%q,%q)=%q is not maximal", a, b, p)
		}
	}
}

func TestUpperBoundForPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 400; i++ {
		b := randBits(rng, 8)
		hi, ok := b.UpperBoundForPrefix()
		ext := randBits(rng, 6)
		full := b.Concat(ext) // an arbitrary extension of b
		if ok {
			if full.Compare(hi) >= 0 {
				t.Fatalf("extension %q of %q not below bound %q", full, b, hi)
			}
			if full.Compare(b) < 0 {
				t.Fatalf("extension %q of %q sorts below it", full, b)
			}
			// hi itself must not be an extension of b.
			if b.PrefixOf(hi) {
				t.Fatalf("bound %q is an extension of %q", hi, b)
			}
		} else {
			// Only all-ones strings (and ε) lack an upper bound.
			for j := 0; j < len(b); j++ {
				if b[j] != One {
					t.Fatalf("UpperBoundForPrefix(%q) = not-ok but string has a 0", b)
				}
			}
		}
	}
}

func TestLexOrderGroupsExtensions(t *testing.T) {
	// Property: in a sorted list, the extensions of any string b form a
	// contiguous run beginning at the first element >= b.
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(30)
		list := make([]Bits, n)
		for i := range list {
			list[i] = randBits(rng, 6)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].Compare(list[j]) < 0 })
		b := randBits(rng, 4)
		lo := sort.Search(len(list), func(i int) bool { return list[i].Compare(b) >= 0 })
		seenNonExt := false
		for i := lo; i < len(list); i++ {
			isExt := b.PrefixOf(list[i])
			if isExt && seenNonExt {
				t.Fatalf("extensions of %q are not contiguous in %v", b, list)
			}
			if !isExt {
				seenNonExt = true
			}
		}
		for i := 0; i < lo; i++ {
			if b.PrefixOf(list[i]) {
				t.Fatalf("extension %q of %q sorts below it", list[i], b)
			}
		}
	}
}

func TestConcatMonotone(t *testing.T) {
	// Iterated concatenation cannot revert ∥ (used in the I2 proof):
	// t ∥ v implies t·x ∥ v for any x.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		a, b := randBits(rng, 8), randBits(rng, 8)
		if !a.IncomparableTo(b) {
			continue
		}
		ext := randBits(rng, 5)
		if !a.Concat(ext).IncomparableTo(b) {
			t.Fatalf("concatenation reverted incomparability: %q∥%q but %q ⋢∥ %q",
				a, b, a.Concat(ext), b)
		}
	}
}

func TestLen(t *testing.T) {
	if Epsilon.Len() != 0 {
		t.Error("len(ε) must be 0")
	}
	if Bits("0101").Len() != 4 {
		t.Error("len(0101) must be 4")
	}
}

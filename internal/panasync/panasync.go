package panasync

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"versionstamp/internal/core"
)

// SidecarSuffix is appended to a tracked file's path to form its metadata
// sidecar path.
const SidecarSuffix = ".vstamp"

// Errors the caller can match.
var (
	// ErrNotTracked is returned for operations on files without a sidecar.
	ErrNotTracked = errors.New("panasync: file is not tracked")
	// ErrAlreadyTracked is returned by Init on already-tracked files.
	ErrAlreadyTracked = errors.New("panasync: file is already tracked")
	// ErrConflict is returned by Sync when copies are mutually inconsistent
	// and no Resolver was supplied.
	ErrConflict = errors.New("panasync: copies conflict")
	// ErrStaleStamp is returned when a file changed since its last recorded
	// update; call Edit to record the change first.
	ErrStaleStamp = errors.New("panasync: file modified since last recorded update")
)

// sidecar is the JSON sidecar contents.
type sidecar struct {
	// Stamp is the version stamp in the paper's text notation.
	Stamp string `json:"stamp"`
	// SHA256 is the hex content hash at the last recorded update.
	SHA256 string `json:"sha256"`
}

// Status describes a tracked file copy.
type Status struct {
	// Path of the file within the workspace FS.
	Path string
	// Stamp is the copy's current version stamp.
	Stamp core.Stamp
	// Dirty reports content changes not yet recorded with Edit.
	Dirty bool
}

// Resolver merges conflicting contents during Sync. It receives both
// contents and returns the merged content.
type Resolver func(pathA, pathB string, contentA, contentB []byte) ([]byte, error)

// Workspace tracks file copies over an FS. It is not safe for concurrent
// use; PANASYNC's tools are single-user commands.
type Workspace struct {
	fs FS
}

// NewWorkspace returns a workspace over the given FS.
func NewWorkspace(fs FS) *Workspace { return &Workspace{fs: fs} }

func hashContent(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func (w *Workspace) readSidecar(path string) (core.Stamp, string, error) {
	data, err := w.fs.ReadFile(path + SidecarSuffix)
	if err != nil {
		return core.Stamp{}, "", fmt.Errorf("%w: %s", ErrNotTracked, path)
	}
	var sc sidecar
	if err := json.Unmarshal(data, &sc); err != nil {
		return core.Stamp{}, "", fmt.Errorf("panasync: corrupt sidecar for %s: %w", path, err)
	}
	st, err := core.Parse(sc.Stamp)
	if err != nil {
		return core.Stamp{}, "", fmt.Errorf("panasync: corrupt stamp for %s: %w", path, err)
	}
	return st, sc.SHA256, nil
}

func (w *Workspace) writeSidecar(path string, st core.Stamp, hash string) error {
	data, err := json.Marshal(sidecar{Stamp: st.String(), SHA256: hash})
	if err != nil {
		return fmt.Errorf("panasync: %w", err)
	}
	return w.fs.WriteFile(path+SidecarSuffix, data)
}

// Init starts tracking an existing file as the seed copy of a new
// replicated document.
func (w *Workspace) Init(path string) error {
	if ok, err := w.fs.Exists(path + SidecarSuffix); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s", ErrAlreadyTracked, path)
	}
	content, err := w.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("panasync: %w", err)
	}
	return w.writeSidecar(path, core.Seed(), hashContent(content))
}

// Copy duplicates a tracked file: contents are copied and the stamp forks,
// giving each copy its own identity with no coordination. This is the
// operation that works under arbitrary partitions.
func (w *Workspace) Copy(src, dst string) error {
	st, hash, err := w.readSidecar(src)
	if err != nil {
		return err
	}
	if ok, err := w.fs.Exists(dst + SidecarSuffix); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s", ErrAlreadyTracked, dst)
	}
	content, err := w.fs.ReadFile(src)
	if err != nil {
		return fmt.Errorf("panasync: %w", err)
	}
	if err := w.fs.WriteFile(dst, content); err != nil {
		return fmt.Errorf("panasync: %w", err)
	}
	left, right := st.Fork()
	if err := w.writeSidecar(src, left, hash); err != nil {
		return err
	}
	return w.writeSidecar(dst, right, hashContent(content))
}

// Edit records an update on the file: call it after changing the content.
// The stamp's update component absorbs the id, and the content hash is
// refreshed.
func (w *Workspace) Edit(path string) error {
	st, _, err := w.readSidecar(path)
	if err != nil {
		return err
	}
	content, err := w.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("panasync: %w", err)
	}
	return w.writeSidecar(path, st.Update(), hashContent(content))
}

// Stat returns the tracking status of a file.
func (w *Workspace) Stat(path string) (Status, error) {
	st, hash, err := w.readSidecar(path)
	if err != nil {
		return Status{}, err
	}
	content, err := w.fs.ReadFile(path)
	if err != nil {
		return Status{}, fmt.Errorf("panasync: %w", err)
	}
	return Status{Path: path, Stamp: st, Dirty: hashContent(content) != hash}, nil
}

// Compare relates two tracked copies by their stamps. Both must have their
// edits recorded (not be Dirty); otherwise the answer would be misleading
// and ErrStaleStamp is returned.
func (w *Workspace) Compare(a, b string) (core.Ordering, error) {
	sa, err := w.Stat(a)
	if err != nil {
		return 0, err
	}
	sb, err := w.Stat(b)
	if err != nil {
		return 0, err
	}
	if sa.Dirty {
		return 0, fmt.Errorf("%w: %s", ErrStaleStamp, a)
	}
	if sb.Dirty {
		return 0, fmt.Errorf("%w: %s", ErrStaleStamp, b)
	}
	return core.Compare(sa.Stamp, sb.Stamp), nil
}

// Sync reconciles two tracked copies:
//
//   - equivalent copies merely refresh their stamps;
//   - if one copy is obsolete it receives the dominant copy's content;
//   - mutually inconsistent copies are merged by the resolver (nil resolver
//     returns ErrConflict), and the merged content counts as a new update.
//
// In every case the two stamps are joined and re-forked, so afterwards both
// copies compare equal and dominate their ancestors.
func (w *Workspace) Sync(a, b string, resolve Resolver) error {
	rel, err := w.Compare(a, b)
	if err != nil {
		return err
	}
	sa, _, err := w.readSidecar(a)
	if err != nil {
		return err
	}
	sb, _, err := w.readSidecar(b)
	if err != nil {
		return err
	}
	contentA, err := w.fs.ReadFile(a)
	if err != nil {
		return fmt.Errorf("panasync: %w", err)
	}
	contentB, err := w.fs.ReadFile(b)
	if err != nil {
		return fmt.Errorf("panasync: %w", err)
	}

	joined, err := core.Join(sa, sb)
	if err != nil {
		return fmt.Errorf("panasync: %w", err)
	}
	var merged []byte
	switch rel {
	case core.Equal:
		merged = contentA
	case core.Before: // a obsolete: b wins
		merged = contentB
	case core.After: // b obsolete: a wins
		merged = contentA
	case core.Concurrent:
		if resolve == nil {
			return fmt.Errorf("%w: %s vs %s", ErrConflict, a, b)
		}
		merged, err = resolve(a, b, contentA, contentB)
		if err != nil {
			return fmt.Errorf("panasync: resolver: %w", err)
		}
		// The merge itself is a new update event.
		joined = joined.Update()
	}

	newA, newB := joined.Fork()
	hash := hashContent(merged)
	if err := w.fs.WriteFile(a, merged); err != nil {
		return fmt.Errorf("panasync: %w", err)
	}
	if err := w.fs.WriteFile(b, merged); err != nil {
		return fmt.Errorf("panasync: %w", err)
	}
	if err := w.writeSidecar(a, newA, hash); err != nil {
		return err
	}
	return w.writeSidecar(b, newB, hash)
}

// Forget stops tracking a file, removing its sidecar and discarding the
// copy's identity and knowledge. To retire a copy while preserving its
// knowledge, Sync it into another copy first.
func (w *Workspace) Forget(path string) error {
	if ok, err := w.fs.Exists(path + SidecarSuffix); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s", ErrNotTracked, path)
	}
	return w.fs.Remove(path + SidecarSuffix)
}

// Tracked lists the statuses of all tracked files in the workspace.
func (w *Workspace) Tracked() ([]Status, error) {
	paths, err := w.fs.List()
	if err != nil {
		return nil, err
	}
	var out []Status
	for _, p := range paths {
		if len(p) <= len(SidecarSuffix) || p[len(p)-len(SidecarSuffix):] != SidecarSuffix {
			continue
		}
		base := p[:len(p)-len(SidecarSuffix)]
		st, err := w.Stat(base)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

package panasync

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"versionstamp/internal/core"
)

func newWS(t *testing.T) (*Workspace, *MemFS) {
	t.Helper()
	fs := NewMemFS()
	return NewWorkspace(fs), fs
}

func mustWrite(t *testing.T, fs FS, path, content string) {
	t.Helper()
	if err := fs.WriteFile(path, []byte(content)); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

func TestInitAndStat(t *testing.T) {
	ws, fs := newWS(t)
	mustWrite(t, fs, "doc.txt", "hello")
	if err := ws.Init("doc.txt"); err != nil {
		t.Fatalf("Init: %v", err)
	}
	st, err := ws.Stat("doc.txt")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if !st.Stamp.Equal(core.Seed()) {
		t.Errorf("initial stamp = %v, want seed", st.Stamp)
	}
	if st.Dirty {
		t.Error("freshly tracked file must not be dirty")
	}
	if err := ws.Init("doc.txt"); !errors.Is(err, ErrAlreadyTracked) {
		t.Errorf("second Init = %v, want ErrAlreadyTracked", err)
	}
	if err := ws.Init("missing.txt"); err == nil {
		t.Error("Init of a missing file must fail")
	}
}

func TestUntrackedOperationsFail(t *testing.T) {
	ws, fs := newWS(t)
	mustWrite(t, fs, "a.txt", "x")
	if _, err := ws.Stat("a.txt"); !errors.Is(err, ErrNotTracked) {
		t.Errorf("Stat untracked = %v", err)
	}
	if err := ws.Edit("a.txt"); !errors.Is(err, ErrNotTracked) {
		t.Errorf("Edit untracked = %v", err)
	}
	if err := ws.Copy("a.txt", "b.txt"); !errors.Is(err, ErrNotTracked) {
		t.Errorf("Copy untracked = %v", err)
	}
	if err := ws.Forget("a.txt"); !errors.Is(err, ErrNotTracked) {
		t.Errorf("Forget untracked = %v", err)
	}
}

func TestCopyForksIdentity(t *testing.T) {
	ws, fs := newWS(t)
	mustWrite(t, fs, "a.txt", "v1")
	if err := ws.Init("a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := ws.Copy("a.txt", "b.txt"); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	data, err := fs.ReadFile("b.txt")
	if err != nil || string(data) != "v1" {
		t.Fatalf("copied content = %q, %v", data, err)
	}
	sa, _ := ws.Stat("a.txt")
	sb, _ := ws.Stat("b.txt")
	if sa.Stamp.String() != "[ε|0]" || sb.Stamp.String() != "[ε|1]" {
		t.Errorf("fork stamps = %v, %v", sa.Stamp, sb.Stamp)
	}
	rel, err := ws.Compare("a.txt", "b.txt")
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if rel != core.Equal {
		t.Errorf("fresh copies = %v, want equal", rel)
	}
	// Copying onto a tracked destination fails.
	if err := ws.Copy("a.txt", "b.txt"); !errors.Is(err, ErrAlreadyTracked) {
		t.Errorf("Copy onto tracked = %v", err)
	}
}

func TestEditAndDirtyDetection(t *testing.T) {
	ws, fs := newWS(t)
	mustWrite(t, fs, "a.txt", "v1")
	if err := ws.Init("a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := ws.Copy("a.txt", "b.txt"); err != nil {
		t.Fatal(err)
	}
	// Modify a without recording: Stat reports dirty, Compare refuses.
	mustWrite(t, fs, "a.txt", "v2")
	st, _ := ws.Stat("a.txt")
	if !st.Dirty {
		t.Error("modified file must be dirty")
	}
	if _, err := ws.Compare("a.txt", "b.txt"); !errors.Is(err, ErrStaleStamp) {
		t.Errorf("Compare with dirty file = %v, want ErrStaleStamp", err)
	}
	// Record the edit: now a dominates b.
	if err := ws.Edit("a.txt"); err != nil {
		t.Fatalf("Edit: %v", err)
	}
	rel, err := ws.Compare("a.txt", "b.txt")
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if rel != core.After {
		t.Errorf("edited vs stale = %v, want after", rel)
	}
	if rel, _ := ws.Compare("b.txt", "a.txt"); rel != core.Before {
		t.Errorf("stale vs edited = %v, want before", rel)
	}
}

func TestSyncDominance(t *testing.T) {
	ws, fs := newWS(t)
	mustWrite(t, fs, "a.txt", "v1")
	if err := ws.Init("a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := ws.Copy("a.txt", "b.txt"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, fs, "a.txt", "v2")
	if err := ws.Edit("a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := ws.Sync("a.txt", "b.txt", nil); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// b received a's content.
	data, _ := fs.ReadFile("b.txt")
	if string(data) != "v2" {
		t.Errorf("b content = %q, want v2", data)
	}
	rel, err := ws.Compare("a.txt", "b.txt")
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if rel != core.Equal {
		t.Errorf("after sync = %v, want equal", rel)
	}
}

func TestSyncConflict(t *testing.T) {
	ws, fs := newWS(t)
	mustWrite(t, fs, "a.txt", "base")
	if err := ws.Init("a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := ws.Copy("a.txt", "b.txt"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, fs, "a.txt", "edit-a")
	mustWrite(t, fs, "b.txt", "edit-b")
	if err := ws.Edit("a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := ws.Edit("b.txt"); err != nil {
		t.Fatal(err)
	}
	if rel, _ := ws.Compare("a.txt", "b.txt"); rel != core.Concurrent {
		t.Fatalf("setup: want concurrent, got %v", rel)
	}
	// Without a resolver the conflict is surfaced.
	if err := ws.Sync("a.txt", "b.txt", nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("Sync without resolver = %v, want ErrConflict", err)
	}
	// With a resolver the merge becomes a new dominating update.
	merge := func(pa, pb string, ca, cb []byte) ([]byte, error) {
		return []byte(fmt.Sprintf("merged(%s,%s)", ca, cb)), nil
	}
	if err := ws.Sync("a.txt", "b.txt", merge); err != nil {
		t.Fatalf("Sync with resolver: %v", err)
	}
	da, _ := fs.ReadFile("a.txt")
	db, _ := fs.ReadFile("b.txt")
	if !bytes.Equal(da, db) || string(da) != "merged(edit-a,edit-b)" {
		t.Errorf("merged contents = %q, %q", da, db)
	}
	if rel, _ := ws.Compare("a.txt", "b.txt"); rel != core.Equal {
		t.Errorf("after merge = %v, want equal", rel)
	}
}

func TestSyncResolverError(t *testing.T) {
	ws, fs := newWS(t)
	mustWrite(t, fs, "a.txt", "base")
	_ = ws.Init("a.txt")
	_ = ws.Copy("a.txt", "b.txt")
	mustWrite(t, fs, "a.txt", "x")
	mustWrite(t, fs, "b.txt", "y")
	_ = ws.Edit("a.txt")
	_ = ws.Edit("b.txt")
	boom := errors.New("boom")
	err := ws.Sync("a.txt", "b.txt", func(_, _ string, _, _ []byte) ([]byte, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("Sync = %v, want resolver error", err)
	}
}

// TestThreeWayScenario walks the paper's mobile scenario: a document copied
// across three disconnected machines, edited independently, then reconciled
// pairwise — all without any central coordination.
func TestThreeWayScenario(t *testing.T) {
	ws, fs := newWS(t)
	mustWrite(t, fs, "doc", "base")
	if err := ws.Init("doc"); err != nil {
		t.Fatal(err)
	}
	// Laptop and phone take copies (e.g. before a flight).
	if err := ws.Copy("doc", "laptop/doc"); err != nil {
		t.Fatal(err)
	}
	if err := ws.Copy("doc", "phone/doc"); err != nil {
		t.Fatal(err)
	}
	// While partitioned, the phone copies again (replica creation under
	// partition — impossible with id-server version vectors).
	if err := ws.Copy("phone/doc", "tablet/doc"); err != nil {
		t.Fatal(err)
	}
	// Independent edits on laptop and tablet.
	mustWrite(t, fs, "laptop/doc", "laptop edit")
	_ = ws.Edit("laptop/doc")
	mustWrite(t, fs, "tablet/doc", "tablet edit")
	_ = ws.Edit("tablet/doc")

	// Phone vs tablet: phone is obsolete (tablet forked from it and edited).
	rel, err := ws.Compare("phone/doc", "tablet/doc")
	if err != nil {
		t.Fatal(err)
	}
	if rel != core.Before {
		t.Errorf("phone vs tablet = %v, want before", rel)
	}
	// Laptop vs tablet: conflict.
	rel, _ = ws.Compare("laptop/doc", "tablet/doc")
	if rel != core.Concurrent {
		t.Errorf("laptop vs tablet = %v, want concurrent", rel)
	}
	// Reconcile: tablet syncs into phone (dominance), then laptop and phone
	// merge the conflict.
	if err := ws.Sync("phone/doc", "tablet/doc", nil); err != nil {
		t.Fatal(err)
	}
	merge := func(_, _ string, ca, cb []byte) ([]byte, error) {
		return append(append([]byte{}, ca...), cb...), nil
	}
	if err := ws.Sync("laptop/doc", "phone/doc", merge); err != nil {
		t.Fatal(err)
	}
	// Now laptop and phone are equal and dominate the original doc.
	if rel, _ := ws.Compare("laptop/doc", "phone/doc"); rel != core.Equal {
		t.Errorf("laptop vs phone after merge = %v", rel)
	}
	if rel, _ := ws.Compare("doc", "laptop/doc"); rel != core.Before {
		t.Errorf("original vs merged = %v, want before", rel)
	}
}

func TestTrackedAndForget(t *testing.T) {
	ws, fs := newWS(t)
	mustWrite(t, fs, "a", "1")
	mustWrite(t, fs, "b", "2")
	mustWrite(t, fs, "untracked", "3")
	_ = ws.Init("a")
	_ = ws.Init("b")
	list, err := ws.Tracked()
	if err != nil {
		t.Fatalf("Tracked: %v", err)
	}
	if len(list) != 2 || list[0].Path != "a" || list[1].Path != "b" {
		t.Fatalf("Tracked = %+v", list)
	}
	if err := ws.Forget("a"); err != nil {
		t.Fatalf("Forget: %v", err)
	}
	list, _ = ws.Tracked()
	if len(list) != 1 || list[0].Path != "b" {
		t.Fatalf("Tracked after Forget = %+v", list)
	}
}

func TestCorruptSidecar(t *testing.T) {
	ws, fs := newWS(t)
	mustWrite(t, fs, "a", "1")
	mustWrite(t, fs, "a"+SidecarSuffix, "not json")
	if _, err := ws.Stat("a"); err == nil {
		t.Error("corrupt sidecar must fail")
	}
	mustWrite(t, fs, "a"+SidecarSuffix, `{"stamp":"[1|0]","sha256":""}`)
	if _, err := ws.Stat("a"); err == nil {
		t.Error("I1-violating sidecar stamp must fail")
	}
}

func TestDirFS(t *testing.T) {
	root := t.TempDir()
	dfs, err := NewDirFS(root)
	if err != nil {
		t.Fatalf("NewDirFS: %v", err)
	}
	if err := dfs.WriteFile("sub/dir/file.txt", []byte("x")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := dfs.ReadFile("sub/dir/file.txt")
	if err != nil || string(data) != "x" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	ok, err := dfs.Exists("sub/dir/file.txt")
	if err != nil || !ok {
		t.Fatalf("Exists = %v, %v", ok, err)
	}
	list, err := dfs.List()
	if err != nil || len(list) != 1 || list[0] != "sub/dir/file.txt" {
		t.Fatalf("List = %v, %v", list, err)
	}
	if _, err := dfs.ReadFile("../escape"); err == nil {
		// Clean("/../escape") = "/escape" stays inside the root, so this
		// reads a missing file rather than escaping; both are acceptable as
		// long as nothing outside the root is touched.
		t.Log("read of ../escape resolved inside root (ok)")
	}
	if err := dfs.Remove("sub/dir/file.txt"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if ok, _ := dfs.Exists("sub/dir/file.txt"); ok {
		t.Error("file still exists after Remove")
	}
	// Full workspace over the real filesystem.
	ws := NewWorkspace(dfs)
	if err := dfs.WriteFile("doc", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := ws.Init("doc"); err != nil {
		t.Fatalf("Init over DirFS: %v", err)
	}
	if err := ws.Copy("doc", "doc2"); err != nil {
		t.Fatalf("Copy over DirFS: %v", err)
	}
	rel, err := ws.Compare("doc", "doc2")
	if err != nil || rel != core.Equal {
		t.Fatalf("Compare over DirFS = %v, %v", rel, err)
	}
	if _, err := NewDirFS(root + "/definitely-missing"); err == nil {
		t.Error("NewDirFS of missing dir must fail")
	}
}

func TestMemFSErrors(t *testing.T) {
	fs := NewMemFS()
	if _, err := fs.ReadFile("nope"); err == nil {
		t.Error("ReadFile of missing file must fail")
	}
	if err := fs.Remove("nope"); err == nil {
		t.Error("Remove of missing file must fail")
	}
}

// Package panasync re-implements the functionality of PANASYNC, the file
// replication toolset in which the paper's version stamps were first
// deployed (paper Section 7, reference [1]): dependency tracking among
// copies of single files.
//
// Each tracked file carries a sidecar (<name>.vstamp) holding its version
// stamp and a content hash. Copying a file forks its stamp; editing updates
// it; comparing two copies answers, with no global coordination, whether
// they are equivalent, one is obsolete, or they conflict; synchronizing two
// copies joins knowledge and reconciles contents. Copies can be made on
// disconnected machines indefinitely — exactly the partitioned mode of
// operation the paper targets — and dependency tracking keeps working.
package panasync

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS abstracts the file storage so the library runs identically over the
// real filesystem (DirFS) and in memory (MemFS, used by tests and the
// simulated examples).
type FS interface {
	// ReadFile returns the content of the named file.
	ReadFile(path string) ([]byte, error)
	// WriteFile creates or replaces the named file.
	WriteFile(path string, data []byte) error
	// Remove deletes the named file.
	Remove(path string) error
	// Exists reports whether the named file exists.
	Exists(path string) (bool, error)
	// List returns all file paths in lexical order.
	List() ([]string, error)
}

// MemFS is an in-memory FS implementation, safe for concurrent use.
type MemFS struct {
	mu    sync.RWMutex
	files map[string][]byte
}

var _ FS = (*MemFS)(nil)

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[path]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: path, Err: os.ErrNotExist}
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// WriteFile implements FS.
func (m *MemFS) WriteFile(path string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	m.files[path] = cp
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return &os.PathError{Op: "remove", Path: path, Err: os.ErrNotExist}
	}
	delete(m.files, path)
	return nil
}

// Exists implements FS.
func (m *MemFS) Exists(path string) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.files[path]
	return ok, nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.files))
	for p := range m.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// DirFS is an FS rooted at a directory of the real filesystem.
type DirFS struct {
	root string
}

var _ FS = (*DirFS)(nil)

// NewDirFS returns an FS rooted at root, which must exist.
func NewDirFS(root string) (*DirFS, error) {
	info, err := os.Stat(root)
	if err != nil {
		return nil, fmt.Errorf("panasync: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("panasync: %s is not a directory", root)
	}
	return &DirFS{root: root}, nil
}

// resolve maps a slash path inside the root, rejecting escapes.
func (d *DirFS) resolve(path string) (string, error) {
	clean := filepath.Clean("/" + filepath.FromSlash(path))
	full := filepath.Join(d.root, clean)
	if !strings.HasPrefix(full, filepath.Clean(d.root)+string(os.PathSeparator)) &&
		full != filepath.Clean(d.root) {
		return "", fmt.Errorf("panasync: path %q escapes the root", path)
	}
	return full, nil
}

// ReadFile implements FS.
func (d *DirFS) ReadFile(path string) ([]byte, error) {
	full, err := d.resolve(path)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(full)
}

// WriteFile implements FS.
func (d *DirFS) WriteFile(path string, data []byte) error {
	full, err := d.resolve(path)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	return os.WriteFile(full, data, 0o644)
}

// Remove implements FS.
func (d *DirFS) Remove(path string) error {
	full, err := d.resolve(path)
	if err != nil {
		return err
	}
	return os.Remove(full)
}

// Exists implements FS.
func (d *DirFS) Exists(path string) (bool, error) {
	full, err := d.resolve(path)
	if err != nil {
		return false, err
	}
	if _, err := os.Stat(full); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// List implements FS.
func (d *DirFS) List() ([]string, error) {
	var out []string
	err := filepath.Walk(d.root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return err
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

package panasync

import (
	"errors"
	"testing"

	"versionstamp/internal/kvstore"
)

func initFile(t *testing.T, ws *Workspace, fs FS, path, content string) {
	t.Helper()
	if err := fs.WriteFile(path, []byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Init(path); err != nil {
		t.Fatal(err)
	}
}

func TestToReplicaRoundTrip(t *testing.T) {
	fs := NewMemFS()
	ws := NewWorkspace(fs)
	initFile(t, ws, fs, "a.txt", "alpha")
	initFile(t, ws, fs, "b.txt", "beta")

	r, _, err := ToReplica(ws, "ws")
	if err != nil {
		t.Fatalf("ToReplica: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	got, ok := r.Get("a.txt")
	if !ok || string(got) != "alpha" {
		t.Fatalf("a.txt = %q, %v", got, ok)
	}
	// Stamps come from the sidecars, not fresh updates.
	st, _, err := ws.readSidecar("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := r.Version("a.txt")
	if !v.Stamp.Equal(st) {
		t.Error("replica stamp differs from sidecar stamp")
	}

	// Apply back into a fresh workspace: contents and stamps survive.
	fs2 := NewMemFS()
	ws2 := NewWorkspace(fs2)
	if _, err := ApplyReplica(ws2, r, nil); err != nil {
		t.Fatalf("ApplyReplica: %v", err)
	}
	stat, err := ws2.Stat("b.txt")
	if err != nil {
		t.Fatalf("Stat after apply: %v", err)
	}
	if stat.Dirty {
		t.Error("applied file reported dirty")
	}
	content, err := fs2.ReadFile("b.txt")
	if err != nil || string(content) != "beta" {
		t.Fatalf("b.txt = %q, %v", content, err)
	}
}

func TestToReplicaRejectsDirty(t *testing.T) {
	fs := NewMemFS()
	ws := NewWorkspace(fs)
	initFile(t, ws, fs, "a.txt", "v1")
	if err := fs.WriteFile("a.txt", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ToReplica(ws, "ws"); !errors.Is(err, ErrStaleStamp) {
		t.Fatalf("ToReplica on dirty workspace = %v, want ErrStaleStamp", err)
	}
}

func TestApplyReplicaTombstoneRemoves(t *testing.T) {
	fs := NewMemFS()
	ws := NewWorkspace(fs)
	initFile(t, ws, fs, "a.txt", "alpha")
	r, base, err := ToReplica(ws, "ws")
	if err != nil {
		t.Fatal(err)
	}
	r.Delete("a.txt")
	if _, err := ApplyReplica(ws, r, base); err != nil {
		t.Fatalf("ApplyReplica: %v", err)
	}
	if ok, _ := fs.Exists("a.txt"); ok {
		t.Error("tombstoned file not removed")
	}
	if ok, _ := fs.Exists("a.txt" + SidecarSuffix); ok {
		t.Error("tombstoned sidecar not removed")
	}
}

// TestWorkspaceNetworkSync runs the full loop the CLI uses: two
// workspaces, one served, one syncing per shard; both end up identical.
func TestWorkspaceNetworkSync(t *testing.T) {
	fsA, fsB := NewMemFS(), NewMemFS()
	wsA, wsB := NewWorkspace(fsA), NewWorkspace(fsB)
	initFile(t, wsA, fsA, "shared.txt", "from-a")
	initFile(t, wsB, fsB, "other.txt", "from-b")

	ra, baseA, err := ToReplica(wsA, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Imported via the antientropy server in the real CLI; here we use the
	// in-process engine to keep the test hermetic.
	rb, baseB, err := ToReplica(wsB, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kvstore.Sync(ra, rb, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyReplica(wsA, ra, baseA); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyReplica(wsB, rb, baseB); err != nil {
		t.Fatal(err)
	}
	for _, ws := range []*Workspace{wsA, wsB} {
		statuses, err := ws.Tracked()
		if err != nil {
			t.Fatal(err)
		}
		if len(statuses) != 2 {
			t.Fatalf("tracked = %v", statuses)
		}
	}
	// The two copies of each file are on one frontier: compare works.
	stA, err := wsA.Stat("shared.txt")
	if err != nil {
		t.Fatal(err)
	}
	stB, err := wsB.Stat("shared.txt")
	if err != nil {
		t.Fatal(err)
	}
	if stA.Dirty || stB.Dirty {
		t.Error("synced files reported dirty")
	}
}

// TestApplyReplicaPreservesConcurrentEdit: a file edited in the workspace
// while a sync was in flight is never overwritten by the write-back; the
// local edit wins and the path is reported.
func TestApplyReplicaPreservesConcurrentEdit(t *testing.T) {
	fs := NewMemFS()
	ws := NewWorkspace(fs)
	initFile(t, ws, fs, "a.txt", "v1")
	r, base, err := ToReplica(ws, "ws")
	if err != nil {
		t.Fatal(err)
	}
	// The peer pushes a newer copy into the replica...
	r.Put("a.txt", []byte("from-peer"))
	// ...while the local user edits the file without recording it.
	if err := fs.WriteFile("a.txt", []byte("local unrecorded edit")); err != nil {
		t.Fatal(err)
	}
	skipped, err := ApplyReplica(ws, r, base)
	if err != nil {
		t.Fatalf("ApplyReplica: %v", err)
	}
	if len(skipped) != 1 || skipped[0] != "a.txt" {
		t.Fatalf("skipped = %v", skipped)
	}
	content, err := fs.ReadFile("a.txt")
	if err != nil || string(content) != "local unrecorded edit" {
		t.Fatalf("local edit destroyed: %q, %v", content, err)
	}
}

// TestApplyReplicaSkipsUnchanged: keys whose stamp did not move are not
// rewritten.
func TestApplyReplicaSkipsUnchanged(t *testing.T) {
	fs := NewMemFS()
	ws := NewWorkspace(fs)
	initFile(t, ws, fs, "a.txt", "v1")
	r, base, err := ToReplica(ws, "ws")
	if err != nil {
		t.Fatal(err)
	}
	before, err := fs.ReadFile("a.txt" + SidecarSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyReplica(ws, r, base); err != nil {
		t.Fatal(err)
	}
	after, err := fs.ReadFile("a.txt" + SidecarSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("unchanged key was rewritten")
	}
}

// TestApplyReplicaPreservesRecordedEdit: an edit recorded (via Edit) while
// the replica was live is also preserved — the sidecar moved relative to
// the export baseline, so the stale replica copy must not win.
func TestApplyReplicaPreservesRecordedEdit(t *testing.T) {
	fs := NewMemFS()
	ws := NewWorkspace(fs)
	initFile(t, ws, fs, "a.txt", "v1")
	r, base, err := ToReplica(ws, "ws")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("a.txt", []byte("v2 recorded locally")); err != nil {
		t.Fatal(err)
	}
	if err := ws.Edit("a.txt"); err != nil {
		t.Fatal(err)
	}
	skipped, err := ApplyReplica(ws, r, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "a.txt" {
		t.Fatalf("skipped = %v", skipped)
	}
	content, err := fs.ReadFile("a.txt")
	if err != nil || string(content) != "v2 recorded locally" {
		t.Fatalf("recorded edit destroyed: %q, %v", content, err)
	}
}

// TestApplyReplicaPreservesForgottenFile: a file forgotten (untracked)
// during the sync window is not removed by a peer's tombstone.
func TestApplyReplicaPreservesForgottenFile(t *testing.T) {
	fs := NewMemFS()
	ws := NewWorkspace(fs)
	initFile(t, ws, fs, "a.txt", "v1")
	r, base, err := ToReplica(ws, "ws")
	if err != nil {
		t.Fatal(err)
	}
	r.Delete("a.txt") // peer-side deletion arrives in the replica
	if err := ws.Forget("a.txt"); err != nil {
		t.Fatal(err)
	}
	skipped, err := ApplyReplica(ws, r, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "a.txt" {
		t.Fatalf("skipped = %v", skipped)
	}
	if ok, _ := fs.Exists("a.txt"); !ok {
		t.Error("forgotten file removed by peer tombstone")
	}
}

// TestApplyReplicaDoesNotClobberUntracked: a peer-served file whose path is
// occupied by an untracked local file is skipped, not overwritten.
func TestApplyReplicaDoesNotClobberUntracked(t *testing.T) {
	fs := NewMemFS()
	ws := NewWorkspace(fs)
	if err := fs.WriteFile("x.txt", []byte("precious untracked data")); err != nil {
		t.Fatal(err)
	}
	r := kvstore.NewReplica("peer")
	r.Put("x.txt", []byte("from-peer"))
	skipped, err := ApplyReplica(ws, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "x.txt" {
		t.Fatalf("skipped = %v", skipped)
	}
	content, err := fs.ReadFile("x.txt")
	if err != nil || string(content) != "precious untracked data" {
		t.Fatalf("untracked file clobbered: %q, %v", content, err)
	}
}

package panasync

import (
	"fmt"

	"versionstamp/internal/core"
	"versionstamp/internal/kvstore"
)

// Baseline records the sidecar state a ToReplica export saw, so that
// ApplyReplica can tell replica-side progress (applied) apart from local
// progress made while the replica was live (preserved). A nil Baseline
// means "nothing was exported from this workspace": every already-tracked
// or existing file counts as local state and is preserved.
type Baseline struct {
	entries map[string]baselineEntry
}

type baselineEntry struct {
	stamp core.Stamp
	hash  string
}

// ToReplica exports every tracked file of the workspace as one key of a
// sharded kvstore replica: the key is the file path, the value its content,
// the stamp the sidecar's. This bridges PANASYNC's per-file sidecars onto
// the store engine so a whole workspace can synchronize over the
// antientropy network protocol in one round. The returned Baseline is
// handed back to ApplyReplica after the sync.
//
// Every tracked file must have its edits recorded (not be Dirty) —
// otherwise the exported stamp would misrepresent the content and
// ErrStaleStamp is returned.
func ToReplica(w *Workspace, label string) (*kvstore.Replica, *Baseline, error) {
	statuses, err := w.Tracked()
	if err != nil {
		return nil, nil, err
	}
	r := kvstore.NewReplica(label)
	base := &Baseline{entries: make(map[string]baselineEntry, len(statuses))}
	for _, st := range statuses {
		if st.Dirty {
			return nil, nil, fmt.Errorf("%w: %s", ErrStaleStamp, st.Path)
		}
		content, err := w.fs.ReadFile(st.Path)
		if err != nil {
			return nil, nil, fmt.Errorf("panasync: %w", err)
		}
		r.PutVersion(st.Path, kvstore.Versioned{Value: content, Stamp: st.Stamp})
		base.entries[st.Path] = baselineEntry{stamp: st.Stamp, hash: hashContent(content)}
	}
	return r, base, nil
}

// MergeIntoReplica imports the workspace's tracked files into an existing
// replica — typically a durable (WAL-backed) one reopened across serve
// sessions — and returns the Baseline for the eventual ApplyReplica. Unlike
// ToReplica it does not build a fresh replica: keys the replica already
// holds are updated only when the workspace copy causally dominates, so a
// restart with an untouched workspace changes nothing and replays nothing.
//
// The workspace copy and the replica copy are the same logical copy
// persisted two ways (the write-back keeps the sidecars in step with the
// replica), so stamps are installed verbatim, never forked: the workspace
// is not a second replica. Compare is only trusted where a causal order can
// exist — identical ids (the same copy, possibly edited) or disjoint ids
// (two copies of one fork-join system). A workspace copy whose id overlaps
// the replica's without matching it (a mixed or stale data directory), or
// one Compare calls concurrent, is left out of the Baseline: ApplyReplica
// then skips and reports the path instead of overwriting either side.
func MergeIntoReplica(w *Workspace, r *kvstore.Replica) (*Baseline, error) {
	statuses, err := w.Tracked()
	if err != nil {
		return nil, err
	}
	base := &Baseline{entries: make(map[string]baselineEntry, len(statuses))}
	for _, st := range statuses {
		if st.Dirty {
			return nil, fmt.Errorf("%w: %s", ErrStaleStamp, st.Path)
		}
		content, err := w.fs.ReadFile(st.Path)
		if err != nil {
			return nil, fmt.Errorf("panasync: %w", err)
		}
		cur, ok := r.Version(st.Path)
		switch {
		case !ok:
			r.PutVersion(st.Path, kvstore.Versioned{Value: content, Stamp: st.Stamp})
		case cur.Stamp.Equal(st.Stamp):
			// The replica already holds exactly this copy.
		case !st.Stamp.IDHandle().Equal(cur.Stamp.IDHandle()) &&
			!st.Stamp.IDHandle().IncomparableTo(cur.Stamp.IDHandle()):
			// Partially overlapping ids: no causal order exists between these
			// copies (cf. kvstore's reconcileIndependent), so Compare's answer
			// would be meaningless. Leave both sides; report via write-back.
			continue
		default:
			switch core.Compare(st.Stamp, cur.Stamp) {
			case core.After:
				r.PutVersion(st.Path, kvstore.Versioned{Value: content, Stamp: st.Stamp})
			case core.Equal, core.Before:
				// Keep the replica's copy; write-back refreshes the sidecar.
			case core.Concurrent:
				continue // genuine conflict: keep both, report via write-back
			}
		}
		base.entries[st.Path] = baselineEntry{stamp: st.Stamp, hash: hashContent(content)}
	}
	return base, nil
}

// ApplyReplica writes the replica's state back into the workspace: live
// keys become tracked files (content plus sidecar stamp), tombstones remove
// the file and its sidecar. It is the inverse of ToReplica, called after a
// network sync mutated the replica.
//
// Local state always wins over replica state when both moved since the
// export: files edited (recorded or not), re-inited, forgotten, or created
// untracked while the replica was live are never overwritten or removed —
// the path is returned in skipped, and the caller should sync again after
// reconciling. Keys unchanged on both sides are left untouched.
func ApplyReplica(w *Workspace, r *kvstore.Replica, base *Baseline) (skipped []string, err error) {
	for _, key := range r.Keys() {
		v, ok := r.Version(key)
		if !ok {
			continue
		}
		var be baselineEntry
		exported := false
		if base != nil {
			be, exported = base.entries[key]
		}
		tracked, err := w.fs.Exists(key + SidecarSuffix)
		if err != nil {
			return skipped, err
		}
		if !tracked {
			if exported {
				// Tracked at export time, forgotten since: a local
				// decision this sync must not override.
				skipped = append(skipped, key)
				continue
			}
			if v.Deleted {
				continue // tombstone for a key this workspace never had
			}
			if exists, err := w.fs.Exists(key); err != nil {
				return skipped, err
			} else if exists {
				// An untracked local file occupies the path: never
				// clobber data the workspace does not manage.
				skipped = append(skipped, key)
				continue
			}
			if err := writeEntry(w, key, v); err != nil {
				return skipped, err
			}
			continue
		}

		st, hash, err := w.readSidecar(key)
		if err != nil {
			return skipped, err
		}
		localMoved := !exported || !st.Equal(be.stamp) || hash != be.hash
		if !localMoved {
			if content, err := w.fs.ReadFile(key); err == nil && hashContent(content) != hash {
				localMoved = true // unrecorded edit on disk
			}
		}
		if localMoved {
			skipped = append(skipped, key)
			continue
		}
		// Local state is exactly what we exported; replica-side changes
		// (if any) are safe to apply.
		if !v.Deleted && v.Stamp.Equal(be.stamp) && hashContent(v.Value) == be.hash {
			continue // unchanged on both sides
		}
		if v.Deleted {
			if err := w.fs.Remove(key + SidecarSuffix); err != nil {
				return skipped, err
			}
			if exists, err := w.fs.Exists(key); err != nil {
				return skipped, err
			} else if exists {
				if err := w.fs.Remove(key); err != nil {
					return skipped, err
				}
			}
			continue
		}
		if err := writeEntry(w, key, v); err != nil {
			return skipped, err
		}
	}
	return skipped, nil
}

// writeEntry materializes one live replica copy as a tracked file.
func writeEntry(w *Workspace, key string, v kvstore.Versioned) error {
	if err := w.fs.WriteFile(key, v.Value); err != nil {
		return fmt.Errorf("panasync: %w", err)
	}
	return w.writeSidecar(key, v.Stamp, hashContent(v.Value))
}

package storage

import (
	"testing"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
)

func rec(key, value string) Record {
	return Record{Entry: encoding.Entry{Key: key, Value: []byte(value), Stamp: core.Seed().Update()}}
}

func replayAll(t *testing.T, be Backend, shard int) (ckpt []byte, recs []Record) {
	t.Helper()
	err := be.ReplayShard(shard,
		func(snap []byte) error { ckpt = append([]byte(nil), snap...); return nil },
		func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatalf("ReplayShard(%d): %v", shard, err)
	}
	return ckpt, recs
}

func TestMemoryAppendReplay(t *testing.T) {
	m := NewMemory()
	if err := m.Append(0, rec("a", "1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(0, rec("b", "2")); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(3, rec("c", "3")); err != nil {
		t.Fatal(err)
	}
	ckpt, recs := replayAll(t, m, 0)
	if ckpt != nil {
		t.Errorf("unexpected checkpoint %q", ckpt)
	}
	if len(recs) != 2 || recs[0].Entry.Key != "a" || recs[1].Entry.Key != "b" {
		t.Errorf("shard 0 records = %+v", recs)
	}
	if _, recs := replayAll(t, m, 3); len(recs) != 1 || recs[0].Entry.Key != "c" {
		t.Errorf("shard 3 records = %+v", recs)
	}
	if _, recs := replayAll(t, m, 7); len(recs) != 0 {
		t.Errorf("untouched shard has records: %+v", recs)
	}
}

func TestMemoryCheckpointTruncatesLog(t *testing.T) {
	m := NewMemory()
	_ = m.Append(1, rec("a", "1"))
	if err := m.Checkpoint(1, []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	_ = m.Append(1, rec("b", "2"))
	ckpt, recs := replayAll(t, m, 1)
	if string(ckpt) != "snapshot" {
		t.Errorf("checkpoint = %q", ckpt)
	}
	if len(recs) != 1 || recs[0].Entry.Key != "b" {
		t.Errorf("post-checkpoint records = %+v", recs)
	}
}

func TestCompactRecords(t *testing.T) {
	log := []Record{
		rec("a", "1"),
		rec("b", "1"),
		{Reset: true},
		rec("a", "2"),
		rec("c", "1"),
		rec("a", "3"),
	}
	got := CompactRecords(log)
	if len(got) != 3 || !got[0].Reset {
		t.Fatalf("compacted = %+v", got)
	}
	// The reset survives, then each key's last record in original order.
	if got[1].Entry.Key != "c" || got[2].Entry.Key != "a" || string(got[2].Entry.Value) != "3" {
		t.Errorf("compacted tail = %+v", got[1:])
	}

	if got := CompactRecords(nil); len(got) != 0 {
		t.Errorf("compacting empty log = %+v", got)
	}
}

func TestMemoryCompact(t *testing.T) {
	m := NewMemory()
	for i := 0; i < 5; i++ {
		_ = m.Append(0, rec("hot", string(rune('0'+i))))
	}
	_ = m.Append(0, rec("cold", "x"))
	if err := m.Compact(0); err != nil {
		t.Fatal(err)
	}
	_, recs := replayAll(t, m, 0)
	if len(recs) != 2 {
		t.Fatalf("compacted to %d records, want 2: %+v", len(recs), recs)
	}
}

// Package storage defines the pluggable durability layer under the sharded
// kvstore. A Backend persists one replica's mutations as a per-stripe
// record log plus an occasional per-stripe checkpoint, so a replica can
// restart from local state instead of a whole-replica snapshot: restart =
// load the latest checkpoint of each stripe, then replay the stripe's log
// tail. Because records carry full version stamps (encoding.Entry), a
// restarted replica resumes anti-entropy exactly where it left off — the
// stamps, not the storage layer, decide what still needs to move.
//
// Two implementations exist: Memory, an in-process log that preserves the
// engine's historical all-in-memory behaviour (nothing survives the
// process), and the log-structured file-per-stripe WAL in the wal
// subpackage, which survives crashes and detects torn tail writes.
package storage

import (
	"errors"
	"fmt"
	"sync"

	"versionstamp/internal/encoding"
)

// ErrStaleLoc reports a ValueLoc whose generation no longer matches the
// shard's durable layout: the log was truncated or rewritten (checkpoint,
// compact) since the location was handed out. Callers holding stale
// locations re-derive them — the value itself is never lost, only its
// address.
var ErrStaleLoc = errors.New("storage: stale value location")

// CorruptError reports durable damage scoped to one shard: the backend found
// bytes that are provably not a torn tail write (a flipped bit mid-log, a
// checkpoint that fails its checksum). It names the damaged file and the
// offset where the damage starts, so operators and tests can point at the
// exact bytes. Backends return it from ReplayShard *after* streaming the
// intact prefix, so a caller can keep what is readable, quarantine the shard
// and repair it from peers — whole-replica death is never the right scope
// for one bad sector.
type CorruptError struct {
	// Shard is the damaged stripe.
	Shard int
	// Path is the damaged file (empty when the backend has no files).
	Path string
	// Offset is where the damage starts within Path (-1 = unknown).
	Offset int64
	// Err is the underlying corruption report (wraps the backend's
	// corruption sentinel, e.g. wal.ErrCorrupt).
	Err error
}

func (e *CorruptError) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("storage: shard %d corrupt at %s+%d: %v", e.Shard, e.Path, e.Offset, e.Err)
	}
	return fmt.Sprintf("storage: shard %d corrupt: %v", e.Shard, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Verifier is the optional scrub surface of a Backend: VerifyShard re-reads
// the shard's durable bytes — log frames against their CRCs, the checkpoint
// against its checksum — without mutating anything, returning a
// *CorruptError on damage. Backends without durable bytes (Memory) simply
// do not implement it; the scrubber skips them.
type Verifier interface {
	VerifyShard(shard int) error
}

// Record is one durable mutation of a stripe. The zero kind is a Set: the
// key named in Entry now holds exactly that state (value, tombstone flag and
// stamp). Reset marks a stripe-wide clear, applying before the records that
// follow it.
type Record struct {
	// Reset clears the stripe before the records that follow it. The
	// kvstore persists wholesale stripe replacement as a checkpoint
	// instead, but replay honors Reset so backends and older logs may
	// carry it.
	Reset bool
	// Entry is the key state this record sets: the full stored copy, stamp
	// included, in the wire codec's shape.
	Entry encoding.Entry
}

// Backend persists per-stripe mutation logs and checkpoints. Implementations
// must serialize operations on the same shard internally; the kvstore calls
// Append under the stripe's write lock, but Compact and Close can race with
// appends to other shards.
type Backend interface {
	// Append durably adds one record to the shard's log. The kvstore
	// acknowledges a write only after Append returns, so an implementation's
	// durability level (OS buffer, fsync) is exactly the store's.
	Append(shard int, rec Record) error

	// ReplayShard streams the shard's durable state in apply order: the
	// latest checkpoint (if one exists) through ckpt first, then every log
	// record appended after that checkpoint through rec, oldest first.
	// Either callback may be nil to skip that part.
	ReplayShard(shard int, ckpt func(snapshot []byte) error, rec func(Record) error) error

	// Checkpoint atomically replaces the shard's checkpoint with snapshot
	// and truncates its record log: after Checkpoint, ReplayShard yields the
	// snapshot and nothing else. The kvstore calls it under the stripe's
	// write lock so no append can fall between the snapshot and the
	// truncation.
	Checkpoint(shard int, snapshot []byte) error

	// Compact rewrites the shard's log keeping only the records that still
	// matter for replay: everything before the last Reset drops, and only
	// the last record per key survives. Unlike Checkpoint it needs no
	// snapshot from the store and may run concurrently with appends.
	Compact(shard int) error

	// Close releases the backend's resources. The log is not checkpointed;
	// callers wanting a clean restart checkpoint first (kvstore's
	// Replica.Close does).
	Close() error
}

// ValueLoc addresses one value's bytes inside a shard's durable state, so a
// store can drop the in-memory copy and page it back on demand. A location
// is valid only while its generation matches the shard's current log or
// checkpoint generation; operations that move bytes (Checkpoint, Compact)
// bump the generation, and reads through a stale location return
// ErrStaleLoc instead of garbage.
type ValueLoc struct {
	// Off is the byte offset of the value within the shard's log file
	// (Ckpt false) or checkpoint file (Ckpt true).
	Off int64
	// Len is the value's length in bytes.
	Len uint32
	// Gen is the generation of the region Off addresses.
	Gen uint32
	// Ckpt selects the region: the checkpoint file rather than the log.
	Ckpt bool
}

// Pager is the optional value-paging surface of a Backend: a backend that
// can address and re-read the value bytes of its records lets the store
// keep only stamps and locations resident. The wal backend implements it
// with pread on the log and checkpoint files; Memory implements it over its
// heap copies so paged stores are testable without disk.
type Pager interface {
	// AppendLocate is Append plus the location of the record's value bytes
	// within the shard's log. ok is false when the record has no pageable
	// value (tombstones, resets) — the append still happened. wait, when
	// non-nil, blocks until the record's commit window is durable (group
	// commit); callers must invoke it outside the stripe lock, and must not
	// acknowledge the write before it returns nil.
	AppendLocate(shard int, rec Record) (loc ValueLoc, ok bool, wait func() error, err error)

	// ReadValueAt reads back the value bytes a prior AppendLocate or
	// checkpoint layout addressed. Returns ErrStaleLoc when the location's
	// generation no longer matches. The returned slice is freshly allocated
	// and owned by the caller.
	ReadValueAt(shard int, loc ValueLoc) ([]byte, error)

	// CheckpointLocate is Checkpoint plus the new checkpoint region: the
	// generation locations against it must carry, and the byte offset
	// within the checkpoint file where the snapshot payload starts (value
	// offsets inside the payload are the caller's, from its own encoding).
	CheckpointLocate(shard int, snapshot []byte) (gen uint32, base int64, err error)

	// CheckpointRegion reports the shard's current checkpoint generation
	// and payload base — what CheckpointLocate last returned, or the values
	// for the checkpoint ReplayShard just streamed.
	CheckpointRegion(shard int) (gen uint32, base int64)

	// CheckpointPayload re-reads the shard's whole checkpoint payload (the
	// bytes ReplayShard would stream as ckpt). Returns ErrStaleLoc when gen
	// no longer matches — the checkpoint was replaced.
	CheckpointPayload(shard int, gen uint32) ([]byte, error)
}

// AsyncBackend is the optional group-commit surface of a Backend: an append
// whose durability barrier is detached from the call, so many writers'
// appends can share one fsync. AppendAsync stages the record (under the
// caller's stripe lock, preserving log order) and returns a wait function;
// the caller invokes wait after releasing the stripe lock and must not
// acknowledge the write before it returns nil. A nil wait means the append
// is already as durable as Append would have made it.
type AsyncBackend interface {
	AppendAsync(shard int, rec Record) (wait func() error, err error)
}

// Memory is an in-process Backend: logs and checkpoints live on the heap
// and vanish with the process, reproducing the engine's historical
// non-durable behaviour while exercising the same code paths as a real
// backend. It is safe for concurrent use.
type Memory struct {
	mu     sync.Mutex
	shards map[int]*memShard
}

type memShard struct {
	ckpt []byte
	log  []Record
	// Paging generations: log locations address indices into log and die on
	// Checkpoint/Compact; checkpoint locations address bytes of ckpt and
	// die when it is replaced.
	logGen  uint32
	ckptGen uint32
}

// NewMemory creates an empty in-process backend.
func NewMemory() *Memory {
	return &Memory{shards: make(map[int]*memShard)}
}

func (m *Memory) shard(i int) *memShard {
	sh, ok := m.shards[i]
	if !ok {
		sh = &memShard{}
		m.shards[i] = sh
	}
	return sh
}

// Append adds one record to the shard's in-memory log.
func (m *Memory) Append(shard int, rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh := m.shard(shard)
	sh.log = append(sh.log, rec)
	return nil
}

// ReplayShard streams the shard's checkpoint and log.
func (m *Memory) ReplayShard(shard int, ckpt func([]byte) error, rec func(Record) error) error {
	m.mu.Lock()
	sh := m.shard(shard)
	snapshot := sh.ckpt
	log := append([]Record(nil), sh.log...)
	m.mu.Unlock()
	if snapshot != nil && ckpt != nil {
		if err := ckpt(snapshot); err != nil {
			return err
		}
	}
	if rec != nil {
		for _, r := range log {
			if err := rec(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// Checkpoint replaces the shard's checkpoint and truncates its log.
func (m *Memory) Checkpoint(shard int, snapshot []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh := m.shard(shard)
	sh.ckpt = append([]byte(nil), snapshot...)
	sh.log = nil
	sh.logGen++
	sh.ckptGen++
	return nil
}

// Compact keeps the last record per key after the last Reset.
func (m *Memory) Compact(shard int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh := m.shard(shard)
	sh.log = CompactRecords(sh.log)
	sh.logGen++ // record indices moved; outstanding log locations are stale
	return nil
}

// AppendLocate implements Pager: the "location" of an in-memory value is
// its record's index in the shard log, valid until Checkpoint or Compact.
func (m *Memory) AppendLocate(shard int, rec Record) (ValueLoc, bool, func() error, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh := m.shard(shard)
	sh.log = append(sh.log, rec)
	if rec.Reset || rec.Entry.Deleted {
		return ValueLoc{}, false, nil, nil
	}
	loc := ValueLoc{
		Off: int64(len(sh.log) - 1),
		Len: uint32(len(rec.Entry.Value)),
		Gen: sh.logGen,
	}
	return loc, true, nil, nil
}

// ReadValueAt implements Pager over the heap copies.
func (m *Memory) ReadValueAt(shard int, loc ValueLoc) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh := m.shard(shard)
	if loc.Ckpt {
		if loc.Gen != sh.ckptGen {
			return nil, ErrStaleLoc
		}
		end := loc.Off + int64(loc.Len)
		if loc.Off < 0 || end > int64(len(sh.ckpt)) {
			return nil, ErrStaleLoc
		}
		return append([]byte(nil), sh.ckpt[loc.Off:end]...), nil
	}
	if loc.Gen != sh.logGen || loc.Off < 0 || loc.Off >= int64(len(sh.log)) {
		return nil, ErrStaleLoc
	}
	v := sh.log[loc.Off].Entry.Value
	if uint32(len(v)) != loc.Len {
		return nil, ErrStaleLoc
	}
	return append([]byte(nil), v...), nil
}

// CheckpointLocate implements Pager: Checkpoint plus the new region. The
// in-memory checkpoint has no file header, so the payload base is 0.
func (m *Memory) CheckpointLocate(shard int, snapshot []byte) (uint32, int64, error) {
	if err := m.Checkpoint(shard, snapshot); err != nil {
		return 0, 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shard(shard).ckptGen, 0, nil
}

// CheckpointRegion implements Pager.
func (m *Memory) CheckpointRegion(shard int) (uint32, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shard(shard).ckptGen, 0
}

// CheckpointPayload implements Pager.
func (m *Memory) CheckpointPayload(shard int, gen uint32) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh := m.shard(shard)
	if gen != sh.ckptGen {
		return nil, ErrStaleLoc
	}
	return append([]byte(nil), sh.ckpt...), nil
}

// Close is a no-op for the in-process backend.
func (m *Memory) Close() error { return nil }

// CompactRecords returns the minimal record sequence equivalent to log under
// replay: records before the last Reset drop (the Reset erases their
// effect), the Reset itself survives (it must still clear checkpoint state),
// and of the rest only each key's last record remains, in original order.
// Shared by backends implementing Compact.
func CompactRecords(log []Record) []Record {
	start := 0
	reset := false
	for i, r := range log {
		if r.Reset {
			start, reset = i+1, true
		}
	}
	last := make(map[string]int, len(log)-start)
	for i := start; i < len(log); i++ {
		last[log[i].Entry.Key] = i
	}
	out := make([]Record, 0, len(last)+1)
	if reset {
		out = append(out, Record{Reset: true})
	}
	for i := start; i < len(log); i++ {
		if last[log[i].Entry.Key] == i {
			out = append(out, log[i])
		}
	}
	return out
}

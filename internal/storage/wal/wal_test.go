package wal

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/storage"
)

func rec(key, value string) storage.Record {
	return storage.Record{Entry: encoding.Entry{
		Key: key, Value: []byte(value), Stamp: core.Seed().Update(),
	}}
}

func open(t *testing.T, dir string) *WAL {
	t.Helper()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func replay(t *testing.T, w *WAL, shard int) (ckpt []byte, recs []storage.Record) {
	t.Helper()
	err := w.ReplayShard(shard,
		func(snap []byte) error { ckpt = append([]byte(nil), snap...); return nil },
		func(r storage.Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatalf("ReplayShard(%d): %v", shard, err)
	}
	return ckpt, recs
}

func TestAppendSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	if err := w.Append(0, rec("a", "1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, storage.Record{Reset: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, rec("b", "2")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, rec("c", "3")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := open(t, dir)
	defer w2.Close()
	_, recs := replay(t, w2, 0)
	if len(recs) != 3 || recs[0].Entry.Key != "a" || !recs[1].Reset || recs[2].Entry.Key != "b" {
		t.Fatalf("shard 0 records = %+v", recs)
	}
	if !recs[2].Entry.Stamp.Equal(core.Seed().Update()) {
		t.Errorf("stamp did not round-trip: %v", recs[2].Entry.Stamp)
	}
	if _, recs := replay(t, w2, 2); len(recs) != 1 || string(recs[0].Entry.Value) != "3" {
		t.Errorf("shard 2 records = %+v", recs)
	}
}

// TestTornTailTruncated cuts the log at every possible byte offset inside
// the final frame and asserts recovery keeps exactly the intact prefix —
// the crash-mid-append contract.
func TestTornTailTruncated(t *testing.T) {
	build := func(t *testing.T, dir string) (path string, cleanLens []int) {
		w := open(t, dir)
		defer w.Close()
		path = w.logPath(0)
		cleanLens = []int{0}
		for i, kv := range []string{"1", "22", "333"} {
			if err := w.Append(0, rec("key", kv)); err != nil {
				t.Fatal(err)
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			cleanLens = append(cleanLens, int(fi.Size()))
			_ = i
		}
		return path, cleanLens
	}

	dir := t.TempDir()
	path, cleanLens := build(t, dir)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := cleanLens[2] + 1; cut < len(full); cut++ {
		cutDir := t.TempDir()
		cutPath := filepath.Join(cutDir, filepath.Base(path))
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(cutDir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		_, recs := replay(t, w, 0)
		if len(recs) != 2 {
			t.Fatalf("cut at %d: recovered %d records, want 2", cut, len(recs))
		}
		if fi, err := os.Stat(cutPath); err != nil || int(fi.Size()) != cleanLens[2] {
			t.Fatalf("cut at %d: log not truncated to last intact frame (size %v, err %v)",
				cut, fi.Size(), err)
		}
		// Appends after recovery must land cleanly after the intact prefix.
		if err := w.Append(0, rec("key", "4444")); err != nil {
			t.Fatal(err)
		}
		_, recs = replay(t, w, 0)
		if len(recs) != 3 || string(recs[2].Entry.Value) != "4444" {
			t.Fatalf("cut at %d: post-recovery append lost: %+v", cut, recs)
		}
		w.Close()
	}
}

// TestMidLogCorruptionReported flips a byte in a non-final frame: that can
// never be a torn tail write, so recovery must refuse rather than silently
// drop acknowledged records.
func TestMidLogCorruptionReported(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	path := w.logPath(0)
	for i := 0; i < 3; i++ {
		if err := w.Append(0, rec("key", "value")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the very first frame (offset 1 skips its
	// one-byte length prefix): a checksum mismatch with intact frames after
	// it. A corrupted length prefix is deliberately not tested — a length
	// that swallows the rest of the file is indistinguishable from a torn
	// tail and is treated as one.
	data[1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on mid-log corruption: %v, want ErrCorrupt", err)
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	defer w.Close()
	_ = w.Append(0, rec("a", "1"))
	if err := w.Checkpoint(0, []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	_ = w.Append(0, rec("b", "2"))
	ckpt, recs := replay(t, w, 0)
	if string(ckpt) != "snapshot" {
		t.Errorf("checkpoint = %q", ckpt)
	}
	if len(recs) != 1 || recs[0].Entry.Key != "b" {
		t.Errorf("post-checkpoint records = %+v", recs)
	}
}

func TestCompactRewritesLog(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	defer w.Close()
	for i := 0; i < 50; i++ {
		_ = w.Append(0, rec("hot", "x"))
	}
	_ = w.Append(0, rec("cold", "y"))
	before, _ := os.Stat(w.logPath(0))
	if err := w.Compact(0); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(w.logPath(0))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compact did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	_, recs := replay(t, w, 0)
	if len(recs) != 2 {
		t.Fatalf("compacted log replays %d records, want 2", len(recs))
	}
	// The reopened append handle must keep working on the new inode.
	if err := w.Append(0, rec("hot", "z")); err != nil {
		t.Fatal(err)
	}
	if _, recs := replay(t, w, 0); len(recs) != 3 {
		t.Fatalf("post-compact append lost: %+v", recs)
	}
}

// TestRandomCutProperty is the storage-level half of the crash-recovery
// property: whatever byte offset a crash cuts the log at, recovery yields a
// prefix of the appended records and never an error.
func TestRandomCutProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		w := open(t, dir)
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			if err := w.Append(0, rec("key", string(make([]byte, rng.Intn(40))))); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		path := filepath.Join(dir, "shard-0000.wal")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Intn(len(data) + 1)
		if err := os.Truncate(path, int64(cut)); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("trial %d cut %d: Open: %v", trial, cut, err)
		}
		_, recs := replay(t, w2, 0)
		if len(recs) > n {
			t.Fatalf("trial %d: more records than appended", trial)
		}
		w2.Close()
	}
}

func TestFsyncOptionAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(0, rec("a", "1")); err != nil {
		t.Fatal(err)
	}
	if _, recs := replay(t, w, 0); len(recs) != 1 {
		t.Fatalf("records = %+v", recs)
	}
}

package wal

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/storage"
)

func rec(key, value string) storage.Record {
	return storage.Record{Entry: encoding.Entry{
		Key: key, Value: []byte(value), Stamp: core.Seed().Update(),
	}}
}

func open(t *testing.T, dir string) *WAL {
	t.Helper()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func replay(t *testing.T, w *WAL, shard int) (ckpt []byte, recs []storage.Record) {
	t.Helper()
	err := w.ReplayShard(shard,
		func(snap []byte) error { ckpt = append([]byte(nil), snap...); return nil },
		func(r storage.Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatalf("ReplayShard(%d): %v", shard, err)
	}
	return ckpt, recs
}

func TestAppendSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	if err := w.Append(0, rec("a", "1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, storage.Record{Reset: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, rec("b", "2")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, rec("c", "3")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := open(t, dir)
	defer w2.Close()
	_, recs := replay(t, w2, 0)
	if len(recs) != 3 || recs[0].Entry.Key != "a" || !recs[1].Reset || recs[2].Entry.Key != "b" {
		t.Fatalf("shard 0 records = %+v", recs)
	}
	if !recs[2].Entry.Stamp.Equal(core.Seed().Update()) {
		t.Errorf("stamp did not round-trip: %v", recs[2].Entry.Stamp)
	}
	if _, recs := replay(t, w2, 2); len(recs) != 1 || string(recs[0].Entry.Value) != "3" {
		t.Errorf("shard 2 records = %+v", recs)
	}
}

// TestTornTailTruncated cuts the log at every possible byte offset inside
// the final frame and asserts recovery keeps exactly the intact prefix —
// the crash-mid-append contract.
func TestTornTailTruncated(t *testing.T) {
	build := func(t *testing.T, dir string) (path string, cleanLens []int) {
		w := open(t, dir)
		defer w.Close()
		path = w.logPath(0)
		cleanLens = []int{0}
		for i, kv := range []string{"1", "22", "333"} {
			if err := w.Append(0, rec("key", kv)); err != nil {
				t.Fatal(err)
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			cleanLens = append(cleanLens, int(fi.Size()))
			_ = i
		}
		return path, cleanLens
	}

	dir := t.TempDir()
	path, cleanLens := build(t, dir)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := cleanLens[2] + 1; cut < len(full); cut++ {
		cutDir := t.TempDir()
		cutPath := filepath.Join(cutDir, filepath.Base(path))
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(cutDir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		_, recs := replay(t, w, 0)
		if len(recs) != 2 {
			t.Fatalf("cut at %d: recovered %d records, want 2", cut, len(recs))
		}
		if fi, err := os.Stat(cutPath); err != nil || int(fi.Size()) != cleanLens[2] {
			t.Fatalf("cut at %d: log not truncated to last intact frame (size %v, err %v)",
				cut, fi.Size(), err)
		}
		// Appends after recovery must land cleanly after the intact prefix.
		if err := w.Append(0, rec("key", "4444")); err != nil {
			t.Fatal(err)
		}
		_, recs = replay(t, w, 0)
		if len(recs) != 3 || string(recs[2].Entry.Value) != "4444" {
			t.Fatalf("cut at %d: post-recovery append lost: %+v", cut, recs)
		}
		w.Close()
	}
}

// TestMidLogCorruptionReported flips a byte in a non-final frame: that can
// never be a torn tail write, so the shard must be refused rather than
// silently dropping acknowledged records — but the damage is scoped to the
// shard. Open succeeds, healthy shards load, the damaged one quarantines
// with the file and byte offset in its report, and a checkpoint heals it.
func TestMidLogCorruptionReported(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	path := w.logPath(0)
	for i := 0; i < 3; i++ {
		if err := w.Append(0, rec("key", "value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append(1, rec("other", "ok")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the very first frame (offset 1 skips its
	// one-byte length prefix): a checksum mismatch with intact frames after
	// it. A corrupted length prefix is deliberately not tested — a length
	// that swallows the rest of the file is indistinguishable from a torn
	// tail and is treated as one.
	data[1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open on mid-log corruption: %v, want shard-scoped quarantine", err)
	}
	defer w2.Close()

	// The healthy shard loads untouched.
	if _, recs := replay(t, w2, 1); len(recs) != 1 || recs[0].Entry.Key != "other" {
		t.Fatalf("healthy shard 1 records = %+v", recs)
	}
	// The damaged shard reports a *storage.CorruptError naming file+offset,
	// after streaming nothing (the damage is in frame 0).
	var ce *storage.CorruptError
	err = w2.ReplayShard(0, nil, func(storage.Record) error { return nil })
	if !errors.As(err, &ce) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReplayShard(0) = %v, want *storage.CorruptError wrapping ErrCorrupt", err)
	}
	if ce.Shard != 0 || ce.Path != path || ce.Offset != 0 {
		t.Fatalf("damage report = shard %d path %q offset %d, want shard 0 %q offset 0",
			ce.Shard, ce.Path, ce.Offset, path)
	}
	// Appends to the quarantined shard are refused; the healthy one accepts.
	if err := w2.Append(0, rec("key", "nope")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Append to quarantined shard = %v, want ErrCorrupt", err)
	}
	if err := w2.Append(1, rec("other", "more")); err != nil {
		t.Fatal(err)
	}
	if q := w2.Quarantined(); len(q) != 1 || q[0] == nil {
		t.Fatalf("Quarantined() = %v, want shard 0 only", q)
	}
	// Checkpoint is the repair path: quarantine clears, appends resume.
	if err := w2.Checkpoint(0, []byte("repaired")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(0, rec("key", "back")); err != nil {
		t.Fatalf("post-repair append: %v", err)
	}
	ckpt, recs := replay(t, w2, 0)
	if string(ckpt) != "repaired" || len(recs) != 1 {
		t.Fatalf("post-repair replay = %q %+v", ckpt, recs)
	}
	if q := w2.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantine not cleared: %v", q)
	}
}

// TestMidLogCorruptionStreamsPrefix damages frame 2 of 4 and asserts replay
// still yields frames 0 and 1 before the damage report — the readable
// prefix survives quarantine.
func TestMidLogCorruptionStreamsPrefix(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	for _, v := range []string{"v0", "v1", "v2", "v3"} {
		if err := w.Append(0, rec("key", v)); err != nil {
			t.Fatal(err)
		}
	}
	path := w.logPath(0)
	w.Close()

	offs, err := FrameOffsets(path)
	if err != nil || len(offs) != 4 {
		t.Fatalf("FrameOffsets = %v, %v", offs, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offs[2]+1] ^= 0xFF // payload byte of frame 2
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w2.Close()
	var recs []storage.Record
	var ce *storage.CorruptError
	err = w2.ReplayShard(0, nil, func(r storage.Record) error { recs = append(recs, r); return nil })
	if !errors.As(err, &ce) {
		t.Fatalf("ReplayShard = %v, want *storage.CorruptError", err)
	}
	if ce.Offset != offs[2] {
		t.Fatalf("damage offset = %d, want %d", ce.Offset, offs[2])
	}
	if len(recs) != 2 || string(recs[0].Entry.Value) != "v0" || string(recs[1].Entry.Value) != "v1" {
		t.Fatalf("intact prefix = %+v, want v0,v1", recs)
	}
}

// TestCheckpointCorruptionDetected damages a checksummed checkpoint and
// asserts replay quarantines the shard instead of loading garbage.
func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	if err := w.Checkpoint(0, []byte("snapshot-payload")); err != nil {
		t.Fatal(err)
	}
	path := w.ckptPath(0)
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := open(t, dir)
	var ce *storage.CorruptError
	err = w2.ReplayShard(0, func([]byte) error {
		t.Fatal("corrupt checkpoint must not reach the callback")
		return nil
	}, nil)
	if !errors.As(err, &ce) || ce.Path != path {
		t.Fatalf("ReplayShard = %v, want *storage.CorruptError for %s", err, path)
	}
	w2.Close()
	// VerifyShard (the scrub) reports the same damage on a live shard.
	w3 := open(t, dir)
	defer w3.Close()
	if err := w3.VerifyShard(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyShard = %v, want ErrCorrupt", err)
	}
}

// TestLegacyCheckpointLoads writes a headerless (pre-checksum) checkpoint
// directly and asserts it still loads — old data directories upgrade in
// place.
func TestLegacyCheckpointLoads(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	defer w.Close()
	if err := WriteFileAtomic(w.ckptPath(0), []byte("legacy-snapshot")); err != nil {
		t.Fatal(err)
	}
	ckpt, _ := replay(t, w, 0)
	if string(ckpt) != "legacy-snapshot" {
		t.Fatalf("legacy checkpoint = %q", ckpt)
	}
	if err := w.VerifyShard(0); err != nil {
		t.Fatalf("VerifyShard on legacy checkpoint: %v", err)
	}
}

// faultScript is a scripted FaultInjector for regression tests: each queued
// step applies to one Append call, in order; the zero value injects nothing.
type faultScript struct {
	appends []appendFault
	trunc   error
}

type appendFault struct {
	short int // bytes allowed to land (-1 = all)
	err   error
}

func (f *faultScript) Append(shard int, frame []byte) (int, error) {
	if len(f.appends) == 0 {
		return len(frame), nil
	}
	step := f.appends[0]
	f.appends = f.appends[1:]
	if step.short < 0 || step.short > len(frame) {
		return len(frame), step.err
	}
	return step.short, step.err
}

func (f *faultScript) Truncate(int) error           { return f.trunc }
func (f *faultScript) Sync(int) error               { return nil }
func (f *faultScript) Checkpoint(int, []byte) error { return nil }

var errNoSpace = errors.New("injected: no space left on device")

// TestShortWriteRollsBack injects an ENOSPC-style short write and asserts
// the rollback truncation removes the partial frame: the failed append
// vanishes, later appends land cleanly, and reopen sees no damage.
func TestShortWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	fs := &faultScript{appends: []appendFault{
		{short: -1},                 // first append lands
		{short: 3, err: errNoSpace}, // second lands 3 bytes then fails
	}}
	w, err := Open(dir, Options{Fault: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, rec("a", "1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, rec("b", "2")); !errors.Is(err, errNoSpace) {
		t.Fatalf("injected append = %v, want errNoSpace", err)
	}
	// The rollback engaged: the shard is NOT latched, the next append works.
	if err := w.Append(0, rec("c", "3")); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	w.Close()

	w2 := open(t, dir)
	defer w2.Close()
	_, recs := replay(t, w2, 0)
	if len(recs) != 2 || recs[0].Entry.Key != "a" || recs[1].Entry.Key != "c" {
		t.Fatalf("records after rollback = %+v, want a,c", recs)
	}
}

// TestUnremovableShortWriteLatches injects a short write whose rollback
// also fails: the shard must latch read-only (every further append refuses)
// and a later successful checkpoint must heal the latch.
func TestUnremovableShortWriteLatches(t *testing.T) {
	dir := t.TempDir()
	fs := &faultScript{
		appends: []appendFault{{short: -1}, {short: 3, err: errNoSpace}},
		trunc:   errors.New("injected: truncate failed"),
	}
	w, err := Open(dir, Options{Fault: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(0, rec("a", "1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, rec("b", "2")); err == nil {
		t.Fatal("short write with failed rollback must error")
	}
	// Latched: appends refuse even though the injector is now quiet.
	fs.trunc = nil
	if err := w.Append(0, rec("c", "3")); err == nil {
		t.Fatal("latched shard accepted an append")
	}
	// A checkpoint supersedes the log and heals the latch.
	if err := w.Checkpoint(0, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, rec("d", "4")); err != nil {
		t.Fatalf("append after healing checkpoint: %v", err)
	}
	ckpt, recs := replay(t, w, 0)
	if string(ckpt) != "healed" || len(recs) != 1 || recs[0].Entry.Key != "d" {
		t.Fatalf("post-heal state = %q %+v", ckpt, recs)
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	defer w.Close()
	_ = w.Append(0, rec("a", "1"))
	if err := w.Checkpoint(0, []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	_ = w.Append(0, rec("b", "2"))
	ckpt, recs := replay(t, w, 0)
	if string(ckpt) != "snapshot" {
		t.Errorf("checkpoint = %q", ckpt)
	}
	if len(recs) != 1 || recs[0].Entry.Key != "b" {
		t.Errorf("post-checkpoint records = %+v", recs)
	}
}

func TestCompactRewritesLog(t *testing.T) {
	dir := t.TempDir()
	w := open(t, dir)
	defer w.Close()
	for i := 0; i < 50; i++ {
		_ = w.Append(0, rec("hot", "x"))
	}
	_ = w.Append(0, rec("cold", "y"))
	before, _ := os.Stat(w.logPath(0))
	if err := w.Compact(0); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(w.logPath(0))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compact did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	_, recs := replay(t, w, 0)
	if len(recs) != 2 {
		t.Fatalf("compacted log replays %d records, want 2", len(recs))
	}
	// The reopened append handle must keep working on the new inode.
	if err := w.Append(0, rec("hot", "z")); err != nil {
		t.Fatal(err)
	}
	if _, recs := replay(t, w, 0); len(recs) != 3 {
		t.Fatalf("post-compact append lost: %+v", recs)
	}
}

// TestRandomCutProperty is the storage-level half of the crash-recovery
// property: whatever byte offset a crash cuts the log at, recovery yields a
// prefix of the appended records and never an error.
func TestRandomCutProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		w := open(t, dir)
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			if err := w.Append(0, rec("key", string(make([]byte, rng.Intn(40))))); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		path := filepath.Join(dir, "shard-0000.wal")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Intn(len(data) + 1)
		if err := os.Truncate(path, int64(cut)); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("trial %d cut %d: Open: %v", trial, cut, err)
		}
		_, recs := replay(t, w2, 0)
		if len(recs) > n {
			t.Fatalf("trial %d: more records than appended", trial)
		}
		w2.Close()
	}
}

func TestFsyncOptionAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(0, rec("a", "1")); err != nil {
		t.Fatal(err)
	}
	if _, recs := replay(t, w, 0); len(recs) != 1 {
		t.Fatalf("records = %+v", recs)
	}
}

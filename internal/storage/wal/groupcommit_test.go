package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openGroup(t *testing.T, dir string) *WAL {
	t.Helper()
	w, err := Open(dir, Options{GroupCommit: true})
	if err != nil {
		t.Fatalf("Open group: %v", err)
	}
	return w
}

// buildGroupLog appends n acked records to shard 0 of a group-commit WAL
// and returns the raw stripe-log and commit-log bytes at crash time (Close
// releases handles without rotating, so the commit log keeps every frame).
func buildGroupLog(t *testing.T, n int) (stripe, commit []byte) {
	t.Helper()
	dir := t.TempDir()
	w := openGroup(t, dir)
	for i := 0; i < n; i++ {
		if err := w.Append(0, rec("key", fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stripe, err := os.ReadFile(LogPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	commit, err = os.ReadFile(filepath.Join(dir, commitLogName))
	if err != nil {
		t.Fatal(err)
	}
	return stripe, commit
}

// crashDir materializes a simulated post-crash directory: a prefix of the
// stripe log (un-fsynced stripe bytes may be lost) alongside a prefix of
// the commit log (fsynced, but the crash may still tear its tail).
func crashDir(t *testing.T, stripe, commit []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(LogPath(dir, 0), stripe, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, commitLogName), commit, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// commitFrame hand-encodes one commit-log frame carrying raw stripe-frame
// bytes destined for (shard, stripeOff) — the format recoverCommitLog
// parses.
func commitFrame(shard int, stripeOff int64, frame []byte) []byte {
	payload := []byte{recCommit}
	payload = binary.AppendUvarint(payload, uint64(shard))
	payload = binary.AppendUvarint(payload, uint64(stripeOff))
	payload = append(payload, frame...)
	out := binary.AppendUvarint(nil, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return out
}

// TestGroupCommitAckedSurviveStripeLoss is the headline durability claim:
// every acked append lives in the fsynced commit log, so losing ALL
// un-fsynced stripe-file bytes (truncate to zero) loses nothing.
func TestGroupCommitAckedSurviveStripeLoss(t *testing.T) {
	stripe, commit := buildGroupLog(t, 8)
	dir := crashDir(t, nil, commit)
	w := openGroup(t, dir)
	defer w.Close()
	_, recs := replay(t, w, 0)
	if len(recs) != 8 {
		t.Fatalf("recovered %d records, want 8", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("v%d", i); string(r.Entry.Value) != want {
			t.Fatalf("record %d = %q, want %q", i, r.Entry.Value, want)
		}
	}
	// Recovery rebuilt the stripe log byte-for-byte and emptied the commit
	// log, so the stripe file is self-sufficient again.
	got, err := os.ReadFile(LogPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(stripe) {
		t.Fatalf("materialized stripe log differs from the original (%d vs %d bytes)",
			len(got), len(stripe))
	}
	if fi, err := os.Stat(filepath.Join(dir, commitLogName)); err != nil || fi.Size() != 0 {
		t.Fatalf("commit log not drained after recovery: %v, %v", fi, err)
	}
}

// TestGroupCommitConcurrentAcksSurvive drives 32 writers through shared
// commit windows, then loses the whole stripe file: every acked record must
// come back.
func TestGroupCommitConcurrentAcksSurvive(t *testing.T) {
	dir := t.TempDir()
	w := openGroup(t, dir)
	const writers = 32
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wait, err := w.AppendAsync(0, rec(fmt.Sprintf("w%02d", i), "x"))
			if err == nil && wait != nil {
				err = wait()
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(LogPath(dir, 0), 0); err != nil {
		t.Fatal(err)
	}
	w2 := openGroup(t, dir)
	defer w2.Close()
	_, recs := replay(t, w2, 0)
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Entry.Key] = true
	}
	for i := 0; i < writers; i++ {
		if k := fmt.Sprintf("w%02d", i); !seen[k] {
			t.Fatalf("acked write %s lost (recovered %d records)", k, len(recs))
		}
	}
}

// TestGroupCommitStripeCutProperty cuts the stripe log at EVERY byte offset
// while the commit log is intact: no acked write may be lost at any cut,
// and recovery must leave the stripe log identical to the uncut original.
func TestGroupCommitStripeCutProperty(t *testing.T) {
	stripe, commit := buildGroupLog(t, 8)
	for cut := 0; cut <= len(stripe); cut++ {
		dir := crashDir(t, stripe[:cut], commit)
		w, err := Open(dir, Options{GroupCommit: true})
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		_, recs := replay(t, w, 0)
		if len(recs) != 8 {
			t.Fatalf("cut at %d: recovered %d records, want 8", cut, len(recs))
		}
		for i, r := range recs {
			if want := fmt.Sprintf("v%d", i); string(r.Entry.Value) != want {
				t.Fatalf("cut at %d: record %d = %q, want %q", cut, i, r.Entry.Value, want)
			}
		}
		got, err := os.ReadFile(LogPath(dir, 0))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(stripe) {
			t.Fatalf("cut at %d: stripe log not rebuilt to the original", cut)
		}
		w.Close()
	}
}

// TestGroupCommitCommitCutProperty loses the stripe file entirely AND cuts
// the commit log at every byte offset — the crash landing mid-window, mid
// frame. Recovery must always succeed (a torn commit tail is truncation,
// not corruption) and replay must yield an exact prefix of the append
// sequence: un-acked suffixes may vanish, but nothing reorders and no hole
// opens. The WAL must accept new appends afterwards.
func TestGroupCommitCommitCutProperty(t *testing.T) {
	_, commit := buildGroupLog(t, 8)
	for cut := 0; cut <= len(commit); cut++ {
		dir := crashDir(t, nil, commit[:cut])
		w, err := Open(dir, Options{GroupCommit: true})
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		_, recs := replay(t, w, 0)
		for i, r := range recs {
			if want := fmt.Sprintf("v%d", i); string(r.Entry.Value) != want {
				t.Fatalf("cut at %d: replay is not an op prefix: record %d = %q, want %q",
					cut, i, r.Entry.Value, want)
			}
		}
		if err := w.Append(0, rec("key", "post")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		_, recs2 := replay(t, w, 0)
		if len(recs2) != len(recs)+1 || string(recs2[len(recs)].Entry.Value) != "post" {
			t.Fatalf("cut at %d: post-recovery append lost (%d -> %d records)",
				cut, len(recs), len(recs2))
		}
		w.Close()
	}
}

// TestGroupCommitGarbageTailTolerated appends random garbage to the commit
// log — a crash that tore the tail into nonsense rather than cutting it
// clean. The garbage must be discarded as a torn tail, keeping every acked
// record.
func TestGroupCommitGarbageTailTolerated(t *testing.T) {
	_, commit := buildGroupLog(t, 8)
	garbage := append(append([]byte(nil), commit...),
		0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0xff)
	dir := crashDir(t, nil, garbage)
	w := openGroup(t, dir)
	defer w.Close()
	_, recs := replay(t, w, 0)
	if len(recs) != 8 {
		t.Fatalf("recovered %d records, want 8", len(recs))
	}
}

// TestGroupCommitStaleAndDanglingFramesSkipped exercises recoverCommitLog's
// offset discipline: frames below the stripe log's end are already present
// (stale — skipped), frames beyond it are dangling (their predecessor never
// became durable — skipped), and only a frame at the exact end
// materializes.
func TestGroupCommitStaleAndDanglingFramesSkipped(t *testing.T) {
	stripe, commit := buildGroupLog(t, 3)
	offs, err := FrameOffsets(crashPath(t, stripe))
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 3 {
		t.Fatalf("FrameOffsets = %v", offs)
	}
	frame0 := stripe[offs[0]:offs[1]] // raw first stripe frame ("v0")
	end := int64(len(stripe))

	// Commit log: 3 stale frames (stripe intact, all below end), one
	// dangling frame far past the end, one valid frame at the exact end.
	crafted := append([]byte(nil), commit...)
	crafted = append(crafted, commitFrame(0, end+1000, frame0)...)
	crafted = append(crafted, commitFrame(0, end, frame0)...)

	dir := crashDir(t, stripe, crafted)
	w := openGroup(t, dir)
	defer w.Close()
	_, recs := replay(t, w, 0)
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4 (3 original + 1 materialized)", len(recs))
	}
	for i, want := range []string{"v0", "v1", "v2", "v0"} {
		if string(recs[i].Entry.Value) != want {
			t.Fatalf("record %d = %q, want %q", i, recs[i].Entry.Value, want)
		}
	}
	if fi, err := os.Stat(LogPath(dir, 0)); err != nil || fi.Size() != end+int64(len(frame0)) {
		t.Fatalf("stripe log size = %v (err %v), want %d", fi.Size(), err, end+int64(len(frame0)))
	}
}

// crashPath writes data to a scratch stripe-log file and returns its path —
// FrameOffsets wants a file, not bytes.
func crashPath(t *testing.T, data []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "scratch.wal")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// commitFaultScript injects scripted faults into the group-commit pipeline
// while leaving stripe-file operations healthy.
type commitFaultScript struct {
	appendShort int // bytes of the commit batch allowed to land (-1 = all)
	appendErr   error
	syncErr     error
}

func (f *commitFaultScript) Append(_ int, frame []byte) (int, error) { return len(frame), nil }
func (f *commitFaultScript) Truncate(int) error                      { return nil }
func (f *commitFaultScript) Sync(int) error                          { return nil }
func (f *commitFaultScript) Checkpoint(int, []byte) error            { return nil }
func (f *commitFaultScript) CommitAppend(buf []byte) (int, error) {
	if f.appendShort < 0 || f.appendShort > len(buf) {
		return len(buf), f.appendErr
	}
	return f.appendShort, f.appendErr
}
func (f *commitFaultScript) CommitSync() error { return f.syncErr }

// TestGroupCommitNothingAckedBeforeFsync fails the window's single fsync:
// every waiter in the window must see the error — an append is never acked
// until its window's fsync returned. The frames DID land in the commit log,
// so a reopen may legally resurrect the un-acked writes (un-acked writes
// may appear or vanish; they must never corrupt the log).
func TestGroupCommitNothingAckedBeforeFsync(t *testing.T) {
	dir := t.TempDir()
	fs := &commitFaultScript{appendShort: -1, syncErr: errNoSpace}
	w, err := Open(dir, Options{GroupCommit: true, Fault: fs})
	if err != nil {
		t.Fatal(err)
	}
	wait, err := w.AppendAsync(0, rec("a", "1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err == nil {
		t.Fatal("append acked although the commit fsync failed")
	}
	// Heal the disk: the next window must ack cleanly again.
	fs.syncErr = nil
	if err := w.Append(0, rec("b", "2")); err != nil {
		t.Fatalf("append after healed fsync: %v", err)
	}
	w.Close()

	w2 := openGroup(t, dir)
	defer w2.Close()
	_, recs := replay(t, w2, 0)
	if n := len(recs); n != 2 {
		t.Fatalf("recovered %d records, want 2 (un-acked frame landed before the failed fsync)", n)
	}
}

// TestGroupCommitShortBatchRollsBack lands a prefix of the commit batch and
// fails: the partial batch must be truncated away so later windows append
// to a clean commit log, and the failed append must not ack.
func TestGroupCommitShortBatchRollsBack(t *testing.T) {
	dir := t.TempDir()
	fs := &commitFaultScript{appendShort: 5, appendErr: errNoSpace}
	w, err := Open(dir, Options{GroupCommit: true, Fault: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, rec("a", "1")); err == nil {
		t.Fatal("append acked although the commit batch landed short")
	}
	fs.appendShort = -1
	fs.appendErr = nil
	if err := w.Append(0, rec("b", "2")); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	w.Close()

	// The stripe file still holds the un-acked "a" frame (it may legally
	// survive), but the commit log's clean prefix must replay without error
	// and include the acked "b".
	w2 := openGroup(t, dir)
	defer w2.Close()
	_, recs := replay(t, w2, 0)
	keys := map[string]bool{}
	for _, r := range recs {
		keys[r.Entry.Key] = true
	}
	if !keys["b"] {
		t.Fatalf("acked record b lost after short-batch rollback: %+v", recs)
	}
}

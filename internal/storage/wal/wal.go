// Package wal implements the log-structured file-per-stripe storage.Backend:
// each stripe owns an append-only log of length-prefixed, CRC-protected
// record frames plus a checkpoint file holding the stripe's latest binary
// snapshot. Appends are a single write to one file; restart replays the
// checkpoint and then the log tail.
//
// # On-disk layout
//
//	<dir>/shard-NNNN.wal   record log, a sequence of frames
//	<dir>/shard-NNNN.ckpt  latest checkpoint (kvstore binary shard snapshot)
//
//	frame   := uvarint(len(payload)) payload crc32c(payload)   // crc big-endian
//	payload := 0x01 entry            // set: encoding.AppendEntry bytes
//	         | 0x02                  // reset: clear the stripe
//
// # Crash safety
//
// A crash mid-append leaves a torn frame at the log tail: a truncated
// length prefix, a payload shorter than its prefix promises, or a CRC
// mismatch on the final frame. Open detects all three, truncates the log
// back to the last intact frame, and replay proceeds from clean state — the
// acknowledged prefix survives, the torn suffix (never acknowledged) is
// dropped. A CRC mismatch followed by further bytes cannot be a torn tail
// write and is reported as corruption instead of silently truncated.
//
// By default appends reach the OS buffer cache (durable across process
// crashes, not power loss); Options.Fsync syncs every append for full
// durability at a large throughput cost. Checkpoints always fsync and
// rename, whatever the option, so a half-written checkpoint can never
// replace a good one. Checkpoints written by this version carry a
// checksummed header (ckptMagic + CRC32-Castagnoli over the payload), so
// at-rest checkpoint damage is detected exactly like frame damage; files
// from before the header load unchecked.
//
// # Quarantine
//
// Corruption — damage that is provably not a torn tail — is scoped to the
// shard it lives in, never to the directory. Open records the damage (a
// *storage.CorruptError naming the file and byte offset) and keeps going:
// healthy shards recover and serve normally, while the damaged shard
// latches — appends and Compact return the corruption, and ReplayShard
// streams the intact prefix before reporting it, so a caller keeps every
// readable record. Checkpoint is the repair path: a fresh checkpoint holds
// the shard's full state, so it truncates the damaged log and clears the
// latch. VerifyShard is the scrub path: it re-reads a live shard's frames
// and checkpoint against their checksums and latches on damage, demoting
// bad sectors found long after Open.
//
// # Fault injection
//
// Options.Fault accepts a FaultInjector consulted before every physical
// write, rollback truncation, fsync and checkpoint. internal/storage/faultfs
// implements it with seeded, deterministic decisions — the disk-side
// counterpart of the chaosnet network fabric — so crash-and-corruption
// schedules replay exactly.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"versionstamp/internal/encoding"
	"versionstamp/internal/storage"
)

// Record payload kinds.
const (
	recSet   = 0x01
	recReset = 0x02
)

// maxRecordLen bounds a frame's payload so a corrupt length prefix cannot
// force an unbounded allocation.
const maxRecordLen = 1 << 30

// crcTable is the Castagnoli polynomial, the standard choice for storage
// checksums (hardware-accelerated on common CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports log damage that cannot be a torn tail write — a bad
// frame with intact frames after it, a checksummed payload that does not
// decode, or a checkpoint failing its checksum. Torn tails are repaired
// silently; corruption never is — it is scoped to its shard (see the
// package comment on quarantine) and reported as a *storage.CorruptError
// wrapping this sentinel.
var ErrCorrupt = errors.New("wal: corrupt log")

// ckptMagic heads checksummed checkpoint files: the magic, a big-endian
// CRC32-Castagnoli of the payload, then the payload. Chosen to collide with
// neither JSON ('{') nor the kvstore binary snapshot version byte, so
// legacy headerless checkpoints sniff apart cleanly.
const ckptMagic = "WCK1"

// FaultInjector intercepts the WAL's physical operations, letting
// internal/storage/faultfs inject deterministic disk faults under tests and
// chaos scenarios. Every method is called with the shard's mutex held, so
// per-shard call order is exactly operation order. Nil (the default) is a
// healthy disk.
type FaultInjector interface {
	// Append is consulted before a frame write. Return (len(frame), nil) to
	// let the whole frame land; (n, err) with 0 <= n < len(frame) lands only
	// frame[:n] — a short write, ENOSPC mid-frame — and fails the append
	// with err after the partial frame is on disk, exercising the rollback
	// path. (0, err) is a clean failure with nothing written.
	Append(shard int, frame []byte) (int, error)
	// Truncate is consulted before the rollback truncation that removes a
	// partial frame; an error simulates a rollback that cannot complete, so
	// the shard latches read-only until a checkpoint or compact heals it.
	Truncate(shard int) error
	// Sync is consulted before an fsync; an error fails the append after its
	// bytes landed (durability in doubt, frames intact).
	Sync(shard int) error
	// Checkpoint is consulted before a checkpoint write; an error fails the
	// checkpoint before anything on disk is replaced.
	Checkpoint(shard int, snapshot []byte) error
}

// Options configures a WAL.
type Options struct {
	// Fsync syncs the log file after every append. Off by default: appends
	// then survive process crashes (the OS holds the bytes) but not power
	// loss.
	Fsync bool
	// Fault, when non-nil, intercepts physical operations for deterministic
	// fault injection (see FaultInjector and internal/storage/faultfs).
	Fault FaultInjector
}

// WAL is the file-per-stripe backend. Safe for concurrent use; operations
// on the same shard serialize on the shard's mutex.
type WAL struct {
	dir   string
	fsync bool
	fault FaultInjector // nil = healthy disk
	lock  *os.File      // advisory directory lock, released by Close (or process death)

	mu     sync.Mutex
	shards map[int]*walShard
	closed bool
}

type walShard struct {
	mu     sync.Mutex
	f      *os.File // append handle, opened lazily
	size   int64    // current log length, maintained so a partial write can be undone
	failed error    // set when a partial frame could not be rolled back: shard read-only
	// quar records proven corruption scoped to this shard: appends and
	// Compact refuse with it, ReplayShard streams the intact prefix then
	// reports it, and Checkpoint (whose snapshot supersedes the damaged
	// bytes) clears it.
	quar *storage.CorruptError
}

// Open prepares dir (creating it if needed), takes the directory's
// advisory lock — two live processes appending to the same logs would
// destroy each other's acknowledged writes — and recovers every existing
// shard log: torn tail frames are truncated away here, once, so appends
// can never land after garbage. Mid-log corruption does not fail the open:
// the damaged shard is quarantined (file and byte offset recorded) and
// every other shard recovers normally. The lock dies with the process; a
// crashed owner never blocks the next Open.
func Open(dir string, opts Options) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, fsync: opts.Fsync, fault: opts.Fault, lock: lock, shards: make(map[int]*walShard)}
	logs, err := filepath.Glob(filepath.Join(dir, "shard-*.wal"))
	if err != nil {
		_ = w.unlock()
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, path := range logs {
		off, err := recoverLog(path)
		if err == nil {
			continue
		}
		shard, ok := shardFromPath(path)
		if !ok || !errors.Is(err, ErrCorrupt) {
			// An unparsable name or a plain I/O failure is not shard-scoped
			// damage; refuse the directory as before.
			_ = w.unlock()
			return nil, err
		}
		w.shards[shard] = &walShard{quar: &storage.CorruptError{
			Shard: shard, Path: path, Offset: off, Err: err,
		}}
	}
	return w, nil
}

// shardFromPath parses the shard index out of a shard-NNNN.wal path.
func shardFromPath(path string) (int, bool) {
	base := strings.TrimSuffix(filepath.Base(path), ".wal")
	base = strings.TrimPrefix(base, "shard-")
	n, err := strconv.Atoi(base)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func (w *WAL) unlock() error {
	if w.lock == nil {
		return nil
	}
	err := w.lock.Close() // closing drops the flock
	w.lock = nil
	return err
}

// LogPath returns the shard's log file path under dir. Exported for fault
// injectors and tools that damage or inspect logs from outside the WAL.
func LogPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", shard))
}

// CheckpointPath returns the shard's checkpoint file path under dir.
func CheckpointPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.ckpt", shard))
}

func (w *WAL) logPath(shard int) string  { return LogPath(w.dir, shard) }
func (w *WAL) ckptPath(shard int) string { return CheckpointPath(w.dir, shard) }

// corrupt quarantines sh with a damage report and returns it. Callers hold
// sh.mu.
func corrupt(sh *walShard, shard int, path string, off int64, err error) *storage.CorruptError {
	var ce *storage.CorruptError
	if errors.As(err, &ce) {
		sh.quar = ce
		return ce
	}
	ce = &storage.CorruptError{Shard: shard, Path: path, Offset: off, Err: err}
	sh.quar = ce
	return ce
}

// wrapCheckpoint prefixes payload with the checksummed checkpoint header.
func wrapCheckpoint(payload []byte) []byte {
	out := make([]byte, 0, len(ckptMagic)+4+len(payload))
	out = append(out, ckptMagic...)
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// unwrapCheckpoint strips and verifies the checkpoint header. Files without
// the magic predate the header and load unchecked (their payload is still
// sanity-checked by the snapshot decoder above).
func unwrapCheckpoint(data []byte) ([]byte, error) {
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return data, nil
	}
	if len(data) < len(ckptMagic)+4 {
		return nil, fmt.Errorf("%w: truncated checkpoint header", ErrCorrupt)
	}
	crc := binary.BigEndian.Uint32(data[len(ckptMagic):])
	payload := data[len(ckptMagic)+4:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("%w: checkpoint checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// shard returns (creating if needed) the per-shard state, with its mutex
// already held. Callers must Unlock it.
func (w *WAL) shard(i int) (*walShard, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, errors.New("wal: closed")
	}
	sh, ok := w.shards[i]
	if !ok {
		sh = &walShard{}
		w.shards[i] = sh
	}
	w.mu.Unlock()
	sh.mu.Lock()
	return sh, nil
}

// appendFrame encodes rec as one frame.
func appendFrame(dst []byte, rec storage.Record) []byte {
	var payload []byte
	if rec.Reset {
		payload = []byte{recReset}
	} else {
		payload = append(make([]byte, 0, 64), recSet)
		payload = encoding.AppendEntry(payload, rec.Entry)
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
}

// decodePayload parses one checksummed payload into a Record. A payload that
// passes its CRC but does not decode is corruption, never a torn write.
func decodePayload(payload []byte) (storage.Record, error) {
	if len(payload) == 0 {
		return storage.Record{}, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	switch payload[0] {
	case recReset:
		if len(payload) != 1 {
			return storage.Record{}, fmt.Errorf("%w: reset record with body", ErrCorrupt)
		}
		return storage.Record{Reset: true}, nil
	case recSet:
		e, used, err := encoding.DecodeEntry(payload[1:])
		if err != nil {
			return storage.Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if used != len(payload)-1 {
			return storage.Record{}, fmt.Errorf("%w: %d trailing record bytes", ErrCorrupt, len(payload)-1-used)
		}
		return storage.Record{Entry: e}, nil
	default:
		return storage.Record{}, fmt.Errorf("%w: unknown record kind 0x%02x", ErrCorrupt, payload[0])
	}
}

// scanLog walks the frames of data, calling fn (when non-nil) with each
// intact record and its frame's byte offset, and returns the offset of the
// first byte that is not part of an intact frame — len(data) for a clean
// log. A damaged frame that runs to the end of data is a torn tail (valid
// stops before it); a damaged frame with bytes after it is corruption.
func scanLog(data []byte, fn func(off int, rec storage.Record) error) (valid int, err error) {
	off := 0
	for off < len(data) {
		n, used := binary.Uvarint(data[off:])
		if used <= 0 {
			// Unterminated or overlong varint. An unterminated one at the
			// very tail is a torn length prefix; anything else is corruption.
			if used == 0 && len(data)-off < binary.MaxVarintLen64 {
				return off, nil
			}
			return off, fmt.Errorf("%w: bad frame length at offset %d", ErrCorrupt, off)
		}
		frameEnd := off + used + int(n) + 4
		if n > maxRecordLen {
			return off, fmt.Errorf("%w: %d-byte frame at offset %d", ErrCorrupt, n, off)
		}
		if frameEnd > len(data) {
			return off, nil // torn tail: the frame never finished writing
		}
		payload := data[off+used : off+used+int(n)]
		crc := binary.BigEndian.Uint32(data[frameEnd-4 : frameEnd])
		if crc32.Checksum(payload, crcTable) != crc {
			if frameEnd == len(data) {
				return off, nil // torn tail: final frame half-flushed
			}
			return off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return off, fmt.Errorf("%w (offset %d)", err, off)
		}
		if fn != nil {
			if err := fn(off, rec); err != nil {
				return off, err
			}
		}
		off = frameEnd
	}
	return off, nil
}

// recoverLog truncates path back to its last intact frame. Corruption
// (damage that is provably not a torn tail) is returned, not repaired; the
// returned offset is where the damage starts.
func recoverLog(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: %w", err)
	}
	valid, err := scanLog(data, nil)
	if err != nil {
		return int64(valid), err
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return int64(valid), fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	return int64(valid), nil
}

// Append logs one record for the shard. A failed or short write is rolled
// back by truncating the log to its pre-append length: without that, the
// partial frame would sit between intact frames once later appends succeed,
// and the next open would refuse the shard as corrupt instead of recovering
// a torn tail. A quarantined shard refuses appends outright — nothing may
// land after damaged bytes.
func (w *WAL) Append(shard int, rec storage.Record) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	if sh.quar != nil {
		return sh.quar
	}
	if sh.failed != nil {
		return sh.failed
	}
	if sh.f == nil {
		f, err := os.OpenFile(w.logPath(shard), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		sh.f, sh.size = f, fi.Size()
	}
	frame := appendFrame(make([]byte, 0, 64), rec)
	allow, injected := len(frame), error(nil)
	if w.fault != nil {
		allow, injected = w.fault.Append(shard, frame)
		if allow < 0 {
			allow = 0
		}
		if allow > len(frame) {
			allow = len(frame)
		}
	}
	var n int
	var werr error
	if allow > 0 {
		n, werr = sh.f.Write(frame[:allow])
	}
	if werr == nil {
		werr = injected
	}
	if werr != nil || n < len(frame) {
		if werr == nil {
			werr = io.ErrShortWrite
		}
		if n == 0 {
			// Nothing landed; the log is exactly as it was.
			return fmt.Errorf("wal: append shard %d: %w", shard, werr)
		}
		terr := error(nil)
		if w.fault != nil {
			terr = w.fault.Truncate(shard)
		}
		if terr == nil {
			terr = sh.f.Truncate(sh.size)
		}
		if terr != nil {
			// The partial frame cannot be removed, and appending after it
			// would read as mid-log corruption on the next open. Latch the
			// shard read-only; the next open recovers the torn tail.
			sh.failed = fmt.Errorf("wal: shard %d latched after unremovable partial frame: %w", shard, werr)
			_ = sh.f.Close()
			sh.f = nil
			return sh.failed
		}
		return fmt.Errorf("wal: append shard %d: %w", shard, werr)
	}
	sh.size += int64(len(frame))
	if w.fsync {
		if w.fault != nil {
			if err := w.fault.Sync(shard); err != nil {
				return fmt.Errorf("wal: sync shard %d: %w", shard, err)
			}
		}
		if err := sh.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync shard %d: %w", shard, err)
		}
	}
	return nil
}

// ReplayShard streams the shard's checkpoint, then its log records. On a
// damaged shard it still streams everything intact — the checkpoint if its
// checksum holds, then every log frame before the damage — and only then
// returns the *storage.CorruptError, so a caller keeps the readable prefix
// and can quarantine the shard instead of losing it.
func (w *WAL) ReplayShard(shard int, ckpt func([]byte) error, rec func(storage.Record) error) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	damage := sh.quar
	snap, err := os.ReadFile(w.ckptPath(shard))
	switch {
	case err == nil:
		payload, cerr := unwrapCheckpoint(snap)
		if cerr != nil {
			if damage == nil {
				damage = corrupt(sh, shard, w.ckptPath(shard), 0, cerr)
			}
		} else if ckpt != nil {
			if err := ckpt(payload); err != nil {
				return err
			}
		}
	case !errors.Is(err, fs.ErrNotExist):
		return fmt.Errorf("wal: %w", err)
	}
	data, err := os.ReadFile(w.logPath(shard))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			if damage != nil {
				return damage
			}
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	valid, err := scanLog(data, func(_ int, r storage.Record) error {
		if rec == nil {
			return nil
		}
		return rec(r)
	})
	if err != nil {
		if !errors.Is(err, ErrCorrupt) {
			return err // a rec callback error, not log damage
		}
		if damage == nil {
			damage = corrupt(sh, shard, w.logPath(shard), int64(valid), err)
		}
		return damage
	}
	if valid < len(data) && sh.quar == nil {
		// A torn tail can only appear here if the file was damaged after
		// Open's recovery pass; repair it the same way.
		if err := os.Truncate(w.logPath(shard), int64(valid)); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if damage != nil {
		return damage
	}
	return nil
}

// Checkpoint atomically replaces the shard's checkpoint and truncates its
// log. The snapshot lands via write-to-temp, fsync, rename, so a crash
// leaves either the old checkpoint or the new one, never a torn file; the
// log is truncated only after the rename is durable. Checkpoint is also the
// repair path: the snapshot supersedes whatever the damaged log held, so a
// quarantined or latched shard comes back healthy.
func (w *WAL) Checkpoint(shard int, snapshot []byte) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	if w.fault != nil {
		if err := w.fault.Checkpoint(shard, snapshot); err != nil {
			return fmt.Errorf("wal: checkpoint shard %d: %w", shard, err)
		}
	}
	path := w.ckptPath(shard)
	if err := WriteFileAtomic(path, wrapCheckpoint(snapshot)); err != nil {
		return err
	}
	if sh.f != nil {
		if err := sh.f.Truncate(0); err != nil {
			return fmt.Errorf("wal: truncate log %d: %w", shard, err)
		}
	} else if err := os.Truncate(w.logPath(shard), 0); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("wal: truncate log %d: %w", shard, err)
	}
	// The checkpoint holds everything the log did (and more): the log is
	// empty again and a previously latched or quarantined shard is healthy.
	sh.size, sh.failed, sh.quar = 0, nil, nil
	return nil
}

// Compact rewrites the shard's log keeping only the records replay still
// needs (storage.CompactRecords), atomically via temp file and rename. A
// quarantined shard refuses — compaction would silently discard the damage
// report; repair goes through Checkpoint.
func (w *WAL) Compact(shard int) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	if sh.quar != nil {
		return sh.quar
	}
	data, err := os.ReadFile(w.logPath(shard))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	var records []storage.Record
	if valid, err := scanLog(data, func(_ int, r storage.Record) error {
		records = append(records, r)
		return nil
	}); err != nil {
		return corrupt(sh, shard, w.logPath(shard), int64(valid), err)
	}
	var out []byte
	for _, r := range storage.CompactRecords(records) {
		out = appendFrame(out, r)
	}
	if err := WriteFileAtomic(w.logPath(shard), out); err != nil {
		return err
	}
	// The rewrite dropped any torn tail, so a latched shard is healthy again.
	sh.failed = nil
	// The old append handle points at the replaced inode; reopen lazily
	// (the reopen re-stats the rewritten file's length).
	if sh.f != nil {
		err := sh.f.Close()
		sh.f = nil
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}

// VerifyShard is the scrub path (storage.Verifier): it re-reads the shard's
// checkpoint against its checksum and every log frame against its CRC,
// without mutating anything. Damage quarantines the shard — a live stripe
// demotes the moment a bad sector is found, not at the next restart — and
// returns the *storage.CorruptError. A torn log tail is not damage (Open
// and ReplayShard repair those silently); neither is a missing file.
func (w *WAL) VerifyShard(shard int) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	if sh.quar != nil {
		return sh.quar
	}
	snap, err := os.ReadFile(w.ckptPath(shard))
	switch {
	case err == nil:
		if _, cerr := unwrapCheckpoint(snap); cerr != nil {
			return corrupt(sh, shard, w.ckptPath(shard), 0, cerr)
		}
	case !errors.Is(err, fs.ErrNotExist):
		return fmt.Errorf("wal: %w", err)
	}
	data, err := os.ReadFile(w.logPath(shard))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	if valid, err := scanLog(data, nil); err != nil {
		return corrupt(sh, shard, w.logPath(shard), int64(valid), err)
	}
	return nil
}

// Quarantined returns the damage report of every quarantined shard, keyed
// by shard index. Shards quarantine at Open (mid-log corruption), replay
// (checkpoint damage) or scrub (VerifyShard on a live stripe).
func (w *WAL) Quarantined() map[int]*storage.CorruptError {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[int]*storage.CorruptError)
	for i, sh := range w.shards {
		sh.mu.Lock()
		if sh.quar != nil {
			out[i] = sh.quar
		}
		sh.mu.Unlock()
	}
	return out
}

// FrameOffsets scans path's log and returns the byte offset of every intact
// frame, oldest first — the targeting map for fault injectors that flip
// bits in a chosen frame. Damage and torn tails are not errors here; only
// the intact prefix's frames return.
func FrameOffsets(path string) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var offs []int64
	_, _ = scanLog(data, func(off int, _ storage.Record) error {
		offs = append(offs, int64(off))
		return nil
	})
	return offs, nil
}

// Close releases every append handle. It does not checkpoint.
func (w *WAL) Close() error {
	w.mu.Lock()
	shards := w.shards
	w.shards = nil
	w.closed = true
	w.mu.Unlock()
	var first error
	for _, sh := range shards {
		sh.mu.Lock()
		if sh.f != nil {
			if err := sh.f.Close(); err != nil && first == nil {
				first = fmt.Errorf("wal: %w", err)
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	if err := w.unlock(); err != nil && first == nil {
		first = fmt.Errorf("wal: %w", err)
	}
	return first
}

// WriteFileAtomic writes data to path so a crash leaves either the old
// content or the new, never a torn file: temp file in the same directory,
// fsync, rename over the target, fsync the directory (a rename is not
// durable until its directory is). Exported for callers persisting small
// metadata next to a WAL.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// A rename is durable only once the containing directory is synced;
	// without this, a power loss could keep a later log truncation while
	// losing the checkpoint the truncation depended on.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

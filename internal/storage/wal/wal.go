// Package wal implements the log-structured file-per-stripe storage.Backend:
// each stripe owns an append-only log of length-prefixed, CRC-protected
// record frames plus a checkpoint file holding the stripe's latest binary
// snapshot. Appends are a single write to one file; restart replays the
// checkpoint and then the log tail.
//
// # On-disk layout
//
//	<dir>/shard-NNNN.wal   record log, a sequence of frames
//	<dir>/shard-NNNN.ckpt  latest checkpoint (kvstore binary shard snapshot)
//	<dir>/commit.wal       group-commit log (GroupCommit mode only)
//
//	frame   := uvarint(len(payload)) payload crc32c(payload)   // crc big-endian
//	payload := 0x01 entry            // set: encoding.AppendEntry bytes
//	         | 0x02                  // reset: clear the stripe
//	         | 0x03 uvarint(shard) uvarint(off) raw-frame      // commit.wal only
//
// # Group commit
//
// With Options.GroupCommit, appends stop fsyncing their stripe file inline.
// Instead each append writes its frame to the stripe log (no sync), then
// registers the raw frame bytes with a shared committer and receives a wait
// function — the commit barrier. The committer coalesces all registrations
// arriving within a short window (bounded by Options.CommitWindow), writes
// one batch of commit frames — each carrying the shard, the frame's offset
// in its stripe log, and the frame bytes themselves — to the single shared
// commit.wal, issues ONE fsync for the whole window, and releases every
// waiter. Nothing may be acknowledged before its wait returns nil: the
// record is then durable in commit.wal even if its stripe file's bytes are
// still in the page cache.
//
// Recovery makes the redundancy whole: Open first recovers every stripe log
// (torn tails truncated as always), then scans commit.wal in order and
// re-appends ("materializes") any frame whose recorded offset equals its
// stripe log's current end — exactly the frames the crash took from the
// un-synced stripe files. Materialized stripes are fsynced and commit.wal
// is truncated, so the ordinary checkpoint + log-tail replay machinery runs
// over complete stripe logs and never sees the commit log at all.
//
// Checkpoint and Compact rotate first — fsync every stripe file the
// committer dirtied, then truncate and fsync commit.wal — so no stale
// commit frame can outlive the log truncation it refers into; the commit
// log also rotates in the background when it exceeds Options.CommitLogCap.
//
// # Crash safety
//
// A crash mid-append leaves a torn frame at the log tail: a truncated
// length prefix, a payload shorter than its prefix promises, or a CRC
// mismatch on the final frame. Open detects all three, truncates the log
// back to the last intact frame, and replay proceeds from clean state — the
// acknowledged prefix survives, the torn suffix (never acknowledged) is
// dropped. A CRC mismatch followed by further bytes cannot be a torn tail
// write and is reported as corruption instead of silently truncated.
//
// By default appends reach the OS buffer cache (durable across process
// crashes, not power loss); Options.Fsync syncs every append for full
// durability at a large throughput cost. Checkpoints always fsync and
// rename, whatever the option, so a half-written checkpoint can never
// replace a good one. Checkpoints written by this version carry a
// checksummed header (ckptMagic + CRC32-Castagnoli over the payload), so
// at-rest checkpoint damage is detected exactly like frame damage; files
// from before the header load unchecked.
//
// # Quarantine
//
// Corruption — damage that is provably not a torn tail — is scoped to the
// shard it lives in, never to the directory. Open records the damage (a
// *storage.CorruptError naming the file and byte offset) and keeps going:
// healthy shards recover and serve normally, while the damaged shard
// latches — appends and Compact return the corruption, and ReplayShard
// streams the intact prefix before reporting it, so a caller keeps every
// readable record. Checkpoint is the repair path: a fresh checkpoint holds
// the shard's full state, so it truncates the damaged log and clears the
// latch. VerifyShard is the scrub path: it re-reads a live shard's frames
// and checkpoint against their checksums and latches on damage, demoting
// bad sectors found long after Open.
//
// # Fault injection
//
// Options.Fault accepts a FaultInjector consulted before every physical
// write, rollback truncation, fsync and checkpoint. internal/storage/faultfs
// implements it with seeded, deterministic decisions — the disk-side
// counterpart of the chaosnet network fabric — so crash-and-corruption
// schedules replay exactly.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"versionstamp/internal/encoding"
	"versionstamp/internal/storage"
)

// Record payload kinds.
const (
	recSet    = 0x01
	recReset  = 0x02
	recCommit = 0x03 // commit.wal only: uvarint(shard) uvarint(off) raw frame
)

// commitLogName is the shared group-commit log file under the WAL dir.
const commitLogName = "commit.wal"

// Group-commit defaults.
const (
	defaultCommitWindow = 150 * time.Microsecond
	defaultCommitLogCap = 64 << 20
)

// maxRecordLen bounds a frame's payload so a corrupt length prefix cannot
// force an unbounded allocation.
const maxRecordLen = 1 << 30

// crcTable is the Castagnoli polynomial, the standard choice for storage
// checksums (hardware-accelerated on common CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports log damage that cannot be a torn tail write — a bad
// frame with intact frames after it, a checksummed payload that does not
// decode, or a checkpoint failing its checksum. Torn tails are repaired
// silently; corruption never is — it is scoped to its shard (see the
// package comment on quarantine) and reported as a *storage.CorruptError
// wrapping this sentinel.
var ErrCorrupt = errors.New("wal: corrupt log")

// ckptMagic heads checksummed checkpoint files: the magic, a big-endian
// CRC32-Castagnoli of the payload, then the payload. Chosen to collide with
// neither JSON ('{') nor the kvstore binary snapshot version byte, so
// legacy headerless checkpoints sniff apart cleanly.
const ckptMagic = "WCK1"

// FaultInjector intercepts the WAL's physical operations, letting
// internal/storage/faultfs inject deterministic disk faults under tests and
// chaos scenarios. Every method is called with the shard's mutex held, so
// per-shard call order is exactly operation order. Nil (the default) is a
// healthy disk.
type FaultInjector interface {
	// Append is consulted before a frame write. Return (len(frame), nil) to
	// let the whole frame land; (n, err) with 0 <= n < len(frame) lands only
	// frame[:n] — a short write, ENOSPC mid-frame — and fails the append
	// with err after the partial frame is on disk, exercising the rollback
	// path. (0, err) is a clean failure with nothing written.
	Append(shard int, frame []byte) (int, error)
	// Truncate is consulted before the rollback truncation that removes a
	// partial frame; an error simulates a rollback that cannot complete, so
	// the shard latches read-only until a checkpoint or compact heals it.
	Truncate(shard int) error
	// Sync is consulted before an fsync; an error fails the append after its
	// bytes landed (durability in doubt, frames intact).
	Sync(shard int) error
	// Checkpoint is consulted before a checkpoint write; an error fails the
	// checkpoint before anything on disk is replaced.
	Checkpoint(shard int, snapshot []byte) error
}

// CommitFaultInjector optionally extends FaultInjector with the
// group-commit pipeline's physical operations. Injectors that do not
// implement it run group commit fault-free.
type CommitFaultInjector interface {
	FaultInjector
	// CommitAppend is consulted before a window's batch of commit frames is
	// written to the shared commit log; the short-write semantics match
	// FaultInjector.Append (the partial batch is rolled back by truncation,
	// and a failed rollback latches the committer until rotation heals it).
	CommitAppend(buf []byte) (int, error)
	// CommitSync is consulted before the commit-log fsync that releases a
	// window's waiters; an error fails every append in the window.
	CommitSync() error
}

// Options configures a WAL.
type Options struct {
	// Fsync syncs the log file after every append. Off by default: appends
	// then survive process crashes (the OS holds the bytes) but not power
	// loss.
	Fsync bool
	// GroupCommit turns on the group-commit pipeline (see the package
	// comment): appends become durable through the shared commit log's
	// batched fsync instead of a per-append stripe-file sync, and callers
	// that can overlap writers should use AppendAsync to share windows.
	// Implies full power-loss durability like Fsync, at a fraction of the
	// fsync count.
	GroupCommit bool
	// CommitWindow bounds how long the committer waits for a window's batch
	// to stop growing before flushing it (default 150µs). Larger windows
	// trade single-writer latency for bigger batches.
	CommitWindow time.Duration
	// CommitLogCap rotates the shared commit log once it exceeds this many
	// bytes (default 64 MiB).
	CommitLogCap int64
	// Fault, when non-nil, intercepts physical operations for deterministic
	// fault injection (see FaultInjector and internal/storage/faultfs).
	Fault FaultInjector
}

// WAL is the file-per-stripe backend. Safe for concurrent use; operations
// on the same shard serialize on the shard's mutex.
type WAL struct {
	dir   string
	fsync bool
	fault FaultInjector // nil = healthy disk
	group *committer    // nil unless Options.GroupCommit
	lock  *os.File      // advisory directory lock, released by Close (or process death)

	mu     sync.Mutex
	shards map[int]*walShard
	closed bool
}

type walShard struct {
	mu     sync.Mutex
	f      *os.File // append handle, opened lazily
	size   int64    // current log length, maintained so a partial write can be undone
	failed error    // set when a partial frame could not be rolled back: shard read-only
	// quar records proven corruption scoped to this shard: appends and
	// Compact refuse with it, ReplayShard streams the intact prefix then
	// reports it, and Checkpoint (whose snapshot supersedes the damaged
	// bytes) clears it.
	quar *storage.CorruptError

	// Paging state (storage.Pager): generations guard outstanding value
	// locations against log truncation (logGen: Checkpoint, Compact) and
	// checkpoint replacement (ckptGen); the read handles serve point preads
	// and are closed whenever their file is truncated or replaced.
	logGen   uint32
	ckptGen  uint32
	ckptBase int64    // byte offset of the checkpoint payload past the header
	rf       *os.File // log read handle, opened lazily
	cf       *os.File // checkpoint read handle, opened lazily
}

// dropReadHandles closes the shard's pread handles; callers hold sh.mu and
// bump the matching generation so outstanding locations die with them.
func (sh *walShard) dropReadHandles(log, ckpt bool) {
	if log && sh.rf != nil {
		_ = sh.rf.Close()
		sh.rf = nil
	}
	if ckpt && sh.cf != nil {
		_ = sh.cf.Close()
		sh.cf = nil
	}
}

// Open prepares dir (creating it if needed), takes the directory's
// advisory lock — two live processes appending to the same logs would
// destroy each other's acknowledged writes — and recovers every existing
// shard log: torn tail frames are truncated away here, once, so appends
// can never land after garbage. Mid-log corruption does not fail the open:
// the damaged shard is quarantined (file and byte offset recorded) and
// every other shard recovers normally. The lock dies with the process; a
// crashed owner never blocks the next Open.
func Open(dir string, opts Options) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, fsync: opts.Fsync, fault: opts.Fault, lock: lock, shards: make(map[int]*walShard)}
	logs, err := filepath.Glob(filepath.Join(dir, "shard-*.wal"))
	if err != nil {
		_ = w.unlock()
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, path := range logs {
		off, err := recoverLog(path)
		if err == nil {
			continue
		}
		shard, ok := shardFromPath(path)
		if !ok || !errors.Is(err, ErrCorrupt) {
			// An unparsable name or a plain I/O failure is not shard-scoped
			// damage; refuse the directory as before.
			_ = w.unlock()
			return nil, err
		}
		w.shards[shard] = &walShard{quar: &storage.CorruptError{
			Shard: shard, Path: path, Offset: off, Err: err,
		}}
	}
	if opts.GroupCommit {
		window := opts.CommitWindow
		if window <= 0 {
			window = defaultCommitWindow
		}
		cap := opts.CommitLogCap
		if cap <= 0 {
			cap = defaultCommitLogCap
		}
		w.group = &committer{w: w, window: window, cap: cap, dirty: make(map[int]bool)}
		if err := w.recoverCommitLog(); err != nil {
			_ = w.unlock()
			return nil, err
		}
	}
	return w, nil
}

// commitLogPath returns the shared commit log's path.
func (w *WAL) commitLogPath() string { return filepath.Join(w.dir, commitLogName) }

// recoverCommitLog replays the shared commit log into the stripe logs: any
// commit frame whose recorded offset equals its stripe log's current end is
// the next frame that stripe lost to the crash, so its raw bytes are
// appended ("materialized") there; frames already present (offset below the
// end) or dangling past a later truncation (offset beyond the end) are
// skipped. Materialized logs are fsynced, then the commit log truncates.
// Damage that is provably not a torn commit-log tail fails the open — the
// commit log is shared across stripes, so its corruption cannot be
// quarantined to one.
func (w *WAL) recoverCommitLog() error {
	path := w.commitLogPath()
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	sizes := make(map[int]int64)    // stripe log ends, tracked as we materialize
	files := make(map[int]*os.File) // append handles for materialized stripes
	defer func() {
		for _, f := range files {
			_ = f.Close()
		}
	}()
	logSize := func(shard int) (int64, error) {
		if sz, ok := sizes[shard]; ok {
			return sz, nil
		}
		fi, err := os.Stat(w.logPath(shard))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				sizes[shard] = 0
				return 0, nil
			}
			return 0, err
		}
		sizes[shard] = fi.Size()
		return fi.Size(), nil
	}
	valid, err := scanFrames(data, func(off int, payload []byte) error {
		if len(payload) == 0 || payload[0] != recCommit {
			return fmt.Errorf("%w: bad commit record at offset %d", ErrCorrupt, off)
		}
		rest := payload[1:]
		shard, used := binary.Uvarint(rest)
		if used <= 0 || shard > 1<<20 {
			return fmt.Errorf("%w: bad commit shard at offset %d", ErrCorrupt, off)
		}
		rest = rest[used:]
		stripeOff, used := binary.Uvarint(rest)
		if used <= 0 {
			return fmt.Errorf("%w: bad commit offset at offset %d", ErrCorrupt, off)
		}
		raw := rest[used:]
		si := int(shard)
		if sh := w.shards[si]; sh != nil && sh.quar != nil {
			return nil // nothing may land after a quarantined stripe's damage
		}
		cur, err := logSize(si)
		if err != nil {
			return err
		}
		if int64(stripeOff) != cur {
			return nil // already present, or dangling past a truncation
		}
		f, ok := files[si]
		if !ok {
			f, err = os.OpenFile(w.logPath(si), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			files[si] = f
		}
		if _, err := f.Write(raw); err != nil {
			return err
		}
		sizes[si] = cur + int64(len(raw))
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			return &storage.CorruptError{Shard: -1, Path: path, Offset: int64(valid), Err: err}
		}
		return fmt.Errorf("wal: recover commit log: %w", err)
	}
	for _, f := range files {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: recover commit log: %w", err)
		}
	}
	// The stripe logs now hold everything the commit log promised; empty it
	// durably so stale commit frames can never materialize twice.
	if err := os.Truncate(path, 0); err != nil {
		return fmt.Errorf("wal: recover commit log: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: recover commit log: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: recover commit log: %w", err)
	}
	return nil
}

// shardFromPath parses the shard index out of a shard-NNNN.wal path.
func shardFromPath(path string) (int, bool) {
	base := strings.TrimSuffix(filepath.Base(path), ".wal")
	base = strings.TrimPrefix(base, "shard-")
	n, err := strconv.Atoi(base)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func (w *WAL) unlock() error {
	if w.lock == nil {
		return nil
	}
	err := w.lock.Close() // closing drops the flock
	w.lock = nil
	return err
}

// LogPath returns the shard's log file path under dir. Exported for fault
// injectors and tools that damage or inspect logs from outside the WAL.
func LogPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", shard))
}

// CheckpointPath returns the shard's checkpoint file path under dir.
func CheckpointPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.ckpt", shard))
}

func (w *WAL) logPath(shard int) string  { return LogPath(w.dir, shard) }
func (w *WAL) ckptPath(shard int) string { return CheckpointPath(w.dir, shard) }

// corrupt quarantines sh with a damage report and returns it. Callers hold
// sh.mu.
func corrupt(sh *walShard, shard int, path string, off int64, err error) *storage.CorruptError {
	var ce *storage.CorruptError
	if errors.As(err, &ce) {
		sh.quar = ce
		return ce
	}
	ce = &storage.CorruptError{Shard: shard, Path: path, Offset: off, Err: err}
	sh.quar = ce
	return ce
}

// wrapCheckpoint prefixes payload with the checksummed checkpoint header.
func wrapCheckpoint(payload []byte) []byte {
	out := make([]byte, 0, len(ckptMagic)+4+len(payload))
	out = append(out, ckptMagic...)
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// unwrapCheckpoint strips and verifies the checkpoint header. Files without
// the magic predate the header and load unchecked (their payload is still
// sanity-checked by the snapshot decoder above).
func unwrapCheckpoint(data []byte) ([]byte, error) {
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return data, nil
	}
	if len(data) < len(ckptMagic)+4 {
		return nil, fmt.Errorf("%w: truncated checkpoint header", ErrCorrupt)
	}
	crc := binary.BigEndian.Uint32(data[len(ckptMagic):])
	payload := data[len(ckptMagic)+4:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("%w: checkpoint checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// shard returns (creating if needed) the per-shard state, with its mutex
// already held. Callers must Unlock it.
func (w *WAL) shard(i int) (*walShard, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, errors.New("wal: closed")
	}
	sh, ok := w.shards[i]
	if !ok {
		sh = &walShard{}
		w.shards[i] = sh
	}
	w.mu.Unlock()
	sh.mu.Lock()
	return sh, nil
}

// appendFrame encodes rec as one frame.
func appendFrame(dst []byte, rec storage.Record) []byte {
	var payload []byte
	if rec.Reset {
		payload = []byte{recReset}
	} else {
		payload = append(make([]byte, 0, 64), recSet)
		payload = encoding.AppendEntry(payload, rec.Entry)
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
}

// decodePayload parses one checksummed payload into a Record. A payload that
// passes its CRC but does not decode is corruption, never a torn write.
func decodePayload(payload []byte) (storage.Record, error) {
	if len(payload) == 0 {
		return storage.Record{}, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	switch payload[0] {
	case recReset:
		if len(payload) != 1 {
			return storage.Record{}, fmt.Errorf("%w: reset record with body", ErrCorrupt)
		}
		return storage.Record{Reset: true}, nil
	case recSet:
		e, used, err := encoding.DecodeEntry(payload[1:])
		if err != nil {
			return storage.Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if used != len(payload)-1 {
			return storage.Record{}, fmt.Errorf("%w: %d trailing record bytes", ErrCorrupt, len(payload)-1-used)
		}
		return storage.Record{Entry: e}, nil
	default:
		return storage.Record{}, fmt.Errorf("%w: unknown record kind 0x%02x", ErrCorrupt, payload[0])
	}
}

// scanFrames walks the frames of data, calling fn (when non-nil) with each
// intact payload and its frame's byte offset, and returns the offset of the
// first byte that is not part of an intact frame — len(data) for a clean
// log. A damaged frame that runs to the end of data is a torn tail (valid
// stops before it); a damaged frame with bytes after it is corruption.
func scanFrames(data []byte, fn func(off int, payload []byte) error) (valid int, err error) {
	off := 0
	for off < len(data) {
		n, used := binary.Uvarint(data[off:])
		if used <= 0 {
			// Unterminated or overlong varint. An unterminated one at the
			// very tail is a torn length prefix; anything else is corruption.
			if used == 0 && len(data)-off < binary.MaxVarintLen64 {
				return off, nil
			}
			return off, fmt.Errorf("%w: bad frame length at offset %d", ErrCorrupt, off)
		}
		frameEnd := off + used + int(n) + 4
		if n > maxRecordLen {
			return off, fmt.Errorf("%w: %d-byte frame at offset %d", ErrCorrupt, n, off)
		}
		if frameEnd > len(data) {
			return off, nil // torn tail: the frame never finished writing
		}
		payload := data[off+used : off+used+int(n)]
		crc := binary.BigEndian.Uint32(data[frameEnd-4 : frameEnd])
		if crc32.Checksum(payload, crcTable) != crc {
			if frameEnd == len(data) {
				return off, nil // torn tail: final frame half-flushed
			}
			return off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		if fn != nil {
			if err := fn(off, payload); err != nil {
				return off, err
			}
		}
		off = frameEnd
	}
	return off, nil
}

// scanLog is scanFrames plus payload decoding: fn (when non-nil) receives
// each intact record with its frame's byte offset.
func scanLog(data []byte, fn func(off int, rec storage.Record) error) (valid int, err error) {
	return scanFrames(data, func(off int, payload []byte) error {
		rec, err := decodePayload(payload)
		if err != nil {
			return fmt.Errorf("%w (offset %d)", err, off)
		}
		if fn != nil {
			return fn(off, rec)
		}
		return nil
	})
}

// recoverLog truncates path back to its last intact frame. Corruption
// (damage that is provably not a torn tail) is returned, not repaired; the
// returned offset is where the damage starts.
func recoverLog(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: %w", err)
	}
	valid, err := scanLog(data, nil)
	if err != nil {
		return int64(valid), err
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return int64(valid), fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	return int64(valid), nil
}

// appendLocked writes rec's frame to the shard's log under sh.mu (held by
// the caller), rolling back failed or short writes by truncation. It does
// not sync. Returns the frame's starting offset and the frame bytes.
func (w *WAL) appendLocked(sh *walShard, shard int, rec storage.Record) (int64, []byte, error) {
	if sh.quar != nil {
		return 0, nil, sh.quar
	}
	if sh.failed != nil {
		return 0, nil, sh.failed
	}
	if sh.f == nil {
		f, err := os.OpenFile(w.logPath(shard), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return 0, nil, fmt.Errorf("wal: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return 0, nil, fmt.Errorf("wal: %w", err)
		}
		sh.f, sh.size = f, fi.Size()
	}
	frame := appendFrame(make([]byte, 0, 64), rec)
	allow, injected := len(frame), error(nil)
	if w.fault != nil {
		allow, injected = w.fault.Append(shard, frame)
		if allow < 0 {
			allow = 0
		}
		if allow > len(frame) {
			allow = len(frame)
		}
	}
	var n int
	var werr error
	if allow > 0 {
		n, werr = sh.f.Write(frame[:allow])
	}
	if werr == nil {
		werr = injected
	}
	if werr != nil || n < len(frame) {
		if werr == nil {
			werr = io.ErrShortWrite
		}
		if n == 0 {
			// Nothing landed; the log is exactly as it was.
			return 0, nil, fmt.Errorf("wal: append shard %d: %w", shard, werr)
		}
		terr := error(nil)
		if w.fault != nil {
			terr = w.fault.Truncate(shard)
		}
		if terr == nil {
			terr = sh.f.Truncate(sh.size)
		}
		if terr != nil {
			// The partial frame cannot be removed, and appending after it
			// would read as mid-log corruption on the next open. Latch the
			// shard read-only; the next open recovers the torn tail.
			sh.failed = fmt.Errorf("wal: shard %d latched after unremovable partial frame: %w", shard, werr)
			_ = sh.f.Close()
			sh.f = nil
			return 0, nil, sh.failed
		}
		return 0, nil, fmt.Errorf("wal: append shard %d: %w", shard, werr)
	}
	off := sh.size
	sh.size += int64(len(frame))
	return off, frame, nil
}

// syncLocked fsyncs the shard's log under sh.mu, consulting the fault
// injector first.
func (w *WAL) syncLocked(sh *walShard, shard int) error {
	if w.fault != nil {
		if err := w.fault.Sync(shard); err != nil {
			return fmt.Errorf("wal: sync shard %d: %w", shard, err)
		}
	}
	if sh.f == nil {
		f, err := os.OpenFile(w.logPath(shard), os.O_WRONLY, 0o644)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil // nothing ever appended: nothing to sync
			}
			return fmt.Errorf("wal: sync shard %d: %w", shard, err)
		}
		defer f.Close()
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: sync shard %d: %w", shard, err)
		}
		return nil
	}
	if err := sh.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync shard %d: %w", shard, err)
	}
	return nil
}

// Append logs one record for the shard. A failed or short write is rolled
// back by truncating the log to its pre-append length: without that, the
// partial frame would sit between intact frames once later appends succeed,
// and the next open would refuse the shard as corrupt instead of recovering
// a torn tail. A quarantined shard refuses appends outright — nothing may
// land after damaged bytes. In group-commit mode, Append blocks on the
// record's commit window; concurrent writers wanting to share a window use
// AppendAsync.
func (w *WAL) Append(shard int, rec storage.Record) error {
	wait, err := w.AppendAsync(shard, rec)
	if err != nil || wait == nil {
		return err
	}
	return wait()
}

// AppendAsync implements storage.AsyncBackend: it stages the record in the
// stripe log and returns the commit-window barrier as a wait function (nil
// outside group-commit mode, where Append's inline durability already
// applied). Callers must invoke wait outside the stripe lock and must not
// acknowledge the write before it returns nil.
func (w *WAL) AppendAsync(shard int, rec storage.Record) (func() error, error) {
	sh, err := w.shard(shard)
	if err != nil {
		return nil, err
	}
	off, frame, err := w.appendLocked(sh, shard, rec)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	if w.group != nil {
		// Register under sh.mu so the commit log sees this stripe's frames
		// in offset order — recovery materializes strictly in that order.
		wait := w.group.register(shard, off, frame)
		sh.mu.Unlock()
		return wait, nil
	}
	if w.fsync {
		err = w.syncLocked(sh, shard)
	}
	sh.mu.Unlock()
	return nil, err
}

// committer is the group-commit engine: one per WAL, batching every
// stripe's appends into commit windows flushed with a single fsync of the
// shared commit log.
type committer struct {
	w      *WAL
	window time.Duration
	cap    int64

	// flushMu serializes commit-log file access: window flushes, rotations
	// and Close. Never held while a stripe's sh.mu is wanted by an append
	// path, so appends keep flowing while a window flushes.
	flushMu sync.Mutex

	mu     sync.Mutex
	f      *os.File // commit log append handle, opened lazily (under flushMu)
	size   int64
	dirty  map[int]bool // stripes with un-fsynced stripe-file bytes since the last rotation
	cur    *commitBatch // window currently accepting registrations
	failed error        // unremovable partial commit batch: refuse until rotation heals
}

// commitBatch is one commit window: the registrations it accumulated and
// the barrier its waiters block on.
type commitBatch struct {
	reqs []commitReq
	done chan struct{}
	err  error
}

type commitReq struct {
	shard int
	off   int64
	frame []byte
}

// register adds one staged frame to the open window (opening one — and its
// flush goroutine — if none is), returning the barrier wait function.
func (c *committer) register(shard int, off int64, frame []byte) func() error {
	c.mu.Lock()
	if c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		return func() error { return err }
	}
	b := c.cur
	if b == nil {
		b = &commitBatch{done: make(chan struct{})}
		c.cur = b
		go c.run(b)
	}
	b.reqs = append(b.reqs, commitReq{shard: shard, off: off, frame: frame})
	c.mu.Unlock()
	return func() error {
		<-b.done
		return b.err
	}
}

// run drives one window: spin while the batch is still growing (bounded by
// the window deadline — timers on this scale oversleep by milliseconds, so
// the wait is a yield loop), then detach the batch, flush it with one
// fsync, and release every waiter.
func (c *committer) run(b *commitBatch) {
	deadline := time.Now().Add(c.window)
	last := -1
	for {
		c.mu.Lock()
		n := len(b.reqs)
		c.mu.Unlock()
		if n == last || time.Now().After(deadline) {
			break
		}
		last = n
		runtime.Gosched()
	}
	c.mu.Lock()
	if c.cur == b {
		c.cur = nil // close the window: later registrations start the next one
	}
	c.mu.Unlock()
	c.flushMu.Lock()
	b.err = c.flush(b.reqs)
	c.flushMu.Unlock()
	close(b.done)
	if b.err == nil {
		c.mu.Lock()
		over := c.size > c.cap
		c.mu.Unlock()
		if over {
			_ = c.rotate() // background rotation at the size cap
		}
	}
}

// flush writes the window's commit frames and fsyncs the commit log once.
// Called under flushMu. Any failure fails every append in the window; a
// partial batch write is rolled back by truncation, and an unremovable one
// latches the committer until rotation replaces the log.
func (c *committer) flush(reqs []commitReq) error {
	c.mu.Lock()
	if c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		return err
	}
	c.mu.Unlock()
	var buf []byte
	for _, r := range reqs {
		payload := make([]byte, 0, 16+len(r.frame))
		payload = append(payload, recCommit)
		payload = binary.AppendUvarint(payload, uint64(r.shard))
		payload = binary.AppendUvarint(payload, uint64(r.off))
		payload = append(payload, r.frame...)
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
		buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	}
	if c.f == nil {
		f, err := os.OpenFile(c.w.commitLogPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: commit log: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: commit log: %w", err)
		}
		c.f = f
		c.mu.Lock()
		c.size = fi.Size()
		c.mu.Unlock()
	}
	allow, injected := len(buf), error(nil)
	if cf, ok := c.w.fault.(CommitFaultInjector); ok && cf != nil {
		allow, injected = cf.CommitAppend(buf)
		if allow < 0 {
			allow = 0
		}
		if allow > len(buf) {
			allow = len(buf)
		}
	}
	var n int
	var werr error
	if allow > 0 {
		n, werr = c.f.Write(buf[:allow])
	}
	if werr == nil {
		werr = injected
	}
	if werr != nil || n < len(buf) {
		if werr == nil {
			werr = io.ErrShortWrite
		}
		if n > 0 {
			c.mu.Lock()
			pre := c.size
			c.mu.Unlock()
			if terr := c.f.Truncate(pre); terr != nil {
				// A partial batch that cannot be removed would read as
				// mid-commit-log corruption with later batches after it.
				// Latch; rotation (which truncates the whole log) heals.
				c.mu.Lock()
				c.failed = fmt.Errorf("wal: commit log latched after unremovable partial batch: %w", werr)
				c.mu.Unlock()
			}
		}
		return fmt.Errorf("wal: commit append: %w", werr)
	}
	c.mu.Lock()
	c.size += int64(len(buf))
	for _, r := range reqs {
		c.dirty[r.shard] = true
	}
	c.mu.Unlock()
	if cf, ok := c.w.fault.(CommitFaultInjector); ok && cf != nil {
		if err := cf.CommitSync(); err != nil {
			return fmt.Errorf("wal: commit sync: %w", err)
		}
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("wal: commit sync: %w", err)
	}
	return nil
}

// rotate makes the stripe files self-sufficient and empties the commit log:
// fsync every stripe file the committer dirtied, then truncate and fsync
// commit.wal. Checkpoint and Compact rotate first so no commit frame can
// refer into a log region they are about to truncate or rewrite; callers
// must NOT hold any shard's mutex (rotation takes them one at a time).
func (c *committer) rotate() error {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	c.mu.Lock()
	if c.size == 0 && len(c.dirty) == 0 && c.failed == nil {
		c.mu.Unlock()
		return nil
	}
	dirty := c.dirty
	c.dirty = make(map[int]bool)
	c.mu.Unlock()
	for shard := range dirty {
		sh, err := c.w.shard(shard)
		if err == nil {
			err = c.w.syncLocked(sh, shard)
			sh.mu.Unlock()
		}
		if err != nil {
			// Put the unsynced shards back; the rotation did not happen.
			c.mu.Lock()
			for s := range dirty {
				c.dirty[s] = true
			}
			c.mu.Unlock()
			return err
		}
	}
	if c.f == nil {
		f, err := os.OpenFile(c.w.commitLogPath(), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("wal: commit log: %w", err)
		}
		c.f = f
	}
	if err := c.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: rotate commit log: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate commit log: %w", err)
	}
	c.mu.Lock()
	c.size = 0
	c.failed = nil // the partial batch, if any, is gone with the log
	c.mu.Unlock()
	return nil
}

// close shuts the commit log handle after in-flight flushes finish.
func (c *committer) close() error {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// ReplayShard streams the shard's checkpoint, then its log records. On a
// damaged shard it still streams everything intact — the checkpoint if its
// checksum holds, then every log frame before the damage — and only then
// returns the *storage.CorruptError, so a caller keeps the readable prefix
// and can quarantine the shard instead of losing it.
func (w *WAL) ReplayShard(shard int, ckpt func([]byte) error, rec func(storage.Record) error) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	damage := sh.quar
	snap, err := os.ReadFile(w.ckptPath(shard))
	switch {
	case err == nil:
		payload, cerr := unwrapCheckpoint(snap)
		if cerr != nil {
			if damage == nil {
				damage = corrupt(sh, shard, w.ckptPath(shard), 0, cerr)
			}
		} else {
			// Record the payload's byte base (0 for legacy headerless files)
			// so CheckpointRegion can address values inside this checkpoint.
			sh.ckptBase = int64(len(snap) - len(payload))
			if ckpt != nil {
				if err := ckpt(payload); err != nil {
					return err
				}
			}
		}
	case !errors.Is(err, fs.ErrNotExist):
		return fmt.Errorf("wal: %w", err)
	}
	data, err := os.ReadFile(w.logPath(shard))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			if damage != nil {
				return damage
			}
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	valid, err := scanLog(data, func(_ int, r storage.Record) error {
		if rec == nil {
			return nil
		}
		return rec(r)
	})
	if err != nil {
		if !errors.Is(err, ErrCorrupt) {
			return err // a rec callback error, not log damage
		}
		if damage == nil {
			damage = corrupt(sh, shard, w.logPath(shard), int64(valid), err)
		}
		return damage
	}
	if valid < len(data) && sh.quar == nil {
		// A torn tail can only appear here if the file was damaged after
		// Open's recovery pass; repair it the same way.
		if err := os.Truncate(w.logPath(shard), int64(valid)); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if damage != nil {
		return damage
	}
	return nil
}

// Checkpoint atomically replaces the shard's checkpoint and truncates its
// log. The snapshot lands via write-to-temp, fsync, rename, so a crash
// leaves either the old checkpoint or the new one, never a torn file; the
// log is truncated only after the rename is durable. Checkpoint is also the
// repair path: the snapshot supersedes whatever the damaged log held, so a
// quarantined or latched shard comes back healthy.
func (w *WAL) Checkpoint(shard int, snapshot []byte) error {
	_, _, err := w.checkpoint(shard, snapshot)
	return err
}

// checkpoint is Checkpoint returning the new checkpoint region (the Pager's
// CheckpointLocate). In group-commit mode it rotates the commit log first,
// so no commit frame survives to materialize against the truncated log, and
// fsyncs the truncated log so the truncation survives power loss too.
func (w *WAL) checkpoint(shard int, snapshot []byte) (uint32, int64, error) {
	if w.group != nil {
		if err := w.group.rotate(); err != nil {
			return 0, 0, fmt.Errorf("wal: checkpoint shard %d: %w", shard, err)
		}
	}
	sh, err := w.shard(shard)
	if err != nil {
		return 0, 0, err
	}
	defer sh.mu.Unlock()
	if w.fault != nil {
		if err := w.fault.Checkpoint(shard, snapshot); err != nil {
			return 0, 0, fmt.Errorf("wal: checkpoint shard %d: %w", shard, err)
		}
	}
	path := w.ckptPath(shard)
	if err := WriteFileAtomic(path, wrapCheckpoint(snapshot)); err != nil {
		return 0, 0, err
	}
	if sh.f != nil {
		if err := sh.f.Truncate(0); err != nil {
			return 0, 0, fmt.Errorf("wal: truncate log %d: %w", shard, err)
		}
		if w.group != nil {
			if err := sh.f.Sync(); err != nil {
				return 0, 0, fmt.Errorf("wal: truncate log %d: %w", shard, err)
			}
		}
	} else if err := os.Truncate(w.logPath(shard), 0); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return 0, 0, fmt.Errorf("wal: truncate log %d: %w", shard, err)
	}
	// The checkpoint holds everything the log did (and more): the log is
	// empty again and a previously latched or quarantined shard is healthy.
	sh.size, sh.failed, sh.quar = 0, nil, nil
	// Both regions moved: log offsets died with the truncation, checkpoint
	// offsets now address the fresh file.
	sh.logGen++
	sh.ckptGen++
	sh.ckptBase = int64(len(ckptMagic) + 4)
	sh.dropReadHandles(true, true)
	return sh.ckptGen, sh.ckptBase, nil
}

// Compact rewrites the shard's log keeping only the records replay still
// needs (storage.CompactRecords), atomically via temp file and rename. A
// quarantined shard refuses — compaction would silently discard the damage
// report; repair goes through Checkpoint.
func (w *WAL) Compact(shard int) error {
	if w.group != nil {
		// Commit frames hold offsets into the log this rewrite replaces;
		// rotate them away first (the rewrite is synced by rename anyway).
		if err := w.group.rotate(); err != nil {
			return fmt.Errorf("wal: compact shard %d: %w", shard, err)
		}
	}
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	if sh.quar != nil {
		return sh.quar
	}
	data, err := os.ReadFile(w.logPath(shard))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	var records []storage.Record
	if valid, err := scanLog(data, func(_ int, r storage.Record) error {
		records = append(records, r)
		return nil
	}); err != nil {
		return corrupt(sh, shard, w.logPath(shard), int64(valid), err)
	}
	var out []byte
	for _, r := range storage.CompactRecords(records) {
		out = appendFrame(out, r)
	}
	if err := WriteFileAtomic(w.logPath(shard), out); err != nil {
		return err
	}
	// The rewrite dropped any torn tail, so a latched shard is healthy again.
	sh.failed = nil
	// Record positions moved wholesale: outstanding log locations are stale.
	sh.logGen++
	sh.dropReadHandles(true, false)
	// The old append handle points at the replaced inode; reopen lazily
	// (the reopen re-stats the rewritten file's length).
	if sh.f != nil {
		err := sh.f.Close()
		sh.f = nil
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}

// AppendLocate implements storage.Pager: Append plus the location of the
// record's value bytes within the stripe log, so the store can drop its
// in-memory copy and pread it back. wait is the group-commit barrier (nil
// outside group mode).
func (w *WAL) AppendLocate(shard int, rec storage.Record) (storage.ValueLoc, bool, func() error, error) {
	sh, err := w.shard(shard)
	if err != nil {
		return storage.ValueLoc{}, false, nil, err
	}
	off, frame, err := w.appendLocked(sh, shard, rec)
	if err != nil {
		sh.mu.Unlock()
		return storage.ValueLoc{}, false, nil, err
	}
	var loc storage.ValueLoc
	ok := !rec.Reset && !rec.Entry.Deleted
	if ok {
		// The value sits inside the frame past the payload length prefix,
		// the record kind byte and the entry's own key/flags/length prefix.
		_, used := binary.Uvarint(frame)
		valOff := used + 1 + encoding.EntryValueOffset(rec.Entry)
		loc = storage.ValueLoc{
			Off: off + int64(valOff),
			Len: uint32(len(rec.Entry.Value)),
			Gen: sh.logGen,
		}
	}
	var wait func() error
	if w.group != nil {
		wait = w.group.register(shard, off, frame)
		sh.mu.Unlock()
		return loc, ok, wait, nil
	}
	if w.fsync {
		err = w.syncLocked(sh, shard)
	}
	sh.mu.Unlock()
	return loc, ok, nil, err
}

// ReadValueAt implements storage.Pager: a point pread of value bytes a
// prior AppendLocate or checkpoint layout addressed. Stale generations —
// the log was truncated or the checkpoint replaced since — return
// storage.ErrStaleLoc, never other data's bytes.
func (w *WAL) ReadValueAt(shard int, loc storage.ValueLoc) ([]byte, error) {
	sh, err := w.shard(shard)
	if err != nil {
		return nil, err
	}
	defer sh.mu.Unlock()
	var f *os.File
	if loc.Ckpt {
		if loc.Gen != sh.ckptGen {
			return nil, storage.ErrStaleLoc
		}
		if sh.cf == nil {
			sh.cf, err = os.Open(w.ckptPath(shard))
			if err != nil {
				return nil, fmt.Errorf("wal: read shard %d: %w", shard, err)
			}
		}
		f = sh.cf
	} else {
		if loc.Gen != sh.logGen {
			return nil, storage.ErrStaleLoc
		}
		if sh.rf == nil {
			sh.rf, err = os.Open(w.logPath(shard))
			if err != nil {
				return nil, fmt.Errorf("wal: read shard %d: %w", shard, err)
			}
		}
		f = sh.rf
	}
	buf := make([]byte, loc.Len)
	if _, err := f.ReadAt(buf, loc.Off); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, storage.ErrStaleLoc
		}
		return nil, fmt.Errorf("wal: read shard %d: %w", shard, err)
	}
	return buf, nil
}

// CheckpointLocate implements storage.Pager: Checkpoint plus the fresh
// checkpoint region for cold value locations.
func (w *WAL) CheckpointLocate(shard int, snapshot []byte) (uint32, int64, error) {
	return w.checkpoint(shard, snapshot)
}

// CheckpointRegion implements storage.Pager.
func (w *WAL) CheckpointRegion(shard int) (uint32, int64) {
	sh, err := w.shard(shard)
	if err != nil {
		return 0, 0
	}
	defer sh.mu.Unlock()
	return sh.ckptGen, sh.ckptBase
}

// CheckpointPayload implements storage.Pager: a bulk re-read of the whole
// checkpoint payload for cold-stripe rewrites.
func (w *WAL) CheckpointPayload(shard int, gen uint32) ([]byte, error) {
	sh, err := w.shard(shard)
	if err != nil {
		return nil, err
	}
	defer sh.mu.Unlock()
	if gen != sh.ckptGen {
		return nil, storage.ErrStaleLoc
	}
	snap, err := os.ReadFile(w.ckptPath(shard))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	payload, cerr := unwrapCheckpoint(snap)
	if cerr != nil {
		return nil, corrupt(sh, shard, w.ckptPath(shard), 0, cerr)
	}
	return payload, nil
}

// VerifyShard is the scrub path (storage.Verifier): it re-reads the shard's
// checkpoint against its checksum and every log frame against its CRC,
// without mutating anything. Damage quarantines the shard — a live stripe
// demotes the moment a bad sector is found, not at the next restart — and
// returns the *storage.CorruptError. A torn log tail is not damage (Open
// and ReplayShard repair those silently); neither is a missing file.
func (w *WAL) VerifyShard(shard int) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	if sh.quar != nil {
		return sh.quar
	}
	snap, err := os.ReadFile(w.ckptPath(shard))
	switch {
	case err == nil:
		if _, cerr := unwrapCheckpoint(snap); cerr != nil {
			return corrupt(sh, shard, w.ckptPath(shard), 0, cerr)
		}
	case !errors.Is(err, fs.ErrNotExist):
		return fmt.Errorf("wal: %w", err)
	}
	data, err := os.ReadFile(w.logPath(shard))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	if valid, err := scanLog(data, nil); err != nil {
		return corrupt(sh, shard, w.logPath(shard), int64(valid), err)
	}
	return nil
}

// Quarantined returns the damage report of every quarantined shard, keyed
// by shard index. Shards quarantine at Open (mid-log corruption), replay
// (checkpoint damage) or scrub (VerifyShard on a live stripe).
func (w *WAL) Quarantined() map[int]*storage.CorruptError {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[int]*storage.CorruptError)
	for i, sh := range w.shards {
		sh.mu.Lock()
		if sh.quar != nil {
			out[i] = sh.quar
		}
		sh.mu.Unlock()
	}
	return out
}

// FrameOffsets scans path's log and returns the byte offset of every intact
// frame, oldest first — the targeting map for fault injectors that flip
// bits in a chosen frame. Damage and torn tails are not errors here; only
// the intact prefix's frames return.
func FrameOffsets(path string) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var offs []int64
	_, _ = scanLog(data, func(off int, _ storage.Record) error {
		offs = append(offs, int64(off))
		return nil
	})
	return offs, nil
}

// Close releases every append handle. It does not checkpoint.
func (w *WAL) Close() error {
	w.mu.Lock()
	shards := w.shards
	w.shards = nil
	w.closed = true
	w.mu.Unlock()
	var first error
	for _, sh := range shards {
		sh.mu.Lock()
		if sh.f != nil {
			if err := sh.f.Close(); err != nil && first == nil {
				first = fmt.Errorf("wal: %w", err)
			}
			sh.f = nil
		}
		sh.dropReadHandles(true, true)
		sh.mu.Unlock()
	}
	if w.group != nil {
		if err := w.group.close(); err != nil && first == nil {
			first = fmt.Errorf("wal: %w", err)
		}
	}
	if err := w.unlock(); err != nil && first == nil {
		first = fmt.Errorf("wal: %w", err)
	}
	return first
}

// WriteFileAtomic writes data to path so a crash leaves either the old
// content or the new, never a torn file: temp file in the same directory,
// fsync, rename over the target, fsync the directory (a rename is not
// durable until its directory is). Exported for callers persisting small
// metadata next to a WAL.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// A rename is durable only once the containing directory is synced;
	// without this, a power loss could keep a later log truncation while
	// losing the checkpoint the truncation depended on.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

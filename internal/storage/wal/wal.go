// Package wal implements the log-structured file-per-stripe storage.Backend:
// each stripe owns an append-only log of length-prefixed, CRC-protected
// record frames plus a checkpoint file holding the stripe's latest binary
// snapshot. Appends are a single write to one file; restart replays the
// checkpoint and then the log tail.
//
// # On-disk layout
//
//	<dir>/shard-NNNN.wal   record log, a sequence of frames
//	<dir>/shard-NNNN.ckpt  latest checkpoint (kvstore binary shard snapshot)
//
//	frame   := uvarint(len(payload)) payload crc32c(payload)   // crc big-endian
//	payload := 0x01 entry            // set: encoding.AppendEntry bytes
//	         | 0x02                  // reset: clear the stripe
//
// # Crash safety
//
// A crash mid-append leaves a torn frame at the log tail: a truncated
// length prefix, a payload shorter than its prefix promises, or a CRC
// mismatch on the final frame. Open detects all three, truncates the log
// back to the last intact frame, and replay proceeds from clean state — the
// acknowledged prefix survives, the torn suffix (never acknowledged) is
// dropped. A CRC mismatch followed by further bytes cannot be a torn tail
// write and is reported as corruption instead of silently truncated.
//
// By default appends reach the OS buffer cache (durable across process
// crashes, not power loss); Options.Fsync syncs every append for full
// durability at a large throughput cost. Checkpoints always fsync and
// rename, whatever the option, so a half-written checkpoint can never
// replace a good one.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"versionstamp/internal/encoding"
	"versionstamp/internal/storage"
)

// Record payload kinds.
const (
	recSet   = 0x01
	recReset = 0x02
)

// maxRecordLen bounds a frame's payload so a corrupt length prefix cannot
// force an unbounded allocation.
const maxRecordLen = 1 << 30

// crcTable is the Castagnoli polynomial, the standard choice for storage
// checksums (hardware-accelerated on common CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports log damage that cannot be a torn tail write — a bad
// frame with intact frames after it, or a checksummed payload that does not
// decode. Torn tails are repaired silently; corruption never is.
var ErrCorrupt = errors.New("wal: corrupt log")

// Options configures a WAL.
type Options struct {
	// Fsync syncs the log file after every append. Off by default: appends
	// then survive process crashes (the OS holds the bytes) but not power
	// loss.
	Fsync bool
}

// WAL is the file-per-stripe backend. Safe for concurrent use; operations
// on the same shard serialize on the shard's mutex.
type WAL struct {
	dir   string
	fsync bool
	lock  *os.File // advisory directory lock, released by Close (or process death)

	mu     sync.Mutex
	shards map[int]*walShard
	closed bool
}

type walShard struct {
	mu     sync.Mutex
	f      *os.File // append handle, opened lazily
	size   int64    // current log length, maintained so a partial write can be undone
	failed error    // set when a partial frame could not be rolled back: shard read-only
}

// Open prepares dir (creating it if needed), takes the directory's
// advisory lock — two live processes appending to the same logs would
// destroy each other's acknowledged writes — and recovers every existing
// shard log: torn tail frames are truncated away here, once, so appends
// can never land after garbage. The lock dies with the process; a crashed
// owner never blocks the next Open.
func Open(dir string, opts Options) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, fsync: opts.Fsync, lock: lock, shards: make(map[int]*walShard)}
	logs, err := filepath.Glob(filepath.Join(dir, "shard-*.wal"))
	if err != nil {
		_ = w.unlock()
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, path := range logs {
		if err := recoverLog(path); err != nil {
			_ = w.unlock()
			return nil, err
		}
	}
	return w, nil
}

func (w *WAL) unlock() error {
	if w.lock == nil {
		return nil
	}
	err := w.lock.Close() // closing drops the flock
	w.lock = nil
	return err
}

func (w *WAL) logPath(shard int) string {
	return filepath.Join(w.dir, fmt.Sprintf("shard-%04d.wal", shard))
}

func (w *WAL) ckptPath(shard int) string {
	return filepath.Join(w.dir, fmt.Sprintf("shard-%04d.ckpt", shard))
}

// shard returns (creating if needed) the per-shard state, with its mutex
// already held. Callers must Unlock it.
func (w *WAL) shard(i int) (*walShard, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, errors.New("wal: closed")
	}
	sh, ok := w.shards[i]
	if !ok {
		sh = &walShard{}
		w.shards[i] = sh
	}
	w.mu.Unlock()
	sh.mu.Lock()
	return sh, nil
}

// appendFrame encodes rec as one frame.
func appendFrame(dst []byte, rec storage.Record) []byte {
	var payload []byte
	if rec.Reset {
		payload = []byte{recReset}
	} else {
		payload = append(make([]byte, 0, 64), recSet)
		payload = encoding.AppendEntry(payload, rec.Entry)
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
}

// decodePayload parses one checksummed payload into a Record. A payload that
// passes its CRC but does not decode is corruption, never a torn write.
func decodePayload(payload []byte) (storage.Record, error) {
	if len(payload) == 0 {
		return storage.Record{}, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	switch payload[0] {
	case recReset:
		if len(payload) != 1 {
			return storage.Record{}, fmt.Errorf("%w: reset record with body", ErrCorrupt)
		}
		return storage.Record{Reset: true}, nil
	case recSet:
		e, used, err := encoding.DecodeEntry(payload[1:])
		if err != nil {
			return storage.Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if used != len(payload)-1 {
			return storage.Record{}, fmt.Errorf("%w: %d trailing record bytes", ErrCorrupt, len(payload)-1-used)
		}
		return storage.Record{Entry: e}, nil
	default:
		return storage.Record{}, fmt.Errorf("%w: unknown record kind 0x%02x", ErrCorrupt, payload[0])
	}
}

// scanLog walks the frames of data, calling fn (when non-nil) for each
// intact record, and returns the offset of the first byte that is not part
// of an intact frame — len(data) for a clean log. A damaged frame that runs
// to the end of data is a torn tail (valid stops before it); a damaged
// frame with bytes after it is corruption.
func scanLog(data []byte, fn func(storage.Record) error) (valid int, err error) {
	off := 0
	for off < len(data) {
		n, used := binary.Uvarint(data[off:])
		if used <= 0 {
			// Unterminated or overlong varint. An unterminated one at the
			// very tail is a torn length prefix; anything else is corruption.
			if used == 0 && len(data)-off < binary.MaxVarintLen64 {
				return off, nil
			}
			return off, fmt.Errorf("%w: bad frame length at offset %d", ErrCorrupt, off)
		}
		frameEnd := off + used + int(n) + 4
		if n > maxRecordLen {
			return off, fmt.Errorf("%w: %d-byte frame at offset %d", ErrCorrupt, n, off)
		}
		if frameEnd > len(data) {
			return off, nil // torn tail: the frame never finished writing
		}
		payload := data[off+used : off+used+int(n)]
		crc := binary.BigEndian.Uint32(data[frameEnd-4 : frameEnd])
		if crc32.Checksum(payload, crcTable) != crc {
			if frameEnd == len(data) {
				return off, nil // torn tail: final frame half-flushed
			}
			return off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return off, fmt.Errorf("%w (offset %d)", err, off)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off = frameEnd
	}
	return off, nil
}

// recoverLog truncates path back to its last intact frame. Corruption
// (damage that is provably not a torn tail) is returned, not repaired.
func recoverLog(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	valid, err := scanLog(data, nil)
	if err != nil {
		return err
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	return nil
}

// Append logs one record for the shard. A failed write is rolled back by
// truncating the log to its pre-append length: without that, the partial
// frame would sit between intact frames once later appends succeed, and
// the next open would refuse the whole shard as corrupt instead of
// recovering a torn tail.
func (w *WAL) Append(shard int, rec storage.Record) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	if sh.failed != nil {
		return sh.failed
	}
	if sh.f == nil {
		f, err := os.OpenFile(w.logPath(shard), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		sh.f, sh.size = f, fi.Size()
	}
	frame := appendFrame(make([]byte, 0, 64), rec)
	if _, err := sh.f.Write(frame); err != nil {
		if terr := sh.f.Truncate(sh.size); terr != nil {
			// The partial frame cannot be removed, and appending after it
			// would read as mid-log corruption on the next open. Latch the
			// shard read-only; the next open recovers the torn tail.
			sh.failed = fmt.Errorf("wal: shard %d latched after unremovable partial frame: %w", shard, err)
			_ = sh.f.Close()
			sh.f = nil
			return sh.failed
		}
		return fmt.Errorf("wal: append shard %d: %w", shard, err)
	}
	sh.size += int64(len(frame))
	if w.fsync {
		if err := sh.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync shard %d: %w", shard, err)
		}
	}
	return nil
}

// ReplayShard streams the shard's checkpoint, then its log records.
func (w *WAL) ReplayShard(shard int, ckpt func([]byte) error, rec func(storage.Record) error) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	if ckpt != nil {
		snap, err := os.ReadFile(w.ckptPath(shard))
		switch {
		case err == nil:
			if err := ckpt(snap); err != nil {
				return err
			}
		case !errors.Is(err, fs.ErrNotExist):
			return fmt.Errorf("wal: %w", err)
		}
	}
	data, err := os.ReadFile(w.logPath(shard))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	valid, err := scanLog(data, rec)
	if err != nil {
		return err
	}
	if valid < len(data) {
		// A torn tail can only appear here if the file was damaged after
		// Open's recovery pass; repair it the same way.
		if err := os.Truncate(w.logPath(shard), int64(valid)); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	return nil
}

// Checkpoint atomically replaces the shard's checkpoint and truncates its
// log. The snapshot lands via write-to-temp, fsync, rename, so a crash
// leaves either the old checkpoint or the new one, never a torn file; the
// log is truncated only after the rename is durable.
func (w *WAL) Checkpoint(shard int, snapshot []byte) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	path := w.ckptPath(shard)
	if err := WriteFileAtomic(path, snapshot); err != nil {
		return err
	}
	if sh.f != nil {
		if err := sh.f.Truncate(0); err != nil {
			return fmt.Errorf("wal: truncate log %d: %w", shard, err)
		}
	} else if err := os.Truncate(w.logPath(shard), 0); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("wal: truncate log %d: %w", shard, err)
	}
	// The checkpoint holds everything the log did (and more): the log is
	// empty again and a previously latched shard is healthy.
	sh.size, sh.failed = 0, nil
	return nil
}

// Compact rewrites the shard's log keeping only the records replay still
// needs (storage.CompactRecords), atomically via temp file and rename.
func (w *WAL) Compact(shard int) error {
	sh, err := w.shard(shard)
	if err != nil {
		return err
	}
	defer sh.mu.Unlock()
	data, err := os.ReadFile(w.logPath(shard))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	var records []storage.Record
	if _, err := scanLog(data, func(r storage.Record) error {
		records = append(records, r)
		return nil
	}); err != nil {
		return err
	}
	var out []byte
	for _, r := range storage.CompactRecords(records) {
		out = appendFrame(out, r)
	}
	if err := WriteFileAtomic(w.logPath(shard), out); err != nil {
		return err
	}
	// The rewrite dropped any torn tail, so a latched shard is healthy again.
	sh.failed = nil
	// The old append handle points at the replaced inode; reopen lazily
	// (the reopen re-stats the rewritten file's length).
	if sh.f != nil {
		err := sh.f.Close()
		sh.f = nil
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}

// Close releases every append handle. It does not checkpoint.
func (w *WAL) Close() error {
	w.mu.Lock()
	shards := w.shards
	w.shards = nil
	w.closed = true
	w.mu.Unlock()
	var first error
	for _, sh := range shards {
		sh.mu.Lock()
		if sh.f != nil {
			if err := sh.f.Close(); err != nil && first == nil {
				first = fmt.Errorf("wal: %w", err)
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	if err := w.unlock(); err != nil && first == nil {
		first = fmt.Errorf("wal: %w", err)
	}
	return first
}

// WriteFileAtomic writes data to path so a crash leaves either the old
// content or the new, never a torn file: temp file in the same directory,
// fsync, rename over the target, fsync the directory (a rename is not
// durable until its directory is). Exported for callers persisting small
// metadata next to a WAL.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// A rename is durable only once the containing directory is synced;
	// without this, a power loss could keep a later log truncation while
	// losing the checkpoint the truncation depended on.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/wal.lock, failing fast
// when another live process holds it. Kernel advisory locks are released on
// process death, so a crashed owner never leaves the directory locked.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "wal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("wal: %s is already in use by another process: %w", dir, err)
	}
	return f, nil
}

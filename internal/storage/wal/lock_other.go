//go:build !unix

package wal

import "os"

// lockDir is a no-op where flock is unavailable: single ownership of the
// data directory is then the operator's responsibility.
func lockDir(dir string) (*os.File, error) { return nil, nil }

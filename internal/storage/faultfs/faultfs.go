// Package faultfs is the disk-side counterpart of internal/chaosnet: a
// seeded, deterministic fault injector for the WAL's physical operations.
// Where chaosnet decides per network segment whether to drop, duplicate or
// delay, faultfs decides per disk operation whether an append fails, lands
// short (ENOSPC mid-frame), a rollback truncation sticks, an fsync errors,
// or a checkpoint write dies — every decision a pure hash of
// (seed, shard, op, sequence), so a fault schedule replays exactly and a
// failing chaos run reproduces from its seed alone.
//
// The Injector plugs into wal.Options.Fault for online faults. At-rest
// damage — the bit flips and checkpoint corruption a crashed node discovers
// at the next open — is injected offline with FlipLogByte and
// CorruptCheckpoint, which edit the files directly between a kill and a
// revive, again deterministically from the seed.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"versionstamp/internal/storage/wal"
)

// ErrInjected marks every online fault this package raises, so tests can
// tell injected failures from real ones.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrNoSpace is the injected ENOSPC: raised by short-write faults and by
// the NoSpaceAfterBytes budget. Wraps ErrInjected.
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)

// Faults is an online fault schedule. Probabilities are per operation,
// decided independently per (shard, op, sequence); zero values inject
// nothing, so the zero Faults is a healthy disk.
type Faults struct {
	// AppendErrProb fails an append cleanly: no bytes land, the WAL's log
	// is untouched. The store sees the error and records a PersistErr.
	AppendErrProb float64
	// ShortWriteProb lands a deterministic prefix of the frame and then
	// fails with ErrNoSpace, exercising the rollback truncation.
	ShortWriteProb float64
	// TruncFailProb fails the rollback truncation after a short write, so
	// the shard latches read-only (the unremovable-partial-frame path).
	TruncFailProb float64
	// SyncErrProb fails an fsync after its frame landed: bytes intact,
	// durability in doubt.
	SyncErrProb float64
	// CheckpointErrProb fails a checkpoint before it replaces anything.
	CheckpointErrProb float64
	// NoSpaceAfterBytes, when positive, is a disk budget: once the injector
	// has allowed that many appended bytes (across all shards), every
	// further append fails with ErrNoSpace until the budget is raised. This
	// models a full volume rather than a flaky sector.
	NoSpaceAfterBytes int64
	// CommitAppendErrProb fails a group-commit log write cleanly: no commit
	// frames land, every waiter in the window sees the error.
	CommitAppendErrProb float64
	// CommitShortProb lands a deterministic prefix of the commit-frame
	// batch and then fails with ErrNoSpace, exercising the commit-log
	// rollback truncation.
	CommitShortProb float64
	// CommitSyncErrProb fails the window's single fsync after its frames
	// landed: every waiter in the window is refused durability.
	CommitSyncErrProb float64
}

// Stats counts what the injector actually did — the fault ledger a
// deterministic run reproduces byte-identically.
type Stats struct {
	Appends       int64 // append decisions consulted
	AppendErrs    int64 // clean append failures injected
	ShortWrites   int64 // partial frames injected
	TruncFails    int64 // rollback truncations failed (shard latches)
	SyncErrs      int64 // fsync failures injected
	CheckpointErr int64 // checkpoint failures injected
	NoSpace       int64 // appends refused by the byte budget

	CommitAppends    int64 // commit-log write decisions consulted
	CommitAppendErrs int64 // clean commit-log write failures injected
	CommitShorts     int64 // partial commit-frame batches injected
	CommitSyncErrs   int64 // commit-window fsync failures injected
}

// Injector implements wal.FaultInjector with seeded decisions. Safe for
// concurrent use; per-(shard,op) sequence numbers make each shard's fault
// stream independent of scheduling on other shards.
type Injector struct {
	seed int64

	mu     sync.Mutex
	faults Faults
	seq    map[opKey]uint64
	bytes  int64 // appended bytes allowed so far, against NoSpaceAfterBytes
	stats  Stats
}

type opKey struct {
	shard int
	op    uint64
}

// Operation salts, rotated into the hash exactly like chaosnet's link salt
// so the same (seed, shard, sequence) draws independent decisions per op.
const (
	opAppend = 0x61707065 // "appe"
	opShort  = 0x73686f72 // "shor"
	opTrunc  = 0x7472756e // "trun"
	opSync   = 0x73796e63 // "sync"
	opCkpt   = 0x636b7074 // "ckpt"
	opCAppnd = 0x63617070 // "capp" — group-commit log write
	opCShort = 0x63736872 // "cshr" — group-commit short write
	opCSync  = 0x6373796e // "csyn" — group-commit window fsync
)

// commitShard is the pseudo-shard the shared commit log draws sequences
// under: the commit log is cross-stripe, so its fault stream is keyed off a
// sentinel rather than any real shard index.
const commitShard = -1

// New creates an injector whose every decision derives from seed.
func New(seed int64, faults Faults) *Injector {
	return &Injector{seed: seed, faults: faults, seq: make(map[opKey]uint64)}
}

// SetFaults replaces the fault schedule (sequence numbers keep counting, so
// a schedule change mid-run stays deterministic).
func (in *Injector) SetFaults(f Faults) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = f
}

// Stats returns a copy of the fault ledger.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// draw advances the (shard,op) sequence and returns its hash.
func (in *Injector) draw(shard int, op uint64) uint64 {
	k := opKey{shard, op}
	s := in.seq[k]
	in.seq[k] = s + 1
	return hash3(in.seed, op, uint64(shard), s)
}

// Append decides one append's fate: full frame, clean failure, budget
// exhaustion, or a short write whose landed length is itself a hash draw.
func (in *Injector) Append(shard int, frame []byte) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Appends++
	if in.faults.NoSpaceAfterBytes > 0 && in.bytes+int64(len(frame)) > in.faults.NoSpaceAfterBytes {
		in.stats.NoSpace++
		return 0, ErrNoSpace
	}
	if chance(in.draw(shard, opAppend), in.faults.AppendErrProb) {
		in.stats.AppendErrs++
		return 0, fmt.Errorf("%w: append shard %d", ErrInjected, shard)
	}
	h := in.draw(shard, opShort)
	if chance(h, in.faults.ShortWriteProb) && len(frame) > 1 {
		in.stats.ShortWrites++
		// Land a deterministic strict prefix: at least 1 byte, never all.
		n := 1 + int(h%uint64(len(frame)-1))
		in.bytes += int64(n)
		return n, ErrNoSpace
	}
	in.bytes += int64(len(frame))
	return len(frame), nil
}

// Truncate decides whether a rollback truncation sticks.
func (in *Injector) Truncate(shard int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if chance(in.draw(shard, opTrunc), in.faults.TruncFailProb) {
		in.stats.TruncFails++
		return fmt.Errorf("%w: truncate shard %d", ErrInjected, shard)
	}
	return nil
}

// Sync decides whether an fsync fails.
func (in *Injector) Sync(shard int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if chance(in.draw(shard, opSync), in.faults.SyncErrProb) {
		in.stats.SyncErrs++
		return fmt.Errorf("%w: fsync shard %d", ErrInjected, shard)
	}
	return nil
}

// Checkpoint decides whether a checkpoint write fails.
func (in *Injector) Checkpoint(shard int, _ []byte) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if chance(in.draw(shard, opCkpt), in.faults.CheckpointErrProb) {
		in.stats.CheckpointErr++
		return fmt.Errorf("%w: checkpoint shard %d", ErrInjected, shard)
	}
	return nil
}

// CommitAppend decides the fate of one group-commit window's batched write
// to the shared commit log: all frames land, a clean failure, or a short
// write whose landed length is itself a hash draw.
func (in *Injector) CommitAppend(buf []byte) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.CommitAppends++
	if chance(in.draw(commitShard, opCAppnd), in.faults.CommitAppendErrProb) {
		in.stats.CommitAppendErrs++
		return 0, fmt.Errorf("%w: commit-log append", ErrInjected)
	}
	h := in.draw(commitShard, opCShort)
	if chance(h, in.faults.CommitShortProb) && len(buf) > 1 {
		in.stats.CommitShorts++
		n := 1 + int(h%uint64(len(buf)-1))
		return n, ErrNoSpace
	}
	return len(buf), nil
}

// CommitSync decides whether a commit window's single fsync fails.
func (in *Injector) CommitSync() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if chance(in.draw(commitShard, opCSync), in.faults.CommitSyncErrProb) {
		in.stats.CommitSyncErrs++
		return fmt.Errorf("%w: commit-log fsync", ErrInjected)
	}
	return nil
}

var _ wal.FaultInjector = (*Injector)(nil)
var _ wal.CommitFaultInjector = (*Injector)(nil)

// FlipLogByte injects at-rest corruption: it flips one payload byte of a
// deterministically chosen non-final frame in the shard's log under dir,
// returning the byte offset flipped. The frame choice hashes from seed, so
// a scenario corrupts the same byte every run. Non-final matters: damage in
// the last frame reads as a torn tail and is silently truncated, not
// quarantined — at least two intact frames must exist, or an error returns.
func FlipLogByte(dir string, shard int, seed int64) (int64, error) {
	path := wal.LogPath(dir, shard)
	offs, err := wal.FrameOffsets(path)
	if err != nil {
		return 0, fmt.Errorf("faultfs: %w", err)
	}
	if len(offs) < 2 {
		return 0, fmt.Errorf("faultfs: shard %d has %d frames; need >= 2 for non-tail corruption", shard, len(offs))
	}
	h := hash3(seed, opAppend, uint64(shard), 0xf11b)
	frame := int(h % uint64(len(offs)-1)) // any frame but the last
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("faultfs: %w", err)
	}
	// Flip a payload byte: skip the frame's length prefix (1+ bytes; +1 is
	// always inside the payload for our small frames, and any in-frame flip
	// breaks the CRC regardless of which field it hits).
	off := offs[frame] + 1
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, fmt.Errorf("faultfs: %w", err)
	}
	return off, nil
}

// CorruptCheckpoint flips one byte of the shard's checkpoint payload under
// dir, deterministically from seed.
func CorruptCheckpoint(dir string, shard int, seed int64) (int64, error) {
	path := wal.CheckpointPath(dir, shard)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("faultfs: %w", err)
	}
	// Flip inside the checksummed payload, past the 8-byte header: damaging
	// the magic itself would make the file sniff as a legacy (unchecked)
	// checkpoint instead of a corrupt one.
	const header = 8
	if len(data) <= header {
		return 0, fmt.Errorf("faultfs: shard %d checkpoint too small to corrupt", shard)
	}
	off := header + int64(hash3(seed, opCkpt, uint64(shard), 0xf11b)%uint64(len(data)-header))
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, fmt.Errorf("faultfs: %w", err)
	}
	return off, nil
}

// BusiestShard returns the shard with the largest log file under dir — the
// natural corruption target when a scenario wants "the stripe with the most
// to lose". Ties break toward the lower index; ok is false when no log
// exists.
func BusiestShard(dir string, shards int) (shard int, ok bool) {
	best := int64(-1)
	for i := 0; i < shards; i++ {
		fi, err := os.Stat(wal.LogPath(dir, i))
		if err != nil {
			continue
		}
		if fi.Size() > best {
			best, shard, ok = fi.Size(), i, true
		}
	}
	return shard, ok
}

// hash3 mixes the seed, operation salt, shard and sequence number into a
// uniform 64-bit value (splitmix64 finalizer) — the same construction as
// chaosnet's segment hash, with the operation salt in the link-salt slot.
func hash3(seed int64, op, shard, seq uint64) uint64 {
	x := uint64(seed) ^ rot(op, 23) ^ rot(shard, 44) ^ seq
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func rot(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// chance maps a hash to a Bernoulli draw with probability p.
func chance(h uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(h>>11)/float64(1<<53) < p
}

package faultfs

import (
	"errors"
	"testing"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/storage"
	"versionstamp/internal/storage/wal"
)

func rec(key, value string) storage.Record {
	return storage.Record{Entry: encoding.Entry{
		Key: key, Value: []byte(value), Stamp: core.Seed().Update(),
	}}
}

// TestDeterministicDecisions runs the same fault schedule twice and demands
// an identical ledger — the chaosnet property, on disk.
func TestDeterministicDecisions(t *testing.T) {
	run := func() Stats {
		in := New(42, Faults{AppendErrProb: 0.2, ShortWriteProb: 0.1, SyncErrProb: 0.05, CheckpointErrProb: 0.3})
		frame := make([]byte, 48)
		for shard := 0; shard < 4; shard++ {
			for i := 0; i < 200; i++ {
				_, _ = in.Append(shard, frame)
				_ = in.Sync(shard)
			}
			_ = in.Checkpoint(shard, nil)
		}
		return in.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different ledgers:\n%+v\n%+v", a, b)
	}
	if a.AppendErrs == 0 || a.ShortWrites == 0 || a.SyncErrs == 0 {
		t.Fatalf("schedule injected nothing: %+v", a)
	}
	c := New(43, Faults{AppendErrProb: 0.2, ShortWriteProb: 0.1})
	frame := make([]byte, 48)
	diff := false
	inA := New(42, Faults{AppendErrProb: 0.2, ShortWriteProb: 0.1})
	for i := 0; i < 100; i++ {
		na, ea := inA.Append(0, frame)
		nc, ec := c.Append(0, frame)
		if na != nc || (ea == nil) != (ec == nil) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical decision streams")
	}
}

// TestShardStreamsIndependent checks a shard's fault stream does not depend
// on how often other shards were consulted — the per-(shard,op) sequence
// counters at work.
func TestShardStreamsIndependent(t *testing.T) {
	frame := make([]byte, 32)
	solo := New(7, Faults{AppendErrProb: 0.3})
	var a []bool
	for i := 0; i < 50; i++ {
		_, err := solo.Append(1, frame)
		a = append(a, err != nil)
	}
	mixed := New(7, Faults{AppendErrProb: 0.3})
	var b []bool
	for i := 0; i < 50; i++ {
		_, _ = mixed.Append(0, frame) // interleaved traffic on another shard
		_, err := mixed.Append(1, frame)
		b = append(b, err != nil)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard 1 decision %d changed with shard 0 traffic", i)
		}
	}
}

// TestNoSpaceBudget exhausts the byte budget and asserts ErrNoSpace.
func TestNoSpaceBudget(t *testing.T) {
	in := New(1, Faults{NoSpaceAfterBytes: 100})
	frame := make([]byte, 40)
	if _, err := in.Append(0, frame); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Append(0, frame); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Append(0, frame); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-budget append = %v, want ErrNoSpace", err)
	}
	if !errors.Is(ErrNoSpace, ErrInjected) {
		t.Fatal("ErrNoSpace must wrap ErrInjected")
	}
	in.SetFaults(Faults{}) // budget lifted: appends flow again
	if _, err := in.Append(0, frame); err != nil {
		t.Fatalf("post-heal append = %v", err)
	}
}

// TestInjectedNoSpaceRollsBackWAL is the satellite regression: an injected
// ENOSPC short write against a real WAL must trigger the rollback, leave
// the log clean, and a truncation failure must latch the shard until a
// checkpoint heals it.
func TestInjectedNoSpaceRollsBackWAL(t *testing.T) {
	dir := t.TempDir()
	in := New(99, Faults{ShortWriteProb: 1}) // every append lands short
	w, err := wal.Open(dir, wal.Options{Fault: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, rec("a", "1")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append under full disk = %v, want ErrNoSpace", err)
	}
	if in.Stats().ShortWrites == 0 {
		t.Fatal("short write not recorded")
	}
	// Disk pressure clears: the rolled-back log must accept clean appends.
	in.SetFaults(Faults{})
	if err := w.Append(0, rec("a", "2")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen after rollback: %v", err)
	}
	var recs []storage.Record
	if err := w2.ReplayShard(0, nil, func(r storage.Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatalf("replay after rollback: %v", err)
	}
	if len(recs) != 1 || string(recs[0].Entry.Value) != "2" {
		t.Fatalf("records after rollback = %+v, want just value 2", recs)
	}
	w2.Close()

	// Now the unremovable case: short write AND failed rollback latch the
	// shard; a later checkpoint heals the latch.
	dir2 := t.TempDir()
	in2 := New(99, Faults{ShortWriteProb: 1, TruncFailProb: 1})
	w3, err := wal.Open(dir2, wal.Options{Fault: in2})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if err := w3.Append(0, rec("a", "1")); err == nil {
		t.Fatal("short write with failed rollback must error")
	}
	in2.SetFaults(Faults{})
	if err := w3.Append(0, rec("a", "2")); err == nil {
		t.Fatal("latched shard accepted an append")
	}
	if err := w3.Checkpoint(0, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if err := w3.Append(0, rec("a", "3")); err != nil {
		t.Fatalf("append after healing checkpoint: %v", err)
	}
}

// TestFlipLogByteQuarantines corrupts a frame at rest and asserts the next
// open quarantines exactly that shard at the flipped offset.
func TestFlipLogByteQuarantines(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(3, rec("k", "vvvv")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append(1, rec("other", "x")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	off1, err := FlipLogByte(dir, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if shard, ok := BusiestShard(dir, 8); !ok || shard != 3 {
		t.Fatalf("BusiestShard = %d,%v, want 3", shard, ok)
	}

	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("open after flip: %v", err)
	}
	q := w2.Quarantined()
	ce := q[3]
	if len(q) != 1 || ce == nil {
		t.Fatalf("Quarantined = %v, want shard 3 only", q)
	}
	if ce.Path != wal.LogPath(dir, 3) || ce.Offset < 0 || ce.Offset > off1 {
		t.Fatalf("damage report %+v does not cover flipped offset %d", ce, off1)
	}
	// Healthy shard unaffected.
	if err := w2.VerifyShard(1); err != nil {
		t.Fatalf("VerifyShard(1) = %v", err)
	}
	w2.Close()

	// Determinism: the same seed flips the same byte in a fresh copy.
	dir2 := t.TempDir()
	w3, err := wal.Open(dir2, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w3.Append(3, rec("k", "vvvv")); err != nil {
			t.Fatal(err)
		}
	}
	w3.Close()
	off2, err := FlipLogByte(dir2, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != off2 {
		t.Fatalf("same seed flipped different offsets: %d vs %d", off1, off2)
	}
}

// TestCorruptCheckpointDetected damages a checkpoint at rest and asserts
// the scrub catches it.
func TestCorruptCheckpointDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(2, []byte("snapshot-bytes")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := CorruptCheckpoint(dir, 2, 5); err != nil {
		t.Fatal(err)
	}
	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var ce *storage.CorruptError
	if err := w2.VerifyShard(2); !errors.As(err, &ce) || ce.Shard != 2 {
		t.Fatalf("VerifyShard = %v, want *storage.CorruptError for shard 2", err)
	}
}

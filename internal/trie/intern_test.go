package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"versionstamp/internal/bitstr"
	"versionstamp/internal/name"
)

func mustName(t *testing.T, s string) name.Name {
	t.Helper()
	n, err := name.Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return n
}

func TestInternDedupsToOneHandle(t *testing.T) {
	for _, s := range []string{"ε", "0", "1", "0+1", "00+01+1", "010+0111"} {
		a := Intern(mustName(t, s))
		b := Intern(mustName(t, s))
		if a != b {
			t.Errorf("Intern(%q) returned two records: %p %p", s, a, b)
		}
		if a == nil {
			t.Fatalf("Intern(%q) = nil for a nonempty name", s)
		}
		if a.ID() == 0 {
			t.Errorf("table-resident record for %q has id 0", s)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("Intern(%q): %v", s, err)
		}
	}
	if Intern(name.Empty()) != nil {
		t.Error("Intern(∅) is not the nil handle")
	}
}

func TestInternEncodedRoundTrip(t *testing.T) {
	for _, s := range []string{"∅", "ε", "0", "0+1", "00+01+10+11", "0101+011"} {
		n := mustName(t, s)
		h := Intern(n)
		enc := h.AppendEncoding(nil)
		got, used, err := InternEncoded(enc)
		if err != nil {
			t.Fatalf("InternEncoded(%q): %v", s, err)
		}
		if used != len(enc) {
			t.Errorf("InternEncoded(%q) consumed %d of %d bytes", s, used, len(enc))
		}
		if got != h {
			t.Errorf("InternEncoded(%q) did not dedup onto the interned handle", s)
		}
		if !got.Name().Equal(n) {
			t.Errorf("InternEncoded(%q) = %v", s, got.Name())
		}
	}
}

// TestInternEncodedCanonicalizesPadding: an encoding whose padding bits are
// garbage must decode to the same handle as the canonical encoding — the
// table key is the re-encoded canonical form, never raw wire bytes.
func TestInternEncodedCanonicalizesPadding(t *testing.T) {
	h := Intern(mustName(t, "0+10"))
	enc := h.AppendEncoding(nil)
	dirty := append([]byte(nil), enc...)
	// The bit stream is MSB-first and padded to a byte; flipping the last
	// byte's lowest bits touches only padding for this name's bit count.
	nbits := int(dirty[0])
	pad := 8 - nbits%8
	if pad == 8 {
		t.Skip("encoding has no padding bits")
	}
	dirty[len(dirty)-1] ^= 1 // lowest bit of the final byte = last padding bit
	got, used, err := InternEncoded(dirty)
	if err != nil {
		t.Fatalf("InternEncoded(dirty): %v", err)
	}
	if used != len(dirty) || got != h {
		t.Errorf("padded variant decoded to a different handle (used %d)", used)
	}
}

func TestInternEncodedRejectsCorrupt(t *testing.T) {
	for _, in := range [][]byte{{}, {0xFF}, {0x03, 0x00}, {0x20}} {
		if h, _, err := InternEncoded(in); err == nil {
			t.Errorf("InternEncoded(% x) accepted: %v", in, h)
		}
	}
}

func TestInternedComparisons(t *testing.T) {
	empty := Intern(name.Empty())
	eps := Intern(mustName(t, "ε"))
	a := Intern(mustName(t, "0"))
	ab := Intern(mustName(t, "0+1"))
	deep := Intern(mustName(t, "00+01+1"))

	cases := []struct {
		n, m *Interned
		leq  bool
	}{
		{empty, empty, true}, {empty, a, true}, {a, empty, false},
		{eps, eps, true}, {a, ab, true}, {ab, a, false},
		{ab, deep, true}, {deep, ab, false}, {a, deep, true},
	}
	for _, c := range cases {
		if got := c.n.Leq(c.m); got != c.leq {
			t.Errorf("(%v).Leq(%v) = %v, want %v", c.n, c.m, got, c.leq)
		}
		if want := c.n.Name().Leq(c.m.Name()); c.leq != want {
			t.Errorf("case (%v, %v) disagrees with name-level Leq", c.n, c.m)
		}
	}
	if !ab.Covers(bitstr.Bits("0")) || ab.Covers(bitstr.Bits("00")) {
		t.Error("Covers disagrees with name-level semantics")
	}
	if !a.IncomparableTo(Intern(mustName(t, "1"))) {
		t.Error("0 and 1 should be incomparable")
	}
	if a.IncomparableTo(a) {
		t.Error("a nonempty name is comparable to itself")
	}
	if !empty.IncomparableTo(a) || !a.IncomparableTo(empty) {
		t.Error("∅ is vacuously incomparable to everything")
	}
}

func TestJoinInternedReusesDominatingSide(t *testing.T) {
	a := Intern(mustName(t, "0"))
	ab := Intern(mustName(t, "0+1"))
	if got := JoinInterned(a, ab); got != ab {
		t.Errorf("join with dominating right side = %v, want the right handle", got)
	}
	if got := JoinInterned(ab, a); got != ab {
		t.Errorf("join with dominating left side = %v, want the left handle", got)
	}
	if got := JoinInterned(a, a); got != a {
		t.Errorf("self-join = %v, want the same handle", got)
	}
	if got := JoinInterned(nil, ab); got != ab {
		t.Errorf("join with ∅ = %v", got)
	}
	// A genuine merge dedups onto the interned join.
	l := Intern(mustName(t, "00"))
	r := Intern(mustName(t, "01"))
	j := JoinInterned(l, r)
	if j != Intern(name.Join(l.Name(), r.Name())) {
		t.Error("merged join is not the interned canonical result")
	}
}

func TestJoinInternedMatchesNameJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randName := func() name.Name {
		var bits []bitstr.Bits
		for i, n := 0, rng.Intn(4); i < n; i++ {
			b := bitstr.Epsilon
			for j, l := 0, rng.Intn(5); j < l; j++ {
				if rng.Intn(2) == 0 {
					b = b.Append0()
				} else {
					b = b.Append1()
				}
			}
			bits = append(bits, b)
		}
		return name.MaxOf(bits...)
	}
	for i := 0; i < 500; i++ {
		a, b := randName(), randName()
		got := JoinInterned(Intern(a), Intern(b)).Name()
		want := name.Join(a, b)
		if !got.Equal(want) {
			t.Fatalf("JoinInterned(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestAppendBitMemoized(t *testing.T) {
	h := Intern(mustName(t, "0+1"))
	z1, z2 := h.Append0(), h.Append0()
	if z1 != z2 {
		t.Error("Append0 not memoized to one handle")
	}
	if !z1.Name().Equal(h.Name().Append0()) {
		t.Errorf("Append0 = %v, want %v", z1.Name(), h.Name().Append0())
	}
	o := h.Append1()
	if !o.Name().Equal(h.Name().Append1()) {
		t.Errorf("Append1 = %v, want %v", o.Name(), h.Name().Append1())
	}
	if (*Interned)(nil).Append0() != nil {
		t.Error("∅·0 must be ∅")
	}
	if a := testing.AllocsPerRun(200, func() { _ = h.Append0() }); a != 0 {
		t.Errorf("memoized Append0 allocates %.1f/op, want 0", a)
	}
}

func TestInternedEncodingMatchesTrieEncode(t *testing.T) {
	for _, s := range []string{"∅", "ε", "0+1", "00+01+10+11"} {
		n := mustName(t, s)
		want := FromName(n).Encode()
		got := Intern(n).AppendEncoding(nil)
		if !bytes.Equal(got, want) {
			t.Errorf("cached encoding of %q = % x, trie encode = % x", s, got, want)
		}
		if Intern(n).EncodedLen() != len(want) {
			t.Errorf("EncodedLen(%q) = %d, want %d", s, Intern(n).EncodedLen(), len(want))
		}
	}
}

// TestInternConcurrent hammers the table from many goroutines over a shared
// working set; every goroutine must observe identical handles for identical
// names. Run under -race this also proves the table and the memoized fork
// slots are properly synchronized.
func TestInternConcurrent(t *testing.T) {
	const workers = 8
	names := make([]name.Name, 64)
	for i := range names {
		names[i] = mustName(t, fmt.Sprintf("0%05b+1%05b", i, (i*7)%64))
	}
	handles := make([][]*Interned, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]*Interned, len(names))
			for i, n := range names {
				h := Intern(n)
				h.Append0()
				h.Append1()
				out[i] = h
			}
			handles[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range names {
			if handles[w][i] != handles[0][i] {
				t.Fatalf("worker %d got a different handle for %v", w, names[i])
			}
		}
	}
}

func TestInternAllocationProfile(t *testing.T) {
	a := Intern(mustName(t, "00+010+10"))
	b := Intern(mustName(t, "00+010+10+110"))
	if allocs := testing.AllocsPerRun(200, func() {
		if !a.Leq(b) || b.Leq(a) {
			t.Fatal("unexpected order")
		}
	}); allocs != 0 {
		t.Errorf("interned Leq allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if JoinInterned(a, b) != b {
			t.Fatal("join should reuse b")
		}
	}); allocs != 0 {
		t.Errorf("dominated JoinInterned allocates %.1f/op, want 0", allocs)
	}
}

// TestInternOversizedNamesNotPinned: names whose encoding exceeds the
// table's per-record size bound must come back correct but unshared (id 0),
// so wire input cannot pin unbounded memory in the never-evicted table.
func TestInternOversizedNamesNotPinned(t *testing.T) {
	var bits []bitstr.Bits
	for i := 0; i < 600; i++ {
		b := bitstr.Epsilon
		for j := 0; j < 10; j++ {
			if (i>>j)&1 == 1 {
				b = b.Append1()
			} else {
				b = b.Append0()
			}
		}
		bits = append(bits, b)
	}
	huge := name.MaxOf(bits...)
	h := Intern(huge)
	if h == nil || !h.Name().Equal(huge) {
		t.Fatal("oversized name did not intern correctly")
	}
	if h.EncodedLen() <= maxInternedEncoding {
		t.Skipf("test name encodes in %d bytes; not oversized", h.EncodedLen())
	}
	if h.ID() != 0 {
		t.Errorf("oversized record is table-resident (id %d)", h.ID())
	}
	// Equality across unshared records still holds via the canonical bytes.
	if h2 := Intern(huge); !h.Equal(h2) || h == h2 {
		t.Errorf("oversized records must be distinct pointers yet Equal")
	}
	enc := h.AppendEncoding(nil)
	got, _, err := InternEncoded(enc)
	if err != nil || !got.Equal(h) || got.ID() != 0 {
		t.Errorf("InternEncoded of oversized name: %v id=%d err=%v", got, got.ID(), err)
	}
}

// TestInternRotationBoundsResidency is the fork-storm regression test for
// the two-generation intern table: a storm of distinct transient names must
// not grow the resident table past maxInterned, rotation must actually
// evict, and handles that were rotated out must keep comparing exactly like
// their naive name counterparts — including against freshly re-interned
// copies of themselves.
func TestInternRotationBoundsResidency(t *testing.T) {
	// Enough distinct names to force second rotations (the evicting kind) in
	// most shards: eviction needs more than maxInterned names issued.
	const steps = 340000
	base := Intern(mustName(t, "0"))
	rng := rand.New(rand.NewSource(42))
	type sample struct {
		h *Interned
		n name.Name
	}
	var samples []sample
	h := base
	for i := 0; i < steps; i++ {
		// Random walks deep enough that nearly every step mints a distinct
		// name, shallow enough that each append stays cheap.
		if h.EncodedLen() > 64 {
			h = base
		}
		if rng.Intn(2) == 0 {
			h = h.Append0()
		} else {
			h = h.Append1()
		}
		if i%2500 == 0 {
			samples = append(samples, sample{h: h, n: h.Name()})
		}
	}

	resident := InternedResident()
	issued := InternedCount()
	if resident > maxInterned {
		t.Fatalf("resident table %d records, bound is %d", resident, maxInterned)
	}
	if int64(resident) >= issued {
		t.Fatalf("no eviction: %d resident of %d issued — rotation never fired", resident, issued)
	}
	t.Logf("storm of %d forks: %d ids issued, %d resident (bound %d)",
		steps, issued, resident, maxInterned)

	// Every sampled handle — most long since rotated out — must agree with
	// the naive name-level comparison against every other sample, and must
	// compare Equal to a fresh re-intern of its own name even when that
	// re-intern is a different record.
	for i, a := range samples {
		re := Intern(a.n)
		if !re.Equal(a.h) || !a.h.Equal(re) {
			t.Fatalf("sample %d: re-interned copy not Equal to the original handle", i)
		}
		if !a.h.Leq(re) || !re.Leq(a.h) {
			t.Fatalf("sample %d: re-interned copy not Leq-equivalent", i)
		}
		for j, b := range samples {
			if got, want := a.h.Leq(b.h), a.n.Leq(b.n); got != want {
				t.Fatalf("samples %d vs %d: interned Leq = %v, naive = %v", i, j, got, want)
			}
			if got, want := a.h.Equal(b.h), a.n.Equal(b.n); got != want {
				t.Fatalf("samples %d vs %d: interned Equal = %v, naive = %v", i, j, got, want)
			}
			if got, want := a.h.IncomparableTo(b.h), a.n.IncomparableTo(b.n); got != want {
				t.Fatalf("samples %d vs %d: interned IncomparableTo = %v, naive = %v", i, j, got, want)
			}
		}
	}
}

package trie

import (
	"bytes"
	"testing"
)

// FuzzDecode checks the structural decoder on arbitrary bytes: no panics,
// only valid tries, canonical re-encoding.
func FuzzDecode(f *testing.F) {
	var empty *Node
	f.Add(empty.Encode())
	f.Add(Leaf().Encode())
	f.Add([]byte{0x04, 0b10000000})
	f.Add([]byte{0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, used, err := Decode(data)
		if err != nil {
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("implausible consumed count %d of %d", used, len(data))
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid trie: %v", err)
		}
		re := n.Encode()
		back, used2, err := Decode(re)
		if err != nil || used2 != len(re) || !back.Equal(n) {
			t.Fatalf("re-encode not canonical: %v", err)
		}
		// The decoded trie represents a valid name.
		if err := n.ToName().Validate(); err != nil {
			t.Fatalf("decoded trie yields invalid name: %v", err)
		}
		_ = bytes.Equal(re, data[:used]) // encodings may differ only in frame slack; not asserted
	})
}

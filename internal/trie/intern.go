package trie

import (
	"fmt"
	"sync"
	"sync/atomic"

	"versionstamp/internal/bitstr"
	"versionstamp/internal/name"
)

// Hash-consed canonical names. Every distinct name the process works with is
// represented at most once by an *Interned record keyed by the name's
// structural trie encoding (Encode), which is canonical: one name, one byte
// string. Handing stamps around as handles instead of slice-backed names
// turns the operations the kvstore hot paths hammer into pointer work:
//
//   - equality of interned names is pointer comparison;
//   - Leq/Covers/Compare walk the two operands in place (package name's
//     sorted-slice walks) and never build a trie or an intermediate slice;
//   - Join returns the dominating operand's handle unchanged when one side
//     already contains the other, and Append0/Append1 memoize their results
//     per record, so a fork of an already-seen id allocates nothing;
//   - the wire encoding of an interned name is the table key itself, so
//     marshaling appends cached bytes and decoding dedups on arrival
//     (InternEncoded) without re-walking anything.
//
// The paper's stamps grow with the width of the current frontier, not with
// history, so a store of millions of keys draws its stamp components from a
// tiny set of distinct names — the table stays small while hit rates stay
// near perfect. The nil *Interned is the empty name ∅, mirroring the nil
// *Node convention.
//
// Records are immutable once published. The table holds at most maxInterned
// resident records (of at most maxInternedEncoding bytes each) using a
// two-generation rotation per shard: when a shard's current generation
// fills its budget, it becomes the old generation and a fresh one starts;
// records still in use get promoted back on their next lookup (same
// pointer, so handle identity survives promotion), and records nobody asks
// for again age out with the generation after next. A fork/join storm of
// transient names therefore cannot grow the table without bound, while the
// steady-state working set — the paper's frontier names, a tiny recurring
// set — stays permanently hot. Eviction is safe because equality falls back
// to canonical-encoding comparison (Equal/Leq check enc, not just
// pointers), and ids are issued monotonically and never reused, so a
// dangling handle still compares correctly against a re-interned copy of
// the same name and stale comparison-cache entries can never alias.

// internShards is the stripe count of the intern table; interning from many
// goroutines (32 kvstore shards, gossip workers) contends on a shard each,
// not on one lock.
const internShards = 64

// maxInterned bounds the total number of table-resident records across both
// generations of every shard. Each shard rotates generations when its
// current one reaches maxInterned/(2*internShards) records, so residency
// can never exceed the bound — new names keep interning forever, old unused
// ones age out instead of the table refusing service.
const maxInterned = 1 << 18

// internShardBudget is one generation's record budget in one shard.
const internShardBudget = maxInterned / (2 * internShards)

// maxInternedID caps id issuance. Ids are monotonic and never reused (so
// comparison-cache entries for evicted records cannot alias); a process
// that somehow interns a billion distinct names falls back to id-0 handles,
// which stay correct but skip the comparison caches. The cap keeps packed
// (id, id) cache keys under 62 bits — see core's comparison cache.
const maxInternedID = 1 << 30

// maxInternedEncoding bounds the encoded size of a table-resident record.
// The table is fed by wire decoding (InternEncoded) and never evicts, so
// without a size bound an untrusted peer could pin arbitrarily large decoded
// names for the process lifetime; a 2^26-bit encoding expands to a name of
// millions of strings. Honest stamps encode in tens of bytes (they grow with
// frontier width, not history), so 256 bytes is far above any real name
// while capping worst-case resident table memory at a few tens of MB.
// Oversized names still work — as unshared overflow handles that the GC
// reclaims with the data that references them.
const maxInternedEncoding = 256

// Interned is a hash-consed name: a shared, immutable record holding the
// name, its canonical trie encoding (the intern key), and a small unique id
// for use as a comparison-cache key. The zero id marks an overflow record
// that is not table-resident. The nil *Interned is the empty name.
type Interned struct {
	id   uint32
	enc  string    // canonical trie encoding, the hash-cons key
	name name.Name // sorted-slice representation for in-place walks

	// zero and one memoize AppendBit results: forking an id that has been
	// forked before is two pointer loads. Benign races store the same
	// table-resident pointer; overflow records may store distinct but equal
	// handles, which every comparison treats as equal via enc.
	zero, one atomic.Pointer[Interned]
}

type internShard struct {
	mu  sync.RWMutex
	m   map[string]*Interned // current generation
	old map[string]*Interned // previous generation; hits promote back to m
}

var (
	internTable [internShards]internShard
	// internCount counts ids ever issued; a new record's id is the count
	// after its own insertion, which is unique for the process lifetime —
	// rotation evicts records but never frees their ids for reuse.
	internCount atomic.Int64
)

func init() {
	for i := range internTable {
		internTable[i].m = make(map[string]*Interned)
	}
}

// lookup probes both generations for enc, promoting an old-generation hit
// back into the current one (same pointer, so handle identity is stable).
func (sh *internShard) lookup(enc string) *Interned {
	sh.mu.RLock()
	rec := sh.m[enc]
	if rec == nil && sh.old != nil {
		rec = sh.old[enc]
	}
	sh.mu.RUnlock()
	if rec == nil {
		return nil
	}
	sh.mu.Lock()
	// Re-probe under the lock: a concurrent rotation may have moved things.
	if cur := sh.m[enc]; cur != nil {
		sh.mu.Unlock()
		return cur
	}
	if sh.old != nil {
		if or := sh.old[enc]; or != nil {
			rec = or
			delete(sh.old, enc)
		}
	}
	sh.insertLocked(enc, rec)
	sh.mu.Unlock()
	return rec
}

// insertLocked publishes rec in the current generation, rotating first when
// the generation is at budget. sh.mu must be held.
func (sh *internShard) insertLocked(enc string, rec *Interned) {
	if len(sh.m) >= internShardBudget {
		sh.old = sh.m
		sh.m = make(map[string]*Interned, internShardBudget/4)
	}
	sh.m[enc] = rec
}

// emptyEncoding is the canonical encoding of the empty trie (one 0 bit):
// uvarint bit count 1, then a zero byte.
var emptyEncoding = (*Node)(nil).Encode()

// internShardFor picks the table stripe for an encoding (FNV-1a).
func internShardFor(enc string) *internShard {
	h := uint32(2166136261)
	for i := 0; i < len(enc); i++ {
		h ^= uint32(enc[i])
		h *= 16777619
	}
	return &internTable[h%internShards]
}

// lookupOrInsert returns the table record for enc, inserting the candidate
// build result on a miss. The candidate is built outside the lock by the
// caller; losing a publish race returns the winner, so one name never has
// two table-resident records.
func lookupOrInsert(enc string, build func() name.Name) *Interned {
	sh := internShardFor(enc)
	if rec := sh.lookup(enc); rec != nil {
		return rec
	}
	cand := &Interned{enc: enc, name: build()}
	if len(enc) > maxInternedEncoding {
		return cand // oversized: correct but unshared and GC-able, id 0
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rec := sh.m[enc]; rec != nil {
		return rec
	}
	if sh.old != nil {
		if rec := sh.old[enc]; rec != nil {
			delete(sh.old, enc)
			sh.insertLocked(enc, rec)
			return rec
		}
	}
	if internCount.Load() < maxInternedID {
		// Beyond the id cap, records still intern and dedup — they just
		// carry id 0 and skip the comparison caches.
		cand.id = uint32(internCount.Add(1))
	}
	sh.insertLocked(enc, cand)
	return cand
}

// Intern returns the canonical handle for n. The empty name interns to nil.
// n must be a valid Name (the package name API guarantees this); Intern does
// not re-validate.
func Intern(n name.Name) *Interned {
	if n.IsEmpty() {
		return nil
	}
	enc := string(FromName(n).Encode())
	return lookupOrInsert(enc, func() name.Name { return n })
}

// InternEncoded reads one trie-encoded name from the front of src and
// returns its canonical handle plus the bytes consumed. A table hit costs a
// map lookup on the raw bytes — no trie is decoded, no name built — which is
// what makes wire ingestion dedup on arrival. Misses decode, validate and
// re-encode canonically (wire padding bits are not part of the key).
func InternEncoded(src []byte) (*Interned, int, error) {
	n, used := encodedLen(src)
	if used <= 0 {
		return nil, 0, errCorrupt
	}
	raw := src[:n]
	sh := internShardFor(string(raw))
	sh.mu.RLock()
	rec := sh.m[string(raw)] // compiler-recognized no-alloc map lookup
	inOld := false
	if rec == nil && sh.old != nil {
		rec = sh.old[string(raw)]
		inOld = rec != nil
	}
	sh.mu.RUnlock()
	if rec != nil {
		if inOld {
			// Old-generation hit: promote so the record survives the next
			// rotation. The allocation is paid at most once per generation.
			sh.lookup(string(raw))
		}
		return rec, n, nil
	}
	root, used, err := Decode(src)
	if err != nil {
		return nil, 0, err
	}
	if root == nil {
		return nil, used, nil
	}
	// Key under the canonical re-encoding: a peer that pads its bit stream
	// differently must still dedup onto the same record.
	enc := string(root.Encode())
	return lookupOrInsert(enc, root.ToName), used, nil
}

// encodedLen returns the total byte length of one encoded trie at the front
// of src (uvarint frame plus padded bit stream), or 0,-1 on truncation. It
// mirrors Decode's framing without touching the bits.
func encodedLen(src []byte) (int, int) {
	var nbit uint64
	var shift uint
	for i := 0; i < len(src); i++ {
		b := src[i]
		if shift >= 63 {
			return 0, -1
		}
		nbit |= uint64(b&0x7f) << shift
		if b < 0x80 {
			if nbit > maxEncodedBits {
				return 0, -1
			}
			total := i + 1 + (int(nbit)+7)/8
			if total > len(src) {
				return 0, -1
			}
			return total, i + 1
		}
		shift += 7
	}
	return 0, -1
}

// InternedCount reports how many table ids have ever been issued — a
// monotone counter over the process lifetime (rotation evicts records but
// never reuses ids). For the current table footprint see InternedResident.
func InternedCount() int64 { return internCount.Load() }

// InternedResident reports how many records the table currently holds
// across both generations of every shard — bounded by maxInterned no matter
// how many distinct names the process has interned.
func InternedResident() int {
	total := 0
	for i := range internTable {
		sh := &internTable[i]
		sh.mu.RLock()
		total += len(sh.m) + len(sh.old)
		sh.mu.RUnlock()
	}
	return total
}

// Name returns the sorted-slice representation. The nil handle is ∅.
func (t *Interned) Name() name.Name {
	if t == nil {
		return name.Empty()
	}
	return t.name
}

// ID returns the record's table id: nonzero and unique for the process
// lifetime (never reused after eviction), 0 for nil (∅) and overflow
// records. Ids never exceed maxInternedID (2^30), so they pack into
// comparison-cache keys.
func (t *Interned) ID() uint32 {
	if t == nil {
		return 0
	}
	return t.id
}

// IsEmpty reports whether the handle is the empty name.
func (t *Interned) IsEmpty() bool { return t == nil }

// Len returns the number of strings in the name.
func (t *Interned) Len() int {
	if t == nil {
		return 0
	}
	return t.name.Len()
}

// AppendEncoding appends the canonical trie encoding — the intern key
// itself, no trie rebuilt, no walk.
func (t *Interned) AppendEncoding(dst []byte) []byte {
	if t == nil {
		return append(dst, emptyEncoding...)
	}
	return append(dst, t.enc...)
}

// EncodedLen returns the length of AppendEncoding's output.
func (t *Interned) EncodedLen() int {
	if t == nil {
		return len(emptyEncoding)
	}
	return len(t.enc)
}

// Equal reports set equality: pointer comparison for table-resident
// handles, canonical-encoding comparison across overflow duplicates.
func (t *Interned) Equal(u *Interned) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil {
		return false
	}
	return t.enc == u.enc
}

// Leq reports the name order t ⊑ u by walking both operands in place.
func (t *Interned) Leq(u *Interned) bool {
	if t == u || t == nil {
		return true
	}
	if u == nil {
		return false
	}
	if t.enc == u.enc {
		return true
	}
	return t.name.Leq(u.name)
}

// Covers reports {b} ⊑ t.
func (t *Interned) Covers(b bitstr.Bits) bool {
	if t == nil {
		return false
	}
	return t.name.Covers(b)
}

// IncomparableTo reports pairwise incomparability of every string pair —
// the Invariant I2 relation between frontier ids.
func (t *Interned) IncomparableTo(u *Interned) bool {
	if t == nil || u == nil {
		return true // vacuous: no strings to compare
	}
	if t == u || t.enc == u.enc {
		return false // a nonempty name is comparable to itself
	}
	return t.name.IncomparableTo(u.name)
}

// JoinInterned returns the canonical handle of t ⊔ u. When one side already
// dominates, the dominating handle is returned unchanged — the steady state
// of converged stores, costing two in-place walks and zero allocations.
func JoinInterned(t, u *Interned) *Interned {
	if t == nil || t == u {
		return u
	}
	if u == nil {
		return t
	}
	if t.Leq(u) {
		return u
	}
	if u.Leq(t) {
		return t
	}
	return Intern(name.Join(t.name, u.name))
}

// Append0 returns the handle of t·0, memoized per record: repeated forks of
// the same id are two pointer loads after the first.
func (t *Interned) Append0() *Interned { return t.appendBit(bitstr.Zero) }

// Append1 returns the handle of t·1.
func (t *Interned) Append1() *Interned { return t.appendBit(bitstr.One) }

func (t *Interned) appendBit(bit byte) *Interned {
	if t == nil {
		return nil
	}
	slot := &t.zero
	if bit == bitstr.One {
		slot = &t.one
	}
	if child := slot.Load(); child != nil {
		return child
	}
	var appended name.Name
	if bit == bitstr.Zero {
		appended = t.name.Append0()
	} else {
		appended = t.name.Append1()
	}
	child := Intern(appended)
	slot.Store(child)
	return child
}

// String renders the name in the paper's notation.
func (t *Interned) String() string {
	if t == nil {
		return "∅"
	}
	return t.name.String()
}

// Validate checks the record's internal consistency (name validity and
// encoding agreement); used by fuzzing.
func (t *Interned) Validate() error {
	if t == nil {
		return nil
	}
	if err := t.name.Validate(); err != nil {
		return err
	}
	if got := string(FromName(t.name).Encode()); got != t.enc {
		return fmt.Errorf("trie: interned encoding mismatch: %q vs %q", got, t.enc)
	}
	return nil
}

package trie

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Structural bit encoding. Each node costs:
//
//	present leaf:   1 bit  ("1")
//	interior node:  3 bits ("0" + zero-child flag + one-child flag)
//
// preceded by one root flag bit (0 = empty set). Strings sharing prefixes
// share the bits of those prefixes, so bushy names encode smaller than the
// flat per-string format of package name (compared in the E5 benchmarks).
// The stream is padded to a byte boundary and framed by a uvarint bit
// count.

// errCorrupt is returned for syntactically invalid encodings.
var errCorrupt = errors.New("trie: corrupt encoding")

// maxEncodedBits bounds decoder work against adversarial input.
const maxEncodedBits = 1 << 26

// bitWriter accumulates MSB-first bits.
type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) writeBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[len(w.buf)-1] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

// bitReader consumes MSB-first bits.
type bitReader struct {
	buf  []byte
	pos  int
	nbit int
}

func (r *bitReader) readBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, errCorrupt
	}
	byteIdx := r.pos / 8
	if byteIdx >= len(r.buf) {
		return false, errCorrupt
	}
	bit := r.buf[byteIdx]&(1<<(7-uint(r.pos%8))) != 0
	r.pos++
	return bit, nil
}

// EncodedBits returns the exact size of the structural encoding in bits
// (excluding the byte-level framing).
func (t *Node) EncodedBits() int {
	return 1 + nodeBits(t)
}

func nodeBits(t *Node) int {
	if t == nil {
		return 0
	}
	if t.present {
		return 1
	}
	return 3 + nodeBits(t.zero) + nodeBits(t.one)
}

// Encode serializes the trie: uvarint bit count followed by the padded bit
// stream.
func (t *Node) Encode() []byte {
	var w bitWriter
	if t == nil {
		w.writeBit(false)
	} else {
		w.writeBit(true)
		encodeNode(&w, t)
	}
	out := binary.AppendUvarint(nil, uint64(w.nbit))
	return append(out, w.buf...)
}

func encodeNode(w *bitWriter, t *Node) {
	if t.present {
		w.writeBit(true)
		return
	}
	w.writeBit(false)
	w.writeBit(t.zero != nil)
	w.writeBit(t.one != nil)
	if t.zero != nil {
		encodeNode(w, t.zero)
	}
	if t.one != nil {
		encodeNode(w, t.one)
	}
}

// Decode reads one encoded trie from the front of src and returns the bytes
// consumed. The result is structurally validated.
func Decode(src []byte) (*Node, int, error) {
	nbit, off := binary.Uvarint(src)
	if off <= 0 {
		return nil, 0, errCorrupt
	}
	if nbit > maxEncodedBits {
		return nil, 0, fmt.Errorf("trie: implausible encoding of %d bits", nbit)
	}
	nbytes := (int(nbit) + 7) / 8
	if off+nbytes > len(src) {
		return nil, 0, errCorrupt
	}
	r := &bitReader{buf: src[off : off+nbytes], nbit: int(nbit)}
	rootFlag, err := r.readBit()
	if err != nil {
		return nil, 0, err
	}
	var root *Node
	if rootFlag {
		root, err = decodeNode(r)
		if err != nil {
			return nil, 0, err
		}
	}
	if r.pos != r.nbit {
		return nil, 0, fmt.Errorf("trie: %d unread bits", r.nbit-r.pos)
	}
	if err := root.Validate(); err != nil {
		return nil, 0, err
	}
	return root, off + nbytes, nil
}

func decodeNode(r *bitReader) (*Node, error) {
	present, err := r.readBit()
	if err != nil {
		return nil, err
	}
	if present {
		return leaf, nil
	}
	hasZero, err := r.readBit()
	if err != nil {
		return nil, err
	}
	hasOne, err := r.readBit()
	if err != nil {
		return nil, err
	}
	if !hasZero && !hasOne {
		return nil, errCorrupt
	}
	var z, o *Node
	if hasZero {
		if z, err = decodeNode(r); err != nil {
			return nil, err
		}
	}
	if hasOne {
		if o, err = decodeNode(r); err != nil {
			return nil, err
		}
	}
	return &Node{zero: z, one: o}, nil
}

package trie

import (
	"math/rand"
	"testing"

	"versionstamp/internal/name"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		n := FromName(randName(rng, 10, 10))
		data := n.Encode()
		back, used, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode(%v): %v", n, err)
		}
		if used != len(data) {
			t.Fatalf("consumed %d of %d bytes", used, len(data))
		}
		if !back.Equal(n) {
			t.Fatalf("round trip %v -> %v", n, back)
		}
	}
}

func TestEncodedBitsExact(t *testing.T) {
	tests := []struct {
		in   string
		want int // 1 root flag + per-node bits
	}{
		{"∅", 1},
		{"ε", 2},        // root flag + leaf
		{"0", 5},        // root flag + interior(3) + leaf
		{"0+1", 6},      // root flag + interior(3) + leaf + leaf
		{"00+01+1", 10}, // root + int(3) + int(3) + leaf + leaf + leaf
	}
	for _, tt := range tests {
		n := FromName(name.MustParse(tt.in))
		if got := n.EncodedBits(); got != tt.want {
			t.Errorf("EncodedBits(%s) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestEncodeEmptyAndStream(t *testing.T) {
	var empty *Node
	data := empty.Encode()
	back, used, err := Decode(data)
	if err != nil || used != len(data) || back != nil {
		t.Fatalf("Decode(empty) = %v,%d,%v", back, used, err)
	}
	// Two tries back to back.
	buf := append(Leaf().Encode(), FromName(name.MustParse("0+10")).Encode()...)
	first, used, err := Decode(buf)
	if err != nil || !first.Equal(Leaf()) {
		t.Fatalf("stream decode 1: %v, %v", first, err)
	}
	second, used2, err := Decode(buf[used:])
	if err != nil || second.String() != "0+10" {
		t.Fatalf("stream decode 2: %v, %v", second, err)
	}
	if used+used2 != len(buf) {
		t.Fatalf("stream not fully consumed")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x08},             // claims 8 bits, no payload
		{0x03, 0b10000000}, // root flag 1 then truncated node... 3 bits: "100" = interior with no children
		{0x01, 0x00, 0xFF}, // trailing? (decode takes prefix; this is fine) — replaced below
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // huge bit count
	}
	// Rebuild case 3 to be genuinely bad: interior node with both child
	// flags 0 ("0 00") preceded by root flag 1 -> bits "1000", 4 bits.
	cases[3] = []byte{0x04, 0b10000000}
	for _, data := range cases {
		if _, _, err := Decode(data); err == nil {
			t.Errorf("Decode(%x) accepted garbage", data)
		}
	}
}

func TestDecodeRejectsUnreadBits(t *testing.T) {
	// Valid leaf ("1" after root flag "1") but bit count claims 10 bits.
	data := []byte{0x0A, 0b11000000, 0x00}
	if _, _, err := Decode(data); err == nil {
		t.Error("unread bits must be rejected")
	}
}

func TestCompactness(t *testing.T) {
	// A bushy collapsible-adjacent name: the trie encoding shares prefixes,
	// the flat encoding repeats them. 8 strings of length 3 = full level:
	// flat: 1 + 8*(1+1) = 17 bytes; trie: 1+7*3+8 = 30 bits ≈ 4 bytes + frame.
	full := name.MustParse("000+001+010+011+100+101+110+111")
	tr := FromName(full)
	flatBytes := full.EncodedSize()
	trieBytes := len(tr.Encode())
	if trieBytes >= flatBytes {
		t.Errorf("trie encoding (%d B) not smaller than flat (%d B) for %v",
			trieBytes, flatBytes, full)
	}
}

func TestEncodedBitsMatchesEncodeLength(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		n := FromName(randName(rng, 12, 8))
		bits := n.EncodedBits()
		data := n.Encode()
		// Frame: uvarint(bits) + ceil(bits/8) payload bytes.
		wantPayload := (bits + 7) / 8
		frame := 1
		for v := uint64(bits); v >= 0x80; v >>= 7 {
			frame++
		}
		if len(data) != frame+wantPayload {
			t.Fatalf("Encode length %d, want %d (bits=%d)", len(data), frame+wantPayload, bits)
		}
	}
}

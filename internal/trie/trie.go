// Package trie provides a binary-trie representation of names (antichains of
// binary strings), the alternative to package name's sorted-slice
// representation.
//
// A name's strings are the present leaves of a binary trie; the antichain
// property means a present node never has descendants. The trie view makes
// two things natural:
//
//   - the Section 6 reduction is a local transformation (a node whose two
//     children are present leaves collapses into a present leaf), and
//   - a structural bit-level encoding that is denser than the flat string
//     encoding for deep, bushy ids.
//
// The package exists as an ablation (experiment E5/E6 benchmarks compare the
// two representations) and as an independent implementation whose agreement
// with package name is property-tested. Interval tree clocks (internal/itc),
// the successor design, make this representation canonical.
package trie

import (
	"fmt"
	"strings"

	"versionstamp/internal/bitstr"
	"versionstamp/internal/name"
)

// Node is a trie over {0,1} paths. The nil *Node is the empty set. A node
// with present == true is a member leaf and has no children. Interior nodes
// have at least one non-nil child.
//
// Nodes are immutable once built; operations return new structure and may
// share subtrees with their inputs.
type Node struct {
	present   bool
	zero, one *Node
}

// leaf is the shared present-leaf node.
var leaf = &Node{present: true}

// Leaf returns the trie containing exactly the empty string ε (the name {ε}).
func Leaf() *Node { return leaf }

// FromName converts a sorted-slice name into a trie.
func FromName(n name.Name) *Node {
	var root *Node
	for _, s := range n.Bits() {
		root = insert(root, s)
	}
	return root
}

// insert adds the string s to the trie. Inputs from valid names never
// violate the antichain property; insert preserves whatever structure it is
// given and never overwrites a present leaf.
func insert(t *Node, s bitstr.Bits) *Node {
	if s.Len() == 0 {
		if t == nil {
			return leaf
		}
		// Attempting to insert a prefix of existing members: keep the
		// deeper structure (maximal elements win).
		return t
	}
	head, _ := s.Bit(0)
	rest := s[1:]
	if t != nil && t.present {
		// Existing member is a prefix of s: maximal element s wins.
		t = nil
	}
	var z, o *Node
	if t != nil {
		z, o = t.zero, t.one
	}
	if head == bitstr.Zero {
		z = insert(z, rest)
	} else {
		o = insert(o, rest)
	}
	return &Node{zero: z, one: o}
}

// ToName converts the trie back to the sorted-slice representation.
func (t *Node) ToName() name.Name {
	var bits []bitstr.Bits
	collect(t, bitstr.Epsilon, &bits)
	return name.MaxOf(bits...)
}

func collect(t *Node, prefix bitstr.Bits, out *[]bitstr.Bits) {
	if t == nil {
		return
	}
	if t.present {
		*out = append(*out, prefix)
		return
	}
	collect(t.zero, prefix.Append0(), out)
	collect(t.one, prefix.Append1(), out)
}

// IsEmpty reports whether the trie holds no strings.
func (t *Node) IsEmpty() bool { return t == nil }

// Len returns the number of member strings.
func (t *Node) Len() int {
	if t == nil {
		return 0
	}
	if t.present {
		return 1
	}
	return t.zero.Len() + t.one.Len()
}

// Covers reports {b} ⊑ t: some member extends b.
func (t *Node) Covers(b bitstr.Bits) bool {
	for i := 0; i < b.Len(); i++ {
		if t == nil {
			return false
		}
		if t.present {
			// A member is a strict prefix of b; members cannot extend b.
			return false
		}
		bit, _ := b.Bit(i)
		if bit == bitstr.Zero {
			t = t.zero
		} else {
			t = t.one
		}
	}
	return t != nil
}

// Leq reports the name order t ⊑ u: every member of t has an extension
// among the members of u.
func (t *Node) Leq(u *Node) bool {
	if t == nil {
		return true
	}
	if u == nil {
		return false
	}
	if t.present {
		// The member ending here needs any member of u at or below this
		// point; u non-nil guarantees one.
		return true
	}
	if u.present {
		// u's member is a strict prefix of everything below t here, so it
		// extends none of t's members.
		return false
	}
	return t.zero.Leq(u.zero) && t.one.Leq(u.one)
}

// Equal reports set equality.
func (t *Node) Equal(u *Node) bool {
	if t == nil || u == nil {
		return t == nil && u == nil
	}
	if t.present != u.present {
		return false
	}
	return t.zero.Equal(u.zero) && t.one.Equal(u.one)
}

// Join returns the maximal elements of the union of t and u (the name join).
func Join(t, u *Node) *Node {
	switch {
	case t == nil:
		return u
	case u == nil:
		return t
	case t.present && u.present:
		return leaf
	case t.present:
		// t's member is a prefix of every member of u below here; u's
		// members are maximal.
		return u
	case u.present:
		return t
	default:
		return &Node{zero: Join(t.zero, u.zero), one: Join(t.one, u.one)}
	}
}

// Collapse rewrites the trie to the normal form in which no node has two
// present-leaf children: such pairs merge into a present leaf, cascading
// upward. This is the id-component half of the Section 6 reduction.
func (t *Node) Collapse() *Node {
	if t == nil || t.present {
		return t
	}
	z, o := t.zero.Collapse(), t.one.Collapse()
	if z != nil && o != nil && z.present && o.present {
		return leaf
	}
	return &Node{zero: z, one: o}
}

// AppendBit pushes every member one level down: members s become s·bit.
// It implements the fork digit-append in trie form.
func (t *Node) AppendBit(bit byte) (*Node, error) {
	switch bit {
	case bitstr.Zero, bitstr.One:
	default:
		return nil, fmt.Errorf("trie: invalid bit %q", bit)
	}
	return appendBit(t, bit), nil
}

func appendBit(t *Node, bit byte) *Node {
	if t == nil {
		return nil
	}
	if t.present {
		if bit == bitstr.Zero {
			return &Node{zero: leaf}
		}
		return &Node{one: leaf}
	}
	return &Node{zero: appendBit(t.zero, bit), one: appendBit(t.one, bit)}
}

// Validate checks structural invariants: present nodes are leaves, interior
// nodes have at least one child.
func (t *Node) Validate() error {
	if t == nil {
		return nil
	}
	if t.present {
		if t.zero != nil || t.one != nil {
			return fmt.Errorf("trie: present node with children")
		}
		return nil
	}
	if t.zero == nil && t.one == nil {
		return fmt.Errorf("trie: interior node with no children")
	}
	if err := t.zero.Validate(); err != nil {
		return err
	}
	return t.one.Validate()
}

// String renders the trie in the paper's sum notation via ToName.
func (t *Node) String() string {
	if t == nil {
		return "∅"
	}
	var sb strings.Builder
	var walk func(n *Node, prefix string)
	first := true
	walk = func(n *Node, prefix string) {
		if n == nil {
			return
		}
		if n.present {
			if !first {
				sb.WriteByte('+')
			}
			first = false
			if prefix == "" {
				sb.WriteString("ε")
			} else {
				sb.WriteString(prefix)
			}
			return
		}
		walk(n.zero, prefix+"0")
		walk(n.one, prefix+"1")
	}
	walk(t, "")
	return sb.String()
}

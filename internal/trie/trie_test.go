package trie

import (
	"math/rand"
	"testing"

	"versionstamp/internal/bitstr"
	"versionstamp/internal/name"
)

func randName(rng *rand.Rand, maxStrings, maxLen int) name.Name {
	n := rng.Intn(maxStrings + 1)
	bits := make([]bitstr.Bits, 0, n)
	for i := 0; i < n; i++ {
		l := rng.Intn(maxLen + 1)
		b := bitstr.Epsilon
		for j := 0; j < l; j++ {
			if rng.Intn(2) == 0 {
				b = b.Append0()
			} else {
				b = b.Append1()
			}
		}
		bits = append(bits, b)
	}
	return name.MaxOf(bits...)
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := randName(rng, 10, 8)
		tr := FromName(n)
		if err := tr.Validate(); err != nil {
			t.Fatalf("FromName(%v) invalid: %v", n, err)
		}
		back := tr.ToName()
		if !back.Equal(n) {
			t.Fatalf("round trip %v -> %v", n, back)
		}
	}
}

func TestEmptyAndLeaf(t *testing.T) {
	var empty *Node
	if !empty.IsEmpty() || empty.Len() != 0 {
		t.Error("nil trie must be empty")
	}
	if empty.String() != "∅" {
		t.Errorf("String(∅) = %q", empty.String())
	}
	if Leaf().Len() != 1 || Leaf().String() != "ε" {
		t.Errorf("Leaf() = %v", Leaf())
	}
	if !FromName(name.Empty()).IsEmpty() {
		t.Error("FromName(∅) must be nil")
	}
	if !FromName(name.Epsilon()).Equal(Leaf()) {
		t.Error("FromName({ε}) must be the leaf")
	}
}

func TestLenMatchesName(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		n := randName(rng, 10, 6)
		if got := FromName(n).Len(); got != n.Len() {
			t.Fatalf("Len(%v) = %d, want %d", n, got, n.Len())
		}
	}
}

func TestCoversAgreesWithName(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 800; i++ {
		n := randName(rng, 8, 6)
		tr := FromName(n)
		probeName := randName(rng, 1, 6)
		probe := bitstr.Epsilon
		if probeName.Len() == 1 {
			probe, _ = probeName.At(0)
		}
		if got, want := tr.Covers(probe), n.Covers(probe); got != want {
			t.Fatalf("Covers(%v, %v) = %v, want %v", n, probe, got, want)
		}
	}
}

func TestLeqAgreesWithName(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 800; i++ {
		a, b := randName(rng, 8, 6), randName(rng, 8, 6)
		if got, want := FromName(a).Leq(FromName(b)), a.Leq(b); got != want {
			t.Fatalf("Leq(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestJoinAgreesWithName(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 800; i++ {
		a, b := randName(rng, 8, 6), randName(rng, 8, 6)
		got := Join(FromName(a), FromName(b))
		if err := got.Validate(); err != nil {
			t.Fatalf("Join(%v,%v) invalid: %v", a, b, err)
		}
		want := name.Join(a, b)
		if !got.ToName().Equal(want) {
			t.Fatalf("Join(%v, %v) = %v, want %v", a, b, got.ToName(), want)
		}
	}
}

func TestEqualAgreesWithName(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		a, b := randName(rng, 6, 5), randName(rng, 6, 5)
		if got, want := FromName(a).Equal(FromName(b)), a.Equal(b); got != want {
			t.Fatalf("Equal(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestCollapse(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"∅", "∅"},
		{"ε", "ε"},
		{"0", "0"},
		{"0+1", "ε"},
		{"00+01", "0"},
		{"00+01+1", "ε"},
		{"00+01+10", "0+10"},
		{"000+001+01+10+11", "ε"},
		{"00+011+10", "00+011+10"}, // nothing collapses
	}
	for _, tt := range tests {
		got := FromName(name.MustParse(tt.in)).Collapse()
		if err := got.Validate(); err != nil {
			t.Fatalf("Collapse(%s) invalid: %v", tt.in, err)
		}
		if got.String() != tt.want {
			t.Errorf("Collapse(%s) = %v, want %s", tt.in, got, tt.want)
		}
	}
}

func TestCollapseAgreesWithSiblingFixpoint(t *testing.T) {
	// Collapse must compute exactly the fixpoint of name.CollapseSiblings.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		n := randName(rng, 10, 6)
		got := FromName(n).Collapse().ToName()
		want := n
		for {
			s, ok := want.SiblingPair()
			if !ok {
				break
			}
			want, _ = want.CollapseSiblings(s)
		}
		if !got.Equal(want) {
			t.Fatalf("Collapse(%v) = %v, want fixpoint %v", n, got, want)
		}
	}
}

func TestCollapseIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		n := FromName(randName(rng, 10, 6)).Collapse()
		if !n.Collapse().Equal(n) {
			t.Fatalf("Collapse not idempotent on %v", n)
		}
	}
}

func TestAppendBit(t *testing.T) {
	n := name.MustParse("0+10")
	tr := FromName(n)
	z, err := tr.AppendBit(bitstr.Zero)
	if err != nil {
		t.Fatalf("AppendBit: %v", err)
	}
	if !z.ToName().Equal(n.Append0()) {
		t.Errorf("AppendBit(0) = %v, want %v", z.ToName(), n.Append0())
	}
	o, err := tr.AppendBit(bitstr.One)
	if err != nil {
		t.Fatalf("AppendBit: %v", err)
	}
	if !o.ToName().Equal(n.Append1()) {
		t.Errorf("AppendBit(1) = %v, want %v", o.ToName(), n.Append1())
	}
	if _, err := tr.AppendBit('x'); err == nil {
		t.Error("AppendBit('x') must fail")
	}
	var empty *Node
	z2, err := empty.AppendBit(bitstr.Zero)
	if err != nil || z2 != nil {
		t.Error("AppendBit on empty must stay empty")
	}
}

func TestAppendBitAgreesWithName(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		n := randName(rng, 8, 5)
		tr := FromName(n)
		z, _ := tr.AppendBit(bitstr.Zero)
		if !z.ToName().Equal(n.Append0()) {
			t.Fatalf("AppendBit(0) disagrees on %v", n)
		}
	}
}

func TestImmutability(t *testing.T) {
	a := name.MustParse("00+01")
	b := name.MustParse("1")
	ta, tb := FromName(a), FromName(b)
	_ = Join(ta, tb)
	_ = ta.Collapse()
	if !ta.ToName().Equal(a) || !tb.ToName().Equal(b) {
		t.Error("operations mutated their inputs")
	}
}

func TestStringRendering(t *testing.T) {
	tests := []struct{ in, want string }{
		{"∅", "∅"},
		{"ε", "ε"},
		{"0+10+111", "0+10+111"},
	}
	for _, tt := range tests {
		if got := FromName(name.MustParse(tt.in)).String(); got != tt.want {
			t.Errorf("String(%s) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
)

// pairFromClone seeds a replica with n keys and clones it, so every key has
// a common causal origin on both sides.
func pairFromClone(n int) (*Replica, *Replica) {
	a := NewReplica("a")
	for i := 0; i < n; i++ {
		a.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	return a, a.Clone("b")
}

func entriesFor(r *Replica, keys []string) []encoding.Entry {
	var out []encoding.Entry
	for _, k := range keys {
		v, ok := r.Version(k)
		if !ok {
			continue
		}
		out = append(out, encoding.Entry{Key: k, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp})
	}
	return out
}

// deltaRound runs a full in-process two-phase round with b as initiator and
// a as responder, applying the reply on b.
func deltaRound(t *testing.T, a, b *Replica, resolve Resolver) SyncResult {
	t.Helper()
	digest := b.Digest()
	diff, err := a.DiffAgainst(digest, 0, 0)
	if err != nil {
		t.Fatalf("DiffAgainst: %v", err)
	}
	entries := entriesFor(b, diff.Need)
	reply, res, err := a.ApplyDelta(digest, entries, resolve, 0, 0)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	sent := make(map[string]core.Stamp, len(digest))
	for _, d := range digest {
		sent[d.Key] = d.Stamp
	}
	if _, err := b.ApplyDeltaReply(reply, sent, 0, 0); err != nil {
		t.Fatalf("ApplyDeltaReply: %v", err)
	}
	return res
}

func requireSameContents(t *testing.T, a, b *Replica) {
	t.Helper()
	keys := map[string]bool{}
	for _, k := range a.Keys() {
		keys[k] = true
	}
	for _, k := range b.Keys() {
		keys[k] = true
	}
	for k := range keys {
		va, okA := a.Get(k)
		vb, okB := b.Get(k)
		if okA != okB || !bytes.Equal(va, vb) {
			t.Errorf("key %q: %q/%v vs %q/%v", k, va, okA, vb, okB)
		}
	}
}

func TestDigestSortedAndComplete(t *testing.T) {
	a, _ := pairFromClone(20)
	a.Delete("key-003")
	d := a.Digest()
	if len(d) != 20 {
		t.Fatalf("digest has %d entries, want 20 (tombstones included)", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i-1].Key >= d[i].Key {
			t.Fatalf("digest unsorted at %d: %q >= %q", i, d[i-1].Key, d[i].Key)
		}
	}
	total := 0
	for i := 0; i < a.Shards(); i++ {
		ds, err := a.DigestShard(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range ds {
			if ShardIndex(x.Key, a.Shards()) != i {
				t.Errorf("shard %d digest holds foreign key %q", i, x.Key)
			}
		}
		total += len(ds)
	}
	if total != 20 {
		t.Errorf("per-shard digests cover %d keys, want 20", total)
	}
	if _, err := a.DigestShard(a.Shards()); err == nil {
		t.Error("out-of-range DigestShard accepted")
	}
}

func TestDiffAgainstClassification(t *testing.T) {
	a, b := pairFromClone(8)
	b.Put("key-000", []byte("newer-on-b")) // b dominates
	a.Put("key-001", []byte("newer-on-a")) // a dominates
	a.Put("key-002", []byte("conc-a"))     // concurrent
	b.Put("key-002", []byte("conc-b"))
	b.Put("only-b", []byte("x")) // unknown to a
	a.Put("only-a", []byte("y")) // unknown to b

	diff, err := a.DiffAgainst(b.Digest(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"key-000": true, "key-002": true, "only-b": true}
	if len(diff.Need) != len(want) {
		t.Fatalf("Need = %v, want keys %v", diff.Need, want)
	}
	for _, k := range diff.Need {
		if !want[k] {
			t.Errorf("unexpected needed key %q", k)
		}
	}
	if diff.Equivalent != 5 {
		t.Errorf("Equivalent = %d, want 5", diff.Equivalent)
	}
	if diff.LocalOnly != 1 {
		t.Errorf("LocalOnly = %d, want 1", diff.LocalOnly)
	}
}

func TestDeltaRoundConvergesDivergedPair(t *testing.T) {
	a, b := pairFromClone(16)
	b.Put("key-000", []byte("newer-on-b"))
	a.Put("key-001", []byte("newer-on-a"))
	a.Put("key-002", []byte("conc-a"))
	b.Put("key-002", []byte("conc-b"))
	b.Put("only-b", []byte("x"))
	a.Put("only-a", []byte("y"))
	a.Delete("key-004")

	res := deltaRound(t, a, b, KeepBoth([]byte("|")))
	if res.Transferred != 2 {
		t.Errorf("Transferred = %d, want 2", res.Transferred)
	}
	if res.Reconciled != 3 { // key-000, key-001, key-004 tombstone
		t.Errorf("Reconciled = %d, want 3", res.Reconciled)
	}
	if res.Merged != 1 {
		t.Errorf("Merged = %d, want 1", res.Merged)
	}
	if res.Pruned != 12 {
		t.Errorf("Pruned = %d, want 12", res.Pruned)
	}
	requireSameContents(t, a, b)
	if _, ok := b.Get("key-004"); ok {
		t.Error("tombstone did not propagate through the delta round")
	}

	// A second round over converged state prunes everything.
	res = deltaRound(t, a, b, KeepBoth([]byte("|")))
	if res.Transferred+res.Reconciled+res.Merged != 0 {
		t.Errorf("converged round moved data: %+v", res)
	}
	if res.Pruned != 18 {
		t.Errorf("converged round pruned %d, want 18", res.Pruned)
	}
}

func TestDeltaConflictSkippedWithoutResolver(t *testing.T) {
	a, b := pairFromClone(4)
	a.Put("key-000", []byte("conc-a"))
	b.Put("key-000", []byte("conc-b"))
	res := deltaRound(t, a, b, nil)
	if len(res.Conflicts) != 1 || res.Conflicts[0] != "key-000" {
		t.Fatalf("Conflicts = %v", res.Conflicts)
	}
	if va, _ := a.Get("key-000"); string(va) != "conc-a" {
		t.Errorf("a's conflicting copy changed: %q", va)
	}
	if vb, _ := b.Get("key-000"); string(vb) != "conc-b" {
		t.Errorf("b's conflicting copy changed: %q", vb)
	}
}

func TestDeltaEquivalentToFullSync(t *testing.T) {
	// The property at the heart of the protocol: a delta round and a full
	// Sync produce identical replica contents from identical starting
	// states, across randomized divergence. Divergence is generated
	// deterministically so the two universes start byte-identical.
	for seed := 0; seed < 8; seed++ {
		buildPair := func() (*Replica, *Replica) {
			a, b := pairFromClone(40)
			rng := seed
			next := func(n int) int { rng = (rng*1103515245 + 12345) & 0x7fffffff; return rng % n }
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("key-%03d", i)
				switch next(6) {
				case 0:
					a.Put(k, []byte(fmt.Sprintf("a%d", next(100))))
				case 1:
					b.Put(k, []byte(fmt.Sprintf("b%d", next(100))))
				case 2:
					a.Put(k, []byte(fmt.Sprintf("a%d", next(100))))
					b.Put(k, []byte(fmt.Sprintf("b%d", next(100))))
				case 3:
					a.Delete(k)
				}
			}
			return a, b
		}
		a1, b1 := buildPair()
		a2, b2 := buildPair()
		if _, err := Sync(a1, b1, KeepBoth([]byte("|"))); err != nil {
			t.Fatalf("seed %d: full sync: %v", seed, err)
		}
		deltaRound(t, a2, b2, KeepBoth([]byte("|")))
		requireSameContents(t, a2, b2)
		requireSameContents(t, a1, a2)
		requireSameContents(t, b1, b2)
	}
}

func TestDeltaShardScoped(t *testing.T) {
	a, b := pairFromClone(32)
	b.Put("key-000", []byte("newer"))
	of := a.Shards()
	var total SyncResult
	for idx := 0; idx < of; idx++ {
		digest, err := b.DigestShard(idx)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := a.DiffAgainst(digest, idx, of)
		if err != nil {
			t.Fatal(err)
		}
		reply, res, err := a.ApplyDelta(digest, entriesFor(b, diff.Need), nil, idx, of)
		if err != nil {
			t.Fatal(err)
		}
		sent := map[string]core.Stamp{}
		for _, d := range digest {
			sent[d.Key] = d.Stamp
		}
		if _, err := b.ApplyDeltaReply(reply, sent, idx, of); err != nil {
			t.Fatal(err)
		}
		total.Add(res)
	}
	if total.Reconciled != 1 || total.Pruned != 31 {
		t.Errorf("scoped rounds: %+v", total)
	}
	requireSameContents(t, a, b)

	// Foreign keys are rejected in every scoped input.
	badDigest := []encoding.Digest{{Key: "key-000", Stamp: core.Seed()}}
	wrong := (ShardIndex("key-000", of) + 1) % of
	if _, err := a.DiffAgainst(badDigest, wrong, of); err == nil {
		t.Error("DiffAgainst accepted a foreign key")
	}
	if _, _, err := a.ApplyDelta(badDigest, nil, nil, wrong, of); err == nil {
		t.Error("ApplyDelta accepted a foreign digest key")
	}
	if _, err := b.ApplyDeltaReply([]encoding.Entry{{Key: "key-000", Stamp: core.Seed()}}, nil, wrong, of); err == nil {
		t.Error("ApplyDeltaReply accepted a foreign key")
	}
}

func TestApplyDeltaReplySkipsMovedCopies(t *testing.T) {
	a, b := pairFromClone(2)
	a.Put("key-000", []byte("newer-on-a"))

	digest := b.Digest()
	diff, err := a.DiffAgainst(digest, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reply, _, err := a.ApplyDelta(digest, entriesFor(b, diff.Need), nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// b's copy moves while the round is in flight.
	b.Put("key-000", []byte("raced"))
	sent := map[string]core.Stamp{}
	for _, d := range digest {
		sent[d.Key] = d.Stamp
	}
	applied, err := b.ApplyDeltaReply(reply, sent, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Errorf("applied %d entries over a moved copy", applied)
	}
	if v, _ := b.Get("key-000"); string(v) != "raced" {
		t.Errorf("concurrent write clobbered: %q", v)
	}
}

func TestBinarySnapshotRoundTrip(t *testing.T) {
	a, _ := pairFromClone(24)
	a.Delete("key-007")
	bin, err := a.SnapshotBinary()
	if err != nil {
		t.Fatal(err)
	}
	if bin[0] != binarySnapshotVersion {
		t.Fatalf("leading byte 0x%02x", bin[0])
	}
	restored, err := Restore(bin)
	if err != nil {
		t.Fatalf("Restore(binary): %v", err)
	}
	requireSameContents(t, a, restored)
	if restored.Label() != a.Label() || restored.Shards() != a.Shards() {
		t.Errorf("label/shards lost: %q/%d", restored.Label(), restored.Shards())
	}
	if _, ok := restored.Get("key-007"); ok {
		t.Error("tombstone lost in binary round trip")
	}
	// Stamps survive verbatim.
	for _, k := range a.Keys() {
		va, _ := a.Version(k)
		vr, _ := restored.Version(k)
		if !va.Stamp.Equal(vr.Stamp) {
			t.Errorf("stamp of %q changed", k)
		}
	}

	jsn, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(bin)*2 > len(jsn) {
		t.Errorf("binary snapshot %dB not ≥2x smaller than JSON %dB", len(bin), len(jsn))
	}

	// Sniffing: JSON snapshots still restore, corrupt binary is rejected.
	if _, err := Restore(jsn); err != nil {
		t.Errorf("JSON snapshot stopped restoring: %v", err)
	}
	if _, err := Restore(bin[:len(bin)/2]); err == nil {
		t.Error("truncated binary snapshot accepted")
	}

	shardBin, err := a.SnapshotShardBinary(3)
	if err != nil {
		t.Fatal(err)
	}
	shardRestored, err := Restore(shardBin)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range shardRestored.Keys() {
		if ShardIndex(k, a.Shards()) != 3 {
			t.Errorf("shard snapshot holds foreign key %q", k)
		}
	}
	if _, err := a.SnapshotShardBinary(-1); err == nil {
		t.Error("out-of-range shard snapshot accepted")
	}
}

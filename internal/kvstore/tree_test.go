package kvstore

import (
	"fmt"
	"testing"

	"versionstamp/internal/encoding"
)

func TestTreeShape(t *testing.T) {
	cases := []struct{ n, depth int }{
		{0, 1}, {1, 1}, {32, 1}, {512, 1}, // ≤ 16 leaves of ≤ 32 keys
		{513, 2}, {8192, 2}, // up to 256 leaves
		{8193, 3}, {31250, 3}, // a 1M-key store's per-stripe count
		{1 << 30, 7},
	}
	for _, c := range cases {
		fanout, depth := TreeShape(c.n)
		if fanout != treeFanout {
			t.Errorf("TreeShape(%d) fanout = %d, want %d", c.n, fanout, treeFanout)
		}
		if depth != c.depth {
			t.Errorf("TreeShape(%d) depth = %d, want %d", c.n, depth, c.depth)
		}
		if !encoding.ValidTreeShape(fanout, depth) {
			t.Errorf("TreeShape(%d) = (%d, %d): invalid on the wire", c.n, fanout, depth)
		}
	}
}

func TestNodeRange(t *testing.T) {
	if rg := NodeRange(16, 0, 0); rg.Lo != 0 || rg.Hi != 0 {
		t.Fatalf("level-0 range = %+v, want the whole space", rg)
	}
	// A level's node ranges must partition the space: each position falls in
	// exactly the range of its own path.
	for _, p := range []uint64{0, 1, 1 << 60, ^uint64(0)} {
		for level := 1; level <= 3; level++ {
			path := p >> (64 - 4*level)
			for cand := uint64(0); cand < 1<<(4*level); cand += 7 {
				in := NodeRange(16, level, cand).Contains(p)
				if in != (cand == path) {
					t.Fatalf("pos %x level %d path %x: Contains = %v", p, level, cand, in)
				}
			}
		}
	}
}

func TestRangesContain(t *testing.T) {
	if !RangesContain(nil, 42) {
		t.Fatal("nil ranges must contain everything")
	}
	rs := []TreeRange{{Lo: 10, Hi: 20}, {Lo: 100, Hi: 0}}
	for p, want := range map[uint64]bool{9: false, 10: true, 19: true, 20: false,
		99: false, 100: true, ^uint64(0): true} {
		if RangesContain(rs, p) != want {
			t.Fatalf("RangesContain(%d) != %v", p, want)
		}
	}
	if RangesContain([]TreeRange{}, 5) {
		t.Fatal("empty (non-nil) ranges must contain nothing")
	}
}

// treeDigests builds n distinct digests for tree tests.
func treeDigests(t *testing.T, n int) []encoding.Digest {
	t.Helper()
	r := NewReplica("t")
	for i := 0; i < n; i++ {
		r.Put(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	return r.Digest()
}

func TestDigestTreeStructure(t *testing.T) {
	ds := treeDigests(t, 500)
	tr := buildDigestTree(ds, 16, 2)

	if tr.Len() != 500 || tr.Fanout() != 16 || tr.Depth() != 2 {
		t.Fatalf("shape: len=%d fanout=%d depth=%d", tr.Len(), tr.Fanout(), tr.Depth())
	}
	if tr.Root() == encoding.EmptySummary {
		t.Fatal("non-empty tree roots at EmptySummary")
	}
	// Descending every child from the root must reach all digests exactly
	// once, each inside its node's position range, and every leaf hash must
	// equal the summary of its run — the invariant the wire descent relies
	// on to stop at matching subtrees.
	total := 0
	bm, _ := tr.Children(0, 0)
	for c := 0; c < 16; c++ {
		if !encoding.BitmapGet(bm, c) {
			continue
		}
		run := tr.Run(1, uint64(c))
		total += len(run)
		for _, d := range run {
			if !NodeRange(16, 1, uint64(c)).Contains(encoding.TreePos(d.Key)) {
				t.Fatalf("digest %q leaked outside child %d", d.Key, c)
			}
		}
		lbm, lhashes := tr.Children(1, uint64(c))
		li := 0
		for l := 0; l < 16; l++ {
			if !encoding.BitmapGet(lbm, l) {
				continue
			}
			leafPath := uint64(c)<<4 | uint64(l)
			leafRun := tr.Run(2, leafPath)
			if len(leafRun) == 0 {
				t.Fatalf("leaf %x flagged non-empty with an empty run", leafPath)
			}
			if lhashes[li] != encoding.SummarizeDigests(leafRun) {
				t.Fatalf("leaf %x hash != summary of its run", leafPath)
			}
			li++
		}
	}
	if total != 500 {
		t.Fatalf("children partition %d of 500 digests", total)
	}
	// Equal digest sets, any input order, build identical trees.
	rev := make([]encoding.Digest, len(ds))
	for i, d := range ds {
		rev[len(ds)-1-i] = d
	}
	if got := buildDigestTree(rev, 16, 2).Root(); got != tr.Root() {
		t.Fatal("input order changed the root")
	}
	// A different digest set roots differently.
	ds2 := append(append([]encoding.Digest(nil), ds[:499]...), encoding.Digest{
		Key: "other", Stamp: ds[0].Stamp})
	if buildDigestTree(ds2, 16, 2).Root() == tr.Root() {
		t.Fatal("different digest sets share a root")
	}
	// The same set at a different shape roots differently too — shape is
	// part of the hash domain, which is why the wire pins one shape.
	if buildDigestTree(ds, 16, 3).Root() == tr.Root() {
		t.Fatal("depth 2 and depth 3 trees share a root")
	}
}

func TestDigestTreeEmpty(t *testing.T) {
	tr := buildDigestTree(nil, 16, 2)
	if tr.Root() != encoding.EmptySummary {
		t.Fatal("empty tree must root at EmptySummary")
	}
	bm, hashes := tr.Children(0, 0)
	for _, b := range bm {
		if b != 0 {
			t.Fatal("empty tree has children")
		}
	}
	if len(hashes) != 0 {
		t.Fatal("empty tree has child hashes")
	}
	if len(tr.Run(2, 0)) != 0 {
		t.Fatal("empty tree has a digest run")
	}
}

func TestStripeTreeCacheAndInvalidation(t *testing.T) {
	r := NewReplicaShards("a", 2)
	for i := 0; i < 100; i++ {
		r.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	t1, err := r.StripeTree(0)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := r.StripeTree(0)
	if t1 != t2 {
		t.Fatal("quiet stripe rebuilt its tree")
	}
	// Insert a key into stripe 0: the cache must refresh and the root move.
	for i := 100; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if ShardIndex(k, 2) == 0 {
			r.Put(k, []byte("v"))
			break
		}
	}
	t3, _ := r.StripeTree(0)
	if t3 == t1 {
		t.Fatal("mutated stripe served the stale tree")
	}
	if t3.Root() == t1.Root() {
		t.Fatal("insert left the root unchanged")
	}
}

func TestStripeTreeRebalance(t *testing.T) {
	r := NewReplicaShards("a", 1)
	for i := 0; i < 100; i++ {
		r.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	t1, _ := r.StripeTree(0)
	if t1.Depth() != 1 {
		t.Fatalf("100 keys: depth %d, want 1", t1.Depth())
	}
	for i := 100; i < 1000; i++ {
		r.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	t2, _ := r.StripeTree(0)
	if t2.Depth() != 2 {
		t.Fatalf("1000 keys: depth %d, want 2 (rebalanced)", t2.Depth())
	}
	if t2.Len() != 1000 {
		t.Fatalf("rebalanced tree spans %d keys", t2.Len())
	}
	// Converged replicas with equal counts agree on shape and root across
	// the rebalance threshold.
	o := NewReplicaShards("b", 1)
	for i := 0; i < 1000; i++ {
		o.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	// Different stamps, same keys: roots differ (stamps are hashed) but the
	// shapes agree.
	t3, _ := o.StripeTree(0)
	if t3.Depth() != t2.Depth() || t3.Fanout() != t2.Fanout() {
		t.Fatal("equal counts picked different shapes")
	}
}

func TestTreeScopedForeignLayout(t *testing.T) {
	r := NewReplicaShards("a", 4)
	for i := 0; i < 200; i++ {
		r.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	// Under a foreign 2-stripe layout, stripe 0 must cover exactly the keys
	// hashing to 0 of 2.
	tr, err := r.TreeScoped(0, 2, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, d := range r.Digest() {
		if ShardIndex(d.Key, 2) == 0 {
			want++
		}
	}
	if tr.Len() != want {
		t.Fatalf("foreign stripe tree spans %d keys, want %d", tr.Len(), want)
	}
	if _, err := r.TreeScoped(0, 2, 3, 1); err == nil {
		t.Fatal("invalid fanout accepted")
	}
	if _, err := r.TreeScoped(5, 2, 16, 1); err == nil {
		t.Fatal("out-of-range stripe accepted")
	}

	// TreeRootsScoped under the replica's own layout must agree with the
	// per-stripe trees.
	roots, err := r.TreeRootsScoped(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, root := range roots {
		st, _ := r.StripeTree(i)
		if st.Root() != root {
			t.Fatalf("stripe %d root mismatch", i)
		}
	}
	// And under a foreign layout it must agree with what a replica actually
	// sharded that way computes.
	o := NewReplicaShards("a", 2)
	if err := o.Adopt(mustSnapshot(t, r)); err != nil {
		t.Fatal(err)
	}
	fRoots, err := r.TreeRootsScoped(2)
	if err != nil {
		t.Fatal(err)
	}
	oRoots, err := o.TreeRootsScoped(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fRoots {
		if fRoots[i] != oRoots[i] {
			t.Fatalf("foreign-layout root %d disagrees with a natively %d-striped replica", i, 2)
		}
	}
}

func mustSnapshot(t *testing.T, r *Replica) []byte {
	t.Helper()
	snap, err := r.SnapshotBinary()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

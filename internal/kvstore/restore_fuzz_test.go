package kvstore

import (
	"bytes"
	"testing"
)

// FuzzRestore feeds Restore mutated snapshots — truncations, bit flips and
// arbitrary bytes over both the JSON and binary formats. The contract under
// test is the satellite bugfix: corrupt input must produce an error, never
// a panic, an unbounded allocation (the stripe-count bound) or a silently
// mis-loaded replica. Whatever loads must round-trip through SnapshotBinary
// and Restore again.
func FuzzRestore(f *testing.F) {
	seedReplica := NewReplicaShards("fuzz-seed", 4)
	seedReplica.Put("alpha", []byte("one"))
	seedReplica.Put("beta", []byte("two"))
	seedReplica.Delete("beta")
	clone := seedReplica.Clone("fuzz-clone") // forked stamps, bushier tries

	for _, r := range []*Replica{seedReplica, clone} {
		if snap, err := r.SnapshotBinary(); err == nil {
			f.Add(snap)
			f.Add(snap[:len(snap)/2]) // truncated
			f.Add(append(snap, 0x01)) // trailing bytes
			mutated := bytes.Clone(snap)
			mutated[len(mutated)/3] ^= 0x40 // flipped mid-document
			f.Add(mutated)
		}
		if snap, err := r.Snapshot(); err == nil {
			f.Add(snap)
			f.Add(snap[:2*len(snap)/3])
		}
	}
	f.Add([]byte(`{"label":"x","shards":1073741824,"entries":[]}`)) // hostile layout
	f.Add([]byte{binarySnapshotVersion})
	f.Add([]byte{binarySnapshotVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Restore(data)
		if err != nil {
			return
		}
		if r.Shards() < 1 || r.Shards() > maxSnapshotShards {
			t.Fatalf("restored replica has %d stripes", r.Shards())
		}
		// A loaded snapshot must re-serialize and load back identically.
		snap, err := r.SnapshotBinary()
		if err != nil {
			t.Fatalf("snapshot of restored replica: %v", err)
		}
		again, err := Restore(snap)
		if err != nil {
			t.Fatalf("round-trip restore: %v", err)
		}
		ka, kb := r.Keys(), again.Keys()
		if len(ka) != len(kb) {
			t.Fatalf("round trip changed key count: %d -> %d", len(ka), len(kb))
		}
		for i, k := range ka {
			va, _ := r.Version(k)
			vb, _ := again.Version(kb[i])
			if k != kb[i] || va.Deleted != vb.Deleted ||
				!bytes.Equal(va.Value, vb.Value) || !va.Stamp.Equal(vb.Stamp) {
				t.Fatalf("round trip changed key %q", k)
			}
		}
	})
}

package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"versionstamp/internal/core"
)

func TestPutGetDelete(t *testing.T) {
	r := NewReplica("a")
	if r.Label() != "a" {
		t.Errorf("Label = %q", r.Label())
	}
	if _, ok := r.Get("k"); ok {
		t.Error("missing key must not be found")
	}
	r.Put("k", []byte("v1"))
	got, ok := r.Get("k")
	if !ok || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	r.Put("k", []byte("v2"))
	got, _ = r.Get("k")
	if string(got) != "v2" {
		t.Fatalf("Get after overwrite = %q", got)
	}
	if !r.Delete("k") {
		t.Error("Delete of live key must return true")
	}
	if _, ok := r.Get("k"); ok {
		t.Error("tombstoned key must not be found")
	}
	if r.Delete("k") {
		t.Error("double delete must return false")
	}
	if r.Delete("missing") {
		t.Error("delete of missing key must return false")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d", r.Len())
	}
	// The tombstone still has stored state.
	if keys := r.Keys(); len(keys) != 1 || keys[0] != "k" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestGetBuffersStable(t *testing.T) {
	// Get hands out the stored buffer itself (zero-copy; callers must treat
	// it as immutable). The contract that makes this safe: every mutation
	// installs a freshly allocated value, so a buffer already handed out
	// never changes underneath its holder.
	r := NewReplica("a")
	r.Put("k", []byte("abc"))
	got, _ := r.Get("k")
	r.Put("k", []byte("xyz"))
	if string(got) != "abc" {
		t.Errorf("buffer from Get changed under a later Put: %q", got)
	}
	again, _ := r.Get("k")
	if string(again) != "xyz" {
		t.Errorf("Get after overwrite = %q", again)
	}
}

func TestStampProgression(t *testing.T) {
	r := NewReplica("a")
	r.Put("k", []byte("v1"))
	v1, _ := r.Version("k")
	r.Put("k", []byte("v2"))
	v2, _ := r.Version("k")
	// Single-copy updates collapse ([ε|ε] stays [ε|ε]).
	if !v1.Stamp.Equal(v2.Stamp) {
		t.Errorf("sole-copy stamps should be stable: %v vs %v", v1.Stamp, v2.Stamp)
	}
	if _, ok := r.Version("missing"); ok {
		t.Error("Version of missing key must fail")
	}
}

func TestSyncTransfer(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("x", []byte("1"))
	b.Put("y", []byte("2"))
	res, err := Sync(a, b, nil)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if res.Transferred != 2 || len(res.Conflicts) != 0 {
		t.Fatalf("result = %+v", res)
	}
	for _, r := range []*Replica{a, b} {
		for _, k := range []string{"x", "y"} {
			if _, ok := r.Get(k); !ok {
				t.Errorf("%s missing %s after sync", r.Label(), k)
			}
		}
	}
	// Stamps of the two copies are comparable-equal and on one frontier.
	va, _ := a.Version("x")
	vb, _ := b.Version("x")
	if core.Compare(va.Stamp, vb.Stamp) != core.Equal {
		t.Errorf("copies not equivalent after transfer")
	}
	if err := core.CheckFrontier([]core.Stamp{va.Stamp, vb.Stamp}); err != nil {
		t.Errorf("frontier invalid: %v", err)
	}
}

func TestSyncDominance(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("k", []byte("v1"))
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	b.Put("k", []byte("v2"))
	res, err := Sync(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconciled != 1 {
		t.Fatalf("result = %+v", res)
	}
	got, _ := a.Get("k")
	if string(got) != "v2" {
		t.Errorf("a = %q, want v2", got)
	}
}

func TestSyncConflictWithoutResolver(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("k", []byte("base"))
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	a.Put("k", []byte("from-a"))
	b.Put("k", []byte("from-b"))
	res, err := Sync(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0] != "k" {
		t.Fatalf("Conflicts = %v", res.Conflicts)
	}
	// Values untouched.
	ga, _ := a.Get("k")
	gb, _ := b.Get("k")
	if string(ga) != "from-a" || string(gb) != "from-b" {
		t.Errorf("conflicting values modified: %q, %q", ga, gb)
	}
}

func TestSyncConflictWithResolver(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("k", []byte("base"))
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	a.Put("k", []byte("A"))
	b.Put("k", []byte("B"))
	res, err := Sync(a, b, KeepBoth([]byte("|")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 1 {
		t.Fatalf("result = %+v", res)
	}
	ga, _ := a.Get("k")
	gb, _ := b.Get("k")
	if !bytes.Equal(ga, gb) || string(ga) != "A|B" {
		t.Errorf("merged = %q, %q", ga, gb)
	}
	// The merge dominates any pre-merge copy: simulate a third replica that
	// still has the base version.
	va, _ := a.Version("k")
	base := core.Seed().Update()
	_ = base
	if core.Compare(va.Stamp, va.Stamp) != core.Equal {
		t.Error("self compare")
	}
}

func TestDeletePropagates(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("k", []byte("v"))
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	a.Delete("k")
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("k"); ok {
		t.Error("deletion did not propagate")
	}
}

func TestDeleteVsWriteConflict(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("k", []byte("v"))
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	a.Delete("k")
	b.Put("k", []byte("newer"))
	res, err := Sync(a, b, KeepBoth(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 1 {
		t.Fatalf("result = %+v", res)
	}
	// KeepBoth lets the concurrent write win over the deletion.
	ga, ok := a.Get("k")
	if !ok || string(ga) != "newer" {
		t.Errorf("a = %q, %v", ga, ok)
	}
}

func TestIndependentOriginsSameValue(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("k", []byte("same"))
	b.Put("k", []byte("same"))
	res, err := Sync(a, b, nil)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if res.Reconciled != 1 {
		t.Fatalf("result = %+v", res)
	}
	va, _ := a.Version("k")
	vb, _ := b.Version("k")
	if core.Compare(va.Stamp, vb.Stamp) != core.Equal {
		t.Error("reseeded copies must be equivalent")
	}
	if err := core.CheckFrontier([]core.Stamp{va.Stamp, vb.Stamp}); err != nil {
		t.Errorf("reseeded frontier invalid: %v", err)
	}
}

func TestIndependentOriginsConflict(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("k", []byte("A"))
	b.Put("k", []byte("B"))
	// No resolver: reported as a conflict, left untouched.
	res, err := Sync(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 {
		t.Fatalf("result = %+v", res)
	}
	// With a resolver: merged and reseeded; further syncs work normally.
	res, err = Sync(a, b, KeepBoth([]byte("+")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 1 {
		t.Fatalf("result = %+v", res)
	}
	ga, _ := a.Get("k")
	if string(ga) != "A+B" {
		t.Errorf("merged = %q", ga)
	}
	a.Put("k", []byte("A2"))
	res, err = Sync(a, b, nil)
	if err != nil || res.Reconciled != 1 {
		t.Fatalf("post-reseed sync = %+v, %v", res, err)
	}
}

func TestSyncSelfRejected(t *testing.T) {
	a := NewReplica("a")
	if _, err := Sync(a, a, nil); err == nil {
		t.Error("self-sync must fail")
	}
}

func TestResolverError(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("k", []byte("base"))
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	a.Put("k", []byte("A"))
	b.Put("k", []byte("B"))
	boom := errors.New("boom")
	_, err := Sync(a, b, func(string, Versioned, Versioned) ([]byte, bool, error) {
		return nil, false, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("Sync = %v, want resolver error", err)
	}
}

func TestClone(t *testing.T) {
	a := NewReplica("a")
	a.Put("x", []byte("1"))
	a.Put("y", []byte("2"))
	c := a.Clone("c")
	if c.Label() != "c" {
		t.Errorf("clone label = %q", c.Label())
	}
	for _, k := range []string{"x", "y"} {
		va, _ := a.Version(k)
		vc, _ := c.Version(k)
		if core.Compare(va.Stamp, vc.Stamp) != core.Equal {
			t.Errorf("clone copies of %s not equivalent", k)
		}
		if err := core.CheckFrontier([]core.Stamp{va.Stamp, vc.Stamp}); err != nil {
			t.Errorf("clone frontier invalid for %s: %v", k, err)
		}
	}
	// Independent evolution then reconciliation.
	c.Put("x", []byte("1c"))
	res, err := Sync(a, c, nil)
	if err != nil || res.Reconciled != 1 {
		t.Fatalf("sync after clone = %+v, %v", res, err)
	}
	got, _ := a.Get("x")
	if string(got) != "1c" {
		t.Errorf("a.x = %q", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	a := NewReplica("a")
	a.Put("x", []byte("1"))
	a.Put("y", []byte("2"))
	a.Delete("y")
	data, err := a.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	back, err := Restore(data)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if back.Label() != "a" {
		t.Errorf("label = %q", back.Label())
	}
	got, ok := back.Get("x")
	if !ok || string(got) != "1" {
		t.Errorf("x = %q, %v", got, ok)
	}
	if _, ok := back.Get("y"); ok {
		t.Error("tombstone lost in restore")
	}
	vOrig, _ := a.Version("x")
	vBack, _ := back.Version("x")
	if !vOrig.Stamp.Equal(vBack.Stamp) {
		t.Error("stamp changed across snapshot/restore")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore([]byte("not json")); err == nil {
		t.Error("garbage must be rejected")
	}
	if _, err := Restore([]byte(`{"label":"x","entries":[{"key":"k","stamp":"[1|0]"}]}`)); err == nil {
		t.Error("invalid stamp must be rejected")
	}
}

// TestCrashRestartSync: a replica crashes, restores from its snapshot, and
// continues synchronizing correctly — stamps survive serialization.
func TestCrashRestartSync(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("k", []byte("v1"))
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// b crashes; a keeps writing.
	a.Put("k", []byte("v2"))
	b2, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sync(a, b2, nil)
	if err != nil {
		t.Fatalf("sync after restart: %v", err)
	}
	if res.Reconciled != 1 {
		t.Fatalf("result = %+v", res)
	}
	got, _ := b2.Get("k")
	if string(got) != "v2" {
		t.Errorf("restored replica = %q", got)
	}
}

// TestConvergenceRandom drives random puts/deletes/syncs across several
// replicas and verifies that a final round of full pairwise syncs converges
// every replica to identical contents.
func TestConvergenceRandom(t *testing.T) {
	// Step counts stay modest: stamp ids grow multiplicatively under
	// rotating pairwise syncs (the known limitation measured in E5).
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		keys := []string{"a", "b", "c"}
		// Keys originate at one replica before cloning, as the fork-join
		// model assumes (see the package comment on key origination).
		r0 := NewReplica("r0")
		for _, k := range keys {
			r0.Put(k, []byte("seed"))
		}
		replicas := []*Replica{r0}
		// Build a family of replicas by cloning (fork-based creation).
		for i := 1; i < 3; i++ {
			replicas = append(replicas, replicas[rng.Intn(len(replicas))].Clone(fmt.Sprintf("r%d", i)))
		}
		for step := 0; step < 60; step++ {
			r := replicas[rng.Intn(len(replicas))]
			switch rng.Intn(5) {
			case 0:
				r.Delete(keys[rng.Intn(len(keys))])
			case 1, 2:
				k := keys[rng.Intn(len(keys))]
				r.Put(k, []byte(fmt.Sprintf("v%d", step)))
			default:
				other := replicas[rng.Intn(len(replicas))]
				if other == r {
					continue
				}
				if _, err := Sync(r, other, KeepBoth([]byte("|"))); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
		// Final full mesh, twice to propagate everything everywhere.
		for round := 0; round < 2; round++ {
			for i := range replicas {
				for j := i + 1; j < len(replicas); j++ {
					if _, err := Sync(replicas[i], replicas[j], KeepBoth([]byte("|"))); err != nil {
						t.Fatalf("seed %d final sync: %v", seed, err)
					}
				}
			}
		}
		for _, k := range keys {
			ref, refOK := replicas[0].Get(k)
			for _, r := range replicas[1:] {
				got, ok := r.Get(k)
				if ok != refOK || !bytes.Equal(got, ref) {
					t.Fatalf("seed %d: replicas diverge on %q: %q/%v vs %q/%v",
						seed, k, ref, refOK, got, ok)
				}
			}
		}
	}
}

// TestConcurrentAccess exercises the mutex paths under the race detector.
func TestConcurrentAccess(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	a.Put("k", []byte("v"))
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch g % 3 {
				case 0:
					a.Put("k", []byte{byte(i)})
				case 1:
					b.Get("k")
				default:
					_, _ = Sync(a, b, KeepBoth(nil))
				}
			}
		}(g)
	}
	wg.Wait()
}

package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"versionstamp/internal/storage"
	"versionstamp/internal/storage/faultfs"
)

// stateOf fingerprints a replica's full stored state — every key including
// tombstones, values and deletion flags, stamps excluded (stamps are
// compared via Sync convergence, not byte equality).
func stateOf(r *Replica) map[string]string {
	out := make(map[string]string)
	for _, k := range r.Keys() {
		v, ok := r.Version(k)
		if !ok {
			continue
		}
		if v.Deleted {
			out[k] = "\x00tombstone"
		} else {
			out[k] = string(v.Value)
		}
	}
	return out
}

func sameState(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// requireEqualStamps asserts two replicas carry identical state including
// stamps — the restart-must-resume-exactly contract.
func requireEqualStamps(t *testing.T, a, b *Replica) {
	t.Helper()
	ka, kb := a.Keys(), b.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("key counts differ: %d vs %d", len(ka), len(kb))
	}
	for _, k := range ka {
		va, _ := a.Version(k)
		vb, ok := b.Version(k)
		if !ok {
			t.Fatalf("key %q missing after reopen", k)
		}
		if va.Deleted != vb.Deleted || string(va.Value) != string(vb.Value) {
			t.Fatalf("key %q state differs: %+v vs %+v", k, va, vb)
		}
		if !va.Stamp.Equal(vb.Stamp) {
			t.Fatalf("key %q stamp differs after reopen: %v vs %v", k, va.Stamp, vb.Stamp)
		}
	}
}

func TestOpenReopenPreservesStateAndStamps(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Label: "durable", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r.Put("a", []byte("1"))
	r.Put("b", []byte("2"))
	r.Put("a", []byte("3"))
	r.Delete("b")
	r.PutBatch(map[string][]byte{"c": []byte("4"), "d": []byte("5")})
	r.DeleteBatch([]string{"d", "never-seen"})

	// Crash path: abandon (no checkpoint) and reopen — everything must come
	// back from the log alone.
	if err := r.Abandon(); err != nil {
		t.Fatal(err)
	}
	crashed, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	requireEqualStamps(t, r, crashed)
	if crashed.Label() != "durable" || crashed.Shards() != 4 {
		t.Errorf("metadata lost: label %q, %d shards", crashed.Label(), crashed.Shards())
	}

	// Graceful path: Close checkpoints; reopening replays no log.
	if err := crashed.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", i)))
		if err == nil && fi.Size() != 0 {
			t.Errorf("shard %d log not truncated by Close: %d bytes", i, fi.Size())
		}
	}
	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	requireEqualStamps(t, r, reopened)
}

// TestOpenRejectsSecondOwner: two live owners of one data directory would
// interleave appends and truncate each other's logs, so the second Open
// must fail fast; Abandon (a "crash") releases the directory.
func TestOpenRejectsSecondOwner(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a live directory must fail")
	}
	if err := r.Abandon(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after abandon: %v", err)
	}
	_ = r2.Close()
}

func TestOpenRejectsLayoutChange(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	r.Put("k", []byte("v"))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Shards: 16}); err == nil {
		t.Fatal("reopening with a different stripe count must fail")
	}
	if _, err := Open(dir, Options{Shards: 8}); err != nil {
		t.Fatalf("reopening with the recorded stripe count: %v", err)
	}
}

// TestCrashRecoveryProperty is the satellite crash property: a random op
// sequence against a single-stripe durable replica, the WAL hard-cut at a
// random byte offset, and the reopened store must equal the state after
// some prefix of the applied ops — never a mix, never garbage — and still
// converge with a live peer through tier-1 Sync.
func TestCrashRecoveryProperty(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			dir := t.TempDir()
			r, err := Open(dir, Options{Label: "crash", Shards: 1})
			if err != nil {
				t.Fatal(err)
			}

			key := func() string { return fmt.Sprintf("key-%d", rng.Intn(12)) }
			// prefixes[i] is the state after i ops.
			prefixes := []map[string]string{stateOf(r)}
			var peer *Replica
			nOps := 10 + rng.Intn(40)
			cloneAt := rng.Intn(nOps)
			for i := 0; i < nOps; i++ {
				if i == cloneAt {
					peer = r.Clone("peer") // stamp forks hit the log too
				}
				if rng.Intn(4) == 0 {
					r.Delete(key())
				} else {
					r.Put(key(), []byte(fmt.Sprintf("v%d-%d", trial, i)))
				}
				prefixes = append(prefixes, stateOf(r))
			}
			if err := r.PersistErr(); err != nil {
				t.Fatal(err)
			}
			if err := r.Abandon(); err != nil { // crash: no checkpoint
				t.Fatal(err)
			}

			// Hard-cut the single stripe's log at a random offset.
			path := filepath.Join(dir, "shard-0000.wal")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cut := rng.Intn(len(data) + 1)
			if err := os.Truncate(path, int64(cut)); err != nil {
				t.Fatal(err)
			}

			reopened, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after cut at %d/%d: %v", cut, len(data), err)
			}
			defer reopened.Close()
			got := stateOf(reopened)
			matched := -1
			for i, want := range prefixes {
				if sameState(got, want) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Fatalf("cut at %d/%d: reopened state %v is no prefix of the op sequence",
					cut, len(data), got)
			}

			// The survivor still speaks anti-entropy: sync with the live peer
			// converges, and a second round proves quiescence.
			if peer == nil {
				return
			}
			if _, err := Sync(reopened, peer, KeepBoth([]byte("|"))); err != nil {
				t.Fatalf("sync after recovery: %v", err)
			}
			if !sameState(stateOf(reopened), stateOf(peer)) {
				t.Fatal("replicas did not converge after recovery sync")
			}
			res, err := Sync(reopened, peer, KeepBoth([]byte("|")))
			if err != nil {
				t.Fatal(err)
			}
			if res.Transferred+res.Reconciled+res.Merged+len(res.Conflicts) != 0 {
				t.Fatalf("second sync not quiescent: %+v", res)
			}
		})
	}
}

// TestWALReplay10k is the CI durability smoke: open → 10k writes → kill
// (no Close) → reopen replays the full log → verify. Runs under -short.
func TestWALReplay10k(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Label: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	const ops = 10000
	for i := 0; i < ops; i++ {
		r.Put(fmt.Sprintf("key-%05d", i%2500), []byte(fmt.Sprintf("value-%d", i)))
	}
	if err := r.PersistErr(); err != nil {
		t.Fatal(err)
	}
	if err := r.Abandon(); err != nil { // kill: no checkpoint
		t.Fatal(err)
	}
	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	requireEqualStamps(t, r, reopened)
	if reopened.Len() != 2500 {
		t.Fatalf("reopened Len = %d, want 2500", reopened.Len())
	}
}

func TestCheckpointBoundsReplayAndKeepsWrites(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Put(fmt.Sprintf("k%d", i), []byte("before"))
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", i)))
		if err == nil && fi.Size() != 0 {
			t.Errorf("shard %d log not truncated by checkpoint", i)
		}
	}
	for i := 0; i < 10; i++ {
		r.Put(fmt.Sprintf("k%d", i), []byte("after"))
	}
	if err := r.Abandon(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	requireEqualStamps(t, r, reopened)
}

func TestCompactShrinksDurableLog(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		r.Put("hot", []byte(fmt.Sprintf("v%d", i)))
	}
	path := filepath.Join(dir, "shard-0000.wal")
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size()/10 {
		t.Errorf("compact left %d of %d bytes", after.Size(), before.Size())
	}
	if err := r.Abandon(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	requireEqualStamps(t, r, reopened)
}

// TestSyncMutationsAreDurable drives the in-process Sync write path (which
// bypasses Put/Delete) between two durable replicas and asserts both sides'
// logs captured the reconciliation.
func TestSyncMutationsAreDurable(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Open(dirA, Options{Label: "a", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dirB, Options{Label: "b", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	a.Put("only-a", []byte("1"))
	a.Put("shared", []byte("base"))
	// First sync transfers both keys to b, forking a's stamps — mutations on
	// both replicas that only the sync path logs.
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	// Diverge and reconcile: dominance on "shared", a transfer of "only-b".
	a.Put("shared", []byte("a-side"))
	b.Put("only-b", []byte("2"))
	if _, err := Sync(a, b, KeepBoth([]byte("|"))); err != nil {
		t.Fatal(err)
	}

	if err := a.Abandon(); err != nil {
		t.Fatal(err)
	}
	if err := b.Abandon(); err != nil {
		t.Fatal(err)
	}
	reA, err := Open(dirA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reA.Close()
	reB, err := Open(dirB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reB.Close()
	requireEqualStamps(t, a, reA)
	requireEqualStamps(t, b, reB)
	if !sameState(stateOf(reA), stateOf(reB)) {
		t.Fatal("reopened replicas do not agree after sync")
	}
}

// TestAdoptDurable covers the wholesale paths: Adopt and AdoptShard must
// persist the replacement, including the implied clearing of dropped keys.
func TestAdoptDurable(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r.Put("stale", []byte("x"))

	donor := NewReplicaShards("donor", 4)
	donor.Put("fresh", []byte("y"))
	snap, err := donor.SnapshotBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Adopt(snap); err != nil {
		t.Fatal(err)
	}
	if err := r.Abandon(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	requireEqualStamps(t, r, reopened)
	if _, ok := reopened.Get("stale"); ok {
		t.Fatal("adopt-dropped key survived restart")
	}
	if _, ok := reopened.Get("fresh"); !ok {
		t.Fatal("adopted key lost on restart")
	}
}

// TestMemoryBackendMatchesWAL runs the same mutations against a Memory
// backend to keep both implementations honest about the Backend contract.
func TestMemoryBackendMatchesWAL(t *testing.T) {
	be := storage.NewMemory()
	r, err := OpenBackend(be, "mem", 4)
	if err != nil {
		t.Fatal(err)
	}
	r.Put("a", []byte("1"))
	r.Delete("a")
	r.Put("b", []byte("2"))
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r.Put("c", []byte("3"))

	reopened, err := OpenBackend(be, "mem", 4)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualStamps(t, r, reopened)
}

// TestQuarantineAndRepair corrupts one stripe's WAL at rest and walks the
// self-healing contract end to end: reopen loads the healthy stripes and
// quarantines the damaged one, PersistErr reports it, writes to the stripe
// stay in memory without touching the latched log, and RepairStripe
// (standing in for the anti-entropy rebuild) re-checkpoints, clears the
// quarantine and PersistErr, and the next reopen is clean.
func TestQuarantineAndRepair(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Label: "n", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Find keys for two distinct stripes.
	var hot, other string
	for i := 0; hot == "" || other == ""; i++ {
		k := fmt.Sprintf("key-%d", i)
		switch ShardIndex(k, 4) {
		case 1:
			if hot == "" {
				hot = k
			}
		case 2:
			if other == "" {
				other = k
			}
		}
	}
	for i := 0; i < 5; i++ {
		r.Put(hot, []byte(fmt.Sprintf("v%d", i)))
	}
	r.Put(other, []byte("safe"))
	if err := r.Abandon(); err != nil { // crash: logs stay, no checkpoint
		t.Fatal(err)
	}

	if _, err := faultfs.FlipLogByte(dir, 1, 77); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with corrupt stripe: %v", err)
	}
	if q := r2.Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("Quarantined = %v, want [1]", q)
	}
	if r2.PersistErr() == nil {
		t.Fatal("PersistErr must report the quarantine")
	}
	var ce *storage.CorruptError
	if err := r2.QuarantineErr(1); !errors.As(err, &ce) {
		t.Fatalf("QuarantineErr(1) = %v, want *storage.CorruptError", err)
	}
	// The healthy stripe is intact and writable.
	if v, ok := r2.Get(other); !ok || string(v) != "safe" {
		t.Fatalf("healthy stripe lost data: %q %v", v, ok)
	}
	// Checkpoint skips the quarantined stripe and keeps the report.
	if err := r2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(r2.Quarantined()) != 1 || r2.PersistErr() == nil {
		t.Fatal("Checkpoint must not clear a quarantine")
	}
	// Rebuild the stripe state (a peer sync would do this) and repair.
	r2.Put(hot, []byte("rebuilt"))
	if err := r2.RepairStripe(1); err != nil {
		t.Fatal(err)
	}
	if len(r2.Quarantined()) != 0 {
		t.Fatal("quarantine did not clear after repair")
	}
	if err := r2.PersistErr(); err != nil {
		t.Fatalf("PersistErr after repair = %v", err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}

	r3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	defer r3.Close()
	if v, ok := r3.Get(hot); !ok || string(v) != "rebuilt" {
		t.Fatalf("repaired stripe = %q %v, want rebuilt", v, ok)
	}
	if len(r3.Quarantined()) != 0 {
		t.Fatal("quarantine resurrected after reopen")
	}
}

// TestScrubDemotesLiveStripe damages a live replica's checkpoint behind its
// back and asserts the incremental scrubber quarantines the stripe.
func TestScrubDemotesLiveStripe(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Label: "n", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 20; i++ {
		r.Put(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A clean scrub pass finds nothing.
	for i := 0; i < 4; i++ {
		if si, err := r.ScrubNext(); err != nil {
			t.Fatalf("clean scrub stripe %d: %v", si, err)
		}
	}
	// Rot a checkpoint at rest, then scrub until the cursor comes around.
	if _, err := faultfs.CorruptCheckpoint(dir, 2, 9); err != nil {
		t.Fatal(err)
	}
	var caught error
	for i := 0; i < 4; i++ {
		if si, err := r.ScrubNext(); err != nil && si == 2 {
			caught = err
		}
	}
	if caught == nil {
		t.Fatal("scrub missed the rotted checkpoint")
	}
	if !r.StripeQuarantined(2) {
		t.Fatal("scrub did not quarantine the damaged stripe")
	}
}

package kvstore

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"versionstamp/internal/encoding"
)

// recomputeSummary hashes a stripe's digests from scratch, straight off the
// shard map and bypassing the cache entirely — the oracle the cached path is
// checked against.
func recomputeSummary(t *testing.T, r *Replica, idx int) uint64 {
	t.Helper()
	sh := &r.shards[idx]
	sh.mu.RLock()
	ds := make([]encoding.Digest, 0, len(sh.data))
	for k, v := range sh.data {
		ds = append(ds, encoding.Digest{Key: k, Stamp: v.Stamp})
	}
	sh.mu.RUnlock()
	sort.Slice(ds, func(a, b int) bool { return ds[a].Key < ds[b].Key })
	return encoding.SummarizeDigests(ds)
}

func TestStripeSummaryTracksMutations(t *testing.T) {
	r := NewReplicaShards("r", 4)
	base, err := r.StripeSummary(0)
	if err != nil {
		t.Fatal(err)
	}
	if base != encoding.EmptySummary {
		t.Errorf("empty stripe summary = %d, want EmptySummary", base)
	}

	r.Put("k", []byte("v"))
	idx := ShardIndex("k", 4)
	afterPut, _ := r.StripeSummary(idx)
	if afterPut == encoding.EmptySummary {
		t.Error("summary unchanged after Put")
	}
	// Stable across repeated reads of a quiet stripe.
	if again, _ := r.StripeSummary(idx); again != afterPut {
		t.Errorf("quiet stripe summary moved: %d vs %d", again, afterPut)
	}

	// Causality becomes visible in the update name only once a stamp has
	// forked (a sole unforked copy sits at ε, the top update name), so the
	// mutation-tracking check uses the forked shape every synced key has.
	_ = r.Clone("peer")
	forked, _ := r.StripeSummary(idx)
	r.Delete("k")
	afterDel, _ := r.StripeSummary(idx)
	if afterDel == forked {
		t.Error("summary unchanged after Delete on a forked copy")
	}
	if got := recomputeSummary(t, r, idx); got != afterDel {
		t.Errorf("cached summary %d != recomputed %d", afterDel, got)
	}
}

// TestSummariesEquivalentAcrossSync is the property the v3 protocol rests
// on: after a sync, both replicas' stripes summarize identically even though
// their stamps' id components differ, and a local write breaks exactly the
// touched stripe's agreement.
func TestSummariesEquivalentAcrossSync(t *testing.T) {
	a := NewReplica("a")
	for i := 0; i < 200; i++ {
		a.Put(fmt.Sprintf("key-%03d", i), []byte("v"))
	}
	b := a.Clone("b")
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Summaries(), b.Summaries()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("stripe %d summaries differ after sync", i)
		}
	}

	a.Put("key-000", []byte("edited"))
	touched := ShardIndex("key-000", a.Shards())
	sa = a.Summaries()
	for i := range sa {
		if i == touched && sa[i] == sb[i] {
			t.Errorf("stripe %d summary did not change after write", i)
		}
		if i != touched && sa[i] != sb[i] {
			t.Errorf("stripe %d summary changed without a write", i)
		}
	}
}

func TestSummariesScopedMatchesForeignLayout(t *testing.T) {
	// Two replicas with different stripe counts but causally identical
	// contents must agree on summaries under any shared layout.
	a := NewReplicaShards("a", 8)
	for i := 0; i < 100; i++ {
		a.Put(fmt.Sprintf("key-%03d", i), []byte("v"))
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := NewReplicaShards("b", 32)
	if err := b.Adopt(snap); err != nil {
		t.Fatal(err)
	}
	for _, of := range []int{1, 8, 32, 50} {
		sa, err := a.SummariesScoped(of)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.SummariesScoped(of)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Errorf("layout %d: stripe %d summaries differ across shard counts", of, i)
			}
		}
	}
	if _, err := a.SummariesScoped(0); err == nil {
		t.Error("SummariesScoped(0) accepted")
	}
}

// TestSummaryCacheInvalidationUnderRace is the satellite property test:
// concurrent writers racing summary readers must never leave a stale cached
// summary behind — after the writers quiesce, every stripe's cached summary
// must equal a from-scratch recompute, so no divergent key can hide behind
// a stale stripe summary. Run with -race.
func TestSummaryCacheInvalidationUnderRace(t *testing.T) {
	r := NewReplicaShards("r", 8)
	const writers = 4
	const opsPerWriter = 300

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers hammer the cached paths while writers mutate.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Summaries()
				_ = r.Digest()
			}
		}()
	}
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < opsPerWriter; i++ {
				k := fmt.Sprintf("w%d-key-%d", w, i%50)
				switch i % 3 {
				case 0, 1:
					r.Put(k, []byte(fmt.Sprintf("v%d", i)))
				case 2:
					r.Delete(k)
				}
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()

	// Quiescent: cache must agree with a from-scratch recompute per stripe.
	for i := 0; i < r.Shards(); i++ {
		cached, err := r.StripeSummary(i)
		if err != nil {
			t.Fatal(err)
		}
		if got := recomputeSummary(t, r, i); got != cached {
			t.Errorf("stripe %d: cached summary %d != recomputed %d (stale cache)", i, cached, got)
		}
	}
}

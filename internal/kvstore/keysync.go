package kvstore

import (
	"bytes"
	"fmt"

	"versionstamp/internal/core"
)

// This file holds the single-key replication primitives under the
// partitioned cluster's quorum paths: SyncKey converges one key between two
// replicas (a quorum write pushing to each live owner, read-repair
// converging owner copies), ForkCopy detaches a stamped copy for handoff to
// a currently unreachable owner, and MergeVersioned folds such a copy back
// in when the owner revives. All three honor the fork-join discipline — a
// copy that leaves a replica does so by Fork, and one that arrives is
// absorbed by Join — so the id space stays exactly as wide as the set of
// live copies.

// SyncKey converges a single key between two replicas, with the same
// semantics one key of a full Sync would get: transfer to the side lacking
// it, reconcile when one side dominates, resolve (or report) conflicts.
// Only the key's two stripe locks are taken, in the global replica order,
// so concurrent SyncKey/Sync calls over overlapping pairs cannot deadlock.
func SyncKey(a, b *Replica, key string, resolve Resolver) (SyncResult, error) {
	if a == b {
		return SyncResult{}, fmt.Errorf("kvstore: sync of a replica with itself")
	}
	sa, sb := a.shardFor(key), b.shardFor(key)
	first, second := sa, sb
	if !replicaBefore(a, b) {
		first, second = sb, sa
	}
	// Registered first so the barrier drain runs after the locks release.
	defer a.awaitDurable()
	defer b.awaitDurable()
	first.lockMut()
	second.lockMut()
	defer second.mu.Unlock()
	defer first.mu.Unlock()
	return syncKeyPromoted(a, b, key, resolve)
}

// ForkCopy forks the key's stamp and returns a detached copy carrying the
// forked descendant, leaving the other descendant on the replica — the
// copy a hinted write queues for a dead owner. The detached copy is a live
// frontier element: it must eventually be absorbed somewhere (normally by
// MergeVersioned at the revived owner), or its id is abandoned. Returns
// ok=false if the replica does not hold the key.
func (r *Replica) ForkCopy(key string) (Versioned, bool) {
	si := ShardIndex(key, len(r.shards))
	sh := &r.shards[si]
	defer r.awaitDurable()
	sh.lockMut()
	defer sh.mu.Unlock()
	if err := r.promoteLocked(si, key); err != nil {
		r.notePersistErr(err)
		return Versioned{}, false
	}
	v, ok := sh.data[key]
	if !ok {
		return Versioned{}, false
	}
	mine, theirs := v.Stamp.Fork()
	v.Stamp = mine
	sh.data[key] = v
	r.logSet(si, key, v)
	return Versioned{
		Value:   append([]byte(nil), v.Value...),
		Deleted: v.Deleted,
		Stamp:   theirs,
	}, true
}

// MergeVersioned absorbs a detached stamped copy (a ForkCopy, typically a
// drained hint) into the replica: the incoming stamp is joined into the
// local one, so its id is reclaimed rather than leaked, and the values
// merge by stamp order — install when absent, adopt when the incoming copy
// dominates (Reconciled), keep the local value when it dominates or the
// copies are equivalent (Pruned), resolve when concurrent (Merged).
//
// On any outcome except a reported conflict, the incoming copy's identity
// is consumed; the caller must not deliver it again. A conflict with a nil
// resolver leaves the replica untouched and reports the key in
// SyncResult.Conflicts — the caller keeps the copy (e.g. requeues the
// hint) and retries with a resolver later.
func (r *Replica) MergeVersioned(key string, in Versioned, resolve Resolver) (SyncResult, error) {
	si := ShardIndex(key, len(r.shards))
	sh := &r.shards[si]
	defer r.awaitDurable()
	sh.lockMut()
	defer sh.mu.Unlock()
	var res SyncResult

	if err := r.promoteLocked(si, key); err != nil {
		return res, err
	}
	local, ok := sh.data[key]
	if !ok {
		nv := Versioned{
			Value:   append([]byte(nil), in.Value...),
			Deleted: in.Deleted,
			Stamp:   in.Stamp,
		}
		sh.data[key] = nv
		sh.noteTombLocked(key)
		r.logSet(si, key, nv)
		res.Transferred++
		return res, nil
	}

	if !local.Stamp.IDName().IncomparableTo(in.Stamp.IDName()) {
		// Overlapping ids: independently created copies with no common seed
		// (see reconcileIndependent). Merge by value and restart the key's
		// stamp system; the replica now holds the only copy, so a bare
		// updated seed suffices.
		var (
			value   []byte
			deleted bool
		)
		switch {
		case local.Deleted == in.Deleted && bytes.Equal(local.Value, in.Value):
			value, deleted = local.Value, local.Deleted
			res.Reconciled++
		case resolve == nil:
			res.Conflicts = append(res.Conflicts, key)
			return res, nil
		default:
			var err error
			value, deleted, err = resolve(key, local, in)
			if err != nil {
				return res, fmt.Errorf("kvstore: resolve %q: %w", key, err)
			}
			res.Merged++
		}
		nv := Versioned{
			Value:   append([]byte(nil), value...),
			Deleted: deleted,
			Stamp:   core.Seed().Update(),
		}
		sh.data[key] = nv
		sh.noteTombLocked(key)
		r.logSet(si, key, nv)
		return res, nil
	}

	rel := core.Compare(local.Stamp, in.Stamp)
	if rel == core.Concurrent && resolve == nil {
		res.Conflicts = append(res.Conflicts, key)
		return res, nil
	}
	joined, err := core.Join(local.Stamp, in.Stamp)
	if err != nil {
		return res, fmt.Errorf("kvstore: join stamps for %q: %w", key, err)
	}
	nv := local
	switch rel {
	case core.Equal, core.After:
		// Local copy is current; only the incoming id is absorbed.
		nv.Stamp = joined
		res.Pruned++
	case core.Before:
		nv = Versioned{
			Value:   append([]byte(nil), in.Value...),
			Deleted: in.Deleted,
			Stamp:   joined,
		}
		res.Reconciled++
	case core.Concurrent:
		value, deleted, rerr := resolve(key, local, in)
		if rerr != nil {
			return res, fmt.Errorf("kvstore: resolve %q: %w", key, rerr)
		}
		nv = Versioned{
			Value:   append([]byte(nil), value...),
			Deleted: deleted,
			// The merge is a new update dominating both inputs.
			Stamp: joined.Update(),
		}
		res.Merged++
	}
	sh.data[key] = nv
	sh.noteTombLocked(key)
	r.logSet(si, key, nv)
	return res, nil
}

package kvstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"versionstamp/internal/core"
)

func TestShardIndexStable(t *testing.T) {
	for _, n := range []int{1, 2, 8, 32} {
		for _, k := range []string{"", "a", "cart:42", "some/long/path.txt"} {
			i := ShardIndex(k, n)
			if i < 0 || i >= n {
				t.Fatalf("ShardIndex(%q, %d) = %d out of range", k, n, i)
			}
			if j := ShardIndex(k, n); j != i {
				t.Fatalf("ShardIndex(%q, %d) unstable: %d then %d", k, n, i, j)
			}
		}
	}
	if ShardIndex("k", 0) != 0 || ShardIndex("k", -3) != 0 {
		t.Error("degenerate shard counts must map to shard 0")
	}
}

func TestNewReplicaShardsClamps(t *testing.T) {
	r := NewReplicaShards("r", 0)
	if r.Shards() != 1 {
		t.Fatalf("Shards() = %d, want clamp to 1", r.Shards())
	}
	r.Put("k", []byte("v"))
	if got, ok := r.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestBatchOps(t *testing.T) {
	r := NewReplicaShards("r", 8)
	entries := map[string][]byte{}
	keys := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		entries[k] = []byte(fmt.Sprintf("val-%d", i))
		keys = append(keys, k)
	}
	r.PutBatch(entries)
	if r.Len() != 100 {
		t.Fatalf("Len = %d after PutBatch", r.Len())
	}
	got := r.GetBatch(append(keys, "missing"))
	if len(got) != 100 {
		t.Fatalf("GetBatch returned %d entries", len(got))
	}
	for k, v := range entries {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("GetBatch[%q] = %q, want %q", k, got[k], v)
		}
	}
	// Batch buffers are immutable views: a later overwrite installs a fresh
	// buffer rather than mutating the handed-out one.
	before := got[keys[0]]
	r.Put(keys[0], []byte("overwritten"))
	if !bytes.Equal(before, entries[keys[0]]) {
		t.Error("GetBatch buffer changed under a later Put")
	}
	r.Put(keys[0], entries[keys[0]])
	if n := r.DeleteBatch(keys[:40]); n != 40 {
		t.Fatalf("DeleteBatch = %d, want 40", n)
	}
	if n := r.DeleteBatch(keys[:40]); n != 0 {
		t.Fatalf("repeated DeleteBatch = %d, want 0", n)
	}
	if r.Len() != 60 {
		t.Fatalf("Len = %d after DeleteBatch", r.Len())
	}
	// Batched writes carry stamps exactly like point writes.
	v, ok := r.Version(keys[50])
	if !ok || v.Stamp.IsZero() {
		t.Fatalf("Version after PutBatch = %+v, %v", v, ok)
	}
}

func TestPutVersionStoresVerbatim(t *testing.T) {
	r := NewReplica("r")
	st := core.Seed().Update()
	r.PutVersion("k", Versioned{Value: []byte("v"), Stamp: st})
	v, ok := r.Version("k")
	if !ok || !v.Stamp.Equal(st) || string(v.Value) != "v" {
		t.Fatalf("Version = %+v, %v", v, ok)
	}
}

// applyScript drives an identical randomized workload (batched and point
// puts, deletes, syncs) against one pair of replicas. Keys originate at a
// before the first sync, as the fork-join model assumes.
func applyScript(t *testing.T, seed int64, a, b *Replica) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, 12)
	seedBatch := map[string][]byte{}
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
		seedBatch[keys[i]] = []byte("seed")
	}
	a.PutBatch(seedBatch)
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 80; step++ {
		r := a
		if rng.Intn(2) == 1 {
			r = b
		}
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(6) {
		case 0:
			r.Delete(k)
		case 1:
			r.DeleteBatch([]string{k, keys[rng.Intn(len(keys))]})
		case 2:
			r.PutBatch(map[string][]byte{k: []byte(fmt.Sprintf("b%d", step))})
		case 3, 4:
			r.Put(k, []byte(fmt.Sprintf("v%d", step)))
		default:
			if _, err := Sync(a, b, KeepBoth([]byte("|"))); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
	for round := 0; round < 2; round++ {
		if _, err := Sync(a, b, KeepBoth([]byte("|"))); err != nil {
			t.Fatalf("seed %d final sync: %v", seed, err)
		}
	}
}

// TestShardedMatchesSingleLockReference is the property test for the
// striped engine: the same randomized workload run against a sharded pair
// and against a single-shard pair (the seed's one-lock design) must
// converge to identical contents — sharding changes locking granularity,
// never merge semantics.
func TestShardedMatchesSingleLockReference(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		sa, sb := NewReplicaShards("sa", 8), NewReplicaShards("sb", 8)
		ra, rb := NewReplicaShards("ra", 1), NewReplicaShards("rb", 1)
		applyScript(t, seed, sa, sb)
		applyScript(t, seed, ra, rb)

		refKeys := ra.Keys()
		gotKeys := sa.Keys()
		if fmt.Sprint(refKeys) != fmt.Sprint(gotKeys) {
			t.Fatalf("seed %d: key sets differ: %v vs %v", seed, refKeys, gotKeys)
		}
		for _, k := range refKeys {
			ref, refOK := ra.Get(k)
			got, gotOK := sa.Get(k)
			if refOK != gotOK || !bytes.Equal(ref, got) {
				t.Fatalf("seed %d key %q: sharded %q/%v vs reference %q/%v",
					seed, k, got, gotOK, ref, refOK)
			}
			// And the sharded pair itself converged.
			gb, okB := sb.Get(k)
			if okB != gotOK || !bytes.Equal(gb, got) {
				t.Fatalf("seed %d key %q: sharded pair diverged: %q/%v vs %q/%v",
					seed, k, got, gotOK, gb, okB)
			}
		}
	}
}

// TestSyncShardCoversKeyspace: running one scoped SyncShard per stripe
// converges the pair exactly as one whole-keyspace Sync would.
func TestSyncShardCoversKeyspace(t *testing.T) {
	const shards = 8
	a, b := NewReplicaShards("a", shards), NewReplicaShards("b", shards)
	for i := 0; i < 50; i++ {
		a.Put(fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i += 2 {
		b.Put(fmt.Sprintf("key-%02d", i), []byte("newer"))
	}
	a.Put("only-at-a", []byte("x"))

	var total SyncResult
	for s := 0; s < shards; s++ {
		res, err := SyncShard(a, b, nil, s, shards)
		if err != nil {
			t.Fatalf("SyncShard(%d): %v", s, err)
		}
		total.add(res)
	}
	if total.Reconciled != 25 || total.Transferred != 1 {
		t.Fatalf("aggregate result = %+v", total)
	}
	for _, k := range a.Keys() {
		va, okA := a.Get(k)
		vb, okB := b.Get(k)
		if okA != okB || !bytes.Equal(va, vb) {
			t.Fatalf("diverged on %q after per-shard sync", k)
		}
	}
}

func TestSyncShardValidation(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	if _, err := SyncShard(a, a, nil, 0, 4); err == nil {
		t.Error("self-sync must fail")
	}
	for _, bad := range [][2]int{{-1, 4}, {4, 4}, {0, 0}} {
		if _, err := SyncShard(a, b, nil, bad[0], bad[1]); err == nil {
			t.Errorf("SyncShard(%d, %d) must fail", bad[0], bad[1])
		}
	}
}

// TestSyncShardMismatchedLayouts: scoped sync still converges when either
// replica's own stripe count differs from the round's layout.
func TestSyncShardMismatchedLayouts(t *testing.T) {
	a, b := NewReplicaShards("a", 8), NewReplicaShards("b", 5)
	for i := 0; i < 30; i++ {
		a.Put(fmt.Sprintf("key-%02d", i), []byte("v"))
	}
	const of = 4
	for s := 0; s < of; s++ {
		if _, err := SyncShard(a, b, nil, s, of); err != nil {
			t.Fatalf("SyncShard(%d/%d): %v", s, of, err)
		}
	}
	if a.Len() != b.Len() || b.Len() != 30 {
		t.Fatalf("lens = %d, %d", a.Len(), b.Len())
	}
}

// TestSyncMixedShardCounts exercises the whole-keyspace fallback between
// replicas with different stripe counts.
func TestSyncMixedShardCounts(t *testing.T) {
	a, b := NewReplicaShards("a", 8), NewReplicaShards("b", 3)
	for i := 0; i < 40; i++ {
		a.Put(fmt.Sprintf("key-%02d", i), []byte("v"))
	}
	res, err := Sync(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred != 40 {
		t.Fatalf("result = %+v", res)
	}
	b.Put("key-00", []byte("newer"))
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Get("key-00"); string(got) != "newer" {
		t.Fatalf("a.key-00 = %q", got)
	}
}

func TestSnapshotPreservesShardLayout(t *testing.T) {
	r := NewReplicaShards("r", 5)
	r.Put("k", []byte("v"))
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.Shards() != 5 {
		t.Fatalf("restored shards = %d, want 5", back.Shards())
	}
	// Snapshots without a layout (pre-sharding format) restore to the
	// default.
	legacy, err := Restore([]byte(`{"label":"x","entries":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Shards() != DefaultShards {
		t.Fatalf("legacy shards = %d, want %d", legacy.Shards(), DefaultShards)
	}
}

func TestSnapshotShardAdoptShardRoundTrip(t *testing.T) {
	const shards = 4
	a := NewReplicaShards("a", shards)
	for i := 0; i < 30; i++ {
		a.Put(fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	b := NewReplicaShards("b", shards)
	for s := 0; s < shards; s++ {
		snap, err := a.SnapshotShard(s)
		if err != nil {
			t.Fatalf("SnapshotShard(%d): %v", s, err)
		}
		if err := b.AdoptShard(s, snap); err != nil {
			t.Fatalf("AdoptShard(%d): %v", s, err)
		}
	}
	if fmt.Sprint(a.Keys()) != fmt.Sprint(b.Keys()) {
		t.Fatalf("keys differ: %v vs %v", a.Keys(), b.Keys())
	}
	if _, err := a.SnapshotShard(shards); err == nil {
		t.Error("out-of-range SnapshotShard must fail")
	}
	if err := b.AdoptShard(shards, nil); err == nil {
		t.Error("out-of-range AdoptShard must fail")
	}
	// Entries landing in the wrong stripe are protocol corruption.
	wrong, err := a.SnapshotShard(0)
	if err != nil {
		t.Fatal(err)
	}
	hasKeys := false
	for s := 1; s < shards; s++ {
		if err := b.AdoptShard(s, wrong); err != nil {
			hasKeys = true
			break
		}
	}
	if !hasKeys {
		t.Error("AdoptShard accepted keys of a different stripe")
	}
}

// TestAdoptShardRejectsForeignLayout is the regression test for the
// cross-layout adoption bug: AdoptShard replaces the stripe wholesale, so a
// snapshot cut under a different stripe layout — whose keys can
// nevertheless all hash into the receiver's stripe — would silently drop
// every local key the foreign slice does not cover. Snapshots recording a
// disagreeing layout must be rejected outright.
func TestAdoptShardRejectsForeignLayout(t *testing.T) {
	donor := NewReplicaShards("donor", 2)
	receiver := NewReplicaShards("receiver", 4)

	// Keys in receiver stripe 0 of 4 also live in donor stripe 0 of 2
	// (4 is a multiple of 2), so the per-key stripe check alone cannot
	// catch the layout mismatch.
	var keys []string
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if ShardIndex(k, 4) == 0 {
			keys = append(keys, k)
		}
	}
	donor.Put(keys[0], []byte("donor-0"))
	donor.Put(keys[1], []byte("donor-1"))
	receiver.Put(keys[2], []byte("must-survive")) // absent from the donor slice

	snap, err := donor.SnapshotShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := receiver.AdoptShard(0, snap); err == nil {
		t.Fatal("AdoptShard accepted a snapshot recording a 2-stripe layout into a 4-stripe replica")
	}
	if _, ok := receiver.Get(keys[2]); !ok {
		t.Fatal("local key lost to a rejected adoption")
	}

	// Legacy snapshots record no layout; they fall back to the per-key
	// check and keep loading.
	v, _ := donor.Version(keys[0])
	legacy, err := json.Marshal(snapshotDoc{
		Label: "legacy",
		Entries: []snapshotEntry{
			{Key: keys[0], Value: v.Value, Stamp: v.Stamp.String()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := receiver.AdoptShard(0, legacy); err != nil {
		t.Fatalf("layout-free legacy snapshot rejected: %v", err)
	}
	if _, ok := receiver.Get(keys[0]); !ok {
		t.Fatal("legacy adoption did not load")
	}
}

// TestConcurrentShardedAccess hammers every public operation — point ops,
// batches, snapshots and striped syncs — from parallel goroutines under
// the race detector.
func TestConcurrentShardedAccess(t *testing.T) {
	a, b := NewReplica("a"), NewReplica("b")
	seedBatch := map[string][]byte{}
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
		seedBatch[keys[i]] = []byte("seed")
	}
	a.PutBatch(seedBatch)
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 40; i++ {
				k := keys[rng.Intn(len(keys))]
				switch g % 6 {
				case 0:
					a.Put(k, []byte{byte(i)})
				case 1:
					b.PutBatch(map[string][]byte{k: {byte(i)}, keys[rng.Intn(len(keys))]: {1}})
				case 2:
					a.GetBatch(keys)
					b.Get(k)
				case 3:
					a.Delete(k)
					b.DeleteBatch(keys[:2])
				case 4:
					if _, err := a.Snapshot(); err != nil {
						t.Error(err)
					}
					a.Len()
					b.Keys()
				default:
					if _, err := Sync(a, b, KeepBoth(nil)); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// The stores are still coherent: a final resolved sync converges them.
	for round := 0; round < 2; round++ {
		if _, err := Sync(a, b, KeepBoth(nil)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range a.Keys() {
		va, okA := a.Get(k)
		vb, okB := b.Get(k)
		if okA != okB || !bytes.Equal(va, vb) {
			t.Fatalf("diverged on %q after concurrent traffic", k)
		}
	}
}

// TestConcurrentOverlappingSyncs runs striped syncs of overlapping replica
// pairs in parallel — the deadlock scenario the global lock order exists
// for — together with a mixed-layout pair to cover the global path.
func TestConcurrentOverlappingSyncs(t *testing.T) {
	r0 := NewReplica("r0")
	for i := 0; i < 20; i++ {
		r0.Put(fmt.Sprintf("key-%02d", i), []byte("seed"))
	}
	r1 := r0.Clone("r1")
	r2 := r0.Clone("r2")
	r3 := NewReplicaShards("r3", 7) // different layout: global-lock path
	pairs := [][2]*Replica{{r0, r1}, {r1, r2}, {r2, r0}, {r0, r3}, {r3, r1}}
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p := pairs[(g+i)%len(pairs)]
				if _, err := Sync(p[0], p[1], KeepBoth(nil)); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
}

package kvstore

import (
	"fmt"
	"sort"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
)

// Stripe summaries: the store half of the hierarchical (v3) anti-entropy
// protocol. Each stripe exposes a fixed-size hash over its sorted digest set
// (encoding.SummarizeDigests); two endpoints that agree on a stripe's
// summary skip that stripe's digests entirely, so a converged round costs
// O(stripes) instead of O(keys).
//
// Summaries are served from a per-stripe cache keyed by the stripe's epoch
// counter, which every mutation path bumps (see shard.lockMut). The cached
// digest list doubles as the source for Digest/DigestShard, so repeated
// gossip rounds over a quiet store do no per-key work at all — not even the
// digest collection the v2 protocol pays every round.

// stripeCache returns stripe i's summary and its digests sorted by key,
// recomputing both only when the stripe's epoch moved since the last call.
// The returned slice is the cache itself: callers inside the package must
// treat it as read-only, and exported paths copy it before handing it out.
func (r *Replica) stripeCache(i int) (uint64, []encoding.Digest) {
	sh := &r.shards[i]
	sh.cacheMu.Lock()
	defer sh.cacheMu.Unlock()
	return r.stripeCacheLocked(i)
}

// stripeCacheLocked is stripeCache's core for callers already holding the
// stripe's cacheMu (the digest-tree cache shares the lock and the digest
// snapshot — see tree.go).
func (r *Replica) stripeCacheLocked(i int) (uint64, []encoding.Digest) {
	sh := &r.shards[i]
	sh.mu.RLock()
	e := sh.epoch.Load()
	if sh.cacheValid && sh.cacheEpoch == e {
		sum, ds := sh.summary, sh.digestCache
		sh.mu.RUnlock()
		return sum, ds
	}
	ds := make([]encoding.Digest, 0, sh.countLocked())
	sh.eachMetaLocked(func(k string, _ bool, st core.Stamp) {
		ds = append(ds, encoding.Digest{Key: k, Stamp: st})
	})
	sh.mu.RUnlock()
	// Sorting and hashing happen outside the stripe lock: the snapshot is
	// already taken, and a writer that sneaks in meanwhile bumped the epoch
	// past e, so the stale cache entry can never be mistaken for current.
	sort.Slice(ds, func(a, b int) bool { return ds[a].Key < ds[b].Key })
	sum := encoding.SummarizeDigests(ds)
	sh.summary, sh.digestCache = sum, ds
	sh.cacheEpoch, sh.cacheValid = e, true
	return sum, ds
}

// StripeSummary returns the summary hash of stripe idx under the replica's
// own layout, lazily recomputed only when the stripe mutated.
func (r *Replica) StripeSummary(idx int) (uint64, error) {
	if idx < 0 || idx >= len(r.shards) {
		return 0, fmt.Errorf("kvstore: shard %d out of range of %d", idx, len(r.shards))
	}
	sum, _ := r.stripeCache(idx)
	return sum, nil
}

// Summaries returns one summary hash per stripe under the replica's own
// layout — the phase-0 payload of a v3 anti-entropy round.
func (r *Replica) Summaries() []uint64 {
	out := make([]uint64, len(r.shards))
	for i := range r.shards {
		out[i], _ = r.stripeCache(i)
	}
	return out
}

// SummariesScoped returns `of` summaries for the partition a peer with `of`
// stripes would compute. When the layouts agree this is the cached fast
// path; otherwise every digest is grouped by ShardIndex under the foreign
// layout and hashed uncached (correct for any pair of layouts, just not
// O(1) on a quiet store).
func (r *Replica) SummariesScoped(of int) ([]uint64, error) {
	if of < 1 {
		return nil, fmt.Errorf("kvstore: summary layout of %d stripes", of)
	}
	if of == len(r.shards) {
		return r.Summaries(), nil
	}
	groups := make([][]encoding.Digest, of)
	for _, d := range r.Digest() { // sorted by key, so every group stays sorted
		i := ShardIndex(d.Key, of)
		groups[i] = append(groups[i], d)
	}
	out := make([]uint64, of)
	for i, g := range groups {
		out[i] = encoding.SummarizeDigests(g)
	}
	return out, nil
}

package kvstore

import (
	"fmt"
	"sort"
	"strings"

	"versionstamp/internal/core"
	"versionstamp/internal/pagecache"
	"versionstamp/internal/storage"
)

// Paged residency: a replica opened with Options.Paged keeps only per-key
// metadata resident for the entries of each stripe's checkpoint — key, stamp,
// tombstone flag and the value's location inside the checkpoint file — while
// the value bytes stay on disk and fault in through a sized page cache.
// Entries written since the last checkpoint live in the ordinary hot map,
// values included (they are needed for the WAL append anyway); a checkpoint
// migrates them into the cold index and drops their heap copies. The memory
// bound is therefore a post-checkpoint property: after Checkpoint, a stripe
// costs ~(key + interned stamp + location) per key, independent of value
// sizes.
//
// The cold index never shadows the hot map: a key present in sh.data — even
// as a tombstone — hides any cold entry of the same name. Lookups consult hot
// first, then cold; enumeration is hot ∪ (cold minus dropped minus shadowed).

// DefaultCacheBytes is the paged read cache budget when Options.CacheBytes
// is zero.
const DefaultCacheBytes = 32 << 20

// coldStripe is the checkpoint-resident slice of one paged stripe: parallel
// per-entry columns sorted by key (checkpoints are written sorted, see
// encodeBinarySnapshot), valid for exactly one checkpoint generation.
type coldStripe struct {
	gen  uint32 // checkpoint generation the locations address
	base int64  // file offset of the checkpoint payload's first byte

	// Keys are packed into one blob with n+1 boundary offsets instead of a
	// []string: 4 bytes per key instead of a 16-byte header plus a separate
	// allocation — at a million keys the difference is half the key column.
	kblob string
	koffs []uint32

	stamps  []core.Stamp
	deleted []bool
	dropped []bool  // discarded tombstones: skip this entry everywhere
	offs    []int64 // absolute file offset of each value's bytes
	lens    []uint32
	live    int  // entries with dropped[i] == false
	dirty   bool // dropped bits changed since this index was built
}

// count returns the number of entries (dropped included).
func (cs *coldStripe) count() int { return len(cs.stamps) }

// key returns entry x's key — a substring of the shared blob. Callers that
// store it beyond the life of this index (hot maps, tombstone ledgers) must
// strings.Clone it, or the 12-byte key pins the whole stripe's blob.
func (cs *coldStripe) key(x int) string { return cs.kblob[cs.koffs[x]:cs.koffs[x+1]] }

// find returns the index of key in the sorted column set, or -1. Dropped
// entries are still found — callers that must skip them check dropped[i].
func (cs *coldStripe) find(key string) int {
	i := sort.Search(cs.count(), func(x int) bool { return cs.key(x) >= key })
	if i < cs.count() && cs.key(i) == key {
		return i
	}
	return -1
}

// buildColdStripe decodes a binary snapshot into a cold index for stripe i.
// Value offsets inside the snapshot become absolute file offsets against
// base. Keys are packed into the index's own blob, so the snapshot buffer is
// not retained.
func buildColdStripe(i, nshards int, snap []byte, gen uint32, base int64) (*coldStripe, error) {
	cs := &coldStripe{gen: gen, base: base, koffs: []uint32{0}}
	var blob []byte
	err := decodeBinarySnapshotMeta(snap, func(e coldEntryMeta) error {
		if ShardIndex(e.key, nshards) != i {
			return fmt.Errorf("kvstore: shard %d checkpoint: key %q belongs to shard %d",
				i, e.key, ShardIndex(e.key, nshards))
		}
		blob = append(blob, e.key...)
		cs.koffs = append(cs.koffs, uint32(len(blob)))
		cs.stamps = append(cs.stamps, e.stamp)
		cs.deleted = append(cs.deleted, e.deleted)
		cs.dropped = append(cs.dropped, false)
		if e.valOff >= 0 {
			cs.offs = append(cs.offs, base+int64(e.valOff))
			cs.lens = append(cs.lens, uint32(e.valLen))
		} else {
			cs.offs = append(cs.offs, 0)
			cs.lens = append(cs.lens, 0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	cs.kblob = string(blob)
	cs.live = cs.count()
	return cs, nil
}

// coldValue faults the value bytes of cold entry x of stripe si through the
// page cache. The returned buffer is cache-owned and immutable. Stripe lock
// (read suffices) held by the caller, so the index cannot be swapped under
// the read; a checkpoint racing the disk read is excluded by the lock.
//
// Entries are cached under the user key (plus stripe and generation), which
// is what lets Get probe the cache before running the index's binary
// search. A cached entry therefore always describes a live cold value at
// its generation: only live values are ever admitted, and within one
// generation a cold value can only stop being current by gaining a hot
// shadow — which the read path checks before the cache.
func (r *Replica) coldValue(si int, cs *coldStripe, x int, key string) ([]byte, error) {
	if cs.lens[x] == 0 {
		return nil, nil
	}
	ck := pagecache.Key{Shard: si, Gen: cs.gen, Ckpt: true, Name: key}
	return r.cache.Get(ck, func() ([]byte, error) {
		return r.pager.ReadValueAt(si, storage.ValueLoc{
			Off: cs.offs[x], Len: cs.lens[x], Gen: cs.gen, Ckpt: true,
		})
	})
}

// metaLocked returns key's stored copy without its value — hot map first,
// then the cold index. Stripe lock (read suffices) held.
func (sh *shard) metaLocked(key string) (Versioned, bool) {
	if v, ok := sh.data[key]; ok {
		return Versioned{Deleted: v.Deleted, Stamp: v.Stamp}, true
	}
	if cs := sh.cold; cs != nil {
		if x := cs.find(key); x >= 0 && !cs.dropped[x] {
			return Versioned{Deleted: cs.deleted[x], Stamp: cs.stamps[x]}, true
		}
	}
	return Versioned{}, false
}

// eachMetaLocked calls fn for every key with stored state in the stripe
// (hot ∪ cold, tombstones included). Stripe lock (read suffices) held.
func (sh *shard) eachMetaLocked(fn func(key string, deleted bool, stamp core.Stamp)) {
	for k, v := range sh.data {
		fn(k, v.Deleted, v.Stamp)
	}
	cs := sh.cold
	if cs == nil {
		return
	}
	for x := 0; x < cs.count(); x++ {
		if cs.dropped[x] {
			continue
		}
		k := cs.key(x)
		if _, shadowed := sh.data[k]; shadowed {
			continue
		}
		fn(k, cs.deleted[x], cs.stamps[x])
	}
}

// countLocked returns the stripe's stored-state key count (hot ∪ cold).
func (sh *shard) countLocked() int {
	n := len(sh.data)
	cs := sh.cold
	if cs == nil {
		return n
	}
	if len(sh.data) == 0 {
		return cs.live
	}
	for x := 0; x < cs.count(); x++ {
		if cs.dropped[x] {
			continue
		}
		if _, shadowed := sh.data[cs.key(x)]; !shadowed {
			n++
		}
	}
	return n
}

// promoteLocked faults key's cold entry into the hot map so the raw-map sync
// machinery (syncKey and friends) can work on it in place. No-op for
// non-paged replicas, hot keys, and keys the cold index does not hold.
// Stripe write lock held. The tombstone ledger is untouched — promotion
// changes residency, not state.
func (r *Replica) promoteLocked(si int, key string) error {
	if !r.paged {
		return nil
	}
	sh := &r.shards[si]
	if _, ok := sh.data[key]; ok {
		return nil
	}
	cs := sh.cold
	if cs == nil {
		return nil
	}
	x := cs.find(key)
	if x < 0 || cs.dropped[x] {
		return nil
	}
	v := Versioned{Deleted: cs.deleted[x], Stamp: cs.stamps[x]}
	if !v.Deleted {
		buf, err := r.coldValue(si, cs, x, key)
		if err != nil {
			return fmt.Errorf("kvstore: promote %q (shard %d): %w", key, si, err)
		}
		v.Value = buf
	}
	sh.data[strings.Clone(key)] = v
	return nil
}

// promoteStripeLocked faults every cold entry of stripe i into the hot map —
// the whole-stripe promotion Clone and wholesale snapshot paths need.
// Stripe write lock held.
func (r *Replica) promoteStripeLocked(i int) error {
	if !r.paged {
		return nil
	}
	cs := r.shards[i].cold
	if cs == nil {
		return nil
	}
	for x := 0; x < cs.count(); x++ {
		if err := r.promoteLocked(i, cs.key(x)); err != nil {
			return err
		}
	}
	return nil
}

// noteTombLocked re-stamps key's entry in the stripe's tombstone ledger from
// its current hot state: tombstone → recorded at the current epoch, live →
// removed. Keys not in the hot map are left alone (their ledger entry, if
// any, still describes the cold copy). Stripe write lock held, epoch already
// bumped by lockMut.
func (sh *shard) noteTombLocked(key string) {
	v, ok := sh.data[key]
	switch {
	case ok && v.Deleted:
		sh.tombs[key] = sh.epoch.Load()
	case ok:
		delete(sh.tombs, key)
	}
}

// rebuildTombsLocked rebuilds the stripe's tombstone ledger from its current
// contents — the wholesale-replacement paths (Adopt/AdoptShard) use it after
// swapping the stripe's maps. Stripe write lock held.
func (sh *shard) rebuildTombsLocked() {
	sh.tombs = make(map[string]uint64)
	e := sh.epoch.Load()
	sh.eachMetaLocked(func(key string, deleted bool, _ core.Stamp) {
		if deleted {
			// Cold keys are blob substrings; clone so the ledger does not
			// pin a superseded index's blob across checkpoint rebuilds.
			sh.tombs[strings.Clone(key)] = e
		}
	})
}

// StripeEpoch returns stripe i's current mutation epoch — the clock the
// tombstone ledger and the anti-entropy layer's propagation evidence are
// expressed in. Monotonic per stripe; advances on every write-locked
// mutation.
func (r *Replica) StripeEpoch(i int) uint64 {
	if i < 0 || i >= len(r.shards) {
		return 0
	}
	return r.shards[i].epoch.Load()
}

// Tombstones returns a copy of stripe i's tombstone ledger: every currently
// tombstoned key mapped to the stripe epoch its tombstone was last
// (re-)established at. A tombstone proven propagated to every co-owner as of
// a later epoch is safe to discard — see DiscardTombstones.
func (r *Replica) Tombstones(i int) map[string]uint64 {
	if i < 0 || i >= len(r.shards) {
		return nil
	}
	sh := &r.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make(map[string]uint64, len(sh.tombs))
	for k, e := range sh.tombs {
		out[k] = e
	}
	return out
}

// TombstonesLive returns the number of tombstones currently held across all
// stripes — the gauge that should fall back to zero once deletes have
// propagated and the GC has discarded them.
func (r *Replica) TombstonesLive() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		n += len(sh.tombs)
		sh.mu.RUnlock()
	}
	return n
}

// DiscardTombstones drops the tombstones of stripe i named in expect,
// returning how many were discarded. A key is discarded only if it is still
// a tombstone here AND its ledger epoch still equals expect[key] — so a
// delete→put→delete that raced the caller's evidence gathering re-stamped
// the ledger and is left alone, as is any key that was revived outright.
// The caller (the anti-entropy GC) is responsible for only naming tombstones
// whose propagation to every co-owner it has proven; discarding an
// unpropagated tombstone is how deleted keys resurrect.
func (r *Replica) DiscardTombstones(i int, expect map[string]uint64) int {
	if i < 0 || i >= len(r.shards) || len(expect) == 0 {
		return 0
	}
	sh := &r.shards[i]
	sh.lockMut()
	defer sh.mu.Unlock()
	n := 0
	for k, want := range expect {
		cur, ok := sh.tombs[k]
		if !ok || cur != want {
			continue
		}
		if v, hot := sh.data[k]; hot {
			if !v.Deleted {
				continue // revived without a ledger update; never discard
			}
			delete(sh.data, k)
		} else if cs := sh.cold; cs != nil {
			x := cs.find(k)
			if x < 0 || cs.dropped[x] || !cs.deleted[x] {
				continue
			}
		} else {
			continue
		}
		// Drop the cold entry too (it may sit under a just-removed hot
		// shadow); the next checkpoint persists the discard.
		if cs := sh.cold; cs != nil {
			if x := cs.find(k); x >= 0 && !cs.dropped[x] {
				cs.dropped[x] = true
				cs.live--
				cs.dirty = true
			}
		}
		delete(sh.tombs, k)
		n++
	}
	return n
}

// enqueueWait queues one group-commit durability barrier. Appends staged
// under stripe locks park their barriers here; public mutators drain the
// queue after releasing the locks (awaitDurable), so the fsync wait never
// blocks the stripe.
func (r *Replica) enqueueWait(w func() error) {
	r.pendMu.Lock()
	r.pending = append(r.pending, w)
	r.pendMu.Unlock()
}

// awaitDurable blocks until every queued append barrier has resolved —
// the group-commit acknowledgement point. Barrier failures surface through
// PersistErr exactly like synchronous append failures. Must be called with
// no stripe locks held.
func (r *Replica) awaitDurable() {
	r.pendMu.Lock()
	ws := r.pending
	r.pending = nil
	r.pendMu.Unlock()
	for _, w := range ws {
		if err := w(); err != nil {
			r.notePersistErr(err)
		}
	}
}

// CacheStats returns the paged read cache's counters (zero for non-paged
// replicas).
func (r *Replica) CacheStats() pagecache.Stats {
	if r.cache == nil {
		return pagecache.Stats{}
	}
	return r.cache.Stats()
}

package kvstore

import (
	"fmt"
	"sort"
	"sync"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
)

// This file is the store half of the two-phase delta anti-entropy protocol:
// phase 1 exchanges per-key digests (key + stamp, no value) and each side
// decides locally which copies the stamps cannot prove equivalent; phase 2
// ships only those. The paper's whole point is that stamp comparison
// classifies two copies as equivalent, obsolete or conflicting without
// looking at the data — so converged replicas can verify convergence for the
// price of the digests alone.
//
// The scope arguments (idx, of) mirror SyncShard: of > 0 restricts the round
// to the keys of stripe idx under a layout of `of` stripes, locking only the
// matching local stripe when this replica's layout agrees; of == 0 covers
// the whole keyspace under all stripe locks.

// Diff classifies a peer's digest against local state — the output of
// phase 1 on the responding side.
type Diff struct {
	// Need lists peer keys whose full copies are required to reconcile:
	// keys unknown here, keys where the peer dominates, and keys the stamps
	// call concurrent or causally unrelated. Sorted.
	Need []string
	// Equivalent counts peer keys whose stamps proved the copies identical;
	// they are pruned from the wire entirely.
	Equivalent int
	// LocalOnly counts in-scope local keys the peer digest does not
	// mention; their copies must travel to the peer.
	LocalOnly int
}

// Digest returns the (key, stamp) pairs of every stored copy — including
// tombstones — sorted by key: the phase-1 payload of a whole-replica delta
// round. Quiet stripes are served from the per-stripe digest cache, and the
// result slice is pre-sized from the cached stripe lengths, so an idle
// round's digest collection is one allocation and a merge sort of
// already-sorted runs.
func (r *Replica) Digest() []encoding.Digest {
	stripes := make([][]encoding.Digest, len(r.shards))
	total := 0
	for i := range r.shards {
		_, stripes[i] = r.stripeCache(i)
		total += len(stripes[i])
	}
	out := make([]encoding.Digest, 0, total)
	for _, ds := range stripes {
		out = append(out, ds...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// DigestShard returns the digests of stripe idx only, sorted by key: the
// phase-1 payload of one per-stripe delta round. Served from the stripe's
// digest cache; the copy is exactly sized.
func (r *Replica) DigestShard(idx int) ([]encoding.Digest, error) {
	if idx < 0 || idx >= len(r.shards) {
		return nil, fmt.Errorf("kvstore: shard %d out of range of %d", idx, len(r.shards))
	}
	_, ds := r.stripeCache(idx)
	out := make([]encoding.Digest, len(ds))
	copy(out, ds)
	return out, nil
}

// diffScratch is the pooled per-call scratch of DiffAgainst: the peer
// digests' local stripe assignments and their counting-sort grouping. Pooled
// so steady-state digest phases allocate nothing however often they run.
type diffScratch struct {
	stripeOf []int32 // local stripe owning peer[i].Key
	starts   []int   // bucket cursor per stripe (counting sort)
	order    []int32 // peer indices grouped by local stripe
}

var diffScratchPool = sync.Pool{New: func() any { return new(diffScratch) }}

// grow resizes the scratch for npeer digests over nshards stripes.
func (sc *diffScratch) grow(npeer, nshards int) {
	if cap(sc.stripeOf) < npeer {
		sc.stripeOf = make([]int32, npeer)
		sc.order = make([]int32, npeer)
	}
	sc.stripeOf = sc.stripeOf[:npeer]
	sc.order = sc.order[:npeer]
	if cap(sc.starts) < nshards+1 {
		sc.starts = make([]int, nshards+1)
	}
	sc.starts = sc.starts[:nshards+1]
	for i := range sc.starts {
		sc.starts[i] = 0
	}
}

// DiffAgainst compares a peer digest with local state and reports which peer
// copies must travel in full. Read locks only; the comparison is advisory —
// ApplyDelta re-validates every key under write locks, so state changing
// between the two phases costs at most one extra round, never correctness.
//
// This is the phase every idle sync round pays, so it is engineered as a
// batch: peer digests are grouped by owning local stripe (counting sort over
// pooled scratch, no per-key maps), each stripe is read-locked once while
// its group is probed directly against the stripe map, and stamp
// classification runs through a batch Comparer — converged copies share
// interned update handles, so the common outcome is a pointer comparison.
// A converged pass allocates nothing beyond pool warm-up.
func (r *Replica) DiffAgainst(peer []encoding.Digest, idx, of int) (Diff, error) {
	return r.diffRanges(peer, idx, of, nil)
}

// DiffRanges is DiffAgainst additionally scoped to the given tree-position
// ranges (tree.go): only peer digests and local keys whose encoding.TreePos
// falls inside a range take part — the leaf phase of a v4 round, where the
// tree descent has already narrowed divergence to a few position intervals.
// A nil ranges slice means unscoped (exactly DiffAgainst).
func (r *Replica) DiffRanges(peer []encoding.Digest, idx, of int, ranges []TreeRange) (Diff, error) {
	return r.diffRanges(peer, idx, of, ranges)
}

func (r *Replica) diffRanges(peer []encoding.Digest, idx, of int, ranges []TreeRange) (Diff, error) {
	if err := checkScope(idx, of); err != nil {
		return Diff{}, err
	}
	for _, pd := range peer {
		if of > 0 && ShardIndex(pd.Key, of) != idx {
			return Diff{}, fmt.Errorf("kvstore: diff shard %d/%d: key %q belongs to shard %d",
				idx, of, pd.Key, ShardIndex(pd.Key, of))
		}
		if !RangesContain(ranges, encoding.TreePos(pd.Key)) {
			return Diff{}, fmt.Errorf("kvstore: diff shard %d/%d: key %q outside the scoped ranges",
				idx, of, pd.Key)
		}
	}
	nShards := len(r.shards)
	scoped := of > 0 && nShards == of // in-scope keys live in local stripe idx only

	sc := diffScratchPool.Get().(*diffScratch)
	defer diffScratchPool.Put(sc)
	sc.grow(len(peer), nShards)
	if scoped {
		for i := range peer {
			sc.stripeOf[i] = int32(idx)
		}
	} else {
		for i, pd := range peer {
			sc.stripeOf[i] = int32(ShardIndex(pd.Key, nShards))
		}
	}
	// Counting sort: starts[s] ends up as the first order-index of stripe s,
	// order holds peer indices grouped by stripe in input (key) order.
	for _, s := range sc.stripeOf {
		sc.starts[s+1]++
	}
	for s := 1; s <= nShards; s++ {
		sc.starts[s] += sc.starts[s-1]
	}
	cursor := sc.starts
	for i, s := range sc.stripeOf {
		sc.order[cursor[s]] = int32(i)
		cursor[s]++
	}
	// cursor[s] now marks the end of stripe s's group (and the start of
	// stripe s+1's), so group s spans [prevEnd, cursor[s]).

	var d Diff
	var cmp core.Comparer
	matched, localInScope := 0, 0
	groupStart := 0
	for si := 0; si < nShards; si++ {
		groupEnd := cursor[si]
		group := sc.order[groupStart:groupEnd]
		groupStart = groupEnd
		if scoped && si != idx {
			continue // layouts agree: stripe si cannot hold in-scope keys
		}
		sh := &r.shards[si]
		sh.mu.RLock()
		switch {
		case ranges == nil && (of == 0 || scoped):
			localInScope += sh.countLocked()
		default:
			// Foreign layout (in-scope keys may live anywhere) or a
			// range-scoped round (only positions inside the ranges count).
			sh.eachMetaLocked(func(k string, _ bool, _ core.Stamp) {
				if of > 0 && !scoped && ShardIndex(k, of) != idx {
					return
				}
				if !RangesContain(ranges, encoding.TreePos(k)) {
					return
				}
				localInScope++
			})
		}
		for _, pi := range group {
			pd := &peer[pi]
			v, ok := sh.metaLocked(pd.Key)
			if !ok {
				d.Need = append(d.Need, pd.Key) // unknown here: the copy must travel
				continue
			}
			matched++
			if !v.Stamp.IDHandle().IncomparableTo(pd.Stamp.IDHandle()) {
				// Overlapping ids: independently created copies with no
				// causal order; reconciliation needs the peer's value.
				d.Need = append(d.Need, pd.Key)
				continue
			}
			switch cmp.Compare(v.Stamp, pd.Stamp) {
			case core.Equal:
				d.Equivalent++
			case core.After:
				// We dominate: our copy travels in the reply, theirs need not.
			default: // Before, Concurrent
				d.Need = append(d.Need, pd.Key)
			}
		}
		sh.mu.RUnlock()
	}
	// Peer digests are unique-keyed (Digest/DigestShard emit each key once),
	// so every in-scope local key the probes did not match is local-only.
	// Clamped so a malformed duplicate-keyed digest cannot report negative.
	if d.LocalOnly = localInScope - matched; d.LocalOnly < 0 {
		d.LocalOnly = 0
	}
	sort.Strings(d.Need)
	// A malformed duplicate-keyed digest would also duplicate its key in
	// Need (each entry is probed independently); compact the sorted list so
	// the need frame never requests a key twice.
	d.Need = compactSorted(d.Need)
	return d, nil
}

// compactSorted removes adjacent duplicates from a sorted slice in place.
func compactSorted(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// ApplyDelta runs the responder half of phase 2: it reconciles the peer's
// full entries (and, for keys this side dominates, just their digest stamps)
// against local state and returns the entries the peer must adopt to
// converge. Local state is mutated exactly as Sync would mutate it —
// transfers fork stamps, dominance reconciles, conflicts use the resolver or
// stay reported — and every key the stamps already prove equivalent is
// pruned: it is neither touched nor returned.
//
// Keys whose digest says this side should dominate but whose local copy
// moved since phase 1 (a concurrent writer) are skipped this round; the next
// digest exchange reconciles them.
func (r *Replica) ApplyDelta(peerDigest []encoding.Digest, peerEntries []encoding.Entry,
	resolve Resolver, idx, of int) ([]encoding.Entry, SyncResult, error) {
	return r.applyDeltaRanges(peerDigest, peerEntries, resolve, idx, of, nil)
}

// ApplyDeltaRanges is ApplyDelta additionally scoped to the given
// tree-position ranges: peer digests and entries must fall inside them, and
// only in-range local keys are enumerated as local-only — so a v4 leaf
// phase transfers the local keys of the divergent subtrees without treating
// every unmentioned in-stripe key as missing on the peer. A nil ranges
// slice means unscoped (exactly ApplyDelta).
func (r *Replica) ApplyDeltaRanges(peerDigest []encoding.Digest, peerEntries []encoding.Entry,
	resolve Resolver, idx, of int, ranges []TreeRange) ([]encoding.Entry, SyncResult, error) {
	return r.applyDeltaRanges(peerDigest, peerEntries, resolve, idx, of, ranges)
}

func (r *Replica) applyDeltaRanges(peerDigest []encoding.Digest, peerEntries []encoding.Entry,
	resolve Resolver, idx, of int, ranges []TreeRange) ([]encoding.Entry, SyncResult, error) {
	if err := checkScope(idx, of); err != nil {
		return nil, SyncResult{}, err
	}
	full := make(map[string]Versioned, len(peerEntries))
	for _, e := range peerEntries {
		if of > 0 && ShardIndex(e.Key, of) != idx {
			return nil, SyncResult{}, fmt.Errorf("kvstore: delta shard %d/%d: key %q belongs to shard %d",
				idx, of, e.Key, ShardIndex(e.Key, of))
		}
		if !RangesContain(ranges, encoding.TreePos(e.Key)) {
			return nil, SyncResult{}, fmt.Errorf("kvstore: delta shard %d/%d: key %q outside the scoped ranges",
				idx, of, e.Key)
		}
		full[e.Key] = Versioned{Value: e.Value, Deleted: e.Deleted, Stamp: e.Stamp}
	}
	stampOf := make(map[string]core.Stamp, len(peerDigest))
	for _, pd := range peerDigest {
		if of > 0 && ShardIndex(pd.Key, of) != idx {
			return nil, SyncResult{}, fmt.Errorf("kvstore: delta shard %d/%d: key %q belongs to shard %d",
				idx, of, pd.Key, ShardIndex(pd.Key, of))
		}
		if !RangesContain(ranges, encoding.TreePos(pd.Key)) {
			return nil, SyncResult{}, fmt.Errorf("kvstore: delta shard %d/%d: key %q outside the scoped ranges",
				idx, of, pd.Key)
		}
		stampOf[pd.Key] = pd.Stamp
	}

	// Registered before the locks so it runs after they release: group-commit
	// barriers must never be awaited under stripe locks.
	defer r.awaitDurable()
	r.lockScope(idx, of)
	defer r.unlockScope(idx, of)

	keys := make(map[string]struct{}, len(stampOf))
	for k := range stampOf {
		keys[k] = struct{}{}
	}
	for k := range full {
		keys[k] = struct{}{}
	}
	for i := range r.shards {
		if of > 0 && len(r.shards) == of && i != idx {
			continue
		}
		r.shards[i].eachMetaLocked(func(k string, _ bool, _ core.Stamp) {
			if of > 0 && ShardIndex(k, of) != idx {
				return
			}
			if !RangesContain(ranges, encoding.TreePos(k)) {
				return
			}
			keys[k] = struct{}{}
		})
	}

	var res SyncResult
	var reply []encoding.Entry
	var cmp core.Comparer // batch memo: digest stamps recur across keys
	for _, k := range sortedKeys(keys) {
		si := ShardIndex(k, len(r.shards))
		sh := &r.shards[si]
		local, hasLocal := sh.metaLocked(k)
		pv, hasFull := full[k]
		ps, hasDigest := stampOf[k]

		// db is the peer's side of the pairwise reconciliation for this key.
		db := map[string]Versioned{}
		switch {
		case hasFull:
			db[k] = pv
		case hasDigest && hasLocal:
			if !local.Stamp.IDHandle().IncomparableTo(ps.IDHandle()) {
				// Independently created copies need the peer's value; it did
				// not arrive, so leave both sides for the next round.
				continue
			}
			switch cmp.Compare(local.Stamp, ps) {
			case core.Equal:
				res.Pruned++
				continue
			case core.After:
				// Dominance reconciliation needs only the peer's stamp: the
				// value that survives is ours.
				db[k] = Versioned{Stamp: ps}
			default:
				// The digest promised dominance but local state moved (or the
				// peer under-sent). Without the peer's value nothing sound can
				// happen here; the next round's digest exchange catches it.
				continue
			}
		case hasDigest:
			// Peer-only key that did not arrive in full: under-sent or
			// tombstone-raced; leave for the next round.
			continue
		default:
			// Local-only key: syncKey transfers it, forking our stamp.
		}
		// The stamps could not prove equivalence, so syncKey needs the local
		// copy resident (its value may transfer to the peer or feed the
		// resolver). Converged keys never reach this line — paged rounds
		// fault nothing while quiet.
		if err := r.promoteLocked(si, k); err != nil {
			sort.Strings(res.Conflicts)
			return reply, res, err
		}
		part, err := syncKey(k, sh.data, db, resolve)
		if part.Transferred+part.Reconciled+part.Merged > 0 {
			sh.noteTombLocked(k)
			r.logKey(k) // the local copy moved; persist before the locks drop
		}
		res.add(part)
		if err != nil {
			sort.Strings(res.Conflicts)
			return reply, res, err
		}
		if part.Transferred+part.Reconciled+part.Merged == 0 {
			// Conflict skipped (reported) or stamps proved equivalence after
			// all — either way the peer's copy must not be overwritten.
			if len(part.Conflicts) == 0 {
				res.Pruned++
			}
			continue
		}
		out := db[k]
		reply = append(reply, encoding.Entry{
			Key: k, Value: out.Value, Deleted: out.Deleted, Stamp: out.Stamp,
		})
	}
	sort.Strings(res.Conflicts)
	return reply, res, nil
}

// ApplyDeltaReply installs the responder's reply entries — the initiator
// half of phase 2. sent maps each key to the stamp this replica shipped in
// its digest or full entry; a reply entry is applied only if the local copy
// still carries exactly that stamp (or the key is still absent, for keys the
// digest did not mention). Copies that moved concurrently are left alone —
// the round's fork is simply abandoned on this side, which only discards id
// space, never causality — and the next round reconciles them. Returns how
// many entries were applied.
func (r *Replica) ApplyDeltaReply(entries []encoding.Entry, sent map[string]core.Stamp,
	idx, of int) (int, error) {
	if err := checkScope(idx, of); err != nil {
		return 0, err
	}
	applied := 0
	for _, e := range entries {
		if of > 0 && ShardIndex(e.Key, of) != idx {
			return applied, fmt.Errorf("kvstore: delta reply shard %d/%d: key %q belongs to shard %d",
				idx, of, e.Key, ShardIndex(e.Key, of))
		}
		si := ShardIndex(e.Key, len(r.shards))
		sh := &r.shards[si]
		sh.lockMut()
		cur, has := sh.metaLocked(e.Key)
		want, wasSent := sent[e.Key]
		ok := (wasSent && has && cur.Stamp.Equal(want)) || (!wasSent && !has)
		if ok {
			v := Versioned{
				Value:   append([]byte(nil), e.Value...),
				Deleted: e.Deleted,
				Stamp:   e.Stamp,
			}
			sh.data[e.Key] = v
			sh.noteTombLocked(e.Key)
			r.logSet(si, e.Key, v)
			applied++
		}
		sh.mu.Unlock()
	}
	r.awaitDurable()
	return applied, nil
}

// checkScope validates a (idx, of) scope pair.
func checkScope(idx, of int) error {
	if of == 0 {
		return nil
	}
	if of < 0 || idx < 0 || idx >= of {
		return fmt.Errorf("kvstore: shard %d out of range of %d", idx, of)
	}
	return nil
}

// lockScope write-locks the stripes a scoped delta apply may touch: just
// stripe idx when this replica's layout matches `of`, every stripe
// otherwise (scope keys may live anywhere, or of == 0 means the whole
// keyspace).
func (r *Replica) lockScope(idx, of int) {
	if of > 0 && len(r.shards) == of {
		r.shards[idx].lockMut()
		return
	}
	for i := range r.shards {
		r.shards[i].lockMut()
	}
}

func (r *Replica) unlockScope(idx, of int) {
	if of > 0 && len(r.shards) == of {
		r.shards[idx].mu.Unlock()
		return
	}
	for i := range r.shards {
		r.shards[i].mu.Unlock()
	}
}

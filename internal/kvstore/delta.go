package kvstore

import (
	"fmt"
	"sort"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
)

// This file is the store half of the two-phase delta anti-entropy protocol:
// phase 1 exchanges per-key digests (key + stamp, no value) and each side
// decides locally which copies the stamps cannot prove equivalent; phase 2
// ships only those. The paper's whole point is that stamp comparison
// classifies two copies as equivalent, obsolete or conflicting without
// looking at the data — so converged replicas can verify convergence for the
// price of the digests alone.
//
// The scope arguments (idx, of) mirror SyncShard: of > 0 restricts the round
// to the keys of stripe idx under a layout of `of` stripes, locking only the
// matching local stripe when this replica's layout agrees; of == 0 covers
// the whole keyspace under all stripe locks.

// Diff classifies a peer's digest against local state — the output of
// phase 1 on the responding side.
type Diff struct {
	// Need lists peer keys whose full copies are required to reconcile:
	// keys unknown here, keys where the peer dominates, and keys the stamps
	// call concurrent or causally unrelated. Sorted.
	Need []string
	// Equivalent counts peer keys whose stamps proved the copies identical;
	// they are pruned from the wire entirely.
	Equivalent int
	// LocalOnly counts in-scope local keys the peer digest does not
	// mention; their copies must travel to the peer.
	LocalOnly int
}

// Digest returns the (key, stamp) pairs of every stored copy — including
// tombstones — sorted by key: the phase-1 payload of a whole-replica delta
// round. Quiet stripes are served from the per-stripe digest cache, and the
// result slice is pre-sized from the cached stripe lengths, so an idle
// round's digest collection is one allocation and a merge sort of
// already-sorted runs.
func (r *Replica) Digest() []encoding.Digest {
	stripes := make([][]encoding.Digest, len(r.shards))
	total := 0
	for i := range r.shards {
		_, stripes[i] = r.stripeCache(i)
		total += len(stripes[i])
	}
	out := make([]encoding.Digest, 0, total)
	for _, ds := range stripes {
		out = append(out, ds...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// DigestShard returns the digests of stripe idx only, sorted by key: the
// phase-1 payload of one per-stripe delta round. Served from the stripe's
// digest cache; the copy is exactly sized.
func (r *Replica) DigestShard(idx int) ([]encoding.Digest, error) {
	if idx < 0 || idx >= len(r.shards) {
		return nil, fmt.Errorf("kvstore: shard %d out of range of %d", idx, len(r.shards))
	}
	_, ds := r.stripeCache(idx)
	out := make([]encoding.Digest, len(ds))
	copy(out, ds)
	return out, nil
}

// DiffAgainst compares a peer digest with local state and reports which peer
// copies must travel in full. Read locks only; the comparison is advisory —
// ApplyDelta re-validates every key under write locks, so state changing
// between the two phases costs at most one extra round, never correctness.
func (r *Replica) DiffAgainst(peer []encoding.Digest, idx, of int) (Diff, error) {
	if err := checkScope(idx, of); err != nil {
		return Diff{}, err
	}
	peerStamp := make(map[string]core.Stamp, len(peer))
	for _, pd := range peer {
		if of > 0 && ShardIndex(pd.Key, of) != idx {
			return Diff{}, fmt.Errorf("kvstore: diff shard %d/%d: key %q belongs to shard %d",
				idx, of, pd.Key, ShardIndex(pd.Key, of))
		}
		peerStamp[pd.Key] = pd.Stamp
	}
	// One pass per relevant stripe, stamps only — this is the phase every
	// idle sync round pays, so it must not copy values or lock per key.
	var d Diff
	matched := make(map[string]struct{}, len(peerStamp))
	for i := range r.shards {
		if of > 0 && len(r.shards) == of && i != idx {
			continue // layouts agree: stripe i cannot hold in-scope keys
		}
		sh := &r.shards[i]
		sh.mu.RLock()
		for k, v := range sh.data {
			if of > 0 && ShardIndex(k, of) != idx {
				continue
			}
			ps, ok := peerStamp[k]
			if !ok {
				d.LocalOnly++
				continue
			}
			matched[k] = struct{}{}
			if !v.Stamp.IDName().IncomparableTo(ps.IDName()) {
				// Overlapping ids: independently created copies with no
				// causal order; reconciliation needs the peer's value.
				d.Need = append(d.Need, k)
				continue
			}
			switch core.Compare(v.Stamp, ps) {
			case core.Equal:
				d.Equivalent++
			case core.After:
				// We dominate: our copy travels in the reply, theirs need not.
			default: // Before, Concurrent
				d.Need = append(d.Need, k)
			}
		}
		sh.mu.RUnlock()
	}
	for k := range peerStamp {
		if _, ok := matched[k]; !ok {
			d.Need = append(d.Need, k) // unknown here: the copy must travel
		}
	}
	sort.Strings(d.Need)
	return d, nil
}

// ApplyDelta runs the responder half of phase 2: it reconciles the peer's
// full entries (and, for keys this side dominates, just their digest stamps)
// against local state and returns the entries the peer must adopt to
// converge. Local state is mutated exactly as Sync would mutate it —
// transfers fork stamps, dominance reconciles, conflicts use the resolver or
// stay reported — and every key the stamps already prove equivalent is
// pruned: it is neither touched nor returned.
//
// Keys whose digest says this side should dominate but whose local copy
// moved since phase 1 (a concurrent writer) are skipped this round; the next
// digest exchange reconciles them.
func (r *Replica) ApplyDelta(peerDigest []encoding.Digest, peerEntries []encoding.Entry,
	resolve Resolver, idx, of int) ([]encoding.Entry, SyncResult, error) {
	if err := checkScope(idx, of); err != nil {
		return nil, SyncResult{}, err
	}
	full := make(map[string]Versioned, len(peerEntries))
	for _, e := range peerEntries {
		if of > 0 && ShardIndex(e.Key, of) != idx {
			return nil, SyncResult{}, fmt.Errorf("kvstore: delta shard %d/%d: key %q belongs to shard %d",
				idx, of, e.Key, ShardIndex(e.Key, of))
		}
		full[e.Key] = Versioned{Value: e.Value, Deleted: e.Deleted, Stamp: e.Stamp}
	}
	stampOf := make(map[string]core.Stamp, len(peerDigest))
	for _, pd := range peerDigest {
		if of > 0 && ShardIndex(pd.Key, of) != idx {
			return nil, SyncResult{}, fmt.Errorf("kvstore: delta shard %d/%d: key %q belongs to shard %d",
				idx, of, pd.Key, ShardIndex(pd.Key, of))
		}
		stampOf[pd.Key] = pd.Stamp
	}

	r.lockScope(idx, of)
	defer r.unlockScope(idx, of)

	keys := make(map[string]struct{}, len(stampOf))
	for k := range stampOf {
		keys[k] = struct{}{}
	}
	for k := range full {
		keys[k] = struct{}{}
	}
	for i := range r.shards {
		if of > 0 && len(r.shards) == of && i != idx {
			continue
		}
		for k := range r.shards[i].data {
			if of > 0 && ShardIndex(k, of) != idx {
				continue
			}
			keys[k] = struct{}{}
		}
	}

	var res SyncResult
	var reply []encoding.Entry
	for _, k := range sortedKeys(keys) {
		da := r.shardFor(k).data
		local, hasLocal := da[k]
		pv, hasFull := full[k]
		ps, hasDigest := stampOf[k]

		// db is the peer's side of the pairwise reconciliation for this key.
		db := map[string]Versioned{}
		switch {
		case hasFull:
			db[k] = pv
		case hasDigest && hasLocal:
			if !local.Stamp.IDName().IncomparableTo(ps.IDName()) {
				// Independently created copies need the peer's value; it did
				// not arrive, so leave both sides for the next round.
				continue
			}
			switch core.Compare(local.Stamp, ps) {
			case core.Equal:
				res.Pruned++
				continue
			case core.After:
				// Dominance reconciliation needs only the peer's stamp: the
				// value that survives is ours.
				db[k] = Versioned{Stamp: ps}
			default:
				// The digest promised dominance but local state moved (or the
				// peer under-sent). Without the peer's value nothing sound can
				// happen here; the next round's digest exchange catches it.
				continue
			}
		case hasDigest:
			// Peer-only key that did not arrive in full: under-sent or
			// tombstone-raced; leave for the next round.
			continue
		default:
			// Local-only key: syncKey transfers it, forking our stamp.
		}
		part, err := syncKey(k, da, db, resolve)
		res.add(part)
		if err != nil {
			sort.Strings(res.Conflicts)
			return reply, res, err
		}
		if part.Transferred+part.Reconciled+part.Merged == 0 {
			// Conflict skipped (reported) or stamps proved equivalence after
			// all — either way the peer's copy must not be overwritten.
			if len(part.Conflicts) == 0 {
				res.Pruned++
			}
			continue
		}
		out := db[k]
		reply = append(reply, encoding.Entry{
			Key: k, Value: out.Value, Deleted: out.Deleted, Stamp: out.Stamp,
		})
	}
	sort.Strings(res.Conflicts)
	return reply, res, nil
}

// ApplyDeltaReply installs the responder's reply entries — the initiator
// half of phase 2. sent maps each key to the stamp this replica shipped in
// its digest or full entry; a reply entry is applied only if the local copy
// still carries exactly that stamp (or the key is still absent, for keys the
// digest did not mention). Copies that moved concurrently are left alone —
// the round's fork is simply abandoned on this side, which only discards id
// space, never causality — and the next round reconciles them. Returns how
// many entries were applied.
func (r *Replica) ApplyDeltaReply(entries []encoding.Entry, sent map[string]core.Stamp,
	idx, of int) (int, error) {
	if err := checkScope(idx, of); err != nil {
		return 0, err
	}
	applied := 0
	for _, e := range entries {
		if of > 0 && ShardIndex(e.Key, of) != idx {
			return applied, fmt.Errorf("kvstore: delta reply shard %d/%d: key %q belongs to shard %d",
				idx, of, e.Key, ShardIndex(e.Key, of))
		}
		sh := r.shardFor(e.Key)
		sh.lockMut()
		cur, has := sh.data[e.Key]
		want, wasSent := sent[e.Key]
		ok := (wasSent && has && cur.Stamp.Equal(want)) || (!wasSent && !has)
		if ok {
			sh.data[e.Key] = Versioned{
				Value:   append([]byte(nil), e.Value...),
				Deleted: e.Deleted,
				Stamp:   e.Stamp,
			}
			applied++
		}
		sh.mu.Unlock()
	}
	return applied, nil
}

// checkScope validates a (idx, of) scope pair.
func checkScope(idx, of int) error {
	if of == 0 {
		return nil
	}
	if of < 0 || idx < 0 || idx >= of {
		return fmt.Errorf("kvstore: shard %d out of range of %d", idx, of)
	}
	return nil
}

// lockScope write-locks the stripes a scoped delta apply may touch: just
// stripe idx when this replica's layout matches `of`, every stripe
// otherwise (scope keys may live anywhere, or of == 0 means the whole
// keyspace).
func (r *Replica) lockScope(idx, of int) {
	if of > 0 && len(r.shards) == of {
		r.shards[idx].lockMut()
		return
	}
	for i := range r.shards {
		r.shards[i].lockMut()
	}
}

func (r *Replica) unlockScope(idx, of int) {
	if of > 0 && len(r.shards) == of {
		r.shards[idx].mu.Unlock()
		return
	}
	for i := range r.shards {
		r.shards[i].mu.Unlock()
	}
}

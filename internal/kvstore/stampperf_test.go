package kvstore

import (
	"fmt"
	"testing"

	"versionstamp/internal/encoding"
)

// Performance acceptance for the interned stamp kernel on the store's
// hottest read path. The pre-PR implementation of DiffAgainst built two maps
// per call and compared slice-backed stamps; measured on the same converged
// 1000-key workload it cost 10 allocs/op and ~202 KB/op. The batched
// implementation over interned handles must beat that by at least 5x.

// preInterningDiffAllocs is the recorded pre-PR baseline: allocs/op of
// DiffAgainst over a converged 1000-key replica pair (go test -bench,
// 2026-07, this repository at PR 3).
const preInterningDiffAllocs = 10

// convergedDiffPair builds a server and the digest of a converged clone.
func convergedDiffPair(keys int) (*Replica, []encoding.Digest) {
	server := NewReplica("server")
	for i := 0; i < keys; i++ {
		server.Put(fmt.Sprintf("key-%06d", i), []byte("value-with-some-padding"))
	}
	client := server.Clone("client")
	return server, client.Digest()
}

func TestDiffAgainstAllocBudget(t *testing.T) {
	server, digest := convergedDiffPair(1000)
	if _, err := server.DiffAgainst(digest, 0, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		d, err := server.DiffAgainst(digest, 0, 0)
		if err != nil || len(d.Need) != 0 || d.Equivalent != 1000 {
			t.Fatalf("diff = %+v, err %v", d, err)
		}
	})
	budget := float64(preInterningDiffAllocs) / 5
	if allocs > budget {
		t.Errorf("converged DiffAgainst allocates %.1f/op; budget is %.1f (pre-interning baseline %d / 5)",
			allocs, budget, preInterningDiffAllocs)
	}
	t.Logf("converged 1000-key DiffAgainst: %.1f allocs/op (pre-interning baseline %d)",
		allocs, preInterningDiffAllocs)
}

func BenchmarkDiffAgainstConverged(b *testing.B) {
	server, digest := convergedDiffPair(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.DiffAgainst(digest, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiffAgainstDivergent(b *testing.B) {
	server, digest := convergedDiffPair(1000)
	for i := 0; i < 1000; i += 100 {
		server.Put(fmt.Sprintf("key-%06d", i), []byte("edited"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.DiffAgainst(digest, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDiffAgainstDuplicateDigestKeys: a malformed peer digest listing a key
// twice must not duplicate it in Need (nor corrupt the counters).
func TestDiffAgainstDuplicateDigestKeys(t *testing.T) {
	server := NewReplica("server")
	server.Put("known", []byte("v"))
	client := server.Clone("client")
	client.Put("known", []byte("edited")) // client dominates
	digest := client.Digest()
	dup := append(append([]encoding.Digest(nil), digest...), digest...)
	dup = append(dup, encoding.Digest{Key: "unknown", Stamp: digest[0].Stamp})
	dup = append(dup, encoding.Digest{Key: "unknown", Stamp: digest[0].Stamp})
	d, err := server.DiffAgainst(dup, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Need) != 2 || d.Need[0] != "known" || d.Need[1] != "unknown" {
		t.Errorf("Need = %v, want [known unknown] exactly once each", d.Need)
	}
	if d.LocalOnly != 0 {
		t.Errorf("LocalOnly = %d, want 0", d.LocalOnly)
	}
}
